// tbcs_sweep — run 1-D/2-D parameter sweeps in parallel and emit CSV/JSON.
//
//   tbcs_sweep --param diameter --values 8,16,32,64 --algo aopt
//              --eps 0.01 --duration 500 --jobs 8 > sweep.csv
//   tbcs_sweep --param eps --values 0.01,0.02,0.05
//              --param2 delay --values2 0.5,1,2 --replicas 4 --jobs 8
//              --format json > sweep.json
//
// Sweepable parameters: diameter (sets nodes = D + 1 without touching the
// chosen --topology), nodes, eps, mu, h0, delay, duration.  Every
// tbcs_sim model/adversary flag (--topology, --nodes, --drift, ...) is
// accepted and forms the base configuration.
//
// Runs execute on a worker pool (--jobs); per-run seeds are derived from
// (--seed, run index), so any job count produces byte-identical output.
// Output columns: the swept value(s), replica, seed, global/local skew,
// the two theory bounds, message count — ready for scripts/plot_sweep.gp.
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.hpp"
#include "cli/experiment_config.hpp"
#include "exec/result_sink.hpp"
#include "exec/sweep_runner.hpp"

namespace {

constexpr const char* kUsage = R"(tbcs_sweep — parallel parameter sweeps

sweep:      --param diameter|nodes|eps|mu|h0|delay|duration
            --values v1,v2,...
            [--param2 <name> --values2 v1,v2,...]    second sweep axis
            [--replicas R]    R runs per grid point with distinct seeds
run:        --jobs N          worker threads (default 1; output is
                              byte-identical for every N)
            --shards K        run every simulation on the sharded engine
                              with K lanes (results are byte-identical to
                              K = 0, the serial default).  Jobs compose
                              with shards against one core budget: J is
                              clamped so J * K <= hardware threads
            --seed S          base seed; per-run seeds are derived from
                              (S, run index)
output:     --format csv|json (default csv, on stdout)
observe:    --obs-backend exact|stair --obs-memory-kb N
                              telemetry history backend per run (see
                              tbcs_sim --help).  stair adds the metric
                              columns skew_error_bound /
                              obs_history_bytes / obs_history_windows and
                              per-sweep registry timelines; exact-mode
                              output bytes are unchanged.  Results stay
                              byte-identical for every --jobs/--shards
faults:     --faults FILE --fault-seed S    fault plan applied to every run
                              (adds faults_applied / crashes / recoveries /
                              recovery_time — and, with scramble directives,
                              scrambles / stabilization_time — metric
                              columns; docs/FAULTS.md)
model:      every tbcs_sim model/adversary flag is accepted, e.g.
            --topology ring --nodes 32 --algo aopt --eps 0.01 --mu 0.2
            --drift square --delays hiding --duration 500 --wake-all
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace tbcs;
  cli::ArgParser args(argc, argv);
  if (args.get_bool("help")) {
    std::cout << kUsage;
    return 0;
  }

  // Historical tbcs_sweep defaults: the strongest standard adversary.
  cli::ExperimentConfig base;
  base.drift = "square";
  base.delays = "hiding";
  cli::apply_model_flags(args, base);

  exec::SweepAxis axis1{args.get_string("param", "diameter"),
                        exec::parse_values(args.get_string("values",
                                                           "8,16,32,64"))};
  exec::SweepAxis axis2{args.get_string("param2", ""),
                        exec::parse_values(args.get_string("values2", ""))};
  const int replicas = args.get_int("replicas", 1);
  int jobs = args.get_int("jobs", 1);
  const std::string format = args.get_string("format", "csv");

  // Jobs and shards multiply: each run occupies max(1, shards) threads, so
  // clamp the pool to keep jobs * shards inside one machine's core budget.
  // Results are unaffected (the jobs count never changes output).
  if (base.shards > 1 && jobs > 1) {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int budget = hw > 0 ? hw : 1;
    const int max_jobs = budget / base.shards > 0 ? budget / base.shards : 1;
    if (jobs > max_jobs) {
      std::cerr << "note: clamping --jobs " << jobs << " to " << max_jobs
                << " (" << base.shards << " shards per run, " << budget
                << " hardware threads)\n";
      jobs = max_jobs;
    }
  }

  for (const auto& key : args.unknown_keys()) {
    std::cerr << "error: unknown flag --" << key << "\n" << kUsage;
    return 2;
  }
  if (!args.ok()) {
    for (const auto& e : args.errors()) std::cerr << "error: " << e << "\n";
    return 2;
  }
  if (axis1.values.empty()) {
    std::cerr << "error: --values must name at least one value\n";
    return 2;
  }
  if (axis2.param.empty() != axis2.values.empty()) {
    std::cerr << "error: --param2 and --values2 must be given together\n";
    return 2;
  }
  if (replicas < 1) {
    std::cerr << "error: --replicas must be >= 1\n";
    return 2;
  }
  if (format != "csv" && format != "json") {
    std::cerr << "error: --format must be csv or json\n";
    return 2;
  }
  try {  // reject unknown sweep parameters as usage errors, before running
    cli::ExperimentConfig probe = base;
    exec::apply_sweep_param(probe, axis1.param, axis1.values.front());
    if (!axis2.param.empty()) {
      exec::apply_sweep_param(probe, axis2.param, axis2.values.front());
    }
  } catch (const cli::ConfigError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  try {
    const std::vector<exec::RunSpec> specs = exec::make_grid_specs(
        base, axis1, axis2.param.empty() ? nullptr : &axis2, replicas);

    exec::SweepOptions sopt;
    sopt.jobs = jobs;
    sopt.base_seed = base.seed;
    const std::vector<exec::RunResult> results =
        exec::SweepRunner(sopt).run(specs);

    int failures = 0;
    for (const exec::RunResult& r : results) {
      if (r.ok) continue;
      ++failures;
      std::cerr << "error at";
      for (const auto& [key, value] : r.labels) {
        std::cerr << " " << key << " = " << value;
      }
      std::cerr << ": " << r.error << "\n";
    }

    if (format == "json") {
      exec::JsonSink().write(std::cout, results);
    } else {
      exec::CsvSink().write(std::cout, results);
    }
    return failures > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
