// tbcs_sweep — run a one-dimensional parameter sweep and emit CSV.
//
//   tbcs_sweep --param diameter --values 8,16,32,64 --algo aopt
//              --eps 0.01 --duration 500 > sweep.csv   (one command line)
//
// Sweepable parameters: diameter (path length - 1), eps, mu, h0, delay.
// Output columns: the swept value, global/local skew, the two theory
// bounds, message count.  Designed to feed plotting scripts
// (scripts/plot_sweep.gp).
#include <iostream>
#include <sstream>
#include <vector>

#include "analysis/skew_tracker.hpp"
#include "analysis/table.hpp"
#include "analysis/trace.hpp"
#include "cli/args.hpp"
#include "cli/experiment_config.hpp"

namespace {

std::vector<double> parse_values(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tbcs;
  cli::ArgParser args(argc, argv);
  if (args.get_bool("help")) {
    std::cout << "tbcs_sweep --param diameter|eps|mu|h0|delay "
                 "--values v1,v2,... [tbcs_sim model/adversary flags]\n";
    return 0;
  }

  const std::string param = args.get_string("param", "diameter");
  const std::vector<double> values =
      parse_values(args.get_string("values", "8,16,32,64"));

  cli::ExperimentConfig base;
  base.algorithm = args.get_string("algo", base.algorithm);
  base.eps = args.get_double("eps", base.eps);
  base.delay = args.get_double("delay", base.delay);
  base.mu = args.get_double("mu", base.mu);
  base.h0 = args.get_double("h0", base.h0);
  base.drift = args.get_string("drift", "square");
  base.delays = args.get_string("delays", "hiding");
  base.duration = args.get_double("duration", 500.0);
  base.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  for (const auto& key : args.unknown_keys()) {
    std::cerr << "error: unknown flag --" << key << "\n";
    return 2;
  }
  if (!args.ok()) {
    for (const auto& e : args.errors()) std::cerr << "error: " << e << "\n";
    return 2;
  }

  analysis::CsvWriter csv(std::cout);
  csv.row({param, "global_skew", "local_skew", "global_bound", "local_bound",
           "messages"});

  for (const double value : values) {
    cli::ExperimentConfig cfg = base;
    cfg.topology = "path";
    if (param == "diameter") {
      cfg.nodes = static_cast<int>(value) + 1;
    } else if (param == "eps") {
      cfg.eps = value;
    } else if (param == "mu") {
      cfg.mu = value;
    } else if (param == "h0") {
      cfg.h0 = value;
    } else if (param == "delay") {
      cfg.delay = value;
    } else {
      std::cerr << "error: unknown sweep parameter '" << param << "'\n";
      return 2;
    }

    try {
      auto built = cli::build_experiment(cfg);
      analysis::SkewTracker tracker(*built.simulator, {});
      tracker.attach(*built.simulator);
      built.simulator->run_until(cfg.duration);

      const int d = built.graph->diameter();
      csv.row({analysis::Table::num(value, 6),
               analysis::Table::num(tracker.max_global_skew(), 6),
               analysis::Table::num(tracker.max_local_skew(), 6),
               analysis::Table::num(
                   built.params.global_skew_bound(d, cfg.eps, cfg.delay), 6),
               analysis::Table::num(
                   built.params.local_skew_bound(d, cfg.eps, cfg.delay), 6),
               analysis::Table::integer(static_cast<long long>(
                   built.simulator->messages_delivered()))});
    } catch (const std::exception& e) {
      std::cerr << "error at " << param << " = " << value << ": " << e.what()
                << "\n";
      return 1;
    }
  }
  return 0;
}
