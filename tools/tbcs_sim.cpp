// tbcs_sim — run a clock synchronization experiment from the command line.
//
//   tbcs_sim --topology grid --rows 6 --cols 6 --algo aopt --eps 0.01
//            --drift walk --delays uniform --duration 1000
//            --series-csv out.csv          (one command line)
//
// Prints a summary (skews vs the paper bounds) and optionally exports the
// time series / per-distance profile / final snapshot as CSV.
#include <fstream>
#include <iostream>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>

#include "analysis/ascii_chart.hpp"
#include "analysis/counters.hpp"
#include "analysis/skew_tracker.hpp"
#include "analysis/table.hpp"
#include "analysis/trace.hpp"
#include "cli/args.hpp"
#include "cli/experiment_config.hpp"
#include "dyn/churn_driver.hpp"
#include "dyn/stabilization_probe.hpp"
#include "fault/fault_scheduler.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/recorder.hpp"

namespace {

constexpr const char* kUsage = R"(tbcs_sim — worst-case clock synchronization experiments

topology:   --topology path|ring|star|complete|grid|torus|hypercube|tree|er
            --nodes N | --rows R --cols C | --dims D | --arity A --levels L
            --er-p P
algorithm:  --algo aopt|ftgcs|kllo|aopt-jump|aopt-bounded|aopt-adaptive|
                   aopt-external|aopt-envelope|aopt-ticks|max|max-rate|
                   avg|free
            --tick-frequency F         (aopt-ticks)
            --ftgcs-f F        ftgcs: Byzantine neighbors tolerated per
                               node (trim depth; default 1)
            --ftgcs-filter M   ftgcs defense layers: both (default) |
                               envelope | trim | none (none + trim off
                               reduces to plain aopt)
            --stab-tolerance T / --stab-time S
                               kllo: initial tolerance of a fresh edge and
                               its decay period (0 = derived: 8 kappa,
                               tau0 / mu)
            --stab-bound B     stabilization-probe threshold: an inserted
                               edge is stabilized when its skew stays
                               <= B (0 = the Thm 5.10 local bound)
model:      --eps E --delay T --mu M --h0 H     (0 = paper defaults)
adversary:  --drift walk|rwalk|square|sine|const
                               rwalk = clamped random walk: the rate takes
                               bounded uniform increments, saturating at
                               [1-eps, 1+eps] (correlated, physical-
                               oscillator regime)
            --drift-interval T rate-change cadence / period override
                               (0 = per-model default: 10 T walk/rwalk,
                               40 T square, 80 T sine)
            --drift-step S     rwalk max |rate increment| (0 = eps / 2)
            --delays uniform|fixed|band|bimodal|burst|hiding
            --band-min F
faults:     --faults FILE      fault plan (docs/FAULTS.md); enables the
                               recovery-time probe against the paper
                               bounds.  Byzantine nodes are excluded from
                               every skew figure (the guarantee covers the
                               correct subgraph); a `scramble` directive
                               additionally reports the self-stabilization
                               time from the corruption to final re-entry
            --fault-seed S     seed for random fault directives (0 = --seed)
            --silence-timeout T / --influence-bound B
                               A^opt graceful-degradation knobs (plain
                               --algo aopt; 0 = off, paper behavior)
churn:      --churn-node-rate R / --churn-edge-rate R
                               dynamic membership: per-entity leave /
                               edge-removal rates (events per unit time;
                               0 = static network).  The schedule is a
                               pure function of the flags — byte-identical
                               at any --shards/--jobs setting
            --churn-downtime D mean absent/removed duration (0 = 20 T)
            --churn-node-fraction F / --churn-edge-fraction F
                               eligible fraction of nodes / base edges
            --churn-extra-edges F
                               insertion universe: extra initially-absent
                               random edges, as a fraction of |E|
            --churn-start T / --churn-stop T
                               churn window (0 = [4 T, duration]); pending
                               re-joins clamp to the stop so the network
                               ends whole
            --churn-min-present N / --churn-seed S
                               presence floor; 0 = derive seed from --seed
            --churn-repartition[=0]
                               sharded runs: repartition over the live
                               subgraph when the live cut fraction grows
                               past --churn-cut-growth x the baseline
                               (default 1.5); --churn-check-interval sets
                               the run/check cadence (0 = duration / 20)
run:        --duration T --seed S --wake-all --per-distance
            --audit-oracle     run the incremental skew tracker and the
                               full-rescan oracle side by side; abort on
                               any divergence (slow; for validation)
            --shards N         run the sharded time-window engine with N
                               lanes (0 = classic serial engine).  Needs a
                               delay policy with a positive minimum delay
                               (--delays band or fixed); output is
                               byte-identical for every N
            --shards-min-nodes M
                               auto-clamp the lane count so every lane
                               covers >= M nodes (default 64; 0 = off).
                               The effective count lands in the stats
                               JSON "engine" block
            --partition P      shard assignment: auto (default: ml for
                               trees, block elsewhere) | block (contiguous
                               id ranges) | bands (BFS layers) | ml
                               (multilevel cut-minimizing; best when node
                               ids carry no locality, e.g. ER)
            --queue Q          event-queue implementation: auto (default:
                               ladder at >= 32768 nodes, heap below) |
                               heap | ladder.  Pop order is identical for
                               all three; only throughput differs
            --progress[=SECS]  stderr heartbeat every SECS wall seconds
                               (default 5): wall time, sim time, events/s,
                               queue depth, current shard horizon
            --skew-stride N    DEPRECATED: prefer --obs-backend stair,
                               which samples on a fixed time grid with a
                               queryable error bound and is byte-identical
                               under --shards.  Strided sampling keeps
                               every Nth event only; reported maxima
                               become lower bounds with no bound on the
                               error, and the flag is ignored when
                               sharded (that engine samples per window
                               barrier, not per event).  Execution bytes
                               (--record / --trace) are unaffected.
            note: a skew-tracker stride > 1 silently degrades the
            incremental engine to full rescans; such samples are counted
            in the `skew.full_rescan_fallback` metrics counter (--stats)
output:     --series-csv FILE --profile-csv FILE --snapshot-csv FILE
record:     --record FILE      save this execution (rates + delays)
            --replay FILE      re-run a saved execution (overrides the
                               adversary flags; topology/algo must match)
observe:    --obs-backend B    telemetry history backend: exact (default;
                               every sample retained, bit-identical to
                               the classic tracker) | stair (multi-
                               resolution sliding-window sketch: skew /
                               stabilization series grid-sampled every
                               --delay, geometric memory under
                               --obs-memory-kb, reported maxima within
                               the advertised error_bound of exact).
                               Observer-only: --record / --trace bytes
                               and the stair figures themselves are
                               identical across --shards / --queue
            --obs-memory-kb N  per-stream stair memory budget (default 64)
            --stats            print communication/queue/obs/metrics/trace
                               counters as one JSON object on exit
            --stats-json FILE  write the same JSON object to FILE (the
                               sharded-equivalence smoke test diffs these)
            --trace FILE       attach a flight recorder and save the binary
                               trace dump to FILE (inspect with tbcs_trace)
            --trace-capacity N ring capacity in records (default 65536)
            --trace-sample K   keep every K-th record (default 1 = all)
display:    --chart            render the skew time series in the terminal
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace tbcs;
  cli::ArgParser args(argc, argv);
  if (args.get_bool("help")) {
    std::cout << kUsage;
    return 0;
  }

  cli::ExperimentConfig cfg;
  cli::apply_model_flags(args, cfg);
  const std::string series_csv = args.get_string("series-csv", "");
  const std::string profile_csv = args.get_string("profile-csv", "");
  const std::string snapshot_csv = args.get_string("snapshot-csv", "");
  const std::string record_file = args.get_string("record", "");
  const std::string replay_file = args.get_string("replay", "");
  const bool chart = args.get_bool("chart");
  const bool audit_oracle = args.get_bool("audit-oracle");
  const bool stats = args.get_bool("stats");
  const std::string stats_json = args.get_string("stats-json", "");
  const std::string trace_file = args.get_string("trace", "");
  const int trace_capacity = args.get_int("trace-capacity", 1 << 16);
  const int trace_sample = args.get_int("trace-sample", 1);
  double progress_secs = 0.0;
  if (args.has("progress")) {
    // Bare --progress means "the default cadence"; --progress=SECS tunes it.
    const std::string p = args.get_string("progress", "");
    progress_secs = (p.empty() || p == "true") ? 5.0 : std::strtod(p.c_str(), nullptr);
    if (progress_secs <= 0.0) progress_secs = 5.0;
  }

  for (const auto& key : args.unknown_keys()) {
    std::cerr << "error: unknown flag --" << key << "\n" << kUsage;
    return 2;
  }
  if (!args.ok()) {
    for (const auto& e : args.errors()) std::cerr << "error: " << e << "\n";
    return 2;
  }

  try {
    const obs::HistoryConfig hcfg = cli::resolve_history(cfg);
    const bool stair = hcfg.backend == obs::HistoryConfig::Backend::kStair;
    if (cfg.skew_stride > 1) {
      std::cerr << "warning: --skew-stride is deprecated; prefer "
                   "--obs-backend stair (grid sampling with a queryable "
                   "error bound, engine-invariant)\n";
      if (cfg.shards > 0) {
        std::cerr << "warning: --skew-stride is ignored with --shards "
                  << cfg.shards
                  << " (the sharded engine samples per window barrier, "
                     "not per event)\n";
      }
      if (stair) {
        std::cerr << "warning: --skew-stride is ignored with --obs-backend "
                     "stair (the sketch samples on the probe grid)\n";
      }
    }

    auto built = cli::build_experiment(cfg);
    sim::Simulator& sim = *built.simulator;
    if (progress_secs > 0.0) sim.set_progress(progress_secs);

    // With channel faults installed, record/replay policies go *inside*
    // the fault decorator: faults perturb the recorded honest delays, so
    // a faulty run replays (and diffs) bit-identically.
    const auto install_delay_policy =
        [&](std::shared_ptr<sim::DelayPolicy> policy) {
          if (built.channel) {
            built.channel->set_inner(std::move(policy));
          } else {
            sim.set_delay_policy(std::move(policy));
          }
        };
    auto record_log = std::make_shared<sim::ExecutionLog>();
    if (!replay_file.empty()) {
      std::ifstream is(replay_file);
      if (!is) {
        std::cerr << "error: cannot open " << replay_file << "\n";
        return 1;
      }
      auto loaded = std::make_shared<const sim::ExecutionLog>(
          sim::ExecutionLog::load(is));
      sim.set_drift_policy(std::make_shared<sim::ReplayDriftPolicy>(loaded));
      install_delay_policy(std::make_shared<sim::ReplayDelayPolicy>(loaded));
      std::cout << "replaying " << replay_file << " ("
                << loaded->deliveries.size() << " deliveries)\n";
    } else if (!record_file.empty()) {
      sim.set_drift_policy(std::make_shared<sim::RecordingDriftPolicy>(
          built.drift, record_log));
      install_delay_policy(std::make_shared<sim::RecordingDelayPolicy>(
          built.delay, record_log));
    }

    obs::FlightRecorder recorder([&] {
      obs::FlightRecorder::Options ropt;
      ropt.capacity = trace_capacity > 0 ? static_cast<std::size_t>(trace_capacity)
                                         : std::size_t{1} << 16;
      ropt.sample_every = trace_sample > 0 ? static_cast<std::uint64_t>(trace_sample) : 1;
      return ropt;
    }());
    if (!trace_file.empty()) {
      if (!obs::kTraceCompiled) {
        std::cerr << "warning: --trace requested but tracing was compiled "
                     "out (TBCS_TRACE=OFF); the dump will be empty\n";
      }
      recorder.set_num_nodes(static_cast<std::uint64_t>(built.graph->num_nodes()));
      sim.set_flight_recorder(&recorder);
    }

    // Exact diameter is O(n^2) BFS; past ~64k nodes switch to the
    // two-sweep estimate (exact on trees/paths, lower bound otherwise)
    // so million-node runs don't stall before the first event.
    const int d = built.graph->num_nodes() > 65536
                      ? built.graph->diameter_2sweep()
                      : built.graph->diameter();
    const double g_bound =
        built.params.global_skew_bound(d, cfg.eps, cfg.delay);
    const double l_bound = built.params.local_skew_bound(d, cfg.eps, cfg.delay);

    analysis::SkewTracker::Options topt;
    if (audit_oracle) topt.mode = analysis::SkewTracker::Mode::kAuditOracle;
    // The stride exists for the serial per-event observer; the sharded
    // engine already samples per window barrier (thousands of events per
    // call), so striding there would only starve the reports.  The stair
    // backend replaces it outright with grid sampling.
    topt.stride =
        cfg.skew_stride > 1 && cfg.shards == 0 && !stair
            ? static_cast<std::uint64_t>(cfg.skew_stride)
            : 1;
    topt.audit_epsilon = cfg.eps;
    topt.history = hcfg;
    if (stair) {
      // Sample on the probe grid k * delay — the same instants in every
      // engine (serial probe events, sharded probe barriers), so the
      // sketch is byte-identical across --shards/--queue.  Between grid
      // points logical rates stay within [1-eps, (1+eps)(1+mu)], which
      // bounds how far a skew extremum can drift: that span times the
      // grid step is the advertised error bound.
      topt.sample_grid = cfg.delay;
      topt.error_rate_span =
          (1.0 + cfg.eps) * (1.0 + built.params.mu) - (1.0 - cfg.eps);
    }
    // The per-distance profile materializes all-pairs distances (O(n^2)
    // memory); refuse outright where that is gigabytes, instead of
    // thrashing for hours.
    if (cfg.per_distance && built.graph->num_nodes() > 16384) {
      std::cerr << "error: --per-distance stores all-pairs distances "
                   "(O(n^2)); refusing at n > 16384.  Use the skew "
                   "summary / --series-csv for large runs.\n";
      return 2;
    }
    topt.track_per_distance = cfg.per_distance;
    // Stair mode: the grid drives the series cadence instead.
    topt.series_interval = stair ? 0.0 : cfg.duration / 200.0;
    if (!built.timeline.empty()) {
      // "Recovered" = back inside the paper's envelope (Thm 5.5 / 5.10).
      topt.recovery_global_bound = g_bound;
      topt.recovery_local_bound = l_bound;
      // Classify on the probe grid (build_experiment arms probes every
      // cfg.delay), so recovery/stabilization times are byte-identical
      // between the serial and sharded engines.
      topt.recovery_classify_interval = cfg.delay;
      // Liars are not part of the guarantee: every skew figure is over the
      // correct subgraph only.
      for (const fault::ByzantineSpec& s : built.timeline.byzantine) {
        topt.exclude.push_back(s.node);
      }
    }
    analysis::SkewTracker tracker(sim, topt);

    // Churned runs share the observer slot between the tracker and the
    // per-inserted-edge stabilization probe ("stabilized" = edge skew
    // back inside the Thm 5.10 envelope, for good).
    std::optional<dyn::StabilizationProbe> probe;
    if (!built.churn.empty()) {
      dyn::StabilizationProbe::Options popt;
      popt.bound = cfg.stab_bound > 0.0 ? cfg.stab_bound : l_bound;
      popt.mu = built.params.mu;
      popt.stride = topt.stride;
      popt.history = hcfg;
      if (stair) popt.sample_grid = cfg.delay;
      probe.emplace(popt);
      probe->preload(built.churn);
      dyn::attach_dyn_observers(sim, &tracker, &*probe);
    } else {
      tracker.attach_auto(sim);
    }

    std::optional<fault::FaultScheduler> faults;
    std::optional<dyn::ChurnDriver> churn_driver;
    if (!built.timeline.empty()) {
      // Faults own the pacing; churn ops (if any) are already installed
      // and fire on their own, but no repartition driver runs.
      faults.emplace(built.timeline);
      faults->set_listener([&tracker](const fault::FaultEvent& e, double t) {
        if (e.kind == fault::FaultKind::kScramble) {
          tracker.note_scramble(t);
        } else {
          tracker.note_fault(t);
        }
      });
      faults->run(sim, cfg.duration);
    } else if (!built.churn.empty()) {
      dyn::ChurnDriverOptions dopt;
      dopt.check_interval = cfg.churn_check_interval > 0.0
                                ? cfg.churn_check_interval
                                : cfg.duration / 20.0;
      dopt.cut_growth = cfg.churn_cut_growth;
      dopt.repartition = cfg.churn_repartition;
      churn_driver.emplace(sim, dopt);
      churn_driver->run(cfg.duration);
    } else {
      sim.run_until(cfg.duration);
    }

    analysis::Table summary({"metric", "value"});
    summary.add_row({"topology", cfg.topology + " (n=" +
                                     std::to_string(built.graph->num_nodes()) +
                                     ", D=" + std::to_string(d) + ")"});
    summary.add_row({"algorithm", cfg.algorithm});
    if (sim.shards() > 0) {
      const auto bal = sim.partition()->balance();
      summary.add_row(
          {"shards", std::to_string(sim.shards()) + " (" + cfg.partition +
                         ", cut " + std::to_string(bal.cut_edges) + "/" +
                         std::to_string(built.graph->num_edges()) +
                         " edges, imbalance " +
                         analysis::Table::num(bal.imbalance, 3) + ")"});
    }
    summary.add_row({"mu / H0 / kappa",
                     analysis::Table::num(built.params.mu, 4) + " / " +
                         analysis::Table::num(built.params.h0, 3) + " / " +
                         analysis::Table::num(built.params.kappa, 3)});
    summary.add_row({"duration", analysis::Table::num(sim.now(), 1)});
    summary.add_row({"messages", analysis::Table::integer(
                                     static_cast<long long>(sim.messages_delivered()))});
    summary.add_row({"global skew", analysis::Table::num(tracker.max_global_skew(), 4)});
    summary.add_row({"global bound G (Thm 5.5)", analysis::Table::num(g_bound, 4)});
    summary.add_row({"local skew", analysis::Table::num(tracker.max_local_skew(), 4)});
    summary.add_row({"local bound (Thm 5.10)", analysis::Table::num(l_bound, 4)});
    summary.add_row({"envelope violation",
                     analysis::Table::num(tracker.max_envelope_violation(), 6)});
    summary.add_row({"rates seen", "[" + analysis::Table::num(tracker.min_logical_rate(), 4) +
                                       ", " + analysis::Table::num(tracker.max_logical_rate(), 4) +
                                       "]"});
    if (stair) {
      summary.add_row(
          {"history backend",
           std::string(obs::history_backend_name(hcfg.backend)) + " (budget " +
               std::to_string(hcfg.memory_budget_bytes / 1024) + " KB, used " +
               std::to_string(tracker.history_memory_bytes()) +
               " B, skew err <= " +
               analysis::Table::num(tracker.skew_error_bound(), 4) + ")"});
    }
    if (!built.churn.empty()) {
      summary.add_row(
          {"churn ops",
           analysis::Table::integer(
               static_cast<long long>(built.churn.ops.size())) +
               " (" +
               analysis::Table::integer(static_cast<long long>(sim.joins())) +
               " joins, " +
               analysis::Table::integer(static_cast<long long>(sim.leaves())) +
               " leaves)"});
      if (churn_driver) {
        summary.add_row(
            {"repartitions",
             analysis::Table::integer(
                 static_cast<long long>(sim.repartitions())) +
                 " (live cut " +
                 analysis::Table::num(churn_driver->last_cut_fraction(), 3) +
                 ", baseline " +
                 analysis::Table::num(churn_driver->baseline_cut_fraction(), 3) +
                 ")"});
      }
      if (probe && probe->insertions() > 0) {
        summary.add_row({"edge insertions observed",
                         analysis::Table::integer(static_cast<long long>(
                             probe->insertions()))});
        summary.add_row(
            {"stabilized (within local bound)",
             analysis::Table::integer(
                 static_cast<long long>(probe->stabilized())) +
                 " / " +
                 analysis::Table::integer(
                     static_cast<long long>(probe->insertions()))});
        const double mean_s = probe->mean_stabilization_time();
        const double mean_p = probe->mean_predicted_time();
        summary.add_row({"stabilization time (mean/max)",
                         (std::isnan(mean_s)
                              ? std::string("n/a")
                              : analysis::Table::num(mean_s, 2) + " / " +
                                    analysis::Table::num(
                                        probe->max_stabilization_time(), 2))});
        summary.add_row({"KLLO predicted (mean skew0/mu)",
                         std::isnan(mean_p)
                             ? std::string("n/a")
                             : analysis::Table::num(mean_p, 2)});
      }
    }
    if (faults) {
      summary.add_row({"faults applied",
                       analysis::Table::integer(
                           static_cast<long long>(faults->applied()))});
      summary.add_row({"crashes / recoveries",
                       analysis::Table::integer(
                           static_cast<long long>(sim.crashes())) +
                           " / " +
                           analysis::Table::integer(
                               static_cast<long long>(sim.recoveries()))});
      summary.add_row({"messages dropped",
                       analysis::Table::integer(static_cast<long long>(
                           sim.messages_dropped()))});
      const double rec = tracker.recovery_time();
      summary.add_row({"last fault at",
                       analysis::Table::num(tracker.last_fault_time(), 1)});
      summary.add_row({"recovery time",
                       std::isnan(rec) ? std::string("not recovered")
                                       : analysis::Table::num(rec, 2)});
      if (sim.scrambles() > 0) {
        const double stab = tracker.stabilization_time();
        summary.add_row({"scrambles applied",
                         analysis::Table::integer(
                             static_cast<long long>(sim.scrambles()))});
        summary.add_row({"stabilization time",
                         std::isnan(stab) ? std::string("not stabilized")
                                          : analysis::Table::num(stab, 2)});
      }
    }
    summary.print(std::cout);

    // Surface the simulator drop/fault counters in the metrics registry so
    // --stats JSON (and anything else reading the global snapshot) sees
    // them alongside the runtime/sweep counters.
    {
      auto& reg = obs::MetricsRegistry::global();
      reg.counter("sim.messages_dropped").inc(sim.messages_dropped());
      reg.counter("sim.timer_cancels").inc(sim.timer_cancels());
      if (!built.churn.empty()) {
        // Canonical (shard-count-invariant) churn figures only; the
        // repartition count is placement-dependent and stays out of the
        // byte-compared stats JSON.
        reg.counter("churn.joins").inc(sim.joins());
        reg.counter("churn.leaves").inc(sim.leaves());
        reg.counter("churn.ops_scheduled").inc(built.churn.ops.size());
        if (probe) {
          reg.counter("churn.edge_insertions").inc(probe->insertions());
          reg.counter("churn.edges_stabilized").inc(probe->stabilized());
        }
      }
      if (faults) {
        reg.counter("fault.events_applied").inc(faults->applied());
        reg.counter("fault.crashes").inc(sim.crashes());
        reg.counter("fault.recoveries").inc(sim.recoveries());
        const double rec = tracker.recovery_time();
        reg.gauge("fault.last_fault_time").set(tracker.last_fault_time());
        reg.gauge("fault.recovery_time").set(std::isnan(rec) ? -1.0 : rec);
        if (sim.scrambles() > 0) {
          const double stab = tracker.stabilization_time();
          reg.counter("fault.scrambles").inc(sim.scrambles());
          reg.gauge("fault.stabilization_time")
              .set(std::isnan(stab) ? -1.0 : stab);
        }
        if (built.channel) {
          reg.counter("fault.channel_dropped").inc(built.channel->dropped());
          reg.counter("fault.channel_duplicated")
              .inc(built.channel->duplicated());
          reg.counter("fault.channel_corrupted")
              .inc(built.channel->corrupted());
        }
      }
    }

    if (chart) {
      std::cout << "\n";
      analysis::ChartOptions copt;
      copt.label = "global skew";
      copt.reference = g_bound;
      analysis::render_skew_chart(std::cout, tracker.series(), /*local=*/false,
                                  copt);
      std::cout << "\n";
      copt.label = "local skew";
      copt.reference = l_bound;
      analysis::render_skew_chart(std::cout, tracker.series(), /*local=*/true,
                                  copt);
    }

    const auto write = [](const std::string& path, auto&& writer) {
      if (path.empty()) return;
      std::ofstream os(path);
      writer(os);
      std::cout << "wrote " << path << "\n";
    };
    write(series_csv, [&](std::ostream& os) { analysis::write_series_csv(os, tracker); });
    write(profile_csv,
          [&](std::ostream& os) { analysis::write_distance_profile_csv(os, tracker); });
    write(snapshot_csv, [&](std::ostream& os) { analysis::write_snapshot_csv(os, sim); });
    if (!record_file.empty() && replay_file.empty()) {
      write(record_file, [&](std::ostream& os) { record_log->save(os); });
    }
    if (!trace_file.empty()) {
      std::ofstream os(trace_file, std::ios::binary);
      if (!os) {
        std::cerr << "error: cannot open " << trace_file << " for writing\n";
        return 1;
      }
      recorder.save(os);
      std::cout << "wrote " << trace_file << " (" << recorder.size()
                << " of " << recorder.total_recorded() << " records kept)\n";
    }
    if (stats || !stats_json.empty()) {
      // Every figure in the "obs" block is a pure function of the
      // grid-sampled append sequence, hence identical across
      // --shards/--queue — the byte-comparison gates rely on that.
      analysis::ObsBackendReport obs_report;
      obs_report.backend = obs::history_backend_name(hcfg.backend);
      obs_report.budget_bytes = hcfg.memory_budget_bytes;
      obs_report.error_bound = tracker.skew_error_bound();
      if (stair) {
        const obs::HistoryStore* stores[] = {
            &tracker.global_history(), &tracker.local_history(),
            probe ? probe->stabilization_history() : nullptr};
        for (const obs::HistoryStore* s : stores) {
          if (s == nullptr) continue;
          obs_report.appends += s->appends();
          obs_report.memory_bytes += s->memory_bytes();
          obs_report.windows += s->windows().size();
          obs_report.coarsest_window_span = std::max(
              obs_report.coarsest_window_span, s->coarsest_window_span());
        }
      }
      const auto snap = obs::MetricsRegistry::global().snapshot();
      obs::FlightRecorder* rec = trace_file.empty() ? nullptr : &recorder;
      if (stats) {
        analysis::write_stats_json(std::cout, sim, &snap, rec, &obs_report);
      }
      if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
          std::cerr << "error: cannot open " << stats_json << " for writing\n";
          return 1;
        }
        analysis::write_stats_json(os, sim, &snap, rec, &obs_report);
        std::cout << "wrote " << stats_json << "\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
