// tbcs_trace — inspect, convert, and diff flight-recorder dumps.
//
//   tbcs_trace --summary FILE              per-kind/per-node/per-edge tables
//   tbcs_trace --chrome FILE [--out FILE]  Chrome/Perfetto trace_event JSON
//                [--no-counters]           (skip per-node counter tracks)
//   tbcs_trace --diff A B [--tolerance T]  first divergent event of two
//                                          traces of "the same" execution
//
// Dumps come from `tbcs_sim --trace FILE` (or any code that calls
// FlightRecorder::save).  --diff exits 0 when the traces match, 1 when
// they diverge, 2 on usage/IO errors — so scripts can gate on it.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_tools.hpp"

namespace {

constexpr const char* kUsage =
    R"(tbcs_trace — flight-recorder dump tooling

  tbcs_trace --summary FILE              print per-kind/node/edge tables
             [--obs-backend exact|stair] append an event-rate timeline of
             [--obs-memory-kb N]         the dump through the chosen
                                         history backend (stair: bounded
                                         memory, default budget 64 KB)
  tbcs_trace --chrome FILE [--out FILE]  convert to Chrome/Perfetto JSON
             [--no-counters]             omit per-node counter tracks
  tbcs_trace --diff A B [--tolerance T]  locate first divergent event
)";

tbcs::obs::FlightRecorder::Dump load_dump(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  return tbcs::obs::FlightRecorder::load(is);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tbcs;

  std::string mode;
  std::vector<std::string> files;
  std::string out;
  double tolerance = 0.0;
  bool no_counters = false;
  std::string obs_backend;  // empty: no timeline section
  int obs_memory_kb = 64;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (a == "--summary" || a == "--chrome" || a == "--diff") {
      if (!mode.empty()) {
        std::cerr << "error: " << a << " conflicts with --" << mode << "\n";
        return 2;
      }
      mode = a.substr(2);
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (a == "--tolerance" && i + 1 < argc) {
      tolerance = std::stod(argv[++i]);
    } else if (a == "--no-counters") {
      no_counters = true;
    } else if (a == "--obs-backend" && i + 1 < argc) {
      obs_backend = argv[++i];
    } else if (a == "--obs-memory-kb" && i + 1 < argc) {
      obs_memory_kb = std::stoi(argv[++i]);
    } else if (a.size() >= 2 && a.compare(0, 2, "--") == 0) {
      std::cerr << "error: unknown flag " << a << "\n" << kUsage;
      return 2;
    } else {
      files.push_back(a);
    }
  }

  try {
    if (mode == "summary") {
      if (files.size() != 1) {
        std::cerr << "error: --summary takes exactly one dump file\n";
        return 2;
      }
      const auto dump = load_dump(files[0]);
      const obs::TraceSummary s = obs::summarize(dump);
      std::cout << files[0] << ": " << dump.records.size()
                << " records held of " << dump.total_recorded
                << " recorded (sample_every=" << dump.sample_every
                << ", nodes=" << dump.num_nodes << ")\n\n";
      obs::print_summary(std::cout, s);
      if (!obs_backend.empty()) {
        obs::HistoryConfig hcfg;
        hcfg.backend = obs::parse_history_backend(obs_backend);
        if (obs_memory_kb <= 0) {
          std::cerr << "error: --obs-memory-kb must be > 0\n";
          return 2;
        }
        hcfg.memory_budget_bytes =
            static_cast<std::size_t>(obs_memory_kb) * 1024;
        std::cout << "\n";
        obs::print_timeline(std::cout, obs::summarize_timeline(dump, hcfg));
      }
      return 0;
    }
    if (mode == "chrome") {
      if (files.size() != 1) {
        std::cerr << "error: --chrome takes exactly one dump file\n";
        return 2;
      }
      const auto dump = load_dump(files[0]);
      obs::ChromeTraceOptions copt;
      copt.counter_tracks = !no_counters;
      if (out.empty()) {
        obs::write_chrome_trace(std::cout, dump, copt);
      } else {
        std::ofstream os(out);
        if (!os) throw std::runtime_error("cannot open " + out + " for writing");
        obs::write_chrome_trace(os, dump, copt);
        std::cerr << "wrote " << out << " (" << dump.records.size()
                  << " records); open at https://ui.perfetto.dev\n";
      }
      return 0;
    }
    if (mode == "diff") {
      if (files.size() != 2) {
        std::cerr << "error: --diff takes exactly two dump files\n";
        return 2;
      }
      const auto a = load_dump(files[0]);
      const auto b = load_dump(files[1]);
      const obs::TraceDiff d = obs::diff_traces(a, b, tolerance);
      std::cout << d.description << "\n";
      if (d.diverged) {
        if (d.have_a) {
          std::cout << "  A: " << obs::format_record(d.a) << "\n";
        } else {
          std::cout << "  A: <ended before seq " << d.seq << ">\n";
        }
        if (d.have_b) {
          std::cout << "  B: " << obs::format_record(d.b) << "\n";
        } else {
          std::cout << "  B: <ended before seq " << d.seq << ">\n";
        }
      }
      return d.diverged ? 1 : 0;
    }
    std::cerr << "error: pick one of --summary, --chrome, --diff\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
