# Empty dependencies file for test_event_ordering.
# This may be replaced when dependencies are built.
