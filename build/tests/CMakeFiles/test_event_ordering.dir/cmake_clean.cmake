file(REMOVE_RECURSE
  "CMakeFiles/test_event_ordering.dir/apps/test_event_ordering.cpp.o"
  "CMakeFiles/test_event_ordering.dir/apps/test_event_ordering.cpp.o.d"
  "test_event_ordering"
  "test_event_ordering.pdb"
  "test_event_ordering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
