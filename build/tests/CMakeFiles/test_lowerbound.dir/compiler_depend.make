# Empty compiler generated dependencies file for test_lowerbound.
# This may be replaced when dependencies are built.
