file(REMOVE_RECURSE
  "CMakeFiles/test_lowerbound.dir/lowerbound/test_lowerbound.cpp.o"
  "CMakeFiles/test_lowerbound.dir/lowerbound/test_lowerbound.cpp.o.d"
  "test_lowerbound"
  "test_lowerbound.pdb"
  "test_lowerbound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
