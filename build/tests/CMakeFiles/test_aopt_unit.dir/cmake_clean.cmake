file(REMOVE_RECURSE
  "CMakeFiles/test_aopt_unit.dir/core/test_aopt_unit.cpp.o"
  "CMakeFiles/test_aopt_unit.dir/core/test_aopt_unit.cpp.o.d"
  "test_aopt_unit"
  "test_aopt_unit.pdb"
  "test_aopt_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aopt_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
