# Empty compiler generated dependencies file for test_aopt_unit.
# This may be replaced when dependencies are built.
