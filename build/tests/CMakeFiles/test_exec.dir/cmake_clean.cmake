file(REMOVE_RECURSE
  "CMakeFiles/test_exec.dir/exec/test_exec.cpp.o"
  "CMakeFiles/test_exec.dir/exec/test_exec.cpp.o.d"
  "test_exec"
  "test_exec.pdb"
  "test_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
