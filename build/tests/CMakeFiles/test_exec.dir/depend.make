# Empty dependencies file for test_exec.
# This may be replaced when dependencies are built.
