# Empty dependencies file for test_hardware_clock.
# This may be replaced when dependencies are built.
