file(REMOVE_RECURSE
  "CMakeFiles/test_hardware_clock.dir/sim/test_hardware_clock.cpp.o"
  "CMakeFiles/test_hardware_clock.dir/sim/test_hardware_clock.cpp.o.d"
  "test_hardware_clock"
  "test_hardware_clock.pdb"
  "test_hardware_clock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hardware_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
