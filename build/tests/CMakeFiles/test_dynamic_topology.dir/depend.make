# Empty dependencies file for test_dynamic_topology.
# This may be replaced when dependencies are built.
