file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_topology.dir/sim/test_dynamic_topology.cpp.o"
  "CMakeFiles/test_dynamic_topology.dir/sim/test_dynamic_topology.cpp.o.d"
  "test_dynamic_topology"
  "test_dynamic_topology.pdb"
  "test_dynamic_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
