# Empty dependencies file for test_rate_rule.
# This may be replaced when dependencies are built.
