file(REMOVE_RECURSE
  "CMakeFiles/test_rate_rule.dir/core/test_rate_rule.cpp.o"
  "CMakeFiles/test_rate_rule.dir/core/test_rate_rule.cpp.o.d"
  "test_rate_rule"
  "test_rate_rule.pdb"
  "test_rate_rule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
