# Empty dependencies file for test_tdma.
# This may be replaced when dependencies are built.
