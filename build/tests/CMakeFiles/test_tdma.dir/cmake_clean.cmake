file(REMOVE_RECURSE
  "CMakeFiles/test_tdma.dir/apps/test_tdma.cpp.o"
  "CMakeFiles/test_tdma.dir/apps/test_tdma.cpp.o.d"
  "test_tdma"
  "test_tdma.pdb"
  "test_tdma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
