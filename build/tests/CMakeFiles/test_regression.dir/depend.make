# Empty dependencies file for test_regression.
# This may be replaced when dependencies are built.
