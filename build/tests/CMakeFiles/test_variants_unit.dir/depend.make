# Empty dependencies file for test_variants_unit.
# This may be replaced when dependencies are built.
