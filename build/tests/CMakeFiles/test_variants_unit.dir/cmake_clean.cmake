file(REMOVE_RECURSE
  "CMakeFiles/test_variants_unit.dir/core/test_variants_unit.cpp.o"
  "CMakeFiles/test_variants_unit.dir/core/test_variants_unit.cpp.o.d"
  "test_variants_unit"
  "test_variants_unit.pdb"
  "test_variants_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variants_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
