
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/test_topologies.cpp" "tests/CMakeFiles/test_topologies.dir/graph/test_topologies.cpp.o" "gcc" "tests/CMakeFiles/test_topologies.dir/graph/test_topologies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tbcs_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
