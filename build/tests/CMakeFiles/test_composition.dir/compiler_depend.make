# Empty compiler generated dependencies file for test_composition.
# This may be replaced when dependencies are built.
