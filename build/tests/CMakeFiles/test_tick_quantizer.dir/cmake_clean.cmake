file(REMOVE_RECURSE
  "CMakeFiles/test_tick_quantizer.dir/sim/test_tick_quantizer.cpp.o"
  "CMakeFiles/test_tick_quantizer.dir/sim/test_tick_quantizer.cpp.o.d"
  "test_tick_quantizer"
  "test_tick_quantizer.pdb"
  "test_tick_quantizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tick_quantizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
