# Empty compiler generated dependencies file for test_tick_quantizer.
# This may be replaced when dependencies are built.
