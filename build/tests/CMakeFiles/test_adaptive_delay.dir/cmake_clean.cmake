file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_delay.dir/core/test_adaptive_delay.cpp.o"
  "CMakeFiles/test_adaptive_delay.dir/core/test_adaptive_delay.cpp.o.d"
  "test_adaptive_delay"
  "test_adaptive_delay.pdb"
  "test_adaptive_delay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
