# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_hardware_clock[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic_topology[1]_include.cmake")
include("/root/repo/build/tests/test_tick_quantizer[1]_include.cmake")
include("/root/repo/build/tests/test_recorder[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_topologies[1]_include.cmake")
include("/root/repo/build/tests/test_params[1]_include.cmake")
include("/root/repo/build/tests/test_rate_rule[1]_include.cmake")
include("/root/repo/build/tests/test_aopt_unit[1]_include.cmake")
include("/root/repo/build/tests/test_variants[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive_delay[1]_include.cmake")
include("/root/repo/build/tests/test_variants_unit[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_regression[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_lowerbound[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_tdma[1]_include.cmake")
include("/root/repo/build/tests/test_event_ordering[1]_include.cmake")
include("/root/repo/build/tests/test_composition[1]_include.cmake")
