file(REMOVE_RECURSE
  "CMakeFiles/zero_conf_bringup.dir/zero_conf_bringup.cpp.o"
  "CMakeFiles/zero_conf_bringup.dir/zero_conf_bringup.cpp.o.d"
  "zero_conf_bringup"
  "zero_conf_bringup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_conf_bringup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
