# Empty dependencies file for zero_conf_bringup.
# This may be replaced when dependencies are built.
