file(REMOVE_RECURSE
  "CMakeFiles/tdma_sensor_network.dir/tdma_sensor_network.cpp.o"
  "CMakeFiles/tdma_sensor_network.dir/tdma_sensor_network.cpp.o.d"
  "tdma_sensor_network"
  "tdma_sensor_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdma_sensor_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
