# Empty compiler generated dependencies file for tdma_sensor_network.
# This may be replaced when dependencies are built.
