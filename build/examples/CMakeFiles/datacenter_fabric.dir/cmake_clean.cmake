file(REMOVE_RECURSE
  "CMakeFiles/datacenter_fabric.dir/datacenter_fabric.cpp.o"
  "CMakeFiles/datacenter_fabric.dir/datacenter_fabric.cpp.o.d"
  "datacenter_fabric"
  "datacenter_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
