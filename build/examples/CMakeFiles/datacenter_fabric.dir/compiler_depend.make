# Empty compiler generated dependencies file for datacenter_fabric.
# This may be replaced when dependencies are built.
