file(REMOVE_RECURSE
  "CMakeFiles/wan_external_sync.dir/wan_external_sync.cpp.o"
  "CMakeFiles/wan_external_sync.dir/wan_external_sync.cpp.o.d"
  "wan_external_sync"
  "wan_external_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_external_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
