# Empty compiler generated dependencies file for wan_external_sync.
# This may be replaced when dependencies are built.
