file(REMOVE_RECURSE
  "CMakeFiles/threaded_demo.dir/threaded_demo.cpp.o"
  "CMakeFiles/threaded_demo.dir/threaded_demo.cpp.o.d"
  "threaded_demo"
  "threaded_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
