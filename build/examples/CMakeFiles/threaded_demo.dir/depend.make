# Empty dependencies file for threaded_demo.
# This may be replaced when dependencies are built.
