file(REMOVE_RECURSE
  "CMakeFiles/tbcs_sim.dir/sim/hardware_clock.cpp.o"
  "CMakeFiles/tbcs_sim.dir/sim/hardware_clock.cpp.o.d"
  "CMakeFiles/tbcs_sim.dir/sim/recorder.cpp.o"
  "CMakeFiles/tbcs_sim.dir/sim/recorder.cpp.o.d"
  "CMakeFiles/tbcs_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/tbcs_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/tbcs_sim.dir/sim/tick_quantizer.cpp.o"
  "CMakeFiles/tbcs_sim.dir/sim/tick_quantizer.cpp.o.d"
  "libtbcs_sim.a"
  "libtbcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
