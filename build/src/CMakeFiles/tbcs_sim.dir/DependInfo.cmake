
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/hardware_clock.cpp" "src/CMakeFiles/tbcs_sim.dir/sim/hardware_clock.cpp.o" "gcc" "src/CMakeFiles/tbcs_sim.dir/sim/hardware_clock.cpp.o.d"
  "/root/repo/src/sim/recorder.cpp" "src/CMakeFiles/tbcs_sim.dir/sim/recorder.cpp.o" "gcc" "src/CMakeFiles/tbcs_sim.dir/sim/recorder.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/tbcs_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/tbcs_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/tick_quantizer.cpp" "src/CMakeFiles/tbcs_sim.dir/sim/tick_quantizer.cpp.o" "gcc" "src/CMakeFiles/tbcs_sim.dir/sim/tick_quantizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tbcs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
