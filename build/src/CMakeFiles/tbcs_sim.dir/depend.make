# Empty dependencies file for tbcs_sim.
# This may be replaced when dependencies are built.
