file(REMOVE_RECURSE
  "libtbcs_sim.a"
)
