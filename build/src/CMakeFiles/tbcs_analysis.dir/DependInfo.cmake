
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ascii_chart.cpp" "src/CMakeFiles/tbcs_analysis.dir/analysis/ascii_chart.cpp.o" "gcc" "src/CMakeFiles/tbcs_analysis.dir/analysis/ascii_chart.cpp.o.d"
  "/root/repo/src/analysis/counters.cpp" "src/CMakeFiles/tbcs_analysis.dir/analysis/counters.cpp.o" "gcc" "src/CMakeFiles/tbcs_analysis.dir/analysis/counters.cpp.o.d"
  "/root/repo/src/analysis/skew_tracker.cpp" "src/CMakeFiles/tbcs_analysis.dir/analysis/skew_tracker.cpp.o" "gcc" "src/CMakeFiles/tbcs_analysis.dir/analysis/skew_tracker.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/CMakeFiles/tbcs_analysis.dir/analysis/table.cpp.o" "gcc" "src/CMakeFiles/tbcs_analysis.dir/analysis/table.cpp.o.d"
  "/root/repo/src/analysis/trace.cpp" "src/CMakeFiles/tbcs_analysis.dir/analysis/trace.cpp.o" "gcc" "src/CMakeFiles/tbcs_analysis.dir/analysis/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tbcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
