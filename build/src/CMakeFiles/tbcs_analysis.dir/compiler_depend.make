# Empty compiler generated dependencies file for tbcs_analysis.
# This may be replaced when dependencies are built.
