file(REMOVE_RECURSE
  "libtbcs_analysis.a"
)
