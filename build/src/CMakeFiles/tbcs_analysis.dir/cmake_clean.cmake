file(REMOVE_RECURSE
  "CMakeFiles/tbcs_analysis.dir/analysis/ascii_chart.cpp.o"
  "CMakeFiles/tbcs_analysis.dir/analysis/ascii_chart.cpp.o.d"
  "CMakeFiles/tbcs_analysis.dir/analysis/counters.cpp.o"
  "CMakeFiles/tbcs_analysis.dir/analysis/counters.cpp.o.d"
  "CMakeFiles/tbcs_analysis.dir/analysis/skew_tracker.cpp.o"
  "CMakeFiles/tbcs_analysis.dir/analysis/skew_tracker.cpp.o.d"
  "CMakeFiles/tbcs_analysis.dir/analysis/table.cpp.o"
  "CMakeFiles/tbcs_analysis.dir/analysis/table.cpp.o.d"
  "CMakeFiles/tbcs_analysis.dir/analysis/trace.cpp.o"
  "CMakeFiles/tbcs_analysis.dir/analysis/trace.cpp.o.d"
  "libtbcs_analysis.a"
  "libtbcs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
