file(REMOVE_RECURSE
  "libtbcs_cli.a"
)
