file(REMOVE_RECURSE
  "CMakeFiles/tbcs_cli.dir/cli/args.cpp.o"
  "CMakeFiles/tbcs_cli.dir/cli/args.cpp.o.d"
  "CMakeFiles/tbcs_cli.dir/cli/experiment_config.cpp.o"
  "CMakeFiles/tbcs_cli.dir/cli/experiment_config.cpp.o.d"
  "libtbcs_cli.a"
  "libtbcs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
