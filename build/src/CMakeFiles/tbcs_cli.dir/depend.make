# Empty dependencies file for tbcs_cli.
# This may be replaced when dependencies are built.
