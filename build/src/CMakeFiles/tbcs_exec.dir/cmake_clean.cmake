file(REMOVE_RECURSE
  "CMakeFiles/tbcs_exec.dir/exec/result_sink.cpp.o"
  "CMakeFiles/tbcs_exec.dir/exec/result_sink.cpp.o.d"
  "CMakeFiles/tbcs_exec.dir/exec/sweep_runner.cpp.o"
  "CMakeFiles/tbcs_exec.dir/exec/sweep_runner.cpp.o.d"
  "CMakeFiles/tbcs_exec.dir/exec/thread_pool.cpp.o"
  "CMakeFiles/tbcs_exec.dir/exec/thread_pool.cpp.o.d"
  "libtbcs_exec.a"
  "libtbcs_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
