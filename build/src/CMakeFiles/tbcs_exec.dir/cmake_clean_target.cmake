file(REMOVE_RECURSE
  "libtbcs_exec.a"
)
