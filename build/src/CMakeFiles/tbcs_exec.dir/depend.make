# Empty dependencies file for tbcs_exec.
# This may be replaced when dependencies are built.
