file(REMOVE_RECURSE
  "libtbcs_apps.a"
)
