file(REMOVE_RECURSE
  "CMakeFiles/tbcs_apps.dir/apps/event_ordering.cpp.o"
  "CMakeFiles/tbcs_apps.dir/apps/event_ordering.cpp.o.d"
  "CMakeFiles/tbcs_apps.dir/apps/tdma.cpp.o"
  "CMakeFiles/tbcs_apps.dir/apps/tdma.cpp.o.d"
  "libtbcs_apps.a"
  "libtbcs_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
