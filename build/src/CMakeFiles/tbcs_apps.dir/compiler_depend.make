# Empty compiler generated dependencies file for tbcs_apps.
# This may be replaced when dependencies are built.
