file(REMOVE_RECURSE
  "CMakeFiles/tbcs_lowerbound.dir/lowerbound/global_adversary.cpp.o"
  "CMakeFiles/tbcs_lowerbound.dir/lowerbound/global_adversary.cpp.o.d"
  "CMakeFiles/tbcs_lowerbound.dir/lowerbound/local_adversary.cpp.o"
  "CMakeFiles/tbcs_lowerbound.dir/lowerbound/local_adversary.cpp.o.d"
  "CMakeFiles/tbcs_lowerbound.dir/lowerbound/shifting.cpp.o"
  "CMakeFiles/tbcs_lowerbound.dir/lowerbound/shifting.cpp.o.d"
  "libtbcs_lowerbound.a"
  "libtbcs_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
