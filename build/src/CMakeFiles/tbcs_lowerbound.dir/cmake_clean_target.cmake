file(REMOVE_RECURSE
  "libtbcs_lowerbound.a"
)
