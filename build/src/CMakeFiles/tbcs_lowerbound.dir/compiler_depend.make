# Empty compiler generated dependencies file for tbcs_lowerbound.
# This may be replaced when dependencies are built.
