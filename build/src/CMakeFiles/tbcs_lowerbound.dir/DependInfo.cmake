
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lowerbound/global_adversary.cpp" "src/CMakeFiles/tbcs_lowerbound.dir/lowerbound/global_adversary.cpp.o" "gcc" "src/CMakeFiles/tbcs_lowerbound.dir/lowerbound/global_adversary.cpp.o.d"
  "/root/repo/src/lowerbound/local_adversary.cpp" "src/CMakeFiles/tbcs_lowerbound.dir/lowerbound/local_adversary.cpp.o" "gcc" "src/CMakeFiles/tbcs_lowerbound.dir/lowerbound/local_adversary.cpp.o.d"
  "/root/repo/src/lowerbound/shifting.cpp" "src/CMakeFiles/tbcs_lowerbound.dir/lowerbound/shifting.cpp.o" "gcc" "src/CMakeFiles/tbcs_lowerbound.dir/lowerbound/shifting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tbcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
