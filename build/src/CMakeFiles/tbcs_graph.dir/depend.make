# Empty dependencies file for tbcs_graph.
# This may be replaced when dependencies are built.
