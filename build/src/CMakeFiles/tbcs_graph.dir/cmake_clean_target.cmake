file(REMOVE_RECURSE
  "libtbcs_graph.a"
)
