file(REMOVE_RECURSE
  "CMakeFiles/tbcs_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/tbcs_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/tbcs_graph.dir/graph/topologies.cpp.o"
  "CMakeFiles/tbcs_graph.dir/graph/topologies.cpp.o.d"
  "libtbcs_graph.a"
  "libtbcs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
