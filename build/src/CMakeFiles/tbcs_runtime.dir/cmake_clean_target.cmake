file(REMOVE_RECURSE
  "libtbcs_runtime.a"
)
