# Empty dependencies file for tbcs_runtime.
# This may be replaced when dependencies are built.
