file(REMOVE_RECURSE
  "CMakeFiles/tbcs_runtime.dir/runtime/threaded_network.cpp.o"
  "CMakeFiles/tbcs_runtime.dir/runtime/threaded_network.cpp.o.d"
  "CMakeFiles/tbcs_runtime.dir/runtime/threaded_node.cpp.o"
  "CMakeFiles/tbcs_runtime.dir/runtime/threaded_node.cpp.o.d"
  "CMakeFiles/tbcs_runtime.dir/runtime/virtual_time.cpp.o"
  "CMakeFiles/tbcs_runtime.dir/runtime/virtual_time.cpp.o.d"
  "libtbcs_runtime.a"
  "libtbcs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
