
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/threaded_network.cpp" "src/CMakeFiles/tbcs_runtime.dir/runtime/threaded_network.cpp.o" "gcc" "src/CMakeFiles/tbcs_runtime.dir/runtime/threaded_network.cpp.o.d"
  "/root/repo/src/runtime/threaded_node.cpp" "src/CMakeFiles/tbcs_runtime.dir/runtime/threaded_node.cpp.o" "gcc" "src/CMakeFiles/tbcs_runtime.dir/runtime/threaded_node.cpp.o.d"
  "/root/repo/src/runtime/virtual_time.cpp" "src/CMakeFiles/tbcs_runtime.dir/runtime/virtual_time.cpp.o" "gcc" "src/CMakeFiles/tbcs_runtime.dir/runtime/virtual_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tbcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
