
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_delay.cpp" "src/CMakeFiles/tbcs_core.dir/core/adaptive_delay.cpp.o" "gcc" "src/CMakeFiles/tbcs_core.dir/core/adaptive_delay.cpp.o.d"
  "/root/repo/src/core/aopt.cpp" "src/CMakeFiles/tbcs_core.dir/core/aopt.cpp.o" "gcc" "src/CMakeFiles/tbcs_core.dir/core/aopt.cpp.o.d"
  "/root/repo/src/core/aopt_variants.cpp" "src/CMakeFiles/tbcs_core.dir/core/aopt_variants.cpp.o" "gcc" "src/CMakeFiles/tbcs_core.dir/core/aopt_variants.cpp.o.d"
  "/root/repo/src/core/bit_codec.cpp" "src/CMakeFiles/tbcs_core.dir/core/bit_codec.cpp.o" "gcc" "src/CMakeFiles/tbcs_core.dir/core/bit_codec.cpp.o.d"
  "/root/repo/src/core/envelope_sync.cpp" "src/CMakeFiles/tbcs_core.dir/core/envelope_sync.cpp.o" "gcc" "src/CMakeFiles/tbcs_core.dir/core/envelope_sync.cpp.o.d"
  "/root/repo/src/core/external_sync.cpp" "src/CMakeFiles/tbcs_core.dir/core/external_sync.cpp.o" "gcc" "src/CMakeFiles/tbcs_core.dir/core/external_sync.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/tbcs_core.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/tbcs_core.dir/core/params.cpp.o.d"
  "/root/repo/src/core/rate_rule.cpp" "src/CMakeFiles/tbcs_core.dir/core/rate_rule.cpp.o" "gcc" "src/CMakeFiles/tbcs_core.dir/core/rate_rule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tbcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
