file(REMOVE_RECURSE
  "libtbcs_core.a"
)
