# Empty dependencies file for tbcs_core.
# This may be replaced when dependencies are built.
