file(REMOVE_RECURSE
  "CMakeFiles/tbcs_core.dir/core/adaptive_delay.cpp.o"
  "CMakeFiles/tbcs_core.dir/core/adaptive_delay.cpp.o.d"
  "CMakeFiles/tbcs_core.dir/core/aopt.cpp.o"
  "CMakeFiles/tbcs_core.dir/core/aopt.cpp.o.d"
  "CMakeFiles/tbcs_core.dir/core/aopt_variants.cpp.o"
  "CMakeFiles/tbcs_core.dir/core/aopt_variants.cpp.o.d"
  "CMakeFiles/tbcs_core.dir/core/bit_codec.cpp.o"
  "CMakeFiles/tbcs_core.dir/core/bit_codec.cpp.o.d"
  "CMakeFiles/tbcs_core.dir/core/envelope_sync.cpp.o"
  "CMakeFiles/tbcs_core.dir/core/envelope_sync.cpp.o.d"
  "CMakeFiles/tbcs_core.dir/core/external_sync.cpp.o"
  "CMakeFiles/tbcs_core.dir/core/external_sync.cpp.o.d"
  "CMakeFiles/tbcs_core.dir/core/params.cpp.o"
  "CMakeFiles/tbcs_core.dir/core/params.cpp.o.d"
  "CMakeFiles/tbcs_core.dir/core/rate_rule.cpp.o"
  "CMakeFiles/tbcs_core.dir/core/rate_rule.cpp.o.d"
  "libtbcs_core.a"
  "libtbcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
