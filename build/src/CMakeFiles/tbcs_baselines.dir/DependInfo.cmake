
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/averaging_algorithm.cpp" "src/CMakeFiles/tbcs_baselines.dir/baselines/averaging_algorithm.cpp.o" "gcc" "src/CMakeFiles/tbcs_baselines.dir/baselines/averaging_algorithm.cpp.o.d"
  "/root/repo/src/baselines/blocking_gradient.cpp" "src/CMakeFiles/tbcs_baselines.dir/baselines/blocking_gradient.cpp.o" "gcc" "src/CMakeFiles/tbcs_baselines.dir/baselines/blocking_gradient.cpp.o.d"
  "/root/repo/src/baselines/free_running.cpp" "src/CMakeFiles/tbcs_baselines.dir/baselines/free_running.cpp.o" "gcc" "src/CMakeFiles/tbcs_baselines.dir/baselines/free_running.cpp.o.d"
  "/root/repo/src/baselines/max_algorithm.cpp" "src/CMakeFiles/tbcs_baselines.dir/baselines/max_algorithm.cpp.o" "gcc" "src/CMakeFiles/tbcs_baselines.dir/baselines/max_algorithm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tbcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tbcs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
