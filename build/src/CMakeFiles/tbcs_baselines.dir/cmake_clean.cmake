file(REMOVE_RECURSE
  "CMakeFiles/tbcs_baselines.dir/baselines/averaging_algorithm.cpp.o"
  "CMakeFiles/tbcs_baselines.dir/baselines/averaging_algorithm.cpp.o.d"
  "CMakeFiles/tbcs_baselines.dir/baselines/blocking_gradient.cpp.o"
  "CMakeFiles/tbcs_baselines.dir/baselines/blocking_gradient.cpp.o.d"
  "CMakeFiles/tbcs_baselines.dir/baselines/free_running.cpp.o"
  "CMakeFiles/tbcs_baselines.dir/baselines/free_running.cpp.o.d"
  "CMakeFiles/tbcs_baselines.dir/baselines/max_algorithm.cpp.o"
  "CMakeFiles/tbcs_baselines.dir/baselines/max_algorithm.cpp.o.d"
  "libtbcs_baselines.a"
  "libtbcs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
