# Empty compiler generated dependencies file for tbcs_baselines.
# This may be replaced when dependencies are built.
