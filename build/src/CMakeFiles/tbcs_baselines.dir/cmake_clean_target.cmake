file(REMOVE_RECURSE
  "libtbcs_baselines.a"
)
