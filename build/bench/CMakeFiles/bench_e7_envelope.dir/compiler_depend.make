# Empty compiler generated dependencies file for bench_e7_envelope.
# This may be replaced when dependencies are built.
