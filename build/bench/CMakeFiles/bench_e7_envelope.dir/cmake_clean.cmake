file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_envelope.dir/bench_e7_envelope.cpp.o"
  "CMakeFiles/bench_e7_envelope.dir/bench_e7_envelope.cpp.o.d"
  "bench_e7_envelope"
  "bench_e7_envelope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
