# Empty dependencies file for bench_e6_msg_freq.
# This may be replaced when dependencies are built.
