file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_msg_freq.dir/bench_e6_msg_freq.cpp.o"
  "CMakeFiles/bench_e6_msg_freq.dir/bench_e6_msg_freq.cpp.o.d"
  "bench_e6_msg_freq"
  "bench_e6_msg_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_msg_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
