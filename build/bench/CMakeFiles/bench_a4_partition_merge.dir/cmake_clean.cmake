file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_partition_merge.dir/bench_a4_partition_merge.cpp.o"
  "CMakeFiles/bench_a4_partition_merge.dir/bench_a4_partition_merge.cpp.o.d"
  "bench_a4_partition_merge"
  "bench_a4_partition_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_partition_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
