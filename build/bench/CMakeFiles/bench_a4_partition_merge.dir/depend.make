# Empty dependencies file for bench_a4_partition_merge.
# This may be replaced when dependencies are built.
