# Empty compiler generated dependencies file for bench_e3_mu_over_eps.
# This may be replaced when dependencies are built.
