file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_mu_over_eps.dir/bench_e3_mu_over_eps.cpp.o"
  "CMakeFiles/bench_e3_mu_over_eps.dir/bench_e3_mu_over_eps.cpp.o.d"
  "bench_e3_mu_over_eps"
  "bench_e3_mu_over_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_mu_over_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
