# Empty dependencies file for bench_a2_extensions.
# This may be replaced when dependencies are built.
