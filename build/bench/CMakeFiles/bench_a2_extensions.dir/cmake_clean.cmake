file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_extensions.dir/bench_a2_extensions.cpp.o"
  "CMakeFiles/bench_a2_extensions.dir/bench_a2_extensions.cpp.o.d"
  "bench_a2_extensions"
  "bench_a2_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
