# Empty dependencies file for bench_exec_speedup.
# This may be replaced when dependencies are built.
