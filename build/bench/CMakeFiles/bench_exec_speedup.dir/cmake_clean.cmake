file(REMOVE_RECURSE
  "CMakeFiles/bench_exec_speedup.dir/bench_exec_speedup.cpp.o"
  "CMakeFiles/bench_exec_speedup.dir/bench_exec_speedup.cpp.o.d"
  "bench_exec_speedup"
  "bench_exec_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exec_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
