file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_baselines.dir/bench_e9_baselines.cpp.o"
  "CMakeFiles/bench_e9_baselines.dir/bench_e9_baselines.cpp.o.d"
  "bench_e9_baselines"
  "bench_e9_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
