file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_lb_global.dir/bench_e4_lb_global.cpp.o"
  "CMakeFiles/bench_e4_lb_global.dir/bench_e4_lb_global.cpp.o.d"
  "bench_e4_lb_global"
  "bench_e4_lb_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_lb_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
