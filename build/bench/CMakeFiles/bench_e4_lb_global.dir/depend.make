# Empty dependencies file for bench_e4_lb_global.
# This may be replaced when dependencies are built.
