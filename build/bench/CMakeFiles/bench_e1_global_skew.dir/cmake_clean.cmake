file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_global_skew.dir/bench_e1_global_skew.cpp.o"
  "CMakeFiles/bench_e1_global_skew.dir/bench_e1_global_skew.cpp.o.d"
  "bench_e1_global_skew"
  "bench_e1_global_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_global_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
