# Empty dependencies file for bench_e1_global_skew.
# This may be replaced when dependencies are built.
