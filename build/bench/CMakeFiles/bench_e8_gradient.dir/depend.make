# Empty dependencies file for bench_e8_gradient.
# This may be replaced when dependencies are built.
