file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_gradient.dir/bench_e8_gradient.cpp.o"
  "CMakeFiles/bench_e8_gradient.dir/bench_e8_gradient.cpp.o.d"
  "bench_e8_gradient"
  "bench_e8_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
