file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_lb_local.dir/bench_e5_lb_local.cpp.o"
  "CMakeFiles/bench_e5_lb_local.dir/bench_e5_lb_local.cpp.o.d"
  "bench_e5_lb_local"
  "bench_e5_lb_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_lb_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
