# Empty dependencies file for bench_e5_lb_local.
# This may be replaced when dependencies are built.
