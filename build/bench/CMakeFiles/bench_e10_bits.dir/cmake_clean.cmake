file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_bits.dir/bench_e10_bits.cpp.o"
  "CMakeFiles/bench_e10_bits.dir/bench_e10_bits.cpp.o.d"
  "bench_e10_bits"
  "bench_e10_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
