# Empty dependencies file for bench_e10_bits.
# This may be replaced when dependencies are built.
