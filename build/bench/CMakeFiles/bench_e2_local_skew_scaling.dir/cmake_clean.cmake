file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_local_skew_scaling.dir/bench_e2_local_skew_scaling.cpp.o"
  "CMakeFiles/bench_e2_local_skew_scaling.dir/bench_e2_local_skew_scaling.cpp.o.d"
  "bench_e2_local_skew_scaling"
  "bench_e2_local_skew_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_local_skew_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
