# Empty dependencies file for bench_e2_local_skew_scaling.
# This may be replaced when dependencies are built.
