# Empty compiler generated dependencies file for bench_a3_adversary_search.
# This may be replaced when dependencies are built.
