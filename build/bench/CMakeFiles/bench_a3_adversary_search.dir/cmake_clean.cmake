file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_adversary_search.dir/bench_a3_adversary_search.cpp.o"
  "CMakeFiles/bench_a3_adversary_search.dir/bench_a3_adversary_search.cpp.o.d"
  "bench_a3_adversary_search"
  "bench_a3_adversary_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_adversary_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
