# Empty dependencies file for tbcs_sweep.
# This may be replaced when dependencies are built.
