file(REMOVE_RECURSE
  "CMakeFiles/tbcs_sweep.dir/tbcs_sweep.cpp.o"
  "CMakeFiles/tbcs_sweep.dir/tbcs_sweep.cpp.o.d"
  "tbcs_sweep"
  "tbcs_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
