file(REMOVE_RECURSE
  "CMakeFiles/tbcs_sim_tool.dir/tbcs_sim.cpp.o"
  "CMakeFiles/tbcs_sim_tool.dir/tbcs_sim.cpp.o.d"
  "tbcs_sim"
  "tbcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbcs_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
