# Empty compiler generated dependencies file for tbcs_sim_tool.
# This may be replaced when dependencies are built.
