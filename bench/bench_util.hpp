// Shared plumbing for the experiment binaries (E1..E10).
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/skew_tracker.hpp"
#include "analysis/table.hpp"
#include "core/aopt.hpp"
#include "core/params.hpp"
#include "exec/thread_pool.hpp"
#include "graph/topologies.hpp"
#include "sim/simulator.hpp"

namespace tbcs::bench {

struct RunMetrics {
  double global_skew = 0.0;
  double local_skew = 0.0;
  double envelope_violation = 0.0;
  double min_rate = 0.0;
  double max_rate = 0.0;
  std::uint64_t broadcasts = 0;
  std::uint64_t deliveries = 0;
  double duration = 0.0;
};

struct RunSpec {
  const graph::Graph* graph = nullptr;
  std::function<std::unique_ptr<sim::Node>(sim::NodeId)> factory;
  std::shared_ptr<sim::DriftPolicy> drift;
  std::shared_ptr<sim::DelayPolicy> delay;
  double duration = 500.0;
  double audit_epsilon = 0.0;
  bool wake_all_at_zero = false;
  std::uint64_t tracker_stride = 1;
};

inline RunMetrics run(const RunSpec& spec) {
  sim::SimConfig cfg;
  cfg.wake_all_at_zero = spec.wake_all_at_zero;
  sim::Simulator sim(*spec.graph, cfg);
  sim.set_all_nodes(spec.factory);
  if (spec.drift) sim.set_drift_policy(spec.drift);
  if (spec.delay) sim.set_delay_policy(spec.delay);

  analysis::SkewTracker::Options topt;
  topt.audit_epsilon = spec.audit_epsilon;
  topt.stride = spec.tracker_stride;
  analysis::SkewTracker tracker(sim, topt);
  tracker.attach(sim);

  sim.run_until(spec.duration);

  RunMetrics m;
  m.global_skew = tracker.max_global_skew();
  m.local_skew = tracker.max_local_skew();
  m.envelope_violation = tracker.max_envelope_violation();
  m.min_rate = tracker.min_logical_rate();
  m.max_rate = tracker.max_logical_rate();
  m.broadcasts = sim.broadcasts();
  m.deliveries = sim.messages_delivered();
  m.duration = sim.now();
  return m;
}

/// Runs every spec on an exec::ThreadPool with `jobs` workers; out[i] is
/// specs[i]'s metrics regardless of scheduling order.  Specs must be
/// self-contained (policies not shared across specs) — each run gets its
/// own Simulator, so the only sharing is the read-only graph.
inline std::vector<RunMetrics> run_all(const std::vector<RunSpec>& specs,
                                       int jobs) {
  std::vector<RunMetrics> out(specs.size());
  exec::ThreadPool pool(jobs);
  pool.parallel_for(specs.size(),
                    [&](std::size_t i) { out[i] = run(specs[i]); });
  return out;
}

/// Maximum delays toward `pivot`, zero away: the standard skew-hiding
/// delay adversary.
inline std::shared_ptr<sim::DelayPolicy> skew_hiding_delays(
    const graph::Graph& g, graph::NodeId pivot, double t) {
  auto dist = std::make_shared<std::vector<int>>(g.bfs_distances(pivot));
  return std::make_shared<sim::DirectionalDelay>(
      [dist](sim::NodeId from, sim::NodeId to) {
        return (*dist)[static_cast<std::size_t>(to)] >
               (*dist)[static_cast<std::size_t>(from)];
      },
      /*fast=*/0.0, /*slow=*/t);
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "=== " << id << " ===\n" << claim << "\n\n";
}

}  // namespace tbcs::bench
