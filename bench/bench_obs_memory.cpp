// bench_obs_memory — memory-vs-error curves and hot-path overhead of the
// pluggable telemetry history backends (exact vs stair sketch).
//
//   bench_obs_memory [--quick] [--out FILE] [--label NAME] [--repeat N]
//
// Three row families, all on the band-delay wake-all A^opt workload with
// a clamped-random-walk drift (the clock-model layer's rwalk):
//
//   * curve_*    — one row per memory budget in {16, 64, 256, 1024} KB on
//     a fixed grid workload: the stair tracker's actual footprint, window
//     count, advertised error bound, and the *observed* error against an
//     exact tracker run on the same execution.  The observed error must
//     sit inside the advertised bound (the suite asserts it; the bench
//     records both so the curve is inspectable), and the footprint must
//     stay under budget while the exact tracker's grows linearly.
//   * overhead_* — events/sec with the exact backend (today's default,
//     every-sample history) vs the stair backend on the same workload.
//     stair_overhead = 1 - eps_stair / eps_exact; the PR-10 acceptance
//     gate is <= 3%.  Best-of-N (--repeat) damps scheduler noise.
//   * accept_*   — the acceptance run: line n = 100000, wake-all, stair
//     backend on the probe grid with NO stride subsampling (the workload
//     --skew-stride existed for), recording footprint vs budget and
//     events/sec.
//
// Results go to BENCH_pr10.json ("tbcs-bench-v1", see bench_json.hpp).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/skew_tracker.hpp"
#include "bench_json.hpp"
#include "core/aopt.hpp"
#include "core/params.hpp"
#include "graph/topologies.hpp"
#include "obs/history_store.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace tbcs;

constexpr double kEps = 0.01;    // hardware rate bound
constexpr double kDelay = 1.0;   // probe grid = message delay bound

struct RunOut {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double global_skew = 0.0;
  double local_skew = 0.0;
  double error_bound = 0.0;
  std::size_t history_bytes = 0;
  std::size_t history_windows = 0;
  std::uint64_t appends = 0;
};

// One tracked run.  budget_kb < 0: exact backend, every-sample history
// (today's default).  budget_kb >= 0: the chosen backend on the probe
// grid (grid sampling is what makes the stair figures engine-invariant;
// the exact-on-grid rows use the same cadence so overhead rows compare
// the backends, not the cadence).
RunOut run_tracked(const graph::Graph& g, double duration, int budget_kb,
                   bool stair) {
  const core::SyncParams params = core::SyncParams::recommended(1.0, kEps, 0.0);
  sim::SimConfig scfg;
  scfg.wake_all_at_zero = true;
  sim::Simulator sim(g, scfg);
  sim.set_all_nodes(
      [&params](sim::NodeId) { return std::make_unique<core::AoptNode>(params); });
  sim.set_drift_policy(std::make_shared<sim::RandomWalkDrift>(kEps, 10.0, 3));
  sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.25, kDelay, 4));

  analysis::SkewTracker::Options topt;
  if (budget_kb >= 0) {
    topt.history.backend = stair ? obs::HistoryConfig::Backend::kStair
                                 : obs::HistoryConfig::Backend::kExact;
    topt.history.memory_budget_bytes =
        static_cast<std::size_t>(budget_kb) * 1024;
    topt.sample_grid = kDelay;
    topt.error_rate_span = (1.0 + kEps) * (1.0 + params.mu) - (1.0 - kEps);
  }
  analysis::SkewTracker tracker(sim, topt);
  tracker.attach_auto(sim);

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(duration);
  const auto t1 = std::chrono::steady_clock::now();

  RunOut r;
  r.events = sim.events_processed();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.global_skew = tracker.max_global_skew();
  r.local_skew = tracker.max_local_skew();
  r.error_bound = tracker.skew_error_bound();
  r.history_bytes = tracker.history_memory_bytes();
  r.history_windows = tracker.global_history().windows().size() +
                      tracker.local_history().windows().size();
  r.appends = tracker.global_history().appends();
  return r;
}

double best_eps(int repeats, const graph::Graph& g, double duration,
                int budget_kb, bool stair, RunOut* last) {
  double best = 0.0;
  for (int i = 0; i < repeats; ++i) {
    const RunOut r = run_tracked(g, duration, budget_kb, stair);
    const double e = r.events / (r.seconds > 0.0 ? r.seconds : 1e-9);
    best = std::max(best, e);
    *last = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_pr10.json";
  std::string label = "obs_memory";
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (a == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (a == "--repeat" && i + 1 < argc) {
      repeats = std::max(1, std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: bench_obs_memory [--quick] [--repeat N] "
                   "[--out FILE] [--label NAME]\n");
      return 2;
    }
  }

  tbcs::bench::BenchJsonWriter json(label);

  // 1. Memory-vs-error curve: fixed grid workload, budgets 16..1024 KB.
  // Long horizon so the exact history (one 24-byte sample per grid point
  // per stream) visibly outgrows every stair budget.
  {
    const int side = quick ? 8 : 24;
    const double dur = quick ? 200.0 : 2000.0;
    const tbcs::graph::Graph g = tbcs::graph::make_grid(side, side);
    // Full-rate exact reference (every observer sample, no grid): the
    // curve's observed error is measured against the true maxima, so it
    // exercises the whole advertised bound, not just grid-vs-grid.
    // The grid-cadence exact run alongside it is the memory reference —
    // the linear growth the stair budgets are there to bound.
    RunOut exact, exact_grid;
    (void)best_eps(1, g, dur, -1, false, &exact);
    (void)best_eps(1, g, dur, 0, false, &exact_grid);  // budget ignored
    json.add("curve_exact")
        .metric("n", g.num_nodes())
        .metric("duration", dur)
        .metric("global_skew", exact.global_skew)
        .metric("history_bytes",
                static_cast<double>(exact_grid.history_bytes))
        .metric("history_windows",
                static_cast<double>(exact_grid.history_windows))
        .metric("appends", static_cast<double>(exact_grid.appends));
    std::printf("%-24s %10zu bytes, %6zu windows (exact reference)\n",
                "curve_exact", exact_grid.history_bytes,
                exact_grid.history_windows);
    for (const int kb : {16, 64, 256, 1024}) {
      RunOut stair;
      (void)best_eps(1, g, dur, kb, true, &stair);
      const double observed = exact.global_skew - stair.global_skew;
      json.add("curve_stair_" + std::to_string(kb) + "kb")
          .metric("n", g.num_nodes())
          .metric("duration", dur)
          .metric("budget_bytes", kb * 1024.0)
          .metric("history_bytes", static_cast<double>(stair.history_bytes))
          .metric("history_windows",
                  static_cast<double>(stair.history_windows))
          .metric("appends", static_cast<double>(stair.appends))
          .metric("global_skew", stair.global_skew)
          .metric("error_bound", stair.error_bound)
          .metric("observed_error", observed)
          .metric("under_budget",
                  stair.history_bytes <= static_cast<std::size_t>(kb) * 2048
                      ? 1.0
                      : 0.0);  // two streams, kb each
      std::printf(
          "%-24s %10zu bytes, %6zu windows, err %.4f observed / %.4f bound\n",
          ("curve_stair_" + std::to_string(kb) + "kb").c_str(),
          stair.history_bytes, stair.history_windows, observed,
          stair.error_bound);
      std::fflush(stdout);
    }
  }

  // 2. Hot-path overhead: exact vs stair at the SAME grid cadence, line
  // and tree at n = 16k (the hot-path regression sizes).  Comparing the
  // backends at the same cadence isolates the cascade-merge cost from
  // the (much larger) cost of the cadence itself; the full-rate exact
  // figure rides along for context.
  for (const bool tree : {false, true}) {
    const int n = quick ? 1024 : 16384;
    const tbcs::graph::Graph g =
        tree ? tbcs::graph::make_balanced_tree(2, quick ? 9 : 13)
             : tbcs::graph::make_path(n);
    const double dur = quick ? 10.0 : 30.0;
    RunOut rfull, rexact, rstair;
    const double eps_full = best_eps(repeats, g, dur, -1, false, &rfull);
    // Interleave the exact/stair measurements: best-of-N per side with
    // the sides alternating, so slow machine drift hits both equally
    // instead of biasing whichever side ran second.
    double eps_exact = 0.0;
    double eps_stair = 0.0;
    for (int i = 0; i < repeats; ++i) {
      eps_exact = std::max(eps_exact, best_eps(1, g, dur, 64, false, &rexact));
      eps_stair = std::max(eps_stair, best_eps(1, g, dur, 64, true, &rstair));
    }
    const double overhead = 1.0 - eps_stair / eps_exact;
    const std::string name =
        std::string("overhead_") + (tree ? "tree" : "line");
    json.add(name)
        .metric("n", g.num_nodes())
        .metric("duration", dur)
        .metric("repeats", repeats)
        .metric("events_per_sec_exact_full", eps_full)
        .metric("events_per_sec_exact", eps_exact)
        .metric("events_per_sec_stair", eps_stair)
        .metric("stair_overhead", overhead)
        .metric("exact_history_bytes",
                static_cast<double>(rexact.history_bytes))
        .metric("stair_history_bytes",
                static_cast<double>(rstair.history_bytes));
    std::printf("%-24s exact %12.0f ev/s, stair %12.0f ev/s (%+.2f%%)\n",
                name.c_str(), eps_exact, eps_stair, 100.0 * overhead);
    std::fflush(stdout);
  }

  // 3. Acceptance: line n = 1e5 wake-all on the stair backend, probe-grid
  // sampling, no stride subsampling — the run --skew-stride existed for.
  {
    const int n = quick ? 10000 : 100000;
    const tbcs::graph::Graph g = tbcs::graph::make_path(n);
    const double dur = 10.0;
    RunOut r;
    const double eps = best_eps(1, g, dur, 64, true, &r);
    json.add("accept_line_n100000_stair")
        .metric("n", g.num_nodes())
        .metric("duration", dur)
        .metric("budget_bytes", 64.0 * 1024)
        .metric("events_per_sec", eps)
        .metric("global_skew", r.global_skew)
        .metric("error_bound", r.error_bound)
        .metric("history_bytes", static_cast<double>(r.history_bytes))
        .metric("history_windows", static_cast<double>(r.history_windows))
        .metric("under_budget",
                r.history_bytes <= 2u * 64u * 1024u ? 1.0 : 0.0);
    std::printf("%-24s %12.0f ev/s, %zu bytes in %zu windows (bound %.4f)\n",
                "accept_line_n100000", eps, r.history_bytes,
                r.history_windows, r.error_bound);
  }

  json.write_file(out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
