// A3 — randomized adversary search: what do randomly sampled adversaries
// achieve against A^opt as D grows?
//
// Finding (reproduced by this bench): families whose attack energy scales
// with D (square waves with period ~ D T behind skew-hiding delays act
// like one level of the Lemma 7.6 construction) extract a growing
// *fraction* of the worst-case bound — evidence the bound is no paper
// tiger — while never exceeding it (Theorem 5.10 holds in every one of
// the hundreds of sampled executions).  Climbing the remaining gap needs
// the multi-level zooming of the structured construction (E5).
#include <iostream>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "sim/rng.hpp"

namespace {

using namespace tbcs;

double worst_random_local(const graph::Graph& g, const core::SyncParams& params,
                          double eps, double t, int trials,
                          sim::Rng& master) {
  const int n = g.num_nodes();
  const int d = n - 1;
  double worst = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    sim::Rng rng = master.split(trial + 1);
    bench::RunSpec spec;
    spec.graph = &g;
    spec.factory = [&params](sim::NodeId) {
      return std::make_unique<core::AoptNode>(params);
    };
    // Alternate between the two strongest families found by a wider
    // search: square-wave + hiding delays, and sinusoidal + bimodal.
    if (trial % 2 == 0) {
      const auto cut = static_cast<sim::NodeId>(1 + rng.uniform_index(n - 2));
      spec.drift = std::make_shared<sim::SquareWaveDrift>(
          eps, rng.uniform(0.5, 4.0) * d * t,
          [cut](sim::NodeId v) { return v < cut; });
      spec.delay = bench::skew_hiding_delays(
          g, static_cast<graph::NodeId>(rng.uniform_index(n)), t);
    } else {
      spec.drift = std::make_shared<sim::SinusoidalDrift>(
          eps, rng.uniform(10.0, 120.0), rng.next_u64());
      spec.delay = std::make_shared<sim::BimodalDelay>(
          0.05 * t, t, rng.uniform(0.05, 0.5), rng.next_u64());
    }
    spec.duration = 8.0 * d * t;
    spec.tracker_stride = n >= 64 ? 2 : 1;
    worst = std::max(worst, bench::run(spec).local_skew);
  }
  return worst;
}

}  // namespace

int main() {
  const double t = 1.0;
  const double eps = 0.05;
  const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.0);
  const int kTrials = 50;

  bench::print_header(
      "A3: randomized adversary search vs diameter",
      "claim: sampled adversaries reach a growing fraction of the bound\n"
      "but never exceed it; the multi-level construction (E5) is needed\n"
      "to close the remaining gap.");

  sim::Rng master(20260707);
  analysis::Table table({"D", "worst random local (50 trials)", "local bound",
                         "random/bound"});
  for (const int n : {17, 33, 65, 129}) {
    const graph::Graph g = graph::make_path(n);
    const double worst =
        worst_random_local(g, params, eps, t, kTrials, master);
    const double bound = params.local_skew_bound(n - 1, eps, t);
    table.add_row({analysis::Table::integer(n - 1),
                   analysis::Table::num(worst),
                   analysis::Table::num(bound),
                   analysis::Table::num(worst / bound, 3)});
  }
  table.print(std::cout);

  std::cout
      << "\nexpected shape: the ratio column grows with D but stays well\n"
         "below 1 — every sampled execution respects Theorem 5.10, and the\n"
         "square-wave family (a de-facto single construction level) is the\n"
         "engine behind the growth; see E5 for the multi-level attack.\n";
  return 0;
}
