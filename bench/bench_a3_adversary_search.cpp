// A3 — randomized adversary search: what do randomly sampled adversaries
// achieve against A^opt as D grows?
//
// Finding (reproduced by this bench): families whose attack energy scales
// with D (square waves with period ~ D T behind skew-hiding delays act
// like one level of the Lemma 7.6 construction) extract a growing
// *fraction* of the worst-case bound — evidence the bound is no paper
// tiger — while never exceeding it (Theorem 5.10 holds in every one of
// the hundreds of sampled executions).  Climbing the remaining gap needs
// the multi-level zooming of the structured construction (E5).
//
// The trials are independent simulations, so they execute on the exec
// worker pool (--jobs N, default: hardware concurrency).  Adversary
// parameters for trial i are drawn from a generator seeded by
// derive_seed(base, i): the sampled adversaries — and thus the table —
// are identical for every job count.
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cli/args.hpp"
#include "exec/run_spec.hpp"
#include "sim/rng.hpp"

namespace {

using namespace tbcs;

constexpr std::uint64_t kSeedBase = 20260707;

bench::RunSpec make_trial_spec(const graph::Graph& g,
                               const core::SyncParams& params, double eps,
                               double t, int trial) {
  const int n = g.num_nodes();
  const int d = n - 1;
  sim::Rng rng(exec::derive_seed(kSeedBase, static_cast<std::uint64_t>(trial)));
  bench::RunSpec spec;
  spec.graph = &g;
  spec.factory = [&params](sim::NodeId) {
    return std::make_unique<core::AoptNode>(params);
  };
  // Alternate between the two strongest families found by a wider
  // search: square-wave + hiding delays, and sinusoidal + bimodal.
  if (trial % 2 == 0) {
    const auto cut = static_cast<sim::NodeId>(1 + rng.uniform_index(n - 2));
    spec.drift = std::make_shared<sim::SquareWaveDrift>(
        eps, rng.uniform(0.5, 4.0) * d * t,
        [cut](sim::NodeId v) { return v < cut; });
    spec.delay = bench::skew_hiding_delays(
        g, static_cast<graph::NodeId>(rng.uniform_index(n)), t);
  } else {
    spec.drift = std::make_shared<sim::SinusoidalDrift>(
        eps, rng.uniform(10.0, 120.0), rng.next_u64());
    spec.delay = std::make_shared<sim::BimodalDelay>(
        0.05 * t, t, rng.uniform(0.05, 0.5), rng.next_u64());
  }
  spec.duration = 8.0 * d * t;
  spec.tracker_stride = n >= 64 ? 2 : 1;
  return spec;
}

double worst_random_local(const graph::Graph& g, const core::SyncParams& params,
                          double eps, double t, int trials, int trial_base,
                          int jobs) {
  std::vector<bench::RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(trials));
  for (int trial = 0; trial < trials; ++trial) {
    specs.push_back(make_trial_spec(g, params, eps, t, trial_base + trial));
  }
  const std::vector<bench::RunMetrics> metrics = bench::run_all(specs, jobs);
  double worst = 0.0;
  for (const auto& m : metrics) worst = std::max(worst, m.local_skew);
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args(argc, argv);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int jobs = args.get_int("jobs", hw > 0 ? hw : 1);

  const double t = 1.0;
  const double eps = 0.05;
  const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.0);
  const int kTrials = 50;

  bench::print_header(
      "A3: randomized adversary search vs diameter",
      "claim: sampled adversaries reach a growing fraction of the bound\n"
      "but never exceed it; the multi-level construction (E5) is needed\n"
      "to close the remaining gap.");

  analysis::Table table({"D", "worst random local (50 trials)", "local bound",
                         "random/bound"});
  int trial_base = 0;
  for (const int n : {17, 33, 65, 129}) {
    const graph::Graph g = graph::make_path(n);
    const double worst =
        worst_random_local(g, params, eps, t, kTrials, trial_base, jobs);
    trial_base += kTrials;
    const double bound = params.local_skew_bound(n - 1, eps, t);
    table.add_row({analysis::Table::integer(n - 1),
                   analysis::Table::num(worst),
                   analysis::Table::num(bound),
                   analysis::Table::num(worst / bound, 3)});
  }
  table.print(std::cout);

  std::cout
      << "\nexpected shape: the ratio column grows with D but stays well\n"
         "below 1 — every sampled execution respects Theorem 5.10, and the\n"
         "square-wave family (a de-facto single construction level) is the\n"
         "engine behind the growth; see E5 for the multi-level attack.\n";
  return 0;
}
