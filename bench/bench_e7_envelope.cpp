// E7 — Corollary 5.3 / Conditions (1)-(2): A^opt keeps every logical
// clock inside the affine-linear envelope of real time,
//    (1 - eps)(t - t_v) <= L_v(t) <= (1 + eps) t,
// and its instantaneous logical rates inside [alpha, beta] =
// [1 - eps, (1 + eps)(1 + mu)].  The instant-jump variant (beta infinite)
// keeps the envelope but breaks the rate bound — visible as clock steps.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_util.hpp"

namespace {

using namespace tbcs;

struct EnvelopeMetrics {
  double envelope_violation = 0.0;
  double min_rate = 0.0;
  double max_rate = 0.0;
  double max_step = 0.0;  // largest instantaneous clock step seen
};

EnvelopeMetrics measure(const graph::Graph& g, const core::SyncParams& params,
                        bool jump, double eps, double t) {
  sim::SimConfig cfg;
  cfg.probe_interval = 0.25;
  sim::Simulator sim(g, cfg);
  core::AoptOptions o;
  o.jump_mode = jump;
  sim.set_all_nodes([&params, &o](sim::NodeId) {
    return std::make_unique<core::AoptNode>(params, o);
  });
  sim.set_drift_policy(std::make_shared<sim::RandomWalkDrift>(eps, 5.0, 21));
  sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.0, t, 23));

  analysis::SkewTracker::Options topt;
  topt.audit_epsilon = eps;
  analysis::SkewTracker tracker(sim, topt);

  // Detect steps: compare each node's clock against its previous sample.
  std::vector<double> last_l(static_cast<std::size_t>(g.num_nodes()), 0.0);
  std::vector<double> last_t(static_cast<std::size_t>(g.num_nodes()), 0.0);
  EnvelopeMetrics em;
  sim.set_observer([&](const sim::Simulator& s, double now) {
    tracker.observe(s, now);
    for (sim::NodeId v = 0; v < s.num_nodes(); ++v) {
      if (!s.awake(v)) continue;
      const auto idx = static_cast<std::size_t>(v);
      const double l = s.logical(v);
      const double dt = now - last_t[idx];
      const double advance = l - last_l[idx];
      // A "step" is progress beyond what beta-rate motion could produce.
      const double excess = advance - params.beta(eps) * dt;
      em.max_step = std::max(em.max_step, excess);
      last_l[idx] = l;
      last_t[idx] = now;
    }
  });

  sim.run_until(600.0);
  em.envelope_violation = tracker.max_envelope_violation();
  em.min_rate = tracker.min_logical_rate();
  em.max_rate = tracker.max_logical_rate();
  return em;
}

}  // namespace

int main() {
  const double t = 1.0;
  const double eps = 0.05;
  const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.0);
  const graph::Graph g = graph::make_ring(32);

  bench::print_header(
      "E7: real-time envelope and rate bounds (Corollary 5.3)",
      "claim: A^opt satisfies Condition (1) (envelope violation <= 0) and\n"
      "Condition (2) (rates within [alpha, beta]); the jump variant keeps\n"
      "(1) but shows instantaneous steps (beta unbounded).");

  const auto rate_mode = measure(g, params, /*jump=*/false, eps, t);
  const auto jump_mode = measure(g, params, /*jump=*/true, eps, t);

  analysis::Table table({"variant", "envelope violation", "min rate",
                         "max rate", "max clock step"});
  table.add_row({"A^opt (rates)",
                 analysis::Table::num(rate_mode.envelope_violation, 6),
                 analysis::Table::num(rate_mode.min_rate, 4),
                 analysis::Table::num(rate_mode.max_rate, 4),
                 analysis::Table::num(rate_mode.max_step, 4)});
  table.add_row({"A^opt (jumps)",
                 analysis::Table::num(jump_mode.envelope_violation, 6),
                 analysis::Table::num(jump_mode.min_rate, 4),
                 analysis::Table::num(jump_mode.max_rate, 4),
                 analysis::Table::num(jump_mode.max_step, 4)});
  table.print(std::cout);

  std::cout << "\ntheory: alpha = " << analysis::Table::num(params.alpha(eps), 4)
            << ", beta = " << analysis::Table::num(params.beta(eps), 4)
            << ".  expected shape: rate-mode rates inside [alpha, beta] and\n"
               "max step ~0; jump mode shows positive steps.\n";
  return 0;
}
