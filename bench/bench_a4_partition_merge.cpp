// A4 — partition and merge.
//
// A ring is cut into two halves that evolve independently (opposite drift
// extremes, so their clock populations diverge at 2 eps), then healed.
// The questions a deployment cares about:
//   * how large does the inter-partition skew get?  (2 eps x partition
//     duration, as free-running analysis predicts — no algorithm can do
//     better without connectivity);
//   * after healing, how fast does A^opt reconverge?  (the L^max flood
//     spreads in ~D T and the slow side catches up at rate ~mu, so the
//     settle time is ~ skew/mu + D T);
//   * what happens to the local skew?  The *healed* edges momentarily
//     carry the full inter-partition gap — unavoidable, the two clocks
//     are what they are when the edge appears (this is the stabilization
//     problem of gradient clock sync in *dynamic* networks, Kuhn et al.).
//     The gradient mechanism's promise is that (a) the *old* edges stay
//     near their static bound while the gap drains, and (b) the healed
//     edge's skew decays at the full correction rate ~mu.
//
// The second section generalizes the two healed ring edges to *churn at
// production rate*: a ChurnPlan inserts and removes edges (and nodes)
// continuously, and a StabilizationProbe times every insertion until its
// skew stays inside the local quantum kappa — measured once under plain
// A^opt and once under the KLLO dynamic-GCS node, against the KLLO
// linear-convergence prediction skew_at_insert / mu.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/convergence.hpp"
#include "bench_util.hpp"
#include "dyn/churn_plan.hpp"
#include "dyn/dyn_gcs_node.hpp"
#include "dyn/stabilization_probe.hpp"

namespace {

// One churned run: builds the plan against a fresh torus, runs `algo`
// ("aopt" | "kllo"), and reports the probe.
struct ChurnRow {
  std::size_t insertions = 0;
  std::size_t stabilized = 0;
  double mean_stab = 0.0;
  double max_stab = 0.0;
  double predicted = 0.0;
  double local_peak = 0.0;
  // Peak skew over *mature* live edges only — edges past (or never in) a
  // stabilization window.  This is the KLLO differentiator: the ramp
  // exists so that fresh high-skew edges cannot distort the old
  // network's gradient while they drain.
  double mature_peak = 0.0;
};

ChurnRow churn_case(const tbcs::core::SyncParams& params, double rate,
                    bool kllo) {
  using namespace tbcs;
  // A ring is the interesting dynamic topology: edge churn *partitions*
  // it outright (two removals cut a segment loose), so insertions
  // routinely carry the full divergence of a healed partition — the
  // regime the KLLO analysis is about.  Long downtimes let the detached
  // segments genuinely drift.
  graph::Graph g = graph::make_ring(64);

  dyn::ChurnConfig ccfg;
  ccfg.node_rate = rate / 2.0;
  ccfg.edge_rate = rate;
  ccfg.node_downtime = 50.0;
  ccfg.edge_downtime = 100.0;
  ccfg.extra_edges = 0.25;
  ccfg.t0 = 20.0;
  ccfg.t1 = 700.0;
  ccfg.seed = 7;
  const dyn::ChurnSchedule sched = dyn::ChurnPlan(ccfg).build(g);

  sim::SimConfig scfg;
  scfg.wake_all_at_zero = true;
  sim::Simulator sim(g, scfg);
  dyn::DynGcsOptions dopt;
  dopt.initial_tolerance = 8.0 * params.kappa;
  dopt.stabilization_time = dopt.initial_tolerance / params.mu;
  sim.set_all_nodes([&](sim::NodeId) -> std::unique_ptr<sim::Node> {
    if (kllo) {
      return std::make_unique<dyn::DynGcsNode>(params, core::AoptOptions{},
                                               dopt);
    }
    return std::make_unique<core::AoptNode>(params);
  });
  sim.set_drift_policy(std::make_shared<sim::RandomWalkDrift>(0.02, 8.0, 11));
  sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.0, 1.0, 13));
  sched.apply(sim);

  // Stabilized = the inserted edge's skew stays under a service bound
  // well below kappa, so the probe times a real contraction rather than
  // ticking the box at the first sample.
  dyn::StabilizationProbe probe({/*bound=*/1.0, params.mu});
  probe.preload(sched);
  analysis::SkewTracker tracker(sim, {});

  // Freshness windows per edge, from the probe's preloaded records: an
  // edge is fresh for T_stab after each insertion (or until removed
  // again, whichever first).  Both algorithms are scored against the
  // same windows — the kllo ramp length — so mature_peak compares like
  // with like.
  std::map<std::pair<sim::NodeId, sim::NodeId>,
           std::vector<std::pair<double, double>>>
      fresh;
  for (const auto& r : probe.records()) {
    const auto key = std::minmax(r.u, r.v);
    fresh[{key.first, key.second}].push_back(
        {r.t_insert, std::min(r.t_insert + dopt.stabilization_time, r.t_end)});
  }
  double mature_peak = 0.0;
  sim.set_observer([&](const sim::Simulator& s, double now) {
    tracker.observe(s, now);
    probe.observe(s, now);
    for (const auto& [a, b] : s.topology().edges()) {
      if (!s.link_up(a, b)) continue;
      const auto key = std::minmax(a, b);
      if (const auto it = fresh.find({key.first, key.second});
          it != fresh.end()) {
        bool in_window = false;
        for (const auto& [t0, t1] : it->second) {
          if (now >= t0 && now < t1) { in_window = true; break; }
        }
        if (in_window) continue;
      }
      mature_peak =
          std::max(mature_peak, std::abs(s.logical(a) - s.logical(b)));
    }
  });
  sim.run_until(800.0);

  ChurnRow row;
  row.insertions = probe.insertions();
  row.stabilized = probe.stabilized();
  row.mean_stab = probe.mean_stabilization_time();
  row.max_stab = probe.max_stabilization_time();
  row.predicted = probe.mean_predicted_time();
  row.local_peak = tracker.max_local_skew();
  row.mature_peak = mature_peak;
  return row;
}

}  // namespace

int main() {
  using namespace tbcs;
  const double t = 1.0;
  const double eps = 0.02;
  const int n = 16;
  const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.0);
  const graph::Graph g = graph::make_ring(n);

  bench::print_header(
      "A4: partition and merge (dynamic topologies)",
      "claim: partitions diverge at 2 eps (unavoidable); after healing,\n"
      "recovery takes ~skew/mu + D T, the healed edges drain the gap, and\n"
      "the *old* edges stay near the static local bound (gradient).");

  analysis::Table table({"partition length", "peak global skew",
                         "predicted 2*eps*len", "old-edge local peak",
                         "local bound", "healed-edge recovery",
                         "settle time", "skew/mu + D T"});

  for (const double partition_len : {100.0, 300.0, 600.0, 1200.0}) {
    sim::Simulator sim(g);
    sim.set_all_nodes([&params](sim::NodeId) {
      return std::make_unique<core::AoptNode>(params);
    });
    // Halves pinned to opposite drift extremes: maximum divergence.
    sim.set_drift_policy(std::make_shared<sim::SquareWaveDrift>(
        eps, 1e9, [n](sim::NodeId v) { return v < n / 2; }));
    sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.0, t, 5));

    // Cut the two ring edges between the halves at t=50, heal later.
    const double cut_at = 50.0;
    const double heal_at = cut_at + partition_len;
    sim.schedule_link_change(0, n - 1, false, cut_at);
    sim.schedule_link_change(n / 2 - 1, n / 2, false, cut_at);
    sim.schedule_link_change(0, n - 1, true, heal_at);
    sim.schedule_link_change(n / 2 - 1, n / 2, true, heal_at);

    analysis::SkewTracker::Options topt;
    topt.series_interval = 1.0;
    analysis::SkewTracker tracker(sim, topt);

    // Separate the healed edges from the old ones.
    const auto is_healed_edge = [n](sim::NodeId a, sim::NodeId b) {
      return (a == 0 && b == n - 1) || (a == n / 2 - 1 && b == n / 2);
    };
    double peak_old_edge_local = 0.0;
    double healed_edge_recovered_at = -1.0;
    const double local_bound = params.local_skew_bound(g.diameter(), eps, t);
    sim.set_observer([&](const sim::Simulator& s, double now) {
      tracker.observe(s, now);
      if (now < heal_at) return;
      double healed_worst = 0.0;
      for (const auto& [a, b] : s.topology().edges()) {
        if (!s.link_up(a, b)) continue;
        const double skew = std::abs(s.logical(a) - s.logical(b));
        if (is_healed_edge(a, b)) {
          healed_worst = std::max(healed_worst, skew);
        } else {
          peak_old_edge_local = std::max(peak_old_edge_local, skew);
        }
      }
      if (healed_worst > local_bound) {
        healed_edge_recovered_at = now;  // still above: push the mark out
      }
    });

    const double end = heal_at + partition_len + 400.0;
    sim.run_until(end);

    const double peak_global =
        analysis::peak_in_window(tracker.series(), heal_at - 1.0,
                                 heal_at + 50.0, /*local=*/false);
    // Settle: global skew back under the steady-state bound for the ring.
    const double steady =
        params.global_skew_bound(g.diameter(), eps, t);
    const double settle =
        analysis::settle_time(tracker.series(), steady, /*local=*/false) -
        heal_at;
    const double predicted_settle =
        peak_global / (params.mu * (1.0 - eps)) + g.diameter() * t;

    table.add_row(
        {analysis::Table::num(partition_len, 0),
         analysis::Table::num(peak_global),
         analysis::Table::num(2.0 * eps * partition_len),
         analysis::Table::num(peak_old_edge_local),
         analysis::Table::num(local_bound),
         analysis::Table::num(
             healed_edge_recovered_at < 0.0
                 ? 0.0
                 : healed_edge_recovered_at - heal_at, 1),
         analysis::Table::num(std::max(0.0, settle), 1),
         analysis::Table::num(predicted_settle, 1)});
  }
  table.print(std::cout);

  std::cout << "\nexpected shape: peak global ~ 2 eps x partition length; the\n"
               "healed edges recover in ~skew/mu while the *old* edges stay\n"
               "near the static local bound throughout — the inter-partition\n"
               "gap drains through the healed edges without being handed\n"
               "around the ring.\n";

  // ---- A4b: continuous churn, per-inserted-edge stabilization ---------------
  bench::print_header(
      "A4b: churn-driven stabilization (A^opt vs dynamic-GCS)",
      "claim (KLLO): every inserted edge's skew contracts to the static\n"
      "quantum kappa in ~skew_at_insert/mu; the dynamic-GCS ramp gets\n"
      "there without ever letting fresh edges distort the old gradient.");

  const core::SyncParams cp = core::SyncParams::recommended(t, eps, 0.3);
  analysis::Table churn_table(
      {"churn rate", "algo", "inserted", "stabilized", "mean stab t",
       "max stab t", "predicted s0/mu", "local peak", "mature peak"});
  for (const double rate : {0.005, 0.01, 0.02, 0.04}) {
    for (const bool kllo : {false, true}) {
      const ChurnRow row = churn_case(cp, rate, kllo);
      churn_table.add_row(
          {analysis::Table::num(rate, 3), kllo ? "kllo" : "aopt",
           analysis::Table::num(static_cast<double>(row.insertions), 0),
           analysis::Table::num(static_cast<double>(row.stabilized), 0),
           analysis::Table::num(row.mean_stab, 2),
           analysis::Table::num(row.max_stab, 2),
           analysis::Table::num(row.predicted, 2),
           analysis::Table::num(row.local_peak, 2),
           analysis::Table::num(row.mature_peak, 2)});
    }
  }
  churn_table.print(std::cout);

  std::cout << "\nexpected shape: measured stabilization stays at or under the\n"
               "KLLO linear-convergence prediction s0/mu at every churn rate,\n"
               "and the mature-edge peak stays near the static baseline (far\n"
               "below the fresh-edge local peak): churn does not leak skew into\n"
               "the old gradient.  aopt and kllo rows coincide here by design —\n"
               "the drain is mu-bounded L^max catch-up either way, and the ramp\n"
               "only relaxes gradient blocking, which never binds while mature\n"
               "skews sit well under kappa.  The ramp's value is the *guarantee*\n"
               "(a decaying tolerance envelope on fresh edges; see\n"
               "docs/ALGORITHM.md), not a faster drain.\n";
  return 0;
}
