// A4 — partition and merge.
//
// A ring is cut into two halves that evolve independently (opposite drift
// extremes, so their clock populations diverge at 2 eps), then healed.
// The questions a deployment cares about:
//   * how large does the inter-partition skew get?  (2 eps x partition
//     duration, as free-running analysis predicts — no algorithm can do
//     better without connectivity);
//   * after healing, how fast does A^opt reconverge?  (the L^max flood
//     spreads in ~D T and the slow side catches up at rate ~mu, so the
//     settle time is ~ skew/mu + D T);
//   * what happens to the local skew?  The *healed* edges momentarily
//     carry the full inter-partition gap — unavoidable, the two clocks
//     are what they are when the edge appears (this is the stabilization
//     problem of gradient clock sync in *dynamic* networks, Kuhn et al.).
//     The gradient mechanism's promise is that (a) the *old* edges stay
//     near their static bound while the gap drains, and (b) the healed
//     edge's skew decays at the full correction rate ~mu.
#include <algorithm>
#include <iostream>
#include <memory>

#include "analysis/convergence.hpp"
#include "bench_util.hpp"

int main() {
  using namespace tbcs;
  const double t = 1.0;
  const double eps = 0.02;
  const int n = 16;
  const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.0);
  const graph::Graph g = graph::make_ring(n);

  bench::print_header(
      "A4: partition and merge (dynamic topologies)",
      "claim: partitions diverge at 2 eps (unavoidable); after healing,\n"
      "recovery takes ~skew/mu + D T, the healed edges drain the gap, and\n"
      "the *old* edges stay near the static local bound (gradient).");

  analysis::Table table({"partition length", "peak global skew",
                         "predicted 2*eps*len", "old-edge local peak",
                         "local bound", "healed-edge recovery",
                         "settle time", "skew/mu + D T"});

  for (const double partition_len : {100.0, 300.0, 600.0, 1200.0}) {
    sim::Simulator sim(g);
    sim.set_all_nodes([&params](sim::NodeId) {
      return std::make_unique<core::AoptNode>(params);
    });
    // Halves pinned to opposite drift extremes: maximum divergence.
    sim.set_drift_policy(std::make_shared<sim::SquareWaveDrift>(
        eps, 1e9, [n](sim::NodeId v) { return v < n / 2; }));
    sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.0, t, 5));

    // Cut the two ring edges between the halves at t=50, heal later.
    const double cut_at = 50.0;
    const double heal_at = cut_at + partition_len;
    sim.schedule_link_change(0, n - 1, false, cut_at);
    sim.schedule_link_change(n / 2 - 1, n / 2, false, cut_at);
    sim.schedule_link_change(0, n - 1, true, heal_at);
    sim.schedule_link_change(n / 2 - 1, n / 2, true, heal_at);

    analysis::SkewTracker::Options topt;
    topt.series_interval = 1.0;
    analysis::SkewTracker tracker(sim, topt);

    // Separate the healed edges from the old ones.
    const auto is_healed_edge = [n](sim::NodeId a, sim::NodeId b) {
      return (a == 0 && b == n - 1) || (a == n / 2 - 1 && b == n / 2);
    };
    double peak_old_edge_local = 0.0;
    double healed_edge_recovered_at = -1.0;
    const double local_bound = params.local_skew_bound(g.diameter(), eps, t);
    sim.set_observer([&](const sim::Simulator& s, double now) {
      tracker.observe(s, now);
      if (now < heal_at) return;
      double healed_worst = 0.0;
      for (const auto& [a, b] : s.topology().edges()) {
        if (!s.link_up(a, b)) continue;
        const double skew = std::abs(s.logical(a) - s.logical(b));
        if (is_healed_edge(a, b)) {
          healed_worst = std::max(healed_worst, skew);
        } else {
          peak_old_edge_local = std::max(peak_old_edge_local, skew);
        }
      }
      if (healed_worst > local_bound) {
        healed_edge_recovered_at = now;  // still above: push the mark out
      }
    });

    const double end = heal_at + partition_len + 400.0;
    sim.run_until(end);

    const double peak_global =
        analysis::peak_in_window(tracker.series(), heal_at - 1.0,
                                 heal_at + 50.0, /*local=*/false);
    // Settle: global skew back under the steady-state bound for the ring.
    const double steady =
        params.global_skew_bound(g.diameter(), eps, t);
    const double settle =
        analysis::settle_time(tracker.series(), steady, /*local=*/false) -
        heal_at;
    const double predicted_settle =
        peak_global / (params.mu * (1.0 - eps)) + g.diameter() * t;

    table.add_row(
        {analysis::Table::num(partition_len, 0),
         analysis::Table::num(peak_global),
         analysis::Table::num(2.0 * eps * partition_len),
         analysis::Table::num(peak_old_edge_local),
         analysis::Table::num(local_bound),
         analysis::Table::num(
             healed_edge_recovered_at < 0.0
                 ? 0.0
                 : healed_edge_recovered_at - heal_at, 1),
         analysis::Table::num(std::max(0.0, settle), 1),
         analysis::Table::num(predicted_settle, 1)});
  }
  table.print(std::cout);

  std::cout << "\nexpected shape: peak global ~ 2 eps x partition length; the\n"
               "healed edges recover in ~skew/mu while the *old* edges stay\n"
               "near the static local bound throughout — the inter-partition\n"
               "gap drains through the healed edges without being handed\n"
               "around the ring.\n";
  return 0;
}
