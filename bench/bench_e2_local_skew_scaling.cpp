// E2 — Theorem 5.10: the local skew of A^opt is bounded by
//        kappa (ceil(log_sigma(2G/kappa)) + 1/2),
// i.e. it grows *logarithmically* in the diameter D while the global skew
// grows linearly.
//
// Workload: paths with D = 8..256 under a square-wave drift adversary with
// skew-hiding delays.  The table reports measured local skew, the bound,
// and the bound's increment per doubling of D (which approaches
// kappa / log2(sigma)).
#include <iostream>
#include <vector>

#include "analysis/stats.hpp"
#include "bench_util.hpp"

int main() {
  using namespace tbcs;
  const double t = 1.0;
  const double eps = 0.02;
  const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.0);

  bench::print_header(
      "E2: local skew vs diameter (Theorem 5.10)",
      "claim: the local-skew bound (and the skew itself) grows O(log D):\n"
      "doubling D adds at most ~kappa/log2(sigma) to the bound, while the\n"
      "global bound doubles.");

  std::cout << "params: mu=" << params.mu << " H0=" << params.h0
            << " kappa=" << params.kappa << " sigma=" << params.sigma()
            << "\n\n";

  analysis::Table table(
      {"D", "local skew", "local bound", "global skew", "global bound G"});

  std::vector<double> ds;
  std::vector<double> local_bounds;
  std::vector<double> local_measured;
  for (const int n : {9, 17, 33, 65, 129, 257}) {
    const graph::Graph g = graph::make_path(n);
    const int d = n - 1;

    bench::RunSpec spec;
    spec.graph = &g;
    spec.factory = [&params](sim::NodeId) {
      return std::make_unique<core::AoptNode>(params);
    };
    // Flip the drift gradient every ~D T so skew keeps being rebuilt in
    // alternating directions, and hide it with directional delays.
    spec.drift = std::make_shared<sim::SquareWaveDrift>(
        eps, 2.0 * d * t, [n](sim::NodeId v) { return v < n / 2; });
    spec.delay = bench::skew_hiding_delays(g, 0, t);
    spec.duration = 8.0 * d * t;
    // Stride 1 everywhere: the incremental tracker makes exact sampling
    // cheaper than the old strided full rescans were.
    spec.tracker_stride = 1;
    const auto m = bench::run(spec);

    const double lb = params.local_skew_bound(d, eps, t);
    const double gb = params.global_skew_bound(d, eps, t);
    ds.push_back(d);
    local_bounds.push_back(lb);
    local_measured.push_back(m.local_skew);
    table.add_row({analysis::Table::integer(d),
                   analysis::Table::num(m.local_skew),
                   analysis::Table::num(lb),
                   analysis::Table::num(m.global_skew),
                   analysis::Table::num(gb)});
  }
  table.print(std::cout);

  std::cout << "\nshape check (least-squares):\n";
  std::cout << "  local bound increment per doubling of D: "
            << analysis::Table::num(analysis::log2_slope(ds, local_bounds))
            << "  (theory: <= kappa = " << analysis::Table::num(params.kappa)
            << ")\n";
  std::cout << "  measured local skew increment per doubling: "
            << analysis::Table::num(analysis::log2_slope(ds, local_measured))
            << "  (must stay below the bound's increment)\n";
  std::cout << "  measured local skew linear slope vs D: "
            << analysis::Table::num(analysis::linear_slope(ds, local_measured), 4)
            << "  (≈ 0: no linear component)\n";
  return 0;
}
