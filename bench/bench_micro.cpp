// Micro-benchmarks of the substrate (google-benchmark): event queue,
// hardware clock math, the Algorithm 3 closed form, trajectory inversion,
// and an end-to-end simulator throughput measurement.
//
// `--bench_json=FILE` additionally writes the results through the shared
// tbcs-bench-v1 sink (bench_json.hpp), the same format bench_core_hotpath
// records its trajectory in.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/aopt.hpp"
#include "core/params.hpp"
#include "core/rate_rule.hpp"
#include "graph/topologies.hpp"
#include "lowerbound/shifting.hpp"
#include "sim/event_queue.hpp"
#include "sim/hardware_clock.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace tbcs;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(1);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1000.0);
  for (auto _ : state) {
    sim::EventQueue q;
    for (const double t : times) {
      sim::Event e;
      e.time = t;
      q.push(e);
    }
    double last = 0.0;
    while (!q.empty()) last = q.pop().time;
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_HardwareClockValue(benchmark::State& state) {
  sim::HardwareClock c;
  c.set_rate(0.0, 1.01);
  c.start(0.0);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    benchmark::DoNotOptimize(c.value_at(t));
  }
}
BENCHMARK(BM_HardwareClockValue);

void BM_RateRuleClosedForm(benchmark::State& state) {
  sim::Rng rng(2);
  for (auto _ : state) {
    const double up = rng.uniform(-5.0, 5.0);
    const double dn = rng.uniform(-5.0, 5.0);
    benchmark::DoNotOptimize(core::clock_increase(up, dn, 1.3, 2.0));
  }
}
BENCHMARK(BM_RateRuleClosedForm);

void BM_PiecewiseRateInverse(benchmark::State& state) {
  std::vector<sim::RateStep> steps;
  for (int i = 0; i < 16; ++i) {
    steps.push_back({static_cast<double>(i) * 10.0, 1.0 + 0.01 * (i % 5)});
  }
  lowerbound::PiecewiseRate traj(steps);
  double target = 0.0;
  for (auto _ : state) {
    target += 0.13;
    if (target > 150.0) target = 0.0;
    benchmark::DoNotOptimize(traj.time_when(target));
  }
}
BENCHMARK(BM_PiecewiseRateInverse);

void BM_SimulatorAoptThroughput(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::make_path(n);
  const core::SyncParams params = core::SyncParams::recommended(1.0, 0.01, 0.2);
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim(g);
    sim.set_all_nodes([&params](sim::NodeId) {
      return std::make_unique<core::AoptNode>(params);
    });
    sim.set_drift_policy(std::make_shared<sim::RandomWalkDrift>(0.01, 10.0, 3));
    sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.0, 1.0, 5));
    sim.run_until(200.0);
    events += sim.events_processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SimulatorAoptThroughput)->Arg(16)->Arg(64);

// Console output as usual, plus every finished run mirrored into the
// shared JSON sink.
class JsonSinkReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonSinkReporter(tbcs::bench::BenchJsonWriter* sink) : sink_(sink) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    if (!sink_) return;
    for (const Run& r : runs) {
      if (r.error_occurred || r.run_type != Run::RT_Iteration) continue;
      auto& result = sink_->add(r.benchmark_name());
      result.metric("real_time_ns", r.GetAdjustedRealTime())
          .metric("iterations", static_cast<double>(r.iterations));
      for (const auto& [key, counter] : r.counters) {
        result.metric(key, counter.value);
      }
    }
  }

 private:
  tbcs::bench::BenchJsonWriter* sink_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    constexpr const char* kFlag = "--bench_json=";
    if (a.rfind(kFlag, 0) == 0) {
      json_path = a.substr(std::string(kFlag).size());
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  tbcs::bench::BenchJsonWriter sink("bench_micro");
  JsonSinkReporter reporter(json_path.empty() ? nullptr : &sink);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) sink.write_file(json_path);
  return 0;
}
