// bench_core_hotpath — end-to-end throughput of the simulator hot path
// (Simulator::process + SkewTracker observer), the loop every experiment
// binary bottoms out in.
//
//   bench_core_hotpath [--quick] [--filter SUBSTR] [--out FILE] [--label NAME]
//                      [--repeat N] [--shards K0,K1,...] [--queue Q0,Q1,...]
//
// --filter SUBSTR runs only the configurations whose result name contains
// SUBSTR (e.g. --filter line_n1024_serial_incremental), for targeted
// regression checks against a single recorded baseline row.
//
// --repeat N runs every configuration N times and records the best run
// (events_per_sec/seconds stay the best-of-N, so rows remain comparable
// with single-run baselines) plus eps_median / eps_stddev / repeats
// columns quantifying the noise.
//
// --queue Q0,Q1,... (shard-axis rows only) adds an event-queue
// implementation axis: "auto" rows keep the historical unsuffixed names,
// "heap"/"ladder" rows get a _qheap/_qladder suffix.
//
// Measures events/sec for A^opt with a random-walk drift and uniform
// delay adversary on line/tree/grid topologies at n in {64, 1k, 16k}
// (--quick keeps only the n=64 rows, unchanged otherwise), serially and
// with replicas running concurrently on the exec thread pool, with the
// skew tracker in both engines:
//
//   * tracker=incremental — the default certificate-based engine;
//   * tracker=oracle      — the full-rescan engine, which is what every
//     sample cost before the incremental engine existed.  The per-config
//     speedup (incremental / oracle events_per_sec) is therefore a
//     conservative lower bound on the speedup versus the pre-change core,
//     and being a ratio it is robust to machine-load differences.
//
// Results go to BENCH_pr2.json ("tbcs-bench-v1", see bench_json.hpp) so
// later PRs can regress-check against the recorded baseline
// (scripts/smoke_bench.sh).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/skew_tracker.hpp"
#include "bench_json.hpp"
#include "core/aopt.hpp"
#include "core/params.hpp"
#include "dyn/churn_plan.hpp"
#include "exec/thread_pool.hpp"
#include "graph/topologies.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace tbcs;

constexpr int kPoolJobs = 4;  // replicas run concurrently in pool mode

struct RunResult {
  std::uint64_t events = 0;
  double seconds = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t full_scans = 0;
  double global_skew = 0.0;
  double local_skew = 0.0;
};

graph::Graph make_topology(const std::string& kind, int n) {
  if (kind == "line") return graph::make_path(n);
  if (kind == "grid") {
    int side = 1;
    while (side * side < n) ++side;
    return graph::make_grid(side, side);
  }
  // Balanced binary tree with 2^levels - 1 nodes, the largest not above n.
  int levels = 1;
  while ((2 << levels) - 1 <= n) ++levels;
  return graph::make_balanced_tree(2, levels);
}

// shards = -1: the historical workload (uniform [0, 1] delays, serial
// engine, root-flood wake) whose rows regress-check against
// BENCH_pr2.json.  shards >= 0: the shard-axis workload — band delays
// uniform [0.25, 1] (sharding needs a positive certified min delay),
// every node awake at t = 0 (a flood front parks all activity in one
// shard at large n, which measures the partitioner, not the engine), and
// shards = 0 running the serial engine on that same workload so
// serial-vs-sharded rows in one file compare like with like.  Sharded
// rows use the default auto-clamp (64 nodes per lane minimum), so the
// recorded shards_effective shows the clamp rescuing the tiny sizes.
RunResult run_one(const graph::Graph& g, analysis::SkewTracker::Mode mode,
                  double duration, std::uint64_t seed, int shards = -1,
                  int* shards_effective = nullptr,
                  sim::QueueSelect queue = sim::QueueSelect::kAuto,
                  const dyn::ChurnSchedule* churn = nullptr) {
  const core::SyncParams params = core::SyncParams::recommended(1.0, 0.01, 0.0);
  sim::SimConfig scfg;
  scfg.wake_all_at_zero = shards >= 0;
  scfg.queue = queue;
  sim::Simulator sim(g, scfg);
  if (shards > 0) sim.configure_shards(shards, "auto", 64);
  if (shards_effective != nullptr) *shards_effective = sim.shards();
  sim.set_all_nodes(
      [&params](sim::NodeId) { return std::make_unique<core::AoptNode>(params); });
  sim.set_drift_policy(std::make_shared<sim::RandomWalkDrift>(0.01, 10.0, seed));
  sim.set_delay_policy(std::make_shared<sim::UniformDelay>(
      shards >= 0 ? 0.25 : 0.0, 1.0, seed + 1));
  if (churn != nullptr) churn->apply(sim);
  // Shard-axis rows measure the bare engine: no tracker.  The serial
  // engine observes per *event* while the windowed engine observes per
  // *barrier*, so attaching one would bill the K = 0 rows for a few
  // hundred thousand extra observer calls (tracker rescans dominate at
  // wake-all n >= 1e5) and the comparison would measure the tracker,
  // not the window machinery this axis exists to regress-check.
  std::unique_ptr<analysis::SkewTracker> tracker;
  if (shards < 0) {
    analysis::SkewTracker::Options topt;
    topt.mode = mode;
    topt.audit_epsilon = 0.01;
    tracker = std::make_unique<analysis::SkewTracker>(sim, topt);
    tracker->attach_auto(sim);
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(duration);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.events = sim.events_processed();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  if (tracker) {
    r.samples = tracker->samples_taken();
    r.full_scans = tracker->full_scans();
    r.global_skew = tracker->max_global_skew();
    r.local_skew = tracker->max_local_skew();
  }
  return r;
}

// Best-of-N wrapper: repeats a measurement, keeps the fastest run (the
// one least disturbed by scheduler noise), and summarizes the spread.
struct Repeated {
  RunResult best;
  double eps_best = 0.0;
  double eps_median = 0.0;
  double eps_stddev = 0.0;
};

template <typename F>
Repeated repeat_runs(int repeats, F&& f) {
  Repeated out;
  std::vector<double> eps;
  for (int i = 0; i < repeats; ++i) {
    const RunResult r = f();
    const double e = r.events / (r.seconds > 0.0 ? r.seconds : 1e-9);
    eps.push_back(e);
    if (e >= out.eps_best) {
      out.eps_best = e;
      out.best = r;
    }
  }
  std::sort(eps.begin(), eps.end());
  const std::size_t m = eps.size();
  out.eps_median = (m % 2 == 1) ? eps[m / 2]
                                : 0.5 * (eps[m / 2 - 1] + eps[m / 2]);
  double mean = 0.0;
  for (const double e : eps) mean += e;
  mean /= static_cast<double>(m);
  double var = 0.0;
  for (const double e : eps) var += (e - mean) * (e - mean);
  out.eps_stddev = m > 1 ? std::sqrt(var / static_cast<double>(m - 1)) : 0.0;
  return out;
}

RunResult run_pool(const graph::Graph& g, analysis::SkewTracker::Mode mode,
                   double duration) {
  std::vector<RunResult> parts(kPoolJobs);
  const auto t0 = std::chrono::steady_clock::now();
  {
    exec::ThreadPool pool(kPoolJobs);
    pool.parallel_for(static_cast<std::size_t>(kPoolJobs), [&](std::size_t i) {
      parts[i] = run_one(g, mode, duration, 3 + i);
    });
  }
  const auto t1 = std::chrono::steady_clock::now();
  RunResult agg;
  agg.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const RunResult& p : parts) {
    agg.events += p.events;
    agg.samples += p.samples;
    agg.full_scans += p.full_scans;
    agg.global_skew = std::max(agg.global_skew, p.global_skew);
    agg.local_skew = std::max(agg.local_skew, p.local_skew);
  }
  return agg;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_pr2.json";
  std::string label = "core_hotpath";
  std::string filter;
  int repeats = 1;
  std::vector<int> shard_axis;  // e.g. --shards 0,1,2,4; 0 = serial engine
  std::vector<std::string> queue_axis{"auto"};  // e.g. --queue heap,ladder
  std::vector<double> churn_axis;  // e.g. --churn 0,0.005,0.02; 0 = control
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (a == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (a == "--repeat" && i + 1 < argc) {
      repeats = std::max(1, std::atoi(argv[++i]));
    } else if (a == "--shards" && i + 1 < argc) {
      const char* p = argv[++i];
      while (*p != '\0') {
        char* end = nullptr;
        shard_axis.push_back(static_cast<int>(std::strtol(p, &end, 10)));
        p = (end != nullptr && *end == ',') ? end + 1 : (end != nullptr ? end : p + std::strlen(p));
      }
    } else if (a == "--churn" && i + 1 < argc) {
      const char* p = argv[++i];
      while (*p != '\0') {
        char* end = nullptr;
        churn_axis.push_back(std::strtod(p, &end));
        p = (end != nullptr && *end == ',') ? end + 1 : (end != nullptr ? end : p + std::strlen(p));
      }
    } else if (a == "--queue" && i + 1 < argc) {
      queue_axis.clear();
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t n =
            (comma == std::string::npos ? list.size() : comma) - pos;
        if (n > 0) queue_axis.push_back(list.substr(pos, n));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (queue_axis.empty()) queue_axis.push_back("auto");
    } else {
      std::fprintf(stderr,
                   "usage: bench_core_hotpath [--quick] [--filter SUBSTR] "
                   "[--repeat N] [--shards K0,K1,...] [--queue Q0,Q1,...] "
                   "[--churn R0,R1,...] [--out FILE] [--label NAME]\n"
                   "  --shards runs ONLY the shard-axis rows (band-delay "
                   "workload; K = 0 is the serial engine)\n"
                   "  --queue adds an event-queue axis to the shard rows "
                   "(auto | heap | ladder; auto rows keep unsuffixed "
                   "names)\n"
                   "  --churn runs ONLY the churn-axis rows (joins/leaves "
                   "at R/2, edge churn at R; R = 0 is the no-churn "
                   "control; combine with --shards for sharded rows)\n");
      return 2;
    }
  }
  const auto queue_select = [](const std::string& q) {
    if (q == "heap") return sim::QueueSelect::kHeap;
    if (q == "ladder") return sim::QueueSelect::kLadder;
    return sim::QueueSelect::kAuto;
  };

  // --quick runs the n=64 subset with the SAME durations as the full
  // sweep, so its result names and workloads match the recorded baseline
  // exactly and the smoke regression check compares like with like.
  const std::vector<int> sizes =
      quick ? std::vector<int>{64} : std::vector<int>{64, 1024, 16384};
  // Durations: long enough that the initialization flood (which crosses
  // the diameter at ~0.5 time units per hop) is over and the steady state
  // dominates, short enough that the oracle runs (O(n + E) per event)
  // stay tractable.  The line and grid at n = 16k never leave the flood
  // within any tractable horizon; those rows record the transient and are
  // flagged as such in EXPERIMENTS.md.
  const auto duration_for = [](const std::string& topo, int n) {
    if (n >= 16384) return topo == "line" ? 60.0 : (topo == "grid" ? 30.0 : 12.0);
    if (n >= 1023) return topo == "line" ? 1500.0 : (topo == "grid" ? 200.0 : 100.0);
    return 200.0;
  };

  tbcs::bench::BenchJsonWriter json(label);

  // Churn axis: one row per (topology, n, rate, K) on the band-delay
  // wake-all workload with a deterministic ChurnPlan applied — node
  // joins/leaves at rate/2, edge churn at rate, 20% extra non-edges in
  // the link universe.  Rate 0 rows are the no-churn control on the
  // exact same workload, so (rate r / rate 0) events_per_sec is the
  // engine-side cost of dynamic membership: presence gating on every
  // delivery, link-up/down flushing, and (sharded) cross-lane membership
  // barriers.  Combine with --shards for sharded rows (default K = 0).
  if (!churn_axis.empty()) {
    const std::vector<int> churn_sizes =
        quick ? std::vector<int>{64} : std::vector<int>{1024, 16384, 100000};
    const auto churn_duration_for = [](int n) {
      if (n >= 100000) return 10.0;
      if (n >= 16384) return 30.0;
      return 100.0;
    };
    const std::vector<int> churn_shards =
        shard_axis.empty() ? std::vector<int>{0} : shard_axis;
    for (const char* topo : {"line", "tree"}) {
      for (const int n : churn_sizes) {
        const double dur = churn_duration_for(n);
        for (const double rate : churn_axis) {
          // The plan extends the graph with extra churnable non-edges,
          // so each rate gets its own copy of the topology.
          tbcs::graph::Graph g = make_topology(topo, n);
          tbcs::dyn::ChurnSchedule sched;
          if (rate > 0.0) {
            tbcs::dyn::ChurnConfig ccfg;
            ccfg.node_rate = rate / 2.0;
            ccfg.edge_rate = rate;
            ccfg.node_downtime = 2.0;
            ccfg.edge_downtime = 2.0;
            ccfg.extra_edges = 0.2;
            ccfg.t0 = 1.0;
            ccfg.t1 = 0.8 * dur;
            ccfg.seed = 11;
            sched = tbcs::dyn::ChurnPlan(ccfg).build(g);
          }
          for (const int k : churn_shards) {
            char rbuf[32];
            std::snprintf(rbuf, sizeof rbuf, "%g", rate);
            const std::string name = std::string(topo) + "_n" +
                                     std::to_string(g.num_nodes()) + "_churn" +
                                     rbuf + "_shards" + std::to_string(k) +
                                     "_incremental";
            if (!filter.empty() && name.find(filter) == std::string::npos) {
              continue;
            }
            int effective = 0;
            const Repeated rr = repeat_runs(repeats, [&] {
              return run_one(g, tbcs::analysis::SkewTracker::Mode::kIncremental,
                             dur, 3, k, &effective, sim::QueueSelect::kAuto,
                             rate > 0.0 ? &sched : nullptr);
            });
            const RunResult& r = rr.best;
            json.add(name)
                .metric("n", g.num_nodes())
                .metric("duration", dur)
                .metric("shards", k)
                .metric("shards_effective", effective)
                .metric("churn_rate", rate)
                .metric("churn_ops", static_cast<double>(sched.ops.size()))
                .metric("events", static_cast<double>(r.events))
                .metric("seconds", r.seconds)
                .metric("events_per_sec", rr.eps_best)
                .metric("eps_median", rr.eps_median)
                .metric("eps_stddev", rr.eps_stddev)
                .metric("repeats", repeats);
            std::printf("%-44s %12.0f events/s  (%llu events, %.2fs, %zu churn ops)\n",
                        name.c_str(), rr.eps_best, (unsigned long long)r.events,
                        r.seconds, sched.ops.size());
            std::fflush(stdout);
          }
        }
      }
    }
    json.write_file(out);
    std::printf("wrote %s\n", out.c_str());
    return 0;
  }

  // Shard axis: one row per (topology, n, K) on the band-delay workload,
  // bare engine (no tracker — see run_one).  Replaces the legacy matrix
  // for this invocation so a shard sweep doesn't pay for the slow oracle
  // rows.  Every node is awake at t = 0 (see run_one), so steady state
  // holds from the start and short durations suffice at n in {1e5, 1e6}.
  if (!shard_axis.empty()) {
    const std::vector<int> shard_sizes =
        quick ? std::vector<int>{64}
              : std::vector<int>{64, 1024, 16384, 100000, 1000000};
    const auto shard_duration_for = [](int n) {
      if (n >= 1000000) return 4.0;
      if (n >= 100000) return 10.0;
      if (n >= 16384) return 30.0;
      if (n >= 1023) return 100.0;
      return 200.0;
    };
    for (const char* topo : {"line", "tree"}) {
      for (const int n : shard_sizes) {
        const tbcs::graph::Graph g = make_topology(topo, n);
        const double dur = shard_duration_for(n);
        for (const int k : shard_axis) {
          for (const std::string& q : queue_axis) {
            // "auto" rows keep the historical unsuffixed names so they
            // regress-check against earlier recorded baselines directly.
            const std::string name = std::string(topo) + "_n" +
                                     std::to_string(g.num_nodes()) +
                                     "_shards" + std::to_string(k) +
                                     "_incremental" +
                                     (q == "auto" ? "" : "_q" + q);
            if (!filter.empty() && name.find(filter) == std::string::npos) {
              continue;
            }
            int effective = 0;
            const Repeated rr = repeat_runs(repeats, [&] {
              return run_one(g, tbcs::analysis::SkewTracker::Mode::kIncremental,
                             dur, 3, k, &effective, queue_select(q));
            });
            const RunResult& r = rr.best;
            json.add(name)
                .metric("n", g.num_nodes())
                .metric("duration", dur)
                .metric("shards", k)
                .metric("shards_effective", effective)
                .metric("events", static_cast<double>(r.events))
                .metric("seconds", r.seconds)
                .metric("events_per_sec", rr.eps_best)
                .metric("eps_median", rr.eps_median)
                .metric("eps_stddev", rr.eps_stddev)
                .metric("repeats", repeats);
            std::printf("%-40s %12.0f events/s  (%llu events, %.2fs)\n",
                        name.c_str(), rr.eps_best, (unsigned long long)r.events,
                        r.seconds);
            std::fflush(stdout);
          }
        }
      }
    }
    json.write_file(out);
    std::printf("wrote %s\n", out.c_str());
    return 0;
  }

  for (const char* topo : {"line", "tree", "grid"}) {
    for (const int n : sizes) {
      const tbcs::graph::Graph g = make_topology(topo, n);
      const double dur = duration_for(topo, n);
      for (const bool pool : {false, true}) {
        for (const bool oracle : {false, true}) {
          const auto mode =
              oracle ? tbcs::analysis::SkewTracker::Mode::kFullRescan
                     : tbcs::analysis::SkewTracker::Mode::kIncremental;
          const std::string name = std::string(topo) + "_n" +
                                   std::to_string(g.num_nodes()) +
                                   (pool ? "_pool" : "_serial") +
                                   (oracle ? "_oracle" : "_incremental");
          if (!filter.empty() && name.find(filter) == std::string::npos) {
            continue;
          }
          const Repeated rr = repeat_runs(repeats, [&] {
            return pool ? run_pool(g, mode, dur) : run_one(g, mode, dur, 3);
          });
          const RunResult& r = rr.best;
          json.add(name)
              .metric("n", g.num_nodes())
              .metric("duration", dur)
              .metric("jobs", pool ? kPoolJobs : 1)
              .metric("events", static_cast<double>(r.events))
              .metric("seconds", r.seconds)
              .metric("events_per_sec", rr.eps_best)
              .metric("eps_median", rr.eps_median)
              .metric("eps_stddev", rr.eps_stddev)
              .metric("repeats", repeats)
              .metric("samples", static_cast<double>(r.samples))
              .metric("full_scans", static_cast<double>(r.full_scans))
              .metric("global_skew", r.global_skew)
              .metric("local_skew", r.local_skew);
          std::printf("%-32s %12.0f events/s  (%llu events, %.2fs, %llu/%llu scans)\n",
                      name.c_str(), rr.eps_best, (unsigned long long)r.events,
                      r.seconds, (unsigned long long)r.full_scans,
                      (unsigned long long)r.samples);
          std::fflush(stdout);
        }
      }
    }
  }
  json.write_file(out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
