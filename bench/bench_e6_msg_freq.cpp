// E6 — Section 6.1: the amortized message frequency is Theta(1/H0) per
// node, and bounding the frequency (minimum send spacing H0) trades into
// the global skew as Theta(eps D H0).
//
// Workload: 8x8 grid with the bounded-frequency variant; sweep H0.
#include <iostream>
#include <memory>

#include "analysis/counters.hpp"
#include "bench_util.hpp"
#include "core/aopt_variants.hpp"

int main() {
  using namespace tbcs;
  const double t = 1.0;
  const double eps = 0.01;
  const double mu = 0.2;
  const graph::Graph g = graph::make_grid(8, 8);
  const int d = g.diameter();

  bench::print_header(
      "E6: message frequency vs skew trade-off (Section 6.1)",
      "claim: sends per node per time unit ~ 1/H0; the global skew pays\n"
      "an extra Theta(eps D H0) as H0 grows (tunable trade-off).");

  analysis::Table table({"H0", "msgs/node/time", "theory 1/H0", "global skew",
                         "G(H0)", "G(H0) + 2eps*D*H0", "local skew"});

  for (const double h0 : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const core::SyncParams params = core::SyncParams::with(t, eps, mu, h0);

    bench::RunSpec spec;
    spec.graph = &g;
    spec.factory = [&params](sim::NodeId) {
      return core::make_bounded_frequency_aopt(params);
    };
    spec.drift = std::make_shared<sim::RandomWalkDrift>(eps, 4.0 * h0, 3);
    spec.delay = std::make_shared<sim::UniformDelay>(0.0, t, 5);
    spec.duration = 40.0 * h0 + 200.0;
    const auto m = bench::run(spec);

    const double freq =
        static_cast<double>(m.broadcasts) / (g.num_nodes() * m.duration);
    const double g_bound = params.global_skew_bound(d, eps, t);
    table.add_row({analysis::Table::num(h0, 1), analysis::Table::num(freq, 4),
                   analysis::Table::num(1.0 / h0, 4),
                   analysis::Table::num(m.global_skew),
                   analysis::Table::num(g_bound),
                   analysis::Table::num(g_bound + 2.0 * eps * d * h0),
                   analysis::Table::num(m.local_skew)});
  }
  table.print(std::cout);

  std::cout << "\nexpected shape: the measured frequency tracks 1/H0 within a\n"
               "small constant; the skew columns stay below the H0-adjusted\n"
               "bound, which grows linearly in H0 (the Section 6.1 price).\n";
  return 0;
}
