// A2 — the Section 8 model extensions, measured:
//
//   (1) Discrete clocks (Section 8.4): sweep the tick frequency f; the
//       effective delay uncertainty is max(1/f, T), so skews are flat for
//       1/f < T and grow once ticks get coarser than the delays.
//   (2) Unknown delay bound (Section 8.1): the adaptive variant starts
//       with T_hat = Theta(1/f) and converges to a bound above the true
//       delays within a handful of doubling floods.
//   (3) Dynamic topologies: a ring under periodic link churn (one link
//       down at a time) keeps its guarantees for the induced path.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/adaptive_delay.hpp"
#include "sim/tick_quantizer.hpp"

int main() {
  using namespace tbcs;
  const double t = 1.0;
  const double eps = 0.02;

  bench::print_header(
      "A2: model extensions (Sections 8.1, 8.4, dynamic topologies)",
      "claims: (1) skew tracks max(1/f, T) under discrete ticks; (2) the\n"
      "adaptive delay bound converges from a tiny guess in O(log) floods;\n"
      "(3) the guarantees survive link churn on the surviving topology.");

  // ---- (1) tick frequency sweep -------------------------------------------
  {
    std::cout << "-- (1) discrete ticks: path D = 15, T = 1 --\n";
    const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.3);
    const graph::Graph g = graph::make_path(16);
    analysis::Table table({"tick freq f", "tick len 1/f", "eff. T = max(1/f,T)",
                           "global skew", "bound(eff. T)"});
    for (const double f : {100.0, 4.0, 1.0, 0.5, 0.25}) {
      bench::RunSpec spec;
      spec.graph = &g;
      spec.factory = [&params, f](sim::NodeId) {
        return std::make_unique<sim::TickQuantizedNode>(
            std::make_unique<core::AoptNode>(params), f);
      };
      spec.drift = std::make_shared<sim::SquareWaveDrift>(
          eps, 30.0 * t, [](sim::NodeId v) { return v < 8; });
      spec.delay = bench::skew_hiding_delays(g, 0, t);
      spec.duration = 400.0;
      const auto m = bench::run(spec);
      const double t_eff = std::max(1.0 / f, t) + std::min(1.0 / f, t);
      table.add_row({analysis::Table::num(f, 2),
                     analysis::Table::num(1.0 / f, 2),
                     analysis::Table::num(t_eff, 2),
                     analysis::Table::num(m.global_skew),
                     analysis::Table::num(
                         params.global_skew_bound(15, eps, t_eff))});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // ---- (2) adaptive delay convergence --------------------------------------
  {
    std::cout << "-- (2) adaptive T_hat: grid 4x4, true delays U[0.3, 1.0] --\n";
    const core::SyncParams guess =
        core::SyncParams::with(/*delay_hat=*/0.01, eps, 0.5, 5.0);
    const graph::Graph g = graph::make_grid(4, 4);
    sim::Simulator sim(g);
    std::vector<core::AdaptiveDelayAoptNode*> nodes;
    sim.set_all_nodes([&guess, &nodes](sim::NodeId) {
      auto n = std::make_unique<core::AdaptiveDelayAoptNode>(guess);
      nodes.push_back(n.get());
      return n;
    });
    sim.set_drift_policy(std::make_shared<sim::RandomWalkDrift>(eps, 10.0, 3));
    sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.3, 1.0, 5));

    analysis::Table table({"t", "min bound", "max bound", "max kappa",
                           "total updates"});
    for (const double horizon : {5.0, 20.0, 80.0, 320.0}) {
      sim.run_until(horizon);
      double lo = 1e18;
      double hi = 0.0;
      double kap = 0.0;
      std::uint64_t updates = 0;
      for (const auto* n : nodes) {
        lo = std::min(lo, n->current_delay_bound());
        hi = std::max(hi, n->current_delay_bound());
        kap = std::max(kap, n->current_kappa());
        updates += n->bound_updates();
      }
      table.add_row({analysis::Table::num(horizon, 0),
                     analysis::Table::num(lo, 3), analysis::Table::num(hi, 3),
                     analysis::Table::num(kap, 2),
                     analysis::Table::integer(static_cast<long long>(updates))});
    }
    table.print(std::cout);
    std::cout << "(true one-way delays <= 1.0; a bound >= 1.0 is safe)\n\n";
  }

  // ---- (3) link churn --------------------------------------------------------
  {
    std::cout << "-- (3) churn: ring of 16, one link down at a time --\n";
    const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.3);
    const graph::Graph g = graph::make_ring(16);
    sim::Simulator sim(g);
    sim.set_all_nodes([&params](sim::NodeId) {
      return std::make_unique<core::AoptNode>(params);
    });
    sim.set_drift_policy(std::make_shared<sim::RandomWalkDrift>(eps, 8.0, 7));
    sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.0, t, 9));
    // Every 60 time units a different ring link fails for 30 units.
    for (int i = 0; i < 10; ++i) {
      const auto u = static_cast<sim::NodeId>((i * 5) % 16);
      const auto v = static_cast<sim::NodeId>((u + 1) % 16);
      const auto [a, b] = std::minmax(u, v);
      sim.schedule_link_change(a, b, false, 50.0 + 60.0 * i);
      sim.schedule_link_change(a, b, true, 80.0 + 60.0 * i);
    }
    analysis::SkewTracker tracker(sim, {});
    tracker.attach(sim);
    sim.run_until(700.0);

    analysis::Table table({"metric", "value"});
    // With one ring link down the graph is a path: diameter 15.
    table.add_row({"global skew", analysis::Table::num(tracker.max_global_skew())});
    table.add_row({"bound (path D=15)", analysis::Table::num(
                                            params.global_skew_bound(15, eps, t))});
    table.add_row({"local skew", analysis::Table::num(tracker.max_local_skew())});
    table.add_row({"local bound (D=15)", analysis::Table::num(
                                             params.local_skew_bound(15, eps, t))});
    table.add_row({"messages dropped", analysis::Table::integer(
                                           static_cast<long long>(sim.messages_dropped()))});
    table.print(std::cout);
  }

  std::cout << "\nexpected shape: (1) skew flat while 1/f < T, grows after;\n"
               "(2) bounds converge to [1, ~4] within ~20 time units and stop\n"
               "updating; (3) churn skews stay below the path-diameter bounds.\n";
  return 0;
}
