// E3 — Corollary 7.8 / Inequality (6): the base of the local-skew
// logarithm is sigma = Theta(mu / eps).  Increasing mu (the rate headroom)
// shrinks the local-skew bound; the price is a larger beta = (1+eps)(1+mu)
// (Condition 2) and a larger kappa.
//
// Workload: fixed path D = 64, eps = 0.005; sweep mu across powers of two
// times the minimum 14 eps / (1 - eps).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace tbcs;
  const double t = 1.0;
  const double eps = 0.005;
  const int n = 65;
  const graph::Graph g = graph::make_path(n);
  const int d = n - 1;

  bench::print_header(
      "E3: local skew vs mu/eps (Corollary 7.8)",
      "claim: sigma = Theta(mu/eps); growing mu shrinks the number of\n"
      "kappa-levels ceil(log_sigma(2G/kappa)) and hence the local bound,\n"
      "at the cost of beta and kappa growing with mu.");

  analysis::Table table({"mu", "mu/eps", "sigma", "kappa", "levels",
                         "local bound", "measured local", "beta"});

  const double mu_min = 14.0 * eps / (1.0 - eps);
  for (double mu = mu_min; mu <= 16.5 * mu_min; mu *= 2.0) {
    const core::SyncParams params = core::SyncParams::with(t, eps, mu, t / mu);

    bench::RunSpec spec;
    spec.graph = &g;
    spec.factory = [&params](sim::NodeId) {
      return std::make_unique<core::AoptNode>(params);
    };
    spec.drift = std::make_shared<sim::SquareWaveDrift>(
        eps, 2.0 * d * t, [n](sim::NodeId v) { return v < n / 2; });
    spec.delay = bench::skew_hiding_delays(g, 0, t);
    spec.duration = 6.0 * d * t;
    const auto m = bench::run(spec);

    const double bound = params.local_skew_bound(d, eps, t);
    const double levels = (bound / params.kappa) - 0.5;
    table.add_row({analysis::Table::num(params.mu, 3),
                   analysis::Table::num(params.mu / eps, 0),
                   analysis::Table::num(params.sigma(), 0),
                   analysis::Table::num(params.kappa, 2),
                   analysis::Table::num(levels, 0),
                   analysis::Table::num(bound, 2),
                   analysis::Table::num(m.local_skew, 3),
                   analysis::Table::num(params.beta(eps), 3)});
  }
  table.print(std::cout);

  std::cout << "\nexpected shape: 'levels' decreases as mu/eps grows (larger\n"
               "log base); the bound follows kappa * (levels + 1/2).\n";
  return 0;
}
