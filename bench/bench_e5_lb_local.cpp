// E5 — Theorems 7.7/7.12: the iterative shifting construction forces a
// local skew of Omega(alpha T log_b D), where b = ceil(2(beta-alpha)/
// (alpha eps)) depends on the *attacked algorithm's* rate bounds: between
// shift windows the algorithm sees (and burns) old skew at rate up to
// beta - alpha, and the b-fold shrink per level is exactly what makes the
// masked gain survive that burn.
//
// Part A runs the paper-exact attack against a legally configured A^opt
// (construction eps == the algorithm's eps_hat, b from the formula).
// Part B attacks with drift exceeding the algorithm's estimate
// (eps > eps_hat — the Theorem 7.2 theme that wrong estimates void
// guarantees), which needs a much smaller b and therefore shows more
// levels of growth at a given path length.
#include <cmath>
#include <iostream>
#include <memory>

#include "baselines/max_algorithm.hpp"
#include "bench_util.hpp"
#include "lowerbound/local_adversary.hpp"

namespace {

using namespace tbcs;

template <typename Factory>
std::vector<lowerbound::LocalSkewConstruction::Level> attack(
    const graph::Graph& g, double eps, double t, int b, Factory factory) {
  sim::SimConfig cfg;
  cfg.wake_all_at_zero = true;
  sim::Simulator sim(g, cfg);
  sim.set_all_nodes(factory);
  sim.set_drift_policy(std::make_shared<sim::ConstantDrift>(1.0));

  lowerbound::LocalSkewConstruction::Config lcfg;
  lcfg.eps = eps;
  lcfg.delay = t;
  lowerbound::LocalSkewConstruction adv(sim, lcfg);
  sim.set_delay_policy(adv.delay_policy());
  return adv.run(b);
}

void print_levels(
    const std::vector<lowerbound::LocalSkewConstruction::Level>& levels,
    double alpha, double t) {
  analysis::Table table({"level k", "segment length", "skew", "per-edge skew",
                         "theory floor (k+1)/2 aTd"});
  for (const auto& lv : levels) {
    const double floor = (lv.k + 1) * 0.5 * alpha * t * lv.length;
    table.add_row({analysis::Table::integer(lv.k),
                   analysis::Table::integer(lv.length),
                   analysis::Table::num(lv.skew),
                   analysis::Table::num(lv.per_edge),
                   analysis::Table::num(floor)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const double t = 1.0;

  bench::print_header(
      "E5: local-skew lower bound (Theorems 7.7/7.12)",
      "claim: per-edge average skew grows by ~alpha T per level while the\n"
      "segment shrinks by b = ceil(2(beta-alpha)/(alpha eps)); after\n"
      "log_b D levels two neighbors carry Omega(alpha T log_b D) skew.");

  // ---- Part A: paper-exact attack on a legal A^opt ------------------------
  {
    const double eps = 0.05;  // construction amplitude == algorithm's bound
    const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.0);
    const double alpha = params.alpha(eps);
    const double beta = params.beta(eps);
    const int b =
        static_cast<int>(std::ceil(2.0 * (beta - alpha) / (alpha * eps)));
    const int edges = b * b;  // two shrink levels
    const graph::Graph g = graph::make_path(edges + 1);

    std::cout << "-- A: legal A^opt (eps = eps_hat = " << eps
              << ", beta-alpha = " << analysis::Table::num(beta - alpha, 3)
              << " -> b = " << b << ", D = " << edges << ") --\n";
    const auto levels = attack(g, eps, t, b, [&params](sim::NodeId) {
      return std::make_unique<core::AoptNode>(params);
    });
    print_levels(levels, alpha, t);
    std::cout << "final neighbor skew: "
              << analysis::Table::num(levels.back().skew)
              << "  (A^opt upper bound: "
              << analysis::Table::num(params.local_skew_bound(edges, eps, t))
              << ")\n\n";
  }

  // ---- Part B: drift exceeding the algorithm's estimate -------------------
  {
    const double eps = 0.2;  // adversary swings 4x the algorithm's eps_hat
    const core::SyncParams params = core::SyncParams::recommended(t, 0.05, 0.0);
    const int b = 11;

    std::cout << "-- B: eps-underestimating A^opt (eps_hat = 0.05, adversary "
                 "eps = 0.2), b = 11 --\n";
    analysis::Table sweep({"D (edges)", "levels", "final neighbor skew",
                           "per-level detail (per-edge)"});
    for (int levels_n = 1; levels_n <= 3; ++levels_n) {
      int edges = 1;
      for (int i = 0; i < levels_n; ++i) edges *= b;
      const graph::Graph g = graph::make_path(edges + 1);
      const auto levels = attack(g, eps, t, b, [&params](sim::NodeId) {
        return std::make_unique<core::AoptNode>(params);
      });
      std::string detail;
      for (const auto& lv : levels) {
        if (!detail.empty()) detail += " -> ";
        detail += analysis::Table::num(lv.per_edge, 2);
      }
      sweep.add_row({analysis::Table::integer(edges),
                     analysis::Table::integer(levels_n),
                     analysis::Table::num(levels.back().skew), detail});
    }
    sweep.print(std::cout);
    std::cout << "\n";
  }

  // ---- Part C: rate-limited max propagation under the same attack ---------
  {
    const double eps = 0.2;
    baselines::MaxAlgorithmOptions mopt;
    mopt.jump = false;
    mopt.mu = 0.5;  // alpha = 0.8, beta = 1.8 -> b_req = 2*1.0/(0.8*0.2) = 12.5
    mopt.h0 = 2.0;
    const int b = 13;
    const int edges = b * b;
    const graph::Graph g = graph::make_path(edges + 1);
    std::cout << "-- C: rate-limited max propagation (mu = 0.5), b = 13, D = "
              << edges << " --\n";
    const auto levels = attack(g, eps, t, b, [&mopt](sim::NodeId) {
      return std::make_unique<baselines::MaxAlgorithmNode>(mopt);
    });
    print_levels(levels, 1.0 - eps, t);
  }

  std::cout
      << "\nexpected shape: in every part the per-edge skew grows across\n"
         "levels (the construction beats any rate-bounded algorithm); A^opt\n"
         "merely *matches* the unavoidable bound — its final skew stays\n"
         "within its Theorem 5.10 ceiling, which is what optimality means.\n";
  return 0;
}
