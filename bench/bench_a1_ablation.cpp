// A1 — ablation of the design choices DESIGN.md calls out:
//
//   (1) Algorithm 3's *quantized* balancing rule vs the naive midpoint
//       rule (Section 4.2's explicit comparison): under the Lemma 7.6
//       shifting construction the midpoint rule lets the forced per-edge
//       skew keep climbing, while A^opt's rule caps it near its bound.
//   (2) kappa sensitivity: kappa multipliers below 1 violate Inequality
//       (4) — the guarantees are void and the skew responds; multipliers
//       above 1 scale the local skew linearly (kappa is the right knob,
//       chosen minimal).
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "lowerbound/local_adversary.hpp"

namespace {

using namespace tbcs;

double attack_local_skew(const graph::Graph& g, const core::SyncParams& params,
                         bool midpoint, int b) {
  sim::SimConfig cfg;
  cfg.wake_all_at_zero = true;
  sim::Simulator sim(g, cfg);
  core::AoptOptions o;
  o.midpoint_rule = midpoint;
  sim.set_all_nodes([&params, &o](sim::NodeId) {
    return std::make_unique<core::AoptNode>(params, o);
  });
  sim.set_drift_policy(std::make_shared<sim::ConstantDrift>(1.0));
  lowerbound::LocalSkewConstruction::Config lcfg;
  lcfg.eps = 0.2;
  lcfg.delay = 1.0;
  lowerbound::LocalSkewConstruction adv(sim, lcfg);
  sim.set_delay_policy(adv.delay_policy());
  const auto levels = adv.run(b);
  return levels.back().skew;
}

}  // namespace

int main() {
  const double t = 1.0;
  const double eps = 0.05;

  bench::print_header(
      "A1: ablations (balancing rule, kappa)",
      "claims: (1) the quantized rule of Algorithm 3 beats the naive\n"
      "midpoint under the shifting attack; (2) kappa is chosen minimal —\n"
      "scaling it up scales the local skew bound linearly, shrinking it\n"
      "below Inequality (4) voids the guarantee.");

  std::cout << "-- (1) balancing rule under the Lemma 7.6 attack --\n";
  const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.0);
  analysis::Table rule_table({"path edges", "A^opt rule", "midpoint rule",
                              "A^opt bound"});
  for (const int b : {4, 5, 6}) {
    const int edges = b * b * b;
    const graph::Graph g = graph::make_path(edges + 1);
    const double quantized = attack_local_skew(g, params, false, b);
    const double midpoint = attack_local_skew(g, params, true, b);
    rule_table.add_row({analysis::Table::integer(edges),
                        analysis::Table::num(quantized),
                        analysis::Table::num(midpoint),
                        analysis::Table::num(
                            params.local_skew_bound(edges, eps, t))});
  }
  rule_table.print(std::cout);

  std::cout << "\n-- (2) kappa sensitivity via the delay estimate T_hat "
               "(path D = 32) --\n";
  // The algorithm believes T_hat = mult * T; Inequality (4) ties kappa to
  // T_hat, so under-estimation (mult < 1) shrinks kappa below the legal
  // minimum for the *true* delays and the Theorem 5.10 guarantee is void.
  const graph::Graph g = graph::make_path(33);
  analysis::Table kappa_table({"T_hat/T", "kappa", "ineq (4) vs true T",
                               "local skew", "bound (true T)"});
  for (const double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const core::SyncParams p =
        core::SyncParams::with(t * mult, eps, params.mu, params.h0);
    // Valid w.r.t. the true delay uncertainty t?
    core::SyncParams truth = p;
    truth.delay_hat = t;
    const bool valid = truth.valid();

    bench::RunSpec spec;
    spec.graph = &g;
    spec.factory = [&p](sim::NodeId) {
      return std::make_unique<core::AoptNode>(p);
    };
    spec.drift = std::make_shared<sim::SquareWaveDrift>(
        eps, 64.0 * t, [](sim::NodeId v) { return v < 17; });
    spec.delay = bench::skew_hiding_delays(g, 0, t);
    spec.duration = 400.0;
    const auto m = bench::run(spec);

    kappa_table.add_row({analysis::Table::num(mult, 2),
                         analysis::Table::num(p.kappa, 2),
                         valid ? "yes" : "NO",
                         analysis::Table::num(m.local_skew),
                         valid ? analysis::Table::num(
                                     p.local_skew_bound(32, eps, t))
                               : "void"});
  }
  kappa_table.print(std::cout);

  std::cout << "\nexpected shape: (1) the midpoint column grows faster with\n"
               "path length than the A^opt column; (2) for multipliers >= 1\n"
               "the bound scales ~linearly with kappa while the measured\n"
               "skew stays below it; multipliers < 1 lose the guarantee.\n";
  return 0;
}
