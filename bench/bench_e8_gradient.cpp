// E8 — Definition 5.6 / Corollary 7.9: the gradient property.  The legal
// state bounds the skew between nodes at hop distance d by
//     d (s + 1/2) kappa,  s = smallest level with C_s <= d,
// i.e. O(d kappa (1 + log_sigma(2G / (d kappa)))): near nodes are tightly
// synchronized, far nodes proportionally looser.
//
// Workload: path with D = 96 under the square-wave adversary; per-distance
// exact skew profile vs the legal-state ceiling.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "lowerbound/local_adversary.hpp"

int main() {
  using namespace tbcs;
  const double t = 1.0;
  const double eps = 0.02;
  const int n = 97;
  const graph::Graph g = graph::make_path(n);
  const int d_max = n - 1;
  const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.0);

  bench::print_header(
      "E8: gradient property (Definition 5.6, Corollary 7.9)",
      "claim: max skew between nodes at distance d stays below the\n"
      "legal-state ceiling d (s + 1/2) kappa; per-edge skew *decreases*\n"
      "with distance (the gradient).");

  sim::Simulator sim(g);
  sim.set_all_nodes(
      [&params](sim::NodeId) { return std::make_unique<core::AoptNode>(params); });
  sim.set_drift_policy(std::make_shared<sim::SquareWaveDrift>(
      eps, 2.0 * d_max * t, [n](sim::NodeId v) { return v < n / 2; }));
  sim.set_delay_policy(bench::skew_hiding_delays(g, 0, t));

  analysis::SkewTracker::Options topt;
  topt.track_per_distance = true;
  topt.stride = 4;
  analysis::SkewTracker tracker(sim, topt);
  tracker.attach(sim);
  sim.run_until(8.0 * d_max * t);

  analysis::Table table({"distance d", "max skew", "legal-state ceiling",
                         "skew/d", "ceiling/d"});
  for (const int d : {1, 2, 4, 8, 16, 32, 64, 96}) {
    const double measured = tracker.max_skew_at_distance(d);
    const double ceiling = params.distance_skew_bound(d, d_max, eps, t);
    table.add_row({analysis::Table::integer(d), analysis::Table::num(measured),
                   analysis::Table::num(ceiling),
                   analysis::Table::num(measured / d, 4),
                   analysis::Table::num(ceiling / d, 4)});
  }
  table.print(std::cout);

  std::cout << "\nexpected shape: every measured value below its ceiling; the\n"
               "per-hop columns (skew/d, ceiling/d) *decrease* with d — the\n"
               "defining signature of a gradient clock synchronization\n"
               "algorithm (near pairs are proportionally tighter).\n\n";

  // ---- the other side: Corollary 7.9's forced floor ------------------------
  // The Lemma 7.6 construction produces, at level k, a pair at distance
  // D/b^k carrying ~(k+1)/2 alpha T d of skew — i.e. skew ~ alpha T d (1 +
  // log_b(D/d))/2 per distance: the gradient is tight from below as well.
  {
    const double lb_eps = 0.2;  // adversary drift beyond eps_hat: b = 11
    const int b = 11;
    const int edges = b * b * b;  // 1331
    const graph::Graph gp = graph::make_path(edges + 1);
    sim::SimConfig cfg;
    cfg.wake_all_at_zero = true;
    sim::Simulator sim2(gp, cfg);
    sim2.set_all_nodes([&params](sim::NodeId) {
      return std::make_unique<core::AoptNode>(params);
    });
    sim2.set_drift_policy(std::make_shared<sim::ConstantDrift>(1.0));
    lowerbound::LocalSkewConstruction::Config lcfg;
    lcfg.eps = lb_eps;
    lcfg.delay = t;
    lowerbound::LocalSkewConstruction adv(sim2, lcfg);
    sim2.set_delay_policy(adv.delay_policy());
    const auto levels = adv.run(b);

    std::cout << "-- forced floor (Corollary 7.9): construction levels on a "
              << edges << "-edge path --\n";
    analysis::Table floor_table({"distance d", "forced skew",
                                 "theory ~ aTd(1+log_b(D/d))/2"});
    const double alpha = 1.0 - lb_eps;
    for (const auto& lv : levels) {
      const double logterm =
          lv.length > 0 ? std::log(static_cast<double>(edges) / lv.length) /
                              std::log(static_cast<double>(b))
                        : 0.0;
      floor_table.add_row(
          {analysis::Table::integer(lv.length), analysis::Table::num(lv.skew),
           analysis::Table::num(alpha * t * lv.length * (1.0 + logterm) / 2.0)});
    }
    floor_table.print(std::cout);
    std::cout << "expected shape: forced skew per distance tracks the\n"
                 "d(1+log(D/d)) law — the gradient is tight from both sides\n"
                 "(Corollary 7.9).\n";
  }
  return 0;
}
