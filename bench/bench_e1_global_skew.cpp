// E1 — Theorem 5.5: the global skew of A^opt is bounded by
//        G = (1 + eps) D T + 2 eps / (1 + eps) H0
// and grows linearly in the diameter D.
//
// Workload: paths of increasing diameter under (a) a square-wave drift
// adversary with skew-hiding directional delays and (b) the Theorem 7.2
// shifting adversary E3 — the strongest known execution, which drives the
// measured skew to ~(1+rho) D T, i.e. within a whisker of G.
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "lowerbound/global_adversary.hpp"

int main() {
  using namespace tbcs;
  const double t = 1.0;
  const double eps = 0.05;
  const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.0);

  bench::print_header(
      "E1: global skew vs diameter (Theorem 5.5)",
      "claim: measured global skew <= G = (1+eps) D T + 2eps/(1+eps) H0,\n"
      "and the shifting adversary pushes it to ~(1+rho) D T (near-tight).");

  analysis::Table table({"D", "skew(square-wave)", "skew(shift-adv E3)",
                         "bound G", "tightness E3/G"});

  for (const int n : {9, 17, 33, 65}) {
    const graph::Graph g = graph::make_path(n);
    const int d = n - 1;

    // (a) Square-wave drift: one half of the path fast, the other slow,
    // flipping every ~2 D T; delays hide the divergence.
    bench::RunSpec spec;
    spec.graph = &g;
    spec.factory = [&params](sim::NodeId) {
      return std::make_unique<core::AoptNode>(params);
    };
    spec.drift = std::make_shared<sim::SquareWaveDrift>(
        eps, 4.0 * d * t, [n](sim::NodeId v) { return v < n / 2; });
    spec.delay = bench::skew_hiding_delays(g, 0, t);
    spec.duration = 12.0 * d * t;
    spec.audit_epsilon = eps;
    const auto sq = bench::run(spec);

    // (b) The Theorem 7.2 adversary, with a loose delay estimate
    // (c1 = 1/2) so rho = eps.
    lowerbound::GlobalSkewAdversary::Config acfg;
    acfg.eps = eps;
    acfg.eps_hat = eps;
    acfg.delay = t;
    acfg.c1 = 0.5;
    lowerbound::GlobalSkewAdversary adv(g, 0, acfg);
    const core::SyncParams loose =
        core::SyncParams::recommended(t / acfg.c1, eps, 0.0);
    bench::RunSpec spec2;
    spec2.graph = &g;
    spec2.factory = [&loose](sim::NodeId) {
      return std::make_unique<core::AoptNode>(loose);
    };
    spec2.drift = adv.drift_policy();
    spec2.delay = adv.delay_policy();
    spec2.duration = adv.t0() * 1.02;
    spec2.wake_all_at_zero = true;
    const auto e3 = bench::run(spec2);

    // Theorem 5.5's G is stated with the *true* eps and T of the execution.
    const double bound = loose.global_skew_bound(d, eps, t);
    table.add_row({analysis::Table::integer(d),
                   analysis::Table::num(sq.global_skew),
                   analysis::Table::num(e3.global_skew),
                   analysis::Table::num(bound),
                   analysis::Table::num(e3.global_skew / bound, 3)});
  }

  table.print(std::cout);
  std::cout << "\nexpected shape: both measured columns grow ~linearly in D;\n"
               "the E3 column stays within [0.9, 1.0] of the bound "
               "(upper and lower bound meet up to O(eps)).\n";
  return 0;
}
