// Wall-clock speedup of the exec engine: the same sweep at --jobs 1
// vs --jobs N (default 8, override with --jobs).
//
//   bench_exec_speedup [--jobs N] [--configs C] [--duration T]
//
// Runs a C-config sweep (eps axis x replicas) serially and on N workers,
// verifies the two result sets are identical (the determinism contract),
// and reports wall-clock times and the speedup factor.  On a machine
// with >= N free cores the sweep is embarrassingly parallel and the
// speedup should approach min(N, cores).
#include <chrono>
#include <iostream>
#include <vector>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "cli/args.hpp"
#include "exec/sweep_runner.hpp"

namespace {

using namespace tbcs;

double time_sweep(const std::vector<exec::RunSpec>& specs, int jobs,
                  std::vector<exec::RunResult>& out) {
  exec::SweepOptions opt;
  opt.jobs = jobs;
  opt.base_seed = 1;
  const auto start = std::chrono::steady_clock::now();
  out = exec::SweepRunner(opt).run(specs);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args(argc, argv);
  const int jobs = args.get_int("jobs", 8);
  const int configs = args.get_int("configs", 32);
  const double duration = args.get_double("duration", 300.0);

  bench::print_header(
      "exec speedup: identical sweep, 1 worker vs " + std::to_string(jobs),
      "claim: results are byte-identical for every job count and the\n"
      "wall-clock improvement approaches min(jobs, cores).");

  cli::ExperimentConfig base;
  base.topology = "path";
  base.nodes = 24;
  base.drift = "square";
  base.delays = "hiding";
  base.duration = duration;

  exec::SweepAxis axis{"eps", {}};
  const int points = (configs + 3) / 4;  // 4 replicas per grid point
  for (int i = 0; i < points; ++i) {
    axis.values.push_back(0.005 + 0.005 * i);
  }
  const auto specs = exec::make_grid_specs(base, axis, nullptr, 4);

  std::vector<exec::RunResult> serial;
  std::vector<exec::RunResult> parallel;
  const double t_serial = time_sweep(specs, 1, serial);
  const double t_parallel = time_sweep(specs, jobs, parallel);

  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].seed == parallel[i].seed &&
                serial[i].global_skew == parallel[i].global_skew &&
                serial[i].local_skew == parallel[i].local_skew &&
                serial[i].messages == parallel[i].messages;
  }

  analysis::Table table({"jobs", "runs", "wall-clock (s)", "speedup"});
  table.add_row({"1", analysis::Table::integer(static_cast<long long>(specs.size())),
                 analysis::Table::num(t_serial, 3), "1.00"});
  table.add_row({analysis::Table::integer(jobs),
                 analysis::Table::integer(static_cast<long long>(specs.size())),
                 analysis::Table::num(t_parallel, 3),
                 analysis::Table::num(t_serial / t_parallel, 2)});
  table.print(std::cout);

  std::cout << "\nresults identical across job counts: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n";
  return identical ? 0 : 1;
}
