// E4 — Theorem 7.2: no envelope-respecting algorithm can avoid a global
// skew of (1 + rho) D T, where rho = min(eps, (1 - c2 eps_hat)/c1 - 1)
// encodes how accurately the algorithm knows T and eps.
//
// Workload: run A^opt inside the theorem's shifted execution E3 and
// measure the skew it is forced into:
//   part 1: sweep D at fixed estimate accuracy (c1 = 1/2 -> rho = eps);
//   part 2: sweep c1 at fixed D, showing the (1 + rho) dependence.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "lowerbound/global_adversary.hpp"

namespace {

using namespace tbcs;

double forced_skew(const graph::Graph& g, double eps, double t, double c1,
                   double* predicted) {
  lowerbound::GlobalSkewAdversary::Config acfg;
  acfg.eps = eps;
  acfg.eps_hat = eps;
  acfg.delay = t;
  acfg.c1 = c1;
  lowerbound::GlobalSkewAdversary adv(g, 0, acfg);
  *predicted = adv.predicted_skew();

  const core::SyncParams params =
      core::SyncParams::recommended(t / c1, eps, 0.0);
  bench::RunSpec spec;
  spec.graph = &g;
  spec.factory = [&params](sim::NodeId) {
    return std::make_unique<core::AoptNode>(params);
  };
  spec.drift = adv.drift_policy();
  spec.delay = adv.delay_policy();
  spec.duration = adv.t0() * 1.02;
  spec.wake_all_at_zero = true;
  spec.tracker_stride = g.num_nodes() >= 65 ? 4 : 1;
  return bench::run(spec).global_skew;
}

}  // namespace

int main() {
  const double t = 1.0;
  const double eps = 0.05;

  bench::print_header(
      "E4: global-skew lower bound (Theorem 7.2)",
      "claim: the shifted execution E3 forces ~(1+rho) D T of skew on any\n"
      "algorithm bound to the real-time envelope; with loose estimates\n"
      "(c1 = 1/2) rho = eps, with exact knowledge rho = -eps.");

  analysis::Table by_d({"D", "forced skew", "predicted (1+rho)DT", "ratio"});
  for (const int n : {9, 17, 33, 65, 129}) {
    const graph::Graph g = graph::make_path(n);
    double predicted = 0.0;
    const double skew = forced_skew(g, eps, t, 0.5, &predicted);
    by_d.add_row({analysis::Table::integer(n - 1), analysis::Table::num(skew),
                  analysis::Table::num(predicted),
                  analysis::Table::num(skew / predicted, 3)});
  }
  by_d.print(std::cout);

  std::cout << "\n-- dependence on estimate accuracy (D = 32) --\n";
  analysis::Table by_c({"c1 (T/T_hat)", "rho", "forced skew",
                        "predicted (1+rho)DT", "ratio"});
  const graph::Graph g32 = graph::make_path(33);
  // rho = min(eps, (1 - eps)/c1 - 1) transitions from -eps to +eps as the
  // delay estimate loosens across c1 in ((1-eps)/(1+eps), 1].
  for (const double c1 : {1.0, 0.97, 0.95, 0.93, 0.5}) {
    lowerbound::GlobalSkewAdversary::Config probe;
    probe.eps = eps;
    probe.eps_hat = eps;
    probe.delay = t;
    probe.c1 = c1;
    lowerbound::GlobalSkewAdversary adv(g32, 0, probe);
    double predicted = 0.0;
    const double skew = forced_skew(g32, eps, t, c1, &predicted);
    by_c.add_row({analysis::Table::num(c1, 2), analysis::Table::num(adv.rho(), 3),
                  analysis::Table::num(skew), analysis::Table::num(predicted),
                  analysis::Table::num(skew / predicted, 3)});
  }
  by_c.print(std::cout);

  std::cout << "\nexpected shape: ratios ~1.0 in every row; the predicted\n"
               "column grows linearly in D (part 1) and with 1 + rho (part 2).\n";
  return 0;
}
