// Shared JSON sink for benchmark results ("tbcs-bench-v1").
//
// One flat schema for every benchmark binary, so trajectory files
// (BENCH_*.json at the repo root) diff cleanly across PRs and a single
// validator (scripts/smoke_bench.sh) covers them all:
//
//   {
//     "schema": "tbcs-bench-v1",
//     "label": "<binary or run label>",
//     "meta": {"meta_version": 1, "git_sha": "...", "build_type": "...",
//              "compiler": "..."},
//     "results": [
//       {"name": "<unique result id>", "<metric>": <number>, ...},
//       ...
//     ]
//   }
//
// Metric keys and values are benchmark-specific; `name` is the only
// required field and must be unique within the file.  `meta` carries
// build provenance (injected by CMake via TBCS_GIT_SHA etc.) so a
// trajectory file says which build produced it; consumers must treat
// unknown meta keys as informational.
#pragma once

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

// CMake injects the real values per target; the fallbacks keep the header
// compiling in contexts (tests, ad-hoc builds) that don't define them.
#ifndef TBCS_GIT_SHA
#define TBCS_GIT_SHA "unknown"
#endif
#ifndef TBCS_BUILD_TYPE
#define TBCS_BUILD_TYPE "unknown"
#endif
#ifndef TBCS_COMPILER
#define TBCS_COMPILER "unknown"
#endif

namespace tbcs::bench {

class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string label) : label_(std::move(label)) {}

  class Result {
   public:
    explicit Result(std::string name) : name_(std::move(name)) {}
    Result& metric(const std::string& key, double value) {
      metrics_.emplace_back(key, value);
      return *this;
    }

   private:
    friend class BenchJsonWriter;
    std::string name_;
    std::vector<std::pair<std::string, double>> metrics_;
  };

  Result& add(std::string name) {
    results_.emplace_back(std::move(name));
    return results_.back();
  }

  bool empty() const { return results_.empty(); }

  void write(std::ostream& os) const {
    os << "{\n  \"schema\": \"tbcs-bench-v1\",\n  \"label\": \""
       << escape(label_) << "\",\n  \"meta\": {\"meta_version\": 1, "
       << "\"git_sha\": \"" << escape(TBCS_GIT_SHA) << "\", "
       << "\"build_type\": \"" << escape(TBCS_BUILD_TYPE) << "\", "
       << "\"compiler\": \"" << escape(TBCS_COMPILER)
       << "\"},\n  \"results\": [";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const Result& r = results_[i];
      os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << escape(r.name_)
         << "\"";
      for (const auto& [key, value] : r.metrics_) {
        os << ", \"" << escape(key) << "\": " << number(value);
      }
      os << "}";
    }
    os << "\n  ]\n}\n";
  }

  void write_file(const std::string& path) const {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open " + path + " for writing");
    write(os);
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  // Round-trippable and valid JSON (no inf/nan, which JSON lacks).
  static std::string number(double v) {
    if (!(v == v)) return "null";
    if (v > 1.7e308) return "1e308";
    if (v < -1.7e308) return "-1e308";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  std::string label_;
  std::vector<Result> results_;
};

}  // namespace tbcs::bench
