// E10 — Sections 6.2/6.3: with delta encoding, quantization to multiples
// of mu H0, and capped L^max updates, a message needs only
// O(log(1/mu)) payload bits — while the skew guarantees survive with a
// Theta(mu H0)-enlarged kappa.
//
// Workload: 5x5 grid; sweep mu; report measured bits/message vs the
// O(log(1/mu)) prediction, plus the skews for sanity.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/bit_codec.hpp"

int main() {
  using namespace tbcs;
  const double t = 1.0;
  const double eps = 0.005;
  const graph::Graph g = graph::make_grid(5, 5);
  const int d = g.diameter();

  bench::print_header(
      "E10: bit complexity (Sections 6.2/6.3)",
      "claim: payload bits per message are O(log(1/mu)) — independent of\n"
      "the clock magnitudes and of D — and the skew bounds survive the\n"
      "quantization.");

  analysis::Table table({"mu", "quantum muH0", "mean bits", "max bits",
                         "log2(1/mu)+c", "global skew", "local skew"});

  for (const double mu : {0.125, 0.25, 0.5, 1.0, 2.0}) {
    const core::SyncParams params = core::SyncParams::with(t, eps, mu, t / mu);

    sim::Simulator sim(g);
    std::vector<core::BitCodedAoptNode*> nodes;
    sim.set_all_nodes([&params, &nodes](sim::NodeId) {
      auto node = std::make_unique<core::BitCodedAoptNode>(params);
      nodes.push_back(node.get());
      return node;
    });
    sim.set_drift_policy(std::make_shared<sim::RandomWalkDrift>(eps, 10.0, 9));
    sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.0, t, 11));

    analysis::SkewTracker tracker(sim, {});
    tracker.attach(sim);
    sim.run_until(600.0);

    std::uint64_t total_bits = 0;
    std::uint64_t messages = 0;
    std::uint64_t max_bits = 0;
    for (const auto* node : nodes) {
      total_bits += node->total_payload_bits();
      messages += node->coded_messages();
      max_bits = std::max(max_bits, node->max_payload_bits());
    }
    const double mean_bits =
        messages ? static_cast<double>(total_bits) / messages : 0.0;

    table.add_row(
        {analysis::Table::num(mu, 3), analysis::Table::num(mu * params.h0, 3),
         analysis::Table::num(mean_bits, 2),
         analysis::Table::integer(static_cast<long long>(max_bits)),
         analysis::Table::num(std::log2(1.0 / mu) + 6.0, 1),
         analysis::Table::num(tracker.max_global_skew()),
         analysis::Table::num(tracker.max_local_skew())});
  }
  table.print(std::cout);

  std::cout << "\ncontext: D = " << d << "; an absolute clock value after\n"
               "t = 600 would need ~" << std::ceil(std::log2(600.0 / 0.005))
            << " bits — the codec stays constant-size instead.\n"
               "expected shape: bits track log2(1/mu) + O(1), flat in D and t.\n";

  // Section 6.3: per-node space accounting.
  std::cout << "\n-- Section 6.3 space bound (bits per node) --\n";
  analysis::Table space({"graph", "D", "Delta", "space bound (f = 100)"});
  struct Case {
    const char* name;
    graph::Graph g;
  };
  const core::SyncParams sp = core::SyncParams::with(t, eps, 0.5, t / 0.5);
  for (auto& c : {Case{"path 64", graph::make_path(65)},
                  Case{"grid 16x16", graph::make_grid(16, 16)},
                  Case{"hypercube 2^8", graph::make_hypercube(8)}}) {
    space.add_row(
        {c.name, analysis::Table::integer(c.g.diameter()),
         analysis::Table::integer(static_cast<long long>(c.g.max_degree())),
         analysis::Table::num(
             sp.space_bound_bits(c.g.diameter(),
                                 static_cast<int>(c.g.max_degree()), 100.0, eps),
             1)});
  }
  space.print(std::cout);
  std::cout << "expected shape: tens of bits per node — dominated by the\n"
               "Delta term, logarithmic in D and f.\n";
  return 0;
}
