// E9 — Section 2 / Section 4.2 baseline comparison (steady state, the
// initialization transient is excluded via warm-up):
//
//   * A^opt under the square-wave drift + skew-hiding delays: local skew
//     stays O(kappa log D) (cf. E2/E5 for the forced-growth adversary);
//   * max propagation a la Srikanth-Toueg: correct global skew, but its
//     resynchronization interval must exceed the flood time Omega(D T),
//     so corrections arrive as jumps of size ~2 eps H0 = Theta(eps D T) —
//     which is exactly its local skew: linear in D;
//   * midpoint averaging under a sustained drift gradient: no global
//     information, the global skew keeps growing with the diameter;
//   * free running: control.
#include <iostream>
#include <memory>

#include "analysis/stats.hpp"
#include "baselines/averaging_algorithm.hpp"
#include "baselines/blocking_gradient.hpp"
#include "baselines/free_running.hpp"
#include "baselines/max_algorithm.hpp"
#include "bench_util.hpp"

namespace {

using namespace tbcs;

struct Outcome {
  double local = 0.0;
  double global = 0.0;
};

template <typename Factory>
Outcome steady_state(const graph::Graph& g,
                     std::shared_ptr<sim::DriftPolicy> drift,
                     std::shared_ptr<sim::DelayPolicy> delay, double duration,
                     double warmup, Factory f) {
  sim::SimConfig cfg;
  cfg.probe_interval = 1.0;  // sample even event-free algorithms (free run)
  sim::Simulator sim(g, cfg);
  sim.set_all_nodes(f);
  sim.set_drift_policy(std::move(drift));
  sim.set_delay_policy(std::move(delay));
  analysis::SkewTracker::Options topt;
  topt.warmup = warmup;
  analysis::SkewTracker tracker(sim, topt);
  tracker.attach(sim);
  sim.run_until(duration);
  return Outcome{tracker.max_local_skew(), tracker.max_global_skew()};
}

}  // namespace

int main() {
  const double t = 1.0;
  const double eps = 0.02;
  const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.0);

  bench::print_header(
      "E9: baseline comparison (Sections 2, 4.2)",
      "claim: A^opt holds O(log D) local skew; Srikanth-Toueg-style max\n"
      "propagation pays Theta(eps D T) local skew (resync interval must\n"
      "exceed the flood time); averaging cannot contain the global skew.");

  analysis::Table table({"D", "A^opt local", "sqrt-block local",
                         "ST-resync local", "avg-gradient local",
                         "A^opt global", "ST-resync global",
                         "avg-gradient global", "free global"});

  std::vector<double> ds;
  std::vector<double> aopt_locals;
  std::vector<double> st_locals;
  for (const int n : {9, 17, 33, 65}) {
    const graph::Graph g = graph::make_path(n);
    const int d = n - 1;
    ds.push_back(d);
    const double warmup = 4.0 * d * t;
    const double duration = warmup + 12.0 * d * t;

    // A^opt: square-wave drift flipping every ~2DT, hidden by delays.
    const auto aopt = steady_state(
        g,
        std::make_shared<sim::SquareWaveDrift>(
            eps, 2.0 * d * t, [n](sim::NodeId v) { return v < n / 2; }),
        bench::skew_hiding_delays(g, 0, t), duration, warmup,
        [&params](sim::NodeId) { return std::make_unique<core::AoptNode>(params); });

    // Blocking-gradient (Locher-Wattenhofer 2006 lineage): gap =
    // Theta(sqrt(eps D) T); same adversary as A^opt.
    baselines::BlockingGradientOptions bopt;
    bopt.h0 = params.h0;
    bopt.gap = baselines::BlockingGradientOptions::recommended_gap(eps, d, t,
                                                                   bopt.h0);
    const auto blocking = steady_state(
        g,
        std::make_shared<sim::SquareWaveDrift>(
            eps, 2.0 * d * t, [n](sim::NodeId v) { return v < n / 2; }),
        bench::skew_hiding_delays(g, 0, t), duration, warmup,
        [&bopt](sim::NodeId) {
          return std::make_unique<baselines::BlockingGradientNode>(bopt);
        });

    // Srikanth-Toueg style: beacons every H0 = 2 D T (> flood time), root
    // fast / others slow, jumps on receipt.
    baselines::MaxAlgorithmOptions mopt;
    mopt.jump = true;
    mopt.h0 = 2.0 * d * t;
    std::vector<double> st_rates(static_cast<std::size_t>(n), 1.0 - eps);
    st_rates[0] = 1.0 + eps;
    const auto st = steady_state(
        g, std::make_shared<sim::ConstantDrift>(st_rates),
        std::make_shared<sim::FixedDelay>(t), warmup + 10.0 * mopt.h0, warmup,
        [&mopt](sim::NodeId) {
          return std::make_unique<baselines::MaxAlgorithmNode>(mopt);
        });

    // Averaging under a sustained drift gradient along the path.
    std::vector<double> grad(static_cast<std::size_t>(n));
    for (sim::NodeId v = 0; v < n; ++v) {
      grad[static_cast<std::size_t>(v)] =
          1.0 + eps - 2.0 * eps * static_cast<double>(v) / (n - 1);
    }
    baselines::AveragingOptions avopt;
    avopt.h0 = params.h0;
    const auto avg = steady_state(
        g, std::make_shared<sim::ConstantDrift>(grad),
        std::make_shared<sim::FixedDelay>(t), duration, warmup,
        [&avopt](sim::NodeId) {
          return std::make_unique<baselines::AveragingNode>(avopt);
        });

    // Free running (control) under the same gradient.
    const auto free = steady_state(
        g, std::make_shared<sim::ConstantDrift>(grad),
        std::make_shared<sim::FixedDelay>(t), duration, warmup,
        [](sim::NodeId) { return std::make_unique<baselines::FreeRunningNode>(); });

    aopt_locals.push_back(aopt.local);
    st_locals.push_back(st.local);
    table.add_row({analysis::Table::integer(d),
                   analysis::Table::num(aopt.local),
                   analysis::Table::num(blocking.local),
                   analysis::Table::num(st.local),
                   analysis::Table::num(avg.local),
                   analysis::Table::num(aopt.global),
                   analysis::Table::num(st.global),
                   analysis::Table::num(avg.global),
                   analysis::Table::num(free.global)});
  }
  table.print(std::cout);

  // Worst-case *guarantees*: the sqrt(eps D) bound of the 2006 algorithm
  // vs A^opt's kappa log_sigma D.  Constants favor the sqrt at small D;
  // the logarithm wins from the crossover on — the paper's headline.
  std::cout << "\n-- guarantee comparison: sqrt(eps D) T vs kappa log_sigma D --\n";
  analysis::Table bounds({"D", "sqrt-block guarantee", "A^opt guarantee",
                          "winner"});
  bool crossed = false;
  for (double dd = 1e2; dd <= 1e8; dd *= 10.0) {
    const int d = static_cast<int>(dd);
    const double blocking_bound =
        baselines::BlockingGradientOptions::recommended_gap(eps, d, t,
                                                            params.h0) +
        (1.0 + eps) * (t + params.h0);  // + estimate staleness
    const double aopt_bound = params.local_skew_bound(d, eps, t);
    const bool aopt_wins = aopt_bound < blocking_bound;
    crossed = crossed || aopt_wins;
    bounds.add_row({analysis::Table::num(dd, 0),
                    analysis::Table::num(blocking_bound, 1),
                    analysis::Table::num(aopt_bound, 1),
                    aopt_wins ? "A^opt" : "sqrt-block"});
  }
  bounds.print(std::cout);
  std::cout << (crossed
                    ? "crossover observed: the logarithm overtakes the square "
                      "root.\n"
                    : "no crossover in range (constants dominate here).\n");

  std::cout << "\nshape check:\n  ST-resync local slope vs D: "
            << analysis::Table::num(analysis::linear_slope(ds, st_locals), 3)
            << "  (~4 eps = " << analysis::Table::num(4.0 * eps, 3)
            << " per unit of D -> linear)\n"
            << "  A^opt local slope vs D:     "
            << analysis::Table::num(analysis::linear_slope(ds, aopt_locals), 3)
            << "  (~0 -> sub-linear, bound O(log D))\n"
            << "expected: the local-skew winner never flips — A^opt dominates\n"
            << "at every D and the gap widens ~linearly; averaging's *global*\n"
            << "column keeps growing (no flooded maximum to anchor to).\n";
  return 0;
}
