#!/usr/bin/env bash
# End-to-end smoke of the fault-injection pipeline:
#
#   1. tbcs_sim --faults runs a mixed plan (crash/recover, flap, drift
#      spike, lossy channel) to quiescence; the summary must report the
#      fault tally and the --stats JSON must carry the fault counters;
#   2. determinism: the same seed + plan rerun must produce a
#      byte-identical flight-recorder dump (tbcs_trace --diff exit 0),
#      and a different fault seed must diverge;
#   3. tbcs_trace --summary must list the injected fault records;
#   4. tbcs_sweep --faults must emit the recovery metric columns and be
#      byte-identical between --jobs 1 and --jobs 4.
#
# Usage: smoke_faults.sh /path/to/tbcs_sim /path/to/tbcs_trace /path/to/tbcs_sweep
set -euo pipefail

USAGE="usage: smoke_faults.sh /path/to/tbcs_sim /path/to/tbcs_trace /path/to/tbcs_sweep"
SIM_BIN="${1:?$USAGE}"
TRACE_BIN="${2:?$USAGE}"
SWEEP_BIN="${3:?$USAGE}"
TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

PLAN="$TMPDIR_SMOKE/plan.txt"
cat > "$PLAN" <<'EOF'
# mixed plan: one outage, one flapping link, a drift excursion, and a
# lossy/duplicating/corrupting channel window
crash node=3 at=15
recover node=3 at=30
flap u=0 v=1 at=20 period=4 count=2
drift node=2 at=10 rate=1.05 for=10
channel from=10 until=40 drop=0.2 dup=0.1 corrupt=0.1 magnitude=0.5 jitter=0.5
EOF

run_sim() {  # $1=seed $2=fault-seed $3=trace-out $4=stdout
  "$SIM_BIN" --topology ring --nodes 8 --algo aopt --duration 120 \
             --seed "$1" --faults "$PLAN" --fault-seed "$2" \
             --trace "$3" --stats > "$4"
}

run_sim 11 5 "$TMPDIR_SMOKE/a.bin" "$TMPDIR_SMOKE/a.out"
run_sim 11 5 "$TMPDIR_SMOKE/same.bin" "$TMPDIR_SMOKE/same.out"
run_sim 11 6 "$TMPDIR_SMOKE/other.bin" "$TMPDIR_SMOKE/other.out"

grep -q "faults applied" "$TMPDIR_SMOKE/a.out"
grep -q '"fault.events_applied"' "$TMPDIR_SMOKE/a.out"
grep -q '"fault.recovery_time"' "$TMPDIR_SMOKE/a.out"

# Same seed + same plan => byte-identical stats output (modulo the trace
# path each run embeds in its own --stats JSON).
sed "s|$TMPDIR_SMOKE/a.bin|TRACE|" "$TMPDIR_SMOKE/a.out" > "$TMPDIR_SMOKE/a.norm"
sed "s|$TMPDIR_SMOKE/same.bin|TRACE|" "$TMPDIR_SMOKE/same.out" > "$TMPDIR_SMOKE/same.norm"
cmp -s "$TMPDIR_SMOKE/a.norm" "$TMPDIR_SMOKE/same.norm" \
  || { echo "FAIL: faulty rerun output differs"; exit 1; }
"$TRACE_BIN" --diff "$TMPDIR_SMOKE/a.bin" "$TMPDIR_SMOKE/same.bin" \
  || { echo "FAIL: identical faulty executions reported as divergent"; exit 1; }

# A different fault seed draws different channel faults => divergence.
if "$TRACE_BIN" --diff "$TMPDIR_SMOKE/a.bin" "$TMPDIR_SMOKE/other.bin" \
     > /dev/null; then
  echo "FAIL: different fault seeds reported as identical"
  exit 1
fi

"$TRACE_BIN" --summary "$TMPDIR_SMOKE/a.bin" > "$TMPDIR_SMOKE/summary.txt"
grep -q "faults (" "$TMPDIR_SMOKE/summary.txt"
grep -q "crash" "$TMPDIR_SMOKE/summary.txt"

# Sweep: fault metric columns present, parallel == serial byte-for-byte.
SWEEP_ARGS=(--topology ring --nodes 8 --param eps --values 0.01,0.02
            --replicas 2 --duration 80 --seed 7 --faults "$PLAN")
"$SWEEP_BIN" "${SWEEP_ARGS[@]}" --jobs 1 > "$TMPDIR_SMOKE/serial.csv"
"$SWEEP_BIN" "${SWEEP_ARGS[@]}" --jobs 4 > "$TMPDIR_SMOKE/parallel.csv"
if ! diff -u "$TMPDIR_SMOKE/serial.csv" "$TMPDIR_SMOKE/parallel.csv"; then
  echo "FAIL: faulty sweep differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
header="$(head -n 1 "$TMPDIR_SMOKE/serial.csv")"
case "$header" in
  *faults_applied,crashes,recoveries,recovery_time) ;;
  *) echo "FAIL: fault metric columns missing from header: $header" >&2
     exit 1 ;;
esac

echo "smoke_faults: OK (deterministic faulty runs, trace diff, sweep columns)"
