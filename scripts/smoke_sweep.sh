#!/usr/bin/env bash
# Smoke test for the parallel sweep pipeline: runs a tiny 2-D sweep
# through the tbcs_sweep CLI serially and on 4 workers and requires the
# outputs to be byte-identical (the exec determinism contract), plus
# basic shape checks on the CSV and JSON output.
#
# Usage: smoke_sweep.sh /path/to/tbcs_sweep
set -euo pipefail

SWEEP_BIN="${1:?usage: smoke_sweep.sh /path/to/tbcs_sweep}"
TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

COMMON_ARGS=(--topology ring --nodes 8 --param eps --values 0.01,0.02
             --param2 delay --values2 0.5,1 --replicas 2
             --duration 40 --seed 7)

"$SWEEP_BIN" "${COMMON_ARGS[@]}" --jobs 1 > "$TMPDIR_SMOKE/serial.csv"
"$SWEEP_BIN" "${COMMON_ARGS[@]}" --jobs 4 > "$TMPDIR_SMOKE/parallel.csv"

if ! diff -u "$TMPDIR_SMOKE/serial.csv" "$TMPDIR_SMOKE/parallel.csv"; then
  echo "FAIL: --jobs 1 and --jobs 4 outputs differ" >&2
  exit 1
fi

header="$(head -n 1 "$TMPDIR_SMOKE/serial.csv")"
expected="eps,delay,replica,seed,global_skew,local_skew,global_bound,local_bound,messages,events,messages_dropped,queue_peak,queue_pushes,queue_pops,timer_cancels"
if [[ "$header" != "$expected" ]]; then
  echo "FAIL: unexpected CSV header: $header" >&2
  exit 1
fi

rows="$(wc -l < "$TMPDIR_SMOKE/serial.csv")"
if [[ "$rows" -ne 9 ]]; then  # header + 2*2*2 runs
  echo "FAIL: expected 9 CSV lines, got $rows" >&2
  exit 1
fi

"$SWEEP_BIN" "${COMMON_ARGS[@]}" --jobs 4 --format json > "$TMPDIR_SMOKE/out.json"
if ! grep -q '"global_skew"' "$TMPDIR_SMOKE/out.json"; then
  echo "FAIL: JSON output missing global_skew field" >&2
  exit 1
fi
if ! grep -q '"metrics": {"events"' "$TMPDIR_SMOKE/out.json"; then
  echo "FAIL: JSON output missing per-run metrics object" >&2
  exit 1
fi

# Unknown flags must be rejected (regression: help used to advertise
# model flags that the parser then rejected -- the inverse bug).
if "$SWEEP_BIN" --no-such-flag >/dev/null 2>&1; then
  echo "FAIL: unknown flag accepted" >&2
  exit 1
fi

echo "smoke_sweep: OK (8 runs, serial == 4 workers, CSV + JSON)"
