#!/usr/bin/env bash
# Telemetry-backend smoke: the pluggable history stores must be
# observer-only, bounded, and engine-invariant end to end.
#
#   1. Error bound: on a grid with random-walk drift, the stair backend's
#      reported skew maxima must lie within the advertised error bound of
#      the exact backend's (never above; below by at most the bound from
#      the stats "obs" block).
#   2. Observer-only: switching --obs-backend exact -> stair must not
#      perturb the execution by one byte (record and flight-recorder
#      trace compared byte-for-byte at identical engine configuration).
#   3. Engine invariance: a stair run is byte-identical serial vs
#      --shards 4 on the record, and on the stats JSON after canon_stats
#      (which keeps the "obs" block — the sketch is a pure function of
#      the grid-sampled append sequence, so it must not move).
#   4. Sweep determinism: tbcs_sweep --obs-backend stair is byte-identical
#      between --jobs 1 and --jobs 4 and carries the three sketch columns;
#      the exact-backend header stays unchanged.
#   5. Trace timeline: tbcs_trace --summary --obs-backend stair appends a
#      bounded-memory event-rate timeline to the dump summary.
#   6. Deprecation: --skew-stride warns and is ignored under the stair
#      backend (the sketch subsumes it).
#
# Usage: smoke_obs.sh /path/to/tbcs_sim /path/to/tbcs_trace /path/to/tbcs_sweep
set -euo pipefail

USAGE="usage: smoke_obs.sh /path/to/tbcs_sim /path/to/tbcs_trace /path/to/tbcs_sweep"
SIM_BIN="${1:?$USAGE}"
TRACE_BIN="${2:?$USAGE}"
SWEEP_BIN="${3:?$USAGE}"
TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

# canon_stats: shared stats canonicalizer (strips engine/queue_impl).
. "$(dirname "$0")/stats_filter.sh"

run_sim() {  # run_sim <backend> <shards> <tag> [extra flags...]
  local backend="$1" shards="$2" tag="$3"
  shift 3
  "$SIM_BIN" --topology grid --rows 6 --cols 6 --algo aopt \
             --delays band --drift rwalk --duration 120 --seed 17 \
             --wake-all --obs-backend "$backend" --obs-memory-kb 32 \
             --shards "$shards" --shards-min-nodes 0 \
             --record "$TMPDIR_SMOKE/$tag.rec" \
             --trace "$TMPDIR_SMOKE/$tag.bin" \
             --stats-json "$TMPDIR_SMOKE/$tag.stats" \
             "$@" > "$TMPDIR_SMOKE/$tag.out" 2> "$TMPDIR_SMOKE/$tag.err"
}

summary_row() {  # summary_row <file> <label> -> value (last field)
  awk -v lbl="$2" '$0 ~ lbl { print $NF }' "$1" | head -n 1
}

run_sim exact 0 exact
run_sim stair 0 stair

# Gate 1: stair skew within the advertised bound of exact.
g_exact="$(summary_row "$TMPDIR_SMOKE/exact.out" "global skew")"
g_stair="$(summary_row "$TMPDIR_SMOKE/stair.out" "global skew")"
l_exact="$(summary_row "$TMPDIR_SMOKE/exact.out" "local skew")"
l_stair="$(summary_row "$TMPDIR_SMOKE/stair.out" "local skew")"
err="$(grep -o '"error_bound": [0-9.eE+-]*' "$TMPDIR_SMOKE/stair.stats" \
         | grep -o '[0-9.eE+-]*$')"
awk -v ge="$g_exact" -v gs="$g_stair" -v le="$l_exact" -v ls="$l_stair" \
    -v err="$err" 'BEGIN {
  if (err <= 0)                { print "bad error bound " err; exit 1 }
  if (gs > ge + 1e-9)          { print "stair global " gs " > exact " ge; exit 1 }
  if (gs < ge - err - 1e-9)    { print "stair global " gs " below bound (exact " ge ", err " err ")"; exit 1 }
  if (ls > le + 1e-9)          { print "stair local " ls " > exact " le; exit 1 }
}' || { echo "FAIL: stair skew outside advertised bound"; exit 1; }
echo "smoke_obs: bound OK (global $g_stair in [$g_exact - $err, $g_exact])"

# Gate 2: backend is observer-only — identical execution, byte for byte.
cmp "$TMPDIR_SMOKE/exact.rec" "$TMPDIR_SMOKE/stair.rec" \
  || { echo "FAIL: record exact != stair"; exit 1; }
cmp "$TMPDIR_SMOKE/exact.bin" "$TMPDIR_SMOKE/stair.bin" \
  || { echo "FAIL: trace exact != stair"; exit 1; }

# Gate 3: stair figures are engine-invariant (serial vs --shards 4).
run_sim stair 4 stair-s4
cmp "$TMPDIR_SMOKE/stair.rec" "$TMPDIR_SMOKE/stair-s4.rec" \
  || { echo "FAIL: stair record serial != --shards 4"; exit 1; }
cmp <(canon_stats "$TMPDIR_SMOKE/stair.stats" norm) \
    <(canon_stats "$TMPDIR_SMOKE/stair-s4.stats" norm) \
  || { echo "FAIL: stair stats serial != --shards 4"; exit 1; }
"$TRACE_BIN" --diff "$TMPDIR_SMOKE/stair.bin" "$TMPDIR_SMOKE/stair-s4.bin" \
  || { echo "FAIL: stair trace serial != --shards 4"; exit 1; }
grep -q '"obs": {"backend": "stair"' "$TMPDIR_SMOKE/stair-s4.stats" \
  || { echo "FAIL: obs block missing from sharded stats"; exit 1; }

# Gate 4: the sweep stays deterministic and grows the sketch columns.
SWEEP_ARGS=(--topology ring --nodes 12 --algo aopt --delays band
            --param eps --values 0.01,0.02 --replicas 2
            --duration 80 --seed 7 --wake-all --obs-backend stair)
"$SWEEP_BIN" "${SWEEP_ARGS[@]}" --jobs 1 > "$TMPDIR_SMOKE/sweep1.csv"
"$SWEEP_BIN" "${SWEEP_ARGS[@]}" --jobs 4 > "$TMPDIR_SMOKE/sweep4.csv"
cmp "$TMPDIR_SMOKE/sweep1.csv" "$TMPDIR_SMOKE/sweep4.csv" \
  || { echo "FAIL: stair sweep --jobs 1 != --jobs 4"; exit 1; }
header="$(head -n 1 "$TMPDIR_SMOKE/sweep1.csv")"
for col in skew_error_bound obs_history_bytes obs_history_windows; do
  case "$header" in
    *"$col"*) ;;
    *) echo "FAIL: sketch column $col missing from sweep header: $header"
       exit 1 ;;
  esac
done
"$SWEEP_BIN" "${SWEEP_ARGS[@]/stair/exact}" --jobs 1 \
  > "$TMPDIR_SMOKE/sweep-exact.csv"
case "$(head -n 1 "$TMPDIR_SMOKE/sweep-exact.csv")" in
  *skew_error_bound*)
    echo "FAIL: exact sweep header grew sketch columns"; exit 1 ;;
esac

# Gate 5: the trace tool can replay a dump through the stair store.
"$TRACE_BIN" --summary "$TMPDIR_SMOKE/stair.bin" \
             --obs-backend stair --obs-memory-kb 8 \
  > "$TMPDIR_SMOKE/trace-summary.out"
grep -q "timeline (stair backend)" "$TMPDIR_SMOKE/trace-summary.out" \
  || { echo "FAIL: no stair timeline in tbcs_trace --summary"; exit 1; }

# Gate 6: --skew-stride is deprecated and ignored under stair (and the
# run must still match the stride-free stair run byte-for-byte).
run_sim stair 0 stair-stride --skew-stride 8
grep -q "deprecated" "$TMPDIR_SMOKE/stair-stride.err" \
  || { echo "FAIL: no deprecation warning for --skew-stride"; exit 1; }
grep -q "ignored with --obs-backend" "$TMPDIR_SMOKE/stair-stride.err" \
  || { echo "FAIL: no stride-ignored warning under stair"; exit 1; }
cmp "$TMPDIR_SMOKE/stair.rec" "$TMPDIR_SMOKE/stair-stride.rec" \
  || { echo "FAIL: --skew-stride changed a stair execution"; exit 1; }
cmp <(grep -v '^wrote ' "$TMPDIR_SMOKE/stair.out") \
    <(grep -v '^wrote ' "$TMPDIR_SMOKE/stair-stride.out") \
  || { echo "FAIL: --skew-stride changed a stair summary"; exit 1; }

echo "smoke_obs: OK (bound, observer-only, engine-invariant, sweep, timeline, deprecation)"
