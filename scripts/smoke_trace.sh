#!/usr/bin/env bash
# End-to-end smoke of the observability pipeline:
#
#   1. tbcs_sim --trace records a flight-recorder dump (and --stats must
#      emit parseable JSON);
#   2. tbcs_trace --summary reads the dump back;
#   3. tbcs_trace --chrome converts it to Chrome/Perfetto trace_event
#      JSON, which python3 must parse and find non-empty;
#   4. tbcs_trace --diff of the dump against itself must report a match
#      (exit 0), and against a different-seed dump must diverge (exit 1).
#
# Usage: smoke_trace.sh /path/to/tbcs_sim /path/to/tbcs_trace
set -euo pipefail

SIM_BIN="${1:?usage: smoke_trace.sh /path/to/tbcs_sim /path/to/tbcs_trace}"
TRACE_BIN="${2:?usage: smoke_trace.sh /path/to/tbcs_sim /path/to/tbcs_trace}"
TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

run_sim() {
  "$SIM_BIN" --topology path --nodes 6 --algo aopt --duration 80 \
             --seed "$1" --trace "$2" --stats > "$3"
}

run_sim 11 "$TMPDIR_SMOKE/a.bin" "$TMPDIR_SMOKE/a.out"
run_sim 11 "$TMPDIR_SMOKE/same.bin" "$TMPDIR_SMOKE/same.out"
run_sim 99 "$TMPDIR_SMOKE/other.bin" "$TMPDIR_SMOKE/other.out"

# --stats prints the summary table first, then one JSON object starting at
# the first line that is exactly "{".
python3 - "$TMPDIR_SMOKE/a.out" <<'EOF'
import json, sys
text = open(sys.argv[1]).read()
start = text.index("\n{\n") + 1
doc = json.loads(text[start:])
for key in ("communication", "queue", "metrics", "trace"):
    assert key in doc, f"--stats JSON missing {key!r}"
assert doc["communication"]["events"] > 0, "no events processed"
assert doc["trace"]["total_recorded"] > 0, "trace recorded nothing"
print(f"--stats JSON OK ({doc['communication']['events']} events,"
      f" {doc['trace']['total_recorded']} trace records)")
EOF

"$TRACE_BIN" --summary "$TMPDIR_SMOKE/a.bin" > "$TMPDIR_SMOKE/summary.txt"
grep -q "records:" "$TMPDIR_SMOKE/summary.txt"
grep -q "deliver" "$TMPDIR_SMOKE/summary.txt"

"$TRACE_BIN" --chrome "$TMPDIR_SMOKE/a.bin" --out "$TMPDIR_SMOKE/a.chrome.json"
python3 - "$TMPDIR_SMOKE/a.chrome.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty traceEvents"
phases = {e["ph"] for e in events}
assert {"M", "i"} <= phases, f"missing phases: {phases}"
assert any(e["ph"] == "C" for e in events), "no counter tracks"
print(f"chrome trace OK ({len(events)} events, phases {sorted(phases)})")
EOF

"$TRACE_BIN" --diff "$TMPDIR_SMOKE/a.bin" "$TMPDIR_SMOKE/same.bin" \
  || { echo "FAIL: identical executions reported as divergent"; exit 1; }

if "$TRACE_BIN" --diff "$TMPDIR_SMOKE/a.bin" "$TMPDIR_SMOKE/other.bin" \
     > "$TMPDIR_SMOKE/diff.txt"; then
  echo "FAIL: different-seed executions reported as identical"
  exit 1
fi
grep -q "divergent\|recorded" "$TMPDIR_SMOKE/diff.txt"

echo "smoke_trace: OK"
