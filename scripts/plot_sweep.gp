# Plots a tbcs_sweep CSV: measured skews vs theory bounds.
#
#   ./build/tools/tbcs_sweep --param diameter --values 8,16,32,64,128 \
#       > sweep.csv
#   gnuplot -e "infile='sweep.csv'; outfile='sweep.png'" scripts/plot_sweep.gp
set datafile separator ','
if (!exists("infile")) infile = 'sweep.csv'
if (!exists("outfile")) outfile = 'sweep.png'
set terminal pngcairo size 900,600
set output outfile
set key top left
set grid
set xlabel 'swept parameter'
set ylabel 'skew (units of T)'
set logscale x 2
plot infile using 1:2 skip 1 with linespoints title 'global skew', \
     infile using 1:4 skip 1 with lines dashtype 2 title 'global bound G', \
     infile using 1:3 skip 1 with linespoints title 'local skew', \
     infile using 1:5 skip 1 with lines dashtype 3 title 'local bound'
