#!/usr/bin/env bash
# Churned-run determinism smoke: node joins/leaves and edge churn at
# production rate must not cost a single byte of determinism.
#
#   1. serial vs --shards 1: the execution record and the flight-recorder
#      trace (tbcs_trace --diff) must match, and the stats JSON must match
#      after stripping the "engine"/"queue_impl" blocks and normalizing
#      queue peak_size.  The peak is the one sanctioned difference: the
#      sharded engine reports a canonical pending count sampled at window
#      barriers, which legitimately under-reads the serial per-push peak —
#      churn's up-front event flood makes the transient serial high-water
#      mark routinely exceed any barrier sample.  Pushes/pops and every
#      churn counter stay byte-compared.
#   2. --shards 1 vs 2 vs 4: record, stats JSON (engine/queue_impl
#      stripped), and trace dump byte-identical — including the
#      watermark-triggered repartitions the churn driver performs.
#   3. --queue heap vs ladder (serial and --shards 2): byte-identical
#      again; churn's pre-scheduled timeline is exactly the load that
#      would expose a tie-break divergence between the queues.
#   4. tbcs_sweep with churn flags: --jobs 1 == --jobs 4 byte-for-byte.
#   5. Sanity: the runs actually churned (joins, leaves, and edge
#      insertions all nonzero in the stats).
#
# Usage: smoke_churn.sh /path/to/tbcs_sim /path/to/tbcs_trace /path/to/tbcs_sweep
set -euo pipefail

SIM_BIN="${1:?usage: smoke_churn.sh tbcs_sim tbcs_trace tbcs_sweep}"
TRACE_BIN="${2:?usage: smoke_churn.sh tbcs_sim tbcs_trace tbcs_sweep}"
SWEEP_BIN="${3:?usage: smoke_churn.sh tbcs_sim tbcs_trace tbcs_sweep}"
TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

# band delays: positive min delay, so the sharded engine has lookahead.
# The dynamic-GCS node (kllo) exercises the ramp arithmetic on every
# churned link; --shards-min-nodes 0 disables the production auto-clamp
# (n = 36 is below the 64-nodes-per-lane default).
run_sim() {  # run_sim <shards> <tag> [extra flags...]
  local shards="$1" tag="$2"
  shift 2
  "$SIM_BIN" --topology torus --rows 6 --cols 6 --algo kllo \
             --delays band --drift walk --duration 200 --seed 42 \
             --wake-all \
             --churn-node-rate 0.01 --churn-edge-rate 0.01 \
             --churn-downtime 10 --churn-extra-edges 0.2 \
             --churn-start 5 --churn-stop 160 \
             --shards "$shards" --shards-min-nodes 0 \
             --record "$TMPDIR_SMOKE/$tag.rec" \
             --trace "$TMPDIR_SMOKE/$tag.bin" \
             --stats-json "$TMPDIR_SMOKE/$tag.stats" \
             "$@" > "$TMPDIR_SMOKE/$tag.out"
}

# canon_stats (shared): strips the blocks that are *supposed* to differ
# across engines/shard counts; normalize_peak additionally zeroes queue
# peak_size (see header: barrier-sampled vs per-push peak).
. "$(dirname "$0")/stats_filter.sh"

run_sim 0 serial
for n in 1 2 4; do
  run_sim "$n" "s$n"
done

# Gate 1: serial vs one shard.
cmp "$TMPDIR_SMOKE/serial.rec" "$TMPDIR_SMOKE/s1.rec" \
  || { echo "FAIL: record serial != --shards 1"; exit 1; }
"$TRACE_BIN" --diff "$TMPDIR_SMOKE/serial.bin" "$TMPDIR_SMOKE/s1.bin" \
  || { echo "FAIL: trace serial != --shards 1"; exit 1; }
cmp <(canon_stats "$TMPDIR_SMOKE/serial.stats" norm) \
    <(canon_stats "$TMPDIR_SMOKE/s1.stats" norm) \
  || { echo "FAIL: stats serial != --shards 1"; exit 1; }

# Gate 2: shard counts agree on everything.
for n in 2 4; do
  cmp "$TMPDIR_SMOKE/s1.rec" "$TMPDIR_SMOKE/s$n.rec" \
    || { echo "FAIL: rec --shards 1 != --shards $n"; exit 1; }
  cmp <(canon_stats "$TMPDIR_SMOKE/s1.stats") \
      <(canon_stats "$TMPDIR_SMOKE/s$n.stats") \
    || { echo "FAIL: stats --shards 1 != --shards $n"; exit 1; }
  "$TRACE_BIN" --diff "$TMPDIR_SMOKE/s1.bin" "$TMPDIR_SMOKE/s$n.bin" \
    || { echo "FAIL: trace --shards 1 != --shards $n"; exit 1; }
done

# Gate 3: queue implementations agree, serial and sharded.
run_sim 0 serial-heap --queue heap
run_sim 0 serial-ladder --queue ladder
cmp "$TMPDIR_SMOKE/serial-heap.rec" "$TMPDIR_SMOKE/serial-ladder.rec" \
  || { echo "FAIL: rec heap != ladder (serial)"; exit 1; }
cmp <(canon_stats "$TMPDIR_SMOKE/serial-heap.stats") \
    <(canon_stats "$TMPDIR_SMOKE/serial-ladder.stats") \
  || { echo "FAIL: stats heap != ladder (serial)"; exit 1; }
run_sim 2 s2-heap --queue heap
run_sim 2 s2-ladder --queue ladder
cmp "$TMPDIR_SMOKE/s2-heap.rec" "$TMPDIR_SMOKE/s2-ladder.rec" \
  || { echo "FAIL: rec heap != ladder (--shards 2)"; exit 1; }
cmp <(canon_stats "$TMPDIR_SMOKE/s2-heap.stats") \
    <(canon_stats "$TMPDIR_SMOKE/s2-ladder.stats") \
  || { echo "FAIL: stats heap != ladder (--shards 2)"; exit 1; }

# Gate 4: the parallel sweep stays deterministic with churn flags on.
SWEEP_ARGS=(--topology ring --nodes 12 --algo kllo --delays band
            --param eps --values 0.01,0.02 --replicas 2
            --duration 80 --seed 7 --wake-all
            --churn-node-rate 0.02 --churn-edge-rate 0.02
            --churn-downtime 5 --churn-start 4 --churn-stop 60)
"$SWEEP_BIN" "${SWEEP_ARGS[@]}" --jobs 1 > "$TMPDIR_SMOKE/sweep1.csv"
"$SWEEP_BIN" "${SWEEP_ARGS[@]}" --jobs 4 > "$TMPDIR_SMOKE/sweep4.csv"
cmp "$TMPDIR_SMOKE/sweep1.csv" "$TMPDIR_SMOKE/sweep4.csv" \
  || { echo "FAIL: churned sweep --jobs 1 != --jobs 4"; exit 1; }

# Gate 5: the runs actually churned.
for key in '"churn.joins": [1-9]' '"churn.leaves": [1-9]' \
           '"churn.edge_insertions": [1-9]'; do
  grep -q "$key" "$TMPDIR_SMOKE/serial.stats" \
    || { echo "FAIL: stats missing churn activity ($key)"; exit 1; }
done

echo "smoke_churn: OK (serial == shards 1/2/4, heap == ladder, jobs 1 == 4)"
