#!/usr/bin/env bash
# Sharded-engine smoke: --shards N must reproduce the serial execution.
#
#   1. serial vs --shards 1: the execution record and the flight-recorder
#      trace (tbcs_trace --diff) must match.  Stats JSON is *not* compared
#      here: the sharded engine reports queue peak depth as a canonical
#      pending count sampled at window barriers, which legitimately
#      under-reads the serial per-pop peak (pushes/pops do match, and the
#      equivalence unit suite asserts that).
#   2. --shards 1 vs 2 vs 4: record, stats JSON, and trace dump must all
#      be byte-identical.
#   3. Both gates again with a mixed fault plan (crash/recover, link
#      flaps across shard boundaries, a lossy channel window) active.
#
# Every comparison is exit-code gated; any divergence fails the test.
#
# Usage: smoke_shards.sh /path/to/tbcs_sim /path/to/tbcs_trace
set -euo pipefail

SIM_BIN="${1:?usage: smoke_shards.sh /path/to/tbcs_sim /path/to/tbcs_trace}"
TRACE_BIN="${2:?usage: smoke_shards.sh /path/to/tbcs_sim /path/to/tbcs_trace}"
TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

# canon_stats: shared stats canonicalizer (strips engine/queue_impl).
. "$(dirname "$0")/stats_filter.sh"

# Topology-agnostic plan (no explicit link directives, which would have
# to name real edges): the crash cuts every incident link — including
# cut edges, so twin link events are exercised on every topology.
PLAN="$TMPDIR_SMOKE/plan.txt"
cat > "$PLAN" <<'EOF'
crash node=9 at=25
recover node=9 at=55
channel from=80 until=100 drop=0.15 jitter=0.4
EOF

# band delays: min delay > 0, so the conservative windows have lookahead.
# --shards-min-nodes 1 disables the production auto-clamp (n=32 is far
# below the 64-nodes-per-lane default, which would silently turn every
# multi-shard run here into a 1-lane run and make the gates vacuous).
run_sim() {  # run_sim <topology> <shards> <tag> [extra flags...]
  local topo="$1" shards="$2" tag="$3"
  shift 3
  "$SIM_BIN" --topology "$topo" --nodes 32 --arity 2 --levels 5 \
             --er-p 0.15 --algo aopt --delays band \
             --drift walk --duration 150 --seed 42 --wake-all \
             --shards "$shards" --shards-min-nodes 1 \
             --record "$TMPDIR_SMOKE/$tag.rec" \
             --trace "$TMPDIR_SMOKE/$tag.bin" \
             --stats-json "$TMPDIR_SMOKE/$tag.stats" \
             "$@" > "$TMPDIR_SMOKE/$tag.out"
}

check_case() {  # check_case <topology> <label> [extra flags...]
  local topo="$1" label="$2"
  shift 2
  run_sim "$topo" 0 "$label-serial" "$@"
  for n in 1 2 4; do
    run_sim "$topo" "$n" "$label-s$n" "$@"
  done

  # Gate 1: serial vs one shard (record + trace).
  cmp "$TMPDIR_SMOKE/$label-serial.rec" "$TMPDIR_SMOKE/$label-s1.rec" \
    || { echo "FAIL($label): record serial != --shards 1"; exit 1; }
  "$TRACE_BIN" --diff "$TMPDIR_SMOKE/$label-serial.bin" \
               "$TMPDIR_SMOKE/$label-s1.bin" \
    || { echo "FAIL($label): trace serial != --shards 1"; exit 1; }

  # Gate 2: shard counts agree on everything, byte for byte (stats via
  # canon_stats, which drops the blocks that are *supposed* to differ
  # across -sN runs).
  for n in 2 4; do
    cmp "$TMPDIR_SMOKE/$label-s1.rec" "$TMPDIR_SMOKE/$label-s$n.rec" \
      || { echo "FAIL($label): rec --shards 1 != --shards $n"; exit 1; }
    cmp <(canon_stats "$TMPDIR_SMOKE/$label-s1.stats") \
        <(canon_stats "$TMPDIR_SMOKE/$label-s$n.stats") \
      || { echo "FAIL($label): stats --shards 1 != --shards $n"; exit 1; }
    "$TRACE_BIN" --diff "$TMPDIR_SMOKE/$label-s1.bin" \
                 "$TMPDIR_SMOKE/$label-s$n.bin" \
      || { echo "FAIL($label): trace --shards 1 != --shards $n"; exit 1; }
  done
  echo "smoke_shards: $label OK"
}

for topo in path tree er; do
  check_case "$topo" "$topo-plain"
  check_case "$topo" "$topo-faulty" --faults "$PLAN" --fault-seed 7
done

# The sharded run actually applied the plan (sanity that the faulty case
# exercised crashes, not a silently empty timeline).
grep -q "crash" "$TMPDIR_SMOKE/path-faulty-s2.out" \
  || grep -q '"crashes": *[1-9]' "$TMPDIR_SMOKE/path-faulty-s2.stats" \
  || { echo "FAIL: fault plan did not apply"; exit 1; }

# Perf gate (SMOKE_SHARDS_PERF=1, set by ci.sh): at n ~ 16k on a path and
# on a binary tree, --shards 4 must not be more than 10% slower than
# --shards 1.  These are the regressions past PRs fixed — the old
# engine's global window stall made every multi-shard run *slower* than
# serial, and block partitions of BFS-numbered trees collapsed the
# windows the same way until the "auto" strategy routed trees to the
# multilevel partitioner.  The gate keeps both fixed without demanding a
# machine-dependent speedup factor.  Best of two runs per side to damp
# scheduler noise.
if [[ "${SMOKE_SHARDS_PERF:-0}" == "1" ]]; then
  perf_run() {  # perf_run <shards> <topo-flags...> -> milliseconds on stdout
    local shards="$1"
    shift
    local best=
    for _ in 1 2; do
      local t0 t1 ms
      t0=$(date +%s%N)
      "$SIM_BIN" "$@" --algo aopt --delays band \
                 --drift walk --duration 40 --seed 42 --wake-all \
                 --shards "$shards" > /dev/null
      t1=$(date +%s%N)
      ms=$(( (t1 - t0) / 1000000 ))
      if [[ -z "$best" || "$ms" -lt "$best" ]]; then best="$ms"; fi
    done
    echo "$best"
  }
  perf_case() {  # perf_case <label> <topo-flags...>
    local label="$1"
    shift
    local ms1 ms4
    ms1=$(perf_run 1 "$@")
    ms4=$(perf_run 4 "$@")
    echo "smoke_shards: perf $label: shards=1 ${ms1}ms, shards=4 ${ms4}ms"
    if (( ms4 * 10 > ms1 * 11 )); then
      echo "FAIL($label): --shards 4 is >10% slower than --shards 1 (${ms4}ms vs ${ms1}ms)"
      exit 1
    fi
  }
  perf_case "n=16384 path" --topology path --nodes 16384
  perf_case "n=16383 tree" --topology tree --arity 2 --levels 14
fi

echo "smoke_shards: OK"
