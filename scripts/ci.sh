#!/usr/bin/env bash
# Local CI: the tier-1 gate plus a sanitizer smoke.
#
#   1. Tier 1: configure, build, ctest — the contract every change must
#      keep green (same commands as ROADMAP.md).
#   2. Sanitizer smoke: rebuild the simulator tool, the trace tool, the
#      runtime tests, and the obs tests with ASan+UBSan
#      (-DTBCS_SANITIZE=address,undefined) and run them.  The threaded
#      runtime and the sharded metrics registry are the pieces most at
#      risk of memory/lifetime bugs, so they get sanitizer coverage even
#      in a quick pass.
#   3. TSan smoke: rebuild the threaded-runtime tests (including the
#      fault-injection paths: partitions, link flips, the channel hook,
#      and the stop() watchdog) and the sharded-engine tests (worker
#      lanes, window barriers, cross-shard mailboxes, recording policies
#      under concurrent lanes) with -DTBCS_SANITIZE=thread and run them,
#      plus the churn-equivalence tests (joins/leaves, link churn, and
#      mid-run repartition migration across concurrent lanes) and the
#      fault/shard equivalence tests (chaos plans driving scrambles and
#      Byzantine windows through the concurrent lanes).
#      These are the only tests with real cross-thread contention.
#   4. Sharded smoke + perf gate: smoke_shards.sh equivalence gates plus
#      SMOKE_SHARDS_PERF=1, which fails if --shards 4 runs >10% slower
#      than --shards 1 on an n=16384 path or an n=16383 tree (the
#      window-stall and tree-partition regressions).
#   5. Churn determinism smoke: smoke_churn.sh — a dynamic-network run
#      (node joins/leaves + edge churn through the kllo node) must be
#      byte-identical serial vs --shards {1,2,4}, heap vs ladder, and
#      --jobs 1 vs 4 through a churned sweep.
#   6. Fault-tolerant GCS smoke: smoke_ftgcs.sh — a Byzantine chaos plan
#      through --algo ftgcs must be byte-identical serial vs --shards
#      {1,2,4}, report engine-independent fault.* metrics, stabilize in
#      finite time from a scramble, and sweep --jobs 1 == 4.
#   7. Telemetry-backend smoke: smoke_obs.sh — the stair history backend
#      must stay within its advertised error bound of exact, perturb the
#      execution by zero bytes, report engine-invariant sketch figures
#      serial vs --shards 4, sweep --jobs 1 == 4 with the sketch columns,
#      and honor the --skew-stride deprecation.
#   8. Large-n queue gate: smoke_bench.sh with SMOKE_BENCH_LARGE=1,
#      which fails if the ladder queue is < 1.2x the heap on the serial
#      line n=100000 config (and re-checks the small-n geomean so the
#      ladder can't buy large-n throughput with a small-n regression).
#
# Usage: scripts/ci.sh [jobs]     (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== tier 1: build + ctest (jobs=$JOBS) ==="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo
echo "=== sanitizer smoke: ASan+UBSan (jobs=$JOBS) ==="
cmake -B build-asan -S . -DTBCS_SANITIZE=address,undefined > /dev/null
cmake --build build-asan -j "$JOBS" --target \
  tbcs_sim_tool tbcs_trace test_runtime test_obs test_metrics test_trace_tools

SAN_TMP="$(mktemp -d)"
trap 'rm -rf "$SAN_TMP"' EXIT
build-asan/tools/tbcs_sim --topology grid --rows 4 --cols 4 --algo aopt \
  --duration 60 --trace "$SAN_TMP/t.bin" --stats > /dev/null
build-asan/tools/tbcs_trace --summary "$SAN_TMP/t.bin" > /dev/null
build-asan/tools/tbcs_trace --chrome "$SAN_TMP/t.bin" --out "$SAN_TMP/t.json"
build-asan/tests/test_runtime
build-asan/tests/test_obs
build-asan/tests/test_metrics
build-asan/tests/test_trace_tools

echo
echo "=== sanitizer smoke: TSan threaded runtime + sharded engine (jobs=$JOBS) ==="
cmake -B build-tsan -S . -DTBCS_SANITIZE=thread > /dev/null
cmake --build build-tsan -j "$JOBS" --target \
  test_runtime test_runtime_faults test_sharded_equivalence \
  test_churn_equivalence test_fault_shard_equivalence
build-tsan/tests/test_runtime
build-tsan/tests/test_runtime_faults
build-tsan/tests/test_sharded_equivalence
build-tsan/tests/test_churn_equivalence
build-tsan/tests/test_fault_shard_equivalence

echo
echo "=== sharded smoke + perf gate ==="
SMOKE_SHARDS_PERF=1 bash scripts/smoke_shards.sh \
  build/tools/tbcs_sim build/tools/tbcs_trace

echo
echo "=== churn determinism smoke ==="
bash scripts/smoke_churn.sh \
  build/tools/tbcs_sim build/tools/tbcs_trace build/tools/tbcs_sweep

echo
echo "=== fault-tolerant GCS smoke ==="
bash scripts/smoke_ftgcs.sh \
  build/tools/tbcs_sim build/tools/tbcs_trace build/tools/tbcs_sweep

echo
echo "=== telemetry-backend smoke ==="
bash scripts/smoke_obs.sh \
  build/tools/tbcs_sim build/tools/tbcs_trace build/tools/tbcs_sweep

echo
echo "=== large-n queue gate ==="
SMOKE_BENCH_LARGE=1 bash scripts/smoke_bench.sh \
  build/bench/bench_core_hotpath BENCH_pr2.json

echo
echo "ci.sh: all green"
