#!/usr/bin/env bash
# Shared stats-JSON canonicalizer for the smoke scripts (sourced, not run).
#
# The byte-identity gates compare `tbcs_sim --stats-json` output across
# engines and shard counts.  Two blocks are *supposed* to differ and are
# stripped before the comparison:
#
#   "engine"      — records the requested shard count / engine flavor
#   "queue_impl"  — per-lane bucket/wheel internals of the active queue
#
# Everything else (message counters, skew figures, churn/fault ledgers,
# the "obs" backend block) is engine-invariant by contract and stays in.
#
# canon_stats <file> [normalize_peak]
#   Prints the canonical form of a stats JSON file.  With a second
#   argument, additionally zeroes the queue "peak_size": the sharded
#   engine reports a canonical pending count sampled at window barriers,
#   which legitimately under-reads the serial per-push peak (pushes and
#   pops stay byte-compared).
#
# Usage from a smoke script:
#   . "$(dirname "$0")/stats_filter.sh"
#   cmp <(canon_stats a.stats) <(canon_stats b.stats)
#   cmp <(canon_stats serial.stats norm) <(canon_stats s1.stats norm)

canon_stats() {  # canon_stats <file> [normalize_peak]
  local f="$1" norm="${2:-}"
  if [[ -n "$norm" ]]; then
    grep -v -e '"engine"' -e '"queue_impl"' "$f" \
      | sed 's/"peak_size": [0-9]*/"peak_size": 0/'
  else
    grep -v -e '"engine"' -e '"queue_impl"' "$f"
  fi
}
