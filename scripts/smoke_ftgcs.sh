#!/usr/bin/env bash
# End-to-end smoke of the fault-tolerant GCS pipeline (--algo ftgcs):
#
#   1. A mixed chaos plan (two Byzantine liars, a crash/recovery, a lossy
#      channel window, a scramble) through tbcs_sim with --ftgcs-f 2:
#      serial vs --shards 1 must agree on the execution record and the
#      flight-recorder trace; --shards 1 vs 2 vs 4 must be byte-identical
#      on record + stats JSON + trace (stats stripped of the "engine" /
#      "queue_impl" blocks, which are *supposed* to differ — same
#      contract as smoke_shards.sh).
#   2. fault.* metrics (recovery/stabilization times, fault counters) are
#      classified on the probe grid and must be byte-identical between
#      the serial and sharded engines — grep'd out of the stats JSON and
#      compared serial vs --shards 4 directly.  (The running skew maxima
#      are cadence figures — serial samples every event, sharded samples
#      window barriers — so the full stats files are only compared among
#      shard counts, as in smoke_shards.sh.)
#   3. Scramble self-stabilization: an adjacent block of scrambled nodes
#      whose opposing draws breach the local-skew envelope must re-enter
#      it in finite measured time ("stabilization time" in the summary,
#      never "not stabilized").
#   4. tbcs_sweep --algo ftgcs over the same plan must be byte-identical
#      between --jobs 1 and --jobs 4 and carry the recovery columns.
#
# Usage: smoke_ftgcs.sh /path/to/tbcs_sim /path/to/tbcs_trace /path/to/tbcs_sweep
set -euo pipefail

USAGE="usage: smoke_ftgcs.sh /path/to/tbcs_sim /path/to/tbcs_trace /path/to/tbcs_sweep"
SIM_BIN="${1:?$USAGE}"
TRACE_BIN="${2:?$USAGE}"
SWEEP_BIN="${3:?$USAGE}"
TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

# canon_stats: shared stats canonicalizer (strips engine/queue_impl).
. "$(dirname "$0")/stats_filter.sh"

# Chaos plan: an up-liar and a down-liar active from first contact (the
# pairing that defeats aopt's one-sided defenses), plus a crash, a lossy
# channel window, and a late scramble for the stabilization probe.
CHAOS="$TMPDIR_SMOKE/chaos.txt"
cat > "$CHAOS" <<'EOF'
byzantine node=1 from=0 until=120 mode=fixed offset=1000
byzantine node=2 from=0 until=120 mode=fixed offset=-1000
crash node=9 at=30
recover node=9 at=55
channel from=70 until=95 drop=0.15 jitter=0.3
scramble node=12 at=150 magnitude=6
EOF

run_sim() {  # run_sim <shards> <tag>
  local shards="$1" tag="$2"
  "$SIM_BIN" --topology hypercube --dims 5 --algo ftgcs --ftgcs-f 2 \
             --delays band --drift square --duration 250 --seed 11 \
             --wake-all --faults "$CHAOS" --fault-seed 7 \
             --shards "$shards" --shards-min-nodes 1 \
             --record "$TMPDIR_SMOKE/$tag.rec" \
             --trace "$TMPDIR_SMOKE/$tag.bin" \
             --stats-json "$TMPDIR_SMOKE/$tag.stats" \
             > "$TMPDIR_SMOKE/$tag.out"
}

run_sim 0 serial
for n in 1 2 4; do run_sim "$n" "s$n"; done

# Gate 1a: serial vs one shard (record + trace).
cmp "$TMPDIR_SMOKE/serial.rec" "$TMPDIR_SMOKE/s1.rec" \
  || { echo "FAIL: record serial != --shards 1"; exit 1; }
"$TRACE_BIN" --diff "$TMPDIR_SMOKE/serial.bin" "$TMPDIR_SMOKE/s1.bin" \
  || { echo "FAIL: trace serial != --shards 1"; exit 1; }

# Gate 1b: shard counts agree byte for byte.
for n in 2 4; do
  cmp "$TMPDIR_SMOKE/s1.rec" "$TMPDIR_SMOKE/s$n.rec" \
    || { echo "FAIL: rec --shards 1 != --shards $n"; exit 1; }
  cmp <(canon_stats "$TMPDIR_SMOKE/s1.stats") \
      <(canon_stats "$TMPDIR_SMOKE/s$n.stats") \
    || { echo "FAIL: stats --shards 1 != --shards $n"; exit 1; }
  "$TRACE_BIN" --diff "$TMPDIR_SMOKE/s1.bin" "$TMPDIR_SMOKE/s$n.bin" \
    || { echo "FAIL: trace --shards 1 != --shards $n"; exit 1; }
done

# Gate 2: fault.* metrics are engine-independent (probe-grid classified).
fault_rows() { grep -o '"fault\.[a-z_]*": *[0-9.eE+-]*' "$1"; }
cmp <(fault_rows "$TMPDIR_SMOKE/serial.stats") \
    <(fault_rows "$TMPDIR_SMOKE/s4.stats") \
  || { echo "FAIL: fault.* metrics serial != --shards 4"; exit 1; }
# byz on/off x2, crash, recover, channel on/off, scramble = 9 events.
grep -q '"fault.events_applied": 9' "$TMPDIR_SMOKE/serial.stats" \
  || { echo "FAIL: chaos plan did not fully apply"; exit 1; }
grep -q '"fault.scrambles": 1' "$TMPDIR_SMOKE/serial.stats" \
  || { echo "FAIL: scramble did not apply"; exit 1; }

# Gate 3: scramble recovery is finite and really measured.  An adjacent
# block of scrambled nodes with opposing draws pushes the local skew past
# the envelope; the probe must report a finite re-entry time.  (The
# magnitude stays below the local bound per node: monotone clocks plus a
# trimmed estimate layer refuse single-source catch-up, so a larger draw
# would translate one node's frame permanently — see docs/FAULTS.md.)
SCRAM="$TMPDIR_SMOKE/scram.txt"
{
  for v in 8 9 10 11 24 25 26 27; do
    echo "scramble node=$v at=60 magnitude=11"
  done
} > "$SCRAM"
"$SIM_BIN" --topology hypercube --dims 5 --algo ftgcs --ftgcs-f 2 \
           --delays band --drift square --duration 250 --seed 11 \
           --wake-all --faults "$SCRAM" --fault-seed 7 \
           > "$TMPDIR_SMOKE/scram.out"
grep -q "stabilization time" "$TMPDIR_SMOKE/scram.out" \
  || { echo "FAIL: no stabilization row in summary"; exit 1; }
if grep -q "not stabilized" "$TMPDIR_SMOKE/scram.out"; then
  echo "FAIL: scramble recovery did not stabilize"
  exit 1
fi

# Gate 4: ftgcs sweep, parallel == serial byte-for-byte, recovery columns.
SWEEP_ARGS=(--topology hypercube --dims 4 --algo ftgcs --ftgcs-f 1
            --param eps --values 0.01,0.02 --replicas 2 --duration 80
            --seed 7 --faults "$CHAOS")
"$SWEEP_BIN" "${SWEEP_ARGS[@]}" --jobs 1 > "$TMPDIR_SMOKE/serial.csv"
"$SWEEP_BIN" "${SWEEP_ARGS[@]}" --jobs 4 > "$TMPDIR_SMOKE/parallel.csv"
if ! diff -u "$TMPDIR_SMOKE/serial.csv" "$TMPDIR_SMOKE/parallel.csv"; then
  echo "FAIL: ftgcs sweep differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
header="$(head -n 1 "$TMPDIR_SMOKE/serial.csv")"
case "$header" in
  *recovery_time*) ;;
  *) echo "FAIL: recovery columns missing from sweep header: $header" >&2
     exit 1 ;;
esac

echo "smoke_ftgcs: OK (chaos byte-identity, fault.* engine-independent, finite stabilization, sweep)"
