#!/usr/bin/env bash
# Perf smoke for the hot-path benchmark trajectory:
#
#   1. runs `bench_core_hotpath --quick` (the n=64 subset of the full
#      sweep, identical workloads and result names);
#   2. validates the tbcs-bench-v1 schema of the fresh output AND of the
#      checked-in baseline (BENCH_pr2.json);
#   3. fails on a >30% regression of the incremental/oracle speedup ratio
#      versus the baseline, aggregated (geometric mean) over the configs
#      present in both files.  The ratio comes from one process run back
#      to back, so it is robust to absolute machine speed and
#      ctest-induced CPU contention, unlike raw events/sec; the geomean
#      smooths the run-to-run noise of the ~10ms quick configs, which a
#      per-config gate would trip on.
#
# With SMOKE_BENCH_LARGE=1 it additionally runs the large-n serial gate:
# line n=100000, --shards 0, heap vs ladder in one process.  The ladder
# queue must be >= 1.2x the heap — that is the whole point of the bucket
# queue, and the within-process ratio is machine-speed independent.  The
# small-n geomean gate above still runs, so the ladder can never buy
# large-n throughput by regressing the small-n configs.
#
# Usage: smoke_bench.sh /path/to/bench_core_hotpath [baseline.json]
set -euo pipefail

BENCH_BIN="${1:?usage: smoke_bench.sh /path/to/bench_core_hotpath [baseline.json]}"
BASELINE="${2:-}"
TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

"$BENCH_BIN" --quick --out "$TMPDIR_SMOKE/quick.json" --label smoke > "$TMPDIR_SMOKE/quick.log"

validate() {
  python3 - "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("schema") == "tbcs-bench-v1", f"bad schema: {doc.get('schema')}"
assert isinstance(doc.get("label"), str) and doc["label"], "missing label"
results = doc.get("results")
assert isinstance(results, list) and results, "missing results"
names = set()
for r in results:
    name = r.get("name")
    assert isinstance(name, str) and name, f"result without name: {r}"
    assert name not in names, f"duplicate result name: {name}"
    names.add(name)
    for key, value in r.items():
        if key == "name":
            continue
        assert isinstance(value, (int, float)), f"{name}.{key} is not numeric"
print(f"{sys.argv[1]}: tbcs-bench-v1 OK, {len(results)} results")
EOF
}

validate "$TMPDIR_SMOKE/quick.json"

if [[ "${SMOKE_BENCH_LARGE:-0}" == "1" ]]; then
  echo "smoke_bench: large-n serial gate (line n=100000, heap vs ladder)"
  "$BENCH_BIN" --shards 0 --queue heap,ladder --filter line_n100000 \
    --out "$TMPDIR_SMOKE/large.json" --label smoke-large \
    > "$TMPDIR_SMOKE/large.log"
  validate "$TMPDIR_SMOKE/large.json"
  python3 - "$TMPDIR_SMOKE/large.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
eps = {r["name"]: r["events_per_sec"] for r in doc["results"]
       if "events_per_sec" in r}
heap = eps.get("line_n100000_shards0_incremental_qheap")
ladder = eps.get("line_n100000_shards0_incremental_qladder")
assert heap and ladder, f"missing large-n rows, got: {sorted(eps)}"
ratio = ladder / heap
print(f"line n=100000 serial: ladder {ladder:,.0f} ev/s"
      f" vs heap {heap:,.0f} ev/s ({ratio:.2f}x)")
if ratio < 1.2:
    sys.exit("FAIL: ladder < 1.2x heap at n=100000 (large-n hot path)")
print("smoke_bench: large-n ladder gate OK")
EOF
fi

if [[ -z "$BASELINE" || ! -f "$BASELINE" ]]; then
  echo "smoke_bench: OK (no checked-in baseline to regress against)"
  exit 0
fi

validate "$BASELINE"

python3 - "$TMPDIR_SMOKE/quick.json" "$BASELINE" <<'EOF'
import json, math, sys

def speedups(path):
    with open(path) as f:
        doc = json.load(f)
    eps = {r["name"]: r["events_per_sec"] for r in doc["results"]
           if "events_per_sec" in r}
    out = {}
    for name, value in eps.items():
        if not name.endswith("_incremental"):
            continue
        oracle = eps.get(name[: -len("_incremental")] + "_oracle")
        if oracle:
            out[name[: -len("_incremental")]] = value / oracle
    return out

quick, base = speedups(sys.argv[1]), speedups(sys.argv[2])
shared = sorted(set(quick) & set(base))
if not shared:
    sys.exit("FAIL: no configs shared between quick run and baseline")
ratios = []
for name in shared:
    ratio = quick[name] / base[name]
    ratios.append(ratio)
    print(f"{name}: speedup {quick[name]:.2f}x vs baseline {base[name]:.2f}x"
          f" ({ratio:.2f})")
geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
print(f"geomean ratio over {len(shared)} configs: {geomean:.2f}")
if geomean < 0.7:
    sys.exit("FAIL: hot-path speedup regressed by more than 30% (geomean)")
print("smoke_bench: OK (aggregate speedup within 30% of baseline)")
EOF
