#include "cli/experiment_config.hpp"

#include <memory>
#include <vector>

#include "baselines/averaging_algorithm.hpp"
#include "cli/args.hpp"
#include "baselines/free_running.hpp"
#include "baselines/max_algorithm.hpp"
#include "core/adaptive_delay.hpp"
#include "core/aopt_variants.hpp"
#include "core/envelope_sync.hpp"
#include "core/external_sync.hpp"
#include "graph/topologies.hpp"
#include "sim/clock_model.hpp"
#include "sim/rng.hpp"
#include "sim/tick_quantizer.hpp"

namespace tbcs::cli {

void apply_model_flags(ArgParser& args, ExperimentConfig& cfg) {
  cfg.topology = args.get_string("topology", cfg.topology);
  cfg.nodes = args.get_int("nodes", cfg.nodes);
  cfg.rows = args.get_int("rows", cfg.rows);
  cfg.cols = args.get_int("cols", cfg.cols);
  cfg.dims = args.get_int("dims", cfg.dims);
  cfg.arity = args.get_int("arity", cfg.arity);
  cfg.levels = args.get_int("levels", cfg.levels);
  cfg.er_p = args.get_double("er-p", cfg.er_p);
  cfg.algorithm = args.get_string("algo", cfg.algorithm);
  cfg.tick_frequency = args.get_double("tick-frequency", cfg.tick_frequency);
  cfg.eps = args.get_double("eps", cfg.eps);
  cfg.delay = args.get_double("delay", cfg.delay);
  cfg.mu = args.get_double("mu", cfg.mu);
  cfg.h0 = args.get_double("h0", cfg.h0);
  cfg.drift = args.get_string("drift", cfg.drift);
  cfg.drift_interval = args.get_double("drift-interval", cfg.drift_interval);
  cfg.drift_step = args.get_double("drift-step", cfg.drift_step);
  cfg.delays = args.get_string("delays", cfg.delays);
  cfg.band_min = args.get_double("band-min", cfg.band_min);
  cfg.duration = args.get_double("duration", cfg.duration);
  cfg.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<int>(cfg.seed)));
  cfg.wake_all = args.get_bool("wake-all", cfg.wake_all);
  cfg.per_distance = args.get_bool("per-distance", cfg.per_distance);
  cfg.shards = args.get_int("shards", cfg.shards);
  cfg.partition = args.get_string("partition", cfg.partition);
  cfg.min_shard_nodes = args.get_int("shards-min-nodes", cfg.min_shard_nodes);
  cfg.queue = args.get_string("queue", cfg.queue);
  cfg.faults_file = args.get_string("faults", cfg.faults_file);
  cfg.fault_seed = static_cast<std::uint64_t>(
      args.get_int("fault-seed", static_cast<int>(cfg.fault_seed)));
  cfg.silence_timeout = args.get_double("silence-timeout", cfg.silence_timeout);
  cfg.influence_bound = args.get_double("influence-bound", cfg.influence_bound);
  cfg.ftgcs_f = args.get_int("ftgcs-f", cfg.ftgcs_f);
  cfg.ftgcs_filter = args.get_string("ftgcs-filter", cfg.ftgcs_filter);
  cfg.churn_node_rate = args.get_double("churn-node-rate", cfg.churn_node_rate);
  cfg.churn_edge_rate = args.get_double("churn-edge-rate", cfg.churn_edge_rate);
  cfg.churn_downtime = args.get_double("churn-downtime", cfg.churn_downtime);
  cfg.churn_node_fraction =
      args.get_double("churn-node-fraction", cfg.churn_node_fraction);
  cfg.churn_edge_fraction =
      args.get_double("churn-edge-fraction", cfg.churn_edge_fraction);
  cfg.churn_extra_edges =
      args.get_double("churn-extra-edges", cfg.churn_extra_edges);
  cfg.churn_start = args.get_double("churn-start", cfg.churn_start);
  cfg.churn_stop = args.get_double("churn-stop", cfg.churn_stop);
  cfg.churn_min_present =
      args.get_int("churn-min-present", cfg.churn_min_present);
  cfg.churn_seed = static_cast<std::uint64_t>(
      args.get_int("churn-seed", static_cast<int>(cfg.churn_seed)));
  cfg.churn_repartition =
      args.get_bool("churn-repartition", cfg.churn_repartition);
  cfg.churn_cut_growth =
      args.get_double("churn-cut-growth", cfg.churn_cut_growth);
  cfg.churn_check_interval =
      args.get_double("churn-check-interval", cfg.churn_check_interval);
  cfg.stab_tolerance = args.get_double("stab-tolerance", cfg.stab_tolerance);
  cfg.stab_time = args.get_double("stab-time", cfg.stab_time);
  cfg.stab_bound = args.get_double("stab-bound", cfg.stab_bound);
  cfg.skew_stride = args.get_int("skew-stride", cfg.skew_stride);
  cfg.obs_backend = args.get_string("obs-backend", cfg.obs_backend);
  cfg.obs_memory_kb = args.get_int("obs-memory-kb", cfg.obs_memory_kb);
}

graph::Graph build_topology(const ExperimentConfig& cfg) {
  const auto n = static_cast<graph::NodeId>(cfg.nodes);
  if (cfg.topology == "path") return graph::make_path(n);
  if (cfg.topology == "ring") return graph::make_ring(n);
  if (cfg.topology == "star") return graph::make_star(n);
  if (cfg.topology == "complete") return graph::make_complete(n);
  if (cfg.topology == "grid") return graph::make_grid(cfg.rows, cfg.cols);
  if (cfg.topology == "torus") return graph::make_torus(cfg.rows, cfg.cols);
  if (cfg.topology == "hypercube") return graph::make_hypercube(cfg.dims);
  if (cfg.topology == "tree") return graph::make_balanced_tree(cfg.arity, cfg.levels);
  if (cfg.topology == "er") return graph::make_connected_er(n, cfg.er_p, cfg.seed);
  throw ConfigError("unknown topology: " + cfg.topology);
}

core::SyncParams resolve_params(const ExperimentConfig& cfg) {
  const double mu_min = 14.0 * cfg.eps / (1.0 - cfg.eps);
  const double mu = cfg.mu > 0.0 ? cfg.mu : mu_min;
  const double h0 = cfg.h0 > 0.0 ? cfg.h0 : cfg.delay / mu;
  return core::SyncParams::with(cfg.delay, cfg.eps, mu, h0);
}

dyn::ChurnConfig resolve_churn(const ExperimentConfig& cfg) {
  dyn::ChurnConfig c;
  c.node_rate = cfg.churn_node_rate;
  c.edge_rate = cfg.churn_edge_rate;
  const double downtime =
      cfg.churn_downtime > 0.0 ? cfg.churn_downtime : 20.0 * cfg.delay;
  c.node_downtime = downtime;
  c.edge_downtime = downtime;
  c.node_fraction = cfg.churn_node_fraction;
  c.edge_fraction = cfg.churn_edge_fraction;
  c.extra_edges = cfg.churn_extra_edges;
  c.min_present = cfg.churn_min_present;
  // Let the wake flood converge before membership starts moving.
  c.t0 = cfg.churn_start > 0.0 ? cfg.churn_start : 4.0 * cfg.delay;
  c.t1 = cfg.churn_stop > 0.0 ? cfg.churn_stop : cfg.duration;
  c.seed = cfg.churn_seed != 0 ? cfg.churn_seed : cfg.seed ^ 0x636875726eULL;
  if (c.enabled()) c.check();
  return c;
}

core::FtGcsOptions resolve_ftgcs(const ExperimentConfig& cfg) {
  core::FtGcsOptions o;
  if (cfg.ftgcs_f < 0) throw ConfigError("--ftgcs-f must be >= 0");
  o.f = cfg.ftgcs_f;
  const std::string& m = cfg.ftgcs_filter;
  if (m == "both") {
    o.envelope_filter = true;
    o.trim = true;
  } else if (m == "envelope") {
    o.envelope_filter = true;
    o.trim = false;
  } else if (m == "trim") {
    o.envelope_filter = false;
    o.trim = true;
  } else if (m == "none") {
    o.envelope_filter = false;
    o.trim = false;
  } else {
    throw ConfigError("unknown --ftgcs-filter: " + m +
                      " (expected both|envelope|trim|none)");
  }
  return o;
}

dyn::DynGcsOptions resolve_dyn_gcs(const ExperimentConfig& cfg,
                                   const core::SyncParams& params) {
  dyn::DynGcsOptions o;
  // tau0: the slack granted to a fresh edge; 8 kappa spans the local-skew
  // ladder's first levels.  T_stab = tau0 / mu is the time the mu-bounded
  // catch-up rate needs to close a tau0 gap — the KLLO linear-convergence
  // figure — so by default the ramp expires exactly when an edge that
  // started tau0 apart can have converged.
  o.initial_tolerance =
      cfg.stab_tolerance > 0.0 ? cfg.stab_tolerance : 8.0 * params.kappa;
  o.stabilization_time =
      cfg.stab_time > 0.0 ? cfg.stab_time : o.initial_tolerance / params.mu;
  return o;
}

obs::HistoryConfig resolve_history(const ExperimentConfig& cfg) {
  obs::HistoryConfig h;
  try {
    h.backend = obs::parse_history_backend(cfg.obs_backend);
  } catch (const std::invalid_argument& e) {
    throw ConfigError(e.what());
  }
  if (cfg.obs_memory_kb <= 0) {
    throw ConfigError("--obs-memory-kb must be > 0");
  }
  h.memory_budget_bytes =
      static_cast<std::size_t>(cfg.obs_memory_kb) * 1024;
  return h;
}

namespace {

std::shared_ptr<sim::DriftPolicy> build_drift(const ExperimentConfig& cfg) {
  // Every named drift model maps onto an OscillatorSpec so the CLI, sweep
  // specs, and scenario tests construct byte-identical policies through
  // sim::make_oscillator.  Legacy cadences (10 T / 40 T / 80 T) and seed
  // offsets are preserved exactly when --drift-interval is absent.
  using Kind = sim::OscillatorSpec::Kind;
  sim::OscillatorSpec spec;
  spec.epsilon = cfg.eps;
  const double iv = cfg.drift_interval;
  if (cfg.drift == "walk") {
    spec.kind = Kind::kWalk;
    spec.interval = iv > 0.0 ? iv : 10.0 * cfg.delay;
    spec.seed = cfg.seed + 1;
  } else if (cfg.drift == "rwalk") {
    spec.kind = Kind::kClampedWalk;
    spec.interval = iv > 0.0 ? iv : 10.0 * cfg.delay;
    spec.step = cfg.drift_step > 0.0 ? cfg.drift_step : cfg.eps / 2.0;
    spec.seed = cfg.seed + 7;
  } else if (cfg.drift == "square") {
    spec.kind = Kind::kSquare;
    spec.interval = iv > 0.0 ? iv : 40.0 * cfg.delay;
    spec.fast_below = static_cast<sim::NodeId>(cfg.nodes / 2);
  } else if (cfg.drift == "sine") {
    spec.kind = Kind::kSine;
    spec.interval = iv > 0.0 ? iv : 80.0 * cfg.delay;
    spec.seed = cfg.seed + 2;
  } else if (cfg.drift == "const") {
    spec.kind = Kind::kConst;
  } else {
    throw ConfigError("unknown drift model: " + cfg.drift);
  }
  return std::shared_ptr<sim::DriftPolicy>(sim::make_oscillator(spec));
}

std::shared_ptr<sim::DelayPolicy> build_delays(const ExperimentConfig& cfg,
                                               const graph::Graph& g) {
  if (cfg.delays == "uniform") {
    return std::make_shared<sim::UniformDelay>(0.0, cfg.delay, cfg.seed + 3);
  }
  if (cfg.delays == "fixed") return std::make_shared<sim::FixedDelay>(cfg.delay);
  if (cfg.delays == "band") {
    return std::make_shared<sim::UniformDelay>(cfg.band_min * cfg.delay,
                                               cfg.delay, cfg.seed + 4);
  }
  if (cfg.delays == "bimodal") {
    return std::make_shared<sim::BimodalDelay>(0.1 * cfg.delay, cfg.delay, 0.05,
                                               cfg.seed + 5);
  }
  if (cfg.delays == "burst") {
    return std::make_shared<sim::BurstDelay>(0.1 * cfg.delay, cfg.delay,
                                             50.0 * cfg.delay, 10.0 * cfg.delay,
                                             cfg.seed + 6);
  }
  if (cfg.delays == "hiding") {
    auto dist = std::make_shared<std::vector<int>>(g.bfs_distances(0));
    return std::make_shared<sim::DirectionalDelay>(
        [dist](sim::NodeId from, sim::NodeId to) {
          return (*dist)[static_cast<std::size_t>(to)] >
                 (*dist)[static_cast<std::size_t>(from)];
        },
        0.0, cfg.delay);
  }
  throw ConfigError("unknown delay model: " + cfg.delays);
}

std::unique_ptr<sim::Node> build_node(const ExperimentConfig& cfg,
                                      const core::SyncParams& params,
                                      sim::NodeId v) {
  const std::string& a = cfg.algorithm;
  if (a == "aopt") {
    core::AoptOptions o;
    o.neighbor_silence_timeout = cfg.silence_timeout;
    o.influence_bound = cfg.influence_bound;
    return std::make_unique<core::AoptNode>(params, o);
  }
  if (a == "ftgcs") {
    core::AoptOptions o;
    o.neighbor_silence_timeout = cfg.silence_timeout;
    o.influence_bound = cfg.influence_bound;
    return std::make_unique<core::FtGcsNode>(params, o, resolve_ftgcs(cfg));
  }
  if (a == "kllo") {
    core::AoptOptions o;
    o.neighbor_silence_timeout = cfg.silence_timeout;
    o.influence_bound = cfg.influence_bound;
    return std::make_unique<dyn::DynGcsNode>(params, o,
                                             resolve_dyn_gcs(cfg, params));
  }
  if (a == "aopt-jump") return core::make_jump_aopt(params);
  if (a == "aopt-bounded") return core::make_bounded_frequency_aopt(params);
  if (a == "aopt-adaptive") {
    return std::make_unique<core::AdaptiveDelayAoptNode>(params);
  }
  if (a == "aopt-external") {
    if (v == 0) {
      return std::make_unique<core::ExternalReferenceNode>(params.h0);
    }
    return core::make_external_aopt(params);
  }
  if (a == "aopt-envelope") return core::make_envelope_aopt(params);
  if (a == "aopt-ticks") {
    return std::make_unique<sim::TickQuantizedNode>(core::make_aopt(params),
                                                    cfg.tick_frequency);
  }
  if (a == "max" || a == "max-rate") {
    baselines::MaxAlgorithmOptions o;
    o.jump = (a == "max");
    o.h0 = params.h0;
    return std::make_unique<baselines::MaxAlgorithmNode>(o);
  }
  if (a == "avg") {
    baselines::AveragingOptions o;
    o.h0 = params.h0;
    return std::make_unique<baselines::AveragingNode>(o);
  }
  if (a == "free") return std::make_unique<baselines::FreeRunningNode>();
  throw ConfigError("unknown algorithm: " + a);
}

}  // namespace

BuiltExperiment build_experiment(const ExperimentConfig& cfg) {
  BuiltExperiment built;
  built.graph = std::make_unique<graph::Graph>(build_topology(cfg));
  built.params = resolve_params(cfg);

  // Churn resolves against the topology *before* the simulator snapshots
  // it: extend_universe appends the insertion-churn edges, and the sharded
  // engine's cut tables must cover them.
  const dyn::ChurnConfig churn_cfg = resolve_churn(cfg);
  if (churn_cfg.enabled()) {
    built.churn = dyn::ChurnPlan(churn_cfg).build(*built.graph);
  }

  const std::uint64_t fault_seed =
      cfg.fault_seed != 0 ? cfg.fault_seed : cfg.seed;
  if (!cfg.faults_file.empty()) {
    built.timeline = fault::FaultPlan::load_file(cfg.faults_file)
                         .instantiate(fault_seed, *built.graph);
  }

  sim::SimConfig scfg;
  scfg.wake_all_at_zero = cfg.wake_all;
  scfg.probe_interval = cfg.delay;
  if (cfg.queue == "auto" || cfg.queue.empty()) {
    scfg.queue = sim::QueueSelect::kAuto;
  } else if (cfg.queue == "heap") {
    scfg.queue = sim::QueueSelect::kHeap;
  } else if (cfg.queue == "ladder") {
    scfg.queue = sim::QueueSelect::kLadder;
  } else {
    throw ConfigError("unknown queue implementation: " + cfg.queue +
                      " (expected auto|heap|ladder)");
  }
  built.simulator = std::make_unique<sim::Simulator>(*built.graph, scfg);
  if (cfg.shards > 0) {
    built.simulator->configure_shards(cfg.shards, cfg.partition,
                                      cfg.min_shard_nodes);
  }
  // After configure_shards: initial absences/downed links address the
  // final slot permutation and per-lane link views.
  if (!built.churn.empty()) built.churn.apply(*built.simulator);
  const core::SyncParams params = built.params;
  const fault::FaultTimeline& timeline = built.timeline;
  built.simulator->set_all_nodes(
      [&cfg, &params, &timeline, fault_seed](sim::NodeId v) {
        std::unique_ptr<sim::Node> node = build_node(cfg, params, v);
        if (const fault::ByzantineSpec* spec = timeline.byzantine_spec(v)) {
          // Per-node lie stream, derived from the fault seed only.
          const std::uint64_t node_seed =
              sim::SplitMix64(fault_seed ^
                              ((static_cast<std::uint64_t>(v) + 1) *
                               0x9e3779b97f4a7c15ULL))
                  .next();
          node = std::make_unique<fault::ByzantineNode>(std::move(node), *spec,
                                                        node_seed);
        }
        return node;
      });
  built.drift = build_drift(cfg);
  built.delay = build_delays(cfg, *built.graph);
  built.simulator->set_drift_policy(built.drift);
  if (!built.timeline.windows.empty()) {
    built.channel = std::make_shared<fault::ChannelFaultPolicy>(
        built.delay, built.timeline.windows, fault_seed ^ 0xc4a27e11u);
    built.simulator->set_delay_policy(built.channel);
  } else {
    built.simulator->set_delay_policy(built.delay);
  }
  return built;
}

}  // namespace tbcs::cli
