// Tiny command-line flag parser for the tools (no external dependencies).
//
// Accepts --key=value and --key value forms plus boolean --flag; tracks
// which keys were consumed so unknown flags can be reported.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace tbcs::cli {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);
  explicit ArgParser(const std::vector<std::string>& args);

  /// Value lookups; each records the key as known.
  std::string get_string(const std::string& key, const std::string& fallback);
  double get_double(const std::string& key, double fallback);
  int get_int(const std::string& key, int fallback);
  bool get_bool(const std::string& key, bool fallback = false);

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// Flags present on the command line that no lookup asked about.
  std::vector<std::string> unknown_keys() const;

  /// Parse errors (malformed flags, missing values).
  const std::vector<std::string>& errors() const { return errors_; }
  bool ok() const { return errors_.empty(); }

 private:
  void parse(const std::vector<std::string>& args);

  std::map<std::string, std::string> values_;
  std::set<std::string> queried_;
  std::vector<std::string> errors_;
};

}  // namespace tbcs::cli
