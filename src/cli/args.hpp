// Tiny command-line flag parser for the tools (no external dependencies).
//
// Accepts --key=value and --key value forms plus boolean --flag; tracks
// which keys were consumed so unknown flags can be reported.
//
// Disambiguation rules:
//  * Only tokens starting with "--" are flags; "--key -0.5" therefore
//    binds the negative number as key's value.  A value that itself
//    starts with "--" must use the "--key=value" form.
//  * A spaced token after a flag is bound as its value, but get_bool()
//    re-classifies: if the bound token is not a boolean literal
//    (true/false/1/0/yes/no), the flag is treated as bare boolean true
//    and the token is reported as an unexpected argument — so
//    "--help extra" still shows help instead of silently parsing
//    "extra" as help's value.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace tbcs::cli {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);
  explicit ArgParser(const std::vector<std::string>& args);

  /// Value lookups; each records the key as known.
  std::string get_string(const std::string& key, const std::string& fallback);
  double get_double(const std::string& key, double fallback);
  int get_int(const std::string& key, int fallback);
  bool get_bool(const std::string& key, bool fallback = false);

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// Flags present on the command line that no lookup asked about.
  std::vector<std::string> unknown_keys() const;

  /// Parse errors (malformed flags, missing values).
  const std::vector<std::string>& errors() const { return errors_; }
  bool ok() const { return errors_.empty(); }

 private:
  struct Entry {
    std::string value;
    // True when the value came from a separate token ("--key value")
    // rather than "--key=value" or a bare flag; get_bool() uses this to
    // detect a positional token mistakenly bound to a boolean flag.
    bool from_next_token = false;
  };

  void parse(const std::vector<std::string>& args);

  std::map<std::string, Entry> values_;
  std::set<std::string> queried_;
  std::vector<std::string> errors_;
};

}  // namespace tbcs::cli
