// Builds a complete experiment (topology + algorithm + adversary) from
// string options — the engine behind the tbcs_sim command-line tool, kept
// separate so it is unit-testable.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "core/ftgcs.hpp"
#include "core/params.hpp"
#include "dyn/churn_plan.hpp"
#include "dyn/dyn_gcs_node.hpp"
#include "fault/fault_injection.hpp"
#include "fault/fault_plan.hpp"
#include "graph/graph.hpp"
#include "obs/history_store.hpp"
#include "sim/delay_policy.hpp"
#include "sim/drift_policy.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace tbcs::cli {

struct ExperimentConfig {
  // Topology: path | ring | star | complete | grid | torus | hypercube |
  // tree | er
  std::string topology = "path";
  int nodes = 16;   // path/ring/star/complete/er node count
  int rows = 4;     // grid/torus
  int cols = 4;     // grid/torus
  int dims = 4;     // hypercube
  int arity = 2;    // tree
  int levels = 4;   // tree
  double er_p = 0.05;

  // Algorithm: aopt | ftgcs | kllo | aopt-jump | aopt-bounded |
  // aopt-adaptive | aopt-external | aopt-envelope | aopt-ticks | max |
  // max-rate | avg | free
  std::string algorithm = "aopt";
  double tick_frequency = 100.0;  // for aopt-ticks

  // Model parameters.
  double eps = 0.01;
  double delay = 1.0;  // T
  double mu = 0.0;     // 0 -> paper minimum
  double h0 = 0.0;     // 0 -> delay / mu

  // Adversary: drift = walk | rwalk | square | sine | const;
  // delays = uniform | fixed | band | bimodal | burst | hiding
  std::string drift = "walk";
  std::string delays = "uniform";
  double band_min = 0.5;  // for delays=band

  // Oscillator-family knobs (sim/clock_model.hpp).  drift_interval
  // overrides the drift model's rate-change cadence / period (0 keeps the
  // legacy per-model default: 10 T walk/rwalk, 40 T square, 80 T sine);
  // drift_step is the max |rate increment| per change for drift=rwalk
  // (0 -> eps / 2).
  double drift_interval = 0.0;
  double drift_step = 0.0;

  double duration = 500.0;
  std::uint64_t seed = 1;
  bool wake_all = false;
  bool per_distance = false;

  // Sharded engine: number of lanes (0 = classic serial engine) and the
  // graph::Partition strategy ("auto" | "block" | "bands" | "ml"; auto
  // picks the multilevel partitioner for trees, contiguous blocks
  // elsewhere).  Requires a delay policy with a positive min_delay()
  // (fixed / band), checked at setup.  min_shard_nodes auto-clamps the
  // lane count so every lane covers at least that many nodes (below it
  // barrier overhead dominates and extra lanes are a slowdown); 0
  // disables the clamp — equivalence tests use that to exercise
  // multi-shard runs on tiny graphs.
  int shards = 0;
  std::string partition = "auto";
  int min_shard_nodes = 64;

  // Event-queue implementation: "auto" (ladder at or above
  // sim::Simulator::kLadderAutoThreshold nodes, binary heap below) |
  // "heap" | "ladder".  Pop order is byte-identical across all three;
  // only throughput differs.
  std::string queue = "auto";

  // Fault injection (docs/FAULTS.md).
  std::string faults_file;       // FaultPlan text file; empty = fault-free
  std::uint64_t fault_seed = 0;  // 0 -> derive the fault streams from seed

  // Graceful-degradation knobs, forwarded to AoptOptions (plain --algo
  // aopt only; 0 = off, the paper's algorithm unchanged).
  double silence_timeout = 0.0;
  double influence_bound = 0.0;

  // Fault-tolerant GCS (--algo ftgcs): trim depth f and which defense
  // layers run ("both" | "envelope" | "trim" | "none"; none + f irrelevant
  // reduces the node to plain A^opt, which the equivalence suites pin).
  int ftgcs_f = 1;
  std::string ftgcs_filter = "both";

  // Dynamic-network churn (src/dyn; all off by default).  Rates are per
  // entity per unit real time; the window defaults to [4 T, duration] so
  // the initial flood converges before membership starts moving.
  double churn_node_rate = 0.0;    // joins/leaves; 0 = no node churn
  double churn_edge_rate = 0.0;    // edge removal/insertion; 0 = none
  double churn_downtime = 0.0;     // mean absent/removed time (0 -> 20 T)
  double churn_node_fraction = 0.5;
  double churn_edge_fraction = 0.25;
  double churn_extra_edges = 0.0;  // insertion universe, fraction of |E|
  double churn_start = 0.0;        // t0 (0 -> 4 T)
  double churn_stop = 0.0;         // t1 (0 -> duration)
  int churn_min_present = 2;
  std::uint64_t churn_seed = 0;    // 0 -> derive from seed

  // Churn driver (sharded runs): repartition when the live cut fraction
  // grows past churn_cut_growth x the post-partition baseline.
  bool churn_repartition = true;
  double churn_cut_growth = 1.5;
  double churn_check_interval = 0.0;  // 0 -> duration / 20

  // KLLO dynamic-GCS node (--algo kllo): initial per-edge tolerance and
  // its decay period (0 = derived: tau0 = 8 kappa, T_stab = tau0 / mu).
  double stab_tolerance = 0.0;
  double stab_time = 0.0;
  // Stabilization-probe threshold: an inserted edge counts as stabilized
  // when its skew stays <= this (0 = the Thm 5.10 local bound).
  double stab_bound = 0.0;

  // Skew-tracker sampling stride: observe every Nth event only (> 1
  // degrades the incremental engine to strided full rescans and reported
  // maxima become lower bounds, but large-n serial runs stop paying a
  // rescan per event; execution bytes are unaffected).  1 = exact.
  // DEPRECATED: serial-engine only and no error bound — prefer
  // obs_backend = "stair", which grid-samples with a queryable bound and
  // works identically under --shards.
  int skew_stride = 1;

  // Telemetry history backend ("exact" | "stair") and the stair sketch's
  // per-stream memory budget.  Observer-only: record/trace bytes are
  // identical across backends.
  std::string obs_backend = "exact";
  int obs_memory_kb = 64;
};

struct BuiltExperiment {
  // Heap-held so the simulator's reference stays valid when the struct is
  // moved out of build_experiment().
  std::unique_ptr<graph::Graph> graph;
  core::SyncParams params;
  std::unique_ptr<sim::Simulator> simulator;
  // The installed policies, exposed so tools can wrap them (recording) or
  // swap them (replay) before the first run.  When `channel` is non-null
  // it is the installed policy and wraps `delay`; tools must then swap
  // the inner policy (channel->set_inner) instead of replacing it.
  std::shared_ptr<sim::DriftPolicy> drift;
  std::shared_ptr<sim::DelayPolicy> delay;
  std::shared_ptr<fault::ChannelFaultPolicy> channel;
  // Resolved fault schedule (empty when faults_file is empty); drive it
  // with fault::FaultScheduler instead of calling run_until directly.
  fault::FaultTimeline timeline;
  // Resolved churn schedule (empty when churn is off).  build_experiment
  // already installed it into the simulator; it is exposed for probes
  // (StabilizationProbe::preload) and pacing (dyn::ChurnDriver).
  dyn::ChurnSchedule churn;
};

/// Thrown when an option value is not recognized.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ArgParser;

/// Reads every tbcs_sim model/topology/adversary flag into cfg; flags
/// absent on the command line keep cfg's current values.  Shared by
/// tbcs_sim and tbcs_sweep so the tools accept the same vocabulary and
/// cannot drift apart.
void apply_model_flags(ArgParser& args, ExperimentConfig& cfg);

/// Builds topology, parameters, simulator, nodes, and policies.
BuiltExperiment build_experiment(const ExperimentConfig& cfg);

/// Builds just the topology (exposed for tests and tools).
graph::Graph build_topology(const ExperimentConfig& cfg);

/// Effective parameters (resolves mu = 0 / h0 = 0 defaults).
core::SyncParams resolve_params(const ExperimentConfig& cfg);

/// Effective churn config (resolves the 0 = derived defaults; enabled()
/// is false when both rates are 0).
dyn::ChurnConfig resolve_churn(const ExperimentConfig& cfg);

/// Effective KLLO options for --algo kllo (resolves tau0/T_stab defaults
/// against the model parameters).
dyn::DynGcsOptions resolve_dyn_gcs(const ExperimentConfig& cfg,
                                   const core::SyncParams& params);

/// Effective FtGcs options for --algo ftgcs (maps ftgcs_filter onto the
/// envelope_filter/trim switches; throws ConfigError on a bad value).
core::FtGcsOptions resolve_ftgcs(const ExperimentConfig& cfg);

/// Effective telemetry history backend (maps obs_backend / obs_memory_kb
/// onto an obs::HistoryConfig; throws ConfigError on a bad backend name
/// or a non-positive budget).
obs::HistoryConfig resolve_history(const ExperimentConfig& cfg);

}  // namespace tbcs::cli
