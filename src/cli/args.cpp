#include "cli/args.hpp"

#include <cstdlib>

namespace tbcs::cli {

ArgParser::ArgParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

ArgParser::ArgParser(const std::vector<std::string>& args) { parse(args); }

void ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0 || a.size() <= 2) {
      errors_.push_back("unexpected argument: " + a);
      continue;
    }
    const auto eq = a.find('=');
    if (eq != std::string::npos) {
      values_[a.substr(2, eq - 2)] = a.substr(eq + 1);
      continue;
    }
    const std::string key = a.substr(2);
    // --key value (if the next token is not a flag), else boolean --key.
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      values_[key] = args[i + 1];
      ++i;
    } else {
      values_[key] = "true";
    }
  }
}

std::string ArgParser::get_string(const std::string& key,
                                  const std::string& fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double ArgParser::get_double(const std::string& key, double fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("flag --" + key + " expects a number, got '" +
                      it->second + "'");
    return fallback;
  }
  return v;
}

int ArgParser::get_int(const std::string& key, int fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("flag --" + key + " expects an integer, got '" +
                      it->second + "'");
    return fallback;
  }
  return static_cast<int>(v);
}

bool ArgParser::get_bool(const std::string& key, bool fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> ArgParser::unknown_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (queried_.count(key) == 0) out.push_back(key);
  }
  return out;
}

}  // namespace tbcs::cli
