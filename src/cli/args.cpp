#include "cli/args.hpp"

#include <cstdlib>

namespace tbcs::cli {

namespace {

bool is_true_literal(const std::string& s) {
  return s == "true" || s == "1" || s == "yes";
}

bool is_false_literal(const std::string& s) {
  return s == "false" || s == "0" || s == "no";
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

ArgParser::ArgParser(const std::vector<std::string>& args) { parse(args); }

void ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0 || a.size() <= 2) {
      errors_.push_back("unexpected argument: " + a);
      continue;
    }
    const auto eq = a.find('=');
    if (eq != std::string::npos) {
      values_[a.substr(2, eq - 2)] = Entry{a.substr(eq + 1), false};
      continue;
    }
    const std::string key = a.substr(2);
    // --key value (if the next token is not itself a flag), else boolean
    // --key.  A next token starting with a single '-' (e.g. "-0.5") is a
    // legitimate value; only "--"-prefixed tokens are flags.
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      values_[key] = Entry{args[i + 1], true};
      ++i;
    } else {
      values_[key] = Entry{"true", false};
    }
  }
}

std::string ArgParser::get_string(const std::string& key,
                                  const std::string& fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second.value;
}

double ArgParser::get_double(const std::string& key, double fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.value.c_str(), &end);
  if (end == it->second.value.c_str() || *end != '\0') {
    errors_.push_back("flag --" + key + " expects a number, got '" +
                      it->second.value + "'");
    return fallback;
  }
  return v;
}

int ArgParser::get_int(const std::string& key, int fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.value.c_str(), &end, 10);
  if (end == it->second.value.c_str() || *end != '\0') {
    errors_.push_back("flag --" + key + " expects an integer, got '" +
                      it->second.value + "'");
    return fallback;
  }
  return static_cast<int>(v);
}

bool ArgParser::get_bool(const std::string& key, bool fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  Entry& e = it->second;
  if (is_true_literal(e.value)) return true;
  if (is_false_literal(e.value)) return false;
  if (e.from_next_token) {
    // "--flag token" where token is no boolean literal: the token was a
    // positional argument, not the flag's value.  Reclassify: the flag is
    // bare boolean true, the token is reported as unexpected.
    errors_.push_back("unexpected argument: " + e.value);
    e = Entry{"true", false};
    return true;
  }
  errors_.push_back("flag --" + key + " expects a boolean, got '" + e.value +
                    "'");
  return fallback;
}

std::vector<std::string> ArgParser::unknown_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, entry] : values_) {
    if (queried_.count(key) == 0) out.push_back(key);
  }
  return out;
}

}  // namespace tbcs::cli
