#include "sim/timer_wheel.hpp"

#include <algorithm>
#include <cassert>

namespace tbcs::sim {

namespace {

#if defined(__GNUC__) || defined(__clang__)
inline int ctz64(std::uint64_t x) { return __builtin_ctzll(x); }
#else
inline int ctz64(std::uint64_t x) {
  int n = 0;
  while (!(x & 1)) {
    x >>= 1;
    ++n;
  }
  return n;
}
#endif

}  // namespace

void TimerWheel::reserve(std::size_t expected) {
  pool_.reserve(expected);
  free_.reserve(expected);
  cur_.reserve(kSlots);
}

TimerWheel::Handle TimerWheel::arm(RealTime deadline, std::uint64_t seq,
                                   NodeId node, std::uint8_t slot) {
  if (width_ == 0.0) {
    // Calibrate from the first deadline: spread ~3 timers per member over
    // one deadline's worth of ticks, so a drained tick sorts a handful of
    // entries regardless of n and arms land within the wheel's span.
    double d = deadline > 1e-6 ? deadline : 1e-6;
    const double denom =
        static_cast<double>(members_ * 3 > kSlots ? members_ * 3 : kSlots);
    width_ = d * static_cast<double>(kSlots) / denom;
    inv_width_ = 1.0 / width_;
  }
  Handle h;
  if (!free_.empty()) {
    h = free_.back();
    free_.pop_back();
  } else {
    h = static_cast<Handle>(pool_.size());
    pool_.emplace_back();
  }
  Entry& e = pool_[h];
  e.time = deadline;
  e.seq = seq;
  e.node = node;
  e.slot = slot;
  e.tick = tick_of(deadline);
  ++stats_.arms;
  ++live_;
  stats_.live = live_;
  if (live_ > stats_.peak_live) stats_.peak_live = live_;
  place(h);
  return h;
}

void TimerWheel::place(Handle h) {
  Entry& e = pool_[h];
  if (e.tick <= cur_tick_) {
    // Already due at the wheel's drain position (an immediate re-arm, or a
    // deadline inside the tick being drained): merge into the sorted due
    // list directly.  Event times are monotone at the consumer, so nothing
    // ordered before this entry has popped yet.
    e.where = Where::kCur;
    insert_cur_sorted(h);
    return;
  }
  for (int l = 0; l < kLevels; ++l) {
    const int frame_shift = (l + 1) * kSlotBits;
    if ((e.tick >> frame_shift) == (cur_tick_ >> frame_shift)) {
      const std::uint32_t s =
          static_cast<std::uint32_t>((e.tick >> (l * kSlotBits)) & kSlotMask);
      std::vector<Handle>& b = buckets_[l][s];
      e.where = Where::kBucket;
      e.level = static_cast<std::uint16_t>(l);
      e.bslot = s;
      e.pos = static_cast<std::uint32_t>(b.size());
      b.push_back(h);
      occ_[l] |= (1ull << s);
      return;
    }
  }
  e.where = Where::kOverflow;
  e.pos = static_cast<std::uint32_t>(overflow_.size());
  overflow_.push_back(h);
}

void TimerWheel::insert_cur_sorted(Handle h) {
  // cur_ is sorted descending by the canonical key so back() pops first.
  const auto greater = [](const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.node != b.node) return a.node > b.node;
    return a.seq > b.seq;
  };
  const auto it = std::upper_bound(
      cur_.begin(), cur_.end(), h,
      [&](Handle x, Handle y) { return greater(pool_[x], pool_[y]); });
  cur_.insert(it, h);
}

void TimerWheel::remove_from(std::vector<Handle>& v, std::uint32_t pos) {
  assert(pos < v.size());
  const Handle moved = v.back();
  v[pos] = moved;
  v.pop_back();
  if (pos < v.size()) pool_[moved].pos = pos;
}

void TimerWheel::cancel(Handle h) {
  Entry& e = pool_[h];
  assert(e.where != Where::kFree && "cancel of a dead timer handle");
  switch (e.where) {
    case Where::kBucket: {
      std::vector<Handle>& b = buckets_[e.level][e.bslot];
      remove_from(b, e.pos);
      if (b.empty()) occ_[e.level] &= ~(1ull << e.bslot);
      break;
    }
    case Where::kOverflow:
      remove_from(overflow_, e.pos);
      break;
    case Where::kCur:
      // Rare (a cancel racing an already-due tick) and cur_ is one tick's
      // worth of entries; an ordered erase keeps the sort intact.
      cur_.erase(std::find(cur_.begin(), cur_.end(), h));
      break;
    case Where::kFree:
      return;
  }
  e.where = Where::kFree;
  free_.push_back(h);
  ++stats_.cancels;
  --live_;
  stats_.live = live_;
}

bool TimerWheel::peek(Fired& out) {
  if (live_ == 0) return false;
  if (cur_.empty()) advance();
  const Entry& e = pool_[cur_.back()];
  out.time = e.time;
  out.seq = e.seq;
  out.node = e.node;
  out.slot = e.slot;
  return true;
}

TimerWheel::Fired TimerWheel::pop() {
  assert(live_ > 0);
  if (cur_.empty()) advance();
  const Handle h = cur_.back();
  cur_.pop_back();
  Entry& e = pool_[h];
  Fired out;
  out.time = e.time;
  out.seq = e.seq;
  out.node = e.node;
  out.slot = e.slot;
  e.where = Where::kFree;
  free_.push_back(h);
  ++stats_.fires;
  --live_;
  stats_.live = live_;
  return out;
}

void TimerWheel::drain_slot(int level, std::uint32_t s) {
  std::vector<Handle>& b = buckets_[level][s];
  occ_[level] &= ~(1ull << s);
  if (level == 0) {
    for (Handle h : b) {
      pool_[h].where = Where::kCur;
      cur_.push_back(h);
    }
    b.clear();
    std::sort(cur_.begin(), cur_.end(), [this](Handle x, Handle y) {
      const Entry& a = pool_[x];
      const Entry& c = pool_[y];
      if (a.time != c.time) return a.time > c.time;
      if (a.node != c.node) return a.node > c.node;
      return a.seq > c.seq;
    });
  } else {
    // Cascade: cur_tick_ has entered this slot's block, so every entry now
    // fits a finer level (or is due).  place() never touches this bucket
    // again — the block's level-`level` frame is behind cur_tick_.
    for (Handle h : b) place(h);
    b.clear();
  }
}

void TimerWheel::advance() {
  while (cur_.empty()) {
    if (occ_[0]) {
      const int s = ctz64(occ_[0]);
      cur_tick_ = (cur_tick_ & ~kSlotMask) | static_cast<std::uint64_t>(s);
      drain_slot(0, static_cast<std::uint32_t>(s));
      continue;
    }
    bool cascaded = false;
    for (int l = 1; l < kLevels; ++l) {
      if (!occ_[l]) continue;
      const int s = ctz64(occ_[l]);
      const int shift = l * kSlotBits;
      const std::uint64_t frame = cur_tick_ >> (shift + kSlotBits);
      cur_tick_ = (frame << (shift + kSlotBits)) |
                  (static_cast<std::uint64_t>(s) << shift);
      ++stats_.cascades;
      drain_slot(l, static_cast<std::uint32_t>(s));
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    rebase();
  }
}

void TimerWheel::rebase() {
  assert(!overflow_.empty() && "wheel lost timers");
  std::uint64_t mn = pool_[overflow_.front()].tick;
  for (Handle h : overflow_) {
    if (pool_[h].tick < mn) mn = pool_[h].tick;
  }
  std::vector<Handle> tmp;
  tmp.swap(overflow_);
  cur_tick_ = mn;
  for (Handle h : tmp) place(h);
  overflow_.reserve(tmp.capacity());
  ++stats_.rebases;
}

}  // namespace tbcs::sim
