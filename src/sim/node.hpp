// The interface between a clock synchronization algorithm and the host
// (simulator or threaded runtime).
//
// A node only ever observes its own hardware clock and incoming messages —
// exactly the information available in the paper's model.  Real time, true
// rates, and true delays are visible to the metrics layer but never to the
// algorithm.
#pragma once

#include <cstddef>

#include "sim/message.hpp"
#include "sim/types.hpp"

namespace tbcs::sim {

/// Host-provided services.  Valid only for the duration of the callback it
/// is passed to.
class NodeServices {
 public:
  virtual ~NodeServices() = default;

  /// This node's identifier.
  virtual NodeId id() const = 0;

  /// H_v at the current event.
  virtual ClockValue hardware_now() const = 0;

  /// Sends a message to all physical neighbors (the model's communication
  /// primitive; delays per message are chosen by the adversary).
  virtual void broadcast(const Message& m) = 0;

  /// Arms timer `slot` to fire when H_v reaches `hardware_target`.
  /// Re-arming an armed slot replaces the previous target.  Targets in the
  /// past fire immediately (at the current real time).
  virtual void set_timer(int slot, ClockValue hardware_target) = 0;

  /// Disarms timer `slot` (no-op if not armed).
  virtual void cancel_timer(int slot) = 0;
};

/// Timer slots available to algorithms (per node).
inline constexpr int kMaxTimerSlots = 6;

/// A clock synchronization algorithm instance at one node.
class Node {
 public:
  virtual ~Node() = default;

  /// Called once, when the node is initialized (t_v in the paper): either
  /// spontaneously (`by_message == nullptr`, the flooding root) or by its
  /// first incoming message, which is passed here instead of on_message().
  /// The hardware clock starts at 0 at this instant.
  virtual void on_wake(NodeServices& sv, const Message* by_message) = 0;

  /// A message arrived (the node is already awake).
  virtual void on_message(NodeServices& sv, const Message& m) = 0;

  /// Timer `slot` fired (H_v reached the armed target).
  virtual void on_timer(NodeServices& sv, int slot) = 0;

  /// Dynamic topologies: the link to `neighbor` went up or down.  Nodes
  /// learn their current neighborhood (the model of gradient clock
  /// synchronization in dynamic networks); default: ignore.
  virtual void on_link_change(NodeServices& sv, NodeId neighbor, bool up) {
    (void)sv;
    (void)neighbor;
    (void)up;
  }

  /// Fault injection: the node was crashed (cut off, callbacks suppressed)
  /// and has just been restored.  Its hardware clock kept running; its
  /// algorithm state is exactly as of the last pre-crash event.  Algorithms
  /// use this as the re-join handshake (A^opt: drop stale neighbor
  /// estimates, reset the rate, re-announce); default: resume as-is.
  virtual void on_rejoin(NodeServices& sv) { (void)sv; }

  /// Self-stabilization harness: an adversary just overwrote this node's
  /// algorithm state with arbitrary (seed-derived, magnitude-bounded)
  /// values.  Implementations draw the corrupted state from `seed` so runs
  /// replay bit-identically, and re-arm their timers against it — after the
  /// callback the node must behave as if the corrupted state were its own.
  /// Default: the node has no corruptible state (honest clocks stay honest).
  virtual void on_scramble(NodeServices& sv, std::uint64_t seed,
                           double magnitude) {
    (void)sv;
    (void)seed;
    (void)magnitude;
  }

  /// Observability hook for the metrics layer: the logical clock value
  /// L_v given the current hardware clock reading.  Must be consistent
  /// with the state as of the node's last event (all logical clocks are
  /// piecewise linear in H between events).
  virtual ClockValue logical_at(ClockValue hardware_now) const = 0;

  /// Current logical rate multiplier rho_v (1 or 1 + mu for A^opt);
  /// used to audit Condition (2).
  virtual double rate_multiplier() const = 0;
};

}  // namespace tbcs::sim
