#include "sim/clock_model.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tbcs::sim {

std::unique_ptr<DriftPolicy> make_oscillator(const OscillatorSpec& spec) {
  switch (spec.kind) {
    case OscillatorSpec::Kind::kConst:
      return std::make_unique<ConstantDrift>(1.0);
    case OscillatorSpec::Kind::kWalk:
      return std::make_unique<RandomWalkDrift>(spec.epsilon, spec.interval,
                                               spec.seed);
    case OscillatorSpec::Kind::kClampedWalk:
      return std::make_unique<ClampedRandomWalkDrift>(
          spec.epsilon, spec.interval, spec.step, spec.seed);
    case OscillatorSpec::Kind::kSquare: {
      const NodeId fast_below = spec.fast_below;
      return std::make_unique<SquareWaveDrift>(
          spec.epsilon, spec.interval,
          [fast_below](NodeId v) { return v < fast_below; });
    }
    case OscillatorSpec::Kind::kSine:
      return std::make_unique<SinusoidalDrift>(spec.epsilon, spec.interval,
                                               spec.seed);
  }
  throw std::invalid_argument("unknown oscillator kind");
}

void SettableClock::step(RealTime now, ClockValue offset) {
  assert(started());
  // A step supersedes whatever slew was in flight.
  if (slewing_) {
    slewing_ = false;
    HardwareClock::set_rate(now, base_rate_);
  }
  double applied = offset;
  if (opt_.enforce_monotone && applied < 0.0) {
    clamped_adjustment_ += -applied;
    applied = 0.0;
  }
  ++steps_;
  total_adjustment_ += std::abs(applied);
  reanchor(now, value_at(now) + applied);
}

void SettableClock::begin_slew(RealTime now, ClockValue offset,
                               double rate_factor) {
  assert(started());
  assert(rate_factor > 0.0 && rate_factor < 1.0);
  poll(now);  // close out a finished slew first
  if (slewing_) {
    // Replace the in-flight correction: restore the base rate, then
    // start over from the current (partially corrected) value.
    HardwareClock::set_rate(now, base_rate_);
    slewing_ = false;
  }
  if (offset == 0.0) return;
  base_rate_ = rate();
  const double direction = offset > 0.0 ? 1.0 : -1.0;
  const double slew_rate = base_rate_ * (1.0 + direction * rate_factor);
  // |d(value)/dt - base_rate| = base_rate * rate_factor, so the offset is
  // absorbed after |offset| / (base_rate * rate_factor) real seconds.
  slew_end_ = now + std::abs(offset) / (base_rate_ * rate_factor);
  HardwareClock::set_rate(now, slew_rate);
  slewing_ = true;
  ++slews_;
  total_adjustment_ += std::abs(offset);
}

void SettableClock::poll(RealTime now) {
  if (!slewing_ || now < slew_end_) return;
  // Restore the base rate at the exact completion time; value_at()
  // handled the piecewise segment up to slew_end_ already.
  HardwareClock::set_rate(slew_end_, base_rate_);
  slewing_ = false;
}

void SettableClock::set_base_rate(RealTime now, double rate_value) {
  if (!slewing_) {
    base_rate_ = rate_value;
    HardwareClock::set_rate(now, rate_value);
    return;
  }
  // Re-scale the in-flight slew around the new oscillator rate so the
  // correction direction is preserved.
  const double factor = rate() / base_rate_;
  base_rate_ = rate_value;
  HardwareClock::set_rate(now, rate_value * factor);
}

}  // namespace tbcs::sim
