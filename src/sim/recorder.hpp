// Execution recording and replay.
//
// An execution is fully determined by the initial hardware rates, the
// rate-change schedule, and each message's delivery time.  Recording
// policies wrap any drift/delay policy and capture those decisions; a
// replay policy reproduces them exactly — so an adversarial execution
// found by randomized search (or reported by a user) can be saved to a
// file and re-run deterministically, independent of the RNG state that
// produced it.
//
// Replay assumes the same algorithm and topology: the sequence of sends
// per directed edge must match the recording (delivery times are matched
// FIFO per edge; a send-time divergence beyond the tolerance throws
// ReplayMismatch — which is itself useful, as a cheap detector that a
// code change altered behavior under a pinned adversary).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/delay_policy.hpp"
#include "sim/drift_policy.hpp"

namespace tbcs::sim {

struct ExecutionLog {
  struct RateEvent {
    NodeId node = kInvalidNode;
    RealTime at = 0.0;
    double rate = 1.0;
    bool operator==(const RateEvent&) const = default;
  };
  struct DeliveryEvent {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    RealTime send = 0.0;
    RealTime recv = 0.0;
    bool operator==(const DeliveryEvent&) const = default;
  };

  std::vector<double> initial_rates;  // indexed by node id
  std::vector<RateEvent> rate_events;
  std::vector<DeliveryEvent> deliveries;

  /// Sorts rate_events by (at, node, rate) and deliveries by (send, from,
  /// to, recv) — the schedule-order-independent event key.  A sharded run
  /// appends in whatever order its lanes interleave; after canonicalize()
  /// the log is byte-identical to the serial recording of the same
  /// execution.  Per-directed-edge FIFO replay survives the sort: within
  /// one edge the order is by send time, which is exactly the match order.
  void canonicalize();

  /// Saves a canonicalized copy (the in-memory order is left untouched).
  void save(std::ostream& os) const;
  static ExecutionLog load(std::istream& is);  // throws std::runtime_error

  bool operator==(const ExecutionLog&) const = default;
};

/// Thrown by ReplayDelayPolicy when the replayed run diverges from the
/// recorded one (different send pattern).
class ReplayMismatch : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Wraps a drift policy, recording everything into `log`.
class RecordingDriftPolicy final : public DriftPolicy {
 public:
  RecordingDriftPolicy(std::shared_ptr<DriftPolicy> inner,
                       std::shared_ptr<ExecutionLog> log)
      : inner_(std::move(inner)), log_(std::move(log)) {}

  double initial_rate(NodeId v) override;
  std::optional<RateStep> next_change(NodeId v, RealTime now) override;

 private:
  std::shared_ptr<DriftPolicy> inner_;
  std::shared_ptr<ExecutionLog> log_;
  std::mutex mu_;  // sharded runs record from several lanes concurrently
};

/// Wraps a delay policy, recording every delivery into `log`.
class RecordingDelayPolicy final : public DelayPolicy {
 public:
  RecordingDelayPolicy(std::shared_ptr<DelayPolicy> inner,
                       std::shared_ptr<ExecutionLog> log)
      : inner_(std::move(inner)), log_(std::move(log)) {}

  RealTime delivery_time(NodeId from, NodeId to, RealTime send_time,
                         const Simulator& sim) override;
  Duration min_delay() const override { return inner_->min_delay(); }
  Duration min_delay(NodeId from, NodeId to) const override {
    return inner_->min_delay(from, to);
  }
  void prepare(NodeId num_nodes) override { inner_->prepare(num_nodes); }

 private:
  std::shared_ptr<DelayPolicy> inner_;
  std::shared_ptr<ExecutionLog> log_;
  std::mutex mu_;  // sharded runs record from several lanes concurrently
};

/// Replays the recorded rate schedule.
class ReplayDriftPolicy final : public DriftPolicy {
 public:
  explicit ReplayDriftPolicy(std::shared_ptr<const ExecutionLog> log);

  double initial_rate(NodeId v) override;
  std::optional<RateStep> next_change(NodeId v, RealTime now) override;

 private:
  std::shared_ptr<const ExecutionLog> log_;
  std::map<NodeId, std::deque<ExecutionLog::RateEvent>> pending_;
};

/// Replays the recorded per-edge delivery times (FIFO per directed edge).
class ReplayDelayPolicy final : public DelayPolicy {
 public:
  /// `tolerance`: allowed |send_time - recorded send| before declaring a
  /// mismatch.  A mismatch throws ReplayMismatch naming the directed edge,
  /// the 1-based delivery index on that edge, and both send times — the
  /// "first divergent event" of the replay.
  explicit ReplayDelayPolicy(std::shared_ptr<const ExecutionLog> log,
                             double tolerance = 1e-6);

  RealTime delivery_time(NodeId from, NodeId to, RealTime send_time,
                         const Simulator& sim) override;

  /// The smallest recorded (recv - send) across the whole log: replaying
  /// inherits the recorded execution's lookahead, so a sharded replay is
  /// possible whenever the recorded delays were bounded away from zero.
  Duration min_delay() const override { return min_delay_; }

  /// Per-directed-edge refinement: the smallest recorded gap on that edge
  /// alone.  A recorded execution is a finite set of deliveries, so each
  /// edge certifies its own (usually much larger) lookahead — a sharded
  /// replay gets per-edge windows for free, even when the recording
  /// policy itself could only certify a global bound.  Edges with no
  /// recorded deliveries fall back to the global minimum (a replayed run
  /// that sends on such an edge mismatches anyway).
  Duration min_delay(NodeId from, NodeId to) const override;

  /// Deliveries matched so far (across all edges); a healthy full replay
  /// ends with deliveries_matched() == log->deliveries.size().
  std::uint64_t deliveries_matched() const {
    return matched_.load(std::memory_order_relaxed);
  }

 private:
  struct EdgeQueue {
    std::deque<ExecutionLog::DeliveryEvent> pending;
    std::uint64_t popped = 0;  // deliveries already matched on this edge
    Duration min_gap = 0.0;    // smallest recv - send recorded on this edge
  };

  std::shared_ptr<const ExecutionLog> log_;
  double tolerance_;
  Duration min_delay_ = 0.0;
  // Relaxed atomic: per-edge queues are touched only by the sender's lane
  // (the map itself is immutable after construction), but the global match
  // counter is shared by all lanes.
  std::atomic<std::uint64_t> matched_{0};
  std::map<std::pair<NodeId, NodeId>, EdgeQueue> pending_;
};

}  // namespace tbcs::sim
