// Message delay models ("the adversary chooses delays in [0, T]",
// Section 3; or [T1, T2], Section 8.3).
//
// A policy maps (sender, receiver, send time) to a delivery real time.
// Adversarial policies may inspect the full simulator state (hardware
// clocks) — the adversary of the model is omniscient; algorithms are not.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace tbcs::sim {

class Simulator;  // defined in sim/simulator.hpp

/// One planned copy of a message on one arc: when it arrives and how the
/// channel mangled it.  Produced by plan_deliveries() (fault-injecting
/// policies); an honest channel plans exactly one unperturbed copy.
struct PlannedDelivery {
  RealTime at = 0.0;
  double logical_delta = 0.0;      // payload corruption, added to m.logical
  double logical_max_delta = 0.0;  // added to m.logical_max
};

class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;

  /// Returns the real time at which a message sent by `from` to `to` at
  /// `send_time` is delivered.  Must be >= send_time.
  virtual RealTime delivery_time(NodeId from, NodeId to, RealTime send_time,
                                 const Simulator& sim) = 0;

  /// Faulty-channel extension: appends zero or more deliveries to `out`
  /// (zero = the channel dropped the message, several = duplication).
  /// Consulted by the simulator only when plans_deliveries() is true, so
  /// honest policies stay on the single-virtual-call fast path.
  virtual void plan_deliveries(NodeId from, NodeId to, RealTime send_time,
                               const Simulator& sim,
                               std::vector<PlannedDelivery>& out) {
    out.push_back(PlannedDelivery{delivery_time(from, to, send_time, sim)});
  }

  /// True when plan_deliveries() may drop, duplicate, or corrupt.  Cached
  /// by the simulator at set_delay_policy() time.
  virtual bool plans_deliveries() const { return false; }

  /// A guaranteed lower bound on every delivery delay this policy can
  /// produce (the sharded engine's lookahead: the conservative time window
  /// can safely extend min_delay() past the earliest pending event).
  /// Policies that cannot certify a positive bound return 0.0, which
  /// disables sharded execution.
  virtual Duration min_delay() const { return 0.0; }

  /// Per-edge refinement of min_delay(): a guaranteed lower bound on the
  /// delay of any message sent from `from` to `to`.  The sharded engine
  /// derives each lane's safe horizon from the bounds of its own cut and
  /// intra-shard arcs, so an edge with a larger certified bound buys a
  /// larger window even when some other edge is fast.  Must satisfy
  /// min_delay(from, to) >= min_delay() for every arc; the default is the
  /// global bound.
  virtual Duration min_delay(NodeId from, NodeId to) const {
    (void)from;
    (void)to;
    return min_delay();
  }

  /// Called once by the simulator before the first event, with the node
  /// count.  Randomized policies materialize their per-sender streams here
  /// so that concurrent shards never share (or lazily grow) RNG state.
  virtual void prepare(NodeId num_nodes) { (void)num_nodes; }
};

/// Every message takes exactly `delay` time.
class FixedDelay final : public DelayPolicy {
 public:
  explicit FixedDelay(Duration delay) : delay_(delay) {}
  RealTime delivery_time(NodeId, NodeId, RealTime send_time,
                         const Simulator&) override {
    return send_time + delay_;
  }
  Duration min_delay() const override { return delay_; }

 private:
  Duration delay_;
};

namespace detail {

/// Per-sender RNG streams: stream v is a pure function of (seed, v), and
/// every draw for messages sent by v happens in v's own processing order —
/// so the draw sequence is independent of how sends from *different* nodes
/// interleave (serial vs sharded runs see identical delays).  Streams are
/// materialized up front by prepare(); the lazy path only serves policies
/// used standalone (tests), which are single-threaded.
class PerSenderStreams {
 public:
  explicit PerSenderStreams(std::uint64_t seed) : root_(seed) {}

  void materialize(NodeId num_nodes) {
    while (streams_.size() < static_cast<std::size_t>(num_nodes)) {
      streams_.push_back(root_.split(streams_.size() + 1));
    }
  }

  Rng& stream(NodeId from) {
    const auto idx = static_cast<std::size_t>(from);
    if (idx >= streams_.size()) materialize(from + 1);
    return streams_[idx];
  }

 private:
  Rng root_;
  std::vector<Rng> streams_;
};

}  // namespace detail

/// Delays drawn i.i.d. uniform from [lo, hi].  With lo = 0, hi = T this is
/// the full adversary range chosen at random; with 0 < lo it models the
/// lower-bounded-delay setting of Section 8.3.
class UniformDelay final : public DelayPolicy {
 public:
  UniformDelay(Duration lo, Duration hi, std::uint64_t seed)
      : lo_(lo), hi_(hi), streams_(seed) {}
  RealTime delivery_time(NodeId from, NodeId, RealTime send_time,
                         const Simulator&) override {
    return send_time + streams_.stream(from).uniform(lo_, hi_);
  }
  Duration min_delay() const override { return lo_; }
  void prepare(NodeId num_nodes) override { streams_.materialize(num_nodes); }

 private:
  Duration lo_, hi_;
  detail::PerSenderStreams streams_;
};

/// Direction-dependent delays: messages for which `classify(from, to)`
/// returns true get `fast`, others get `slow`.  This is the standard
/// skew-hiding adversary move (cf. the framed executions of Section 7.2:
/// delays phi*T one way and (1-phi)*T the other).
class DirectionalDelay final : public DelayPolicy {
 public:
  using Classifier = std::function<bool(NodeId from, NodeId to)>;
  DirectionalDelay(Classifier classify, Duration fast, Duration slow)
      : classify_(std::move(classify)), fast_(fast), slow_(slow) {}
  RealTime delivery_time(NodeId from, NodeId to, RealTime send_time,
                         const Simulator&) override {
    return send_time + (classify_(from, to) ? fast_ : slow_);
  }
  Duration min_delay() const override { return std::min(fast_, slow_); }
  /// Per-arc bound is exact: the delay on an arc is a constant.  Slow
  /// arcs certify the full `slow` lookahead to the sharded engine even
  /// when fast arcs exist elsewhere in the graph.
  Duration min_delay(NodeId from, NodeId to) const override {
    return classify_(from, to) ? fast_ : slow_;
  }

 private:
  Classifier classify_;
  Duration fast_, slow_;
};

/// Bimodal delays: mostly fast (`fast` with probability 1 - p_slow), with
/// occasional worst-case excursions to `slow` — the shape of a congested
/// but usually idle network.
class BimodalDelay final : public DelayPolicy {
 public:
  BimodalDelay(Duration fast, Duration slow, double p_slow, std::uint64_t seed)
      : fast_(fast), slow_(slow), p_slow_(p_slow), streams_(seed) {}
  RealTime delivery_time(NodeId from, NodeId, RealTime send_time,
                         const Simulator&) override {
    return send_time +
           (streams_.stream(from).next_double() < p_slow_ ? slow_ : fast_);
  }
  Duration min_delay() const override { return std::min(fast_, slow_); }
  void prepare(NodeId num_nodes) override { streams_.materialize(num_nodes); }

 private:
  Duration fast_, slow_;
  double p_slow_;
  detail::PerSenderStreams streams_;
};

/// Burst delays: alternates between calm windows (delays ~ lo) and burst
/// windows of length `burst_len` every `period` (delays ~ hi) — e.g.
/// periodic bulk transfers saturating the links.
class BurstDelay final : public DelayPolicy {
 public:
  BurstDelay(Duration lo, Duration hi, Duration period, Duration burst_len,
             std::uint64_t seed)
      : lo_(lo), hi_(hi), period_(period), burst_len_(burst_len),
        streams_(seed) {}
  RealTime delivery_time(NodeId from, NodeId, RealTime send_time,
                         const Simulator&) override {
    const double phase = send_time - period_ * std::floor(send_time / period_);
    const bool burst = phase < burst_len_;
    const double base = burst ? hi_ : lo_;
    return send_time + streams_.stream(from).uniform(0.8 * base, base);
  }
  /// The 0.8 factor is not slack: every draw is uniform over
  /// [0.8 * base, base], so a calm-window message (base = min(lo, hi) in
  /// the usual lo < hi parameterization) can realize a delay arbitrarily
  /// close to 0.8 * min(lo, hi).  Certifying anything larger would let the
  /// sharded engine open windows that a legal draw violates; certifying
  /// less would shrink every window for nothing.  The bound is exactly the
  /// infimum of the support — test_policies pins this invariant.
  Duration min_delay() const override { return 0.8 * std::min(lo_, hi_); }
  void prepare(NodeId num_nodes) override { streams_.materialize(num_nodes); }

 private:
  Duration lo_, hi_, period_, burst_len_;
  detail::PerSenderStreams streams_;
};

/// Fully custom policy from a callable.
class CallbackDelay final : public DelayPolicy {
 public:
  using Fn = std::function<RealTime(NodeId, NodeId, RealTime, const Simulator&)>;
  explicit CallbackDelay(Fn fn) : fn_(std::move(fn)) {}
  RealTime delivery_time(NodeId from, NodeId to, RealTime send_time,
                         const Simulator& sim) override {
    return fn_(from, to, send_time, sim);
  }

 private:
  Fn fn_;
};

}  // namespace tbcs::sim
