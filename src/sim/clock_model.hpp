// Clock-model layer: oscillator families and settable clocks.
//
// The paper's model (Section 3) only needs a free-running hardware clock
// whose rate the adversary perturbs inside [1-eps, 1+eps]; hardware_clock
// + drift_policy cover that.  This header promotes the pair into a small
// model layer so gPTP-like scenarios become expressible:
//
//  * OscillatorSpec / make_oscillator() — a first-class drift axis.  The
//    CLI's named drift models (const/walk/square/sine and the new
//    clamped random-walk "rwalk") build through here instead of ad-hoc
//    switch arms, so scenario code and tests construct identical
//    policies from one spec.
//
//  * ClampedRandomWalkDrift — a physical oscillator: the rate takes
//    bounded uniform *increments* (a true random walk) and is clamped to
//    [1-eps, 1+eps].  Unlike RandomWalkDrift (which re-draws the rate
//    i.i.d. each interval) consecutive rates are correlated, which is
//    the regime where long-horizon gradient properties show up.
//
//  * SettableClock — a hardware clock that a sync protocol may *adjust*:
//    discontinuous steps (with optional monotonicity clamping) and
//    bounded-rate slews, the two correction primitives of PTP-style
//    servo loops.  It still inherits the exact piecewise-linear
//    value_at()/time_when_reaches() machinery, so it can drive timers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/drift_policy.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "sim/hardware_clock.hpp"

namespace tbcs::sim {

/// Rate random walk with a saturating clamp at the model bounds:
/// rate' = clamp(rate + U(-step, +step), 1-eps, 1+eps), updated
/// every `interval` with per-node staggered phases (same stagger/split
/// idiom as RandomWalkDrift so streams stay order-independent).
class ClampedRandomWalkDrift final : public DriftPolicy {
 public:
  ClampedRandomWalkDrift(double epsilon, Duration interval, double step,
                         std::uint64_t seed)
      : epsilon_(epsilon), interval_(interval), step_(step), root_(seed) {}

  double initial_rate(NodeId v) override {
    double& r = node_rate(v);
    r = node_rng(v).uniform(1.0 - epsilon_, 1.0 + epsilon_);
    return r;
  }

  std::optional<RateStep> next_change(NodeId v, RealTime now) override {
    Rng& rng = node_rng(v);
    const RealTime at =
        now == 0.0 ? interval_ * rng.next_double() : now + interval_;
    double& r = node_rate(v);
    r += rng.uniform(-step_, step_);
    r = std::min(1.0 + epsilon_, std::max(1.0 - epsilon_, r));
    return RateStep{at, r};
  }

 private:
  Rng& node_rng(NodeId v) {
    const auto idx = static_cast<std::size_t>(v);
    while (rngs_.size() <= idx) {
      rngs_.push_back(root_.split(rngs_.size() + 1));
    }
    return rngs_[idx];
  }
  double& node_rate(NodeId v) {
    const auto idx = static_cast<std::size_t>(v);
    while (rates_.size() <= idx) rates_.push_back(1.0);
    return rates_[idx];
  }

  double epsilon_;
  Duration interval_;
  double step_;
  Rng root_;
  std::vector<Rng> rngs_;
  std::vector<double> rates_;
};

/// One oscillator family = one drift policy, described declaratively so
/// CLI parsing, sweep specs, and tests share a single construction path.
struct OscillatorSpec {
  enum class Kind {
    kConst,        // fixed rate 1 (ignores epsilon)
    kWalk,         // i.i.d. re-draw in [1-eps, 1+eps] per interval
    kClampedWalk,  // correlated bounded-increment walk, clamped
    kSquare,       // two groups alternate between the extreme rates
    kSine,         // discretized per-node-phase sinusoid
  };

  Kind kind = Kind::kConst;
  double epsilon = 0.0;
  /// Rate-change cadence (kWalk/kClampedWalk), full period (kSquare/kSine).
  Duration interval = 0.0;
  /// kClampedWalk: max |rate increment| per change.
  double step = 0.0;
  std::uint64_t seed = 0;
  /// kSquare: nodes with id < fast_below run fast in the first half-period.
  NodeId fast_below = 0;
};

std::unique_ptr<DriftPolicy> make_oscillator(const OscillatorSpec& spec);

/// A hardware clock the protocol may correct — the "settable" clock of
/// IEEE 1588/gPTP stacks.  Corrections never run the clock backwards
/// unless monotonicity enforcement is switched off.
class SettableClock : public HardwareClock {
 public:
  struct Options {
    /// Clamp negative steps so the reported value never decreases
    /// (slewing remains available for smooth negative corrections).
    bool enforce_monotone = true;
  };

  SettableClock() = default;
  explicit SettableClock(Options opt) : opt_(opt) {}

  /// Applies an immediate value step of `offset` at real time `now`.
  /// With monotone enforcement a negative step is clamped to zero and
  /// counted in clamped_adjustment().  Steps cancel an in-flight slew.
  void step(RealTime now, ClockValue offset);

  /// Starts correcting `offset` by running the clock at base_rate *
  /// (1 +/- rate_factor) until the correction is absorbed; rate_factor
  /// must be in (0, 1) so the clock stays strictly monotone even for
  /// negative offsets.  Replaces any in-flight slew (the remainder of
  /// the old correction is dropped).  Call poll() at (or after) each
  /// event to let a finished slew restore the base rate.
  void begin_slew(RealTime now, ClockValue offset, double rate_factor);

  /// Finishes an elapsed slew: restores the base oscillator rate at the
  /// exact completion time.  Safe to call at any time.
  void poll(RealTime now);

  /// Records the oscillator's own rate (from the drift policy) so slews
  /// compose with drift: set_base_rate instead of set_rate keeps an
  /// active slew's offset-absorption accounting correct.
  void set_base_rate(RealTime now, double rate);

  bool slewing() const { return slewing_; }
  RealTime slew_end() const { return slew_end_; }

  std::uint64_t steps() const { return steps_; }
  std::uint64_t slews() const { return slews_; }
  /// Sum of |offset| over all applied corrections (steps + slews).
  double total_adjustment() const { return total_adjustment_; }
  /// Step magnitude suppressed by monotonicity clamping.
  double clamped_adjustment() const { return clamped_adjustment_; }

 private:
  Options opt_;
  bool slewing_ = false;
  RealTime slew_end_ = 0.0;
  double base_rate_ = 1.0;
  std::uint64_t steps_ = 0;
  std::uint64_t slews_ = 0;
  double total_adjustment_ = 0.0;
  double clamped_adjustment_ = 0.0;
};

}  // namespace tbcs::sim
