// The hardware clock H_v of the paper's model (Section 3).
//
// H_v(t) = 0 for t < t_v (the node's initialization time) and
// H_v(t) = \int_{t_v}^{t} h_v(tau) dtau afterwards, where the rate
// h_v(tau) in [1 - eps, 1 + eps] is chosen by the adversary (drift
// policy).  Rates are piecewise constant: they change only at simulation
// events, so H_v is piecewise linear and can be inverted exactly.
#pragma once

#include "sim/types.hpp"

namespace tbcs::sim {

class HardwareClock {
 public:
  HardwareClock() = default;

  /// Starts the clock at real time t (the node's initialization time t_v)
  /// with whatever rate is currently configured.  Before this call
  /// value_at() is 0 everywhere.
  void start(RealTime t);

  bool started() const { return started_; }

  /// Real time at which the clock was started (t_v); kInfinity if not yet.
  RealTime start_time() const { return started_ ? start_time_ : kInfinity; }

  /// H_v(t).  Requires t >= the time of the last rate change.
  ClockValue value_at(RealTime t) const;

  /// Current rate h_v.
  double rate() const { return rate_; }

  /// Changes the rate at real time t (t must not precede the previous
  /// anchor).  The clock value is continuous across the change.
  void set_rate(RealTime t, double rate);

  /// Earliest real time t >= now at which H_v(t) == target, assuming the
  /// current rate persists.  Returns `now` if the target has already been
  /// reached.  The simulator re-asks after every rate change, so the
  /// constant-rate assumption is always valid for scheduled timers.
  RealTime time_when_reaches(ClockValue target, RealTime now) const;

 protected:
  /// Moves the anchor to (t, value), discontinuously if value differs
  /// from value_at(t).  Only settable clocks (sim/clock_model.hpp) may
  /// introduce discontinuities; the paper's H_v stays continuous.
  void reanchor(RealTime t, ClockValue value);

 private:
  void advance_anchor(RealTime t);

  bool started_ = false;
  RealTime start_time_ = 0.0;
  RealTime anchor_time_ = 0.0;   // last rate-change (or start) time
  ClockValue anchor_value_ = 0.0;  // H at anchor_time_
  double rate_ = 1.0;
};

}  // namespace tbcs::sim
