// Basic types shared across the simulation substrate.
//
// Conventions used throughout the library:
//  * Real time ("t" in the paper) is a double in arbitrary units; all
//    experiments use the delay uncertainty T as the unit (T = 1).
//  * Hardware clock values H_v(t) and logical clock values L_v(t) are
//    doubles in the same unit.
//  * Node identifiers are dense integers [0, n).
#pragma once

#include <cstdint>
#include <limits>

namespace tbcs::sim {

/// Dense node identifier.
using NodeId = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// Real (Newtonian) time, in units of the delay uncertainty by convention.
using RealTime = double;

/// A duration of real time.
using Duration = double;

/// A hardware- or logical-clock value.
using ClockValue = double;

/// Positive infinity, used for "never" deadlines.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Comparison tolerance used when checking analytic identities that are
/// exact in real arithmetic but accumulate rounding in double arithmetic.
/// All simulated quantities are O(10^6) at most, so 1e-6 absolute slack is
/// ~1e3 ulps of headroom without masking real logic errors.
inline constexpr double kTimeTolerance = 1e-6;

}  // namespace tbcs::sim
