// Ladder (bucket) event queue: O(1) amortized insert/pop for the large-n
// hot path, ordered by the same schedule-order-independent key as the
// 4-ary heap (event_before: time, source, per-source seq, twin).
//
// Structure (a ladder in the sense of Tang et al.'s ladder queue, adapted
// to the canonical key):
//
//   run_       the *sorted run*: events with time < run_end_, kept sorted
//              descending so back() is the next pop.  Refilled one bucket
//              at a time.
//   rungs_     a stack of rungs.  Each rung splits a time span into
//              equal-width unsorted buckets; rungs_[k+1] refines one
//              oversized bucket of rungs_[k] (spawned lazily when a bucket
//              with more than kSpillAt events reaches the drain position).
//   overflow_  events beyond the outermost rung's span.  When every rung
//              is exhausted the overflow is re-bucketed into a fresh root
//              rung spanning [min, max] of its events (amortized O(1):
//              each event is re-bucketed at most once per rung level, and
//              rung depth is bounded by the spill width floor).
//
// A push appends to the bucket covering its time (O(1)); only events that
// land *below* run_end_ pay a sorted insert into the run, which requires a
// delay shorter than one bucket width — rare by construction, since widths
// adapt to ~kTargetPerBucket events per bucket.  A pop takes the run's
// back; when the run is empty the next non-empty bucket is sorted and
// becomes the run (O(B log B) for B ~ kTargetPerBucket, contiguous data).
//
// Determinism: bucket membership never affects pop order — buckets are
// drained in time order, floor() is monotone (equal times always share a
// bucket, smaller times never land in a later bucket), and each bucket is
// fully sorted by event_before before anything pops.  The pop sequence is
// therefore exactly the heap's, for any push interleaving.
//
// The run doubles as the prefetch window: upcoming() exposes the next few
// pops so the simulator can prefetch their destination node slots.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/types.hpp"

namespace tbcs::sim {

class LadderQueue {
 public:
  struct ImplStats {
    std::uint64_t resorts = 0;    // buckets sorted into the run
    std::uint64_t spills = 0;     // oversized buckets refined into a new rung
    std::uint64_t rebuckets = 0;  // overflow redistributions into a root rung
    std::uint64_t run_inserts = 0;  // pushes that paid a sorted run insert
    std::size_t peak_rungs = 0;
  };

  void push(const Event& e);
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// The next event to pop.  Non-const: lazily advances (sorts the next
  /// bucket) when the run is empty.  Precondition: !empty().
  const Event& top() {
    if (run_.empty()) advance();
    return run_.back();
  }

  Event pop() {
    if (run_.empty()) advance();
    const Event out = run_.back();
    run_.pop_back();
    --size_;
    return out;
  }

  /// Empties the queue (keys are stamped by the producer, so ordering
  /// stays correct across a clear).  Keeps allocated storage.
  void clear();

  /// Pre-sizes the overflow staging area for an expected event population
  /// (the initial burst of per-node rate-change events lands there).
  void reserve(std::size_t expected);

  /// Up to `max_n` upcoming events in reverse pop order (out[count-1] pops
  /// first), contiguous; valid until the next push/pop/clear.  May return
  /// fewer than available when the run is short.  Precondition: !empty().
  const Event* upcoming(std::size_t max_n, std::size_t& count) {
    if (run_.empty()) advance();
    count = run_.size() < max_n ? run_.size() : max_n;
    return run_.data() + (run_.size() - count);
  }

  /// Allocated event slots across the run, all rung buckets, and the
  /// overflow (an O(#buckets) walk; stats-time only).
  std::size_t capacity() const;

  const ImplStats& impl_stats() const { return istats_; }

 private:
  // ~kTargetPerBucket events per bucket keeps the per-pop sort at a few
  // comparisons over contiguous memory; buckets above kSpillAt are refined
  // instead of sorted so one hot bucket never degrades to O(B log B) for
  // large B.  Width refinement stops at kMinWidth (relative to the span)
  // to terminate on pathological same-time pileups.
  static constexpr std::size_t kTargetPerBucket = 8;
  static constexpr std::size_t kSpillAt = 64;
  static constexpr std::size_t kMinBuckets = 32;
  static constexpr std::size_t kMaxBuckets = 4096;

  struct Rung {
    double base = 0.0;
    double width = 1.0;
    std::size_t pos = 0;  // next bucket to drain
    std::vector<std::vector<Event>> buckets;
    double end() const {
      return base + width * static_cast<double>(buckets.size());
    }
  };

  void advance();  // refill run_ from the rungs / overflow
  void spawn_rung(std::vector<Event>&& events, double lo, double hi);

  std::vector<Event> run_;  // sorted descending by event_before
  double run_end_ = -kInfinity;
  std::vector<Rung> rungs_;
  std::vector<Event> overflow_;
  std::vector<std::vector<Event>> bucket_pool_;  // recycled bucket storage
  std::size_t size_ = 0;
  ImplStats istats_;
};

}  // namespace tbcs::sim
