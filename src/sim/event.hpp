// The simulator's event record and its schedule-order-independent key.
//
// Every event carries the key (time, source node, per-source sequence
// number, twin flag), stamped at creation.  Ties at equal times are broken
// by who *caused* the event (and that node's own creation order), never by
// global insertion order — so the pop sequence of any queue ordered by
// event_before() is a pure function of the event set, no matter how pushes
// from different shards (or different queue implementations) interleave.
//
// Events are 48 bytes: message payloads live in a MessageSlab (the event
// carries a handle) and the kind-specific fields overlay each other, so
// moving one inside a heap sift or a bucket sort copies half a cache line
// instead of ~96 bytes.
#pragma once

#include <cstdint>

#include "sim/message_slab.hpp"
#include "sim/types.hpp"

namespace tbcs::sim {

enum class EventKind : std::uint8_t {
  kMessageDelivery,  // message `msg` (slab handle) delivered to `node` over `edge`
  kTimer,            // timer `slot` of `node` fires (synthesized by the wheel)
  kRateChange,       // hardware clock rate of `node` changes to `rate`
  kLinkChange,       // link {node, node2} = edge `edge` goes up/down
  kProbe,            // periodic observer callback
  kCrash,            // `node` crashes: silent, timers suppressed, links cut
  kRecover,          // `node` re-joins: links restored, on_rejoin() runs
  kJoin,             // churn: `node` (re)enters the network (departed bit cleared)
  kLeave,            // churn: `node` departs (silent, timers suppressed)
  kScramble,         // `node`'s algorithm state set adversarially (on_scramble);
                     //   `generation` indexes the simulator's payload table
};

struct Event {
  RealTime time = 0.0;
  std::uint64_t seq = 0;  // per-source creation order (stamped by the simulator)
  union {
    double rate;                // kRateChange: the new hardware rate
    std::uint64_t generation;   // kScramble: index into the payload table
  };
  NodeId node = kInvalidNode;
  union {
    NodeId node2;               // kLinkChange: second endpoint
    MessageSlab::Handle msg;    // kMessageDelivery: payload handle
  };
  std::uint32_t edge = 0xffffffffu;  // kMessageDelivery / kLinkChange
  NodeId source = kInvalidNode;  // causing node (kInvalidNode: system, e.g. probes)
  EventKind kind = EventKind::kProbe;
  std::uint8_t slot = 0;         // kTimer
  bool link_up = true;           // kLinkChange: target state
  bool rate_from_policy = true;  // injected rate changes do not re-poll the policy
  // Sharded engine: the mirror copy of a cut-edge link change, processed in
  // the second endpoint's shard.  Carries the same (time, source, seq) key
  // as its primary; flips only the local link state and runs only the local
  // endpoint's callback, and is excluded from event/trace accounting.
  bool twin = false;

  Event() : rate(1.0), node2(kInvalidNode) {}
};

static_assert(sizeof(Event) <= 48, "Event must stay within one cache line");

/// The canonical event order.  Every queue implementation — the 4-ary
/// heap, the ladder queue, and the timer wheel's merged stream — pops in
/// exactly this order, which is what makes `--queue` and `--shards`
/// output byte-identical.
inline bool event_before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.source != b.source) return a.source < b.source;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.twin < b.twin;  // a cut-edge mirror sorts after its primary
}

}  // namespace tbcs::sim
