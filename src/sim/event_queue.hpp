// The simulator's event queue: an implicit 4-ary heap ordered by the
// schedule-order-independent event key (time, source node, per-source
// sequence number).  Ties at equal times are broken by who *caused* the
// event (and that node's own creation order), never by global insertion
// order — so the pop sequence is a pure function of the event set, no
// matter how pushes from different shards interleave.  Events caused by
// the same source still pop FIFO (same source => increasing seq), which
// is what keeps crash-before-link-down and links-up-before-recover
// orderings intact.
//
// Events are 48 bytes: message payloads live in a MessageSlab (the event
// carries a handle) and the kind-specific fields overlay each other, so a
// sift moves half a cache line instead of ~96 bytes.  The 4-ary layout
// halves the tree depth of the binary heap and keeps each child scan
// inside one or two cache lines, which measures faster than both the
// binary heap and std::priority_queue on simulation workloads.
//
// Timer events carry a generation counter; re-arming or cancelling a timer
// bumps the live generation so stale heap entries are skipped on pop (lazy
// deletion).  The queue reports peak size and push/pop totals for the
// counters layer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/message_slab.hpp"
#include "sim/types.hpp"

namespace tbcs::sim {

enum class EventKind : std::uint8_t {
  kMessageDelivery,  // message `msg` (slab handle) delivered to `node` over `edge`
  kTimer,            // timer `slot` of `node` fires (if generation is live)
  kRateChange,       // hardware clock rate of `node` changes to `rate`
  kLinkChange,       // link {node, node2} = edge `edge` goes up/down
  kProbe,            // periodic observer callback
  kCrash,            // `node` crashes: silent, timers suppressed, links cut
  kRecover,          // `node` re-joins: links restored, on_rejoin() runs
};

struct Event {
  RealTime time = 0.0;
  std::uint64_t seq = 0;  // per-source creation order (stamped by the simulator)
  union {
    double rate;                // kRateChange: the new hardware rate
    std::uint64_t generation;   // kTimer: live-generation stamp
  };
  NodeId node = kInvalidNode;
  union {
    NodeId node2;               // kLinkChange: second endpoint
    MessageSlab::Handle msg;    // kMessageDelivery: payload handle
  };
  std::uint32_t edge = 0xffffffffu;  // kMessageDelivery / kLinkChange
  NodeId source = kInvalidNode;  // causing node (kInvalidNode: system, e.g. probes)
  EventKind kind = EventKind::kProbe;
  std::uint8_t slot = 0;         // kTimer
  bool link_up = true;           // kLinkChange: target state
  bool rate_from_policy = true;  // injected rate changes do not re-poll the policy
  // Sharded engine: the mirror copy of a cut-edge link change, processed in
  // the second endpoint's shard.  Carries the same (time, source, seq) key
  // as its primary; flips only the local link state and runs only the local
  // endpoint's callback, and is excluded from event/trace accounting.
  bool twin = false;

  Event() : rate(1.0), node2(kInvalidNode) {}
};

static_assert(sizeof(Event) <= 48, "Event must stay within one cache line");

class EventQueue {
 public:
  struct Stats {
    std::size_t peak_size = 0;
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
  };

  void push(Event e) {
    heap_.push_back(e);
    sift_up(heap_.size() - 1);
    ++stats_.pushes;
    if (heap_.size() > stats_.peak_size) stats_.peak_size = heap_.size();
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  const Event& top() const { return heap_.front(); }

  Event pop() {
    Event out = heap_.front();
    const Event last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      sift_down(0);
    }
    ++stats_.pops;
    return out;
  }

  /// Empties the queue.  Event keys are stamped by the producer, so
  /// ordering stays correct across a clear.
  void clear() { heap_.clear(); }

  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kArity = 4;

  static bool before(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.source != b.source) return a.source < b.source;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.twin < b.twin;  // a cut-edge mirror sorts after its primary
  }

  void sift_up(std::size_t i) {
    const Event e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) {
    const Event e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Event> heap_;
  Stats stats_;
};

}  // namespace tbcs::sim
