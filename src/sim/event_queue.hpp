// The simulator's event queue, with two interchangeable implementations
// behind one facade:
//
//   kHeap    an implicit 4-ary heap — O(log n) push/pop, unbeatable
//            constants at small n.  The 4-ary layout halves the binary
//            heap's depth and keeps each child scan inside one or two
//            cache lines.
//   kLadder  the ladder/bucket queue (ladder_queue.hpp) — O(1) amortized
//            push/pop, wins once the heap stops fitting in cache
//            (large n).
//
// Both pop in exactly the canonical event_before() order (see event.hpp),
// so the choice is invisible in every output byte; the engine selects
// kLadder automatically above a node-count threshold (--queue overrides).
// Timer events no longer live here at all — node self-timers are handled
// by the TimerWheel and merged with this queue's stream by the simulator.
//
// The dispatch is a branch, not a virtual call: push/pop/top are the
// hottest few instructions in the whole engine, and the branch is
// perfectly predicted (the impl never changes mid-run).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/ladder_queue.hpp"
#include "sim/types.hpp"

namespace tbcs::sim {

enum class QueueImpl : std::uint8_t { kHeap, kLadder };

/// User-facing selection: kAuto resolves to kHeap or kLadder from the
/// topology size when the simulator is constructed.
enum class QueueSelect : std::uint8_t { kAuto, kHeap, kLadder };

class EventQueue {
 public:
  struct Stats {
    std::size_t peak_size = 0;
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
  };

  QueueImpl impl() const { return impl_; }

  /// Switches implementation.  Only legal while empty (the engine sets the
  /// impl per lane before any events are queued).
  void set_impl(QueueImpl impl) {
    if (impl == impl_) return;
    heap_.clear();
    ladder_.clear();
    impl_ = impl;
  }

  void push(const Event& e) {
    if (impl_ == QueueImpl::kHeap) {
      heap_.push_back(e);
      sift_up(heap_.size() - 1);
    } else {
      ladder_.push(e);
    }
    ++stats_.pushes;
    const std::size_t sz = size();
    if (sz > stats_.peak_size) stats_.peak_size = sz;
  }

  bool empty() const {
    return impl_ == QueueImpl::kHeap ? heap_.empty() : ladder_.empty();
  }
  std::size_t size() const {
    return impl_ == QueueImpl::kHeap ? heap_.size() : ladder_.size();
  }

  /// Non-const: the ladder lazily sorts its next bucket on first access.
  const Event& top() {
    return impl_ == QueueImpl::kHeap ? heap_.front() : ladder_.top();
  }

  Event pop() {
    ++stats_.pops;
    if (impl_ == QueueImpl::kLadder) return ladder_.pop();
    Event out = heap_.front();
    const Event last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      sift_down(0);
    }
    return out;
  }

  /// Up to `max_n` upcoming events in reverse pop order (out[count-1] pops
  /// first); used to prefetch destination node slots.  Heap: the root's
  /// children are the candidates for the next pop, order approximate —
  /// fine for prefetching.  Valid until the next push/pop.
  const Event* upcoming(std::size_t max_n, std::size_t& count) {
    if (impl_ == QueueImpl::kLadder) return ladder_.upcoming(max_n, count);
    count = std::min(max_n, heap_.size());
    return heap_.data();
  }

  /// Pre-sizes storage for an expected event population.
  void reserve(std::size_t expected) {
    if (impl_ == QueueImpl::kHeap) {
      heap_.reserve(expected);
    } else {
      ladder_.reserve(expected);
    }
  }

  /// Allocated event slots (stats-time only).
  std::size_t capacity() const {
    return impl_ == QueueImpl::kHeap ? heap_.capacity() : ladder_.capacity();
  }

  /// Empties the queue.  Event keys are stamped by the producer, so
  /// ordering stays correct across a clear.
  void clear() {
    heap_.clear();
    ladder_.clear();
  }

  const Stats& stats() const { return stats_; }

  /// Ladder-internal counters (zeros under kHeap).
  const LadderQueue::ImplStats& ladder_stats() const {
    return ladder_.impl_stats();
  }

 private:
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    const Event e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!event_before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) {
    const Event e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (event_before(heap_[c], heap_[best])) best = c;
      }
      if (!event_before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  QueueImpl impl_ = QueueImpl::kHeap;
  std::vector<Event> heap_;
  LadderQueue ladder_;
  Stats stats_;
};

}  // namespace tbcs::sim
