// The simulator's event queue: a binary heap ordered by (time, sequence
// number), giving deterministic FIFO semantics for simultaneous events.
//
// Timer events carry a generation counter; re-arming or cancelling a timer
// bumps the live generation so stale heap entries are skipped on pop (lazy
// deletion).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "sim/types.hpp"

namespace tbcs::sim {

enum class EventKind : std::uint8_t {
  kMessageDelivery,  // `msg` delivered to `node`
  kTimer,            // timer `slot` of `node` fires (if generation is live)
  kRateChange,       // hardware clock rate of `node` changes to `rate`
  kLinkChange,       // link {node, node2} goes up/down (dynamic topologies)
  kProbe,            // periodic observer callback
};

struct Event {
  RealTime time = 0.0;
  std::uint64_t seq = 0;  // creation order; tie-breaker
  EventKind kind = EventKind::kProbe;
  NodeId node = kInvalidNode;
  NodeId node2 = kInvalidNode;  // second endpoint for kLinkChange
  bool link_up = true;          // target state for kLinkChange
  int slot = 0;
  std::uint64_t generation = 0;
  double rate = 1.0;
  bool rate_from_policy = true;  // injected rate changes do not re-poll the policy
  Message msg;
};

class EventQueue {
 public:
  void push(Event e) {
    e.seq = next_seq_++;
    heap_.push_back(std::move(e));
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  const Event& top() const { return heap_.front(); }

  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    Event e = std::move(heap_.back());
    heap_.pop_back();
    return e;
  }

  void clear() { heap_.clear(); }

 private:
  // Max-heap comparator inverted: true if a fires after b.
  struct After {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tbcs::sim
