// Hardware clock drift models ("rates vary arbitrarily in [1-eps, 1+eps]",
// Section 3).
//
// A drift policy supplies each node's initial rate and a schedule of
// piecewise-constant rate changes.  The simulator turns the schedule into
// kRateChange events and re-schedules pending hardware-time timers across
// each change, so algorithms never observe a discontinuity.
#pragma once

#include <cmath>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace tbcs::sim {

struct RateStep {
  RealTime at = 0.0;
  double rate = 1.0;
};

class DriftPolicy {
 public:
  virtual ~DriftPolicy() = default;

  /// Rate of node v's hardware clock at time 0.
  virtual double initial_rate(NodeId v) = 0;

  /// The next rate change for node v strictly after `now`, if any.
  /// Called once at setup (now = 0) and again after each change fires.
  virtual std::optional<RateStep> next_change(NodeId v, RealTime now) = 0;
};

/// Every clock runs at a fixed (possibly per-node) rate forever.
class ConstantDrift final : public DriftPolicy {
 public:
  explicit ConstantDrift(double rate) : uniform_rate_(rate) {}
  explicit ConstantDrift(std::vector<double> per_node)
      : per_node_(std::move(per_node)) {}

  double initial_rate(NodeId v) override {
    return per_node_.empty() ? uniform_rate_
                             : per_node_[static_cast<std::size_t>(v)];
  }
  std::optional<RateStep> next_change(NodeId, RealTime) override {
    return std::nullopt;
  }

 private:
  double uniform_rate_ = 1.0;
  std::vector<double> per_node_;
};

/// Each node's rate is re-drawn uniformly from [1-eps, 1+eps] every
/// `interval` time units (staggered per node so changes do not align).
class RandomWalkDrift final : public DriftPolicy {
 public:
  RandomWalkDrift(double epsilon, Duration interval, std::uint64_t seed)
      : epsilon_(epsilon), interval_(interval), root_(seed) {}

  double initial_rate(NodeId v) override {
    return node_rng(v).uniform(1.0 - epsilon_, 1.0 + epsilon_);
  }

  std::optional<RateStep> next_change(NodeId v, RealTime now) override {
    Rng& rng = node_rng(v);
    // Stagger the first change; afterwards step by the full interval.
    const RealTime at =
        now == 0.0 ? interval_ * rng.next_double() : now + interval_;
    return RateStep{at, rng.uniform(1.0 - epsilon_, 1.0 + epsilon_)};
  }

 private:
  Rng& node_rng(NodeId v) {
    const auto idx = static_cast<std::size_t>(v);
    while (rngs_.size() <= idx) {
      rngs_.push_back(root_.split(rngs_.size() + 1));
    }
    return rngs_[idx];
  }

  double epsilon_;
  Duration interval_;
  Rng root_;
  std::vector<Rng> rngs_;
};

/// Two node groups alternate between the extreme rates 1+eps and 1-eps
/// every half `period`; group membership via a predicate.  This is the
/// classic worst-case pattern for building up skew between graph regions.
class SquareWaveDrift final : public DriftPolicy {
 public:
  SquareWaveDrift(double epsilon, Duration period,
                  std::function<bool(NodeId)> in_fast_group)
      : epsilon_(epsilon),
        period_(period),
        in_fast_group_(std::move(in_fast_group)) {}

  double initial_rate(NodeId v) override { return rate_at(v, 0.0); }

  std::optional<RateStep> next_change(NodeId v, RealTime now) override {
    const double half = period_ / 2.0;
    const double next = (std::floor(now / half + kTimeTolerance) + 1.0) * half;
    return RateStep{next, rate_at(v, next)};
  }

 private:
  double rate_at(NodeId v, RealTime t) const {
    const bool first_half =
        (static_cast<long long>(std::floor(t / (period_ / 2.0) + kTimeTolerance)) % 2) == 0;
    const bool fast = in_fast_group_(v) == first_half;
    return fast ? 1.0 + epsilon_ : 1.0 - epsilon_;
  }

  double epsilon_;
  Duration period_;
  std::function<bool(NodeId)> in_fast_group_;
};

/// Slowly oscillating drift — the signature of temperature-cycled quartz
/// oscillators.  rate_v(t) = 1 + eps * sin(2 pi t / period + phase_v),
/// discretized into `steps_per_period` piecewise-constant segments (the
/// model's rates are adversarial anyway; the discretization is just
/// another legal rate function).
class SinusoidalDrift final : public DriftPolicy {
 public:
  SinusoidalDrift(double epsilon, Duration period, std::uint64_t seed,
                  int steps_per_period = 16)
      : epsilon_(epsilon),
        period_(period),
        steps_(steps_per_period),
        rng_(seed) {}

  double initial_rate(NodeId v) override { return rate_at(v, 0.0); }

  std::optional<RateStep> next_change(NodeId v, RealTime now) override {
    const double dt = period_ / steps_;
    const double next = (std::floor(now / dt + kTimeTolerance) + 1.0) * dt;
    return RateStep{next, rate_at(v, next)};
  }

 private:
  double phase(NodeId v) {
    const auto idx = static_cast<std::size_t>(v);
    while (phases_.size() <= idx) {
      phases_.push_back(rng_.uniform(0.0, 2.0 * 3.14159265358979323846));
    }
    return phases_[idx];
  }
  double rate_at(NodeId v, RealTime t) {
    return 1.0 + epsilon_ * std::sin(2.0 * 3.14159265358979323846 * t / period_ +
                                     phase(v));
  }

  double epsilon_;
  Duration period_;
  int steps_;
  Rng rng_;
  std::vector<double> phases_;
};

/// Explicit per-node schedule (used by the lower-bound adversaries, whose
/// executions are fully pre-computed).
class ScheduledDrift final : public DriftPolicy {
 public:
  /// steps[v] must be sorted by time; the entry at time 0 (if any) defines
  /// the initial rate, otherwise the rate starts at `default_rate`.
  ScheduledDrift(std::vector<std::vector<RateStep>> steps,
                 double default_rate = 1.0)
      : steps_(std::move(steps)),
        cursor_(steps_.size(), 0),
        default_rate_(default_rate) {}

  double initial_rate(NodeId v) override {
    const auto& s = steps_[static_cast<std::size_t>(v)];
    if (!s.empty() && s.front().at == 0.0) {
      cursor_[static_cast<std::size_t>(v)] = 1;
      return s.front().rate;
    }
    return default_rate_;
  }

  std::optional<RateStep> next_change(NodeId v, RealTime) override {
    const auto idx = static_cast<std::size_t>(v);
    if (cursor_[idx] >= steps_[idx].size()) return std::nullopt;
    return steps_[idx][cursor_[idx]++];
  }

 private:
  std::vector<std::vector<RateStep>> steps_;
  std::vector<std::size_t> cursor_;
  double default_rate_;
};

}  // namespace tbcs::sim
