// Hierarchical timer wheel for periodic node self-timers.
//
// Node timers (one per HClock algorithm slot) are the one event class that
// is routinely *cancelled*: every re-arm, rate re-anchor, and crash used to
// leave a stale generation-tagged copy in the event queue to be popped and
// discarded later.  At n=10^6 that is millions of dead heap entries.  The
// wheel gives timers native O(1) cancel/re-arm instead:
//
//   - 3 levels x 64 slots (6 bits of the tick per level).  Level 0 holds
//     the next 64 ticks at full resolution; level l covers 64^(l+1) ticks
//     at 64^l-tick granularity.  A per-level uint64 occupancy bitmask makes
//     "next non-empty slot" a ctz instruction.
//   - The tick width adapts to the workload at the first arm:
//     ~64 ticks per typical timer deadline, so an arm almost always lands
//     in level 0 and at most one cascade moves it before it fires.
//   - Entries are pool-allocated with a free list; a Handle is a pool
//     index.  Cancel is O(1): the entry's back-pointer (slot + position)
//     lets us swap-remove it from its bucket.
//   - Due entries are drained a tick at a time into `cur_`, sorted
//     descending by the canonical (time, node-as-source, seq) key so the
//     merged queue/wheel pop stream preserves the engine's deterministic
//     order exactly.
//
// Determinism: the fire order is a pure function of the armed set — ticks
// drain in order, same-tick entries are fully sorted before any pops, and
// arms for an already-due tick insert into cur_ in sorted position.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace tbcs::sim {

class TimerWheel {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = 0xffffffffu;

  /// A due timer, carrying the canonical key fields the simulator merges
  /// against the event queue: (time, source=node, seq, twin=false).
  struct Fired {
    RealTime time = 0.0;
    std::uint64_t seq = 0;
    NodeId node = kInvalidNode;
    std::uint8_t slot = 0;
  };

  struct Stats {
    std::uint64_t arms = 0;
    std::uint64_t fires = 0;
    std::uint64_t cancels = 0;
    std::uint64_t cascades = 0;  // level-(l>0) slots redistributed downward
    std::uint64_t rebases = 0;   // full rebuilds from the overflow list
    std::size_t live = 0;
    std::size_t peak_live = 0;
  };

  /// Calibrates the tick width from the first deadline seen, targeting
  /// `members` timers spread over ~level-0's span.  Must be called before
  /// the first arm (the simulator calls it per lane in setup()).
  void configure(std::size_t members) { members_ = members ? members : 1; }

  void reserve(std::size_t expected);

  /// Arms a timer at absolute time `deadline` with pre-stamped sequence
  /// number `seq` (the simulator stamps arms exactly where it used to stamp
  /// timer-event pushes, so keys match the heap engine's).
  Handle arm(RealTime deadline, std::uint64_t seq, NodeId node,
             std::uint8_t slot);

  /// O(1) removal of a pending timer.  `h` must be live (not yet fired).
  void cancel(Handle h);

  /// Key fields of a live (not yet fired) entry.  Used by the sharded
  /// engine's repartition to migrate timers between lane wheels with their
  /// exact (deadline, seq) identity — recomputing either would change the
  /// canonical order.
  Fired entry_info(Handle h) const {
    const Entry& e = pool_[h];
    return Fired{e.time, e.seq, e.node, e.slot};
  }

  bool empty() const { return live_ == 0; }
  std::size_t live() const { return live_; }

  /// Key of the next timer to fire, without popping.  Returns false when
  /// empty.  Advances the wheel (drains ticks into cur_) as needed.
  bool peek(Fired& out);

  /// Pops the next timer to fire.  Precondition: !empty().
  Fired pop();

  const Stats& stats() const { return stats_; }

  /// Allocated entry slots (stats-time only).
  std::size_t capacity() const { return pool_.capacity(); }

 private:
  static constexpr int kLevels = 3;
  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = 1u << kSlotBits;  // 64
  static constexpr std::uint64_t kSlotMask = kSlots - 1;

  enum class Where : std::uint8_t { kFree, kBucket, kOverflow, kCur };

  struct Entry {
    RealTime time = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t tick = 0;
    NodeId node = kInvalidNode;
    std::uint8_t slot = 0;
    Where where = Where::kFree;
    std::uint16_t level = 0;      // kBucket: wheel level
    std::uint32_t bslot = 0;      // kBucket: slot index within the level
    std::uint32_t pos = 0;        // back-pointer: index within its vector
  };

  std::uint64_t tick_of(RealTime t) const {
    const double q = t * inv_width_;
    if (!(q > 0.0)) return 0;
    // Infinite / absurd deadlines (a timer that never fires) park in the
    // overflow with a sentinel tick instead of overflowing the cast.
    if (q >= 9.0e18) return 0x7fffffffffffffffull;
    return static_cast<std::uint64_t>(q);
  }

  void place(Handle h);             // file an entry by its tick
  void drain_slot(int level, std::uint32_t s);
  void advance();                   // refill cur_ from the wheel
  void rebase();                    // rebuild levels from overflow_
  void insert_cur_sorted(Handle h);
  void remove_from(std::vector<Handle>& v, std::uint32_t pos);

  std::vector<Entry> pool_;
  std::vector<Handle> free_;
  std::vector<Handle> buckets_[kLevels][kSlots];
  std::uint64_t occ_[kLevels] = {0, 0, 0};
  std::vector<Handle> overflow_;  // ticks beyond level kLevels-1's span
  std::vector<Handle> cur_;       // due entries, sorted descending by key
  std::uint64_t cur_tick_ = 0;
  double width_ = 0.0;            // 0: not yet calibrated
  double inv_width_ = 0.0;
  std::size_t members_ = 1;
  std::size_t live_ = 0;
  Stats stats_;
};

}  // namespace tbcs::sim
