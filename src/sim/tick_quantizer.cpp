#include "sim/tick_quantizer.hpp"

#include <cassert>
#include <cmath>

namespace tbcs::sim {

namespace {
// Hardware values sit within one ulp of tick boundaries after the timer
// math round-trips; nudge before flooring so exact boundaries stay exact.
constexpr double kGrid = 1e-9;
}  // namespace

// Services proxy: quantizes the clock reading and rounds timer targets up
// to tick boundaries before delegating to the host.
class TickQuantizedNode::TickServices final : public NodeServices {
 public:
  TickServices(const TickQuantizedNode& owner, NodeServices& host)
      : owner_(owner), host_(host) {}

  NodeId id() const override { return host_.id(); }
  ClockValue hardware_now() const override {
    return owner_.quantize(host_.hardware_now());
  }
  void broadcast(const Message& m) override { host_.broadcast(m); }
  void set_timer(int slot, ClockValue target) override {
    assert(slot < kTickSlot && "last slot is reserved for the tick scheduler");
    // Round the target up to the next tick boundary (on-grid targets stay).
    const double f = 1.0 / owner_.tick_length();
    host_.set_timer(slot, std::ceil(target * f - kGrid) / f);
  }
  void cancel_timer(int slot) override { host_.cancel_timer(slot); }

 private:
  const TickQuantizedNode& owner_;
  NodeServices& host_;
};

TickQuantizedNode::TickQuantizedNode(std::unique_ptr<Node> inner,
                                     double frequency)
    : inner_(std::move(inner)), frequency_(frequency) {
  assert(frequency_ > 0.0);
}

ClockValue TickQuantizedNode::quantize(ClockValue h) const {
  return std::floor(h * frequency_ + kGrid) / frequency_;
}

ClockValue TickQuantizedNode::next_tick_after(ClockValue h) const {
  return (std::floor(h * frequency_ + kGrid) + 1.0) / frequency_;
}

void TickQuantizedNode::on_wake(NodeServices& sv, const Message* by_message) {
  // Waking is itself an action; the model starts the clock at tick 0, so
  // the wake-up processing happens on-grid already (H = 0).
  TickServices ts(*this, sv);
  inner_->on_wake(ts, by_message);
}

void TickQuantizedNode::on_message(NodeServices& sv, const Message& m) {
  // Buffer until the next tick: recipients "can act upon" a message only
  // at a tick boundary.
  pending_.push_back(m);
  if (!tick_armed_) {
    sv.set_timer(kTickSlot, next_tick_after(sv.hardware_now()));
    tick_armed_ = true;
  }
}

void TickQuantizedNode::drain(NodeServices& sv) {
  TickServices ts(*this, sv);
  std::vector<Message> batch;
  batch.swap(pending_);
  for (const Message& m : batch) inner_->on_message(ts, m);
}

void TickQuantizedNode::on_timer(NodeServices& sv, int slot) {
  if (slot == kTickSlot) {
    tick_armed_ = false;
    drain(sv);
    return;
  }
  TickServices ts(*this, sv);
  inner_->on_timer(ts, slot);
}

void TickQuantizedNode::on_link_change(NodeServices& sv, NodeId neighbor,
                                       bool up) {
  TickServices ts(*this, sv);
  inner_->on_link_change(ts, neighbor, up);
}

void TickQuantizedNode::on_rejoin(NodeServices& sv) {
  // Messages buffered before the outage are from dead links; drop them and
  // let the inner algorithm re-join on-grid.
  pending_.clear();
  TickServices ts(*this, sv);
  inner_->on_rejoin(ts);
}

ClockValue TickQuantizedNode::logical_at(ClockValue hardware_now) const {
  return inner_->logical_at(quantize(hardware_now));
}

double TickQuantizedNode::rate_multiplier() const {
  return inner_->rate_multiplier();
}

}  // namespace tbcs::sim
