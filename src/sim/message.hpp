// Synchronization messages.
//
// A^opt sends <L_v, L_v^max> (Algorithm 1).  Variants and baselines reuse
// the same frame with the aux/tag fields, so the substrate needs a single
// message type.
#pragma once

#include "sim/types.hpp"

namespace tbcs::sim {

struct Message {
  /// Originating node (the model lets receivers distinguish neighbors,
  /// e.g. via port numbers; we use ids).
  NodeId sender = kInvalidNode;

  /// The sender's logical clock value L_v at send time.
  ClockValue logical = 0.0;

  /// The sender's estimate L_v^max of the maximum clock value at send time.
  ClockValue logical_max = 0.0;

  /// Variant-specific extra payload (e.g. quantized deltas for the
  /// bounded-bit codec of Section 6.2, or the real-time reference value in
  /// external synchronization).
  double aux = 0.0;

  /// Variant-specific discriminator; 0 for plain A^opt messages.
  int tag = 0;

  /// Addressee for request/response exchanges (e.g. the ping/pong round
  /// trips of Section 8.1); broadcasts that answer a specific node set
  /// this, everyone else ignores the response part.
  NodeId target = kInvalidNode;
};

}  // namespace tbcs::sim
