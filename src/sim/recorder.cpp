#include "sim/recorder.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <tuple>

namespace tbcs::sim {

namespace {
constexpr char kMagic[] = "tbcs-execution-log v1";
}

// ---- serialization -----------------------------------------------------------

void ExecutionLog::canonicalize() {
  std::sort(rate_events.begin(), rate_events.end(),
            [](const RateEvent& a, const RateEvent& b) {
              return std::tie(a.at, a.node, a.rate) <
                     std::tie(b.at, b.node, b.rate);
            });
  std::sort(deliveries.begin(), deliveries.end(),
            [](const DeliveryEvent& a, const DeliveryEvent& b) {
              return std::tie(a.send, a.from, a.to, a.recv) <
                     std::tie(b.send, b.from, b.to, b.recv);
            });
}

void ExecutionLog::save(std::ostream& os) const {
  ExecutionLog canon = *this;
  canon.canonicalize();
  os.precision(17);
  os << kMagic << '\n';
  os << "rates " << canon.initial_rates.size() << '\n';
  for (const double r : canon.initial_rates) os << r << '\n';
  os << "rate_events " << canon.rate_events.size() << '\n';
  for (const auto& e : canon.rate_events) {
    os << e.node << ' ' << e.at << ' ' << e.rate << '\n';
  }
  os << "deliveries " << canon.deliveries.size() << '\n';
  for (const auto& d : canon.deliveries) {
    os << d.from << ' ' << d.to << ' ' << d.send << ' ' << d.recv << '\n';
  }
}

ExecutionLog ExecutionLog::load(std::istream& is) {
  const auto fail = [](const std::string& what) -> ExecutionLog {
    throw std::runtime_error("ExecutionLog::load: " + what);
  };
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    return fail("bad magic line");
  }
  ExecutionLog log;
  std::string keyword;
  std::size_t count = 0;

  if (!(is >> keyword >> count) || keyword != "rates") return fail("rates");
  log.initial_rates.resize(count);
  for (auto& r : log.initial_rates) {
    if (!(is >> r)) return fail("rate value");
  }

  if (!(is >> keyword >> count) || keyword != "rate_events") {
    return fail("rate_events");
  }
  log.rate_events.resize(count);
  for (auto& e : log.rate_events) {
    if (!(is >> e.node >> e.at >> e.rate)) return fail("rate event");
  }

  if (!(is >> keyword >> count) || keyword != "deliveries") {
    return fail("deliveries");
  }
  log.deliveries.resize(count);
  for (auto& d : log.deliveries) {
    if (!(is >> d.from >> d.to >> d.send >> d.recv)) return fail("delivery");
  }
  return log;
}

// ---- recording ------------------------------------------------------------------

double RecordingDriftPolicy::initial_rate(NodeId v) {
  const double rate = inner_->initial_rate(v);
  std::lock_guard<std::mutex> lock(mu_);
  auto& rates = log_->initial_rates;
  if (rates.size() <= static_cast<std::size_t>(v)) {
    rates.resize(static_cast<std::size_t>(v) + 1, 1.0);
  }
  rates[static_cast<std::size_t>(v)] = rate;
  return rate;
}

std::optional<RateStep> RecordingDriftPolicy::next_change(NodeId v,
                                                          RealTime now) {
  const auto step = inner_->next_change(v, now);
  if (step) {
    std::lock_guard<std::mutex> lock(mu_);
    log_->rate_events.push_back({v, step->at, step->rate});
  }
  return step;
}

RealTime RecordingDelayPolicy::delivery_time(NodeId from, NodeId to,
                                             RealTime send_time,
                                             const Simulator& sim) {
  const RealTime recv = inner_->delivery_time(from, to, send_time, sim);
  {
    std::lock_guard<std::mutex> lock(mu_);
    log_->deliveries.push_back({from, to, send_time, recv});
  }
  return recv;
}

// ---- replay ---------------------------------------------------------------------

ReplayDriftPolicy::ReplayDriftPolicy(std::shared_ptr<const ExecutionLog> log)
    : log_(std::move(log)) {
  for (const auto& e : log_->rate_events) pending_[e.node].push_back(e);
}

double ReplayDriftPolicy::initial_rate(NodeId v) {
  const auto idx = static_cast<std::size_t>(v);
  if (idx >= log_->initial_rates.size()) return 1.0;
  return log_->initial_rates[idx];
}

std::optional<RateStep> ReplayDriftPolicy::next_change(NodeId v, RealTime) {
  auto it = pending_.find(v);
  if (it == pending_.end() || it->second.empty()) return std::nullopt;
  const auto e = it->second.front();
  it->second.pop_front();
  return RateStep{e.at, e.rate};
}

ReplayDelayPolicy::ReplayDelayPolicy(std::shared_ptr<const ExecutionLog> log,
                                     double tolerance)
    : log_(std::move(log)), tolerance_(tolerance) {
  double lo = std::numeric_limits<double>::infinity();
  for (const auto& d : log_->deliveries) {
    EdgeQueue& q = pending_[{d.from, d.to}];
    const double gap = d.recv - d.send;
    q.min_gap = q.pending.empty() ? gap : std::min(q.min_gap, gap);
    q.pending.push_back(d);
    lo = std::min(lo, gap);
  }
  min_delay_ = (std::isfinite(lo) && lo > 0.0) ? lo : 0.0;
}

Duration ReplayDelayPolicy::min_delay(NodeId from, NodeId to) const {
  const auto it = pending_.find({from, to});
  if (it == pending_.end() || !(it->second.min_gap > 0.0)) return min_delay_;
  return std::max(min_delay_, it->second.min_gap);
}

RealTime ReplayDelayPolicy::delivery_time(NodeId from, NodeId to,
                                          RealTime send_time,
                                          const Simulator&) {
  const std::string edge_name =
      std::to_string(from) + "->" + std::to_string(to);
  auto it = pending_.find({from, to});
  if (it == pending_.end() || it->second.pending.empty()) {
    const std::uint64_t seen = it == pending_.end() ? 0 : it->second.popped;
    throw ReplayMismatch(
        "replay diverged on edge " + edge_name + ": delivery #" +
        std::to_string(seen + 1) + " (send at t=" + std::to_string(send_time) +
        ") has no recorded counterpart — the recording has only " +
        std::to_string(seen) + " deliveries on this edge");
  }
  EdgeQueue& q = it->second;
  const auto d = q.pending.front();
  q.pending.pop_front();
  ++q.popped;
  if (std::abs(d.send - send_time) > tolerance_) {
    throw ReplayMismatch(
        "replay diverged on edge " + edge_name + ": delivery #" +
        std::to_string(q.popped) + " send time recorded " +
        std::to_string(d.send) + " vs replayed " + std::to_string(send_time) +
        " (|delta| = " + std::to_string(std::abs(d.send - send_time)) +
        " > tolerance " + std::to_string(tolerance_) + ")");
  }
  matched_.fetch_add(1, std::memory_order_relaxed);
  return d.recv;
}

}  // namespace tbcs::sim
