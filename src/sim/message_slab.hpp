// Chunked, delivery-time-binned storage for in-flight message payloads.
//
// Events used to embed a full Message (40 bytes), making every heap
// sift copy ~96 bytes.  The slab keeps payloads stationary and hands the
// queue a 4-byte handle.  PR 7 replaces the old LIFO free list (which
// scatters messages that fire together all over the arena) with bump
// allocation inside fixed 512-message chunks, binned by delivery time:
// put(m, t) appends to the current chunk of t's time bin, so payloads that
// will be taken in the same window sit contiguously and the delivery loop
// walks, not hops.  Chunks recycle whole: a chunk returns to the free list
// once fully filled and fully drained, so steady state allocates nothing.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/message.hpp"

namespace tbcs::sim {

class MessageSlab {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = 0xffffffffu;

  /// Stores a copy of `m`, binned by delivery time `t`; the handle stays
  /// valid until take()/clear().
  Handle put(const Message& m, double t) {
    const double q = t * kInvBinWidth;
    const std::size_t bin = (q > 0.0 && q < 9.0e18)
                                ? (static_cast<std::uint64_t>(q) & (kBins - 1))
                                : 0;
    std::uint32_t c = cur_[bin];
    if (c == kNoChunk || chunks_[c]->bump == kChunk) {
      c = grab_chunk();
      cur_[bin] = c;
    }
    Chunk& ch = *chunks_[c];
    const std::uint32_t off = ch.bump++;
    ch.msgs[off] = m;
    ++ch.live;
    ++live_;
    return c * kChunk + off;
  }

  /// Legacy entry point for callers without a delivery time.
  Handle put(const Message& m) { return put(m, 0.0); }

  /// Removes and returns the payload; the chunk recycles once drained.
  Message take(Handle h) {
    Chunk& ch = *chunks_[h / kChunk];
    assert(ch.live > 0);
    const Message out = ch.msgs[h % kChunk];
    --live_;
    if (--ch.live == 0 && ch.bump == kChunk) recycle(h / kChunk);
    return out;
  }

  const Message& peek(Handle h) const {
    assert(h / kChunk < chunks_.size());
    return chunks_[h / kChunk]->msgs[h % kChunk];
  }

  /// Drops all payloads (used together with EventQueue::clear()).
  void clear() {
    free_.clear();
    for (std::uint32_t c = 0; c < chunks_.size(); ++c) {
      chunks_[c]->bump = 0;
      chunks_[c]->live = 0;
      free_.push_back(c);
    }
    for (std::uint32_t& c : cur_) c = kNoChunk;
    live_ = 0;
  }

  /// Pre-sizes the arena for an expected in-flight population.
  void reserve(std::size_t expected) {
    const std::size_t want = (expected + kChunk - 1) / kChunk;
    while (chunks_.size() < want) {
      chunks_.push_back(std::make_unique<Chunk>());
      free_.push_back(static_cast<std::uint32_t>(chunks_.size() - 1));
    }
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return chunks_.size() * kChunk; }

 private:
  static constexpr std::uint32_t kChunk = 512;
  static constexpr std::size_t kBins = 8;
  // ~one bin per typical delay quantum; only locality depends on this.
  static constexpr double kInvBinWidth = 4.0;
  static constexpr std::uint32_t kNoChunk = 0xffffffffu;

  struct Chunk {
    Message msgs[kChunk];
    std::uint32_t bump = 0;  // next unwritten slot
    std::uint32_t live = 0;  // stored minus taken
  };

  std::uint32_t grab_chunk() {
    if (!free_.empty()) {
      const std::uint32_t c = free_.back();
      free_.pop_back();
      chunks_[c]->bump = 0;
      chunks_[c]->live = 0;
      return c;
    }
    chunks_.push_back(std::make_unique<Chunk>());
    return static_cast<std::uint32_t>(chunks_.size() - 1);
  }

  void recycle(std::uint32_t c) {
    // A bin may still point at the (full) chunk; detach it so the next
    // owner's bump restart can't interleave two bins in one chunk.
    for (std::uint32_t& cc : cur_) {
      if (cc == c) cc = kNoChunk;
    }
    free_.push_back(c);
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t cur_[kBins] = {kNoChunk, kNoChunk, kNoChunk, kNoChunk,
                               kNoChunk, kNoChunk, kNoChunk, kNoChunk};
  std::size_t live_ = 0;
};

}  // namespace tbcs::sim
