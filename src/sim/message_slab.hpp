// Free-listed storage for in-flight message payloads.
//
// Events used to embed a full Message (40 bytes), making every heap
// sift copy ~96 bytes.  The slab keeps payloads stationary and hands the
// queue a 4-byte handle; slots are recycled through a LIFO free list so a
// steady-state simulation allocates nothing after warm-up.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/message.hpp"

namespace tbcs::sim {

class MessageSlab {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = 0xffffffffu;

  /// Stores a copy of `m`; the handle stays valid until take()/clear().
  Handle put(const Message& m) {
    if (free_.empty()) {
      slots_.push_back(m);
      return static_cast<Handle>(slots_.size() - 1);
    }
    const Handle h = free_.back();
    free_.pop_back();
    slots_[h] = m;
    return h;
  }

  /// Removes and returns the payload, recycling the slot.
  Message take(Handle h) {
    assert(h < slots_.size());
    free_.push_back(h);
    return slots_[h];
  }

  const Message& peek(Handle h) const {
    assert(h < slots_.size());
    return slots_[h];
  }

  /// Drops all payloads (used together with EventQueue::clear()).
  void clear() {
    slots_.clear();
    free_.clear();
  }

  std::size_t live() const { return slots_.size() - free_.size(); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<Message> slots_;
  std::vector<Handle> free_;
};

}  // namespace tbcs::sim
