#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/flight_recorder.hpp"

namespace tbcs::sim {

// NodeServices implementation handed to node callbacks; one instance lives
// for the simulator's lifetime and is re-pinned to the calling node, so the
// per-event switch constructs nothing.
class Simulator::ServicesImpl final : public NodeServices {
 public:
  explicit ServicesImpl(Simulator& sim) : sim_(sim) {}

  NodeServices& pin(NodeId v) {
    v_ = v;
    return *this;
  }

  NodeId id() const override { return v_; }
  ClockValue hardware_now() const override {
    return sim_.per_node_[static_cast<std::size_t>(v_)].clock.value_at(sim_.now_);
  }
  void broadcast(const Message& m) override { sim_.do_broadcast(v_, m); }
  void set_timer(int slot, ClockValue target) override {
    sim_.arm_timer(v_, slot, target);
  }
  void cancel_timer(int slot) override { sim_.disarm_timer(v_, slot); }

 private:
  Simulator& sim_;
  NodeId v_ = kInvalidNode;
};

Simulator::Simulator(const graph::Graph& g, SimConfig cfg)
    : graph_(g),
      csr_(g.csr()),
      cfg_(cfg),
      per_node_(static_cast<std::size_t>(g.num_nodes())),
      link_up_(g.num_edges(), 1),
      drift_(std::make_shared<ConstantDrift>(1.0)),
      delay_(std::make_shared<FixedDelay>(0.0)),
      services_(std::make_unique<ServicesImpl>(*this)) {}

Simulator::~Simulator() = default;

void Simulator::set_node(NodeId v, std::unique_ptr<Node> node) {
  assert(!setup_done_ && "nodes must be installed before the first run");
  per_node_[static_cast<std::size_t>(v)].node = std::move(node);
}

void Simulator::set_all_nodes(
    const std::function<std::unique_ptr<Node>(NodeId)>& factory) {
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) set_node(v, factory(v));
}

void Simulator::set_drift_policy(std::shared_ptr<DriftPolicy> policy) {
  assert(!setup_done_);
  drift_ = std::move(policy);
}

void Simulator::set_delay_policy(std::shared_ptr<DelayPolicy> policy) {
  delay_ = std::move(policy);
  delay_plans_ = delay_->plans_deliveries();
}

void Simulator::set_observer(Observer observer) { observer_ = std::move(observer); }

ClockValue Simulator::logical(NodeId v) const {
  const PerNode& pn = per_node_[static_cast<std::size_t>(v)];
  if (!pn.awake) return 0.0;
  return pn.node->logical_at(pn.clock.value_at(now_));
}

void Simulator::setup() {
  if (setup_done_) return;
  setup_done_ = true;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    PerNode& pn = per_node_[static_cast<std::size_t>(v)];
    if (!pn.node) {
      throw std::logic_error("Simulator: node " + std::to_string(v) +
                             " has no algorithm installed");
    }
    pn.clock.set_rate(0.0, drift_->initial_rate(v));
    schedule_next_rate_change(v, 0.0);
  }
  if (cfg_.wake_all_at_zero) {
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) wake_node(v, nullptr);
  } else {
    wake_node(cfg_.root, nullptr);
    for (const NodeId v : cfg_.extra_roots) {
      if (!per_node_[static_cast<std::size_t>(v)].awake) wake_node(v, nullptr);
    }
  }
  if (cfg_.probe_interval > 0.0) {
    Event probe;
    probe.time = cfg_.probe_interval;
    probe.kind = EventKind::kProbe;
    queue_.push(probe);
  }
}

void Simulator::run_until(RealTime t_end) {
  setup();
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event e = queue_.pop();
    assert(e.time >= now_ - kTimeTolerance && "event queue went backwards");
    now_ = std::max(now_, e.time);
    process(e);
  }
  now_ = std::max(now_, t_end);
}

void Simulator::process(Event& e) {
  ++events_processed_;
  // Flight-recorder hooks: with no recorder attached this is one pointer
  // test per event; the fast/slow-mode sampling below runs only when a
  // recorder is listening, so A^opt mode transitions cost nothing to
  // untraced runs.
  double mult_before = std::numeric_limits<double>::quiet_NaN();
  if (obs::kTraceCompiled && recorder_ != nullptr &&
      (e.kind == EventKind::kMessageDelivery || e.kind == EventKind::kTimer)) {
    const PerNode& pn = per_node_[static_cast<std::size_t>(e.node)];
    if (pn.awake && !pn.crashed) mult_before = pn.node->rate_multiplier();
  }
  bool observable = true;
  last_event_.kind = e.kind;
  last_event_.node = kInvalidNode;
  last_event_.node2 = kInvalidNode;
  last_event_.woke = false;
  switch (e.kind) {
    case EventKind::kMessageDelivery: {
      // Copy out before dispatch: node callbacks may broadcast, which
      // grows the slab and would invalidate a held reference.
      const Message m = slab_.take(e.msg);
      PerNode& pn = per_node_[static_cast<std::size_t>(e.node)];
      if (!link_up_[e.edge] || pn.crashed) {
        ++messages_dropped_;  // link down while in flight, or receiver dead
        observable = false;
        break;
      }
      ++messages_delivered_;
      last_event_.node = e.node;
      if (!pn.awake) {
        last_event_.woke = true;
        wake_node(e.node, &m);
      } else {
        pn.node->on_message(services_->pin(e.node), m);
      }
      break;
    }
    case EventKind::kTimer: {
      PerNode& pn = per_node_[static_cast<std::size_t>(e.node)];
      TimerState& ts = pn.timers[e.slot];
      if (pn.crashed) {
        // A crashed node's callbacks are suppressed; with no callback there
        // is no re-arm, so each armed slot costs one pop per crash instead
        // of wakeups forever.  Recovery re-anchors the armed slots.
        ++stale_timer_pops_;
        observable = false;
        break;
      }
      if (!ts.armed || ts.generation != e.generation) {
        ++stale_timer_pops_;
        observable = false;  // stale heap entry (lazy deletion)
        break;
      }
      ts.armed = false;
      last_event_.node = e.node;
      pn.node->on_timer(services_->pin(e.node), e.slot);
      break;
    }
    case EventKind::kRateChange: {
      last_event_.node = e.node;
      apply_rate_change(e.node, e.rate);
      if (e.rate_from_policy) schedule_next_rate_change(e.node, e.time);
      break;
    }
    case EventKind::kLinkChange: {
      last_event_.node = e.node;
      last_event_.node2 = e.node2;
      apply_link_change(e.node, e.node2, e.edge, e.link_up);
      break;
    }
    case EventKind::kProbe: {
      Event probe;
      probe.time = e.time + cfg_.probe_interval;
      probe.kind = EventKind::kProbe;
      queue_.push(probe);
      break;
    }
    case EventKind::kCrash: {
      PerNode& pn = per_node_[static_cast<std::size_t>(e.node)];
      if (pn.crashed) {
        observable = false;  // double crash: no-op
        break;
      }
      pn.crashed = true;
      ++crashes_;
      last_event_.node = e.node;  // leaves the awake set at this instant
      break;
    }
    case EventKind::kRecover: {
      PerNode& pn = per_node_[static_cast<std::size_t>(e.node)];
      if (!pn.crashed) {
        observable = false;  // recovery without a crash: no-op
        break;
      }
      pn.crashed = false;
      ++recoveries_;
      last_event_.node = e.node;  // re-enters the awake set: fold its clock
      if (pn.awake) {
        // Re-anchor every armed timer (their heap entries were consumed or
        // invalidated during the outage), then run the re-join handshake.
        for (int slot = 0; slot < kMaxTimerSlots; ++slot) {
          TimerState& ts = pn.timers[slot];
          if (!ts.armed) continue;
          ++ts.generation;
          schedule_timer_event(e.node, slot);
        }
        pn.node->on_rejoin(services_->pin(e.node));
      }
      break;
    }
  }
  if (obs::kTraceCompiled && recorder_ != nullptr) {
    trace_event(e, observable, mult_before);
  }
  if (observable && observer_) observer_(*this, now_);
}

void Simulator::trace_event(const Event& e, bool observable,
                            double mult_before) {
  using obs::TracePoint;
  const auto qsize = static_cast<std::uint32_t>(
      queue_.size() < 0xffffffffu ? queue_.size() : 0xffffffffu);
  TracePoint tp = TracePoint::kProbe;
  std::uint16_t flags = 0;
  double a = 0.0;
  double b = 0.0;
  switch (e.kind) {
    case EventKind::kMessageDelivery:
      tp = observable ? TracePoint::kDeliver : TracePoint::kDrop;
      break;
    case EventKind::kTimer:
      tp = observable ? TracePoint::kTimerFire : TracePoint::kStaleTimer;
      break;
    case EventKind::kRateChange:
      tp = TracePoint::kRateChange;
      a = e.rate;
      b = hardware(e.node);
      break;
    case EventKind::kLinkChange:
      tp = TracePoint::kLinkChange;
      if (e.link_up) flags |= obs::kFlagLinkUp;
      break;
    case EventKind::kProbe:
      tp = TracePoint::kProbe;
      break;
    case EventKind::kCrash:
      tp = TracePoint::kFault;
      a = 0.0;  // fault::FaultKind::kCrash
      b = observable ? logical(e.node) : 0.0;
      break;
    case EventKind::kRecover:
      tp = TracePoint::kFault;
      a = 1.0;  // fault::FaultKind::kRecover
      b = observable ? logical(e.node) : 0.0;
      break;
  }
  if ((tp == TracePoint::kDeliver || tp == TracePoint::kTimerFire) &&
      e.node != kInvalidNode) {
    const PerNode& pn = per_node_[static_cast<std::size_t>(e.node)];
    a = logical(e.node);
    b = pn.clock.value_at(now_);
    const double mult = pn.node->rate_multiplier();
    if (mult > 1.0) flags |= obs::kFlagFastMode;
    if (last_event_.woke) flags |= obs::kFlagWoke;
    if (!std::isnan(mult_before) && mult != mult_before) {
      flags |= obs::kFlagModeChange;
      recorder_->record(TracePoint::kModeChange, now_, e.node, e.edge,
                        mult_before, mult, flags, qsize);
    }
  }
  recorder_->record(tp, now_, e.node, e.edge, a, b, flags, qsize);
}

void Simulator::schedule_rate_change(NodeId v, RealTime at, double rate) {
  assert(at >= now_ - kTimeTolerance);
  Event e;
  e.time = std::max(at, now_);
  e.kind = EventKind::kRateChange;
  e.node = v;
  e.rate = rate;
  e.rate_from_policy = false;
  queue_.push(e);
}

void Simulator::wake_node(NodeId v, const Message* trigger) {
  PerNode& pn = per_node_[static_cast<std::size_t>(v)];
  assert(!pn.awake);
  pn.awake = true;
  pn.clock.start(now_);
  pn.node->on_wake(services_->pin(v), trigger);
  if (obs::kTraceCompiled && recorder_ != nullptr) {
    recorder_->record(obs::TracePoint::kWake, now_, v, obs::kNoTraceEdge,
                      logical(v), pn.clock.value_at(now_), obs::kFlagWoke);
  }
}

std::uint32_t Simulator::edge_index(NodeId u, NodeId v) const {
  const std::uint32_t e = csr_->find_edge(u, v);
  assert(e != graph::kNoEdge && "no such edge");
  return e;
}

bool Simulator::link_up(NodeId u, NodeId v) const {
  return link_up_[edge_index(u, v)] != 0;
}

void Simulator::schedule_link_change(NodeId u, NodeId v, bool up, RealTime at) {
  assert(at >= now_ - kTimeTolerance);
  Event e;
  e.time = std::max(at, now_);
  e.kind = EventKind::kLinkChange;
  e.node = u;
  e.node2 = v;
  e.edge = edge_index(u, v);  // resolved once, here
  e.link_up = up;
  queue_.push(e);
}

void Simulator::schedule_crash(NodeId v, RealTime at) {
  assert(at >= now_ - kTimeTolerance);
  // The crash marker goes first (FIFO among same-time events): the node is
  // dead before its links report down, so only the surviving endpoints get
  // on_link_change callbacks.  Per-link events are kept (rather than one
  // bulk cut) so incremental observers fold each neighbor's reaction.
  Event c;
  c.time = std::max(at, now_);
  c.kind = EventKind::kCrash;
  c.node = v;
  queue_.push(c);
  for (const graph::Graph::Arc* a = csr_->begin(v); a != csr_->end(v); ++a) {
    Event e;
    e.time = c.time;
    e.kind = EventKind::kLinkChange;
    e.node = v;
    e.node2 = a->to;
    e.edge = a->edge;
    e.link_up = false;
    queue_.push(e);
  }
}

void Simulator::schedule_recovery(NodeId v, RealTime at) {
  assert(at >= now_ - kTimeTolerance);
  // Links come back first so the on_rejoin() re-announcement broadcast by
  // the kRecover event (same instant, FIFO) reaches the neighbors.
  for (const graph::Graph::Arc* a = csr_->begin(v); a != csr_->end(v); ++a) {
    Event e;
    e.time = std::max(at, now_);
    e.kind = EventKind::kLinkChange;
    e.node = v;
    e.node2 = a->to;
    e.edge = a->edge;
    e.link_up = true;
    queue_.push(e);
  }
  Event r;
  r.time = std::max(at, now_);
  r.kind = EventKind::kRecover;
  r.node = v;
  queue_.push(r);
}

void Simulator::apply_link_change(NodeId u, NodeId v, std::uint32_t edge,
                                  bool up) {
  if ((link_up_[edge] != 0) == up) return;  // no-op flip
  link_up_[edge] = up ? 1 : 0;
  for (const NodeId endpoint : {u, v}) {
    PerNode& pn = per_node_[static_cast<std::size_t>(endpoint)];
    if (!pn.awake || pn.crashed) continue;  // dead nodes get no callbacks
    pn.node->on_link_change(services_->pin(endpoint), endpoint == u ? v : u, up);
  }
}

void Simulator::do_broadcast(NodeId v, const Message& m) {
  ++broadcasts_;
  if (obs::kTraceCompiled && recorder_ != nullptr) {
    recorder_->record(obs::TracePoint::kBroadcast, now_, v, obs::kNoTraceEdge,
                      m.logical, m.logical_max, 0,
                      static_cast<std::uint32_t>(queue_.size()));
  }
  for (const graph::Graph::Arc* a = csr_->begin(v); a != csr_->end(v); ++a) {
    if (!link_up_[a->edge]) continue;  // link currently down
    if (!delay_plans_) {
      const RealTime t_recv = delay_->delivery_time(v, a->to, now_, *this);
      assert(t_recv >= now_ - kTimeTolerance && "negative message delay");
      Event e;
      e.time = std::max(t_recv, now_);
      e.kind = EventKind::kMessageDelivery;
      e.node = a->to;
      e.edge = a->edge;
      e.msg = slab_.put(m);
      queue_.push(e);
      continue;
    }
    // Faulty-channel path: the policy plans zero (drop), one, or several
    // (duplication) copies, each possibly perturbed (corruption).
    plan_scratch_.clear();
    delay_->plan_deliveries(v, a->to, now_, *this, plan_scratch_);
    if (plan_scratch_.empty()) {
      ++messages_dropped_;  // the channel ate it
      continue;
    }
    for (const PlannedDelivery& pd : plan_scratch_) {
      assert(pd.at >= now_ - kTimeTolerance && "negative message delay");
      Message copy = m;
      copy.logical += pd.logical_delta;
      copy.logical_max += pd.logical_max_delta;
      Event e;
      e.time = std::max(pd.at, now_);
      e.kind = EventKind::kMessageDelivery;
      e.node = a->to;
      e.edge = a->edge;
      e.msg = slab_.put(copy);
      queue_.push(e);
    }
  }
}

void Simulator::arm_timer(NodeId v, int slot, ClockValue target) {
  assert(slot >= 0 && slot < kMaxTimerSlots);
  TimerState& ts = per_node_[static_cast<std::size_t>(v)].timers[slot];
  ts.target = target;
  ts.armed = true;
  ++ts.generation;
  schedule_timer_event(v, slot);
}

void Simulator::disarm_timer(NodeId v, int slot) {
  assert(slot >= 0 && slot < kMaxTimerSlots);
  TimerState& ts = per_node_[static_cast<std::size_t>(v)].timers[slot];
  ts.armed = false;
  ++ts.generation;
}

void Simulator::schedule_timer_event(NodeId v, int slot) {
  const PerNode& pn = per_node_[static_cast<std::size_t>(v)];
  const TimerState& ts = pn.timers[slot];
  assert(ts.armed);
  assert(pn.clock.started() && "timers require a started clock");
  Event e;
  e.time = pn.clock.time_when_reaches(ts.target, now_);
  e.kind = EventKind::kTimer;
  e.node = v;
  e.slot = static_cast<std::uint8_t>(slot);
  e.generation = ts.generation;
  queue_.push(e);
}

void Simulator::apply_rate_change(NodeId v, double rate) {
  PerNode& pn = per_node_[static_cast<std::size_t>(v)];
  pn.clock.set_rate(now_, rate);
  // Crashed nodes keep drifting but reschedule nothing: their timer pops
  // are suppressed anyway, and recovery re-anchors the armed slots.
  if (!pn.awake || pn.crashed) return;
  // Re-anchor all armed hardware-time timers onto the new rate.
  for (int slot = 0; slot < kMaxTimerSlots; ++slot) {
    TimerState& ts = pn.timers[slot];
    if (!ts.armed) continue;
    ++ts.generation;  // invalidate the stale heap entry
    schedule_timer_event(v, slot);
  }
}

void Simulator::schedule_next_rate_change(NodeId v, RealTime now) {
  if (auto step = drift_->next_change(v, now)) {
    assert(step->at >= now - kTimeTolerance);
    Event e;
    e.time = std::max(step->at, now);
    e.kind = EventKind::kRateChange;
    e.node = v;
    e.rate = step->rate;
    queue_.push(e);
  }
}

}  // namespace tbcs::sim
