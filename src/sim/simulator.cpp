#include "sim/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>

#include "obs/flight_recorder.hpp"

namespace tbcs::sim {

// NodeServices implementation handed to node callbacks; one instance lives
// per lane and is re-pinned to the calling node, so the per-event switch
// constructs nothing.
class Simulator::ServicesImpl final : public NodeServices {
 public:
  ServicesImpl(Simulator& sim, Lane& lane) : sim_(sim), lane_(lane) {}

  NodeServices& pin(NodeId v) {
    v_ = v;
    return *this;
  }

  NodeId id() const override { return v_; }
  ClockValue hardware_now() const override {
    return sim_.clock_slots_[sim_.slot(v_)].value_at(lane_.now);
  }
  void broadcast(const Message& m) override {
    sim_.do_broadcast(lane_, v_, m);
  }
  void set_timer(int slot, ClockValue target) override {
    sim_.arm_timer(lane_, v_, slot, target);
  }
  void cancel_timer(int slot) override {
    sim_.disarm_timer(lane_, v_, slot);
  }

 private:
  Simulator& sim_;
  Lane& lane_;
  NodeId v_ = kInvalidNode;
};

Simulator::Lane::Lane() = default;
Simulator::Lane::~Lane() = default;
Simulator::Lane::Lane(Lane&&) noexcept = default;
Simulator::Lane& Simulator::Lane::operator=(Lane&&) noexcept = default;

Simulator::Simulator(const graph::Graph& g, SimConfig cfg)
    : graph_(g),
      csr_(g.csr()),
      cfg_(cfg),
      nodes_(static_cast<std::size_t>(g.num_nodes())),
      drift_(std::make_shared<ConstantDrift>(1.0)),
      delay_(std::make_shared<FixedDelay>(0.0)) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  switch (cfg_.queue) {
    case QueueSelect::kHeap:
      queue_impl_ = QueueImpl::kHeap;
      break;
    case QueueSelect::kLadder:
      queue_impl_ = QueueImpl::kLadder;
      break;
    case QueueSelect::kAuto:
      queue_impl_ = g.num_nodes() >= kLadderAutoThreshold ? QueueImpl::kLadder
                                                          : QueueImpl::kHeap;
      break;
  }
  slot_of_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    slot_of_[v] = static_cast<std::uint32_t>(v);  // identity until sharded
  }
  clock_slots_.assign(n, HardwareClock{});
  timer_slots_.assign(n * static_cast<std::size_t>(kMaxTimerSlots),
                      TimerState{});
  status_slots_.assign(n, 0);
  // Sized here, not in setup(): schedule_link_change()/schedule_crash()
  // stamp event keys before the first run_until(), and the counters must
  // never reset once keys have been handed out.
  next_seq_.assign(n + 1, 0);
  init_lanes(1);
}

Simulator::~Simulator() { stop_workers(); }

void Simulator::init_lanes(std::size_t count) {
  lanes_ = std::vector<Lane>(count);
  for (std::size_t i = 0; i < count; ++i) {
    Lane& ln = lanes_[i];
    ln.index = static_cast<int>(i);
    ln.queue.set_impl(queue_impl_);
    ln.link_up.assign(graph_.num_edges(), 1);
    ln.outbox.resize(count);
    ln.services = std::make_unique<ServicesImpl>(*this, ln);
  }
}

void Simulator::configure_shards(int shards, const std::string& strategy,
                                 int min_nodes_per_shard) {
  if (setup_done_) {
    throw std::logic_error(
        "Simulator::configure_shards must be called before the first run");
  }
  const auto n = static_cast<std::size_t>(graph_.num_nodes());
  if (shards <= 0) {
    windowed_ = false;
    part_.reset();
    shards_requested_ = 0;
    partition_strategy_.clear();
    cut_dist_.clear();
    for (std::size_t v = 0; v < n; ++v) {
      slot_of_[v] = static_cast<std::uint32_t>(v);
    }
    init_lanes(1);
    return;
  }
  shards_requested_ = shards;
  // Resolve "auto" here so partition_strategy() (and the stats "engine"
  // block) reports the strategy actually used, matching Partition::make's
  // dispatch: multilevel keeps subtrees whole where block partitions of a
  // BFS-numbered tree would cut every level band.
  if (strategy == "auto" || strategy.empty()) {
    const bool tree =
        graph_.num_edges() + 1 == static_cast<std::size_t>(graph_.num_nodes());
    partition_strategy_ = tree ? "ml" : "block";
  } else {
    partition_strategy_ = strategy;
  }
  int effective = std::min(shards, graph_.num_nodes());
  if (min_nodes_per_shard > 0) {
    const int cap = std::max(
        1, graph_.num_nodes() / std::max(1, min_nodes_per_shard));
    effective = std::min(effective, cap);
  }
  if (effective < shards) {
    // Below ~min_nodes_per_shard nodes per lane the per-window barrier
    // cost outweighs the parallel work, so extra lanes are a slowdown,
    // not a speedup.  Warn once per process — sweeps would otherwise
    // print this for every run.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "[tbcs] warning: clamping --shards %d to %d (%d nodes, "
                   "min %d nodes per shard); the effective count is "
                   "reported in the stats JSON \"engine\" block\n",
                   shards, effective, graph_.num_nodes(),
                   min_nodes_per_shard);
    }
  }
  part_ = std::make_unique<graph::Partition>(
      graph::Partition::make(graph_, effective, partition_strategy_));
  windowed_ = true;
  link_up_.assign(graph_.num_edges(), 1);
  // Slot permutation: each shard's members become one contiguous block of
  // the hot arrays, in member (ascending id) order.  With one shard this
  // is the identity.  Status bits survive the permutation (a churn plan
  // may mark nodes initially absent before configuring shards); clocks and
  // timers are still default-constructed here, so only status moves.
  std::vector<std::uint8_t> status_by_node(n);
  for (std::size_t v = 0; v < n; ++v) status_by_node[v] = status_slots_[slot(v)];
  std::uint32_t next_slot = 0;
  for (int s = 0; s < part_->num_shards(); ++s) {
    for (const NodeId v : part_->members(s)) {
      slot_of_[static_cast<std::size_t>(v)] = next_slot++;
    }
  }
  for (std::size_t v = 0; v < n; ++v) status_slots_[slot(v)] = status_by_node[v];
  compute_cut_dist();
  init_lanes(static_cast<std::size_t>(effective));
}

void Simulator::compute_cut_dist() {
  // Cut distances for the cut-aware horizon: multi-source BFS (over
  // intra-shard edges) from the cut-edge endpoints, capped at kMaxCutDist.
  // An event at a distance-d node needs >= d intra-shard hops before
  // anything can happen at a cut node.  Computed before any event can be
  // scheduled against the partition — at configure_shards, and again at
  // repartition (whose event migration re-files every queued time into
  // the boundary heaps) — so every queue push and timer arm lands in the
  // right heap.
  const auto n = static_cast<std::size_t>(graph_.num_nodes());
  cut_dist_.assign(n, static_cast<std::uint8_t>(kMaxCutDist));
  if (part_->num_shards() > 1) {
    std::vector<NodeId> frontier;
    for (const graph::Partition::CutEdge& ce : part_->cut_edges()) {
      for (const NodeId v : {ce.u, ce.v}) {
        if (cut_dist_[static_cast<std::size_t>(v)] != 0) {
          cut_dist_[static_cast<std::size_t>(v)] = 0;
          frontier.push_back(v);
        }
      }
    }
    std::vector<NodeId> next;
    for (int d = 1; d < kMaxCutDist && !frontier.empty(); ++d) {
      next.clear();
      for (const NodeId u : frontier) {
        const int su = part_->shard_of(u);
        for (const graph::Graph::Arc* a = csr_->begin(u); a != csr_->end(u);
             ++a) {
          if (part_->shard_of(a->to) != su) continue;
          std::uint8_t& dist = cut_dist_[static_cast<std::size_t>(a->to)];
          if (dist > d) {
            dist = static_cast<std::uint8_t>(d);
            next.push_back(a->to);
          }
        }
      }
      frontier.swap(next);
    }
  }
}

void Simulator::set_node(NodeId v, std::unique_ptr<Node> node) {
  assert(!setup_done_ && "nodes must be installed before the first run");
  nodes_[static_cast<std::size_t>(v)] = std::move(node);
}

void Simulator::set_all_nodes(
    const std::function<std::unique_ptr<Node>(NodeId)>& factory) {
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) set_node(v, factory(v));
}

void Simulator::set_drift_policy(std::shared_ptr<DriftPolicy> policy) {
  assert(!setup_done_);
  drift_ = std::move(policy);
}

void Simulator::set_delay_policy(std::shared_ptr<DelayPolicy> policy) {
  delay_ = std::move(policy);
  delay_plans_ = delay_->plans_deliveries();
}

void Simulator::set_observer(Observer observer) {
  observer_ = std::move(observer);
}

void Simulator::set_window_observer(WindowObserver observer) {
  window_observer_ = std::move(observer);
}

ClockValue Simulator::logical_at(NodeId v, RealTime t) const {
  const std::size_t sl = slot(v);
  if ((status_slots_[sl] & kAwakeBit) == 0) return 0.0;
  return nodes_[static_cast<std::size_t>(v)]->logical_at(
      clock_slots_[sl].value_at(t));
}

ClockValue Simulator::logical(NodeId v) const { return logical_at(v, now_); }

void Simulator::setup() {
  if (setup_done_) return;
  setup_done_ = true;
  delay_->prepare(graph_.num_nodes());
  if (windowed_) {
    lookahead_ = delay_->min_delay();
    if (!(lookahead_ > 0.0)) {
      throw std::invalid_argument(
          "Simulator: sharded execution requires a delay policy that "
          "certifies a positive min_delay() lookahead (fixed or "
          "lower-bounded delays); this policy cannot");
    }
    compute_lane_lookahead();
  }
  // Pre-size the per-lane hot structures from the topology so warm-up
  // never pays growth, and calibrate each lane's timer wheel to its
  // member count (must precede the first arm below).
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& ln = lanes_[i];
    const std::size_t members =
        windowed_ ? part_->members(static_cast<int>(i)).size()
                  : static_cast<std::size_t>(graph_.num_nodes());
    ln.queue.reserve(members * 2);
    ln.slab.reserve(members);
    ln.wheel.configure(members);
    ln.wheel.reserve(members * 2);
  }
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (!nodes_[static_cast<std::size_t>(v)]) {
      throw std::logic_error("Simulator: node " + std::to_string(v) +
                             " has no algorithm installed");
    }
    clock_slots_[slot(v)].set_rate(0.0, drift_->initial_rate(v));
    schedule_next_rate_change(v, 0.0);
  }
  if (cfg_.wake_all_at_zero) {
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if ((status_slots_[slot(v)] & kDepartedBit) != 0) continue;  // churn
      wake_node(lane_of(v), v, nullptr);
    }
  } else {
    if ((status_slots_[slot(cfg_.root)] & kDepartedBit) != 0) {
      throw std::invalid_argument(
          "Simulator: the flooding-initialization root is initially absent; "
          "pick a present root or use wake_all_at_zero");
    }
    wake_node(lane_of(cfg_.root), cfg_.root, nullptr);
    for (const NodeId v : cfg_.extra_roots) {
      if ((status_slots_[slot(v)] & (kAwakeBit | kDepartedBit)) == 0) {
        wake_node(lane_of(v), v, nullptr);
      }
    }
  }
  if (cfg_.probe_interval > 0.0) {
    if (windowed_) {
      // Probes never enter a lane queue: the coordinator holds the next
      // probe time and fires it at the matching window barrier.
      probe_next_ = cfg_.probe_interval;
      ++probe_canon_pushes_;
    } else {
      Event probe;
      probe.time = cfg_.probe_interval;
      probe.kind = EventKind::kProbe;
      push_event(probe, kInvalidNode);
    }
  }
}

void Simulator::compute_lane_lookahead() {
  // Per-lane lookahead bounds (the boundary *levels* come from
  // compute_cut_dist, before any event is filed against them): la_out is
  // the min per-edge delay bound over a lane's outgoing cut arcs,
  // delta_intra over its intra-shard arcs.  Both are floored at the
  // global min_delay() — per-edge bounds certify *at least* the global
  // one, so a policy violating that contract is clamped, not trusted.
  // Lanes with no outgoing cut arcs never bound the horizon.
  if (lanes_.size() <= 1) return;
  for (const graph::Partition::CutEdge& ce : part_->cut_edges()) {
    const Duration uv = delay_->min_delay(ce.u, ce.v);
    const Duration vu = delay_->min_delay(ce.v, ce.u);
    Lane& lu = lanes_[static_cast<std::size_t>(ce.su)];
    Lane& lv = lanes_[static_cast<std::size_t>(ce.sv)];
    lu.la_out = std::min(lu.la_out, std::max(uv, lookahead_));
    lv.la_out = std::min(lv.la_out, std::max(vu, lookahead_));
  }
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    const int su = part_->shard_of(u);
    Lane& ln = lanes_[static_cast<std::size_t>(su)];
    for (const graph::Graph::Arc* a = csr_->begin(u); a != csr_->end(u);
         ++a) {
      if (part_->shard_of(a->to) != su) continue;
      ln.delta_intra = std::min(
          ln.delta_intra,
          std::max(delay_->min_delay(u, a->to), lookahead_));
    }
  }
}

// ---- event creation ---------------------------------------------------------

void Simulator::note_queued(Lane& dest, NodeId a, NodeId b, RealTime t) {
  // Only called when windowed with >1 lane (cut_dist_ is empty
  // otherwise).  A push during a window only ever targets the pushing
  // lane's own queue, so the heaps need no locking.
  if (cut_dist_.empty() || a == kInvalidNode) return;
  std::uint8_t d = cut_dist_[static_cast<std::size_t>(a)];
  if (b != kInvalidNode) {
    d = std::min(d, cut_dist_[static_cast<std::size_t>(b)]);
  }
  if (d < kMaxCutDist) dest.bnd[d].push(t);
}

void Simulator::push_event(Event e, NodeId source) {
  stamp(e, source);
  Lane& dest = lane_of(e.node);
  dest.queue.push(e);
  if (windowed_) {
    ++dest.canon_pushes;
    note_queued(dest, e.node, kInvalidNode, e.time);
  }
}

void Simulator::push_link_change(Event e, NodeId source) {
  stamp(e, source);
  Lane& dest = lane_of(e.node);
  dest.queue.push(e);
  if (windowed_) {
    ++dest.canon_pushes;
    // A link-change callback can broadcast from either endpoint, so the
    // horizon treats the event as sitting at the better (lower) of the
    // two boundary levels.
    note_queued(dest, e.node, e.node2, e.time);
    Lane& other = lane_of(e.node2);
    if (&other != &dest) {
      // Cut edge: mirror the flip into the second endpoint's lane under the
      // same key so both lanes apply it at the same point of their local
      // order.  The twin is excluded from all canonical accounting.
      Event tw = e;
      tw.twin = true;
      other.queue.push(tw);
      ++other.twins_in_queue;
      note_queued(other, e.node, e.node2, e.time);
    }
  }
}

void Simulator::push_delivery(Lane& ln, Event e, NodeId source,
                              const Message& m) {
  stamp(e, source);
  if (!windowed_) {
    e.msg = ln.slab.put(m, e.time);
    ln.queue.push(e);
    return;
  }
  ++ln.canon_pushes;
  Lane& dest = lanes_[static_cast<std::size_t>(part_->shard_of(e.node))];
  if (&dest == &ln || !in_window_) {
    // Local delivery, or coordinator context (setup / between windows):
    // straight into the destination queue.
    e.msg = dest.slab.put(m, e.time);
    dest.queue.push(e);
    note_queued(dest, e.node, kInvalidNode, e.time);
  } else {
    // Cross-shard: the conservative horizon guarantees e.time >= W_end, so
    // parking it in the outbox until the barrier loses nothing.
    assert(e.time >= win_end_ - kTimeTolerance &&
           "cross-shard delivery below the safe horizon");
    ln.outbox[static_cast<std::size_t>(dest.index)].push_back(
        Lane::OutMsg{e, m});
  }
}

// ---- execution --------------------------------------------------------------

bool Simulator::next_key(Lane& ln, RealTime& t, TimerWheel::Fired& tf,
                         bool& timer_first) {
  // The merged pop stream: queue top vs wheel peek under the canonical
  // (time, source, seq) order.  A wheel entry's source is its node and its
  // twin flag is false, so the comparison needs only the first three key
  // fields (per-source seqs are unique, so full ties are impossible).
  const bool have_t = ln.wheel.peek(tf);
  if (ln.queue.empty()) {
    if (!have_t) return false;
    timer_first = true;
    t = tf.time;
    return true;
  }
  const Event& top = ln.queue.top();
  if (!have_t) {
    timer_first = false;
    t = top.time;
    return true;
  }
  timer_first = tf.time != top.time     ? tf.time < top.time
                : tf.node != top.source ? tf.node < top.source
                                        : tf.seq < top.seq;
  t = timer_first ? tf.time : top.time;
  return true;
}

Event Simulator::pop_next(Lane& ln, const TimerWheel::Fired& tf,
                          bool timer_first) {
  if (!timer_first) {
    Event e = ln.queue.pop();
    prefetch_upcoming(ln);
    return e;
  }
  ln.wheel.pop();
  Event e;
  e.time = tf.time;
  e.seq = tf.seq;
  e.node = tf.node;
  e.source = tf.node;
  e.slot = tf.slot;
  e.kind = EventKind::kTimer;
  return e;
}

void Simulator::prefetch_upcoming(Lane& ln) {
#if defined(__GNUC__) || defined(__clang__)
  if (ln.queue.empty()) return;
  std::size_t count = 0;
  const Event* up = ln.queue.upcoming(4, count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId v = up[i].node;
    if (v == kInvalidNode) continue;
    const std::size_t sl = slot(v);
    __builtin_prefetch(&clock_slots_[sl]);
    __builtin_prefetch(&status_slots_[sl]);
  }
#else
  (void)ln;
#endif
}

void Simulator::run_until(RealTime t_end) {
  // A Graph mutated after our CSR snapshot means every cached edge index
  // and adjacency walk is suspect; the serial engine re-snapshots via
  // grow_topology(), the sharded engine refuses mid-run growth outright.
  assert(csr_->version() == graph_.version() &&
         "Graph mutated after the CSR snapshot; call grow_topology() "
         "before running");
  setup();
  if (windowed_) {
    run_windowed(t_end);
    return;
  }
  Lane& ln = lanes_[0];
  RealTime t = 0.0;
  TimerWheel::Fired tf;
  bool timer_first = false;
  while (next_key(ln, t, tf, timer_first) && t <= t_end) {
    Event e = pop_next(ln, tf, timer_first);
    assert(e.time >= now_ - kTimeTolerance && "event queue went backwards");
    now_ = std::max(now_, e.time);
    ln.now = now_;
    ++ln.events;
    const bool observable = process(ln, e);
    if (observable && observer_) observer_(*this, now_);
    if (progress_interval_ > 0.0 && (ln.events & 0x3fffu) == 0) {
      maybe_progress(false);
    }
  }
  now_ = std::max(now_, t_end);
  ln.now = now_;
}

RealTime Simulator::safe_horizon() {
  // Earliest possible cross-shard arrival, over all lanes: an event must
  // first reach one of the lane's cut nodes (boundary_time, from the lazy
  // per-distance heaps and the kMaxCutDist-hop bound), then cross
  // (la_out).  The heaps are cleaned here, on the coordinator thread
  // between windows — every entry below the lane's clock belongs to an
  // already-processed event.
  RealTime horizon = kInfinity;
  for (Lane& ln : lanes_) {
    if (!(ln.la_out < kInfinity)) continue;  // no outgoing cut arcs
    const auto clean_top = [&ln](Lane::TimeHeap& h) -> RealTime {
      while (!h.empty() && h.top() < ln.now) h.pop();
      return h.empty() ? kInfinity : h.top();
    };
    RealTime boundary = clean_top(ln.bnd[0]);
    if (ln.delta_intra < kInfinity) {
      for (int d = 1; d < kMaxCutDist; ++d) {
        boundary = std::min(
            boundary, clean_top(ln.bnd[static_cast<std::size_t>(d)]) +
                          static_cast<double>(d) * ln.delta_intra);
      }
      RealTime tn = ln.queue.empty() ? kInfinity : ln.queue.top().time;
      TimerWheel::Fired tf;
      if (ln.wheel.peek(tf)) tn = std::min(tn, tf.time);
      boundary = std::min(
          boundary, tn + static_cast<double>(kMaxCutDist) * ln.delta_intra);
    }
    horizon = std::min(horizon, boundary + ln.la_out);
  }
  return horizon;
}

void Simulator::run_windowed(RealTime t_end) {
  start_workers();
  const bool probe_active = cfg_.probe_interval > 0.0;
  // With nothing listening (no observer, no window observer, no recorder)
  // the observation cadence is pointless — windows stretch to the full
  // safe horizon.  The canonical peak is then sampled only at probes and
  // t_end, both partition-invariant, so stats stay shard-count-identical.
  const bool observed =
      observer_ != nullptr || window_observer_ != nullptr ||
      recorder_ != nullptr;
  const Duration obs_dt = !observed ? kInfinity
                          : cfg_.observation_interval > 0.0
                              ? cfg_.observation_interval
                              : 4.0 * lookahead_;
  bool t_end_flushed = false;
  for (;;) {
    RealTime t_next = kInfinity;
    for (Lane& ln : lanes_) {
      if (!ln.queue.empty()) t_next = std::min(t_next, ln.queue.top().time);
      TimerWheel::Fired tf;
      if (ln.wheel.peek(tf)) t_next = std::min(t_next, tf.time);
    }
    if (probe_active) t_next = std::min(t_next, probe_next_);
    if (t_next > t_end) break;
    // Observation cadence: obs_next_ is (re)armed only at the first
    // window after an observation barrier, when the processed set is
    // exactly the canonical events before that barrier — so t_next, and
    // with it the whole obs-barrier sequence, is a pure function of the
    // event set, identical for every shard count.  Intermediate
    // horizon-clipped barriers (whose times depend on the partition)
    // exchange outboxes and merge traces but never run observers.
    if (obs_next_ == kInfinity) obs_next_ = t_next + obs_dt;
    // Cut-aware safe horizon: nothing processed before W_end can cause an
    // event before W_end in another lane.  Never below the classic global
    // bound t_next + min_delay(); clipped by the observation cadence,
    // probes, and the caller's horizon.  The final window is inclusive so
    // events at exactly t_end are processed, matching the serial engine's
    // run_until contract.
    const RealTime horizon =
        std::max(safe_horizon(), t_next + lookahead_);
    RealTime w_end = std::min(std::min(horizon, obs_next_), t_end);
    if (probe_active) w_end = std::min(w_end, probe_next_);
    const bool probe_fires = probe_active && w_end == probe_next_;
    const bool obs_fires =
        probe_fires || w_end == obs_next_ || w_end == t_end;
    win_end_ = w_end;
    win_inclusive_ = !probe_fires && w_end == t_end;
    run_window_parallel();
    barrier_flush(w_end, probe_fires, obs_fires);
    if (w_end == obs_next_) obs_next_ = kInfinity;
    if (obs_fires && w_end == t_end) t_end_flushed = true;
  }
  now_ = std::max(now_, t_end);
  for (Lane& ln : lanes_) ln.now = now_;
  // Canonical close: every run_until ends with exactly one observation
  // flush at t_end (delivering any touches accumulated since the last
  // obs barrier), whether or not a window happened to land there — the
  // landing depends on the partition, the close must not.
  if (!t_end_flushed) {
    canon_stats_.pushes = probe_canon_pushes_;
    canon_stats_.pops = probe_canon_pops_;
    for (const Lane& ln : lanes_) {
      canon_stats_.pushes += ln.canon_pushes;
      canon_stats_.pops += ln.canon_pops;
    }
    canon_stats_.peak_size =
        std::max(canon_stats_.peak_size, canonical_pending());
    flush_observers(t_end);
  }
}

void Simulator::process_window(Lane& ln) {
  RealTime t = 0.0;
  TimerWheel::Fired tf;
  bool timer_first = false;
  while (next_key(ln, t, tf, timer_first)) {
    if (win_inclusive_ ? t > win_end_ : t >= win_end_) break;
    Event e = pop_next(ln, tf, timer_first);
    assert(e.time >= ln.now - kTimeTolerance && "lane queue went backwards");
    ln.now = std::max(ln.now, e.time);
    if (e.twin) {
      // Mirror copy of a cut-edge link change: flip the local view and run
      // the local endpoint's callback; the primary does all accounting.
      --ln.twins_in_queue;
      apply_link_change(ln, e);
      continue;
    }
    // Wheel fires are not queue traffic: canonical pops count queue events
    // only, uniformly with the serial engine's queue stats.
    if (!timer_first) ++ln.canon_pops;
    ++ln.events;
    ln.cur_time = e.time;
    ln.cur_source = e.source;
    ln.cur_seq = e.seq;
    ln.cur_sub = 0;
    const bool observable = process(ln, e);
    if (observable) {
      const LastEvent& le = ln.last_event;
      if (le.node != kInvalidNode) {
        ln.touched.push_back(WindowTouch{le.node, le.woke});
      }
      if (le.node2 != kInvalidNode) {
        ln.touched.push_back(WindowTouch{le.node2, false});
      }
    }
  }
}

void Simulator::run_window_parallel() {
  // Dispatch fast path: when no worker lane has an event inside this
  // window, skip the condition-variable round trip and run lane 0 (often
  // also empty) inline.  Localized activity — a flood front deep inside
  // one shard — would otherwise pay the full wake/wait cost per window
  // for every idle lane.
  bool workers_have_work = false;
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    Lane& ln = lanes_[i];
    RealTime t = kInfinity;
    if (!ln.queue.empty()) t = ln.queue.top().time;
    TimerWheel::Fired tf;
    if (ln.wheel.peek(tf)) t = std::min(t, tf.time);
    if (win_inclusive_ ? t <= win_end_ : t < win_end_) {
      workers_have_work = true;
      break;
    }
  }
  if (!workers_have_work) {
    in_window_ = true;
    try {
      process_window(lanes_[0]);
    } catch (...) {
      in_window_ = false;
      throw;
    }
    in_window_ = false;
    return;
  }
  {
    std::lock_guard<std::mutex> lk(win_mu_);
    win_done_ = 0;
    in_window_ = true;
    ++win_gen_;
  }
  win_cv_.notify_all();
  try {
    process_window(lanes_[0]);
  } catch (...) {
    std::lock_guard<std::mutex> lk(win_mu_);
    if (!win_error_) win_error_ = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lk(win_mu_);
    done_cv_.wait(lk, [&] {
      return win_done_ == static_cast<int>(lanes_.size()) - 1;
    });
    in_window_ = false;
    if (win_error_) {
      std::exception_ptr err = win_error_;
      win_error_ = nullptr;
      lk.unlock();
      std::rethrow_exception(err);
    }
  }
}

void Simulator::start_workers() {
  if (!workers_.empty() || lanes_.size() <= 1) return;
  workers_.reserve(lanes_.size() - 1);
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    workers_.emplace_back([this, i] {
      std::uint64_t seen = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lk(win_mu_);
          win_cv_.wait(lk, [&] { return shutdown_ || win_gen_ != seen; });
          if (shutdown_) return;
          seen = win_gen_;
        }
        try {
          process_window(lanes_[i]);
        } catch (...) {
          std::lock_guard<std::mutex> lk(win_mu_);
          if (!win_error_) win_error_ = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lk(win_mu_);
          ++win_done_;
        }
        done_cv_.notify_one();
      }
    });
  }
}

void Simulator::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(win_mu_);
    shutdown_ = true;
  }
  win_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  shutdown_ = false;
}

std::size_t Simulator::canonical_pending() const {
  std::size_t pending = 0;
  for (const Lane& ln : lanes_) {
    pending += ln.queue.size() - ln.twins_in_queue;
  }
  if (probe_next_ < kInfinity) ++pending;
  return pending;
}

void Simulator::merge_lane_traces() {
  const auto key_less = [](const TraceEntry& x, const TraceEntry& y) {
    if (x.key_time != y.key_time) return x.key_time < y.key_time;
    if (x.key_source != y.key_source) return x.key_source < y.key_source;
    if (x.key_seq != y.key_seq) return x.key_seq < y.key_seq;
    return x.key_sub < y.key_sub;
  };
  // K-way merge over per-lane buffers kept in processing order.  Buffer
  // order within a lane encodes creation causality (an event's records
  // never precede its creator's), so comparing only the fronts by key
  // reconstructs exactly the order a single-queue run would have emitted.
  std::vector<std::size_t> pos(lanes_.size(), 0);
  for (;;) {
    int best = -1;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (pos[i] >= lanes_[i].trace.size()) continue;
      if (best < 0 ||
          key_less(lanes_[i].trace[pos[i]],
                   lanes_[static_cast<std::size_t>(best)]
                       .trace[pos[static_cast<std::size_t>(best)]])) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    const std::size_t b = static_cast<std::size_t>(best);
    const TraceEntry& te = lanes_[b].trace[pos[b]++];
    recorder_->record(static_cast<obs::TracePoint>(te.tp), te.t, te.node,
                      te.edge, te.a, te.b, te.flags, te.aux);
  }
  for (Lane& ln : lanes_) ln.trace.clear();
}

void Simulator::barrier_flush(RealTime w_end, bool probe_fires,
                              bool obs_fires) {
  // 1. Cross-shard mailboxes: payloads move into the destination slab and
  // the stamped events join the destination queue (push order is
  // irrelevant — pop order is a pure function of the keys).
  for (Lane& src : lanes_) {
    for (std::size_t d = 0; d < lanes_.size(); ++d) {
      for (Lane::OutMsg& om : src.outbox[d]) {
        om.event.msg = lanes_[d].slab.put(om.payload, om.event.time);
        lanes_[d].queue.push(om.event);
        note_queued(lanes_[d], om.event.node, kInvalidNode, om.event.time);
      }
      src.outbox[d].clear();
    }
  }
  // 2. Cut-edge flips fold into the barrier-reconciled global view, in key
  // order so multiple flips of one edge within a window settle correctly.
  std::size_t n_flips = 0;
  for (const Lane& ln : lanes_) n_flips += ln.flips.size();
  if (n_flips > 0) {
    std::vector<Lane::LinkFlip> flips;
    flips.reserve(n_flips);
    for (Lane& ln : lanes_) {
      flips.insert(flips.end(), ln.flips.begin(), ln.flips.end());
      ln.flips.clear();
    }
    std::sort(flips.begin(), flips.end(),
              [](const Lane::LinkFlip& a, const Lane::LinkFlip& b) {
                return std::tie(a.time, a.source, a.seq) <
                       std::tie(b.time, b.source, b.seq);
              });
    for (const Lane::LinkFlip& f : flips) {
      link_up_[f.edge] = f.up ? 1 : 0;
    }
  }
  // 3. Flight-recorder records, merged in canonical order.
  if (obs::kTraceCompiled && recorder_ != nullptr) {
    merge_lane_traces();
  } else {
    for (Lane& ln : lanes_) ln.trace.clear();
  }
  // 4. Advance time, then fire the probe scheduled for this barrier.
  now_ = w_end;
  for (Lane& ln : lanes_) ln.now = w_end;
  if (probe_fires) {
    if (obs::kTraceCompiled && recorder_ != nullptr) {
      recorder_->record(obs::TracePoint::kProbe, w_end, kInvalidNode,
                        obs::kNoTraceEdge, 0.0, 0.0, 0,
                        static_cast<std::uint32_t>(canonical_pending()));
    }
    ++probe_events_;
    ++probe_canon_pops_;
    ++probe_canon_pushes_;
    probe_next_ += cfg_.probe_interval;
  }
  // 5. Canonical queue statistics.  Pushes/pops are exact at any barrier;
  // the *peak* is sampled only at observation barriers, whose times are
  // shard-count invariant — sampling at horizon-clipped barriers would
  // leak the partition into the stats.
  canon_stats_.pushes = probe_canon_pushes_;
  canon_stats_.pops = probe_canon_pops_;
  for (const Lane& ln : lanes_) {
    canon_stats_.pushes += ln.canon_pushes;
    canon_stats_.pops += ln.canon_pops;
  }
  if (obs_fires) {
    canon_stats_.peak_size =
        std::max(canon_stats_.peak_size, canonical_pending());
    // 6. Observers, only at observation barriers; plain barriers let the
    // per-lane touched sets accumulate until the next one.
    flush_observers(w_end);
  } else if (!window_observer_) {
    for (Lane& ln : lanes_) ln.touched.clear();
  }
  if (progress_interval_ > 0.0) maybe_progress(false);
}

void Simulator::flush_observers(RealTime t) {
  // The touched-node union (sorted, deduplicated, wake flags OR-ed) for
  // window observers, plus the classic per-event observer once per
  // observation barrier.
  if (window_observer_) {
    touched_scratch_.clear();
    for (Lane& ln : lanes_) {
      touched_scratch_.insert(touched_scratch_.end(), ln.touched.begin(),
                              ln.touched.end());
      ln.touched.clear();
    }
    std::sort(touched_scratch_.begin(), touched_scratch_.end(),
              [](const WindowTouch& a, const WindowTouch& b) {
                if (a.node != b.node) return a.node < b.node;
                return a.woke > b.woke;  // woke entries first, kept by unique
              });
    touched_scratch_.erase(
        std::unique(touched_scratch_.begin(), touched_scratch_.end(),
                    [](const WindowTouch& a, const WindowTouch& b) {
                      return a.node == b.node;
                    }),
        touched_scratch_.end());
    window_observer_(*this, t, touched_scratch_);
  } else {
    for (Lane& ln : lanes_) ln.touched.clear();
  }
  if (observer_) observer_(*this, t);
}

// ---- event processing -------------------------------------------------------

bool Simulator::process(Lane& ln, Event& e) {
  // Flight-recorder hooks: with no recorder attached this is one pointer
  // test per event; the fast/slow-mode sampling below runs only when a
  // recorder is listening, so A^opt mode transitions cost nothing to
  // untraced runs.
  double mult_before = std::numeric_limits<double>::quiet_NaN();
  if (obs::kTraceCompiled && recorder_ != nullptr &&
      (e.kind == EventKind::kMessageDelivery || e.kind == EventKind::kTimer)) {
    if ((status_slots_[slot(e.node)] &
         (kAwakeBit | kCrashedBit | kDepartedBit)) == kAwakeBit) {
      mult_before =
          nodes_[static_cast<std::size_t>(e.node)]->rate_multiplier();
    }
  }
  bool observable = true;
  LastEvent& le = ln.last_event;
  le.kind = e.kind;
  le.node = kInvalidNode;
  le.node2 = kInvalidNode;
  le.woke = false;
  switch (e.kind) {
    case EventKind::kMessageDelivery: {
      // Copy out before dispatch: node callbacks may broadcast, which
      // grows the slab and would invalidate a held reference.
      const Message m = ln.slab.take(e.msg);
      const std::uint8_t st = status_slots_[slot(e.node)];
      if (!ln.link_up[e.edge] || (st & (kCrashedBit | kDepartedBit)) != 0) {
        ++ln.dropped;  // link down while in flight, or receiver dead/gone
        observable = false;
        break;
      }
      ++ln.delivered;
      le.node = e.node;
      if ((st & kAwakeBit) == 0) {
        le.woke = true;
        wake_node(ln, e.node, &m);
      } else {
        nodes_[static_cast<std::size_t>(e.node)]->on_message(
            ln.services->pin(e.node), m);
      }
      break;
    }
    case EventKind::kTimer: {
      // Synthesized from a wheel fire: the entry was live by construction
      // (cancel removes entries from the wheel), so no staleness check.
      TimerState& ts = timer(e.node, e.slot);
      ts.pending = TimerWheel::kNull;  // consumed by the fire
      if ((status_slots_[slot(e.node)] & (kCrashedBit | kDepartedBit)) != 0) {
        // A crashed or departed node's callbacks are suppressed; with no
        // callback there is no re-arm, so each armed slot costs one fire
        // per outage instead of wakeups forever.  Recovery/rejoin
        // re-anchors the armed slots (armed stays set).  Counted as a
        // cancel: an armed deadline that never ran its callback.
        ++ln.t_cancels;
        observable = false;
        break;
      }
      ts.armed = false;
      le.node = e.node;
      nodes_[static_cast<std::size_t>(e.node)]->on_timer(
          ln.services->pin(e.node), e.slot);
      break;
    }
    case EventKind::kRateChange: {
      le.node = e.node;
      apply_rate_change(ln, e.node, e.rate);
      if (e.rate_from_policy) schedule_next_rate_change(e.node, e.time);
      break;
    }
    case EventKind::kLinkChange: {
      le.node = e.node;
      le.node2 = e.node2;
      apply_link_change(ln, e);
      break;
    }
    case EventKind::kProbe: {
      // Serial engine only; the sharded coordinator fires probes at window
      // barriers without queueing them.
      Event probe;
      probe.time = e.time + cfg_.probe_interval;
      probe.kind = EventKind::kProbe;
      push_event(probe, kInvalidNode);
      break;
    }
    case EventKind::kCrash: {
      std::uint8_t& st = status_slots_[slot(e.node)];
      if ((st & kCrashedBit) != 0) {
        observable = false;  // double crash: no-op
        break;
      }
      st |= kCrashedBit;
      ++ln.crashes;
      le.node = e.node;  // leaves the awake set at this instant
      break;
    }
    case EventKind::kRecover: {
      std::uint8_t& st = status_slots_[slot(e.node)];
      if ((st & kCrashedBit) == 0) {
        observable = false;  // recovery without a crash: no-op
        break;
      }
      st &= static_cast<std::uint8_t>(~kCrashedBit);
      ++ln.recoveries;
      le.node = e.node;  // re-enters the awake set: fold its clock
      if ((st & (kAwakeBit | kDepartedBit)) == kAwakeBit) {
        // Re-anchor every armed timer (deadlines computed before the
        // outage are meaningless now), then run the re-join handshake.
        for (int sl = 0; sl < kMaxTimerSlots; ++sl) {
          TimerState& ts = timer(e.node, sl);
          if (!ts.armed) continue;
          if (ts.pending != TimerWheel::kNull) {
            lane_of(e.node).wheel.cancel(ts.pending);
            ts.pending = TimerWheel::kNull;
            ++ln.t_cancels;
          }
          schedule_timer_event(e.node, sl, ln.now);
        }
        nodes_[static_cast<std::size_t>(e.node)]->on_rejoin(
            ln.services->pin(e.node));
      }
      break;
    }
    case EventKind::kJoin: {
      std::uint8_t& st = status_slots_[slot(e.node)];
      if ((st & kDepartedBit) == 0) {
        observable = false;  // double join: no-op
        break;
      }
      st &= static_cast<std::uint8_t>(~kDepartedBit);
      ++ln.joins;
      le.node = e.node;  // (re-)enters the awake set at this instant
      if ((st & kAwakeBit) == 0) {
        // First appearance: initialize like a spontaneous wake.
        le.woke = true;
        wake_node(ln, e.node, nullptr);
      } else if ((st & kCrashedBit) == 0) {
        // Re-join after an absence: deadlines computed before departure
        // are meaningless now — re-anchor the armed slots, then run the
        // same handshake a crash recovery uses.
        for (int sl = 0; sl < kMaxTimerSlots; ++sl) {
          TimerState& ts = timer(e.node, sl);
          if (!ts.armed) continue;
          if (ts.pending != TimerWheel::kNull) {
            lane_of(e.node).wheel.cancel(ts.pending);
            ts.pending = TimerWheel::kNull;
            ++ln.t_cancels;
          }
          schedule_timer_event(e.node, sl, ln.now);
        }
        nodes_[static_cast<std::size_t>(e.node)]->on_rejoin(
            ln.services->pin(e.node));
      }
      break;
    }
    case EventKind::kLeave: {
      std::uint8_t& st = status_slots_[slot(e.node)];
      if ((st & kDepartedBit) != 0) {
        observable = false;  // double leave: no-op
        break;
      }
      st |= kDepartedBit;
      ++ln.leaves;
      le.node = e.node;  // leaves the awake set at this instant
      break;
    }
    case EventKind::kScramble: {
      const std::uint8_t st = status_slots_[slot(e.node)];
      if ((st & (kAwakeBit | kCrashedBit | kDepartedBit)) != kAwakeBit) {
        observable = false;  // no live state to corrupt
        break;
      }
      ++ln.scrambles;
      le.node = e.node;  // its clock moves discontinuously: fold it
      const ScramblePayload& sp =
          scramble_payloads_[static_cast<std::size_t>(e.generation)];
      nodes_[static_cast<std::size_t>(e.node)]->on_scramble(
          ln.services->pin(e.node), sp.seed, sp.magnitude);
      break;
    }
  }
  if (obs::kTraceCompiled && recorder_ != nullptr) {
    trace_event(ln, e, observable, mult_before);
  }
  return observable;
}

void Simulator::emit(Lane& ln, obs::TracePoint tp, RealTime t, NodeId node,
                     std::uint32_t edge, double a, double b,
                     std::uint16_t flags, std::uint32_t aux) {
  if (!windowed_ || !in_window_) {
    // Serial engine, or coordinator context (setup wakes): straight to the
    // recorder — the call order is already canonical.
    recorder_->record(tp, t, node, edge, a, b, flags, aux);
    return;
  }
  TraceEntry te;
  te.key_time = ln.cur_time;
  te.key_seq = ln.cur_seq;
  te.key_source = ln.cur_source;
  te.key_sub = ln.cur_sub++;
  te.tp = static_cast<std::uint16_t>(tp);
  te.flags = flags;
  te.t = t;
  te.a = a;
  te.b = b;
  te.node = node;
  te.edge = edge;
  te.aux = aux;
  ln.trace.push_back(te);
}

void Simulator::trace_event(Lane& ln, const Event& e, bool observable,
                            double mult_before) {
  using obs::TracePoint;
  const auto qsize = static_cast<std::uint32_t>(
      ln.queue.size() < 0xffffffffu ? ln.queue.size() : 0xffffffffu);
  TracePoint tp = TracePoint::kProbe;
  std::uint16_t flags = 0;
  double a = 0.0;
  double b = 0.0;
  switch (e.kind) {
    case EventKind::kMessageDelivery:
      tp = observable ? TracePoint::kDeliver : TracePoint::kDrop;
      break;
    case EventKind::kTimer:
      tp = observable ? TracePoint::kTimerFire : TracePoint::kStaleTimer;
      break;
    case EventKind::kRateChange:
      tp = TracePoint::kRateChange;
      a = e.rate;
      b = clock(e.node).value_at(ln.now);
      break;
    case EventKind::kLinkChange:
      tp = TracePoint::kLinkChange;
      if (e.link_up) flags |= obs::kFlagLinkUp;
      break;
    case EventKind::kProbe:
      tp = TracePoint::kProbe;
      break;
    case EventKind::kCrash:
      tp = TracePoint::kFault;
      a = 0.0;  // fault::FaultKind::kCrash
      b = observable ? logical_at(e.node, ln.now) : 0.0;
      break;
    case EventKind::kRecover:
      tp = TracePoint::kFault;
      a = 1.0;  // fault::FaultKind::kRecover
      b = observable ? logical_at(e.node, ln.now) : 0.0;
      break;
    case EventKind::kJoin:
      tp = TracePoint::kChurn;
      a = 0.0;  // join
      b = observable ? logical_at(e.node, ln.now) : 0.0;
      break;
    case EventKind::kLeave:
      tp = TracePoint::kChurn;
      a = 1.0;  // leave
      b = observable ? logical_at(e.node, ln.now) : 0.0;
      break;
    case EventKind::kScramble:
      tp = TracePoint::kFault;
      a = 10.0;  // fault::FaultKind::kScramble
      b = observable ? logical_at(e.node, ln.now) : 0.0;
      break;
  }
  if ((tp == TracePoint::kDeliver || tp == TracePoint::kTimerFire) &&
      e.node != kInvalidNode) {
    a = logical_at(e.node, ln.now);
    b = clock_slots_[slot(e.node)].value_at(ln.now);
    const double mult =
        nodes_[static_cast<std::size_t>(e.node)]->rate_multiplier();
    if (mult > 1.0) flags |= obs::kFlagFastMode;
    if (ln.last_event.woke) flags |= obs::kFlagWoke;
    if (!std::isnan(mult_before) && mult != mult_before) {
      flags |= obs::kFlagModeChange;
      emit(ln, TracePoint::kModeChange, ln.now, e.node, e.edge, mult_before,
           mult, flags, qsize);
    }
  }
  emit(ln, tp, ln.now, e.node, e.edge, a, b, flags, qsize);
}

void Simulator::schedule_rate_change(NodeId v, RealTime at, double rate) {
  assert(at >= now_ - kTimeTolerance);
  Event e;
  e.time = std::max(at, now_);
  e.kind = EventKind::kRateChange;
  e.node = v;
  e.rate = rate;
  e.rate_from_policy = false;
  push_event(e, v);
}

void Simulator::schedule_scramble(NodeId v, RealTime at, std::uint64_t seed,
                                  double magnitude) {
  assert(at >= now_ - kTimeTolerance);
  Event e;
  e.time = std::max(at, now_);
  e.kind = EventKind::kScramble;
  e.node = v;
  e.generation = scramble_payloads_.size();
  scramble_payloads_.push_back(ScramblePayload{seed, magnitude});
  push_event(e, v);
}

void Simulator::wake_node(Lane& ln, NodeId v, const Message* trigger) {
  const std::size_t sl = slot(v);
  assert((status_slots_[sl] & kAwakeBit) == 0);
  status_slots_[sl] |= kAwakeBit;
  clock_slots_[sl].start(ln.now);
  nodes_[static_cast<std::size_t>(v)]->on_wake(ln.services->pin(v), trigger);
  if (obs::kTraceCompiled && recorder_ != nullptr) {
    emit(ln, obs::TracePoint::kWake, ln.now, v, obs::kNoTraceEdge,
         logical_at(v, ln.now), clock_slots_[sl].value_at(ln.now),
         obs::kFlagWoke, 0);
  }
}

std::uint32_t Simulator::edge_index(NodeId u, NodeId v) const {
  assert(csr_->version() == graph_.version() &&
         "Graph mutated after the CSR snapshot; call grow_topology() "
         "before scheduling against new edges");
  const std::uint32_t e = csr_->find_edge(u, v);
  assert(e != graph::kNoEdge && "no such edge");
  return e;
}

bool Simulator::link_up(NodeId u, NodeId v) const {
  return link_up(static_cast<std::size_t>(edge_index(u, v)));
}

void Simulator::schedule_link_change(NodeId u, NodeId v, bool up, RealTime at) {
  assert(at >= now_ - kTimeTolerance);
  Event e;
  e.time = std::max(at, now_);
  e.kind = EventKind::kLinkChange;
  e.node = u;
  e.node2 = v;
  e.edge = edge_index(u, v);  // resolved once, here
  e.link_up = up;
  push_link_change(e, u);
}

void Simulator::schedule_crash(NodeId v, RealTime at) {
  assert(at >= now_ - kTimeTolerance);
  // The crash marker goes first (per-source seq order among same-time
  // events): the node is dead before its links report down, so only the
  // surviving endpoints get on_link_change callbacks.  Per-link events are
  // kept (rather than one bulk cut) so incremental observers fold each
  // neighbor's reaction.
  Event c;
  c.time = std::max(at, now_);
  c.kind = EventKind::kCrash;
  c.node = v;
  push_event(c, v);
  for (const graph::Graph::Arc* a = csr_->begin(v); a != csr_->end(v); ++a) {
    Event e;
    e.time = c.time;
    e.kind = EventKind::kLinkChange;
    e.node = v;
    e.node2 = a->to;
    e.edge = a->edge;
    e.link_up = false;
    push_link_change(e, v);
  }
}

void Simulator::schedule_recovery(NodeId v, RealTime at) {
  assert(at >= now_ - kTimeTolerance);
  // Links come back first so the on_rejoin() re-announcement broadcast by
  // the kRecover event (same instant, seq order) reaches the neighbors.
  for (const graph::Graph::Arc* a = csr_->begin(v); a != csr_->end(v); ++a) {
    Event e;
    e.time = std::max(at, now_);
    e.kind = EventKind::kLinkChange;
    e.node = v;
    e.node2 = a->to;
    e.edge = a->edge;
    e.link_up = true;
    push_link_change(e, v);
  }
  Event r;
  r.time = std::max(at, now_);
  r.kind = EventKind::kRecover;
  r.node = v;
  push_event(r, v);
}

// ---- churn -------------------------------------------------------------------

void Simulator::set_initially_absent(NodeId v) {
  if (setup_done_) {
    throw std::logic_error(
        "Simulator::set_initially_absent must precede the first run");
  }
  status_slots_[slot(v)] |= kDepartedBit;
}

void Simulator::set_link_initially_down(NodeId u, NodeId v) {
  if (setup_done_) {
    throw std::logic_error(
        "Simulator::set_link_initially_down must precede the first run");
  }
  const std::uint32_t e = edge_index(u, v);
  for (Lane& ln : lanes_) ln.link_up[e] = 0;
  if (windowed_) link_up_[e] = 0;
}

void Simulator::schedule_node_join(NodeId v, RealTime at) {
  assert(at >= now_ - kTimeTolerance);
  Event e;
  e.time = std::max(at, now_);
  e.kind = EventKind::kJoin;
  e.node = v;
  push_event(e, v);
}

void Simulator::schedule_node_leave(NodeId v, RealTime at) {
  assert(at >= now_ - kTimeTolerance);
  Event e;
  e.time = std::max(at, now_);
  e.kind = EventKind::kLeave;
  e.node = v;
  push_event(e, v);
}

void Simulator::grow_topology(bool new_edges_up) {
  if (windowed_) {
    throw std::logic_error(
        "Simulator::grow_topology: the sharded engine pre-declares its edge "
        "universe (cut tables and lookahead bounds are fixed at "
        "configure_shards); add the churnable edges to the Graph before "
        "constructing the Simulator, or rebalance with repartition()");
  }
  csr_ = graph_.csr();
  if (csr_->num_nodes() != static_cast<std::size_t>(slot_of_.size())) {
    throw std::logic_error(
        "Simulator::grow_topology: the node universe is fixed at "
        "construction (churn uses presence, not resizing)");
  }
  lanes_[0].link_up.resize(graph_.num_edges(), new_edges_up ? 1 : 0);
}

void Simulator::repartition(const std::string& strategy) {
  if (!windowed_) {
    throw std::logic_error(
        "Simulator::repartition requires the sharded engine");
  }
  if (in_window_ || !setup_done_) {
    throw std::logic_error(
        "Simulator::repartition must run between run_until calls");
  }
  const auto n = static_cast<std::size_t>(graph_.num_nodes());
  const auto k = static_cast<int>(lanes_.size());
  // 1. New assignment, guided by the *live* subgraph (links currently up —
  // under churn the dead weight of absent nodes and removed edges is
  // exactly what the old partition is mis-balanced around).  The installed
  // Partition must cover the full edge universe: its cut tables drive the
  // conservative horizons for every schedulable event, not just the live
  // ones.
  graph::Graph live(static_cast<graph::NodeId>(n));
  const auto& universe = graph_.edges();
  for (std::uint32_t e = 0; e < universe.size(); ++e) {
    if (link_up_[e]) live.add_edge(universe[e].first, universe[e].second);
  }
  const std::string strat = strategy.empty() ? partition_strategy_ : strategy;
  const graph::Graph& guide = live.num_edges() > 0 ? live : graph_;
  graph::Partition next = graph::Partition::from_assignment(
      graph_, graph::Partition::make(guide, k, strat).shard_assignment(), k);
  // 2. Drain every lane into partition-independent snapshots.  Twins are
  // dropped (recreated below from their primaries against the new cut);
  // message payloads ride along so they can enter the destination slab.
  // Timer identity is read off the wheel — the exact (deadline, seq) pair
  // must survive, since recomputing either would change the canonical
  // order.
  std::vector<Event> events;
  std::vector<std::pair<Event, Message>> deliveries;
  std::uint64_t old_arms = 0;
  std::uint64_t old_fires = 0;
  for (Lane& ln : lanes_) {
    for (const auto& box : ln.outbox) {
      (void)box;
      assert(box.empty() && "outboxes drain at every barrier");
    }
    assert(ln.flips.empty() && ln.trace.empty());
    old_arms += ln.wheel.stats().arms;
    old_fires += ln.wheel.stats().fires;
    while (!ln.queue.empty()) {
      Event e = ln.queue.pop();
      if (e.twin) continue;
      if (e.kind == EventKind::kMessageDelivery) {
        deliveries.emplace_back(e, ln.slab.take(e.msg));
      } else {
        events.push_back(e);
      }
    }
  }
  struct LiveTimer {
    NodeId node;
    int slot;
    RealTime time;
    std::uint64_t seq;
  };
  std::vector<LiveTimer> timers;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    for (int sl = 0; sl < kMaxTimerSlots; ++sl) {
      TimerState& ts = timer(v, sl);
      if (ts.pending == TimerWheel::kNull) continue;
      const TimerWheel::Fired fi = lane_of(v).wheel.entry_info(ts.pending);
      timers.push_back(LiveTimer{v, sl, fi.time, fi.seq});
      ts.pending = TimerWheel::kNull;  // re-armed on the new wheel below
    }
  }
  // 3. Snapshot the slot-indexed hot state by node id, and the per-lane
  // counters by lane index (only the sums are canonical; the per-lane
  // split is partition-dependent bookkeeping).
  std::vector<HardwareClock> clock_by_node(n);
  std::vector<std::uint8_t> status_by_node(n);
  std::vector<TimerState> tstate_by_node(
      n * static_cast<std::size_t>(kMaxTimerSlots));
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t sl = slot(static_cast<NodeId>(v));
    clock_by_node[v] = clock_slots_[sl];
    status_by_node[v] = status_slots_[sl];
    for (int s = 0; s < kMaxTimerSlots; ++s) {
      tstate_by_node[v * static_cast<std::size_t>(kMaxTimerSlots) +
                     static_cast<std::size_t>(s)] =
          timer_slots_[sl * static_cast<std::size_t>(kMaxTimerSlots) +
                       static_cast<std::size_t>(s)];
    }
  }
  std::vector<Lane> old_counters = std::vector<Lane>();  // counters only
  old_counters.reserve(lanes_.size());
  for (Lane& ln : lanes_) {
    Lane c;
    c.broadcasts = ln.broadcasts;
    c.delivered = ln.delivered;
    c.dropped = ln.dropped;
    c.events = ln.events;
    c.t_cancels = ln.t_cancels;
    c.crashes = ln.crashes;
    c.recoveries = ln.recoveries;
    c.joins = ln.joins;
    c.leaves = ln.leaves;
    c.canon_pushes = ln.canon_pushes;
    c.canon_pops = ln.canon_pops;
    old_counters.push_back(std::move(c));
  }
  // 4. Install the partition: new slot permutation, scattered hot state,
  // fresh cut distances, fresh lanes with their link views restored from
  // the barrier-reconciled global state.
  part_ = std::make_unique<graph::Partition>(std::move(next));
  if (!strategy.empty()) partition_strategy_ = strategy;
  std::uint32_t next_slot = 0;
  for (int s = 0; s < part_->num_shards(); ++s) {
    for (const NodeId v : part_->members(s)) {
      slot_of_[static_cast<std::size_t>(v)] = next_slot++;
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t sl = slot(static_cast<NodeId>(v));
    clock_slots_[sl] = clock_by_node[v];
    status_slots_[sl] = status_by_node[v];
    for (int s = 0; s < kMaxTimerSlots; ++s) {
      timer_slots_[sl * static_cast<std::size_t>(kMaxTimerSlots) +
                   static_cast<std::size_t>(s)] =
          tstate_by_node[v * static_cast<std::size_t>(kMaxTimerSlots) +
                         static_cast<std::size_t>(s)];
    }
  }
  compute_cut_dist();
  init_lanes(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& ln = lanes_[i];
    ln.now = now_;
    ln.link_up.assign(link_up_.begin(), link_up_.end());
    ln.broadcasts = old_counters[i].broadcasts;
    ln.delivered = old_counters[i].delivered;
    ln.dropped = old_counters[i].dropped;
    ln.events = old_counters[i].events;
    ln.t_cancels = old_counters[i].t_cancels;
    ln.crashes = old_counters[i].crashes;
    ln.recoveries = old_counters[i].recoveries;
    ln.joins = old_counters[i].joins;
    ln.leaves = old_counters[i].leaves;
    ln.canon_pushes = old_counters[i].canon_pushes;
    ln.canon_pops = old_counters[i].canon_pops;
    const std::size_t members =
        part_->members(static_cast<int>(i)).size();
    ln.queue.reserve(members * 2);
    ln.slab.reserve(members);
    ln.wheel.configure(members);
    ln.wheel.reserve(members * 2);
  }
  compute_lane_lookahead();
  // 5. Re-file everything WITHOUT re-stamping: keys are immutable.  Twins
  // are recreated for link changes that are cut edges under the new
  // partition; canonical push counters are untouched (each logical event
  // was counted at creation).
  for (const Event& e : events) {
    Lane& dest = lane_of(e.node);
    dest.queue.push(e);
    if (e.kind == EventKind::kLinkChange) {
      note_queued(dest, e.node, e.node2, e.time);
      Lane& other = lane_of(e.node2);
      if (&other != &dest) {
        Event tw = e;
        tw.twin = true;
        other.queue.push(tw);
        ++other.twins_in_queue;
        note_queued(other, e.node, e.node2, e.time);
      }
    } else {
      note_queued(dest, e.node, kInvalidNode, e.time);
    }
  }
  for (auto& [e, m] : deliveries) {
    Lane& dest = lane_of(e.node);
    Event ev = e;
    ev.msg = dest.slab.put(m, ev.time);
    dest.queue.push(ev);
    note_queued(dest, ev.node, kInvalidNode, ev.time);
  }
  for (const LiveTimer& lt : timers) {
    Lane& dest = lane_of(lt.node);
    timer(lt.node, lt.slot).pending = dest.wheel.arm(
        lt.time, lt.seq, lt.node, static_cast<std::uint8_t>(lt.slot));
    note_queued(dest, lt.node, kInvalidNode, lt.time);
  }
  // 6. Wheel-stat carry: the fresh wheels count one arm per live re-arm
  // and zero fires; the canonical totals must read as if nothing happened.
  std::uint64_t new_arms = 0;
  for (const Lane& ln : lanes_) new_arms += ln.wheel.stats().arms;
  assert(old_arms >= new_arms);
  carry_arms_ += old_arms - new_arms;
  carry_fires_ += old_fires;
  ++repartitions_;
}

void Simulator::apply_link_change(Lane& ln, const Event& e) {
  if ((ln.link_up[e.edge] != 0) == e.link_up) return;  // no-op flip
  ln.link_up[e.edge] = e.link_up ? 1 : 0;
  if (windowed_ && !e.twin) {
    // Primary copy records the flip for the barrier's global reconcile.
    ln.flips.push_back(
        Lane::LinkFlip{e.time, e.seq, e.source, e.edge, e.link_up});
  }
  for (const NodeId endpoint : {e.node, e.node2}) {
    if (windowed_ && part_->shard_of(endpoint) != ln.index) {
      continue;  // the other lane's copy runs this endpoint's callback
    }
    if ((status_slots_[slot(endpoint)] &
         (kAwakeBit | kCrashedBit | kDepartedBit)) != kAwakeBit) {
      continue;  // dead or departed nodes get no callbacks
    }
    nodes_[static_cast<std::size_t>(endpoint)]->on_link_change(
        ln.services->pin(endpoint), endpoint == e.node ? e.node2 : e.node,
        e.link_up);
  }
}

void Simulator::do_broadcast(Lane& ln, NodeId v, const Message& m) {
  ++ln.broadcasts;
  if (obs::kTraceCompiled && recorder_ != nullptr) {
    emit(ln, obs::TracePoint::kBroadcast, ln.now, v, obs::kNoTraceEdge,
         m.logical, m.logical_max, 0,
         static_cast<std::uint32_t>(ln.queue.size()));
  }
  for (const graph::Graph::Arc* a = csr_->begin(v); a != csr_->end(v); ++a) {
    if (!ln.link_up[a->edge]) continue;  // link currently down
    if (!delay_plans_) {
      const RealTime t_recv = delay_->delivery_time(v, a->to, ln.now, *this);
      assert(t_recv >= ln.now - kTimeTolerance && "negative message delay");
      Event e;
      e.time = std::max(t_recv, ln.now);
      e.kind = EventKind::kMessageDelivery;
      e.node = a->to;
      e.edge = a->edge;
      push_delivery(ln, e, v, m);
      continue;
    }
    // Faulty-channel path: the policy plans zero (drop), one, or several
    // (duplication) copies, each possibly perturbed (corruption).
    ln.plan_scratch.clear();
    delay_->plan_deliveries(v, a->to, ln.now, *this, ln.plan_scratch);
    if (ln.plan_scratch.empty()) {
      ++ln.dropped;  // the channel ate it
      continue;
    }
    for (const PlannedDelivery& pd : ln.plan_scratch) {
      assert(pd.at >= ln.now - kTimeTolerance && "negative message delay");
      Message copy = m;
      copy.logical += pd.logical_delta;
      copy.logical_max += pd.logical_max_delta;
      Event e;
      e.time = std::max(pd.at, ln.now);
      e.kind = EventKind::kMessageDelivery;
      e.node = a->to;
      e.edge = a->edge;
      push_delivery(ln, e, v, copy);
    }
  }
}

void Simulator::arm_timer(Lane& ln, NodeId v, int slot, ClockValue target) {
  assert(slot >= 0 && slot < kMaxTimerSlots);
  TimerState& ts = timer(v, slot);
  if (ts.pending != TimerWheel::kNull) {
    // Re-arm of a pending slot: the old deadline is removed in O(1) (the
    // pre-wheel engine left it in the heap to pop as stale).
    lane_of(v).wheel.cancel(ts.pending);
    ts.pending = TimerWheel::kNull;
    ++ln.t_cancels;
  }
  ts.target = target;
  ts.armed = true;
  schedule_timer_event(v, slot, ln.now);
}

void Simulator::disarm_timer(Lane& ln, NodeId v, int slot) {
  assert(slot >= 0 && slot < kMaxTimerSlots);
  TimerState& ts = timer(v, slot);
  ts.armed = false;
  if (ts.pending != TimerWheel::kNull) {
    lane_of(v).wheel.cancel(ts.pending);
    ts.pending = TimerWheel::kNull;
    ++ln.t_cancels;
  }
}

void Simulator::schedule_timer_event(NodeId v, int slot, RealTime now) {
  const HardwareClock& hc = clock_slots_[this->slot(v)];
  TimerState& ts = timer(v, slot);
  assert(ts.armed);
  assert(ts.pending == TimerWheel::kNull);
  assert(hc.started() && "timers require a started clock");
  const RealTime deadline = hc.time_when_reaches(ts.target, now);
  // The arm consumes v's next sequence number exactly where the pre-wheel
  // engine stamped its timer-event push, so every event key in the run is
  // identical to the heap engine's.
  const std::uint64_t seq = next_seq_[seq_index(v)]++;
  Lane& dest = lane_of(v);
  ts.pending =
      dest.wheel.arm(deadline, seq, v, static_cast<std::uint8_t>(slot));
  if (windowed_) note_queued(dest, v, kInvalidNode, deadline);
}

void Simulator::apply_rate_change(Lane& ln, NodeId v, double rate) {
  const std::size_t sl = slot(v);
  clock_slots_[sl].set_rate(ln.now, rate);
  // Crashed/departed nodes keep drifting but reschedule nothing: their
  // timer fires are suppressed anyway, and recovery/rejoin re-anchors the
  // armed slots.
  if ((status_slots_[sl] & (kAwakeBit | kCrashedBit | kDepartedBit)) !=
      kAwakeBit) {
    return;
  }
  // Re-anchor all armed hardware-time timers onto the new rate.
  for (int slot = 0; slot < kMaxTimerSlots; ++slot) {
    TimerState& ts = timer(v, slot);
    if (!ts.armed) continue;
    if (ts.pending != TimerWheel::kNull) {
      lane_of(v).wheel.cancel(ts.pending);
      ts.pending = TimerWheel::kNull;
      ++ln.t_cancels;
    }
    schedule_timer_event(v, slot, ln.now);
  }
}

void Simulator::schedule_next_rate_change(NodeId v, RealTime now) {
  if (auto step = drift_->next_change(v, now)) {
    assert(step->at >= now - kTimeTolerance);
    Event e;
    e.time = std::max(step->at, now);
    e.kind = EventKind::kRateChange;
    e.node = v;
    e.rate = step->rate;
    push_event(e, v);
  }
}

void Simulator::maybe_progress(bool force) {
  const auto nw = std::chrono::steady_clock::now();
  if (!progress_init_) {
    progress_init_ = true;
    progress_start_ = nw;
    progress_last_ = nw;
    progress_last_events_ = events_processed();
    return;
  }
  const double since =
      std::chrono::duration<double>(nw - progress_last_).count();
  if (!force && since < progress_interval_) return;
  const std::uint64_t ev = events_processed();
  const double rate =
      since > 0.0 ? static_cast<double>(ev - progress_last_events_) / since
                  : 0.0;
  std::size_t depth = 0;
  for (const Lane& ln : lanes_) depth += ln.queue.size() + ln.wheel.live();
  const double wall =
      std::chrono::duration<double>(nw - progress_start_).count();
  std::fprintf(stderr,
               "[tbcs] wall=%.1fs sim_t=%.3f events=%llu (%.3g ev/s) "
               "queue=%zu",
               wall, now_, static_cast<unsigned long long>(ev), rate, depth);
  if (windowed_) {
    std::fprintf(stderr, " shards=%zu horizon=%.6f", lanes_.size(), win_end_);
  }
  std::fprintf(stderr, "\n");
  progress_last_ = nw;
  progress_last_events_ = ev;
}

}  // namespace tbcs::sim
