#include "sim/ladder_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tbcs::sim {

namespace {

// Descending by the canonical key: back() of a sorted range pops first.
inline bool event_after(const Event& a, const Event& b) {
  return event_before(b, a);
}

// Width refinement floor: below this a bucket is sorted whatever its size
// (same-time pileups would otherwise spawn rungs forever).
inline double min_width(double base) {
  return (std::abs(base) + 1.0) * 1e-12;
}

// Bucket index for time t in a rung of nb buckets starting at base.  A
// *pure function of t* shared by push and spawn placement: equal times
// always share a bucket and floor() is monotone, so bucket membership can
// never reorder keys.  Times below base (possible for events that were
// position-clamped in a parent rung) land in bucket 0, which drains first.
inline std::size_t bucket_index(double t, double base, double width,
                                std::size_t nb) {
  const double q = (t - base) / width;
  if (!(q > 0.0)) return 0;
  const std::size_t idx = static_cast<std::size_t>(q);
  return idx < nb ? idx : nb - 1;
}

}  // namespace

void LadderQueue::push(const Event& e) {
  ++size_;
  if (e.time < run_end_) {
    // Below the sorted run's horizon: pay a sorted insert.  Requires a
    // delay shorter than one bucket width, so this path is cold.
    ++istats_.run_inserts;
    const auto it = std::upper_bound(run_.begin(), run_.end(), e, event_after);
    run_.insert(it, e);
    return;
  }
  // Innermost rung first: rung spans are nested (each inner rung refines
  // the bucket at its parent's drain position), so the first rung whose
  // span covers e.time is the finest one.
  for (auto r = rungs_.rbegin(); r != rungs_.rend(); ++r) {
    if (e.time >= r->end()) continue;
    std::size_t idx =
        bucket_index(e.time, r->base, r->width, r->buckets.size());
    // Clamping *up* to the drain position is safe: e.time >= run_end_
    // already orders it after everything in the run, the clamp is monotone,
    // and the bucket at pos is the next one sorted.
    if (idx < r->pos) idx = r->pos;
    r->buckets[idx].push_back(e);
    return;
  }
  overflow_.push_back(e);
}

void LadderQueue::advance() {
  assert(size_ > 0 && "advance on an empty ladder");
  for (;;) {
    while (!rungs_.empty()) {
      Rung& r = rungs_.back();
      while (r.pos < r.buckets.size() && r.buckets[r.pos].empty()) ++r.pos;
      if (r.pos == r.buckets.size()) {
        // Rung exhausted; recycle its bucket storage and resume the parent.
        for (std::vector<Event>& b : r.buckets) {
          if (b.capacity() > 0 && bucket_pool_.size() < kMaxBuckets) {
            bucket_pool_.push_back(std::move(b));
          }
        }
        rungs_.pop_back();
        continue;
      }
      std::vector<Event>& bucket = r.buckets[r.pos];
      if (bucket.size() > kSpillAt && r.width > min_width(r.base)) {
        // Oversized bucket: refine it into a finer rung instead of paying
        // one big sort.  The new rung spans exactly this bucket.
        const double lo = r.base + r.width * static_cast<double>(r.pos);
        const double hi = lo + r.width;
        std::vector<Event> events = std::move(bucket);
        bucket.clear();
        ++r.pos;
        ++istats_.spills;
        spawn_rung(std::move(events), lo, hi);  // invalidates r
        continue;
      }
      // Sort this bucket and make it the run.  Swap keeps both allocations
      // alive: the bucket inherits the drained run's capacity.
      run_.swap(bucket);
      bucket.clear();
      std::sort(run_.begin(), run_.end(), event_after);
      ++istats_.resorts;
      ++r.pos;
      run_end_ = r.base + r.width * static_cast<double>(r.pos);
      return;
    }
    // No rungs left.  If the overflow has events, re-bucket it into a
    // fresh root rung spanning its [min, max]; otherwise everything lives
    // in the run already.
    if (overflow_.empty()) {
      assert(!run_.empty() && "ladder lost events");
      return;
    }
    double lo = overflow_.front().time;
    double hi = lo;
    for (const Event& e : overflow_) {
      if (e.time < lo) lo = e.time;
      if (e.time > hi) hi = e.time;
    }
    std::vector<Event> events;
    events.swap(overflow_);
    ++istats_.rebuckets;
    // Inflate the span so the max-time event is strictly inside the rung:
    // push's membership test (t < end) then agrees with spawn placement
    // for every time the rung was built from, fp edges included.
    double span = (hi - lo) * (1.0 + 1e-9) + min_width(lo);
    spawn_rung(std::move(events), lo, lo + span);
  }
}

void LadderQueue::spawn_rung(std::vector<Event>&& events, double lo,
                             double hi) {
  Rung r;
  r.base = lo;
  std::size_t nb = events.size() / kTargetPerBucket;
  if (nb < kMinBuckets) nb = kMinBuckets;
  if (nb > kMaxBuckets) nb = kMaxBuckets;
  double span = hi - lo;
  if (!(span > 0.0)) span = min_width(lo);
  r.width = span / static_cast<double>(nb);
  if (!(r.width > 0.0)) r.width = min_width(lo);
  r.buckets.resize(nb);
  for (std::vector<Event>& b : r.buckets) {
    if (!bucket_pool_.empty()) {
      b = std::move(bucket_pool_.back());
      bucket_pool_.pop_back();
      b.clear();
    }
  }
  for (const Event& e : events) {
    r.buckets[bucket_index(e.time, r.base, r.width, nb)].push_back(e);
  }
  if (bucket_pool_.size() < kMaxBuckets) {
    events.clear();
    // The drained carrier vector is bucket-sized storage too.
    bucket_pool_.push_back(std::move(events));
  }
  rungs_.push_back(std::move(r));
  if (rungs_.size() > istats_.peak_rungs) istats_.peak_rungs = rungs_.size();
}

void LadderQueue::clear() {
  run_.clear();
  for (Rung& r : rungs_) {
    for (std::vector<Event>& b : r.buckets) b.clear();
  }
  rungs_.clear();
  overflow_.clear();
  size_ = 0;
  run_end_ = -kInfinity;
}

void LadderQueue::reserve(std::size_t expected) {
  overflow_.reserve(expected);
  run_.reserve(kSpillAt * 2);
}

std::size_t LadderQueue::capacity() const {
  std::size_t cap = run_.capacity() + overflow_.capacity();
  for (const Rung& r : rungs_) {
    for (const std::vector<Event>& b : r.buckets) cap += b.capacity();
  }
  for (const std::vector<Event>& b : bucket_pool_) cap += b.capacity();
  return cap;
}

}  // namespace tbcs::sim
