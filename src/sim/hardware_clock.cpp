#include "sim/hardware_clock.hpp"

#include <cassert>

namespace tbcs::sim {

void HardwareClock::start(RealTime t) {
  assert(!started_);
  assert(rate_ > 0.0);
  started_ = true;
  start_time_ = t;
  anchor_time_ = t;
  anchor_value_ = 0.0;
}

ClockValue HardwareClock::value_at(RealTime t) const {
  if (!started_ || t <= start_time_) return 0.0;
  assert(t >= anchor_time_ - kTimeTolerance);
  return anchor_value_ + rate_ * (t - anchor_time_);
}

void HardwareClock::reanchor(RealTime t, ClockValue value) {
  assert(started_);
  assert(t >= anchor_time_ - kTimeTolerance);
  anchor_time_ = t;
  anchor_value_ = value;
}

void HardwareClock::advance_anchor(RealTime t) {
  assert(t >= anchor_time_ - kTimeTolerance);
  anchor_value_ = value_at(t);
  anchor_time_ = t;
}

void HardwareClock::set_rate(RealTime t, double rate) {
  assert(rate > 0.0);
  if (!started_) {
    // Rate changes before initialization only affect the initial rate.
    rate_ = rate;
    return;
  }
  advance_anchor(t);
  rate_ = rate;
}

RealTime HardwareClock::time_when_reaches(ClockValue target, RealTime now) const {
  assert(started_);
  const ClockValue current = value_at(now);
  if (target <= current) return now;
  return now + (target - current) / rate_;
}

}  // namespace tbcs::sim
