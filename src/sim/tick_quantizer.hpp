// Discrete clock synchronization (Section 8.4).
//
// Real hardware clocks are not continuous: they emit ticks at a (varying)
// frequency f, computations distinguish only whole ticks, and actions
// happen at tick boundaries.  TickQuantizedNode wraps any algorithm so
// that
//   * the hardware clock it reads is floor(H * f) / f,
//   * incoming messages are buffered until the next tick,
//   * timer targets are rounded up to tick boundaries.
// Section 8.4's conclusion — "T is basically replaced by max(1/f, T)" —
// is validated by the discrete-tick tests.
#pragma once

#include <memory>
#include <vector>

#include "sim/node.hpp"

namespace tbcs::sim {

class TickQuantizedNode final : public Node {
 public:
  /// Wraps `inner`, which may use timer slots [0, kMaxTimerSlots - 2);
  /// the last slot is reserved for the tick scheduler.
  TickQuantizedNode(std::unique_ptr<Node> inner, double frequency);

  void on_wake(NodeServices& sv, const Message* by_message) override;
  void on_message(NodeServices& sv, const Message& m) override;
  void on_timer(NodeServices& sv, int slot) override;
  void on_link_change(NodeServices& sv, NodeId neighbor, bool up) override;
  void on_rejoin(NodeServices& sv) override;
  ClockValue logical_at(ClockValue hardware_now) const override;
  double rate_multiplier() const override;

  const Node& inner() const { return *inner_; }
  double tick_length() const { return 1.0 / frequency_; }

 private:
  class TickServices;
  static constexpr int kTickSlot = kMaxTimerSlots - 1;

  ClockValue quantize(ClockValue h) const;
  ClockValue next_tick_after(ClockValue h) const;
  void drain(NodeServices& sv);

  std::unique_ptr<Node> inner_;
  double frequency_;
  std::vector<Message> pending_;
  bool tick_armed_ = false;
};

}  // namespace tbcs::sim
