// Discrete-event simulator for the paper's distributed-system model
// (Section 3).
//
// The simulator owns, per node: the algorithm instance (Node), the
// drifting hardware clock, and the armed timers.  An execution E — the
// complete specification of all hardware clock rates and message delays —
// is given by a DriftPolicy plus a DelayPolicy; running the same policies
// with the same seeds reproduces the same execution exactly.
//
// Between events every clock is linear in real time, so observers invoked
// at event boundaries see the exact extrema of all skew processes.
//
// Event identity: every event carries the key (time, source node,
// per-source sequence number), stamped at creation.  The key is a pure
// function of the causal history — independent of which queue the event
// sits in or when it was pushed — which is what makes the sharded engine
// below bit-identical to the serial one.
//
// Sharded execution (configure_shards): the node set is split by a
// graph::Partition into per-shard lanes, each with its own event queue and
// message slab.  Lanes advance in lock-step conservative time windows
// [W_start, W_end) bounded by the *cut-aware safe horizon*: no cross-shard
// send processed inside the window can be delivered before W_end.  The
// horizon is computed per lane from how soon an event can reach a cut
// node — nodes carry their intra-shard BFS distance to the nearest cut
// endpoint (capped at kMaxCutDist), lanes keep a lazy min-heap of queued
// event times per distance class, and the earliest possible cross-shard
// arrival from lane i is
//
//   boundary_time(i) + la_out(i),   where
//   boundary_time(i) = min( min_d( bnd_top(i, d) + d * delta_intra(i) ),
//                           t_next(i) + kMaxCutDist * delta_intra(i) )
//
// with la_out(i) the minimum per-edge DelayPolicy::min_delay(u, v) over
// lane i's outgoing cut arcs and delta_intra(i) the minimum over its
// intra-shard arcs.  This is never smaller than the classic global bound
// t_next + min_delay() and is unbounded for lanes with no cut arcs, so
// activity deep inside a shard — e.g. a subtree far from its tree's cut
// vertex — no longer stalls every other lane.
//
// Cross-shard deliveries accumulate in per-lane outboxes and are
// exchanged at the window barrier; cut-edge link changes are mirrored as
// "twin" events into the second endpoint's lane so both lanes apply the
// flip at the same point of their local key order.  All observable output
// (recorder log, flight-recorder trace, canonical queue statistics) is
// merged at barriers in event-key order, so `--shards N` output is
// byte-identical for every N.  Observer callbacks and canonical peak
// sampling fire only at *observation barriers*, whose times are a pure
// function of the event set (next-event time + observation interval, plus
// probes and the run horizon) — never at intermediate horizon-clipped
// barriers, whose times depend on the partition.
//
// Hot-path layout: adjacency is the graph's CSR snapshot (each neighbor
// carries its undirected edge index inline, so link-state checks never
// hash), message payloads live in a delivery-time-binned chunk slab, and
// delivery/link events store their edge index so processing is array
// lookups only.  Node self-timers live in a per-lane TimerWheel (O(1)
// cancel/re-arm) merged with the event queue's pop stream; the queue
// itself is a 4-ary heap or, at large n, a ladder queue (see
// event_queue.hpp), both popping in the identical canonical order.
// Per-node hot state (hardware clock, timer slots, awake/crashed bits) is
// struct-of-arrays, indexed by a *slot* permutation that lays each
// shard's members out contiguously — a lane's working set is a dense
// block instead of n interleaved structs.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "sim/delay_policy.hpp"
#include "sim/drift_policy.hpp"
#include "sim/event_queue.hpp"
#include "sim/hardware_clock.hpp"
#include "sim/message_slab.hpp"
#include "sim/node.hpp"
#include "sim/timer_wheel.hpp"
#include "sim/types.hpp"

namespace tbcs::obs {
class FlightRecorder;
enum class TracePoint : std::uint16_t;
}

namespace tbcs::sim {

struct SimConfig {
  /// If true, all nodes are initialized spontaneously at t = 0 (the
  /// convention of the lower-bound proofs, Section 7: "all nodes are
  /// initialized at time 0").  If false, only `root` wakes at t = 0 and
  /// the rest are woken by the initialization flood (Section 4.2).
  bool wake_all_at_zero = false;

  /// The spontaneously waking node when flooding initialization is used.
  graph::NodeId root = 0;

  /// Additional nodes that wake spontaneously at t = 0 ("any node waking
  /// up by itself simply sets L^max := 0 and sends <0,0>", Section 4.2):
  /// several independent initialization floods that merge.
  std::vector<graph::NodeId> extra_roots;

  /// If > 0, a probe event fires every `probe_interval` so observers get
  /// called even during event-free stretches.
  Duration probe_interval = 0.0;

  /// Sharded engine only: target spacing of observation barriers (the
  /// partition-invariant barriers where observers run and the canonical
  /// queue peak is sampled).  <= 0 picks 4x the delay policy's global
  /// min_delay().  The serial engine ignores it (observers run per event).
  Duration observation_interval = 0.0;

  /// Event-queue implementation.  kAuto picks the ladder queue at or above
  /// kLadderAutoThreshold nodes and the 4-ary heap below; both pop in the
  /// identical canonical order, so every output byte is the same either
  /// way (asserted by the differential tests and the smoke gates).
  QueueSelect queue = QueueSelect::kAuto;
};

class Simulator {
 public:
  explicit Simulator(const graph::Graph& g, SimConfig cfg = {});
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // ---- setup -------------------------------------------------------------

  void set_node(NodeId v, std::unique_ptr<Node> node);

  /// Convenience: installs factory(v) at every node.
  void set_all_nodes(const std::function<std::unique_ptr<Node>(NodeId)>& factory);

  void set_drift_policy(std::shared_ptr<DriftPolicy> policy);
  void set_delay_policy(std::shared_ptr<DelayPolicy> policy);

  /// Switches to the sharded time-window engine with `shards` lanes over a
  /// graph::Partition (`strategy`: "block" | "bands" | "ml").  Must be
  /// called before the first run; requires the delay policy to certify a
  /// positive min_delay() (the lookahead), checked at setup.  `shards <= 0`
  /// keeps the classic serial engine.  With shards == 1 the engine runs
  /// the windowed code path on the calling thread — the reference that
  /// larger shard counts are gated against.
  ///
  /// `min_nodes_per_shard > 0` auto-clamps the lane count to
  /// max(1, min(shards, n / min_nodes_per_shard)): below ~that many nodes
  /// per lane, barrier overhead dominates and extra lanes make runs
  /// *slower*.  A clamp warns once per process on stderr; the requested
  /// and effective counts are reported by shards_requested() / shards()
  /// and land in the stats JSON "engine" block.
  void configure_shards(int shards, const std::string& strategy = "block",
                        int min_nodes_per_shard = 0);

  /// Number of lanes when sharded; 0 for the classic serial engine.
  int shards() const {
    return windowed_ ? static_cast<int>(lanes_.size()) : 0;
  }
  /// The shard count configure_shards() was asked for, before clamping
  /// (equal to shards() when no clamp fired; 0 for the serial engine).
  int shards_requested() const { return shards_requested_; }
  /// Partition strategy name passed to configure_shards ("" when serial).
  const std::string& partition_strategy() const { return partition_strategy_; }
  const graph::Partition* partition() const { return part_.get(); }

  /// Called after every processed event (and probe) with the current time
  /// in the serial engine; called once per window barrier when sharded.
  using Observer = std::function<void(const Simulator&, RealTime)>;
  void set_observer(Observer observer);

  /// One node whose state changed inside a window, with whether the window
  /// initialized it.  The barrier hands observers the sorted, deduplicated
  /// union over all lanes.
  struct WindowTouch {
    NodeId node = kInvalidNode;
    bool woke = false;
  };
  /// Sharded-engine observer: invoked at every window barrier with the
  /// barrier time and the touched-node set.  The set is identical for
  /// every shard count (it is a pure function of the event set), which is
  /// what lets incremental trackers produce shard-count-invariant output.
  using WindowObserver = std::function<void(
      const Simulator&, RealTime, const std::vector<WindowTouch>&)>;
  void set_window_observer(WindowObserver observer);

  /// Attaches a flight recorder (nullptr detaches).  Non-owning; the
  /// recorder must outlive the simulator or be detached first.  With no
  /// recorder attached the tracing hooks cost one pointer test per event;
  /// compiled out entirely under -DTBCS_OBS_TRACE_ENABLED=0.  When
  /// sharded, lanes buffer their records and the barrier emits them in
  /// event-key order, so recorder seq numbers follow the canonical order.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  obs::FlightRecorder* flight_recorder() const { return recorder_; }

  /// Enables a stderr heartbeat roughly every `wall_seconds` of wall time
  /// (0 disables): wall time, sim time, events/s, queue depth, and — when
  /// sharded — the current window horizon.
  void set_progress(double wall_seconds) { progress_interval_ = wall_seconds; }

  // ---- execution ----------------------------------------------------------

  /// Processes all events up to and including time t_end.  May be called
  /// repeatedly with increasing horizons.
  void run_until(RealTime t_end);

  /// Injects a one-off hardware rate change at a future time, independent
  /// of the drift policy.  Used by adversary controllers (Section 7
  /// constructions) that steer executions adaptively between run_until
  /// calls.
  void schedule_rate_change(NodeId v, RealTime at, double rate);

  // ---- dynamic topologies ---------------------------------------------------
  //
  // The graph is the set of *possible* links; each can be up or down (all
  // start up).  A message is delivered only if its link is up at delivery
  // time — messages in flight across a downed link are lost.  Both
  // endpoints get an on_link_change() callback when the state flips.

  /// Schedules the link {u, v} (which must exist in the graph) to change
  /// state at time `at`.
  void schedule_link_change(NodeId u, NodeId v, bool up, RealTime at);

  bool link_up(NodeId u, NodeId v) const;

  /// Link state by undirected edge index (parallel to topology().edges());
  /// the O(1) form used by the metrics layer.  When sharded, valid at
  /// window barriers (lanes hold the authoritative per-edge views during
  /// a window).
  bool link_up(std::size_t edge) const {
    return (windowed_ ? link_up_[edge] : lanes_[0].link_up[edge]) != 0;
  }

  /// Crash failure injection: downs all of v's links at time `at` and
  /// marks the node crashed — its hardware clock keeps running, but
  /// message deliveries and timer callbacks are suppressed (counted as
  /// drops / stale pops) until schedule_recovery() brings it back.  To
  /// every other node this is indistinguishable from a crash-stop.
  void schedule_crash(NodeId v, RealTime at);

  /// Re-joins a crashed node at time `at`: its links are restored first
  /// (same instant, FIFO order), armed timers are re-anchored, and the
  /// algorithm gets an on_rejoin() callback.  A no-op if not crashed.
  void schedule_recovery(NodeId v, RealTime at);

  bool crashed(NodeId v) const {
    return (status_slots_[slot(v)] & kCrashedBit) != 0;
  }

  /// Self-stabilization probe: overwrites v's algorithm state with
  /// adversarial values at time `at` (Node::on_scramble, drawn from `seed`
  /// bounded by `magnitude`).  Rides the canonical event stream like a
  /// rate change, so scrambled runs stay byte-identical across shard
  /// counts and queue implementations; a crashed, departed, or never-woken
  /// node has no state to scramble and the event is a traced no-op.
  void schedule_scramble(NodeId v, RealTime at, std::uint64_t seed,
                         double magnitude);

  std::uint64_t scrambles() const { return sum_lanes(&Lane::scrambles); }

  std::uint64_t messages_dropped() const { return sum_lanes(&Lane::dropped); }
  std::uint64_t crashes() const { return sum_lanes(&Lane::crashes); }
  std::uint64_t recoveries() const { return sum_lanes(&Lane::recoveries); }

  // ---- churn (dynamic membership) ------------------------------------------
  //
  // A node can be *departed*: not part of the network, indistinguishable
  // from crashed to everyone else (deliveries dropped, timers suppressed,
  // excluded from the awake set) — but with its own lifecycle events so
  // joins/leaves are first-class, countable, and traceable.  Link state is
  // orthogonal and owned by the caller: a churn plan composes the live
  // state of each edge (inserted AND both endpoints present) into explicit
  // schedule_link_change calls, so the simulator never guesses.

  /// Marks `v` as not yet part of the network.  Must be called before the
  /// first run and — when sharded — after configure_shards.  Absent nodes
  /// are skipped by the wake-all initialization; their first kJoin wakes
  /// them.
  void set_initially_absent(NodeId v);

  /// Downs the link {u, v} before the first run, without an event (the
  /// initial state is not part of the execution).  Must be called before
  /// the first run and — when sharded — after configure_shards.
  void set_link_initially_down(NodeId u, NodeId v);

  /// Schedules `v` to (re)join at time `at`.  A first join wakes the node
  /// (on_wake); a re-join re-anchors its armed timers and runs on_rejoin.
  /// No-op if the node is not departed at that time.
  void schedule_node_join(NodeId v, RealTime at);

  /// Schedules `v` to depart at time `at`: silent from that instant, like
  /// a crash but counted and traced as churn.  No-op if already departed.
  void schedule_node_leave(NodeId v, RealTime at);

  bool departed(NodeId v) const {
    return (status_slots_[slot(v)] & kDepartedBit) != 0;
  }

  std::uint64_t joins() const { return sum_lanes(&Lane::joins); }
  std::uint64_t leaves() const { return sum_lanes(&Lane::leaves); }

  /// Serial engine only: re-snapshots the topology after the caller grew
  /// the Graph with add_edge(), sizing the link-state table so the new
  /// edges are schedulable (they start `new_edges_up`).  The sharded
  /// engine pre-declares its edge universe — cut tables and lookahead
  /// bounds are fixed at configure_shards — so it refuses mid-run growth;
  /// grow the graph before constructing the Simulator instead.
  void grow_topology(bool new_edges_up = true);

  /// Sharded engine, between run_until calls only: recomputes the
  /// partition over the *live* subgraph (links currently up) with
  /// `strategy` (empty: the configure_shards strategy) and migrates every
  /// queued event, armed timer, and per-node hot slot into the new lanes
  /// — preserving each event's exact (time, source, seq) identity and all
  /// canonical counters, so a repartitioned run stays byte-identical to an
  /// unrepartitioned one.  The shard count is unchanged.  Used by the
  /// churn driver when cut growth crosses its watermark.
  void repartition(const std::string& strategy = "");

  std::uint64_t repartitions() const { return repartitions_; }

  // ---- inspection (metrics layer; not visible to algorithms) --------------

  RealTime now() const { return now_; }
  const graph::Graph& topology() const { return graph_; }
  NodeId num_nodes() const { return graph_.num_nodes(); }

  /// Initialized and neither crashed nor departed: the nodes that
  /// participate in skew metrics.  Crashed and departed nodes are
  /// excluded — their clocks free-run unobserved until recovery/rejoin
  /// folds them back in.
  bool awake(NodeId v) const {
    return (status_slots_[slot(v)] & (kAwakeBit | kCrashedBit |
                                      kDepartedBit)) == kAwakeBit;
  }
  const HardwareClock& clock(NodeId v) const { return clock_slots_[slot(v)]; }
  /// H_v(now).
  ClockValue hardware(NodeId v) const { return clock(v).value_at(now_); }
  /// L_v(now); 0 for nodes that have not been initialized yet.
  ClockValue logical(NodeId v) const;

  const Node& node(NodeId v) const {
    return *nodes_[static_cast<std::size_t>(v)];
  }
  Node& node_mutable(NodeId v) { return *nodes_[static_cast<std::size_t>(v)]; }

  std::uint64_t broadcasts() const { return sum_lanes(&Lane::broadcasts); }
  std::uint64_t messages_delivered() const {
    return sum_lanes(&Lane::delivered);
  }
  std::uint64_t events_processed() const {
    return sum_lanes(&Lane::events) + probe_events_;
  }

  /// Timer arms/fires/cancels on the wheel.  Cancels count every armed
  /// deadline that never ran its callback: explicit cancel_timer calls,
  /// re-arms of a pending slot, rate-change and recovery re-anchors, and
  /// crash-suppressed fires — exactly the population the pre-wheel engine
  /// counted as stale heap pops, now removed in O(1) instead of popped.
  /// All three are canonical (identical across shard counts and queue
  /// implementations).
  std::uint64_t timer_arms() const {
    std::uint64_t s = carry_arms_;  // history lost to repartition's fresh wheels
    for (const Lane& ln : lanes_) s += ln.wheel.stats().arms;
    return s;
  }
  std::uint64_t timer_fires() const {
    std::uint64_t s = carry_fires_;
    for (const Lane& ln : lanes_) s += ln.wheel.stats().fires;
    return s;
  }
  std::uint64_t timer_cancels() const { return sum_lanes(&Lane::t_cancels); }

  QueueImpl queue_impl() const { return queue_impl_; }

  /// Implementation-internal detail for the stats "queue_impl" block:
  /// NOT canonical (bucket/cascade counts depend on the partition), so the
  /// byte-compare gates strip it like the "engine" block.
  struct QueueImplInfo {
    QueueImpl impl = QueueImpl::kHeap;
    std::uint64_t resorts = 0;
    std::uint64_t spills = 0;
    std::uint64_t rebuckets = 0;
    std::uint64_t run_inserts = 0;
    std::size_t peak_rungs = 0;
    std::uint64_t wheel_cascades = 0;
    std::uint64_t wheel_rebases = 0;
    std::size_t queue_capacity = 0;
    std::size_t slab_capacity = 0;
    std::size_t wheel_capacity = 0;
  };
  QueueImplInfo queue_impl_info() const {
    QueueImplInfo info;
    info.impl = queue_impl_;
    for (const Lane& ln : lanes_) {
      const LadderQueue::ImplStats& ls = ln.queue.ladder_stats();
      info.resorts += ls.resorts;
      info.spills += ls.spills;
      info.rebuckets += ls.rebuckets;
      info.run_inserts += ls.run_inserts;
      info.peak_rungs = std::max(info.peak_rungs, ls.peak_rungs);
      info.wheel_cascades += ln.wheel.stats().cascades;
      info.wheel_rebases += ln.wheel.stats().rebases;
      info.queue_capacity += ln.queue.capacity();
      info.slab_capacity += ln.slab.capacity();
      info.wheel_capacity += ln.wheel.capacity();
    }
    return info;
  }

  /// Serial engine: the exact queue statistics.  Sharded engine: the
  /// canonical statistics — pushes/pops count each logical event once
  /// (cut-edge twins excluded, outbox appends counted at append time,
  /// probes counted by the coordinator), and peak is sampled at window
  /// barriers over the canonical pending count.  The canonical numbers
  /// are identical for every shard count.
  const EventQueue::Stats& queue_stats() const {
    return windowed_ ? canon_stats_ : lanes_[0].queue.stats();
  }

  /// What the event that triggered the current/last observer call changed.
  /// Logical-clock state is mutated only through node callbacks, so the
  /// nodes listed here are the only ones whose (offset, rate) can have
  /// changed discontinuously since the previous observer call; events that
  /// change nothing (stale timers, dropped messages) never reach the
  /// observer.  Incremental trackers key their dirty-set updates off this.
  /// Sharded engine: meaningless mid-window; window observers get the
  /// touched-node set instead.
  struct LastEvent {
    EventKind kind = EventKind::kProbe;
    NodeId node = kInvalidNode;   // primary touched node (kInvalidNode: none)
    NodeId node2 = kInvalidNode;  // second touched node (link changes)
    bool woke = false;            // the event initialized `node`
  };
  const LastEvent& last_event() const { return lanes_[0].last_event; }

 private:
  struct TimerState {
    ClockValue target = 0.0;
    TimerWheel::Handle pending = TimerWheel::kNull;  // live wheel entry
    bool armed = false;
  };

  // Per-node hot state lives in struct-of-arrays form, indexed by *slot*:
  // slot_of_ permutes node ids so each shard's members occupy a contiguous
  // block (identity for the serial engine).  An event loop touching only
  // its own shard's clocks/timers/status then walks a dense range instead
  // of striding across an array-of-structs of the whole graph.
  static constexpr std::uint8_t kAwakeBit = 1;
  static constexpr std::uint8_t kCrashedBit = 2;
  static constexpr std::uint8_t kDepartedBit = 4;  // churn: not in the network

 public:
  /// kAuto queue selection: ladder at or above this many nodes.  Below it
  /// the whole heap fits in cache and its constants win; above it pops
  /// start missing on every sift level.
  static constexpr int kLadderAutoThreshold = 32768;

 private:
  /// Horizon cut-distance cap (== Lane::bnd array size).
  static constexpr int kMaxCutDist = 4;

  class ServicesImpl;
  friend class ServicesImpl;

  /// A buffered flight-recorder record plus the key of the event that
  /// emitted it; the barrier k-way-merges lane buffers by (key, sub) to
  /// reconstruct the canonical emission order.
  struct TraceEntry {
    RealTime key_time = 0.0;
    std::uint64_t key_seq = 0;
    NodeId key_source = kInvalidNode;
    std::uint32_t key_sub = 0;  // emission index within the event
    std::uint16_t tp = 0;       // obs::TracePoint
    std::uint16_t flags = 0;
    RealTime t = 0.0;
    double a = 0.0;
    double b = 0.0;
    NodeId node = kInvalidNode;
    std::uint32_t edge = 0;
    std::uint32_t aux = 0;
  };

  /// One shard's execution state.  The serial engine is lane 0 alone.
  struct Lane {
    Lane();
    ~Lane();
    Lane(Lane&&) noexcept;
    Lane& operator=(Lane&&) noexcept;

    EventQueue queue;
    MessageSlab slab;
    /// Periodic self-timers of this lane's nodes; merged with the queue's
    /// pop stream under the canonical key (timers never enter the queue).
    TimerWheel wheel;
    /// This lane's view of per-edge link state.  Serial: the authoritative
    /// state.  Sharded: cut-edge flips are applied by primary and twin
    /// events in both endpoint lanes, so each lane's view is exact for
    /// every edge incident to one of its nodes.
    std::vector<std::uint8_t> link_up;
    std::vector<PlannedDelivery> plan_scratch;
    std::unique_ptr<ServicesImpl> services;
    LastEvent last_event;
    RealTime now = 0.0;
    int index = 0;

    // Sharded-engine window state ------------------------------------------
    struct OutMsg {
      Event event;      // stamped, routed; msg handle assigned at flush
      Message payload;
    };
    std::vector<std::vector<OutMsg>> outbox;  // per destination lane
    struct LinkFlip {
      RealTime time = 0.0;
      std::uint64_t seq = 0;
      NodeId source = kInvalidNode;
      std::uint32_t edge = 0;
      bool up = false;
    };
    std::vector<LinkFlip> flips;   // actual state changes, for the barrier
    std::vector<WindowTouch> touched;  // accumulates until an obs barrier
    std::vector<TraceEntry> trace;

    // Cut-aware horizon state.  bnd[d] is a lazy min-heap of queued event
    // times (and armed timer deadlines) at this lane's nodes with
    // cut-distance d (stale entries for already-processed events are
    // popped when the coordinator reads the top); la_out/delta_intra are
    // the per-lane min-delay bounds over outgoing cut arcs / intra-shard
    // arcs, fixed at setup.  An event at distance d needs >= d intra-shard
    // hops before anything can happen at a cut node, so the lane's
    // boundary time is min_d(bnd[d].top + d * delta_intra), and nodes
    // beyond kMaxCutDist are covered by t_next + kMaxCutDist * delta_intra
    // without any heap traffic — which is what lets a deep subtree run far
    // ahead of its cut.
    using TimeHeap =
        std::priority_queue<RealTime, std::vector<RealTime>,
                            std::greater<RealTime>>;
    std::array<TimeHeap, 4> bnd;  // size == kMaxCutDist
    Duration la_out = kInfinity;
    Duration delta_intra = kInfinity;
    // Key of the event currently being processed (trace buffering).
    RealTime cur_time = 0.0;
    std::uint64_t cur_seq = 0;
    NodeId cur_source = kInvalidNode;
    std::uint32_t cur_sub = 0;

    // Per-lane counters, folded by the accessors ---------------------------
    std::uint64_t broadcasts = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t events = 0;
    std::uint64_t t_cancels = 0;  // see timer_cancels()
    std::uint64_t crashes = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t joins = 0;
    std::uint64_t leaves = 0;
    std::uint64_t scrambles = 0;
    std::uint64_t canon_pushes = 0;
    std::uint64_t canon_pops = 0;
    std::size_t twins_in_queue = 0;
  };

  void setup();
  void init_lanes(std::size_t count);
  /// Multi-source BFS from the cut-edge endpoints over intra-shard edges,
  /// capped at kMaxCutDist; fills cut_dist_ (configure_shards/repartition).
  void compute_cut_dist();
  /// Per-lane la_out/delta_intra from the delay policy's per-edge bounds,
  /// floored at the global lookahead (setup/repartition).
  void compute_lane_lookahead();
  Lane& lane_of(NodeId v) {
    return windowed_ && v != kInvalidNode
               ? lanes_[static_cast<std::size_t>(part_->shard_of(v))]
               : lanes_[0];
  }
  std::size_t seq_index(NodeId source) const {
    return source == kInvalidNode ? next_seq_.size() - 1
                                  : static_cast<std::size_t>(source);
  }
  void stamp(Event& e, NodeId source) {
    e.source = source;
    e.seq = next_seq_[seq_index(source)]++;
  }
  void push_event(Event e, NodeId source);
  void push_link_change(Event e, NodeId source);
  void push_delivery(Lane& ln, Event e, NodeId source, const Message& m);
  /// Bookkeeping for the cut-aware horizon: an event targeting a boundary
  /// node (level 0/1 — for link changes, the better of both endpoints)
  /// just joined `dest`'s queue at time t.
  void note_queued(Lane& dest, NodeId a, NodeId b, RealTime t);

  // SoA hot-state access (slot_of_ maps node id -> slot).
  std::size_t slot(NodeId v) const {
    return static_cast<std::size_t>(slot_of_[static_cast<std::size_t>(v)]);
  }
  TimerState& timer(NodeId v, int s) {
    return timer_slots_[slot(v) * static_cast<std::size_t>(kMaxTimerSlots) +
                        static_cast<std::size_t>(s)];
  }

  /// The merged queue+wheel pop stream: key of the next event in `ln`
  /// (queue top vs wheel peek under the canonical order).  Returns false
  /// when both are empty; `timer_first` reports which source wins.
  bool next_key(Lane& ln, RealTime& t, TimerWheel::Fired& tf,
                bool& timer_first);
  /// Pops the winner chosen by next_key and materializes it as an Event.
  Event pop_next(Lane& ln, const TimerWheel::Fired& tf, bool timer_first);
  /// Software-prefetches the SoA hot state of the next few pop targets.
  void prefetch_upcoming(Lane& ln);

  bool process(Lane& ln, Event& e);  // returns whether observable
  /// Cold path: called only with a recorder attached, after an event was
  /// dispatched.  `mult_before` is the touched node's rate multiplier
  /// before the callback (NaN when not sampled).
  void trace_event(Lane& ln, const Event& e, bool observable,
                   double mult_before);
  void emit(Lane& ln, obs::TracePoint tp, RealTime t, NodeId node,
            std::uint32_t edge, double a, double b, std::uint16_t flags,
            std::uint32_t aux);
  void wake_node(Lane& ln, NodeId v, const Message* trigger);
  void do_broadcast(Lane& ln, NodeId v, const Message& m);
  std::uint32_t edge_index(NodeId u, NodeId v) const;
  void apply_link_change(Lane& ln, const Event& e);
  void arm_timer(Lane& ln, NodeId v, int slot, ClockValue target);
  void disarm_timer(Lane& ln, NodeId v, int slot);
  void schedule_timer_event(NodeId v, int slot, RealTime now);
  void apply_rate_change(Lane& ln, NodeId v, double rate);
  void schedule_next_rate_change(NodeId v, RealTime now);
  ClockValue logical_at(NodeId v, RealTime t) const;

  // Sharded engine ---------------------------------------------------------
  void run_windowed(RealTime t_end);
  RealTime safe_horizon();
  void process_window(Lane& ln);
  void run_window_parallel();
  void barrier_flush(RealTime w_end, bool probe_fires, bool obs_fires);
  void flush_observers(RealTime t);
  void merge_lane_traces();
  std::size_t canonical_pending() const;
  void start_workers();
  void stop_workers();
  void maybe_progress(bool force);

  std::uint64_t sum_lanes(std::uint64_t Lane::*field) const {
    std::uint64_t s = 0;
    for (const Lane& ln : lanes_) s += ln.*field;
    return s;
  }

  const graph::Graph& graph_;
  std::shared_ptr<const graph::Graph::Csr> csr_;
  SimConfig cfg_;
  // SoA per-node state.  nodes_ is indexed by node id (installed before
  // the partition exists); the hot arrays are indexed by slot.
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::uint32_t> slot_of_;     // node id -> slot
  std::vector<HardwareClock> clock_slots_;
  std::vector<TimerState> timer_slots_;    // slot * kMaxTimerSlots + i
  std::vector<std::uint8_t> status_slots_;  // kAwakeBit | kCrashedBit
  std::shared_ptr<DriftPolicy> drift_;
  std::shared_ptr<DelayPolicy> delay_;
  bool delay_plans_ = false;  // cached delay_->plans_deliveries()
  Observer observer_;
  WindowObserver window_observer_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::vector<Lane> lanes_;  // size 1 (serial) or shard count (windowed)
  QueueImpl queue_impl_ = QueueImpl::kHeap;  // resolved from cfg_.queue
  std::vector<std::uint64_t> next_seq_;  // per-source counters; last = system
  /// Scramble payloads, indexed by Event::generation (events must stay 48
  /// bytes, so the (seed, magnitude) pair lives out-of-line; the table is
  /// append-only and simulator-global, so lane migration never invalidates
  /// an index).
  struct ScramblePayload {
    std::uint64_t seed = 0;
    double magnitude = 0.0;
  };
  std::vector<ScramblePayload> scramble_payloads_;
  RealTime now_ = 0.0;
  bool setup_done_ = false;

  // Sharded engine ---------------------------------------------------------
  bool windowed_ = false;
  std::unique_ptr<graph::Partition> part_;
  int shards_requested_ = 0;
  std::string partition_strategy_;
  std::vector<std::uint8_t> link_up_;  // barrier-reconciled global view
  Duration lookahead_ = 0.0;           // delay policy global min_delay()
  /// Intra-shard BFS distance to the nearest cut-edge endpoint, capped at
  /// kMaxCutDist (0 = endpoint of a cut edge).  Drives the per-lane bnd
  /// heap pushes; empty when not windowed or with one lane.
  std::vector<std::uint8_t> cut_dist_;
  /// Next observation barrier (kInfinity = not yet scheduled; set to
  /// t_next + observation interval at the first window after each obs
  /// barrier — a pure function of the event set, identical for every
  /// shard count).
  RealTime obs_next_ = kInfinity;
  RealTime probe_next_ = kInfinity;
  std::uint64_t probe_events_ = 0;
  std::uint64_t probe_canon_pushes_ = 0;
  std::uint64_t probe_canon_pops_ = 0;
  EventQueue::Stats canon_stats_;
  bool in_window_ = false;
  RealTime win_end_ = 0.0;
  bool win_inclusive_ = false;
  // Wheel arm/fire history carried across repartition (fresh lanes start
  // their wheels at zero; the canonical totals must not).
  std::uint64_t carry_arms_ = 0;
  std::uint64_t carry_fires_ = 0;
  std::uint64_t repartitions_ = 0;

  // Window worker pool (lanes 1..N-1; the caller runs lane 0).
  std::vector<std::thread> workers_;
  std::mutex win_mu_;
  std::condition_variable win_cv_;
  std::condition_variable done_cv_;
  std::uint64_t win_gen_ = 0;
  int win_done_ = 0;
  bool shutdown_ = false;
  std::exception_ptr win_error_;  // first exception thrown inside a window
  std::vector<WindowTouch> touched_scratch_;  // barrier merge buffer

  // Progress heartbeat.
  double progress_interval_ = 0.0;
  std::chrono::steady_clock::time_point progress_start_{};
  std::chrono::steady_clock::time_point progress_last_{};
  std::uint64_t progress_last_events_ = 0;
  bool progress_init_ = false;
};

}  // namespace tbcs::sim
