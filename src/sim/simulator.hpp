// Discrete-event simulator for the paper's distributed-system model
// (Section 3).
//
// The simulator owns, per node: the algorithm instance (Node), the
// drifting hardware clock, and the armed timers.  An execution E — the
// complete specification of all hardware clock rates and message delays —
// is given by a DriftPolicy plus a DelayPolicy; running the same policies
// with the same seeds reproduces the same execution exactly.
//
// Between events every clock is linear in real time, so observers invoked
// at event boundaries see the exact extrema of all skew processes.
//
// Hot-path layout: adjacency is the graph's CSR snapshot (each neighbor
// carries its undirected edge index inline, so link-state checks never
// hash), message payloads live in a free-listed slab, and delivery/link
// events store their edge index so processing is array lookups only.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "sim/delay_policy.hpp"
#include "sim/drift_policy.hpp"
#include "sim/event_queue.hpp"
#include "sim/hardware_clock.hpp"
#include "sim/message_slab.hpp"
#include "sim/node.hpp"
#include "sim/types.hpp"

namespace tbcs::obs {
class FlightRecorder;
}

namespace tbcs::sim {

struct SimConfig {
  /// If true, all nodes are initialized spontaneously at t = 0 (the
  /// convention of the lower-bound proofs, Section 7: "all nodes are
  /// initialized at time 0").  If false, only `root` wakes at t = 0 and
  /// the rest are woken by the initialization flood (Section 4.2).
  bool wake_all_at_zero = false;

  /// The spontaneously waking node when flooding initialization is used.
  graph::NodeId root = 0;

  /// Additional nodes that wake spontaneously at t = 0 ("any node waking
  /// up by itself simply sets L^max := 0 and sends <0,0>", Section 4.2):
  /// several independent initialization floods that merge.
  std::vector<graph::NodeId> extra_roots;

  /// If > 0, a probe event fires every `probe_interval` so observers get
  /// called even during event-free stretches.
  Duration probe_interval = 0.0;
};

class Simulator {
 public:
  explicit Simulator(const graph::Graph& g, SimConfig cfg = {});
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // ---- setup -------------------------------------------------------------

  void set_node(NodeId v, std::unique_ptr<Node> node);

  /// Convenience: installs factory(v) at every node.
  void set_all_nodes(const std::function<std::unique_ptr<Node>(NodeId)>& factory);

  void set_drift_policy(std::shared_ptr<DriftPolicy> policy);
  void set_delay_policy(std::shared_ptr<DelayPolicy> policy);

  /// Called after every processed event (and probe) with the current time.
  using Observer = std::function<void(const Simulator&, RealTime)>;
  void set_observer(Observer observer);

  /// Attaches a flight recorder (nullptr detaches).  Non-owning; the
  /// recorder must outlive the simulator or be detached first.  With no
  /// recorder attached the tracing hooks cost one pointer test per event;
  /// compiled out entirely under -DTBCS_OBS_TRACE_ENABLED=0.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  obs::FlightRecorder* flight_recorder() const { return recorder_; }

  // ---- execution ----------------------------------------------------------

  /// Processes all events up to and including time t_end.  May be called
  /// repeatedly with increasing horizons.
  void run_until(RealTime t_end);

  /// Injects a one-off hardware rate change at a future time, independent
  /// of the drift policy.  Used by adversary controllers (Section 7
  /// constructions) that steer executions adaptively between run_until
  /// calls.
  void schedule_rate_change(NodeId v, RealTime at, double rate);

  // ---- dynamic topologies ---------------------------------------------------
  //
  // The graph is the set of *possible* links; each can be up or down (all
  // start up).  A message is delivered only if its link is up at delivery
  // time — messages in flight across a downed link are lost.  Both
  // endpoints get an on_link_change() callback when the state flips.

  /// Schedules the link {u, v} (which must exist in the graph) to change
  /// state at time `at`.
  void schedule_link_change(NodeId u, NodeId v, bool up, RealTime at);

  bool link_up(NodeId u, NodeId v) const;

  /// Link state by undirected edge index (parallel to topology().edges());
  /// the O(1) form used by the metrics layer.
  bool link_up(std::size_t edge) const { return link_up_[edge] != 0; }

  /// Crash failure injection: downs all of v's links at time `at` and
  /// marks the node crashed — its hardware clock keeps running, but
  /// message deliveries and timer callbacks are suppressed (counted as
  /// drops / stale pops) until schedule_recovery() brings it back.  To
  /// every other node this is indistinguishable from a crash-stop.
  void schedule_crash(NodeId v, RealTime at);

  /// Re-joins a crashed node at time `at`: its links are restored first
  /// (same instant, FIFO order), armed timers are re-anchored, and the
  /// algorithm gets an on_rejoin() callback.  A no-op if not crashed.
  void schedule_recovery(NodeId v, RealTime at);

  bool crashed(NodeId v) const {
    return per_node_[static_cast<std::size_t>(v)].crashed;
  }

  std::uint64_t messages_dropped() const { return messages_dropped_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t recoveries() const { return recoveries_; }

  // ---- inspection (metrics layer; not visible to algorithms) --------------

  RealTime now() const { return now_; }
  const graph::Graph& topology() const { return graph_; }
  NodeId num_nodes() const { return graph_.num_nodes(); }

  /// Initialized and not currently crashed: the nodes that participate in
  /// skew metrics.  Crashed nodes are excluded — their clocks free-run
  /// unobserved until recovery folds them back in.
  bool awake(NodeId v) const {
    const PerNode& pn = per_node_[static_cast<std::size_t>(v)];
    return pn.awake && !pn.crashed;
  }
  const HardwareClock& clock(NodeId v) const {
    return per_node_[static_cast<std::size_t>(v)].clock;
  }
  /// H_v(now).
  ClockValue hardware(NodeId v) const { return clock(v).value_at(now_); }
  /// L_v(now); 0 for nodes that have not been initialized yet.
  ClockValue logical(NodeId v) const;

  const Node& node(NodeId v) const { return *per_node_[static_cast<std::size_t>(v)].node; }
  Node& node_mutable(NodeId v) { return *per_node_[static_cast<std::size_t>(v)].node; }

  std::uint64_t broadcasts() const { return broadcasts_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Timer events popped whose generation was stale (lazy deletion).
  std::uint64_t stale_timer_pops() const { return stale_timer_pops_; }
  const EventQueue::Stats& queue_stats() const { return queue_.stats(); }

  /// What the event that triggered the current/last observer call changed.
  /// Logical-clock state is mutated only through node callbacks, so the
  /// nodes listed here are the only ones whose (offset, rate) can have
  /// changed discontinuously since the previous observer call; events that
  /// change nothing (stale timers, dropped messages) never reach the
  /// observer.  Incremental trackers key their dirty-set updates off this.
  struct LastEvent {
    EventKind kind = EventKind::kProbe;
    NodeId node = kInvalidNode;   // primary touched node (kInvalidNode: none)
    NodeId node2 = kInvalidNode;  // second touched node (link changes)
    bool woke = false;            // the event initialized `node`
  };
  const LastEvent& last_event() const { return last_event_; }

 private:
  struct TimerState {
    ClockValue target = 0.0;
    std::uint64_t generation = 0;
    bool armed = false;
  };

  struct PerNode {
    std::unique_ptr<Node> node;
    HardwareClock clock;
    TimerState timers[kMaxTimerSlots];
    bool awake = false;
    bool crashed = false;
  };

  class ServicesImpl;
  friend class ServicesImpl;

  void setup();
  void process(Event& e);
  /// Cold path: called only with a recorder attached, after an event was
  /// dispatched.  `mult_before` is the touched node's rate multiplier
  /// before the callback (NaN when not sampled).
  void trace_event(const Event& e, bool observable, double mult_before);
  void wake_node(NodeId v, const Message* trigger);
  void do_broadcast(NodeId v, const Message& m);
  std::uint32_t edge_index(NodeId u, NodeId v) const;
  void apply_link_change(NodeId u, NodeId v, std::uint32_t edge, bool up);
  void arm_timer(NodeId v, int slot, ClockValue target);
  void disarm_timer(NodeId v, int slot);
  void schedule_timer_event(NodeId v, int slot);
  void apply_rate_change(NodeId v, double rate);
  void schedule_next_rate_change(NodeId v, RealTime now);

  const graph::Graph& graph_;
  std::shared_ptr<const graph::Graph::Csr> csr_;
  SimConfig cfg_;
  std::vector<PerNode> per_node_;
  std::vector<std::uint8_t> link_up_;  // parallel to graph_.edges()
  std::shared_ptr<DriftPolicy> drift_;
  std::shared_ptr<DelayPolicy> delay_;
  bool delay_plans_ = false;  // cached delay_->plans_deliveries()
  std::vector<PlannedDelivery> plan_scratch_;
  Observer observer_;
  obs::FlightRecorder* recorder_ = nullptr;
  EventQueue queue_;
  MessageSlab slab_;
  std::unique_ptr<ServicesImpl> services_;  // reused across all callbacks
  LastEvent last_event_;
  RealTime now_ = 0.0;
  bool setup_done_ = false;
  std::uint64_t broadcasts_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t stale_timer_pops_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace tbcs::sim
