// Deterministic, splittable random number generation.
//
// Every source of randomness in an experiment flows from a single root
// seed through SplitMix64-derived child streams, so runs are reproducible
// bit-for-bit and sub-streams (per node, per edge) are independent of the
// order in which other streams are consumed.
#pragma once

#include <cstdint>

namespace tbcs::sim {

/// SplitMix64: tiny, high-quality 64-bit mixer.  Used both as a stream
/// splitter and to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast general-purpose PRNG with 256-bit state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).  Unbiased enough for simulation purposes.
  std::uint64_t uniform_index(std::uint64_t n) { return n == 0 ? 0 : next_u64() % n; }

  /// Fair coin.
  bool next_bool() { return (next_u64() & 1) != 0; }

  /// Derive an independent child stream.  Children with distinct tags are
  /// statistically independent of each other and of the parent's future
  /// output.
  Rng split(std::uint64_t tag) {
    SplitMix64 sm(next_u64() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
    return Rng(sm.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace tbcs::sim
