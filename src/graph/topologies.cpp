#include "graph/topologies.hpp"

#include <cassert>
#include <vector>

#include "sim/rng.hpp"

namespace tbcs::graph {

Graph make_path(NodeId n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph make_ring(NodeId n) {
  assert(n >= 3);
  Graph g = make_path(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph make_star(NodeId n) {
  assert(n >= 2);
  Graph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

Graph make_complete(NodeId n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph make_grid(NodeId rows, NodeId cols) {
  assert(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph make_torus(NodeId rows, NodeId cols) {
  assert(rows >= 3 && cols >= 3);
  Graph g = make_grid(rows, cols);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) g.add_edge(id(r, cols - 1), id(r, 0));
  for (NodeId c = 0; c < cols; ++c) g.add_edge(id(rows - 1, c), id(0, c));
  return g;
}

Graph make_hypercube(int dimensions) {
  assert(dimensions >= 1 && dimensions < 20);
  const NodeId n = static_cast<NodeId>(1) << dimensions;
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (int b = 0; b < dimensions; ++b) {
      const NodeId w = v ^ (static_cast<NodeId>(1) << b);
      if (w > v) g.add_edge(v, w);
    }
  }
  return g;
}

Graph make_balanced_tree(int arity, int levels) {
  assert(arity >= 1 && levels >= 1);
  // Count nodes: 1 + k + k^2 + ... + k^{levels-1}.
  NodeId n = 0;
  NodeId layer = 1;
  for (int l = 0; l < levels; ++l) {
    n += layer;
    layer *= arity;
  }
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge((v - 1) / arity, v);
  return g;
}

Graph make_random_tree(NodeId n, std::uint64_t seed) {
  assert(n >= 1);
  Graph g(n);
  sim::Rng rng(seed);
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(v)));
    g.add_edge(parent, v);
  }
  return g;
}

Graph make_connected_er(NodeId n, double p, std::uint64_t seed) {
  assert(n >= 1);
  sim::Rng rng(seed);
  Graph g(n);
  // Random spanning tree first, guaranteeing connectivity.
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    g.add_edge(order[rng.uniform_index(i)], order[i]);
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.next_double() < p) g.add_edge(u, v);
    }
  }
  return g;
}

Graph make_barbell(NodeId clique, NodeId bridge) {
  assert(clique >= 2 && bridge >= 0);
  const NodeId n = 2 * clique + bridge;
  Graph g(n);
  const auto add_clique = [&g](NodeId lo, NodeId count) {
    for (NodeId u = lo; u < lo + count; ++u) {
      for (NodeId v = u + 1; v < lo + count; ++v) g.add_edge(u, v);
    }
  };
  add_clique(0, clique);
  add_clique(clique + bridge, clique);
  // The path through the bridge, attached to one node of each clique.
  NodeId prev = clique - 1;
  for (NodeId b = clique; b < clique + bridge; ++b) {
    g.add_edge(prev, b);
    prev = b;
  }
  g.add_edge(prev, clique + bridge);
  return g;
}

Graph make_caterpillar(NodeId spine, NodeId legs) {
  assert(spine >= 1 && legs >= 0);
  Graph g(spine * (1 + legs));
  for (NodeId s = 0; s + 1 < spine; ++s) g.add_edge(s, s + 1);
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs; ++l) {
      g.add_edge(s, spine + s * legs + l);
    }
  }
  return g;
}

Graph make_random_regular(NodeId n, int degree, std::uint64_t seed) {
  assert(n >= 3 && degree >= 2);
  Graph g = make_ring(n);  // connected backbone (degree 2)
  sim::Rng rng(seed);
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  for (int m = 0; m < (degree - 2 + 1) / 2; ++m) {
    // Random matching: shuffle, pair consecutive entries.
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.uniform_index(i)]);
    }
    for (std::size_t i = 0; i + 1 < perm.size(); i += 2) {
      g.add_edge(perm[i], perm[i + 1]);  // duplicates silently rejected
    }
  }
  return g;
}

}  // namespace tbcs::graph
