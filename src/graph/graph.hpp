// Undirected connected graphs G = (V, E): the distributed system topology
// of the paper's model (Section 3).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace tbcs::graph {

using NodeId = std::int32_t;
using Edge = std::pair<NodeId, NodeId>;

/// Sentinel for "no such edge" in CSR lookups.
inline constexpr std::uint32_t kNoEdge = 0xffffffffu;

class Graph {
 public:
  /// One directed half-edge of the CSR layout: the neighbor plus the index
  /// of the undirected edge in edges(), so per-neighbor link state lives
  /// one array lookup away (no hashing on the simulator hot path).
  struct Arc {
    NodeId to = -1;
    std::uint32_t edge = kNoEdge;
  };

  /// Compressed-sparse-row adjacency.  Immutable snapshot of the graph at
  /// build time; arcs of each node appear in the same order as
  /// neighbors(v) (edge insertion order), so iteration order — and hence
  /// simulator event order — is identical to the adjacency-list view.
  class Csr {
   public:
    const Arc* begin(NodeId v) const {
      return arcs_.data() + row_[static_cast<std::size_t>(v)];
    }
    const Arc* end(NodeId v) const {
      return arcs_.data() + row_[static_cast<std::size_t>(v) + 1];
    }
    std::size_t degree(NodeId v) const {
      return row_[static_cast<std::size_t>(v) + 1] -
             row_[static_cast<std::size_t>(v)];
    }
    NodeId num_nodes() const { return static_cast<NodeId>(row_.size()) - 1; }

    /// Index of the undirected edge {v, u}, or kNoEdge.  O(deg(v)).
    std::uint32_t find_edge(NodeId v, NodeId u) const {
      for (const Arc* a = begin(v); a != end(v); ++a) {
        if (a->to == u) return a->edge;
      }
      return kNoEdge;
    }

    /// Mutation counter of the owning Graph at build time.  A snapshot is
    /// stale — and must not be dereferenced — once this differs from the
    /// graph's current version(); the simulator debug-asserts the match at
    /// its run and scheduling boundaries.
    std::uint64_t version() const { return version_; }
    std::size_t num_edges() const { return arcs_.size() / 2; }

   private:
    friend class Graph;
    std::vector<std::uint32_t> row_;  // n + 1 offsets into arcs_
    std::vector<Arc> arcs_;           // 2|E| half-edges
    std::uint64_t version_ = 0;
  };

  Graph() = default;
  explicit Graph(NodeId n) : adj_(static_cast<std::size_t>(n)) {}

  // The CSR cache is identity-independent derived data: copies and moves
  // transfer the adjacency and drop or share the snapshot safely.
  Graph(const Graph& o) : adj_(o.adj_), edges_(o.edges_), version_(o.version_) {}
  Graph(Graph&& o) noexcept
      : adj_(std::move(o.adj_)),
        edges_(std::move(o.edges_)),
        version_(o.version_) {}
  Graph& operator=(const Graph& o) {
    if (this != &o) {
      adj_ = o.adj_;
      edges_ = o.edges_;
      version_ = o.version_;
      std::lock_guard<std::mutex> lock(csr_mu_);
      csr_cache_.reset();
    }
    return *this;
  }
  Graph& operator=(Graph&& o) noexcept {
    adj_ = std::move(o.adj_);
    edges_ = std::move(o.edges_);
    version_ = o.version_;
    std::lock_guard<std::mutex> lock(csr_mu_);
    csr_cache_.reset();
    return *this;
  }

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  std::size_t num_edges() const { return edges_.size(); }

  /// Bumped by every mutation (add_edge).  CSR snapshots carry the version
  /// they were built from, so holders can detect — and debug-assert
  /// against — dereferencing a snapshot that no longer matches the graph.
  std::uint64_t version() const { return version_; }

  /// Adds the undirected edge {u, v}.  Duplicate edges and self-loops are
  /// rejected (returns false).  Invalidates any cached CSR snapshot.
  bool add_edge(NodeId u, NodeId v);

  /// The CSR view of the current edge set.  Built lazily on first call and
  /// cached; concurrent calls on a fully-built graph are safe (simulators
  /// running in parallel on a shared topology all get the same snapshot).
  /// Mutating the graph (add_edge) invalidates the cache, so callers hold
  /// the returned shared_ptr for the duration of their run.
  std::shared_ptr<const Csr> csr() const;

  bool has_edge(NodeId u, NodeId v) const;

  const std::vector<NodeId>& neighbors(NodeId v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  const std::vector<Edge>& edges() const { return edges_; }

  std::size_t degree(NodeId v) const {
    return adj_[static_cast<std::size_t>(v)].size();
  }

  std::size_t max_degree() const;

  bool connected() const;

  /// BFS distances (in hops) from `source`; unreachable nodes get -1.
  std::vector<int> bfs_distances(NodeId source) const;

  /// Eccentricity of `v` (max BFS distance); requires connectivity.
  int eccentricity(NodeId v) const;

  /// Exact diameter D via BFS from every node.  O(n * (n + m)).
  int diameter() const;

  /// Two-sweep diameter estimate: one BFS to find a peripheral node,
  /// one BFS for its eccentricity.  O(n + m) — usable at n = 10^6 where
  /// the exact scan is quadratic.  Always a lower bound on D; exact on
  /// trees (hence paths), and on the generated grids/tori in practice.
  int diameter_2sweep() const;

  /// All-pairs hop distances; dist[u][v].  O(n * (n + m)) time, O(n^2)
  /// memory — intended for the metric layer on moderate n.
  std::vector<std::vector<int>> all_pairs_distances() const;

  /// Two nodes realizing the diameter (useful for placing adversaries).
  Edge diameter_endpoints() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::vector<Edge> edges_;
  std::uint64_t version_ = 0;
  mutable std::mutex csr_mu_;
  mutable std::shared_ptr<const Csr> csr_cache_;
};

}  // namespace tbcs::graph
