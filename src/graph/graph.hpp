// Undirected connected graphs G = (V, E): the distributed system topology
// of the paper's model (Section 3).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace tbcs::graph {

using NodeId = std::int32_t;
using Edge = std::pair<NodeId, NodeId>;

class Graph {
 public:
  Graph() = default;
  explicit Graph(NodeId n) : adj_(static_cast<std::size_t>(n)) {}

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  std::size_t num_edges() const { return edges_.size(); }

  /// Adds the undirected edge {u, v}.  Duplicate edges and self-loops are
  /// rejected (returns false).
  bool add_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  const std::vector<NodeId>& neighbors(NodeId v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  const std::vector<Edge>& edges() const { return edges_; }

  std::size_t degree(NodeId v) const {
    return adj_[static_cast<std::size_t>(v)].size();
  }

  std::size_t max_degree() const;

  bool connected() const;

  /// BFS distances (in hops) from `source`; unreachable nodes get -1.
  std::vector<int> bfs_distances(NodeId source) const;

  /// Eccentricity of `v` (max BFS distance); requires connectivity.
  int eccentricity(NodeId v) const;

  /// Exact diameter D via BFS from every node.  O(n * (n + m)).
  int diameter() const;

  /// All-pairs hop distances; dist[u][v].  O(n * (n + m)) time, O(n^2)
  /// memory — intended for the metric layer on moderate n.
  std::vector<std::vector<int>> all_pairs_distances() const;

  /// Two nodes realizing the diameter (useful for placing adversaries).
  Edge diameter_endpoints() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::vector<Edge> edges_;
};

}  // namespace tbcs::graph
