// Topology generators for the experiment suite.
//
// The bounds of the paper depend on the topology only through the diameter
// D and, for complexity accounting, the maximum degree Delta; we provide
// the standard families so experiments can vary both independently.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace tbcs::graph {

/// Path P_n: diameter n-1.  The canonical worst-case graph for skew
/// lower bounds; nodes are numbered along the path.
Graph make_path(NodeId n);

/// Cycle C_n: diameter floor(n/2).
Graph make_ring(NodeId n);

/// Star K_{1,n-1}: node 0 is the hub; diameter 2.
Graph make_star(NodeId n);

/// Complete graph K_n: diameter 1.
Graph make_complete(NodeId n);

/// rows x cols grid; node (r, c) has id r*cols + c; diameter rows+cols-2.
Graph make_grid(NodeId rows, NodeId cols);

/// rows x cols torus (grid with wrap-around links).
Graph make_torus(NodeId rows, NodeId cols);

/// Hypercube Q_d with 2^d nodes; diameter d.
Graph make_hypercube(int dimensions);

/// Complete k-ary tree with the given number of levels (root = node 0).
Graph make_balanced_tree(int arity, int levels);

/// Uniform random spanning tree on n nodes (random attachment).
Graph make_random_tree(NodeId n, std::uint64_t seed);

/// Connected Erdos-Renyi G(n, p): edges sampled with probability p, then a
/// random spanning tree is added to guarantee connectivity.
Graph make_connected_er(NodeId n, double p, std::uint64_t seed);

/// Barbell: two cliques of `clique` nodes joined by a path of `bridge`
/// intermediate nodes.  Dense well-synchronized clusters with a long thin
/// bottleneck — the classic stress shape for gradient properties.
/// Layout: clique A = [0, clique), bridge = [clique, clique+bridge),
/// clique B = the rest.
Graph make_barbell(NodeId clique, NodeId bridge);

/// Caterpillar: a spine path of `spine` nodes, each with `legs` leaves.
Graph make_caterpillar(NodeId spine, NodeId legs);

/// Random d-regular-ish graph: d/2 superimposed random perfect matchings
/// over a ring backbone (connected, max degree <= d + 2).  Expander-like
/// low diameter at constant degree.
Graph make_random_regular(NodeId n, int degree, std::uint64_t seed);

}  // namespace tbcs::graph
