#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace tbcs::graph {

bool Graph::add_edge(NodeId u, NodeId v) {
  assert(u >= 0 && u < num_nodes());
  assert(v >= 0 && v < num_nodes());
  if (u == v || has_edge(u, v)) return false;
  adj_[static_cast<std::size_t>(u)].push_back(v);
  adj_[static_cast<std::size_t>(v)].push_back(u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
  ++version_;
  {
    std::lock_guard<std::mutex> lock(csr_mu_);
    csr_cache_.reset();
  }
  return true;
}

std::shared_ptr<const Graph::Csr> Graph::csr() const {
  std::lock_guard<std::mutex> lock(csr_mu_);
  if (csr_cache_) return csr_cache_;
  auto csr = std::make_shared<Csr>();
  csr->version_ = version_;
  const auto n = static_cast<std::size_t>(num_nodes());
  csr->row_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++csr->row_[static_cast<std::size_t>(u) + 1];
    ++csr->row_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) csr->row_[i] += csr->row_[i - 1];
  csr->arcs_.resize(edges_.size() * 2);
  std::vector<std::uint32_t> cursor(csr->row_.begin(), csr->row_.end() - 1);
  // Walking edges_ in insertion order reproduces each node's adjacency-list
  // order, keeping CSR iteration deterministic-identical to neighbors().
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const auto [u, v] = edges_[i];
    const auto e = static_cast<std::uint32_t>(i);
    csr->arcs_[cursor[static_cast<std::size_t>(u)]++] = Arc{v, e};
    csr->arcs_[cursor[static_cast<std::size_t>(v)]++] = Arc{u, e};
  }
  csr_cache_ = std::move(csr);
  return csr_cache_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto& nu = adj_[static_cast<std::size_t>(u)];
  return std::find(nu.begin(), nu.end(), v) != nu.end();
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (const auto& a : adj_) d = std::max(d, a.size());
  return d;
}

std::vector<int> Graph::bfs_distances(NodeId source) const {
  std::vector<int> dist(static_cast<std::size_t>(num_nodes()), -1);
  std::deque<NodeId> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const NodeId w : neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (num_nodes() == 0) return true;
  const auto dist = bfs_distances(0);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

int Graph::eccentricity(NodeId v) const {
  const auto dist = bfs_distances(v);
  int ecc = 0;
  for (const int d : dist) {
    assert(d >= 0 && "eccentricity requires a connected graph");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int Graph::diameter() const {
  int d = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) d = std::max(d, eccentricity(v));
  return d;
}

int Graph::diameter_2sweep() const {
  if (num_nodes() == 0) return 0;
  // Sweep 1: farthest node u from an arbitrary start; sweep 2: u's
  // eccentricity.  ecc(u) <= D always, with equality on trees (u is an
  // endpoint of a longest path) — and paths/grids/tori in practice.
  const auto first = bfs_distances(0);
  NodeId u = 0;
  for (NodeId v = 1; v < num_nodes(); ++v) {
    if (first[static_cast<std::size_t>(v)] > first[static_cast<std::size_t>(u)]) {
      u = v;
    }
  }
  return eccentricity(u);
}

std::vector<std::vector<int>> Graph::all_pairs_distances() const {
  std::vector<std::vector<int>> dist;
  dist.reserve(static_cast<std::size_t>(num_nodes()));
  for (NodeId v = 0; v < num_nodes(); ++v) dist.push_back(bfs_distances(v));
  return dist;
}

Edge Graph::diameter_endpoints() const {
  Edge best{0, 0};
  int best_d = -1;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    const auto dist = bfs_distances(v);
    for (NodeId w = 0; w < num_nodes(); ++w) {
      if (dist[static_cast<std::size_t>(w)] > best_d) {
        best_d = dist[static_cast<std::size_t>(w)];
        best = {v, w};
      }
    }
  }
  return best;
}

}  // namespace tbcs::graph
