#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace tbcs::graph {

bool Graph::add_edge(NodeId u, NodeId v) {
  assert(u >= 0 && u < num_nodes());
  assert(v >= 0 && v < num_nodes());
  if (u == v || has_edge(u, v)) return false;
  adj_[static_cast<std::size_t>(u)].push_back(v);
  adj_[static_cast<std::size_t>(v)].push_back(u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto& nu = adj_[static_cast<std::size_t>(u)];
  return std::find(nu.begin(), nu.end(), v) != nu.end();
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (const auto& a : adj_) d = std::max(d, a.size());
  return d;
}

std::vector<int> Graph::bfs_distances(NodeId source) const {
  std::vector<int> dist(static_cast<std::size_t>(num_nodes()), -1);
  std::deque<NodeId> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const NodeId w : neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (num_nodes() == 0) return true;
  const auto dist = bfs_distances(0);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

int Graph::eccentricity(NodeId v) const {
  const auto dist = bfs_distances(v);
  int ecc = 0;
  for (const int d : dist) {
    assert(d >= 0 && "eccentricity requires a connected graph");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int Graph::diameter() const {
  int d = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) d = std::max(d, eccentricity(v));
  return d;
}

std::vector<std::vector<int>> Graph::all_pairs_distances() const {
  std::vector<std::vector<int>> dist;
  dist.reserve(static_cast<std::size_t>(num_nodes()));
  for (NodeId v = 0; v < num_nodes(); ++v) dist.push_back(bfs_distances(v));
  return dist;
}

Edge Graph::diameter_endpoints() const {
  Edge best{0, 0};
  int best_d = -1;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    const auto dist = bfs_distances(v);
    for (NodeId w = 0; w < num_nodes(); ++w) {
      if (dist[static_cast<std::size_t>(w)] > best_d) {
        best_d = dist[static_cast<std::size_t>(w)];
        best = {v, w};
      }
    }
  }
  return best;
}

}  // namespace tbcs::graph
