// Node partitioning for the sharded simulator engine.
//
// A Partition splits V into `num_shards` disjoint, covering member sets
// and precomputes the cut-edge table (edges whose endpoints live in
// different shards).  The sharded engine keys its per-lane event routing
// off shard_of(); the fault layer and the analysis layer use the same
// assignment so every consumer agrees on which lane owns a node.
//
// Three strategies are provided:
//   - block:      contiguous id ranges [i*n/k, (i+1)*n/k).  Optimal for
//                 the generated topologies (line/ring/torus/trees), whose
//                 id order is already locality-preserving — cut edges are
//                 O(k) on a line.
//   - bfs_bands:  BFS layers from node 0, grouped into k bands of roughly
//                 equal size.  Cuts follow the graph metric instead of the
//                 id order, which helps when ids are shuffled.
//   - multilevel: coarsen by repeated heavy-edge matching, split the
//                 coarsest graph into weighted BFS-ordered blocks, then
//                 project back up with Kernighan–Lin boundary refinement
//                 at every level.  Cut-minimizing on graphs whose id
//                 order carries no locality (ER, shuffled meshes), where
//                 block/bands cut a constant fraction of all edges.
//
// All are pure functions of (graph, num_shards) — no RNG, id-ordered
// tie-breaking throughout — so a partition is reproducible from the CLI
// flags alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace tbcs::graph {

class Partition {
 public:
  /// One undirected edge with endpoints in two different shards.
  struct CutEdge {
    std::uint32_t edge = kNoEdge;  // index into Graph::edges()
    NodeId u = -1;                 // endpoint in shard su
    NodeId v = -1;                 // endpoint in shard sv
    int su = -1;
    int sv = -1;
  };

  struct BalanceStats {
    std::size_t min_members = 0;
    std::size_t max_members = 0;
    double imbalance = 0.0;  // max_members / (n / k) - 1, 0 = perfect
    std::size_t cut_edges = 0;
    double cut_fraction = 0.0;  // cut_edges / |E|
  };

  /// Contiguous-block partition: shard i owns ids [i*n/k, (i+1)*n/k).
  static Partition block(const Graph& g, int num_shards);

  /// BFS-band partition: nodes sorted by (BFS depth from node 0, id),
  /// then split into k contiguous bands of balanced size.
  static Partition bfs_bands(const Graph& g, int num_shards);

  /// Multilevel cut-minimizing partition: heavy-edge-matching coarsening,
  /// weighted BFS-block initial split of the coarsest graph, KL boundary
  /// refinement on the way back up.  Deterministic (id-ordered visiting
  /// and tie-breaking, no RNG).  Shards are guaranteed non-empty with
  /// weight at most ~1.1x the ideal n/k.
  static Partition multilevel(const Graph& g, int num_shards);

  /// Dispatch by strategy name ("block" | "bands" | "ml"); throws
  /// std::invalid_argument on an unknown name or num_shards < 1 or
  /// num_shards > n.
  static Partition make(const Graph& g, int num_shards,
                        const std::string& strategy);

  /// Builds a partition of `g` from an explicit node -> shard assignment
  /// (cut tables computed against g's full edge set).  Used by the sharded
  /// engine's repartition: the assignment is computed on the *live*
  /// subgraph, but horizon safety needs cut accounting over every
  /// schedulable edge.  Throws std::invalid_argument when the assignment
  /// has the wrong size, an out-of-range shard, or an empty shard.
  static Partition from_assignment(const Graph& g, std::vector<int> shard_of,
                                   int num_shards);

  int num_shards() const { return num_shards_; }
  NodeId num_nodes() const { return static_cast<NodeId>(shard_of_.size()); }

  int shard_of(NodeId v) const {
    return shard_of_[static_cast<std::size_t>(v)];
  }
  const std::vector<int>& shard_assignment() const { return shard_of_; }

  /// Members of shard s, ascending by node id.
  const std::vector<NodeId>& members(int s) const {
    return members_[static_cast<std::size_t>(s)];
  }

  /// All cut edges, ascending by edge index.
  const std::vector<CutEdge>& cut_edges() const { return cut_edges_; }

  /// True when edge e (index into Graph::edges()) crosses shards.  O(1).
  bool edge_is_cut(std::uint32_t e) const {
    return edge_is_cut_[static_cast<std::size_t>(e)];
  }

  BalanceStats balance() const;

  /// Sanity-checks coverage, disjointness, member ordering, and cut-edge
  /// accounting against the graph; throws std::logic_error on violation.
  /// Called by the tests; cheap enough to call from the CLI too.
  void validate(const Graph& g) const;

 private:
  Partition() = default;
  void finish(const Graph& g);  // fills members_/cut tables from shard_of_

  int num_shards_ = 0;
  std::size_t num_edges_ = 0;
  std::vector<int> shard_of_;              // node -> shard
  std::vector<std::vector<NodeId>> members_;
  std::vector<CutEdge> cut_edges_;
  std::vector<bool> edge_is_cut_;          // edge index -> crosses shards
};

}  // namespace tbcs::graph
