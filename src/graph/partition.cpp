#include "graph/partition.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <string>
#include <tuple>

namespace tbcs::graph {

namespace {

void check_args(const Graph& g, int num_shards) {
  if (num_shards < 1) {
    throw std::invalid_argument("Partition: num_shards must be >= 1");
  }
  if (num_shards > g.num_nodes()) {
    throw std::invalid_argument(
        "Partition: num_shards (" + std::to_string(num_shards) +
        ") exceeds node count (" + std::to_string(g.num_nodes()) + ")");
  }
}

// ---- multilevel machinery ---------------------------------------------------
//
// The coarsening/refinement levels operate on a weighted multigraph in CSR
// form: node weights count the original nodes a cluster absorbed, edge
// weights count the original edges between two clusters.  Everything is
// id-ordered (visiting order, tie-breaking, CSR neighbor order), so the
// whole pipeline is a pure function of (graph, k).

struct LevelGraph {
  int n = 0;
  std::vector<std::uint64_t> node_w;
  std::vector<std::size_t> off;    // CSR offsets, size n + 1
  std::vector<int> adj;            // neighbor cluster ids
  std::vector<std::uint64_t> w;    // parallel-edge multiplicity
};

LevelGraph level_from_edges(int n,
                            std::vector<std::tuple<int, int, std::uint64_t>> es,
                            std::vector<std::uint64_t> node_w) {
  // Merge parallel edges, then lay out a symmetric CSR.
  std::sort(es.begin(), es.end());
  std::vector<std::tuple<int, int, std::uint64_t>> merged;
  for (const auto& e : es) {
    if (!merged.empty() && std::get<0>(merged.back()) == std::get<0>(e) &&
        std::get<1>(merged.back()) == std::get<1>(e)) {
      std::get<2>(merged.back()) += std::get<2>(e);
    } else {
      merged.push_back(e);
    }
  }
  LevelGraph lg;
  lg.n = n;
  lg.node_w = std::move(node_w);
  std::vector<std::size_t> deg(static_cast<std::size_t>(n), 0);
  for (const auto& [u, v, wt] : merged) {
    ++deg[static_cast<std::size_t>(u)];
    ++deg[static_cast<std::size_t>(v)];
  }
  lg.off.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    lg.off[static_cast<std::size_t>(v) + 1] =
        lg.off[static_cast<std::size_t>(v)] + deg[static_cast<std::size_t>(v)];
  }
  lg.adj.resize(lg.off.back());
  lg.w.resize(lg.off.back());
  std::vector<std::size_t> fill(lg.off.begin(), lg.off.end() - 1);
  for (const auto& [u, v, wt] : merged) {
    lg.adj[fill[static_cast<std::size_t>(u)]] = v;
    lg.w[fill[static_cast<std::size_t>(u)]++] = wt;
    lg.adj[fill[static_cast<std::size_t>(v)]] = u;
    lg.w[fill[static_cast<std::size_t>(v)]++] = wt;
  }
  return lg;
}

/// One coarsening step: maximal heavy-edge matching (id order, heaviest
/// edge first, smallest-id tie-break), then contraction.  Returns the
/// coarse graph and fills `map` (fine id -> coarse id).
LevelGraph coarsen(const LevelGraph& g, std::vector<int>& map) {
  map.assign(static_cast<std::size_t>(g.n), -1);
  int next = 0;
  for (int v = 0; v < g.n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (map[vi] >= 0) continue;
    int best = -1;
    std::uint64_t best_w = 0;
    for (std::size_t i = g.off[vi]; i < g.off[vi + 1]; ++i) {
      const int u = g.adj[i];
      if (map[static_cast<std::size_t>(u)] >= 0 || u == v) continue;
      if (g.w[i] > best_w || (g.w[i] == best_w && (best < 0 || u < best))) {
        best = u;
        best_w = g.w[i];
      }
    }
    map[vi] = next;
    if (best >= 0) map[static_cast<std::size_t>(best)] = next;
    ++next;
  }
  std::vector<std::uint64_t> node_w(static_cast<std::size_t>(next), 0);
  for (int v = 0; v < g.n; ++v) {
    node_w[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])] +=
        g.node_w[static_cast<std::size_t>(v)];
  }
  std::vector<std::tuple<int, int, std::uint64_t>> es;
  for (int v = 0; v < g.n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    for (std::size_t i = g.off[vi]; i < g.off[vi + 1]; ++i) {
      const int u = g.adj[i];
      if (u <= v) continue;  // each fine edge once
      const int cu = map[vi];
      const int cv = map[static_cast<std::size_t>(u)];
      if (cu == cv) continue;
      es.emplace_back(std::min(cu, cv), std::max(cu, cv), g.w[i]);
    }
  }
  return level_from_edges(next, std::move(es), std::move(node_w));
}

/// Weighted block split of the (coarsest) graph in BFS order from node 0:
/// shard s gets the BFS prefix while the cumulative weight stays within
/// s's share; every shard is forced at least one node.
std::vector<int> initial_split(const LevelGraph& g, int k) {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(g.n));
  std::vector<char> seen(static_cast<std::size_t>(g.n), 0);
  std::queue<int> q;
  for (int root = 0; root < g.n; ++root) {
    if (seen[static_cast<std::size_t>(root)]) continue;
    seen[static_cast<std::size_t>(root)] = 1;
    q.push(root);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      order.push_back(v);
      const auto vi = static_cast<std::size_t>(v);
      for (std::size_t i = g.off[vi]; i < g.off[vi + 1]; ++i) {
        const int u = g.adj[i];
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = 1;
          q.push(u);
        }
      }
    }
  }
  std::uint64_t total = 0;
  for (const std::uint64_t nw : g.node_w) total += nw;
  std::vector<int> part(static_cast<std::size_t>(g.n), 0);
  std::uint64_t cum = 0;
  int s = 0;
  int in_s = 0;  // nodes assigned to the current shard so far
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int remaining = static_cast<int>(order.size() - i);
    // Advance when s's weight share is filled, or when exactly one node
    // per not-yet-started shard remains (each must end up non-empty).
    if (s + 1 < k && in_s > 0 &&
        (remaining == k - 1 - s ||
         cum * static_cast<std::uint64_t>(k) >=
             static_cast<std::uint64_t>(s + 1) * total)) {
      ++s;
      in_s = 0;
    }
    part[static_cast<std::size_t>(order[i])] = s;
    ++in_s;
    cum += g.node_w[static_cast<std::size_t>(order[i])];
  }
  return part;
}

/// Kernighan–Lin style boundary refinement: id-ordered greedy passes that
/// move a node to the adjacent shard with the largest connectivity gain,
/// subject to a weight cap and shards staying non-empty.  Deterministic;
/// stops when a pass moves nothing (at most 4 passes).
void refine(const LevelGraph& g, std::vector<int>& part, int k) {
  std::vector<std::uint64_t> load(static_cast<std::size_t>(k), 0);
  std::vector<int> count(static_cast<std::size_t>(k), 0);
  std::uint64_t total = 0;
  std::uint64_t max_nw = 0;
  for (int v = 0; v < g.n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    load[static_cast<std::size_t>(part[vi])] += g.node_w[vi];
    ++count[static_cast<std::size_t>(part[vi])];
    total += g.node_w[vi];
    max_nw = std::max(max_nw, g.node_w[vi]);
  }
  // Weight cap: 10% over the ideal share, slackened by one cluster so a
  // single heavy cluster can always move somewhere.
  const double cap_d =
      1.10 * static_cast<double>(total) / static_cast<double>(k) +
      static_cast<double>(max_nw);
  std::vector<std::uint64_t> conn(static_cast<std::size_t>(k), 0);
  std::vector<int> touched;
  for (int pass = 0; pass < 4; ++pass) {
    bool moved = false;
    for (int v = 0; v < g.n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const int own = part[vi];
      touched.clear();
      for (std::size_t i = g.off[vi]; i < g.off[vi + 1]; ++i) {
        const int s = part[static_cast<std::size_t>(g.adj[i])];
        if (conn[static_cast<std::size_t>(s)] == 0) touched.push_back(s);
        conn[static_cast<std::size_t>(s)] += g.w[i];
      }
      int best = -1;
      std::uint64_t best_conn = 0;
      for (const int s : touched) {
        if (s == own) continue;
        const std::uint64_t c = conn[static_cast<std::size_t>(s)];
        if (c > best_conn || (c == best_conn && best >= 0 && s < best)) {
          best = s;
          best_conn = c;
        }
      }
      const std::uint64_t own_conn = conn[static_cast<std::size_t>(own)];
      for (const int s : touched) conn[static_cast<std::size_t>(s)] = 0;
      if (best < 0) continue;
      const auto bs = static_cast<std::size_t>(best);
      const auto os = static_cast<std::size_t>(own);
      const bool gain = best_conn > own_conn;
      const bool tie_rebalance =
          best_conn == own_conn && load[os] > load[bs] + g.node_w[vi];
      if (!gain && !tie_rebalance) continue;
      if (count[os] <= 1) continue;  // never empty a shard
      if (static_cast<double>(load[bs] + g.node_w[vi]) > cap_d &&
          load[bs] + g.node_w[vi] >= load[os]) {
        continue;  // would overload the target without improving balance
      }
      part[vi] = best;
      load[os] -= g.node_w[vi];
      load[bs] += g.node_w[vi];
      --count[os];
      ++count[bs];
      moved = true;
    }
    if (!moved) break;
  }
}

/// Exact tree split: iterative DFS from node 0, carving a shard off
/// whenever an unassigned subtree reaches the running target share
/// ceil(unassigned / shards_left).  A tree's optimal k-way cut is k - 1
/// edges and the carve achieves exactly that (each shard is one whole
/// subtree; the residual around the root is the last shard) — the
/// generic matching/refinement pipeline lands around 30x that on a
/// balanced binary tree, and every extra cut edge is horizon pressure
/// and outbox traffic for the sharded engine.  Returns an empty vector
/// when the shape makes the carve infeasible (disconnected forest, or a
/// star-like tree where no proper subtree reaches the share and the
/// residual could not feed the remaining shards): callers fall back to
/// the generic pipeline.
std::vector<int> tree_carve(const Graph& g, int k) {
  const int n = g.num_nodes();
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  std::vector<int> order;  // DFS preorder; reversed = valid postorder
  order.reserve(static_cast<std::size_t>(n));
  std::vector<int> stack = {0};
  parent[0] = 0;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (const NodeId u : g.neighbors(static_cast<NodeId>(v))) {
      if (parent[static_cast<std::size_t>(u)] < 0) {
        parent[static_cast<std::size_t>(u)] = v;
        stack.push_back(static_cast<int>(u));
      }
    }
  }
  if (order.size() != static_cast<std::size_t>(n)) return {};  // forest
  std::vector<int> part(static_cast<std::size_t>(n), -1);
  std::vector<int> acc(static_cast<std::size_t>(n), 1);  // unassigned in subtree
  int unassigned = n;
  int cur = 0;
  std::vector<int> sub;  // scratch for collecting a carved subtree
  for (std::size_t i = order.size(); i-- > 0;) {
    const int v = order[i];
    const auto vi = static_cast<std::size_t>(v);
    // Floor target with a 1/16 slack: subtree spectra often sit just
    // under the exact share (a 2^j - 1 subtree vs a 2^j target), and a
    // slightly small shard beats skipping up to a 2x-overshooting
    // ancestor.  The residual around the root absorbs the slack.
    const int target = unassigned / (k - cur);
    const int threshold = target - target / 16;
    if (cur < k - 1 && acc[vi] >= threshold &&
        unassigned - acc[vi] >= k - 1 - cur) {
      // Carve subtree(v): its unassigned nodes become shard `cur`.
      sub.assign(1, v);
      part[vi] = cur;
      while (!sub.empty()) {
        const int x = sub.back();
        sub.pop_back();
        for (const NodeId u : g.neighbors(static_cast<NodeId>(x))) {
          const auto ui = static_cast<std::size_t>(u);
          if (parent[ui] == x && u != 0 && part[ui] < 0) {
            part[ui] = cur;
            sub.push_back(static_cast<int>(u));
          }
        }
      }
      unassigned -= acc[vi];
      acc[vi] = 0;
      ++cur;
    }
    if (v != 0) acc[static_cast<std::size_t>(parent[vi])] += acc[vi];
  }
  if (cur != k - 1) return {};  // could not fill k - 1 shards
  for (auto& s : part) {
    if (s < 0) s = k - 1;  // the residual component around the root
  }
  return part;
}

}  // namespace

Partition Partition::multilevel(const Graph& g, int num_shards) {
  check_args(g, num_shards);
  Partition p;
  p.num_shards_ = num_shards;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (num_shards == 1) {
    p.shard_of_.assign(n, 0);
    p.finish(g);
    return p;
  }
  // Trees get the exact subtree carve (k - 1 cut edges, the optimum)
  // instead of the heuristic pipeline below, which has no notion of
  // subtrees and lands ~30x off on a balanced binary tree.
  if (g.num_edges() + 1 == n) {
    std::vector<int> carved = tree_carve(g, num_shards);
    if (!carved.empty()) {
      p.shard_of_ = std::move(carved);
      p.finish(g);
      return p;
    }
  }
  // Level 0 is the input graph with unit weights.
  std::vector<std::tuple<int, int, std::uint64_t>> es;
  es.reserve(g.edges().size());
  for (const auto& [u, v] : g.edges()) {
    es.emplace_back(std::min<int>(u, v), std::max<int>(u, v), 1);
  }
  std::vector<LevelGraph> levels;
  levels.push_back(level_from_edges(static_cast<int>(n), std::move(es),
                                    std::vector<std::uint64_t>(n, 1)));
  std::vector<std::vector<int>> maps;  // maps[i]: levels[i] -> levels[i+1]
  const int target = std::max(num_shards * 16, 64);
  while (levels.back().n > target) {
    std::vector<int> map;
    LevelGraph next = coarsen(levels.back(), map);
    if (next.n >= levels.back().n) break;  // no contraction possible
    maps.push_back(std::move(map));
    const bool stalled = next.n * 20 > levels.back().n * 19;  // < 5% shrink
    levels.push_back(std::move(next));
    if (stalled) break;
  }
  std::vector<int> part = initial_split(levels.back(), num_shards);
  refine(levels.back(), part, num_shards);
  for (std::size_t lvl = maps.size(); lvl-- > 0;) {
    const std::vector<int>& map = maps[lvl];
    std::vector<int> fine(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      fine[v] = part[static_cast<std::size_t>(map[v])];
    }
    part = std::move(fine);
    refine(levels[lvl], part, num_shards);
  }
  p.shard_of_ = std::move(part);
  p.finish(g);
  return p;
}

Partition Partition::block(const Graph& g, int num_shards) {
  check_args(g, num_shards);
  Partition p;
  p.num_shards_ = num_shards;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const auto k = static_cast<std::size_t>(num_shards);
  p.shard_of_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    // Inverse of "shard i owns [i*n/k, (i+1)*n/k)"; exact for any n, k.
    p.shard_of_[v] = static_cast<int>(v * k / n);
  }
  p.finish(g);
  return p;
}

Partition Partition::bfs_bands(const Graph& g, int num_shards) {
  check_args(g, num_shards);
  Partition p;
  p.num_shards_ = num_shards;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const auto k = static_cast<std::size_t>(num_shards);

  const std::vector<int> depth = g.bfs_distances(0);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    // Unreachable nodes (depth -1) band last, after the deepest layer.
    const int da = depth[static_cast<std::size_t>(a)];
    const int db = depth[static_cast<std::size_t>(b)];
    const int ka = da < 0 ? g.num_nodes() : da;
    const int kb = db < 0 ? g.num_nodes() : db;
    if (ka != kb) return ka < kb;
    return a < b;
  });

  p.shard_of_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.shard_of_[static_cast<std::size_t>(order[i])] =
        static_cast<int>(i * k / n);
  }
  p.finish(g);
  return p;
}

Partition Partition::make(const Graph& g, int num_shards,
                          const std::string& strategy) {
  if (strategy == "auto" || strategy.empty()) {
    // Trees (m == n-1): block partitions of a BFS-numbered tree cut whole
    // level bands, putting every node within a hop or two of a cut and
    // collapsing the sharded engine's windows; the multilevel split keeps
    // subtrees whole.  Everything else ships with locality-preserving ids
    // where contiguous blocks are already near-optimal and free.
    const bool tree = g.num_edges() + 1 == static_cast<std::size_t>(
                                               g.num_nodes());
    return tree ? multilevel(g, num_shards) : block(g, num_shards);
  }
  if (strategy == "block") return block(g, num_shards);
  if (strategy == "bands") return bfs_bands(g, num_shards);
  if (strategy == "ml" || strategy == "multilevel") {
    return multilevel(g, num_shards);
  }
  throw std::invalid_argument("Partition: unknown strategy '" + strategy +
                              "' (expected auto|block|bands|ml)");
}

Partition Partition::from_assignment(const Graph& g,
                                     std::vector<int> shard_of,
                                     int num_shards) {
  check_args(g, num_shards);
  if (shard_of.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument(
        "Partition::from_assignment: assignment size != num_nodes");
  }
  std::vector<std::size_t> count(static_cast<std::size_t>(num_shards), 0);
  for (const int s : shard_of) {
    if (s < 0 || s >= num_shards) {
      throw std::invalid_argument(
          "Partition::from_assignment: shard index out of range");
    }
    ++count[static_cast<std::size_t>(s)];
  }
  for (const std::size_t c : count) {
    if (c == 0) {
      throw std::invalid_argument(
          "Partition::from_assignment: empty shard");
    }
  }
  Partition p;
  p.num_shards_ = num_shards;
  p.shard_of_ = std::move(shard_of);
  p.finish(g);
  return p;
}

void Partition::finish(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  num_edges_ = g.num_edges();
  members_.assign(static_cast<std::size_t>(num_shards_), {});
  for (std::size_t v = 0; v < n; ++v) {
    members_[static_cast<std::size_t>(shard_of_[v])].push_back(
        static_cast<NodeId>(v));
  }
  edge_is_cut_.assign(num_edges_, false);
  cut_edges_.clear();
  const auto& edges = g.edges();
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const int su = shard_of_[static_cast<std::size_t>(u)];
    const int sv = shard_of_[static_cast<std::size_t>(v)];
    if (su == sv) continue;
    edge_is_cut_[e] = true;
    cut_edges_.push_back(CutEdge{e, u, v, su, sv});
  }
}

Partition::BalanceStats Partition::balance() const {
  BalanceStats s;
  s.min_members = members_.empty() ? 0 : members_.front().size();
  for (const auto& m : members_) {
    s.min_members = std::min(s.min_members, m.size());
    s.max_members = std::max(s.max_members, m.size());
  }
  const double ideal =
      static_cast<double>(shard_of_.size()) / static_cast<double>(num_shards_);
  s.imbalance = ideal > 0.0
                    ? static_cast<double>(s.max_members) / ideal - 1.0
                    : 0.0;
  s.cut_edges = cut_edges_.size();
  s.cut_fraction = num_edges_ > 0
                       ? static_cast<double>(s.cut_edges) /
                             static_cast<double>(num_edges_)
                       : 0.0;
  return s;
}

void Partition::validate(const Graph& g) const {
  const auto fail = [](const std::string& what) {
    throw std::logic_error("Partition::validate: " + what);
  };
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (shard_of_.size() != n) fail("shard_of size != num_nodes");
  std::size_t covered = 0;
  std::vector<bool> seen(n, false);
  for (int s = 0; s < num_shards_; ++s) {
    const auto& m = members_[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < m.size(); ++i) {
      const auto v = static_cast<std::size_t>(m[i]);
      if (v >= n) fail("member id out of range");
      if (seen[v]) fail("node in two shards");
      if (shard_of_[v] != s) fail("members/shard_of disagree");
      if (i > 0 && m[i - 1] >= m[i]) fail("members not ascending");
      seen[v] = true;
      ++covered;
    }
  }
  if (covered != n) fail("shards do not cover V");
  // Cut-edge accounting: recompute from scratch and compare.
  const auto& edges = g.edges();
  if (edge_is_cut_.size() != edges.size()) fail("edge_is_cut size mismatch");
  std::size_t cuts = 0;
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const bool cut = shard_of_[static_cast<std::size_t>(u)] !=
                     shard_of_[static_cast<std::size_t>(v)];
    if (cut != edge_is_cut_[e]) fail("edge_is_cut wrong for edge");
    if (cut) ++cuts;
  }
  if (cuts != cut_edges_.size()) fail("cut_edges count mismatch");
  for (std::size_t i = 0; i < cut_edges_.size(); ++i) {
    const CutEdge& c = cut_edges_[i];
    if (i > 0 && cut_edges_[i - 1].edge >= c.edge) {
      fail("cut_edges not ascending by edge index");
    }
    const auto [u, v] = edges[c.edge];
    if (c.u != u || c.v != v) fail("cut edge endpoints mismatch");
    if (c.su != shard_of_[static_cast<std::size_t>(u)] ||
        c.sv != shard_of_[static_cast<std::size_t>(v)]) {
      fail("cut edge shards mismatch");
    }
  }
}

}  // namespace tbcs::graph
