#include "graph/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace tbcs::graph {

namespace {

void check_args(const Graph& g, int num_shards) {
  if (num_shards < 1) {
    throw std::invalid_argument("Partition: num_shards must be >= 1");
  }
  if (num_shards > g.num_nodes()) {
    throw std::invalid_argument(
        "Partition: num_shards (" + std::to_string(num_shards) +
        ") exceeds node count (" + std::to_string(g.num_nodes()) + ")");
  }
}

}  // namespace

Partition Partition::block(const Graph& g, int num_shards) {
  check_args(g, num_shards);
  Partition p;
  p.num_shards_ = num_shards;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const auto k = static_cast<std::size_t>(num_shards);
  p.shard_of_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    // Inverse of "shard i owns [i*n/k, (i+1)*n/k)"; exact for any n, k.
    p.shard_of_[v] = static_cast<int>(v * k / n);
  }
  p.finish(g);
  return p;
}

Partition Partition::bfs_bands(const Graph& g, int num_shards) {
  check_args(g, num_shards);
  Partition p;
  p.num_shards_ = num_shards;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const auto k = static_cast<std::size_t>(num_shards);

  const std::vector<int> depth = g.bfs_distances(0);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    // Unreachable nodes (depth -1) band last, after the deepest layer.
    const int da = depth[static_cast<std::size_t>(a)];
    const int db = depth[static_cast<std::size_t>(b)];
    const int ka = da < 0 ? g.num_nodes() : da;
    const int kb = db < 0 ? g.num_nodes() : db;
    if (ka != kb) return ka < kb;
    return a < b;
  });

  p.shard_of_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.shard_of_[static_cast<std::size_t>(order[i])] =
        static_cast<int>(i * k / n);
  }
  p.finish(g);
  return p;
}

Partition Partition::make(const Graph& g, int num_shards,
                          const std::string& strategy) {
  if (strategy == "block" || strategy.empty()) return block(g, num_shards);
  if (strategy == "bands") return bfs_bands(g, num_shards);
  throw std::invalid_argument("Partition: unknown strategy '" + strategy +
                              "' (expected block|bands)");
}

void Partition::finish(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  num_edges_ = g.num_edges();
  members_.assign(static_cast<std::size_t>(num_shards_), {});
  for (std::size_t v = 0; v < n; ++v) {
    members_[static_cast<std::size_t>(shard_of_[v])].push_back(
        static_cast<NodeId>(v));
  }
  edge_is_cut_.assign(num_edges_, false);
  cut_edges_.clear();
  const auto& edges = g.edges();
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const int su = shard_of_[static_cast<std::size_t>(u)];
    const int sv = shard_of_[static_cast<std::size_t>(v)];
    if (su == sv) continue;
    edge_is_cut_[e] = true;
    cut_edges_.push_back(CutEdge{e, u, v, su, sv});
  }
}

Partition::BalanceStats Partition::balance() const {
  BalanceStats s;
  s.min_members = members_.empty() ? 0 : members_.front().size();
  for (const auto& m : members_) {
    s.min_members = std::min(s.min_members, m.size());
    s.max_members = std::max(s.max_members, m.size());
  }
  const double ideal =
      static_cast<double>(shard_of_.size()) / static_cast<double>(num_shards_);
  s.imbalance = ideal > 0.0
                    ? static_cast<double>(s.max_members) / ideal - 1.0
                    : 0.0;
  s.cut_edges = cut_edges_.size();
  s.cut_fraction = num_edges_ > 0
                       ? static_cast<double>(s.cut_edges) /
                             static_cast<double>(num_edges_)
                       : 0.0;
  return s;
}

void Partition::validate(const Graph& g) const {
  const auto fail = [](const std::string& what) {
    throw std::logic_error("Partition::validate: " + what);
  };
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (shard_of_.size() != n) fail("shard_of size != num_nodes");
  std::size_t covered = 0;
  std::vector<bool> seen(n, false);
  for (int s = 0; s < num_shards_; ++s) {
    const auto& m = members_[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < m.size(); ++i) {
      const auto v = static_cast<std::size_t>(m[i]);
      if (v >= n) fail("member id out of range");
      if (seen[v]) fail("node in two shards");
      if (shard_of_[v] != s) fail("members/shard_of disagree");
      if (i > 0 && m[i - 1] >= m[i]) fail("members not ascending");
      seen[v] = true;
      ++covered;
    }
  }
  if (covered != n) fail("shards do not cover V");
  // Cut-edge accounting: recompute from scratch and compare.
  const auto& edges = g.edges();
  if (edge_is_cut_.size() != edges.size()) fail("edge_is_cut size mismatch");
  std::size_t cuts = 0;
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const bool cut = shard_of_[static_cast<std::size_t>(u)] !=
                     shard_of_[static_cast<std::size_t>(v)];
    if (cut != edge_is_cut_[e]) fail("edge_is_cut wrong for edge");
    if (cut) ++cuts;
  }
  if (cuts != cut_edges_.size()) fail("cut_edges count mismatch");
  for (std::size_t i = 0; i < cut_edges_.size(); ++i) {
    const CutEdge& c = cut_edges_[i];
    if (i > 0 && cut_edges_[i - 1].edge >= c.edge) {
      fail("cut_edges not ascending by edge index");
    }
    const auto [u, v] = edges[c.edge];
    if (c.u != u || c.v != v) fail("cut edge endpoints mismatch");
    if (c.su != shard_of_[static_cast<std::size_t>(u)] ||
        c.sv != shard_of_[static_cast<std::size_t>(v)]) {
      fail("cut edge shards mismatch");
    }
  }
}

}  // namespace tbcs::graph
