// One node of the threaded runtime: an OS thread hosting an (unmodified)
// sim::Node algorithm instance behind the NodeServices interface.
//
// The thread sleeps until the earliest of (a) the next deliverable inbound
// message and (b) the next armed hardware timer, then dispatches the
// corresponding callback — the same event semantics as the simulator, on
// real time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/virtual_time.hpp"
#include "sim/node.hpp"

namespace tbcs::runtime {

class ThreadedNetwork;

class ThreadedNodeHost final : public sim::NodeServices {
 public:
  ThreadedNodeHost(ThreadedNetwork& net, sim::NodeId id,
                   std::unique_ptr<sim::Node> algorithm, double clock_rate);
  ~ThreadedNodeHost() override;

  ThreadedNodeHost(const ThreadedNodeHost&) = delete;
  ThreadedNodeHost& operator=(const ThreadedNodeHost&) = delete;

  // ---- sim::NodeServices (valid during algorithm callbacks) ---------------
  sim::NodeId id() const override { return id_; }
  sim::ClockValue hardware_now() const override { return clock_.now_units(); }
  void broadcast(const sim::Message& m) override;
  void set_timer(int slot, sim::ClockValue hardware_target) override;
  void cancel_timer(int slot) override;

  // ---- host control ---------------------------------------------------------
  /// Launches the thread.  If `spontaneous_wake`, the node initializes
  /// immediately; otherwise it waits for its first message.
  void start(bool spontaneous_wake);
  void request_stop();
  void join();

  /// Bounded join (the stop() watchdog): waits until the thread signals
  /// exit, then joins.  Returns false if the deadline passes first — the
  /// thread is wedged in a callback and cannot be joined safely.
  bool join_until(VirtualClock::TimePoint deadline);
  /// Detaches a wedged thread (only after join_until() returned false).
  void detach();

  /// Asks the node thread to run the algorithm's on_rejoin() callback
  /// (fault injection: the node was partitioned and is re-joining).
  void request_rejoin();

  /// The hosted algorithm (fault injection toggles decorators through
  /// this; the object itself must only be mutated thread-safely).
  sim::Node& algorithm_mutable() { return *algorithm_; }

  /// Delivers a message at the given host time (called by the network
  /// router from other node threads).
  void enqueue(const sim::Message& m, VirtualClock::TimePoint deliver_at);

  // ---- sampling (any thread) --------------------------------------------------
  double sample_logical() const;
  double sample_hardware() const { return clock_.now_units(); }
  bool awake() const;

 private:
  struct Delivery {
    VirtualClock::TimePoint at;
    sim::Message msg;
    bool operator>(const Delivery& o) const { return at > o.at; }
  };
  struct Timer {
    bool armed = false;
    double target = 0.0;
  };

  void thread_main(bool spontaneous_wake);
  /// Earliest pending deadline, or a far-future point.
  VirtualClock::TimePoint next_deadline_locked() const;
  /// Routes messages buffered by broadcast() with mu_ released (routing
  /// locks other hosts' mutexes; holding our own would invert lock order).
  void flush_outbox(std::unique_lock<std::mutex>& lock);

  ThreadedNetwork& net_;
  sim::NodeId id_;
  std::unique_ptr<sim::Node> algorithm_;
  VirtualClock clock_;

  // Runtime observability: process-wide counters, incremented from this
  // node's thread (each thread writes its own registry shard, so the hot
  // dispatch loop never contends on them).
  obs::Counter metric_delivered_;
  obs::Counter metric_timers_;
  obs::Counter metric_wakes_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Delivery, std::vector<Delivery>, std::greater<>> inbox_;
  std::vector<sim::Message> outbox_;  // buffered during callbacks
  Timer timers_[sim::kMaxTimerSlots];
  bool awake_ = false;
  // Atomic so request_stop() never has to block on mu_ (a wedged callback
  // holds mu_ indefinitely; stopping must still make progress).  The
  // dispatch loop additionally bounds each wait slice so a store that
  // races a waiter entering its wait is picked up within one slice.
  std::atomic<bool> stop_{false};
  bool rejoin_requested_ = false;
  std::thread thread_;

  // Exit signaling lives on its own mutex: a thread wedged inside a
  // callback holds mu_, so the stop() watchdog must be able to time out
  // without ever touching mu_.
  std::mutex exit_mu_;
  std::condition_variable exit_cv_;
  bool exited_ = false;
};

}  // namespace tbcs::runtime
