// Drift-scaled wall clocks for the threaded runtime.
//
// A VirtualClock turns the host's monotonic clock into a hardware clock
// H(t) = rate * (t - t_start): the same abstraction the simulator provides
// analytically, realized on real time.  One "unit" is one millisecond of
// host time at rate 1.
#pragma once

#include <chrono>

namespace tbcs::runtime {

class VirtualClock {
 public:
  using SteadyClock = std::chrono::steady_clock;
  using TimePoint = SteadyClock::time_point;

  explicit VirtualClock(double rate);

  /// Starts the clock (H jumps from "not started" to running at `rate`).
  void start();
  bool started() const { return started_; }

  double rate() const { return rate_; }

  /// H now, in units (milliseconds at rate 1); 0 before start().
  double now_units() const;

  /// Host time point at which H will reach `target` units.
  TimePoint when_reaches(double target) const;

 private:
  double rate_;
  bool started_ = false;
  TimePoint origin_{};
};

}  // namespace tbcs::runtime
