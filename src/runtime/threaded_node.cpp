#include "runtime/threaded_node.hpp"

#include <cassert>

#include "runtime/threaded_network.hpp"

namespace tbcs::runtime {

ThreadedNodeHost::ThreadedNodeHost(ThreadedNetwork& net, sim::NodeId id,
                                   std::unique_ptr<sim::Node> algorithm,
                                   double clock_rate)
    : net_(net),
      id_(id),
      algorithm_(std::move(algorithm)),
      clock_(clock_rate),
      metric_delivered_(
          obs::MetricsRegistry::global().counter("runtime.messages_delivered")),
      metric_timers_(
          obs::MetricsRegistry::global().counter("runtime.timers_fired")),
      metric_wakes_(obs::MetricsRegistry::global().counter("runtime.wakes")) {}

ThreadedNodeHost::~ThreadedNodeHost() {
  request_stop();
  join();
}

void ThreadedNodeHost::broadcast(const sim::Message& m) {
  // Called from this node's own thread during a callback with mu_ held.
  // Routing would lock other hosts' mutexes, so buffer and flush after
  // the callback returns (with mu_ released) to keep lock order acyclic.
  outbox_.push_back(m);
}

void ThreadedNodeHost::flush_outbox(std::unique_lock<std::mutex>& lock) {
  while (!outbox_.empty()) {
    std::vector<sim::Message> batch;
    batch.swap(outbox_);
    lock.unlock();
    for (const sim::Message& m : batch) net_.route_broadcast(id_, m);
    lock.lock();
  }
}

void ThreadedNodeHost::set_timer(int slot, sim::ClockValue hardware_target) {
  assert(slot >= 0 && slot < sim::kMaxTimerSlots);
  timers_[slot].armed = true;
  timers_[slot].target = hardware_target;
}

void ThreadedNodeHost::cancel_timer(int slot) {
  assert(slot >= 0 && slot < sim::kMaxTimerSlots);
  timers_[slot].armed = false;
}

void ThreadedNodeHost::start(bool spontaneous_wake) {
  thread_ = std::thread([this, spontaneous_wake] { thread_main(spontaneous_wake); });
}

void ThreadedNodeHost::request_stop() {
  // No unconditional mu_ lock: a callback wedged inside the algorithm
  // holds mu_ forever and stop() must not inherit that fate.  If try_lock
  // succeeds, no waiter is between its predicate check and its wait, so
  // the notify below is reliable; if it fails, the thread is inside a
  // callback and re-checks the atomic flag before waiting again (each
  // wait slice is bounded in thread_main, so the flag is seen promptly).
  stop_.store(true, std::memory_order_seq_cst);
  if (mu_.try_lock()) mu_.unlock();
  cv_.notify_all();
}

void ThreadedNodeHost::join() {
  if (thread_.joinable()) thread_.join();
}

bool ThreadedNodeHost::join_until(VirtualClock::TimePoint deadline) {
  if (!thread_.joinable()) return true;
  // Deliberately waits on exit_mu_, never mu_: a callback wedged inside
  // the algorithm holds mu_ for good, and the whole point of this method
  // is to detect that without deadlocking the caller.
  {
    std::unique_lock<std::mutex> lock(exit_mu_);
    if (!exit_cv_.wait_until(lock, deadline, [this] { return exited_; })) {
      return false;
    }
  }
  thread_.join();
  return true;
}

void ThreadedNodeHost::detach() {
  if (thread_.joinable()) thread_.detach();
}

void ThreadedNodeHost::request_rejoin() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    rejoin_requested_ = true;
  }
  cv_.notify_all();
}

void ThreadedNodeHost::enqueue(const sim::Message& m,
                               VirtualClock::TimePoint deliver_at) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    inbox_.push(Delivery{deliver_at, m});
  }
  cv_.notify_all();
}

VirtualClock::TimePoint ThreadedNodeHost::next_deadline_locked() const {
  auto deadline = VirtualClock::SteadyClock::now() + std::chrono::hours(24);
  if (!inbox_.empty()) deadline = std::min(deadline, inbox_.top().at);
  if (awake_) {
    for (const Timer& t : timers_) {
      if (t.armed) deadline = std::min(deadline, clock_.when_reaches(t.target));
    }
  }
  return deadline;
}

void ThreadedNodeHost::thread_main(bool spontaneous_wake) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (spontaneous_wake) {
      clock_.start();
      awake_ = true;
      metric_wakes_.inc();
      algorithm_->on_wake(*this, nullptr);
      flush_outbox(lock);
    }
    while (!stop_.load(std::memory_order_relaxed)) {
      // Cap the slice so a stop flag stored while this thread was between
      // its predicate check and its wait (the one notify that can be
      // missed, see request_stop) is observed within a second.
      const auto deadline =
          std::min(next_deadline_locked(),
                   VirtualClock::SteadyClock::now() + std::chrono::seconds(1));
      cv_.wait_until(lock, deadline, [this, deadline] {
        return stop_.load(std::memory_order_relaxed) || rejoin_requested_ ||
               (!inbox_.empty() && inbox_.top().at <= deadline);
      });
      if (stop_.load(std::memory_order_relaxed)) break;
      if (rejoin_requested_) {
        rejoin_requested_ = false;
        if (awake_) {
          algorithm_->on_rejoin(*this);
          flush_outbox(lock);
        }
        continue;
      }
      const auto now = VirtualClock::SteadyClock::now();

      // Deliverable message?
      if (!inbox_.empty() && inbox_.top().at <= now) {
        const sim::Message m = inbox_.top().msg;
        inbox_.pop();
        metric_delivered_.inc();
        if (!awake_) {
          clock_.start();
          awake_ = true;
          metric_wakes_.inc();
          algorithm_->on_wake(*this, &m);
        } else {
          algorithm_->on_message(*this, m);
        }
        flush_outbox(lock);
        continue;
      }

      // Due timer?
      if (awake_) {
        const double h_now = clock_.now_units();
        for (int slot = 0; slot < sim::kMaxTimerSlots; ++slot) {
          Timer& t = timers_[slot];
          if (t.armed && t.target <= h_now) {
            t.armed = false;
            metric_timers_.inc();
            algorithm_->on_timer(*this, slot);
            flush_outbox(lock);
            break;  // re-evaluate deadlines after each callback
          }
        }
      }
    }
  }
  // Signal the stop() watchdog on the dedicated exit mutex (mu_ is
  // released above; a wedged callback never reaches this point, which is
  // exactly what join_until() detects).
  {
    std::lock_guard<std::mutex> lock(exit_mu_);
    exited_ = true;
  }
  exit_cv_.notify_all();
}

double ThreadedNodeHost::sample_logical() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!awake_) return 0.0;
  return algorithm_->logical_at(clock_.now_units());
}

bool ThreadedNodeHost::awake() const {
  std::lock_guard<std::mutex> lock(mu_);
  return awake_;
}

}  // namespace tbcs::runtime
