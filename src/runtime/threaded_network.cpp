#include "runtime/threaded_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"

namespace tbcs::runtime {

ThreadedNetwork::ThreadedNetwork(const graph::Graph& g, Config cfg)
    : graph_(g),
      cfg_(cfg),
      csr_(g.csr()),
      hosts_(static_cast<std::size_t>(g.num_nodes())),
      rng_(cfg.seed),
      partitioned_(new std::atomic<bool>[static_cast<std::size_t>(g.num_nodes())]),
      link_up_(new std::atomic<bool>[g.num_edges()]) {
  assert(cfg_.delay_min >= 0.0 && cfg_.delay_max >= cfg_.delay_min);
  for (sim::NodeId v = 0; v < g.num_nodes(); ++v) {
    partitioned_[static_cast<std::size_t>(v)].store(false,
                                                    std::memory_order_relaxed);
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    link_up_[e].store(true, std::memory_order_relaxed);
  }
}

ThreadedNetwork::~ThreadedNetwork() { stop(); }

void ThreadedNetwork::add_node(sim::NodeId v,
                               std::unique_ptr<sim::Node> algorithm,
                               double clock_rate) {
  assert(!started_);
  hosts_[static_cast<std::size_t>(v)] =
      std::make_unique<ThreadedNodeHost>(*this, v, std::move(algorithm), clock_rate);
}

void ThreadedNetwork::start(sim::NodeId root) {
  assert(!started_);
  for ([[maybe_unused]] const auto& host : hosts_) {
    assert(host && "all nodes must be added");
  }
  started_ = true;
  // Launch non-root nodes first so the root's initial flood finds live inboxes.
  for (sim::NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (v != root) hosts_[static_cast<std::size_t>(v)]->start(false);
  }
  hosts_[static_cast<std::size_t>(root)]->start(true);
}

std::size_t ThreadedNetwork::stop() {
  for (const auto& host : hosts_) {
    if (host) host->request_stop();
  }
  // One shared deadline: the bound is on the whole teardown, not per node.
  const auto deadline =
      VirtualClock::SteadyClock::now() +
      std::chrono::duration_cast<VirtualClock::SteadyClock::duration>(
          std::chrono::duration<double>(cfg_.stop_timeout_ms / 1000.0));
  std::size_t wedged = 0;
  for (auto& host : hosts_) {
    if (!host) continue;
    if (host->join_until(deadline)) continue;
    ++wedged;
    obs::MetricsRegistry::global().counter("runtime.stop_wedged").inc();
    host->detach();
    // The detached thread may still touch the host (it holds mu_ inside a
    // callback), so the host object must outlive the process: park it in
    // a deliberately-leaked list instead of freeing live-referenced state.
    static std::vector<std::unique_ptr<ThreadedNodeHost>>* leaked =
        new std::vector<std::unique_ptr<ThreadedNodeHost>>();
    static std::mutex leaked_mu;
    std::lock_guard<std::mutex> lock(leaked_mu);
    leaked->push_back(std::move(host));
  }
  return wedged;
}

void ThreadedNetwork::route_broadcast(sim::NodeId from, const sim::Message& m) {
  // Registered once per calling thread (registration is idempotent); the
  // increment itself is shard-local and lock-free.
  thread_local obs::Counter routed =
      obs::MetricsRegistry::global().counter("runtime.broadcasts_routed");
  routed.inc();
  const auto now = VirtualClock::SteadyClock::now();
  if (partitioned_[static_cast<std::size_t>(from)].load(
          std::memory_order_relaxed)) {
    messages_dropped_.fetch_add(csr_->degree(from), std::memory_order_relaxed);
    return;
  }
  for (const graph::Graph::Arc* a = csr_->begin(from); a != csr_->end(from);
       ++a) {
    const sim::NodeId to = a->to;
    if (!link_up_[a->edge].load(std::memory_order_relaxed) ||
        partitioned_[static_cast<std::size_t>(to)].load(
            std::memory_order_relaxed)) {
      messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    double delay_units;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      delay_units = rng_.uniform(cfg_.delay_min, cfg_.delay_max);
    }
    sim::Message copy = m;
    bool duplicate = false;
    if (channel_hook_ &&
        !channel_hook_(from, to, copy, delay_units, duplicate)) {
      messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const auto at = now + std::chrono::duration_cast<VirtualClock::SteadyClock::duration>(
                              std::chrono::duration<double>(delay_units / 1000.0));
    ThreadedNodeHost& dst = *hosts_[static_cast<std::size_t>(to)];
    dst.enqueue(copy, at);
    if (duplicate) dst.enqueue(copy, at);
  }
}

void ThreadedNetwork::set_partitioned(sim::NodeId v, bool partitioned) {
  partitioned_[static_cast<std::size_t>(v)].store(partitioned,
                                                  std::memory_order_relaxed);
}

bool ThreadedNetwork::partitioned(sim::NodeId v) const {
  return partitioned_[static_cast<std::size_t>(v)].load(
      std::memory_order_relaxed);
}

void ThreadedNetwork::set_link_state(sim::NodeId u, sim::NodeId v, bool up) {
  const std::uint32_t e = csr_->find_edge(u, v);
  assert(e != graph::kNoEdge && "set_link_state on a non-edge");
  if (e == graph::kNoEdge) return;
  link_up_[e].store(up, std::memory_order_relaxed);
}

void ThreadedNetwork::request_rejoin(sim::NodeId v) {
  hosts_[static_cast<std::size_t>(v)]->request_rejoin();
}

void ThreadedNetwork::set_channel_hook(ChannelHook hook) {
  assert(!started_ && "install the channel hook before start()");
  channel_hook_ = std::move(hook);
}

sim::Node& ThreadedNetwork::algorithm_mutable(sim::NodeId v) {
  return hosts_[static_cast<std::size_t>(v)]->algorithm_mutable();
}

// The null checks below matter after stop(): wedged hosts are moved out
// of hosts_ into the leak list, leaving holes.

double ThreadedNetwork::logical(sim::NodeId v) const {
  const auto& host = hosts_[static_cast<std::size_t>(v)];
  return host ? host->sample_logical() : 0.0;
}

double ThreadedNetwork::hardware(sim::NodeId v) const {
  const auto& host = hosts_[static_cast<std::size_t>(v)];
  return host ? host->sample_hardware() : 0.0;
}

bool ThreadedNetwork::awake(sim::NodeId v) const {
  const auto& host = hosts_[static_cast<std::size_t>(v)];
  return host && host->awake();
}

double ThreadedNetwork::sample_global_skew() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (sim::NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (!awake(v)) continue;
    const double l = logical(v);
    lo = std::min(lo, l);
    hi = std::max(hi, l);
    any = true;
  }
  return any ? hi - lo : 0.0;
}

double ThreadedNetwork::sample_local_skew() const {
  double worst = 0.0;
  for (const auto& [u, w] : graph_.edges()) {
    if (!awake(u) || !awake(w)) continue;
    worst = std::max(worst, std::abs(logical(u) - logical(w)));
  }
  return worst;
}

}  // namespace tbcs::runtime
