#include "runtime/threaded_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"

namespace tbcs::runtime {

ThreadedNetwork::ThreadedNetwork(const graph::Graph& g, Config cfg)
    : graph_(g),
      cfg_(cfg),
      hosts_(static_cast<std::size_t>(g.num_nodes())),
      rng_(cfg.seed) {
  assert(cfg_.delay_min >= 0.0 && cfg_.delay_max >= cfg_.delay_min);
}

ThreadedNetwork::~ThreadedNetwork() { stop(); }

void ThreadedNetwork::add_node(sim::NodeId v,
                               std::unique_ptr<sim::Node> algorithm,
                               double clock_rate) {
  assert(!started_);
  hosts_[static_cast<std::size_t>(v)] =
      std::make_unique<ThreadedNodeHost>(*this, v, std::move(algorithm), clock_rate);
}

void ThreadedNetwork::start(sim::NodeId root) {
  assert(!started_);
  for ([[maybe_unused]] const auto& host : hosts_) {
    assert(host && "all nodes must be added");
  }
  started_ = true;
  // Launch non-root nodes first so the root's initial flood finds live inboxes.
  for (sim::NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (v != root) hosts_[static_cast<std::size_t>(v)]->start(false);
  }
  hosts_[static_cast<std::size_t>(root)]->start(true);
}

void ThreadedNetwork::stop() {
  for (const auto& host : hosts_) {
    if (host) host->request_stop();
  }
  for (const auto& host : hosts_) {
    if (host) host->join();
  }
}

void ThreadedNetwork::route_broadcast(sim::NodeId from, const sim::Message& m) {
  // Registered once per calling thread (registration is idempotent); the
  // increment itself is shard-local and lock-free.
  thread_local obs::Counter routed =
      obs::MetricsRegistry::global().counter("runtime.broadcasts_routed");
  routed.inc();
  const auto now = VirtualClock::SteadyClock::now();
  for (const sim::NodeId to : graph_.neighbors(from)) {
    double delay_units;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      delay_units = rng_.uniform(cfg_.delay_min, cfg_.delay_max);
    }
    const auto at = now + std::chrono::duration_cast<VirtualClock::SteadyClock::duration>(
                              std::chrono::duration<double>(delay_units / 1000.0));
    hosts_[static_cast<std::size_t>(to)]->enqueue(m, at);
  }
}

double ThreadedNetwork::logical(sim::NodeId v) const {
  return hosts_[static_cast<std::size_t>(v)]->sample_logical();
}

double ThreadedNetwork::hardware(sim::NodeId v) const {
  return hosts_[static_cast<std::size_t>(v)]->sample_hardware();
}

bool ThreadedNetwork::awake(sim::NodeId v) const {
  return hosts_[static_cast<std::size_t>(v)]->awake();
}

double ThreadedNetwork::sample_global_skew() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (sim::NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (!awake(v)) continue;
    const double l = logical(v);
    lo = std::min(lo, l);
    hi = std::max(hi, l);
    any = true;
  }
  return any ? hi - lo : 0.0;
}

double ThreadedNetwork::sample_local_skew() const {
  double worst = 0.0;
  for (const auto& [u, w] : graph_.edges()) {
    if (!awake(u) || !awake(w)) continue;
    worst = std::max(worst, std::abs(logical(u) - logical(w)));
  }
  return worst;
}

}  // namespace tbcs::runtime
