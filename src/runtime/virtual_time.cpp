#include "runtime/virtual_time.hpp"

#include <cassert>

namespace tbcs::runtime {

namespace {
constexpr double kUnitsPerSecond = 1000.0;  // 1 unit = 1 ms at rate 1
}

VirtualClock::VirtualClock(double rate) : rate_(rate) { assert(rate > 0.0); }

void VirtualClock::start() {
  assert(!started_);
  started_ = true;
  origin_ = SteadyClock::now();
}

double VirtualClock::now_units() const {
  if (!started_) return 0.0;
  const std::chrono::duration<double> elapsed = SteadyClock::now() - origin_;
  return rate_ * elapsed.count() * kUnitsPerSecond;
}

VirtualClock::TimePoint VirtualClock::when_reaches(double target) const {
  assert(started_);
  const double seconds = target / (rate_ * kUnitsPerSecond);
  return origin_ + std::chrono::duration_cast<SteadyClock::duration>(
                       std::chrono::duration<double>(seconds));
}

}  // namespace tbcs::runtime
