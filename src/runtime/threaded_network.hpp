// The threaded runtime: real threads, real time, injected drift and
// delays.  Demonstrates that the algorithm objects written for the
// simulator run unmodified on a live system.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/threaded_node.hpp"
#include "sim/rng.hpp"

namespace tbcs::runtime {

/// Per-message channel interception (fault injection): called on the
/// sender's thread for each (from, to) copy about to be routed.  May
/// mutate the payload and delay, request a duplicate delivery, or return
/// false to drop the copy.  Installed before start(); the callable itself
/// must be thread-safe (node threads invoke it concurrently).
using ChannelHook = std::function<bool(sim::NodeId from, sim::NodeId to,
                                       sim::Message& m, double& delay_units,
                                       bool& duplicate)>;

class ThreadedNetwork {
 public:
  struct Config {
    /// Messages are delayed uniformly in [delay_min, delay_max] units
    /// (1 unit = 1 ms at clock rate 1).
    double delay_min = 0.0;
    double delay_max = 1.0;
    std::uint64_t seed = 1;
    /// stop() gives all threads this long (wall clock) to exit before
    /// declaring the stragglers wedged and detaching them.
    double stop_timeout_ms = 5000.0;
  };

  ThreadedNetwork(const graph::Graph& g, Config cfg);
  ~ThreadedNetwork();

  ThreadedNetwork(const ThreadedNetwork&) = delete;
  ThreadedNetwork& operator=(const ThreadedNetwork&) = delete;

  /// Installs the algorithm for node v with the given hardware clock rate
  /// (1 +/- drift).  Must be called for every node before start().
  void add_node(sim::NodeId v, std::unique_ptr<sim::Node> algorithm,
                double clock_rate);

  /// Starts all node threads; `root` wakes spontaneously, the others wait
  /// for the initialization flood.
  void start(sim::NodeId root);

  /// Requests shutdown and joins all threads, each within a shared
  /// Config::stop_timeout_ms deadline.  A thread that misses it (wedged
  /// inside a callback) is detached and its host leaked — freeing memory
  /// a live thread still references would be worse — and counted both in
  /// the return value and the "runtime.stop_wedged" metric.
  std::size_t stop();

  /// Routes a broadcast from `from` to all its neighbors with injected
  /// delays (called by node hosts).
  void route_broadcast(sim::NodeId from, const sim::Message& m);

  // ---- fault injection ------------------------------------------------------

  /// Cuts (or restores) every link of v: a partitioned node neither sends
  /// nor receives, but its thread and clock keep running — the threaded
  /// analogue of the simulator's crash/recover pair.
  void set_partitioned(sim::NodeId v, bool partitioned);
  bool partitioned(sim::NodeId v) const;

  /// Takes one undirected link down / up.
  void set_link_state(sim::NodeId u, sim::NodeId v, bool up);

  /// Runs the algorithm's on_rejoin() on v's own thread (call after
  /// clearing a partition so the node re-announces itself).
  void request_rejoin(sim::NodeId v);

  /// Installs the channel fault hook.  Must be called before start().
  void set_channel_hook(ChannelHook hook);

  /// Node v's algorithm object (for toggling fault decorators).
  sim::Node& algorithm_mutable(sim::NodeId v);

  /// Copies dropped by partitions, downed links, or the channel hook.
  std::uint64_t messages_dropped() const {
    return messages_dropped_.load(std::memory_order_relaxed);
  }

  // ---- sampling ----------------------------------------------------------------
  sim::NodeId num_nodes() const { return graph_.num_nodes(); }
  double logical(sim::NodeId v) const;
  double hardware(sim::NodeId v) const;
  bool awake(sim::NodeId v) const;

  /// Max pairwise logical skew across awake nodes right now.
  double sample_global_skew() const;
  /// Max per-edge logical skew right now.
  double sample_local_skew() const;

 private:
  const graph::Graph& graph_;
  Config cfg_;
  std::shared_ptr<const graph::Graph::Csr> csr_;
  std::vector<std::unique_ptr<ThreadedNodeHost>> hosts_;
  std::mutex route_mu_;  // guards rng_
  sim::Rng rng_;
  bool started_ = false;
  // Fault state.  Raw atomic arrays because std::vector<std::atomic<...>>
  // does not compile (atomics are not movable).
  std::unique_ptr<std::atomic<bool>[]> partitioned_;
  std::unique_ptr<std::atomic<bool>[]> link_up_;  // indexed by edge id
  ChannelHook channel_hook_;
  std::atomic<std::uint64_t> messages_dropped_{0};
};

}  // namespace tbcs::runtime
