// The threaded runtime: real threads, real time, injected drift and
// delays.  Demonstrates that the algorithm objects written for the
// simulator run unmodified on a live system.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/threaded_node.hpp"
#include "sim/rng.hpp"

namespace tbcs::runtime {

class ThreadedNetwork {
 public:
  struct Config {
    /// Messages are delayed uniformly in [delay_min, delay_max] units
    /// (1 unit = 1 ms at clock rate 1).
    double delay_min = 0.0;
    double delay_max = 1.0;
    std::uint64_t seed = 1;
  };

  ThreadedNetwork(const graph::Graph& g, Config cfg);
  ~ThreadedNetwork();

  ThreadedNetwork(const ThreadedNetwork&) = delete;
  ThreadedNetwork& operator=(const ThreadedNetwork&) = delete;

  /// Installs the algorithm for node v with the given hardware clock rate
  /// (1 +/- drift).  Must be called for every node before start().
  void add_node(sim::NodeId v, std::unique_ptr<sim::Node> algorithm,
                double clock_rate);

  /// Starts all node threads; `root` wakes spontaneously, the others wait
  /// for the initialization flood.
  void start(sim::NodeId root);

  /// Requests shutdown and joins all threads.
  void stop();

  /// Routes a broadcast from `from` to all its neighbors with injected
  /// delays (called by node hosts).
  void route_broadcast(sim::NodeId from, const sim::Message& m);

  // ---- sampling ----------------------------------------------------------------
  sim::NodeId num_nodes() const { return graph_.num_nodes(); }
  double logical(sim::NodeId v) const;
  double hardware(sim::NodeId v) const;
  bool awake(sim::NodeId v) const;

  /// Max pairwise logical skew across awake nodes right now.
  double sample_global_skew() const;
  /// Max per-edge logical skew right now.
  double sample_local_skew() const;

 private:
  const graph::Graph& graph_;
  Config cfg_;
  std::vector<std::unique_ptr<ThreadedNodeHost>> hosts_;
  std::mutex route_mu_;  // guards rng_
  sim::Rng rng_;
  bool started_ = false;
};

}  // namespace tbcs::runtime
