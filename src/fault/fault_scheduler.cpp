#include "fault/fault_scheduler.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "fault/fault_injection.hpp"
#include "obs/flight_recorder.hpp"

namespace tbcs::fault {

FaultScheduler::FaultScheduler(FaultTimeline timeline)
    : timeline_(std::move(timeline)) {}

void FaultScheduler::run(sim::Simulator& sim, double t_end) {
  while (next_ < timeline_.events.size() &&
         timeline_.events[next_].t <= t_end) {
    const FaultEvent& e = timeline_.events[next_];
    sim.run_until(e.t);
    apply_sim(sim, e);
    ++applied_;
    if (listener_) listener_(e, e.t);
    ++next_;
  }
  sim.run_until(t_end);
}

void FaultScheduler::apply_sim(sim::Simulator& sim, const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kCrash:
      sim.schedule_crash(e.node, e.t);
      return;  // the simulator traces crash/recover itself
    case FaultKind::kRecover:
      sim.schedule_recovery(e.node, e.t);
      return;
    case FaultKind::kLinkDown:
      sim.schedule_link_change(e.node, e.node2, /*up=*/false, e.t);
      break;
    case FaultKind::kLinkUp:
      sim.schedule_link_change(e.node, e.node2, /*up=*/true, e.t);
      break;
    case FaultKind::kDriftSpike:
    case FaultKind::kDriftRestore:
      sim.schedule_rate_change(e.node, e.t, e.value);
      break;
    case FaultKind::kByzantineOn:
    case FaultKind::kByzantineOff:
      if (auto* byz = dynamic_cast<ByzantineNode*>(&sim.node_mutable(e.node))) {
        byz->set_active(e.kind == FaultKind::kByzantineOn);
      }
      break;
    case FaultKind::kChannelOn:
    case FaultKind::kChannelOff:
      break;  // markers; ChannelFaultPolicy applies windows by send time
    case FaultKind::kScramble:
      sim.schedule_scramble(e.node, e.t, e.aux, e.value);
      return;  // the simulator traces scrambles itself
  }
  if (obs::kTraceCompiled && sim.flight_recorder() != nullptr) {
    sim.flight_recorder()->record(
        obs::TracePoint::kFault, e.t, static_cast<std::int32_t>(e.node),
        obs::kNoTraceEdge, static_cast<double>(e.kind), e.value);
  }
}

void FaultScheduler::run_threaded(runtime::ThreadedNetwork& net,
                                  double t_end_units) {
  const auto anchor = std::chrono::steady_clock::now();
  const auto at_units = [&](double t) {
    return anchor + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(t));
  };
  while (next_ < timeline_.events.size() &&
         timeline_.events[next_].t <= t_end_units) {
    const FaultEvent& e = timeline_.events[next_];
    std::this_thread::sleep_until(at_units(e.t));
    // Notify only for events actually applied: an unsupported kind must
    // not anchor the recovery probe on a fault that never happened.
    const std::uint64_t before = applied_;
    apply_threaded(net, e);
    if (listener_ && applied_ > before) listener_(e, e.t);
    ++next_;
  }
  std::this_thread::sleep_until(at_units(t_end_units));
}

void FaultScheduler::apply_threaded(runtime::ThreadedNetwork& net,
                                    const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kCrash:
      net.set_partitioned(e.node, true);
      ++applied_;
      break;
    case FaultKind::kRecover:
      net.set_partitioned(e.node, false);
      net.request_rejoin(e.node);
      ++applied_;
      break;
    case FaultKind::kLinkDown:
      net.set_link_state(e.node, e.node2, /*up=*/false);
      ++applied_;
      break;
    case FaultKind::kLinkUp:
      net.set_link_state(e.node, e.node2, /*up=*/true);
      ++applied_;
      break;
    case FaultKind::kDriftSpike:
    case FaultKind::kDriftRestore:
      // VirtualClock rates are fixed at construction; see run_threaded().
      ++skipped_unsupported_;
      break;
    case FaultKind::kByzantineOn:
    case FaultKind::kByzantineOff:
      if (auto* byz = dynamic_cast<ByzantineNode*>(&net.algorithm_mutable(e.node))) {
        byz->set_active(e.kind == FaultKind::kByzantineOn);
      }
      ++applied_;
      break;
    case FaultKind::kChannelOn:
    case FaultKind::kChannelOff:
      ++applied_;  // markers; the channel hook applies windows by time
      break;
    case FaultKind::kScramble:
      // Threaded nodes own their state behind a mutex the scheduler does
      // not hold; no safe corruption hook exists yet.
      ++skipped_unsupported_;
      break;
  }
}

}  // namespace tbcs::fault
