// Drives a FaultTimeline against a running system.
//
// run() interleaves sim.run_until() with fault application, so faults
// land at exact simulated times; run_threaded() sleeps real wall-clock
// time between faults (best effort — real threads have no exact time).
// A listener fires for every applied event; tbcs_sim uses it to call
// SkewTracker::note_fault() so the recovery probe stays anchored at the
// *last* fault.
#pragma once

#include <cstddef>
#include <functional>

#include "fault/fault_plan.hpp"
#include "runtime/threaded_network.hpp"
#include "sim/simulator.hpp"

namespace tbcs::fault {

class FaultScheduler {
 public:
  using Listener = std::function<void(const FaultEvent&, double t)>;

  explicit FaultScheduler(FaultTimeline timeline);

  void set_listener(Listener listener) { listener_ = std::move(listener); }
  const FaultTimeline& timeline() const { return timeline_; }

  /// Runs the simulator to t_end, applying every timeline event at its
  /// exact time.  Resumable: consecutive calls continue where the
  /// previous one stopped.
  void run(sim::Simulator& sim, double t_end);

  /// Real-time analogue over the threaded runtime (1 unit = 1 ms):
  /// crash/recover become partition/unpartition + rejoin, link faults
  /// flip the live link state, Byzantine events toggle the decorator.
  /// Drift spikes are *unsupported* there (VirtualClock rates are fixed
  /// at construction) and are counted in skipped_unsupported().
  void run_threaded(runtime::ThreadedNetwork& net, double t_end_units);

  std::size_t applied() const { return applied_; }
  std::size_t skipped_unsupported() const { return skipped_unsupported_; }

 private:
  void apply_sim(sim::Simulator& sim, const FaultEvent& e);
  void apply_threaded(runtime::ThreadedNetwork& net, const FaultEvent& e);

  FaultTimeline timeline_;
  std::size_t next_ = 0;
  Listener listener_;
  std::size_t applied_ = 0;
  std::size_t skipped_unsupported_ = 0;
};

}  // namespace tbcs::fault
