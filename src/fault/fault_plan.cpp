#include "fault/fault_plan.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "sim/rng.hpp"

namespace tbcs::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kDriftSpike: return "drift_spike";
    case FaultKind::kDriftRestore: return "drift_restore";
    case FaultKind::kByzantineOn: return "byzantine_on";
    case FaultKind::kByzantineOff: return "byzantine_off";
    case FaultKind::kChannelOn: return "channel_on";
    case FaultKind::kChannelOff: return "channel_off";
    case FaultKind::kScramble: return "scramble";
  }
  return "unknown";
}

const ByzantineSpec* FaultTimeline::byzantine_spec(sim::NodeId v) const {
  for (const ByzantineSpec& s : byzantine) {
    if (s.node == v) return &s;
  }
  return nullptr;
}

double FaultTimeline::last_event_time() const {
  double t = 0.0;
  for (const FaultEvent& e : events) t = std::max(t, e.t);
  return t;
}

// ---- programmatic construction ----------------------------------------------

void FaultPlan::crash(sim::NodeId v, double at) {
  Directive d;
  d.event = FaultEvent{FaultKind::kCrash, at, v, sim::kInvalidNode, 0.0};
  directives_.push_back(d);
}

void FaultPlan::recover(sim::NodeId v, double at) {
  Directive d;
  d.event = FaultEvent{FaultKind::kRecover, at, v, sim::kInvalidNode, 0.0};
  directives_.push_back(d);
}

void FaultPlan::link_down(sim::NodeId u, sim::NodeId v, double at) {
  Directive d;
  d.event = FaultEvent{FaultKind::kLinkDown, at, u, v, 0.0};
  directives_.push_back(d);
}

void FaultPlan::link_up(sim::NodeId u, sim::NodeId v, double at) {
  Directive d;
  d.event = FaultEvent{FaultKind::kLinkUp, at, u, v, 0.0};
  directives_.push_back(d);
}

void FaultPlan::flap(sim::NodeId u, sim::NodeId v, double at, double period,
                     int count) {
  for (int k = 0; k < count; ++k) {
    const double t0 = at + static_cast<double>(k) * period;
    link_down(u, v, t0);
    link_up(u, v, t0 + period / 2.0);
  }
}

void FaultPlan::drift_spike(sim::NodeId v, double at, double rate,
                            double duration) {
  Directive d;
  d.event = FaultEvent{FaultKind::kDriftSpike, at, v, sim::kInvalidNode, rate};
  directives_.push_back(d);
  d.event = FaultEvent{FaultKind::kDriftRestore, at + duration, v,
                       sim::kInvalidNode, 1.0};
  directives_.push_back(d);
}

void FaultPlan::scramble(sim::NodeId v, double at, double magnitude) {
  Directive d;
  d.event =
      FaultEvent{FaultKind::kScramble, at, v, sim::kInvalidNode, magnitude};
  directives_.push_back(d);
}

void FaultPlan::byzantine(sim::NodeId v, double from, double until, bool random,
                          double offset) {
  Directive d;
  d.kind = Directive::Kind::kByzantine;
  d.spec = ByzantineSpec{v, random, offset};
  d.from = from;
  d.until = until;
  directives_.push_back(d);
}

void FaultPlan::channel(const ChannelWindow& w) {
  Directive d;
  d.kind = Directive::Kind::kChannel;
  d.window = w;
  directives_.push_back(d);
}

void FaultPlan::random_crashes(int count, double from, double until,
                               double down_min, double down_max) {
  Directive d;
  d.kind = Directive::Kind::kRandomCrashes;
  d.count = count;
  d.from = from;
  d.until = until;
  d.down_min = down_min;
  d.down_max = down_max;
  directives_.push_back(d);
}

void FaultPlan::random_flaps(int count, double from, double until,
                             double down) {
  Directive d;
  d.kind = Directive::Kind::kRandomFlaps;
  d.count = count;
  d.from = from;
  d.until = until;
  d.down_min = down;
  d.down_max = down;
  directives_.push_back(d);
}

// ---- parsing ----------------------------------------------------------------

namespace {

using KeyValues = std::map<std::string, std::string>;

[[noreturn]] void fail(int line, const std::string& what) {
  throw PlanError("fault plan line " + std::to_string(line) + ": " + what);
}

double need_num(const KeyValues& kv, const char* key, int line) {
  const auto it = kv.find(key);
  if (it == kv.end()) fail(line, std::string("missing ") + key + "=");
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    fail(line, std::string("bad number for ") + key + ": " + it->second);
  }
}

double opt_num(const KeyValues& kv, const char* key, double fallback,
               int line) {
  return kv.count(key) ? need_num(kv, key, line) : fallback;
}

sim::NodeId need_node(const KeyValues& kv, const char* key, int line) {
  const double v = need_num(kv, key, line);
  if (v < 0.0) fail(line, std::string(key) + " must be a node id >= 0");
  return static_cast<sim::NodeId>(v);
}

}  // namespace

FaultPlan FaultPlan::parse(std::istream& is) {
  FaultPlan plan;
  std::string raw;
  int line = 0;
  while (std::getline(is, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ss(raw);
    std::string kind;
    if (!(ss >> kind)) continue;  // blank / comment-only line
    KeyValues kv;
    std::string token;
    while (ss >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        fail(line, "expected key=value, got '" + token + "'");
      }
      kv[token.substr(0, eq)] = token.substr(eq + 1);
    }
    const std::size_t first_new = plan.directives_.size();
    if (kind == "crash") {
      plan.crash(need_node(kv, "node", line), need_num(kv, "at", line));
    } else if (kind == "recover") {
      plan.recover(need_node(kv, "node", line), need_num(kv, "at", line));
    } else if (kind == "link-down") {
      plan.link_down(need_node(kv, "u", line), need_node(kv, "v", line),
                     need_num(kv, "at", line));
    } else if (kind == "link-up") {
      plan.link_up(need_node(kv, "u", line), need_node(kv, "v", line),
                   need_num(kv, "at", line));
    } else if (kind == "flap") {
      plan.flap(need_node(kv, "u", line), need_node(kv, "v", line),
                need_num(kv, "at", line), need_num(kv, "period", line),
                static_cast<int>(opt_num(kv, "count", 1.0, line)));
    } else if (kind == "drift") {
      const double dur = need_num(kv, "for", line);
      if (dur <= 0.0) fail(line, "drift needs for > 0");
      plan.drift_spike(need_node(kv, "node", line), need_num(kv, "at", line),
                       need_num(kv, "rate", line), dur);
    } else if (kind == "scramble") {
      const double mag = need_num(kv, "magnitude", line);
      if (mag <= 0.0) fail(line, "scramble needs magnitude > 0");
      plan.scramble(need_node(kv, "node", line), need_num(kv, "at", line), mag);
    } else if (kind == "byzantine") {
      const auto mode = kv.count("mode") ? kv.at("mode") : "fixed";
      if (mode != "fixed" && mode != "random") {
        fail(line, "byzantine mode must be fixed or random");
      }
      plan.byzantine(need_node(kv, "node", line), need_num(kv, "from", line),
                     need_num(kv, "until", line), mode == "random",
                     need_num(kv, "offset", line));
    } else if (kind == "channel") {
      ChannelWindow w;
      w.t0 = need_num(kv, "from", line);
      w.t1 = need_num(kv, "until", line);
      w.drop = opt_num(kv, "drop", 0.0, line);
      w.duplicate = opt_num(kv, "dup", 0.0, line);
      w.corrupt = opt_num(kv, "corrupt", 0.0, line);
      w.magnitude = opt_num(kv, "magnitude", 0.0, line);
      w.jitter = opt_num(kv, "jitter", 0.0, line);
      if (w.t1 <= w.t0) fail(line, "channel window needs until > from");
      for (const double p : {w.drop, w.duplicate, w.corrupt}) {
        if (p < 0.0 || p > 1.0) fail(line, "probabilities must be in [0, 1]");
      }
      plan.channel(w);
    } else if (kind == "random-crashes") {
      plan.random_crashes(static_cast<int>(need_num(kv, "count", line)),
                          need_num(kv, "from", line),
                          need_num(kv, "until", line),
                          need_num(kv, "down-min", line),
                          need_num(kv, "down-max", line));
    } else if (kind == "random-flaps") {
      plan.random_flaps(static_cast<int>(need_num(kv, "count", line)),
                        need_num(kv, "from", line),
                        need_num(kv, "until", line),
                        need_num(kv, "down", line));
    } else {
      fail(line, "unknown directive '" + kind + "'");
    }
    for (std::size_t j = first_new; j < plan.directives_.size(); ++j) {
      plan.directives_[j].line = line;
    }
  }
  plan.validate_windows();
  return plan;
}

FaultPlan FaultPlan::parse_string(const std::string& text) {
  std::istringstream ss(text);
  return parse(ss);
}

FaultPlan FaultPlan::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw PlanError("cannot open fault plan: " + path);
  return parse(is);
}

// ---- cross-directive validation ---------------------------------------------

namespace {

std::string at_line(int line) {
  return line > 0 ? " (line " + std::to_string(line) + ")" : std::string();
}

[[noreturn]] void fail_overlap(const char* what, int line, int other_line) {
  std::string msg = "fault plan";
  if (line > 0) msg += " line " + std::to_string(line);
  msg += ": ";
  msg += what;
  msg += " overlaps the one";
  msg += at_line(other_line);
  msg += "; split or merge the windows";
  throw PlanError(msg);
}

}  // namespace

void FaultPlan::validate_windows() const {
  struct Span {
    double t0, t1;
    sim::NodeId node;
    int line;
  };
  std::vector<Span> channels, byz, drifts;
  for (std::size_t i = 0; i < directives_.size(); ++i) {
    const Directive& d = directives_[i];
    switch (d.kind) {
      case Directive::Kind::kChannel:
        channels.push_back(
            Span{d.window.t0, d.window.t1, sim::kInvalidNode, d.line});
        break;
      case Directive::Kind::kByzantine:
        if (d.until <= d.from) {
          throw PlanError("fault plan" +
                          (d.line > 0 ? " line " + std::to_string(d.line)
                                      : std::string()) +
                          ": byzantine window needs until > from");
        }
        byz.push_back(Span{d.from, d.until, d.spec.node, d.line});
        break;
      case Directive::Kind::kScripted:
        // drift_spike() pushes the spike and its restore adjacently; the
        // pair is one forced-rate window on that node.
        if (d.event.kind == FaultKind::kDriftSpike &&
            i + 1 < directives_.size() &&
            directives_[i + 1].event.kind == FaultKind::kDriftRestore &&
            directives_[i + 1].event.node == d.event.node) {
          drifts.push_back(Span{d.event.t, directives_[i + 1].event.t,
                                d.event.node, d.line});
        }
        break;
      default:
        break;
    }
  }
  const auto overlap = [](const Span& a, const Span& b) {
    return std::max(a.t0, b.t0) < std::min(a.t1, b.t1);
  };
  // Two channel windows covering the same instant: the decorator applies
  // the first match, so the second would be silently shadowed.
  for (std::size_t i = 0; i < channels.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (overlap(channels[i], channels[j])) {
        fail_overlap("channel window", channels[i].line, channels[j].line);
      }
    }
  }
  // Two Byzantine windows for one node: a single spec per node drives the
  // lying decorator, so the offsets would contradict each other.
  for (std::size_t i = 0; i < byz.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (byz[i].node == byz[j].node && overlap(byz[i], byz[j])) {
        fail_overlap("byzantine window", byz[i].line, byz[j].line);
      }
    }
  }
  // Two drift spikes on one node: the earlier restore would stomp the
  // later spike's forced rate mid-window.
  for (std::size_t i = 0; i < drifts.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (drifts[i].node == drifts[j].node && overlap(drifts[i], drifts[j])) {
        fail_overlap("drift window", drifts[i].line, drifts[j].line);
      }
    }
  }
}

// ---- instantiation ----------------------------------------------------------

FaultTimeline FaultPlan::instantiate(std::uint64_t seed,
                                     const graph::Graph& g) const {
  FaultTimeline tl;
  // One independent stream per random directive, derived from (seed, index)
  // alone, so editing one directive never re-randomizes the others.
  const auto directive_rng = [seed](std::size_t i) {
    sim::SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(i + 1) *
                               0x9e3779b97f4a7c15ULL));
    return sim::Rng(sm.next());
  };
  const auto csr = g.csr();
  const auto check_node = [&](sim::NodeId v, int line) {
    if (v < 0 || v >= g.num_nodes()) {
      throw PlanError("fault plan" + at_line(line) + " names node " +
                      std::to_string(v) + " but the topology has " +
                      std::to_string(g.num_nodes()) + " nodes");
    }
  };
  const auto check_edge = [&](sim::NodeId u, sim::NodeId v, int line) {
    check_node(u, line);
    check_node(v, line);
    if (csr->find_edge(u, v) == graph::kNoEdge) {
      throw PlanError("fault plan" + at_line(line) + " names link {" +
                      std::to_string(u) + ", " + std::to_string(v) +
                      "} which is not a topology edge");
    }
  };

  for (std::size_t i = 0; i < directives_.size(); ++i) {
    const Directive& d = directives_[i];
    switch (d.kind) {
      case Directive::Kind::kScripted: {
        FaultEvent e = d.event;
        if (e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp) {
          check_edge(e.node, e.node2, d.line);
        } else {
          check_node(e.node, d.line);
        }
        if (e.kind == FaultKind::kScramble) {
          // The corruption seed comes from the same per-directive stream as
          // every other random draw: a pure function of (plan seed, index).
          sim::SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(i + 1) *
                                     0x9e3779b97f4a7c15ULL));
          e.aux = sm.next();
        }
        tl.events.push_back(e);
        break;
      }
      case Directive::Kind::kChannel: {
        tl.windows.push_back(d.window);
        tl.events.push_back(FaultEvent{FaultKind::kChannelOn, d.window.t0,
                                       sim::kInvalidNode, sim::kInvalidNode,
                                       0.0});
        tl.events.push_back(FaultEvent{FaultKind::kChannelOff, d.window.t1,
                                       sim::kInvalidNode, sim::kInvalidNode,
                                       0.0});
        break;
      }
      case Directive::Kind::kByzantine: {
        check_node(d.spec.node, d.line);
        tl.byzantine.push_back(d.spec);
        tl.events.push_back(FaultEvent{FaultKind::kByzantineOn, d.from,
                                       d.spec.node, sim::kInvalidNode,
                                       d.spec.offset});
        tl.events.push_back(FaultEvent{FaultKind::kByzantineOff, d.until,
                                       d.spec.node, sim::kInvalidNode, 0.0});
        break;
      }
      case Directive::Kind::kRandomCrashes: {
        sim::Rng rng = directive_rng(i);
        for (int k = 0; k < d.count; ++k) {
          const auto v = static_cast<sim::NodeId>(
              rng.uniform_index(static_cast<std::uint64_t>(g.num_nodes())));
          const double at = rng.uniform(d.from, d.until);
          const double down = rng.uniform(d.down_min, d.down_max);
          tl.events.push_back(
              FaultEvent{FaultKind::kCrash, at, v, sim::kInvalidNode, 0.0});
          tl.events.push_back(FaultEvent{FaultKind::kRecover, at + down, v,
                                         sim::kInvalidNode, 0.0});
        }
        break;
      }
      case Directive::Kind::kRandomFlaps: {
        sim::Rng rng = directive_rng(i);
        const auto& edges = g.edges();
        if (edges.empty()) break;
        for (int k = 0; k < d.count; ++k) {
          const auto& [u, v] = edges[rng.uniform_index(edges.size())];
          const double at = rng.uniform(d.from, d.until);
          tl.events.push_back(
              FaultEvent{FaultKind::kLinkDown, at, u, v, 0.0});
          tl.events.push_back(
              FaultEvent{FaultKind::kLinkUp, at + d.down_min, u, v, 0.0});
        }
        break;
      }
    }
  }

  std::stable_sort(tl.events.begin(), tl.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.t < b.t;
                   });
  return tl;
}

}  // namespace tbcs::fault
