// Deterministic, composable fault schedules.
//
// A FaultPlan is a list of *directives* — scripted faults ("crash node 3
// at t=100") plus seeded-random generators ("crash 3 random nodes
// somewhere in [100, 400]").  instantiate() resolves the directives
// against a concrete topology and a seed into a FaultTimeline: a sorted
// list of concrete FaultEvents plus the channel-fault windows and
// Byzantine node set that parameterize the decorators.  The same timeline
// drives both the discrete-event Simulator (via FaultScheduler) and the
// real-thread ThreadedNetwork (via run_threaded), and instantiation is a
// pure function of (plan, seed, topology) — which is what keeps faulty
// sweeps byte-identical at any --jobs count.
//
// Plan file format (docs/FAULTS.md): one directive per line,
// `kind key=value ...`, '#' comments.  Scripted kinds: crash, recover,
// link-down, link-up, flap, drift, byzantine, channel.  Seeded-random
// kinds: random-crashes, random-flaps.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/types.hpp"

namespace tbcs::fault {

/// Concrete fault event kinds, in the order they appear in trace records
/// (FlightRecorder kFault stores the kind index in payload `a`).
enum class FaultKind : std::uint32_t {
  kCrash = 0,       // node loses all links and goes silent
  kRecover,         // node re-joins: links restored, algorithm notified
  kLinkDown,        // link {node, node2} goes down
  kLinkUp,          // link {node, node2} comes back up
  kDriftSpike,      // node's hardware rate forced to `value` (beyond eps)
  kDriftRestore,    // rate forced back to `value` (1.0)
  kByzantineOn,     // node starts lying about its clock in messages
  kByzantineOff,    // node reverts to honest reports
  kChannelOn,       // a channel-fault window opens (marker; the decorator
  kChannelOff,      //   applies the faults by send time)
  kScramble,        // node's algorithm state set adversarially (value =
                    //   magnitude, aux = the seed the corruption is drawn from)
};

inline constexpr int kNumFaultKinds = 11;

const char* fault_kind_name(FaultKind k);

/// One concrete fault at one instant of real time.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  double t = 0.0;
  sim::NodeId node = sim::kInvalidNode;
  sim::NodeId node2 = sim::kInvalidNode;  // link faults: second endpoint
  double value = 0.0;  // drift spikes: the forced rate; scramble: magnitude
  std::uint64_t aux = 0;  // scramble: the seed (stamped at instantiate())
};

/// A window during which the channel decorator injects message faults.
/// Probabilities are per (message, receiver); `jitter` adds uniform
/// [0, jitter] to the base delay (reordering past later sends),
/// `magnitude` bounds the uniform payload perturbation of corrupted
/// messages.
struct ChannelWindow {
  double t0 = 0.0;
  double t1 = 0.0;
  double drop = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
  double magnitude = 0.0;
  double jitter = 0.0;
};

/// A node that lies about its clock values in outgoing messages while
/// active.  `random` draws a fresh offset in [-offset, offset] per
/// message; otherwise the fixed `offset` is added to both payload fields.
struct ByzantineSpec {
  sim::NodeId node = sim::kInvalidNode;
  bool random = false;
  double offset = 0.0;
};

/// Resolved plan: what actually happens, against one topology and seed.
struct FaultTimeline {
  std::vector<FaultEvent> events;     // sorted by (t, insertion order)
  std::vector<ChannelWindow> windows;
  std::vector<ByzantineSpec> byzantine;

  bool empty() const {
    return events.empty() && windows.empty() && byzantine.empty();
  }
  /// Byzantine spec for node v, or nullptr.
  const ByzantineSpec* byzantine_spec(sim::NodeId v) const;
  /// Time of the last event (the recovery-probe anchor); 0 when empty.
  double last_event_time() const;
};

class PlanError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FaultPlan {
 public:
  /// Parses the text format; throws PlanError with a line number on any
  /// malformed directive.
  static FaultPlan parse(std::istream& is);
  static FaultPlan parse_string(const std::string& text);
  /// Loads from a file; throws PlanError when unreadable.
  static FaultPlan load_file(const std::string& path);

  bool empty() const { return directives_.empty(); }
  std::size_t num_directives() const { return directives_.size(); }

  // ---- programmatic construction (tests, chaos harnesses) -----------------
  void crash(sim::NodeId v, double at);
  void recover(sim::NodeId v, double at);
  void link_down(sim::NodeId u, sim::NodeId v, double at);
  void link_up(sim::NodeId u, sim::NodeId v, double at);
  /// `count` down/up cycles starting at `at`, each `period` long (down for
  /// the first half).
  void flap(sim::NodeId u, sim::NodeId v, double at, double period, int count);
  void drift_spike(sim::NodeId v, double at, double rate, double duration);
  /// Self-stabilization probe: overwrite v's algorithm state with
  /// adversarial values within +-magnitude at time `at` (the corruption
  /// seed is derived at instantiate() like every other random draw).
  void scramble(sim::NodeId v, double at, double magnitude);
  void byzantine(sim::NodeId v, double from, double until, bool random,
                 double offset);
  void channel(const ChannelWindow& w);
  void random_crashes(int count, double from, double until, double down_min,
                      double down_max);
  void random_flaps(int count, double from, double until, double down);

  /// Resolves every directive against `g` with randomness derived from
  /// `seed` only.  Throws PlanError on out-of-range nodes or non-edges,
  /// citing the source line for directives that came from a plan file.
  FaultTimeline instantiate(std::uint64_t seed, const graph::Graph& g) const;

 private:
  /// Cross-directive consistency: rejects overlapping channel windows
  /// (the decorator applies the first match, silently shadowing the
  /// rest), overlapping Byzantine windows for one node (one spec per node
  /// drives the decorator), and overlapping drift spikes on one node (the
  /// earlier restore would stomp the later spike).  Called at the end of
  /// parse() so every error carries its line number; programmatic plans
  /// (line 0) are the caller's responsibility.
  void validate_windows() const;

  // A directive is stored pre-parsed; random directives hold their window
  // parameters and are expanded at instantiate() time.
  struct Directive {
    enum class Kind {
      kScripted,       // one FaultEvent, fully specified
      kChannel,        // one ChannelWindow
      kByzantine,      // spec + on/off events
      kRandomCrashes,  // count crash/recover pairs in [from, until]
      kRandomFlaps,    // count single flaps in [from, until]
    };
    Kind kind = Kind::kScripted;
    FaultEvent event;       // kScripted
    ChannelWindow window;   // kChannel
    ByzantineSpec spec;     // kByzantine
    double from = 0.0;      // kByzantine / random generators
    double until = 0.0;
    int count = 0;          // random generators
    double down_min = 0.0;  // crash/flap outage duration bounds
    double down_max = 0.0;
    int line = 0;           // plan-file source line (0: programmatic)
  };

  std::vector<Directive> directives_;
};

}  // namespace tbcs::fault
