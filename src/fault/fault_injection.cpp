#include "fault/fault_injection.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <utility>

namespace tbcs::fault {

// ---- ChannelFaultPolicy -----------------------------------------------------

ChannelFaultPolicy::ChannelFaultPolicy(std::shared_ptr<sim::DelayPolicy> inner,
                                       std::vector<ChannelWindow> windows,
                                       std::uint64_t seed)
    : inner_(std::move(inner)), windows_(std::move(windows)), streams_(seed) {}

void ChannelFaultPolicy::set_inner(std::shared_ptr<sim::DelayPolicy> inner) {
  inner_ = std::move(inner);
}

void ChannelFaultPolicy::prepare(sim::NodeId num_nodes) {
  streams_.materialize(num_nodes);
  inner_->prepare(num_nodes);
}

const ChannelWindow* ChannelFaultPolicy::window_at(double t) const {
  for (const ChannelWindow& w : windows_) {
    if (t >= w.t0 && t < w.t1) return &w;
  }
  return nullptr;
}

sim::RealTime ChannelFaultPolicy::delivery_time(sim::NodeId from,
                                                sim::NodeId to,
                                                sim::RealTime send_time,
                                                const sim::Simulator& sim) {
  return inner_->delivery_time(from, to, send_time, sim);
}

void ChannelFaultPolicy::plan_deliveries(sim::NodeId from, sim::NodeId to,
                                         sim::RealTime send_time,
                                         const sim::Simulator& sim,
                                         std::vector<sim::PlannedDelivery>& out) {
  // The inner delivery time is drawn unconditionally, even for messages
  // the window then drops: the inner policy's stream must advance the
  // same way with and without faults, so disabling a window perturbs
  // nothing before it.
  sim::PlannedDelivery pd;
  pd.at = inner_->delivery_time(from, to, send_time, sim);
  // Floor every planned copy at the bound this policy certifies to the
  // sharded engine (min_delay forwards to the inner policy).  Jitter only
  // adds delay, so with an honest inner policy the clamp never fires; it
  // exists so a delivery below the certified bound — from a buggy inner
  // draw or a mis-certified min_delay override — is pinned to the bound
  // instead of silently breaking the safe-horizon invariant (a cross-shard
  // message arriving before the window barrier it was certified past).
  const sim::RealTime floor_at = send_time + inner_->min_delay(from, to);
  const ChannelWindow* w = window_at(send_time);
  if (w == nullptr) {
    pd.at = std::max(pd.at, floor_at);
    out.push_back(pd);
    return;
  }
  sim::Rng& rng = streams_.stream(from);
  if (w->drop > 0.0 && rng.next_double() < w->drop) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (w->jitter > 0.0) pd.at += rng.uniform(0.0, w->jitter);
  pd.at = std::max(pd.at, floor_at);
  if (w->corrupt > 0.0 && rng.next_double() < w->corrupt) {
    pd.logical_delta = rng.uniform(-w->magnitude, w->magnitude);
    pd.logical_max_delta = rng.uniform(-w->magnitude, w->magnitude);
    corrupted_.fetch_add(1, std::memory_order_relaxed);
  }
  out.push_back(pd);
  if (w->duplicate > 0.0 && rng.next_double() < w->duplicate) {
    sim::PlannedDelivery dup = pd;  // same (possibly corrupted) payload
    if (w->jitter > 0.0) {
      dup.at = inner_->delivery_time(from, to, send_time, sim) +
               rng.uniform(0.0, w->jitter);
    }
    dup.at = std::max(dup.at, floor_at);
    out.push_back(dup);
    duplicated_.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---- ByzantineNode ----------------------------------------------------------

/// Forwards everything except broadcast(), which perturbs the payload
/// while the wrapper is active (same shape as TickQuantizedNode's
/// TickServices).
class ByzantineNode::LyingServices final : public sim::NodeServices {
 public:
  LyingServices(ByzantineNode& outer, sim::NodeServices& inner)
      : outer_(outer), inner_(inner) {}

  sim::NodeId id() const override { return inner_.id(); }
  sim::ClockValue hardware_now() const override {
    return inner_.hardware_now();
  }
  void broadcast(const sim::Message& m) override {
    inner_.broadcast(outer_.perturb(m));
  }
  void set_timer(int slot, sim::ClockValue hardware_target) override {
    inner_.set_timer(slot, hardware_target);
  }
  void cancel_timer(int slot) override { inner_.cancel_timer(slot); }

 private:
  ByzantineNode& outer_;
  sim::NodeServices& inner_;
};

ByzantineNode::ByzantineNode(std::unique_ptr<sim::Node> inner,
                             ByzantineSpec spec, std::uint64_t seed)
    : inner_(std::move(inner)), spec_(spec), rng_(seed) {}

sim::Message ByzantineNode::perturb(const sim::Message& m) {
  if (!active()) return m;
  sim::Message lie = m;
  const double delta =
      spec_.random ? rng_.uniform(-spec_.offset, spec_.offset) : spec_.offset;
  lie.logical += delta;
  lie.logical_max += delta;
  lies_.fetch_add(1, std::memory_order_relaxed);
  return lie;
}

void ByzantineNode::on_wake(sim::NodeServices& sv,
                            const sim::Message* by_message) {
  LyingServices ls(*this, sv);
  inner_->on_wake(ls, by_message);
}

void ByzantineNode::on_message(sim::NodeServices& sv, const sim::Message& m) {
  LyingServices ls(*this, sv);
  inner_->on_message(ls, m);
}

void ByzantineNode::on_timer(sim::NodeServices& sv, int slot) {
  LyingServices ls(*this, sv);
  inner_->on_timer(ls, slot);
}

void ByzantineNode::on_link_change(sim::NodeServices& sv, sim::NodeId neighbor,
                                   bool up) {
  LyingServices ls(*this, sv);
  inner_->on_link_change(ls, neighbor, up);
}

void ByzantineNode::on_rejoin(sim::NodeServices& sv) {
  LyingServices ls(*this, sv);
  inner_->on_rejoin(ls);
}

void ByzantineNode::on_scramble(sim::NodeServices& sv, std::uint64_t seed,
                                double magnitude) {
  LyingServices ls(*this, sv);
  inner_->on_scramble(ls, seed, magnitude);
}

sim::ClockValue ByzantineNode::logical_at(sim::ClockValue hardware_now) const {
  return inner_->logical_at(hardware_now);
}

double ByzantineNode::rate_multiplier() const {
  return inner_->rate_multiplier();
}

// ---- threaded channel hook --------------------------------------------------

runtime::ChannelHook make_channel_hook(std::vector<ChannelWindow> windows,
                                       std::uint64_t seed) {
  struct State {
    std::mutex mu;
    std::vector<ChannelWindow> windows;
    sim::Rng rng;
    std::chrono::steady_clock::time_point anchor;
    bool anchored = false;
    State(std::vector<ChannelWindow> w, std::uint64_t s)
        : windows(std::move(w)), rng(s) {}
  };
  auto state = std::make_shared<State>(std::move(windows), seed);
  return [state](sim::NodeId /*from*/, sim::NodeId /*to*/, sim::Message& m,
                 double& delay_units, bool& duplicate) -> bool {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->anchored) {
      state->anchor = std::chrono::steady_clock::now();
      state->anchored = true;
    }
    const double t =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - state->anchor)
            .count();
    const ChannelWindow* w = nullptr;
    for (const ChannelWindow& cand : state->windows) {
      if (t >= cand.t0 && t < cand.t1) {
        w = &cand;
        break;
      }
    }
    if (w == nullptr) return true;
    if (w->drop > 0.0 && state->rng.next_double() < w->drop) return false;
    if (w->jitter > 0.0) delay_units += state->rng.uniform(0.0, w->jitter);
    if (w->corrupt > 0.0 && state->rng.next_double() < w->corrupt) {
      m.logical += state->rng.uniform(-w->magnitude, w->magnitude);
      m.logical_max += state->rng.uniform(-w->magnitude, w->magnitude);
    }
    if (w->duplicate > 0.0 && state->rng.next_double() < w->duplicate) {
      duplicate = true;
    }
    return true;
  };
}

}  // namespace tbcs::fault
