// The fault decorators: a lossy/duplicating/corrupting channel over any
// DelayPolicy, and a Byzantine wrapper over any Node.
//
// Both are parameterized by the FaultTimeline pieces (ChannelWindow,
// ByzantineSpec) and a seed, and draw from their own Rng streams — so a
// faulty execution is a pure function of (plan, seed, topology) and
// replays bit-identically, including under --jobs N sweeps.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_plan.hpp"
#include "runtime/threaded_network.hpp"
#include "sim/delay_policy.hpp"
#include "sim/node.hpp"

namespace tbcs::fault {

/// DelayPolicy decorator: inside any ChannelWindow covering the send
/// time, messages may be dropped, duplicated, delayed by extra jitter
/// (reordering them past later sends), or have their payload perturbed.
/// Outside every window it plans exactly the inner policy's delivery.
class ChannelFaultPolicy final : public sim::DelayPolicy {
 public:
  ChannelFaultPolicy(std::shared_ptr<sim::DelayPolicy> inner,
                     std::vector<ChannelWindow> windows, std::uint64_t seed);

  sim::RealTime delivery_time(sim::NodeId from, sim::NodeId to,
                              sim::RealTime send_time,
                              const sim::Simulator& sim) override;
  void plan_deliveries(sim::NodeId from, sim::NodeId to,
                       sim::RealTime send_time, const sim::Simulator& sim,
                       std::vector<sim::PlannedDelivery>& out) override;
  bool plans_deliveries() const override { return true; }

  /// Jitter only ever *adds* delay, drops remove deliveries, and duplicate
  /// copies inherit a fresh inner delay — so the inner policy's bound
  /// survives the channel faults unchanged.  plan_deliveries() enforces
  /// this with an explicit floor at send_time + inner min_delay(from, to):
  /// a buggy or adversarial inner policy that draws below its own
  /// certified bound is clamped rather than allowed to break the sharded
  /// engine's safe-horizon invariant.
  sim::Duration min_delay() const override { return inner_->min_delay(); }
  sim::Duration min_delay(sim::NodeId from, sim::NodeId to) const override {
    return inner_->min_delay(from, to);
  }
  void prepare(sim::NodeId num_nodes) override;

  /// The wrapped policy is swappable so record/replay decorators can be
  /// installed *inside* the channel faults (faults must perturb the
  /// recorded delays, not be perturbed by them).
  void set_inner(std::shared_ptr<sim::DelayPolicy> inner);
  const std::shared_ptr<sim::DelayPolicy>& inner() const { return inner_; }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t duplicated() const {
    return duplicated_.load(std::memory_order_relaxed);
  }
  std::uint64_t corrupted() const {
    return corrupted_.load(std::memory_order_relaxed);
  }

 private:
  const ChannelWindow* window_at(double t) const;

  std::shared_ptr<sim::DelayPolicy> inner_;
  std::vector<ChannelWindow> windows_;
  // Fault draws come from the *sender's* stream (a pure function of the
  // seed and the sender id), so the drop/jitter/corrupt/duplicate outcome
  // of every send depends only on that sender's own send order — identical
  // under serial and sharded execution.
  sim::detail::PerSenderStreams streams_;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> corrupted_{0};
};

/// Node decorator: while active, outgoing messages carry clock values
/// perturbed per the ByzantineSpec (fixed offset, or a fresh uniform
/// [-offset, offset] draw per message).  The wrapped algorithm and the
/// observability view (logical_at / rate_multiplier) stay honest — the
/// lie exists only on the wire, which is the standard Byzantine model
/// for clock synchronization.
class ByzantineNode final : public sim::Node {
 public:
  ByzantineNode(std::unique_ptr<sim::Node> inner, ByzantineSpec spec,
                std::uint64_t seed);

  void on_wake(sim::NodeServices& sv, const sim::Message* by_message) override;
  void on_message(sim::NodeServices& sv, const sim::Message& m) override;
  void on_timer(sim::NodeServices& sv, int slot) override;
  void on_link_change(sim::NodeServices& sv, sim::NodeId neighbor,
                      bool up) override;
  void on_rejoin(sim::NodeServices& sv) override;
  void on_scramble(sim::NodeServices& sv, std::uint64_t seed,
                   double magnitude) override;
  sim::ClockValue logical_at(sim::ClockValue hardware_now) const override;
  double rate_multiplier() const override;

  /// Toggled by the FaultScheduler (kByzantineOn / kByzantineOff); atomic
  /// because the threaded runtime toggles from the scheduler thread.
  void set_active(bool active) {
    active_.store(active, std::memory_order_relaxed);
  }
  bool active() const { return active_.load(std::memory_order_relaxed); }
  std::uint64_t lies_told() const {
    return lies_.load(std::memory_order_relaxed);
  }
  const sim::Node& inner() const { return *inner_; }

 private:
  class LyingServices;

  sim::Message perturb(const sim::Message& m);

  std::unique_ptr<sim::Node> inner_;
  ByzantineSpec spec_;
  sim::Rng rng_;  // only the owning node's thread draws from it
  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> lies_{0};
};

/// Channel-fault hook for the threaded runtime: applies the same window
/// semantics (drop / duplicate / corrupt / jitter) to live routed
/// messages, with the window clock anchored at the first routed message.
/// Thread-safe; real-thread scheduling makes the outcome inherently
/// nondeterministic, so this shares only the *model* with the simulator
/// path, not the draw sequence.
runtime::ChannelHook make_channel_hook(std::vector<ChannelWindow> windows,
                                       std::uint64_t seed);

}  // namespace tbcs::fault
