// One unit of work for the experiment-execution engine: a complete
// ExperimentConfig plus the sweep coordinates ("labels") that identify the
// run in result tables.
//
// Seeds are derived, never inherited: run_one() overwrites cfg.seed with
// derive_seed(base_seed, run_index), so a run's randomness depends only on
// the base seed and the run's position in the spec list — not on which
// worker thread picks it up or in which order runs finish.  This is what
// makes `--jobs 1` and `--jobs 8` byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cli/experiment_config.hpp"
#include "sim/rng.hpp"

namespace tbcs::exec {

/// Per-run seed: SplitMix64 over (base_seed, run_index).  Stable across
/// scheduling order, platforms, and job counts.
inline std::uint64_t derive_seed(std::uint64_t base_seed,
                                 std::uint64_t run_index) {
  sim::SplitMix64 sm(base_seed ^
                     (run_index + 1) * 0x9e3779b97f4a7c15ULL);
  return sm.next();
}

/// A label is a (column, value) pair identifying the run in the output,
/// e.g. {"eps", "0.02"} or {"replica", "3"}.  All specs passed to one
/// runner invocation must share the same label columns in the same order.
using RunLabels = std::vector<std::pair<std::string, std::string>>;

/// Per-run metric snapshot: (name, value) pairs in a fixed order shared by
/// every run of a sweep, so sinks can emit them as columns.  Only
/// deterministic quantities belong here (event/queue counters, never wall
/// time): sweep output must stay byte-identical across --jobs counts.
using RunMetrics = std::vector<std::pair<std::string, double>>;

struct RunSpec {
  cli::ExperimentConfig config;  // cfg.seed is overwritten by the runner
  RunLabels labels;
};

/// Everything a sweep needs to report about one finished run.  `index`
/// is the run's position in the submitted spec list; sinks emit results
/// in index order, so output row order never depends on scheduling.
struct RunResult {
  std::size_t index = 0;
  RunLabels labels;
  std::uint64_t seed = 0;

  bool ok = false;
  std::string error;  // set when ok == false (build/run threw)

  int diameter = 0;
  double global_skew = 0.0;
  double local_skew = 0.0;
  double global_bound = 0.0;
  double local_bound = 0.0;
  double envelope_violation = 0.0;
  std::uint64_t broadcasts = 0;
  std::uint64_t messages = 0;
  double duration = 0.0;

  /// Deterministic per-run observability snapshot (see RunMetrics).
  RunMetrics metrics;
};

}  // namespace tbcs::exec
