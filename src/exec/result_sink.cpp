#include "exec/result_sink.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "analysis/table.hpp"
#include "analysis/trace.hpp"

namespace tbcs::exec {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream ss;
  ss.precision(12);
  ss << v;
  return ss.str();
}

}  // namespace

void CsvSink::write(std::ostream& os,
                    const std::vector<RunResult>& results) const {
  analysis::CsvWriter csv(os);
  // Metric columns come from the first ok run; every run of a sweep
  // produces the same RunMetrics names in the same order (run_one).
  const RunMetrics* metric_cols = nullptr;
  for (const RunResult& r : results) {
    if (r.ok) {
      metric_cols = &r.metrics;
      break;
    }
  }

  std::vector<std::string> header;
  if (!results.empty()) {
    for (const auto& [key, value] : results.front().labels) {
      header.push_back(key);
    }
  }
  for (const char* col : {"seed", "global_skew", "local_skew", "global_bound",
                          "local_bound", "messages"}) {
    header.emplace_back(col);
  }
  if (metric_cols != nullptr) {
    for (const auto& [name, value] : *metric_cols) header.push_back(name);
  }
  csv.row(header);

  for (const RunResult& r : results) {
    if (!r.ok) continue;
    std::vector<std::string> row;
    for (const auto& [key, value] : r.labels) row.push_back(value);
    row.push_back(std::to_string(r.seed));
    row.push_back(analysis::Table::num(r.global_skew, 6));
    row.push_back(analysis::Table::num(r.local_skew, 6));
    row.push_back(analysis::Table::num(r.global_bound, 6));
    row.push_back(analysis::Table::num(r.local_bound, 6));
    row.push_back(
        analysis::Table::integer(static_cast<long long>(r.messages)));
    for (const auto& [name, value] : r.metrics) {
      row.push_back(analysis::Table::num(value, 6));
    }
    csv.row(row);
  }
}

void JsonSink::write(std::ostream& os,
                     const std::vector<RunResult>& results) const {
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    os << "  {";
    for (const auto& [key, value] : r.labels) {
      os << "\"" << json_escape(key) << "\": \"" << json_escape(value)
         << "\", ";
    }
    os << "\"seed\": " << r.seed << ", \"ok\": " << (r.ok ? "true" : "false");
    if (r.ok) {
      os << ", \"diameter\": " << r.diameter
         << ", \"global_skew\": " << json_number(r.global_skew)
         << ", \"local_skew\": " << json_number(r.local_skew)
         << ", \"global_bound\": " << json_number(r.global_bound)
         << ", \"local_bound\": " << json_number(r.local_bound)
         << ", \"envelope_violation\": " << json_number(r.envelope_violation)
         << ", \"broadcasts\": " << r.broadcasts
         << ", \"messages\": " << r.messages
         << ", \"duration\": " << json_number(r.duration);
      os << ", \"metrics\": {";
      for (std::size_t m = 0; m < r.metrics.size(); ++m) {
        os << (m == 0 ? "" : ", ") << "\"" << json_escape(r.metrics[m].first)
           << "\": " << json_number(r.metrics[m].second);
      }
      os << "}";
    } else {
      os << ", \"error\": \"" << json_escape(r.error) << "\"";
    }
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace tbcs::exec
