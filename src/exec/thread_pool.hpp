// Fixed-size worker pool for CPU-bound simulation runs.
//
// submit() hands back a future carrying the task's result-or-exception;
// parallel_for() fans an index range out over the workers and rethrows
// the first failure (lowest index), so callers see deterministic error
// reporting.  The destructor drains every queued task before joining —
// a pool going out of scope never abandons submitted work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tbcs::exec {

class ThreadPool {
 public:
  /// Spawns `threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues fn; the future rethrows anything fn throws.  Throws if the
  /// pool is already shutting down.
  std::future<void> submit(std::function<void()> fn);

  /// Runs fn(0) .. fn(n-1) across the workers and blocks until all have
  /// finished.  If any call threw, rethrows the lowest-index exception
  /// after every task has completed.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(submit([&fn, i] { fn(i); }));
    }
    std::exception_ptr first;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace tbcs::exec
