#include "exec/thread_pool.hpp"

#include <stdexcept>

namespace tbcs::exec {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and everything is drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace tbcs::exec
