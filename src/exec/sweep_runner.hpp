// Parallel, deterministic experiment execution.
//
// SweepRunner takes a list of RunSpecs, runs each on its own Simulator
// instance on a worker thread, and returns results indexed by submission
// order.  Determinism contract: the result vector (values, order, derived
// seeds) is a pure function of (specs, base_seed) — the number of worker
// threads only changes wall-clock time.
//
// make_grid_specs() expands the 1-D/2-D × replicas sweep grids used by
// tbcs_sweep; apply_sweep_param() maps a sweepable parameter name onto an
// ExperimentConfig field.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/run_spec.hpp"

namespace tbcs::exec {

struct SweepOptions {
  /// Worker threads (clamped to >= 1).  Does not affect results.
  int jobs = 1;

  /// Root of the per-run seed derivation (see derive_seed()).
  std::uint64_t base_seed = 1;

  /// Forwarded to SkewTracker::Options::audit_epsilon (<= 0 disables).
  double audit_epsilon = 0.0;

  /// Tracker sampling stride (1 = exact maxima).
  std::uint64_t tracker_stride = 1;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opt = {}) : opt_(opt) {}

  /// Runs every spec; out[i] is spec i's result.  Build/run failures are
  /// recorded per-run (ok = false, error), never thrown.
  std::vector<RunResult> run(const std::vector<RunSpec>& specs) const;

  /// Runs one spec synchronously with the derived seed for `index`.
  static RunResult run_one(const RunSpec& spec, std::size_t index,
                           const SweepOptions& opt);

 private:
  SweepOptions opt_;
};

/// Parses a comma-separated list of numbers ("8,16,32").
std::vector<double> parse_values(const std::string& csv);

/// Sets one sweepable parameter on cfg.  Parameters: diameter (sets
/// nodes = value + 1; the topology is left untouched), nodes, eps, mu,
/// h0, delay, duration.  Throws cli::ConfigError on anything else.
void apply_sweep_param(cli::ExperimentConfig& cfg, const std::string& param,
                       double value);

struct SweepAxis {
  std::string param;
  std::vector<double> values;
};

/// Expands axis1 × (axis2 or nothing) × replicas into RunSpecs, in
/// row-major order (axis1 outermost, replica innermost).  Labels carry
/// the swept values plus a 0-based "replica" column.
std::vector<RunSpec> make_grid_specs(const cli::ExperimentConfig& base,
                                     const SweepAxis& axis1,
                                     const SweepAxis* axis2, int replicas);

}  // namespace tbcs::exec
