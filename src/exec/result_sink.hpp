// Order-stable result output for sweep runs.
//
// Both sinks emit results in submission-index order with fixed-precision
// number formatting, so the bytes written depend only on the results —
// never on worker scheduling.  Failed runs (ok == false) are skipped by
// the CSV sink (the row would have no meaningful metric cells) and
// emitted with their error string by the JSON sink.
#pragma once

#include <iosfwd>
#include <vector>

#include "exec/run_spec.hpp"

namespace tbcs::exec {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void write(std::ostream& os,
                     const std::vector<RunResult>& results) const = 0;
};

/// Header = label columns + seed + metric columns; one row per ok run.
class CsvSink : public ResultSink {
 public:
  void write(std::ostream& os,
             const std::vector<RunResult>& results) const override;
};

/// A JSON array of run objects (labels as strings, metrics as numbers).
class JsonSink : public ResultSink {
 public:
  void write(std::ostream& os,
             const std::vector<RunResult>& results) const override;
};

}  // namespace tbcs::exec
