#include "exec/sweep_runner.hpp"

#include <cstdio>
#include <sstream>

#include <cmath>

#include "analysis/skew_tracker.hpp"
#include "analysis/table.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_scheduler.hpp"
#include "obs/metrics.hpp"

namespace tbcs::exec {

std::vector<RunResult> SweepRunner::run(
    const std::vector<RunSpec>& specs) const {
  std::vector<RunResult> out(specs.size());
  ThreadPool pool(opt_.jobs);
  pool.parallel_for(specs.size(), [this, &specs, &out](std::size_t i) {
    out[i] = run_one(specs[i], i, opt_);
  });
  // Registry timelines for stair sweeps: per-run skew rollups through the
  // bounded backend.  Recorded serially AFTER the parallel loop, in index
  // order, so the stores' contents (a pure function of the append
  // sequence) are byte-identical at every --jobs setting.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!out[i].ok) continue;
    const obs::HistoryConfig hcfg = cli::resolve_history(specs[i].config);
    if (hcfg.backend != obs::HistoryConfig::Backend::kStair) continue;
    auto& reg = obs::MetricsRegistry::global();
    if (!reg.timelines_enabled()) reg.enable_timelines(hcfg);
    const double t = static_cast<double>(i);
    reg.record_timeline("sweep.global_skew", t, out[i].global_skew);
    reg.record_timeline("sweep.local_skew", t, out[i].local_skew);
  }
  return out;
}

RunResult SweepRunner::run_one(const RunSpec& spec, std::size_t index,
                               const SweepOptions& opt) {
  RunResult r;
  r.index = index;
  r.labels = spec.labels;
  r.seed = derive_seed(opt.base_seed, index);
  try {
    cli::ExperimentConfig cfg = spec.config;
    cfg.seed = r.seed;

    auto built = cli::build_experiment(cfg);
    r.diameter = built.graph->diameter();
    r.global_bound =
        built.params.global_skew_bound(r.diameter, cfg.eps, cfg.delay);
    r.local_bound =
        built.params.local_skew_bound(r.diameter, cfg.eps, cfg.delay);

    analysis::SkewTracker::Options topt;
    topt.audit_epsilon = opt.audit_epsilon;
    topt.stride = opt.tracker_stride;
    const obs::HistoryConfig hcfg = cli::resolve_history(cfg);
    const bool stair = hcfg.backend == obs::HistoryConfig::Backend::kStair;
    topt.history = hcfg;
    if (stair) {
      // Grid-sample on the probe grid (armed every cfg.delay by
      // build_experiment) so the sketch is a pure function of the spec —
      // byte-identical across --jobs and --shards.  Strided sampling is
      // superseded by the grid.
      topt.stride = 1;
      topt.sample_grid = cfg.delay;
      topt.error_rate_span =
          (1.0 + cfg.eps) * (1.0 + built.params.mu) - (1.0 - cfg.eps);
    }
    const bool faulty = !built.timeline.empty();
    if (faulty) {
      topt.recovery_global_bound = r.global_bound;
      topt.recovery_local_bound = r.local_bound;
      // Classify on the probe grid (armed every cfg.delay by
      // build_experiment): recovery/stabilization metrics then match the
      // serial engine byte-for-byte under --shards.
      topt.recovery_classify_interval = cfg.delay;
      // Correct-subgraph figures only: liars are not part of the guarantee.
      for (const fault::ByzantineSpec& s : built.timeline.byzantine) {
        topt.exclude.push_back(s.node);
      }
    }
    analysis::SkewTracker tracker(*built.simulator, topt);
    tracker.attach_auto(*built.simulator);
    fault::FaultScheduler faults(built.timeline);
    if (faulty) {
      faults.set_listener([&tracker](const fault::FaultEvent& e, double t) {
        if (e.kind == fault::FaultKind::kScramble) {
          tracker.note_scramble(t);
        } else {
          tracker.note_fault(t);
        }
      });
      faults.run(*built.simulator, cfg.duration);
    } else {
      built.simulator->run_until(cfg.duration);
    }

    r.global_skew = tracker.max_global_skew();
    r.local_skew = tracker.max_local_skew();
    r.envelope_violation = tracker.max_envelope_violation();
    r.broadcasts = built.simulator->broadcasts();
    r.messages = built.simulator->messages_delivered();
    r.duration = built.simulator->now();

    // Per-run observability snapshot for the sinks.  Deterministic
    // quantities only — rows must not depend on scheduling or wall time.
    const sim::Simulator& sim = *built.simulator;
    const sim::EventQueue::Stats& qs = sim.queue_stats();
    r.metrics = {
        {"events", static_cast<double>(sim.events_processed())},
        {"messages_dropped", static_cast<double>(sim.messages_dropped())},
        {"queue_peak", static_cast<double>(qs.peak_size)},
        {"queue_pushes", static_cast<double>(qs.pushes)},
        {"queue_pops", static_cast<double>(qs.pops)},
        {"timer_cancels", static_cast<double>(sim.timer_cancels())},
    };
    if (stair) {
      // Extra telemetry columns ride along only on non-default backends,
      // so existing exact-mode CSV/JSON bytes are untouched.
      r.metrics.emplace_back("skew_error_bound", tracker.skew_error_bound());
      r.metrics.emplace_back(
          "obs_history_bytes",
          static_cast<double>(tracker.history_memory_bytes()));
      r.metrics.emplace_back(
          "obs_history_windows",
          static_cast<double>(tracker.global_history().windows().size() +
                              tracker.local_history().windows().size()));
    }
    if (faulty) {
      const double rec = tracker.recovery_time();
      r.metrics.emplace_back("faults_applied",
                             static_cast<double>(faults.applied()));
      r.metrics.emplace_back("crashes", static_cast<double>(sim.crashes()));
      r.metrics.emplace_back("recoveries",
                             static_cast<double>(sim.recoveries()));
      // -1 = never re-entered the bounds (NaN would poison CSV parsing).
      r.metrics.emplace_back("recovery_time", std::isnan(rec) ? -1.0 : rec);
      if (sim.scrambles() > 0) {
        const double stab = tracker.stabilization_time();
        r.metrics.emplace_back("scrambles",
                               static_cast<double>(sim.scrambles()));
        r.metrics.emplace_back("stabilization_time",
                               std::isnan(stab) ? -1.0 : stab);
      }
    }
    r.ok = true;

    // Process-wide rollups: worker threads write their own registry
    // shards, so these cost nothing to the parallelism of the sweep.
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("sweep.runs_ok").inc();
    reg.counter("sweep.events").inc(sim.events_processed());
    reg.counter("sweep.messages").inc(sim.messages_delivered());
    reg.histogram("sweep.global_skew").observe(r.global_skew);
    reg.histogram("sweep.local_skew").observe(r.local_skew);
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
    obs::MetricsRegistry::global().counter("sweep.runs_failed").inc();
  }
  return r;
}

namespace {

// Label values use shortest-form %g (eps 0.01 -> "0.01", diameter 8 ->
// "8") so sweep coordinates stay readable in CSV headers and filenames.
std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::vector<double> parse_values(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

void apply_sweep_param(cli::ExperimentConfig& cfg, const std::string& param,
                       double value) {
  if (param == "diameter") {
    cfg.nodes = static_cast<int>(value) + 1;
  } else if (param == "nodes") {
    cfg.nodes = static_cast<int>(value);
  } else if (param == "eps") {
    cfg.eps = value;
  } else if (param == "mu") {
    cfg.mu = value;
  } else if (param == "h0") {
    cfg.h0 = value;
  } else if (param == "delay") {
    cfg.delay = value;
  } else if (param == "duration") {
    cfg.duration = value;
  } else {
    throw cli::ConfigError("unknown sweep parameter '" + param + "'");
  }
}

std::vector<RunSpec> make_grid_specs(const cli::ExperimentConfig& base,
                                     const SweepAxis& axis1,
                                     const SweepAxis* axis2, int replicas) {
  if (replicas < 1) replicas = 1;
  std::vector<RunSpec> specs;
  const std::size_t inner = axis2 ? axis2->values.size() : 1;
  specs.reserve(axis1.values.size() * inner *
                static_cast<std::size_t>(replicas));
  for (const double v1 : axis1.values) {
    for (std::size_t j = 0; j < inner; ++j) {
      for (int rep = 0; rep < replicas; ++rep) {
        RunSpec spec;
        spec.config = base;
        apply_sweep_param(spec.config, axis1.param, v1);
        spec.labels.emplace_back(axis1.param, format_value(v1));
        if (axis2) {
          apply_sweep_param(spec.config, axis2->param, axis2->values[j]);
          spec.labels.emplace_back(axis2->param,
                                   format_value(axis2->values[j]));
        }
        spec.labels.emplace_back("replica", std::to_string(rep));
        specs.push_back(std::move(spec));
      }
    }
  }
  return specs;
}

}  // namespace tbcs::exec
