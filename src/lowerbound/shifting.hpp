// Execution-shifting utilities (Section 7, Definitions 7.1/7.4/7.5).
//
// The lower-bound adversaries construct executions whose hardware clocks
// follow known piecewise-constant rate schedules and whose message delays
// are pinned to hardware-clock targets ("deliver when the receiver's
// clock shows X").  PiecewiseRate evaluates and inverts such schedules in
// closed form, which is what makes the pinning computable.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/delay_policy.hpp"
#include "sim/drift_policy.hpp"
#include "sim/types.hpp"

namespace tbcs::lowerbound {

/// A clock trajectory H(t) = integral of a piecewise-constant positive
/// rate, anchored at H(0) = 0.
class PiecewiseRate {
 public:
  /// steps: (time, rate) breakpoints; the first must be at t = 0.
  explicit PiecewiseRate(std::vector<sim::RateStep> steps);

  double rate_at(sim::RealTime t) const;
  double value_at(sim::RealTime t) const;

  /// The unique t with value_at(t) == target (rates are positive).
  sim::RealTime time_when(double target) const;

  const std::vector<sim::RateStep>& steps() const { return steps_; }

 private:
  std::vector<sim::RateStep> steps_;
  std::vector<double> cum_;  // value_at(steps_[i].at)
};

/// The single-node shift of Lemma 7.10, executable.
///
/// Base execution E: all hardware rates 1, message delays given by an
/// arbitrary per-edge function gamma(u, w) with values in
/// [phi T, (1-phi) T] (a phi-framed execution).  The shifted execution
/// E-bar lowers node v's rate to 1 - rate_drop during [0, shift/rate_drop]
/// and pins every delay so each message still arrives at the *same
/// receiver hardware reading* as in E.  By Definition 7.1 the two
/// executions are indistinguishable at every node; the lemma's conclusion
///   L_v^Ebar(t) = L_v^E(t')  where  H_v^E(t') = H_v^Ebar(t),
///   L_u^Ebar(t) = L_u^E(t)   for every u != v,
/// is checked *numerically* against the real algorithm by the tests.
///
/// This is the tool with which Theorem 7.12 punishes algorithms that use
/// large clock rates: the adversary can retroactively steal phi T of
/// hardware time from any single node without anyone noticing.
class SingleNodeShift {
 public:
  struct Config {
    sim::NodeId node = 0;     // v, the node being shifted
    double shift = 0.1;       // hardware time stolen from v (<= phi T)
    double rate_drop = 0.05;  // v runs at 1 - rate_drop during the window
    double delay = 1.0;       // T, for the legality clamp
  };
  using GammaFn = std::function<double(sim::NodeId, sim::NodeId)>;

  SingleNodeShift(Config cfg, GammaFn gamma);

  /// Policies realizing the base execution E.
  std::shared_ptr<sim::DriftPolicy> base_drift_policy() const;
  std::shared_ptr<sim::DelayPolicy> base_delay_policy() const;

  /// Policies realizing the shifted execution E-bar.
  std::shared_ptr<sim::DriftPolicy> shifted_drift_policy() const;
  std::shared_ptr<sim::DelayPolicy> shifted_delay_policy() const;

  /// Real time at which v's rate returns to 1 (= shift / rate_drop).
  sim::RealTime window_end() const { return cfg_.shift / cfg_.rate_drop; }

  const Config& config() const { return cfg_; }

 private:
  /// H_u^Ebar(t) - H_u^E(t); 0 for u != v, -shift-capped for v.
  double shift_of(sim::NodeId u, sim::RealTime t) const;
  /// Solves t + shift_of(u, t) == target.
  sim::RealTime invert(sim::NodeId u, double target) const;

  Config cfg_;
  GammaFn gamma_;
};

}  // namespace tbcs::lowerbound
