#include "lowerbound/local_adversary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace tbcs::lowerbound {

LocalSkewConstruction::LocalSkewConstruction(sim::Simulator& sim, Config cfg)
    : sim_(sim), cfg_(cfg), n_(sim.num_nodes()) {
  assert(n_ >= 2);
  assert(cfg_.eps > 0.0 && cfg_.eps < 1.0);
  assert(cfg_.phi >= 0.0 && cfg_.phi <= 0.5 / (1.0 + cfg_.eps));
  // Sanity: the topology must be the path 0-1-...-(n-1).
  assert(sim.topology().num_edges() == static_cast<std::size_t>(n_ - 1));
  for (int i = 0; i + 1 < n_; ++i) {
    assert(sim.topology().has_edge(i, i + 1));
  }
  win_.rate.assign(static_cast<std::size_t>(n_), 1.0);
  win_.ahead = 0;
  win_.behind = n_ - 1;
}

double LocalSkewConstruction::phi_of(int u) const {
  return std::abs(u - win_.behind) - std::abs(u - win_.ahead);
}

double LocalSkewConstruction::gamma(int from, int to) const {
  const double fast = (1.0 + cfg_.eps) * cfg_.phi * cfg_.delay;
  const double slow = cfg_.delay - fast;
  return phi_of(from) >= phi_of(to) ? fast : slow;
}

double LocalSkewConstruction::shift(int u, sim::RealTime t) const {
  const double span =
      std::clamp(t, win_.t_start, win_.t_end) - win_.t_start;
  return (win_.rate[static_cast<std::size_t>(u)] - 1.0) * std::max(0.0, span);
}

sim::RealTime LocalSkewConstruction::invert_progress(int u,
                                                     double target) const {
  // Solve t + shift(u, t) == target for t.
  const double r = win_.rate[static_cast<std::size_t>(u)];
  if (r == 1.0 || target <= win_.t_start) return target;
  const double at_end = win_.t_end + (r - 1.0) * (win_.t_end - win_.t_start);
  if (target <= at_end) {
    return (target + (r - 1.0) * win_.t_start) / r;
  }
  return target - (r - 1.0) * (win_.t_end - win_.t_start);
}

std::shared_ptr<sim::DelayPolicy> LocalSkewConstruction::delay_policy() {
  return std::make_shared<sim::CallbackDelay>(
      [this](sim::NodeId from, sim::NodeId to, sim::RealTime t_send,
             const sim::Simulator&) {
        const double target = t_send + shift(from, t_send) + gamma(from, to);
        sim::RealTime t_recv = invert_progress(to, target);
        // The lemma guarantees delays within [phi T, (1-phi) T]; clamp
        // against floating-point fringe so the execution stays legal.
        t_recv = std::clamp(t_recv, t_send, t_send + cfg_.delay);
        return t_recv;
      });
}

void LocalSkewConstruction::start_window(int ahead, int behind,
                                         sim::RealTime duration) {
  win_.active = true;
  win_.t_start = sim_.now();
  win_.t_end = sim_.now() + duration;
  win_.ahead = ahead;
  win_.behind = behind;
  const double d = std::abs(ahead - behind);
  const double phi_ahead = phi_of(ahead);  // == d
  for (int u = 0; u < n_; ++u) {
    const double ramp =
        1.0 + cfg_.eps - (phi_ahead - phi_of(u)) * cfg_.eps / (2.0 * d);
    const double r = std::clamp(ramp, 1.0, 1.0 + cfg_.eps);
    win_.rate[static_cast<std::size_t>(u)] = r;
    sim_.schedule_rate_change(u, win_.t_start, r);
    sim_.schedule_rate_change(u, win_.t_end, 1.0);
  }
}

void LocalSkewConstruction::run_window(int ahead, int behind,
                                       sim::RealTime duration) {
  start_window(ahead, behind, duration);
  sim_.run_until(win_.t_end);
}

std::pair<int, int> LocalSkewConstruction::pick_segment(int lo, int hi,
                                                        int sub_length) const {
  int best_lo = lo;
  double best = -1.0;
  for (int i = lo; i + sub_length <= hi; ++i) {
    const double skew =
        std::abs(sim_.logical(i) - sim_.logical(i + sub_length));
    if (skew > best) {
      best = skew;
      best_lo = i;
    }
  }
  return {best_lo, best_lo + sub_length};
}

std::vector<LocalSkewConstruction::Level> LocalSkewConstruction::run(int b) {
  assert(b >= 2);
  std::vector<Level> out;
  // Drain the (zero-time) initialization and let first estimates arrive.
  sim_.run_until(cfg_.settle * cfg_.delay);

  int lo = 0;
  int hi = n_ - 1;
  for (int k = 0;; ++k) {
    const int d = hi - lo;
    const bool lo_ahead = sim_.logical(lo) >= sim_.logical(hi);
    const int ahead = lo_ahead ? lo : hi;
    const int behind = lo_ahead ? hi : lo;
    const double window = (1.0 - 2.0 * (1.0 + cfg_.eps) * cfg_.phi) * d *
                          cfg_.delay / cfg_.eps;
    run_window(ahead, behind, window);

    Level lv;
    lv.k = k;
    lv.lo = lo;
    lv.hi = hi;
    lv.length = d;
    lv.window = window;
    lv.skew = std::abs(sim_.logical(lo) - sim_.logical(hi));
    lv.per_edge = lv.skew / d;
    out.push_back(lv);

    if (d <= 1) break;
    // Settle: drain in-flight messages before re-orienting.
    sim_.run_until(sim_.now() + cfg_.settle * cfg_.delay);
    const int sub = std::max(1, d / b);
    std::tie(lo, hi) = pick_segment(lo, hi, sub);
  }
  return out;
}

}  // namespace tbcs::lowerbound
