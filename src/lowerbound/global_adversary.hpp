// The global-skew lower-bound adversary of Theorem 7.2.
//
// Three mutually indistinguishable executions are constructed:
//   E1: all rates 1 - eps'; delays T' toward v0, 0 otherwise.
//   E2: all rates 1 + eps'; delays (1-eps') T' / (1+eps') toward v0.
//   E3: node v runs at 1 + rho + (1 - d(v0,v)/D) * eps_tilde until
//       t0 = (1 + rho) D T / eps_tilde, then at 1 + rho; every message is
//       delivered exactly when the receiver's hardware clock shows the
//       sender's send-time reading plus (1-eps') T' (toward v0) or plus 0
//       (away / same distance).
//
// Any algorithm bound to the real-time envelope (Condition 1) must keep
// L = H in E1/E2 and hence also in E3 — where the hardware clocks drift
// apart by (1 + rho) D T.  Running A^opt (or any baseline) under the E3
// policies therefore exhibits a global skew of ~(1 + rho) D T, matching
// the theorem's bound.
//
// rho = min(eps, (1 - c2 eps_hat)/c1 - 1) where the algorithm only knows
// T in [c1 T_hat, T_hat] and eps in [c2 eps_hat, eps_hat].  The paper's
// eps_tilde is infinitesimal; we use a finite one and shave rho so all
// rates stay within [1 - eps, 1 + eps] (the measured skew approaches the
// bound as eps_tilde -> 0).
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "lowerbound/shifting.hpp"
#include "sim/delay_policy.hpp"
#include "sim/drift_policy.hpp"

namespace tbcs::lowerbound {

class GlobalSkewAdversary {
 public:
  struct Config {
    double eps = 0.05;        // true maximum drift of the execution
    double delay = 1.0;       // true delay uncertainty T
    double c1 = 1.0;          // T = c1 * T_hat (estimate accuracy)
    double c2 = 1.0;          // eps' = c2 * eps_hat
    double eps_hat = 0.05;    // the bound the algorithm was given
    double eps_tilde = 0.0;   // 0: auto-select eps/4 (shaving rho if needed)
  };

  GlobalSkewAdversary(const graph::Graph& g, graph::NodeId v0, Config cfg);

  /// Policies realizing execution E3.
  std::shared_ptr<sim::DriftPolicy> drift_policy() const;
  std::shared_ptr<sim::DelayPolicy> delay_policy() const;

  /// Policies realizing execution E1 (for indistinguishability tests).
  std::shared_ptr<sim::DriftPolicy> e1_drift_policy() const;
  std::shared_ptr<sim::DelayPolicy> e1_delay_policy() const;

  /// Policies realizing execution E2 (all rates 1 + eps', delays
  /// compressed by (1-eps')/(1+eps') so local-time patterns match E1).
  std::shared_ptr<sim::DriftPolicy> e2_drift_policy() const;
  std::shared_ptr<sim::DelayPolicy> e2_delay_policy() const;

  /// Real time at which node v's hardware clock shows `h` in E1 / E2 / E3
  /// (used by the indistinguishability tests to compare the executions at
  /// equal local times).
  sim::RealTime e1_time_at_hardware(graph::NodeId v, double h) const;
  sim::RealTime e2_time_at_hardware(graph::NodeId v, double h) const;
  sim::RealTime e3_time_at_hardware(graph::NodeId v, double h) const;

  /// The time by which the full skew has been built up.
  sim::RealTime t0() const { return t0_; }

  /// (1 + rho_eff) D T: the skew E3 forces between v0 and the farthest node.
  double predicted_skew() const;

  double rho() const { return rho_; }
  double rho_effective() const { return rho_eff_; }
  int diameter_used() const { return max_dist_; }

 private:
  double rate_before_t0(graph::NodeId v) const;
  const PiecewiseRate& trajectory(graph::NodeId v) const {
    return trajectories_[static_cast<std::size_t>(v)];
  }

  Config cfg_;
  std::vector<int> dist_;   // d(v0, v)
  int max_dist_ = 0;        // D
  double rho_ = 0.0;        // theoretical rho
  double rho_eff_ = 0.0;    // rho shaved so rates stay legal
  double eps_tilde_ = 0.0;
  double hop_gap_ = 0.0;    // (1 + rho_eff) T: per-hop hardware-time pin
  sim::RealTime t0_ = 0.0;
  std::vector<PiecewiseRate> trajectories_;
};

}  // namespace tbcs::lowerbound
