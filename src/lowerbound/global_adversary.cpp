#include "lowerbound/global_adversary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/simulator.hpp"

namespace tbcs::lowerbound {

GlobalSkewAdversary::GlobalSkewAdversary(const graph::Graph& g,
                                         graph::NodeId v0, Config cfg)
    : cfg_(cfg), dist_(g.bfs_distances(v0)) {
  assert(cfg_.eps > 0.0 && cfg_.eps < 1.0);
  assert(cfg_.c1 > 0.0 && cfg_.c1 <= 1.0);
  assert(cfg_.c2 > 0.0 && cfg_.c2 <= 1.0);
  for (const int d : dist_) {
    assert(d >= 0 && "graph must be connected");
    max_dist_ = std::max(max_dist_, d);
  }
  assert(max_dist_ >= 1);

  const double eps_prime = cfg_.c2 * cfg_.eps_hat;
  rho_ = std::min(cfg_.eps, (1.0 - eps_prime) / cfg_.c1 - 1.0);

  // Finite stand-in for the paper's infinitesimal eps_tilde: rates
  // 1 + rho_eff + (1 - d/D) eps_tilde must stay within [1-eps, 1+eps].
  eps_tilde_ = cfg_.eps_tilde > 0.0 ? cfg_.eps_tilde : cfg_.eps / 4.0;
  rho_eff_ = std::min(rho_, cfg_.eps - eps_tilde_);
  assert(rho_eff_ > -1.0);
  assert(1.0 + rho_eff_ >= 1.0 - cfg_.eps - 1e-12);

  hop_gap_ = (1.0 + rho_eff_) * cfg_.delay;
  t0_ = (1.0 + rho_eff_) * max_dist_ * cfg_.delay / eps_tilde_;

  trajectories_.reserve(dist_.size());
  for (std::size_t v = 0; v < dist_.size(); ++v) {
    std::vector<sim::RateStep> steps;
    steps.push_back({0.0, rate_before_t0(static_cast<graph::NodeId>(v))});
    steps.push_back({t0_, 1.0 + rho_eff_});
    trajectories_.emplace_back(std::move(steps));
  }
}

double GlobalSkewAdversary::rate_before_t0(graph::NodeId v) const {
  const double frac =
      1.0 - static_cast<double>(dist_[static_cast<std::size_t>(v)]) / max_dist_;
  return 1.0 + rho_eff_ + frac * eps_tilde_;
}

double GlobalSkewAdversary::predicted_skew() const {
  return (1.0 + rho_eff_) * max_dist_ * cfg_.delay;
}

std::shared_ptr<sim::DriftPolicy> GlobalSkewAdversary::drift_policy() const {
  std::vector<std::vector<sim::RateStep>> steps;
  steps.reserve(trajectories_.size());
  for (const auto& traj : trajectories_) steps.push_back(traj.steps());
  return std::make_shared<sim::ScheduledDrift>(std::move(steps));
}

std::shared_ptr<sim::DelayPolicy> GlobalSkewAdversary::delay_policy() const {
  // Deliver when the receiver's hardware clock shows the sender's
  // send-time reading, plus hop_gap_ if the message moves toward v0.
  return std::make_shared<sim::CallbackDelay>(
      [this](sim::NodeId from, sim::NodeId to, sim::RealTime t_send,
             const sim::Simulator&) {
        const double h_from = trajectory(from).value_at(t_send);
        const bool toward_v0 = dist_[static_cast<std::size_t>(to)] ==
                               dist_[static_cast<std::size_t>(from)] - 1;
        const double target = h_from + (toward_v0 ? hop_gap_ : 0.0);
        const sim::RealTime t_recv = trajectory(to).time_when(target);
        assert(t_recv >= t_send - 1e-9);
        assert(t_recv - t_send <= cfg_.delay + 1e-6 && "delay left [0, T]");
        return std::max(t_recv, t_send);
      });
}

std::shared_ptr<sim::DriftPolicy> GlobalSkewAdversary::e1_drift_policy() const {
  return std::make_shared<sim::ConstantDrift>(1.0 - cfg_.c2 * cfg_.eps_hat);
}

std::shared_ptr<sim::DelayPolicy> GlobalSkewAdversary::e1_delay_policy() const {
  const double eps_prime = cfg_.c2 * cfg_.eps_hat;
  const double t_prime = hop_gap_ / (1.0 - eps_prime);
  return std::make_shared<sim::DirectionalDelay>(
      [this](sim::NodeId from, sim::NodeId to) {
        return dist_[static_cast<std::size_t>(to)] !=
               dist_[static_cast<std::size_t>(from)] - 1;
      },
      /*fast=*/0.0, /*slow=*/t_prime);
}

std::shared_ptr<sim::DriftPolicy> GlobalSkewAdversary::e2_drift_policy() const {
  return std::make_shared<sim::ConstantDrift>(1.0 + cfg_.c2 * cfg_.eps_hat);
}

std::shared_ptr<sim::DelayPolicy> GlobalSkewAdversary::e2_delay_policy() const {
  const double eps_prime = cfg_.c2 * cfg_.eps_hat;
  // E1's slow-direction delay T' compressed by (1-eps')/(1+eps'): every
  // message arrives after the same *hardware* progress as in E1.
  const double delay = hop_gap_ / (1.0 + eps_prime);
  return std::make_shared<sim::DirectionalDelay>(
      [this](sim::NodeId from, sim::NodeId to) {
        return dist_[static_cast<std::size_t>(to)] !=
               dist_[static_cast<std::size_t>(from)] - 1;
      },
      /*fast=*/0.0, /*slow=*/delay);
}

sim::RealTime GlobalSkewAdversary::e1_time_at_hardware(graph::NodeId,
                                                       double h) const {
  return h / (1.0 - cfg_.c2 * cfg_.eps_hat);
}

sim::RealTime GlobalSkewAdversary::e2_time_at_hardware(graph::NodeId,
                                                       double h) const {
  return h / (1.0 + cfg_.c2 * cfg_.eps_hat);
}

sim::RealTime GlobalSkewAdversary::e3_time_at_hardware(graph::NodeId v,
                                                       double h) const {
  return trajectory(v).time_when(h);
}

}  // namespace tbcs::lowerbound
