#include "lowerbound/shifting.hpp"

#include <algorithm>
#include <cassert>

#include "sim/simulator.hpp"

namespace tbcs::lowerbound {

PiecewiseRate::PiecewiseRate(std::vector<sim::RateStep> steps)
    : steps_(std::move(steps)) {
  assert(!steps_.empty());
  assert(steps_.front().at == 0.0);
  cum_.resize(steps_.size());
  cum_[0] = 0.0;
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    assert(steps_[i].at >= steps_[i - 1].at);
    assert(steps_[i - 1].rate > 0.0);
    cum_[i] = cum_[i - 1] + steps_[i - 1].rate * (steps_[i].at - steps_[i - 1].at);
  }
  assert(steps_.back().rate > 0.0);
}

double PiecewiseRate::rate_at(sim::RealTime t) const {
  // Last breakpoint at or before t.
  std::size_t i = steps_.size() - 1;
  while (i > 0 && steps_[i].at > t) --i;
  return steps_[i].rate;
}

double PiecewiseRate::value_at(sim::RealTime t) const {
  assert(t >= 0.0);
  std::size_t i = steps_.size() - 1;
  while (i > 0 && steps_[i].at > t) --i;
  return cum_[i] + steps_[i].rate * (t - steps_[i].at);
}

sim::RealTime PiecewiseRate::time_when(double target) const {
  assert(target >= 0.0);
  std::size_t i = steps_.size() - 1;
  while (i > 0 && cum_[i] > target) --i;
  return steps_[i].at + (target - cum_[i]) / steps_[i].rate;
}

// ---- SingleNodeShift ---------------------------------------------------------

SingleNodeShift::SingleNodeShift(Config cfg, GammaFn gamma)
    : cfg_(cfg), gamma_(std::move(gamma)) {
  assert(cfg_.shift > 0.0);
  assert(cfg_.rate_drop > 0.0 && cfg_.rate_drop < 1.0);
}

std::shared_ptr<sim::DriftPolicy> SingleNodeShift::base_drift_policy() const {
  return std::make_shared<sim::ConstantDrift>(1.0);
}

std::shared_ptr<sim::DelayPolicy> SingleNodeShift::base_delay_policy() const {
  const GammaFn gamma = gamma_;
  return std::make_shared<sim::CallbackDelay>(
      [gamma](sim::NodeId from, sim::NodeId to, sim::RealTime t_send,
              const sim::Simulator&) { return t_send + gamma(from, to); });
}

std::shared_ptr<sim::DriftPolicy> SingleNodeShift::shifted_drift_policy() const {
  // v runs at 1 - rate_drop until window_end(), then back to 1; everyone
  // else at rate 1 throughout.
  struct PaddedDrift final : public sim::DriftPolicy {
    explicit PaddedDrift(SingleNodeShift::Config cfg) : cfg_(cfg) {}
    double initial_rate(sim::NodeId v) override {
      return v == cfg_.node ? 1.0 - cfg_.rate_drop : 1.0;
    }
    std::optional<sim::RateStep> next_change(sim::NodeId v,
                                             sim::RealTime now) override {
      if (v != cfg_.node || now >= cfg_.shift / cfg_.rate_drop) {
        return std::nullopt;
      }
      return sim::RateStep{cfg_.shift / cfg_.rate_drop, 1.0};
    }
    SingleNodeShift::Config cfg_;
  };
  return std::make_shared<PaddedDrift>(cfg_);
}

double SingleNodeShift::shift_of(sim::NodeId u, sim::RealTime t) const {
  if (u != cfg_.node) return 0.0;
  return -cfg_.rate_drop * std::min(t, window_end());
}

sim::RealTime SingleNodeShift::invert(sim::NodeId u, double target) const {
  if (u != cfg_.node) return target;
  // G(t) = t - rate_drop * min(t, window_end()) is strictly increasing.
  const double at_end = (1.0 - cfg_.rate_drop) * window_end();
  if (target <= at_end) return target / (1.0 - cfg_.rate_drop);
  return target + cfg_.rate_drop * window_end();
}

std::shared_ptr<sim::DelayPolicy> SingleNodeShift::shifted_delay_policy() const {
  return std::make_shared<sim::CallbackDelay>(
      [this](sim::NodeId from, sim::NodeId to, sim::RealTime t_send,
             const sim::Simulator&) {
        // Same receiver hardware reading as in E: receiver progress must
        // equal sender progress at send plus gamma.
        const double target =
            t_send + shift_of(from, t_send) + gamma_(from, to);
        sim::RealTime t_recv = invert(to, target);
        // Lemma 7.10: delays move by at most `shift`; clamp fp fringe.
        t_recv = std::clamp(t_recv, t_send, t_send + cfg_.delay);
        return t_recv;
      });
}

}  // namespace tbcs::lowerbound
