// The local-skew lower-bound construction of Lemma 7.6 / Theorem 7.7.
//
// Level structure: starting from the full path, the adversary repeatedly
//   (1) picks the contiguous subsegment of the current segment whose
//       endpoint skew is largest (the proof's (v_{k+1}, w_{k+1})),
//   (2) runs a "shift window" — the phi-framed execution E-bar of Lemma
//       7.6: the ahead endpoint's side speeds up along the ramp
//          h_u = clamp(1+eps - (Phi(v') - Phi(u)) eps / (2 d(v',w')), 1, 1+eps),
//          Phi(u) = d(w',u) - d(v',u),
//       for the window (1 - 2(1+eps)phi) d(v',w') T / eps, while message
//       delays are pinned so each message arrives when the receiver's
//       hardware progress since window start equals the sender's progress
//       at send time plus the nominal per-edge gap
//          gamma = (1+eps) phi T   (messages with Phi(u_s) >= Phi(u_r))
//          gamma = (1-(1+eps)phi) T (otherwise),
//       which renders the window indistinguishable from the drift-free
//       execution E and keeps all delays within [phi T, (1-phi) T].
//
// Each level multiplies the per-edge average skew while dividing the
// segment length by b; after ~log_b D levels two *neighbors* carry the
// accumulated skew — the Omega(T log_b D) of Theorem 7.7.
//
// The construction is algorithm-agnostic: it only reads logical clock
// values the metrics layer can see, never algorithm internals.
#pragma once

#include <memory>
#include <vector>

#include "sim/delay_policy.hpp"
#include "sim/simulator.hpp"

namespace tbcs::lowerbound {

class LocalSkewConstruction {
 public:
  struct Config {
    double eps = 0.2;    // ramp amplitude; execution rates lie in [1, 1+eps]
    double delay = 1.0;  // T
    double phi = 0.0;    // framing (Definition 7.5); 0 = delays in {0, T}
    double settle = 5.0; // drain time between levels, in units of T
  };

  struct Level {
    int k = 0;            // level index
    int lo = 0, hi = 0;   // chosen segment endpoints (node indices)
    int length = 0;       // hi - lo
    double window = 0.0;  // shift-window duration
    double skew = 0.0;    // |L_lo - L_hi| at window end
    double per_edge = 0.0;  // skew / length
  };

  /// The simulator must host a path graph with nodes 0..n-1 in path order
  /// and use wake_all_at_zero (the Section 7 convention).  Install
  /// delay_policy() on the simulator before running.
  LocalSkewConstruction(sim::Simulator& sim, Config cfg);

  std::shared_ptr<sim::DelayPolicy> delay_policy();

  /// Runs the construction, shrinking the segment by factor b per level,
  /// until it reaches a single edge.  Returns the per-level reports.
  std::vector<Level> run(int b);

 private:
  struct WindowState {
    bool active = false;
    sim::RealTime t_start = 0.0;
    sim::RealTime t_end = 0.0;
    std::vector<double> rate;  // per node, during the window
    // Orientation for the gamma rule: Phi(u) = d(w',u) - d(v',u); on the
    // path this is sign-determined by node index relative to (lo, hi).
    int ahead = 0;   // v' (larger logical clock)
    int behind = 0;  // w'
  };

  double phi_of(int u) const;            // Phi(u) for current orientation
  double gamma(int from, int to) const;  // nominal per-edge hardware gap
  double shift(int u, sim::RealTime t) const;  // H progress surplus in window
  sim::RealTime invert_progress(int u, double target) const;

  void start_window(int ahead, int behind, sim::RealTime duration);
  void run_window(int ahead, int behind, sim::RealTime duration);
  std::pair<int, int> pick_segment(int lo, int hi, int sub_length) const;

  sim::Simulator& sim_;
  Config cfg_;
  int n_;
  WindowState win_;
};

}  // namespace tbcs::lowerbound
