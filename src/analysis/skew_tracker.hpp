// Exact skew measurement (Definitions 3.1 / 3.2) and model-condition
// auditing (Conditions (1) and (2), Definition 5.6).
//
// All logical clocks are piecewise linear in real time with breakpoints
// only at simulation events; the maximum of a difference of piecewise
// linear functions over an interval is attained at a breakpoint.  The
// tracker is installed as the simulator's observer and therefore samples
// every breakpoint: the reported maxima are exact, not approximations.
//
// Two engines produce those maxima:
//
//  * kFullRescan — the oracle: every sample scans all n nodes and all E
//    edges.  O(events * (n + E)).
//
//  * kIncremental (default) — certificate-based: per event, only the
//    touched node (Simulator::last_event()) is evaluated exactly, and a
//    set of upper-bound certificates (last exact extrema extrapolated at
//    the extreme observed clock rates, kinetic-tournament style) prove
//    that the skipped full scan could not have raised any running
//    maximum.  When a certificate expires — the bound reaches the current
//    maximum — the tracker falls back to one full rescan, which both
//    updates the results and re-anchors every certificate exactly.
//    Because running maxima are only ever written by the shared full-scan
//    code path, every reported figure is bit-identical to the oracle's.
//    Amortized cost per event is O(deg(touched node)) once the skew
//    process saturates.
//
//  * kAuditOracle — runs both engines and throws on any divergence
//    (--audit-oracle in the CLI); for validating the incremental engine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/history_store.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace tbcs::analysis {

class SkewTracker {
 public:
  enum class Mode {
    kIncremental,  // certificate-based; falls back to full scans as needed
    kFullRescan,   // the O(n + E)-per-sample oracle
    kAuditOracle,  // both, asserting equality after every sample
  };

  struct Options {
    /// Scan engine.  Incremental requires stride == 1 (any stride > 1
    /// silently uses the full-rescan engine: strided sampling already
    /// breaks the one-event-per-sample dirty-set invariant).
    Mode mode = Mode::kIncremental;

    /// Track the per-edge (local) skew.  O(|E|) per full scan.
    bool track_local = true;

    /// Track the skew profile per hop distance (gradient property,
    /// Definition 5.6).  O(n^2) per evaluation — enable only for small n.
    bool track_per_distance = false;

    /// When > 0, evaluate the per-distance profile only on the fixed time
    /// grid warmup + k * per_distance_interval (like the probe grid)
    /// instead of at every sample; profile maxima become grid maxima.
    /// 0 keeps the exact every-sample profile.
    double per_distance_interval = 0.0;

    /// Audit Condition (1) against this true epsilon (<= 0 disables).
    /// The upper envelope is anchored at the earliest wake time seen
    /// across all nodes, the lower envelope at each node's own t_v.
    double audit_epsilon = 0.0;

    /// Also audit each node against the per-node catch-up ceiling
    /// L_v(t) <= beta (t - t_v), the Condition (2) rate bound integrated
    /// from the node's wake (beta = (1+eps)(1+mu) for A^opt in rate
    /// mode; <= 0 disables).  Catches a late waker racing ahead faster
    /// than any legal catch-up while still under the system envelope.
    /// Not meaningful for jump-mode variants, which discontinuously
    /// adopt L^max at wake.
    double audit_beta = 0.0;

    /// Sample only every `stride`-th observer call (maxima become lower
    /// bounds).  1 = exact.
    std::uint64_t stride = 1;

    /// Record a (t, global, local) time-series point at most every
    /// `series_interval` time units (0 = no series).
    double series_interval = 0.0;

    /// History backend for the recorded series (exact keeps every point;
    /// stair summarizes old history under a memory budget).
    obs::HistoryConfig history;

    /// When > 0, sample ONLY on the fixed time grid k * sample_grid
    /// (k >= 1, grid points accumulated by addition): the first observer
    /// call with t >= the next grid point is taken, all others are
    /// skipped, and every taken sample is recorded into the history
    /// stores.  Pair it with SimConfig::probe_interval == sample_grid so
    /// both engines deliver a sample at exactly every grid point (the
    /// serial probe events and the sharded probe barriers fire at
    /// bit-equal times), which keeps the sketch byte-identical serial vs
    /// any --shards count.  Maxima become grid maxima; the gap to the
    /// exact figures is bounded by skew_error_bound().  Disables the
    /// incremental engine (the grid is sparse, so the few scans are
    /// cheap) and ignores series_interval.
    double sample_grid = 0.0;

    /// Worst-case growth rate of the skew between two samples (per unit
    /// real time); skew_error_bound() = error_rate_span * sample_grid.
    /// For the continuous-rate A^opt this is
    /// (1+eps)(1+mu) - (1-eps): the fastest and slowest legal logical
    /// rates diverge no quicker.  <= 0 = unknown (bound reports NaN).
    double error_rate_span = 0.0;

    /// Ignore all samples before this time (lets experiments exclude the
    /// initialization flood when they study steady-state behavior).
    double warmup = 0.0;

    // ---- recovery-time probe (fault injection) ------------------------------
    // Enabled when recovery_global_bound > 0 and a fault has been noted via
    // note_fault().  A sample is "within bounds" when the instantaneous
    // global skew is <= recovery_global_bound and (if also > 0 and local
    // tracking is on) the instantaneous local skew is <=
    // recovery_local_bound; recovery_time() is the delay from the last
    // noted fault to the first within-bounds sample not followed by any
    // out-of-bounds sample.  Callers set the bounds to the Thm 5.5 / 5.10
    // figures so "recovered" means "re-entered the paper's envelope".

    /// Global-skew re-entry threshold (<= 0 disables the probe).
    double recovery_global_bound = 0.0;

    /// Local-skew re-entry threshold (<= 0: global-only classification).
    double recovery_local_bound = 0.0;

    /// Classify recovery samples only on the fixed grid k * interval
    /// (<= 0: classify every sample).  Pair it with the same
    /// SimConfig::probe_interval so BOTH engines deliver a sample at
    /// exactly every grid point with exactly the events before it
    /// applied: the serial engine's per-event samples and the sharded
    /// engine's extra barriers then skip classification, and
    /// recovery_time() / stabilization_time() come out byte-identical
    /// serial vs any --shards count (at grid resolution).  tbcs_sim and
    /// the sweep runner set both knobs whenever a fault plan is active.
    double recovery_classify_interval = 0.0;

    /// Nodes excluded from every fold (skews, rates, envelope audits,
    /// per-distance profile).  Fault harnesses put the Byzantine set here:
    /// a liar's own clock is not part of the guarantee — only what it does
    /// to the correct subgraph is.  Ids out of range are ignored.
    std::vector<sim::NodeId> exclude;
  };

  struct Sample {
    double t = 0.0;
    double global_skew = 0.0;
    double local_skew = 0.0;
  };

  SkewTracker(const sim::Simulator& sim, Options opt);
  explicit SkewTracker(const sim::Simulator& sim);

  /// Installs this tracker as the simulator's observer.
  void attach(sim::Simulator& sim);

  /// Installs this tracker as the simulator's *window* observer (sharded
  /// engine): one sample per window barrier, folding the barrier's
  /// touched-node set.  Because the barrier grid and the touched sets are
  /// shard-count invariant, so is every tracker output.
  void attach_windowed(sim::Simulator& sim);

  /// attach_windowed() when the simulator is sharded, attach() otherwise.
  void attach_auto(sim::Simulator& sim) {
    if (sim.shards() > 0) {
      attach_windowed(sim);
    } else {
      attach(sim);
    }
  }

  /// Processes one sample at time t (called by the observer).
  void observe(const sim::Simulator& sim, double t);

  /// Processes one window-barrier sample: like observe(), but folds the
  /// whole touched-node set instead of Simulator::last_event().
  void observe_window(const sim::Simulator& sim, double t,
                      const std::vector<sim::Simulator::WindowTouch>& touched);

  // ---- results ------------------------------------------------------------

  /// max over sampled times of (max_v L_v - min_v L_v), awake nodes only.
  double max_global_skew() const { return max_global_skew_; }

  /// max over sampled times and edges {v,w} of |L_v - L_w|.
  double max_local_skew() const { return max_local_skew_; }

  /// max over sampled times and pairs at hop distance d of |L_v - L_w|;
  /// requires track_per_distance.
  double max_skew_at_distance(int d) const;
  int max_distance() const { return static_cast<int>(per_distance_.size()) - 1; }

  /// Largest violation of Condition (1) (plus the audit_beta catch-up
  /// ceiling when enabled):
  ///   max(L_v(t) - (1+eps)(t - t_0),
  ///       [beta audit] L_v(t) - beta (t - t_v),
  ///       (1-eps)(t - t_v) - L_v(t)) over samples,
  /// where t_0 is the earliest wake time across all nodes and t_v the
  /// node's own.  <= 0 means the envelope held at every sampled instant.
  double max_envelope_violation() const { return max_envelope_violation_; }

  /// Extremes of the instantaneous logical clock rate rho_v * h_v observed
  /// at sample times (for auditing Condition (2)).
  double min_logical_rate() const { return min_logical_rate_; }
  double max_logical_rate() const { return max_logical_rate_; }

  /// The recorded (t, global, local) series, materialized from the
  /// history backend: one entry per retained window (exact backend: one
  /// per recorded point, bit-identical to the pre-backend tracker; stair:
  /// older entries summarize whole windows by their max).
  const std::vector<Sample>& series() const;
  std::uint64_t samples_taken() const { return samples_; }

  /// The raw history stores behind series() (global / local skew).
  const obs::HistoryStore& global_history() const { return *hist_global_; }
  const obs::HistoryStore& local_history() const { return *hist_local_; }

  /// Worst-case gap between the reported skew maxima and the exact
  /// (every-breakpoint) figures.  0 for exact every-sample tracking, NaN
  /// when unknown (stride > 1, or grid sampling without an
  /// error_rate_span), else error_rate_span * sample_grid.
  double skew_error_bound() const;

  /// Bytes held by the series history stores.
  std::size_t history_memory_bytes() const {
    return hist_global_->memory_bytes() + hist_local_->memory_bytes();
  }

  /// Full O(n + E) scans actually executed (== samples_taken() for the
  /// oracle; the incremental engine's figure of merit is how far this
  /// stays below it).
  std::uint64_t full_scans() const { return full_scans_; }

  // ---- recovery-time probe --------------------------------------------------

  /// Tells the probe a fault was applied at time t (fault schedulers call
  /// this for every applied fault); resets any tentative recovery point.
  void note_fault(double t);

  /// note_fault() plus an anchor for the self-stabilization figure: the
  /// scramble set this node's state arbitrarily, and stabilization_time()
  /// measures from the *last* scramble (later ordinary faults reset the
  /// recovery point but not this anchor).
  void note_scramble(double t);

  /// Real time of the last fault noted; NaN if none.
  double last_fault_time() const;

  /// Time from the last noted fault until skew re-entered the configured
  /// bounds for good (no later sample outside them).  NaN while out of
  /// bounds, never recovered, or no fault was noted.  0 when the bounds
  /// were never left after the last fault.
  double recovery_time() const;

  /// Self-stabilization time: from the last noted scramble until the final
  /// re-entry into the *gradient* envelope (recovery_local_bound; the
  /// global bound when no local bound is configured).  Classified on the
  /// same samples as recovery_time() but against the local bound only: a
  /// scramble can translate one node's clock permanently above the rest —
  /// logical clocks are monotone and a trimmed estimate layer refuses
  /// single-source catch-up by design — so the global offset is not
  /// recoverable, while the gradient (local skew) guarantee is.  NaN when
  /// no scramble was noted or the gradient envelope was never re-entered.
  double stabilization_time() const;

 private:
  bool per_distance_due(double t) const;
  void do_sample(const sim::Simulator& sim, double t,
                 const sim::Simulator::WindowTouch* touched,
                 std::size_t n_touched);
  void full_scan(const sim::Simulator& sim, double t);
  void touch(const sim::Simulator& sim, sim::NodeId v, bool woke, double t);
  void assert_matches_oracle(double t) const;
  bool recovery_probe_active() const {
    return have_fault_ && opt_.recovery_global_bound > 0.0;
  }
  bool excluded(sim::NodeId v) const {
    return !excluded_.empty() && excluded_[static_cast<std::size_t>(v)] != 0;
  }
  /// Certificate proof that the current skews are inside the recovery
  /// bounds (incremental engine; certificates are upper bounds on the
  /// instantaneous values, so "bound small enough" is a proof).
  bool provably_within_recovery_bounds() const;
  /// Whether this sample time is a recovery-classification point (always,
  /// unless the grid of recovery_classify_interval is active).
  bool classify_due(double t) const {
    return opt_.recovery_classify_interval <= 0.0 || t >= next_classify_t_;
  }
  void classify_recovery_sample(double t, bool scanned_exactly);

  Options opt_;
  std::vector<char> excluded_;  // empty when Options::exclude is empty
  std::vector<std::vector<int>> distances_;  // filled iff track_per_distance
  std::vector<double> per_distance_;
  std::vector<double> logical_scratch_;
  double max_global_skew_ = 0.0;
  double max_local_skew_ = 0.0;
  double max_envelope_violation_ = -sim::kInfinity;
  double min_logical_rate_ = sim::kInfinity;
  double max_logical_rate_ = -sim::kInfinity;
  /// Series history, one store per component; series() materializes the
  /// zipped view on demand (both stores see identical append times, so
  /// their window structures always align index-for-index).
  std::unique_ptr<obs::HistoryStore> hist_global_;
  std::unique_ptr<obs::HistoryStore> hist_local_;
  mutable std::vector<Sample> series_cache_;
  mutable bool series_dirty_ = false;
  double earliest_start_ = sim::kInfinity;
  double next_series_t_ = 0.0;
  double next_grid_t_ = 0.0;  // next sample_grid point (grid mode only)
  double next_per_distance_t_ = 0.0;
  std::uint64_t calls_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t full_scans_ = 0;
  /// Set when an incremental engine was requested but stride > 1 silently
  /// degraded it to full rescans; every degraded sample bumps the
  /// `skew.full_rescan_fallback` counter so sweeps surface the hidden
  /// O(n + E)-per-sample cost.
  bool degraded_to_full_rescan_ = false;
  obs::Counter fallback_counter_;

  // ---- recovery-probe state -------------------------------------------------
  bool have_fault_ = false;
  double last_fault_t_ = 0.0;
  bool have_scramble_ = false;
  double last_scramble_t_ = 0.0;
  double recovery_candidate_ = 0.0;  // guarded by have_candidate_
  bool have_candidate_ = false;
  /// Gradient-envelope re-entry point for stabilization_time(): same
  /// classification cadence, local bound only.
  double gradient_candidate_ = 0.0;  // guarded by have_gradient_candidate_
  bool have_gradient_candidate_ = false;
  /// Next grid point of recovery_classify_interval (accumulated by
  /// addition, matching the simulators' probe_next_ arithmetic so the
  /// grid times are bit-equal to the probe sample times).
  double next_classify_t_ = 0.0;
  double cur_global_ = 0.0;  // instantaneous values as of the last full scan
  double cur_local_ = 0.0;

  // ---- incremental-engine state -------------------------------------------
  // Certificates: exact values from the last full scan, extrapolated with
  // the extreme observed rates plus a per-advance guard that dominates the
  // floating-point drift of the extrapolation.  Invariant: *_bound_ is >=
  // the value the oracle would compute at the current time, so a bound
  // that stays below the corresponding running maximum proves the skipped
  // scan was a no-op.
  std::shared_ptr<const graph::Graph::Csr> csr_;  // for touch-local edge folds
  bool incremental_ = false;
  bool scanned_once_ = false;
  double bound_t_ = 0.0;        // time the bounds were last advanced to
  double hi_bound_ = -sim::kInfinity;   // >= max_v L_v(t)
  double lo_bound_ = sim::kInfinity;    // <= min_v L_v(t) over awake nodes
  double local_bound_ = -sim::kInfinity;
  double env_bound_ = -sim::kInfinity;
  double rate_hi_ = 0.0;        // >= every current logical rate
  double rate_lo_ = 0.0;        // <= every current logical rate
  bool any_awake_seen_ = false;

  std::unique_ptr<SkewTracker> oracle_;  // kAuditOracle only
};

}  // namespace tbcs::analysis
