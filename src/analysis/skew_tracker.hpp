// Exact skew measurement (Definitions 3.1 / 3.2) and model-condition
// auditing (Conditions (1) and (2), Definition 5.6).
//
// All logical clocks are piecewise linear in real time with breakpoints
// only at simulation events; the maximum of a difference of piecewise
// linear functions over an interval is attained at a breakpoint.  The
// tracker is installed as the simulator's observer and therefore samples
// every breakpoint: the reported maxima are exact, not approximations.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace tbcs::analysis {

class SkewTracker {
 public:
  struct Options {
    /// Track the per-edge (local) skew.  O(|E|) per sample.
    bool track_local = true;

    /// Track the skew profile per hop distance (gradient property,
    /// Definition 5.6).  O(n^2) per sample — enable only for small n.
    bool track_per_distance = false;

    /// Audit Condition (1) against this true epsilon (<= 0 disables).
    /// The upper envelope is anchored at the earliest wake time seen
    /// across all nodes, the lower envelope at each node's own t_v.
    double audit_epsilon = 0.0;

    /// Also audit each node against the per-node catch-up ceiling
    /// L_v(t) <= beta (t - t_v), the Condition (2) rate bound integrated
    /// from the node's wake (beta = (1+eps)(1+mu) for A^opt in rate
    /// mode; <= 0 disables).  Catches a late waker racing ahead faster
    /// than any legal catch-up while still under the system envelope.
    /// Not meaningful for jump-mode variants, which discontinuously
    /// adopt L^max at wake.
    double audit_beta = 0.0;

    /// Sample only every `stride`-th observer call (maxima become lower
    /// bounds).  1 = exact.
    std::uint64_t stride = 1;

    /// Record a (t, global, local) time-series point at most every
    /// `series_interval` time units (0 = no series).
    double series_interval = 0.0;

    /// Ignore all samples before this time (lets experiments exclude the
    /// initialization flood when they study steady-state behavior).
    double warmup = 0.0;
  };

  struct Sample {
    double t = 0.0;
    double global_skew = 0.0;
    double local_skew = 0.0;
  };

  SkewTracker(const sim::Simulator& sim, Options opt);
  explicit SkewTracker(const sim::Simulator& sim);

  /// Installs this tracker as the simulator's observer.
  void attach(sim::Simulator& sim);

  /// Processes one sample at time t (called by the observer).
  void observe(const sim::Simulator& sim, double t);

  // ---- results ------------------------------------------------------------

  /// max over sampled times of (max_v L_v - min_v L_v), awake nodes only.
  double max_global_skew() const { return max_global_skew_; }

  /// max over sampled times and edges {v,w} of |L_v - L_w|.
  double max_local_skew() const { return max_local_skew_; }

  /// max over sampled times and pairs at hop distance d of |L_v - L_w|;
  /// requires track_per_distance.
  double max_skew_at_distance(int d) const;
  int max_distance() const { return static_cast<int>(per_distance_.size()) - 1; }

  /// Largest violation of Condition (1) (plus the audit_beta catch-up
  /// ceiling when enabled):
  ///   max(L_v(t) - (1+eps)(t - t_0),
  ///       [beta audit] L_v(t) - beta (t - t_v),
  ///       (1-eps)(t - t_v) - L_v(t)) over samples,
  /// where t_0 is the earliest wake time across all nodes and t_v the
  /// node's own.  <= 0 means the envelope held at every sampled instant.
  double max_envelope_violation() const { return max_envelope_violation_; }

  /// Extremes of the instantaneous logical clock rate rho_v * h_v observed
  /// at sample times (for auditing Condition (2)).
  double min_logical_rate() const { return min_logical_rate_; }
  double max_logical_rate() const { return max_logical_rate_; }

  const std::vector<Sample>& series() const { return series_; }
  std::uint64_t samples_taken() const { return samples_; }

 private:
  Options opt_;
  std::vector<std::vector<int>> distances_;  // filled iff track_per_distance
  std::vector<double> per_distance_;
  std::vector<double> logical_scratch_;
  double max_global_skew_ = 0.0;
  double max_local_skew_ = 0.0;
  double max_envelope_violation_ = -sim::kInfinity;
  double min_logical_rate_ = sim::kInfinity;
  double max_logical_rate_ = -sim::kInfinity;
  std::vector<Sample> series_;
  double earliest_start_ = sim::kInfinity;
  double next_series_t_ = 0.0;
  std::uint64_t calls_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace tbcs::analysis
