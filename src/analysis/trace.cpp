#include "analysis/trace.hpp"

#include <ostream>

#include "analysis/table.hpp"

namespace tbcs::analysis {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter& CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
  return *this;
}

void write_series_csv(std::ostream& os, const SkewTracker& tracker) {
  CsvWriter csv(os);
  csv.row({"t", "global_skew", "local_skew"});
  for (const auto& s : tracker.series()) {
    csv.row({Table::num(s.t, 6), Table::num(s.global_skew, 6),
             Table::num(s.local_skew, 6)});
  }
}

void write_distance_profile_csv(std::ostream& os, const SkewTracker& tracker) {
  CsvWriter csv(os);
  csv.row({"distance", "max_skew"});
  for (int d = 1; d <= tracker.max_distance(); ++d) {
    csv.row({Table::integer(d), Table::num(tracker.max_skew_at_distance(d), 6)});
  }
}

void write_snapshot_csv(std::ostream& os, const sim::Simulator& sim) {
  CsvWriter csv(os);
  csv.row({"node", "awake", "hardware", "logical", "rate_multiplier"});
  for (sim::NodeId v = 0; v < sim.num_nodes(); ++v) {
    csv.row({Table::integer(v), sim.awake(v) ? "1" : "0",
             Table::num(sim.hardware(v), 6), Table::num(sim.logical(v), 6),
             Table::num(sim.node(v).rate_multiplier(), 6)});
  }
}

}  // namespace tbcs::analysis
