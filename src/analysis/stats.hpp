// Small statistics helpers used by tests and benches to check growth
// *shapes* (logarithmic vs. linear in D) rather than absolute numbers.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace tbcs::analysis {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;

  static Summary of(std::vector<double> xs) {
    Summary s;
    if (xs.empty()) return s;
    std::sort(xs.begin(), xs.end());
    s.min = xs.front();
    s.max = xs.back();
    double total = 0.0;
    for (const double x : xs) total += x;
    s.mean = total / static_cast<double>(xs.size());
    const auto pick = [&xs](double q) {
      const auto idx = static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1));
      return xs[idx];
    };
    s.p50 = pick(0.50);
    s.p95 = pick(0.95);
    return s;
  }
};

/// Least-squares slope of y against x.
inline double linear_slope(const std::vector<double>& x,
                           const std::vector<double>& y) {
  assert(x.size() == y.size() && x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  assert(denom != 0.0);
  return (n * sxy - sx * sy) / denom;
}

/// Slope of y against log2(x): ~constant increments per doubling indicate
/// logarithmic growth; use linear_slope(x, y) to detect linear growth.
inline double log2_slope(const std::vector<double>& x,
                         const std::vector<double>& y) {
  std::vector<double> lx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    assert(x[i] > 0.0);
    lx[i] = std::log2(x[i]);
  }
  return linear_slope(lx, y);
}

}  // namespace tbcs::analysis
