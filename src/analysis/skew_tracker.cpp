#include "analysis/skew_tracker.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace tbcs::analysis {

namespace {

// Added to every certificate on each extrapolation step / exact fold.  The
// certificates only need to stay >= the value the oracle would compute; the
// guard dominates the few-ulp floating-point drift of `value + rate * dt`
// against the oracle's direct evaluation (quantities are O(10^6) at most,
// so one step drifts by no more than ~1e-9).  The inflation it accumulates
// is reset at every full scan.
constexpr double kCertificateGuard = 1e-9;

}  // namespace

SkewTracker::SkewTracker(const sim::Simulator& sim)
    : SkewTracker(sim, Options()) {}

SkewTracker::SkewTracker(const sim::Simulator& sim, Options opt) : opt_(opt) {
  const auto n = static_cast<std::size_t>(sim.num_nodes());
  logical_scratch_.resize(n);
  if (!opt_.exclude.empty()) {
    excluded_.assign(n, 0);
    for (const sim::NodeId v : opt_.exclude) {
      if (v >= 0 && static_cast<std::size_t>(v) < n) {
        excluded_[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  if (opt_.track_per_distance) {
    distances_ = sim.topology().all_pairs_distances();
    per_distance_.assign(static_cast<std::size_t>(sim.topology().diameter()) + 1, 0.0);
  }
  next_series_t_ = opt_.warmup;
  next_per_distance_t_ = opt_.warmup;
  if (opt_.recovery_classify_interval > 0.0) {
    next_classify_t_ = opt_.recovery_classify_interval;
  }
  hist_global_ = obs::make_history_store(opt_.history);
  hist_local_ = obs::make_history_store(opt_.history);
  if (opt_.sample_grid > 0.0) {
    // Grid points live at k * sample_grid (matching the simulators'
    // probe_next_ arithmetic); start at the first one not inside warmup.
    next_grid_t_ = opt_.sample_grid;
    while (next_grid_t_ < opt_.warmup) next_grid_t_ += opt_.sample_grid;
  }
  incremental_ = opt_.mode != Mode::kFullRescan && opt_.stride <= 1 &&
                 opt_.sample_grid <= 0.0;
  degraded_to_full_rescan_ = opt_.mode != Mode::kFullRescan && opt_.stride > 1;
  if (degraded_to_full_rescan_) {
    fallback_counter_ =
        obs::MetricsRegistry::global().counter("skew.full_rescan_fallback");
  }
  if (incremental_ && opt_.track_local) csr_ = sim.topology().csr();
  if (opt_.mode == Mode::kAuditOracle) {
    Options oracle_opt = opt_;
    oracle_opt.mode = Mode::kFullRescan;
    oracle_ = std::unique_ptr<SkewTracker>(new SkewTracker(sim, oracle_opt));
  }
}

void SkewTracker::attach(sim::Simulator& sim) {
  sim.set_observer([this](const sim::Simulator& s, double t) { observe(s, t); });
}

void SkewTracker::attach_windowed(sim::Simulator& sim) {
  sim.set_window_observer(
      [this](const sim::Simulator& s, double t,
             const std::vector<sim::Simulator::WindowTouch>& touched) {
        observe_window(s, t, touched);
      });
}

const std::vector<SkewTracker::Sample>& SkewTracker::series() const {
  if (series_dirty_) {
    series_cache_.clear();
    const auto wg = hist_global_->windows();
    const auto wl = hist_local_->windows();
    series_cache_.reserve(wg.size());
    for (std::size_t i = 0; i < wg.size(); ++i) {
      // Both stores ingest identical append times, so window i covers the
      // same samples in each; a window reports its covered max (exact
      // backend: singleton windows, i.e. the raw recorded points).
      series_cache_.push_back(Sample{wg[i].t_hi, wg[i].max,
                                     i < wl.size() ? wl[i].max : 0.0});
    }
    series_dirty_ = false;
  }
  return series_cache_;
}

double SkewTracker::skew_error_bound() const {
  if (opt_.stride > 1) return std::numeric_limits<double>::quiet_NaN();
  if (opt_.sample_grid <= 0.0) return 0.0;
  if (opt_.error_rate_span <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Between consecutive grid samples the skew can drift by at most
  // rate_span per unit time for sample_grid time units; the maximum of a
  // piecewise-linear function over the skipped interval exceeds its
  // grid-endpoint values by no more than that.
  return opt_.error_rate_span * opt_.sample_grid;
}

double SkewTracker::max_skew_at_distance(int d) const {
  assert(opt_.track_per_distance);
  if (d < 0 || d >= static_cast<int>(per_distance_.size())) return 0.0;
  return per_distance_[static_cast<std::size_t>(d)];
}

bool SkewTracker::per_distance_due(double t) const {
  if (!opt_.track_per_distance) return false;
  if (opt_.per_distance_interval <= 0.0) return true;
  return t >= next_per_distance_t_;
}

void SkewTracker::observe(const sim::Simulator& sim, double t) {
  // The one-touched-node contract of the incremental engine: fold exactly
  // what the triggering event changed.
  const sim::Simulator::LastEvent& le = sim.last_event();
  sim::Simulator::WindowTouch buf[2];
  std::size_t n = 0;
  if (le.node != sim::kInvalidNode) {
    buf[n++] = sim::Simulator::WindowTouch{le.node, le.woke};
  }
  if (le.node2 != sim::kInvalidNode) {
    buf[n++] = sim::Simulator::WindowTouch{le.node2, false};
  }
  do_sample(sim, t, buf, n);
}

void SkewTracker::observe_window(
    const sim::Simulator& sim, double t,
    const std::vector<sim::Simulator::WindowTouch>& touched) {
  do_sample(sim, t, touched.data(), touched.size());
}

void SkewTracker::do_sample(const sim::Simulator& sim, double t,
                            const sim::Simulator::WindowTouch* touched,
                            std::size_t n_touched) {
  if (t < opt_.warmup) return;
  if (opt_.stride > 1 && (calls_++ % opt_.stride) != 0) return;
  // Grid mode: take only the first sample at/after each grid point.  The
  // probe event (serial) / probe barrier (sharded) at exactly the grid
  // time is that sample in both engines, so everything downstream is
  // engine-invariant.  The early return is what makes large-n runs
  // affordable: all other events cost one comparison.
  if (opt_.sample_grid > 0.0 && t < next_grid_t_) return;
  ++samples_;
  if (degraded_to_full_rescan_) fallback_counter_.inc();

  bool scanned_exactly = false;
  if (!incremental_) {
    full_scan(sim, t);
    scanned_exactly = true;
  } else {
    // Advance the certificates from bound_t_ to t: every logical clock is
    // linear between events with a rate inside [rate_lo_, rate_hi_], so the
    // extrema drift no faster than these envelopes.
    const double dt = t > bound_t_ ? t - bound_t_ : 0.0;
    if (dt > 0.0 && any_awake_seen_) {
      hi_bound_ = hi_bound_ + rate_hi_ * dt + kCertificateGuard;
      lo_bound_ = lo_bound_ + rate_lo_ * dt - kCertificateGuard;
      if (opt_.track_local) {
        local_bound_ =
            local_bound_ + (rate_hi_ - rate_lo_) * dt + kCertificateGuard;
      }
      if (opt_.audit_epsilon > 0.0) {
        // Upper violations grow at rate_v - (1+eps) (and rate_v - beta),
        // lower violations at (1-eps) - rate_v; never shrink the bound.
        double growth = std::max(rate_hi_ - (1.0 + opt_.audit_epsilon),
                                 (1.0 - opt_.audit_epsilon) - rate_lo_);
        if (opt_.audit_beta > 0.0) {
          growth = std::max(growth, rate_hi_ - opt_.audit_beta);
        }
        growth = std::max(growth, 0.0);
        env_bound_ = env_bound_ + growth * dt + kCertificateGuard;
      }
    }
    bound_t_ = t;

    // Fold the touched nodes exactly: only they can have moved
    // discontinuously since the last sample.
    for (std::size_t i = 0; i < n_touched; ++i) {
      touch(sim, touched[i].node, touched[i].woke, t);
    }

    // A full scan is needed exactly when some certificate no longer proves
    // the corresponding running maximum unbeaten, or when a grid output
    // (series / per-distance profile) wants exact values at this t.
    bool need = !scanned_once_ || !any_awake_seen_;
    if (!need) {
      need = hi_bound_ - lo_bound_ >= max_global_skew_;
      if (!need && opt_.track_local) need = local_bound_ >= max_local_skew_;
      if (!need && opt_.audit_epsilon > 0.0) {
        need = env_bound_ >= max_envelope_violation_;
      }
    }
    if (!need && opt_.series_interval > 0.0) need = t >= next_series_t_;
    if (!need) need = per_distance_due(t);
    // Recovery probe: a sample the certificates cannot prove within bounds
    // must be classified exactly, so it forces a scan.
    if (!need && recovery_probe_active() && classify_due(t) &&
        !provably_within_recovery_bounds()) {
      need = true;
    }
    if (need) {
      full_scan(sim, t);
      scanned_exactly = true;
    }
  }

  if (recovery_probe_active() && classify_due(t)) {
    classify_recovery_sample(t, scanned_exactly);
  }
  if (opt_.recovery_classify_interval > 0.0) {
    // Advance past t even when the probe is dormant (no fault noted yet):
    // the grid is global time, not time-since-fault.
    while (next_classify_t_ <= t) {
      next_classify_t_ += opt_.recovery_classify_interval;
    }
  }
  if (opt_.sample_grid > 0.0) {
    while (next_grid_t_ <= t) next_grid_t_ += opt_.sample_grid;
  }

  if (oracle_) {
    oracle_->do_sample(sim, t, touched, n_touched);
    assert_matches_oracle(t);
  }
}

void SkewTracker::note_fault(double t) {
  have_fault_ = true;
  last_fault_t_ = std::max(last_fault_t_, t);
  have_candidate_ = false;  // recovery is measured from the *last* fault
  have_gradient_candidate_ = false;
  if (oracle_) oracle_->note_fault(t);
}

void SkewTracker::note_scramble(double t) {
  note_fault(t);  // already forwards to the oracle
  have_scramble_ = true;
  last_scramble_t_ = std::max(last_scramble_t_, t);
}

double SkewTracker::last_fault_time() const {
  return have_fault_ ? last_fault_t_
                     : std::numeric_limits<double>::quiet_NaN();
}

double SkewTracker::recovery_time() const {
  if (!have_fault_ || !have_candidate_) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::max(0.0, recovery_candidate_ - last_fault_t_);
}

double SkewTracker::stabilization_time() const {
  if (!have_scramble_ || !have_gradient_candidate_) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::max(0.0, gradient_candidate_ - last_scramble_t_);
}

bool SkewTracker::provably_within_recovery_bounds() const {
  if (!scanned_once_ || !any_awake_seen_) return false;
  if (hi_bound_ - lo_bound_ > opt_.recovery_global_bound) return false;
  if (opt_.recovery_local_bound > 0.0 && opt_.track_local &&
      local_bound_ > opt_.recovery_local_bound) {
    return false;
  }
  return true;
}

void SkewTracker::classify_recovery_sample(double t, bool scanned_exactly) {
  // Without an exact scan this sample was proven within bounds by the
  // certificates (observe() forces a scan otherwise), so the exact values
  // would agree — which is what keeps both engines' classifications, and
  // hence recovery_time(), bit-identical.
  bool within = true;
  // Gradient-only classification for stabilization_time(): a scramble can
  // leave a permanent global offset (monotone clocks; trimmed adoption
  // refuses single-source catch-up), so self-stabilization is judged
  // against the local-skew envelope alone.
  bool gradient_within = true;
  if (scanned_exactly) {
    within = cur_global_ <= opt_.recovery_global_bound;
    const bool have_local =
        opt_.recovery_local_bound > 0.0 && opt_.track_local;
    if (within && have_local) {
      within = cur_local_ <= opt_.recovery_local_bound;
    }
    gradient_within =
        have_local ? cur_local_ <= opt_.recovery_local_bound : within;
  }
  if (!within) {
    have_candidate_ = false;
  } else if (!have_candidate_) {
    recovery_candidate_ = t;
    have_candidate_ = true;
  }
  if (!gradient_within) {
    have_gradient_candidate_ = false;
  } else if (!have_gradient_candidate_) {
    gradient_candidate_ = t;
    have_gradient_candidate_ = true;
  }
}

void SkewTracker::touch(const sim::Simulator& sim, sim::NodeId v, bool woke,
                        double t) {
  if (excluded(v) || !sim.awake(v)) return;
  any_awake_seen_ = true;
  const double L = sim.logical(v);
  if (!(L <= hi_bound_)) hi_bound_ = L + kCertificateGuard;
  if (!(L >= lo_bound_)) lo_bound_ = L - kCertificateGuard;

  const double rate = sim.node(v).rate_multiplier() * sim.clock(v).rate();
  min_logical_rate_ = std::min(min_logical_rate_, rate);
  max_logical_rate_ = std::max(max_logical_rate_, rate);
  if (!(rate <= rate_hi_)) rate_hi_ = rate;
  if (!(rate >= rate_lo_)) rate_lo_ = rate;

  if (opt_.track_local) {
    for (const graph::Graph::Arc* a = csr_->begin(v); a != csr_->end(v); ++a) {
      if (excluded(a->to) || !sim.link_up(a->edge) || !sim.awake(a->to)) continue;
      const double d = std::abs(L - sim.logical(a->to));
      if (!(d <= local_bound_)) local_bound_ = d + kCertificateGuard;
    }
  }

  if (opt_.audit_epsilon > 0.0) {
    if (woke) {
      earliest_start_ = std::min(earliest_start_, sim.clock(v).start_time());
    }
    const double eps = opt_.audit_epsilon;
    const double tv = sim.clock(v).start_time();
    double upper_violation = L - (1.0 + eps) * (t - earliest_start_);
    if (opt_.audit_beta > 0.0) {
      upper_violation =
          std::max(upper_violation, L - opt_.audit_beta * (t - tv));
    }
    const double lower_violation = (1.0 - eps) * (t - tv) - L;
    const double violation = std::max(upper_violation, lower_violation);
    if (!(violation <= env_bound_)) env_bound_ = violation + kCertificateGuard;
  }
}

// The oracle pass.  This is the only code that writes the running maxima,
// in both engines — the incremental engine merely proves most calls
// redundant — so its fold order and arithmetic are the single source of
// truth for every reported figure.
void SkewTracker::full_scan(const sim::Simulator& sim, double t) {
  ++full_scans_;
  const sim::NodeId n = sim.num_nodes();
  double lo = sim::kInfinity;
  double hi = -sim::kInfinity;
  double cur_rate_lo = sim::kInfinity;
  double cur_rate_hi = -sim::kInfinity;
  double cur_env = -sim::kInfinity;
  bool any_awake = false;
  if (opt_.audit_epsilon > 0.0) {
    // The system envelope is anchored at the earliest wake across all
    // nodes; fold every awake node in before auditing any of them.
    for (sim::NodeId v = 0; v < n; ++v) {
      if (!excluded(v) && sim.awake(v)) {
        earliest_start_ = std::min(earliest_start_, sim.clock(v).start_time());
      }
    }
  }
  for (sim::NodeId v = 0; v < n; ++v) {
    if (excluded(v) || !sim.awake(v)) {
      logical_scratch_[static_cast<std::size_t>(v)] = -sim::kInfinity;
      continue;
    }
    any_awake = true;
    const double L = sim.logical(v);
    logical_scratch_[static_cast<std::size_t>(v)] = L;
    lo = std::min(lo, L);
    hi = std::max(hi, L);

    // Rate audit: instantaneous logical rate = rho_v * h_v.
    const double rate = sim.node(v).rate_multiplier() * sim.clock(v).rate();
    min_logical_rate_ = std::min(min_logical_rate_, rate);
    max_logical_rate_ = std::max(max_logical_rate_, rate);
    cur_rate_lo = std::min(cur_rate_lo, rate);
    cur_rate_hi = std::max(cur_rate_hi, rate);

    // Envelope audit (Condition (1)), relative to wake times: the system
    // envelope is anchored at the earliest wake (the instant L^max was
    // born), each node's lower envelope and catch-up ceiling at its own
    // t_v.  Late-waking nodes legally exceed (1+eps)(t - t_v) while
    // catching up at rate beta, so the per-node upper check needs the
    // Condition (2) ceiling and is enabled by audit_beta.
    if (opt_.audit_epsilon > 0.0) {
      const double eps = opt_.audit_epsilon;
      const double tv = sim.clock(v).start_time();
      double upper_violation = L - (1.0 + eps) * (t - earliest_start_);
      if (opt_.audit_beta > 0.0) {
        upper_violation =
            std::max(upper_violation, L - opt_.audit_beta * (t - tv));
      }
      const double lower_violation = (1.0 - eps) * (t - tv) - L;
      max_envelope_violation_ =
          std::max({max_envelope_violation_, upper_violation, lower_violation});
      cur_env = std::max({cur_env, upper_violation, lower_violation});
    }
  }

  // Re-anchor the certificates on the exact values just computed; the
  // local certificate is finished below once `local` is known.
  scanned_once_ = true;
  any_awake_seen_ = any_awake;
  bound_t_ = t;
  hi_bound_ = hi;
  lo_bound_ = lo;
  env_bound_ = cur_env;
  rate_hi_ = any_awake ? cur_rate_hi : 0.0;
  rate_lo_ = any_awake ? cur_rate_lo : 0.0;
  local_bound_ = -sim::kInfinity;

  if (!any_awake) {
    cur_global_ = 0.0;
    cur_local_ = 0.0;
    return;
  }
  const double global = hi - lo;
  max_global_skew_ = std::max(max_global_skew_, global);
  cur_global_ = global;

  double local = 0.0;
  if (opt_.track_local) {
    const auto& edges = sim.topology().edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto& [u, w] = edges[i];
      const double Lu = logical_scratch_[static_cast<std::size_t>(u)];
      const double Lw = logical_scratch_[static_cast<std::size_t>(w)];
      if (Lu == -sim::kInfinity || Lw == -sim::kInfinity) continue;
      if (!sim.link_up(i)) continue;  // down links are not neighbors
      local = std::max(local, std::abs(Lu - Lw));
    }
    max_local_skew_ = std::max(max_local_skew_, local);
    local_bound_ = local;
  }
  cur_local_ = local;

  if (per_distance_due(t)) {
    for (sim::NodeId v = 0; v < n; ++v) {
      const double Lv = logical_scratch_[static_cast<std::size_t>(v)];
      if (Lv == -sim::kInfinity) continue;
      for (sim::NodeId w = v + 1; w < n; ++w) {
        const double Lw = logical_scratch_[static_cast<std::size_t>(w)];
        if (Lw == -sim::kInfinity) continue;
        const int d = distances_[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)];
        auto& cell = per_distance_[static_cast<std::size_t>(d)];
        cell = std::max(cell, std::abs(Lv - Lw));
      }
    }
    if (opt_.per_distance_interval > 0.0) {
      do {
        next_per_distance_t_ += opt_.per_distance_interval;
      } while (next_per_distance_t_ <= t);
    }
  }

  // Grid mode records every taken sample (the grid IS the cadence);
  // otherwise the series_interval cadence applies.
  const bool series_due =
      opt_.sample_grid > 0.0 ||
      (opt_.series_interval > 0.0 && t >= next_series_t_);
  if (series_due) {
    hist_global_->append(t, global);
    hist_local_->append(t, local);
    series_dirty_ = true;
    if (opt_.sample_grid <= 0.0) {
      // Advance on the fixed grid warmup + k * interval: anchoring the
      // next target at `t` would accumulate per-probe jitter and let the
      // series drift off the requested cadence.
      do {
        next_series_t_ += opt_.series_interval;
      } while (next_series_t_ <= t);
    }
  }
}

void SkewTracker::assert_matches_oracle(double t) const {
  const SkewTracker& o = *oracle_;
  const bool recovery_ok =
      have_candidate_ == o.have_candidate_ &&
      (!have_candidate_ || recovery_candidate_ == o.recovery_candidate_) &&
      have_gradient_candidate_ == o.have_gradient_candidate_ &&
      (!have_gradient_candidate_ ||
       gradient_candidate_ == o.gradient_candidate_);
  const bool scalars_ok = recovery_ok &&
                          max_global_skew_ == o.max_global_skew_ &&
                          max_local_skew_ == o.max_local_skew_ &&
                          max_envelope_violation_ == o.max_envelope_violation_ &&
                          min_logical_rate_ == o.min_logical_rate_ &&
                          max_logical_rate_ == o.max_logical_rate_;
  bool vectors_ok = per_distance_ == o.per_distance_ &&
                    hist_global_->appends() == o.hist_global_->appends();
  if (vectors_ok && hist_global_->appends() > 0) {
    vectors_ok = hist_global_->last_time() == o.hist_global_->last_time() &&
                 hist_global_->last_value() == o.hist_global_->last_value() &&
                 hist_local_->last_value() == o.hist_local_->last_value();
  }
  if (scalars_ok && vectors_ok) return;
  std::ostringstream os;
  os.precision(17);
  os << "SkewTracker audit-oracle divergence at t=" << t
     << ": incremental {global=" << max_global_skew_
     << ", local=" << max_local_skew_
     << ", envelope=" << max_envelope_violation_
     << ", rates=[" << min_logical_rate_ << ", " << max_logical_rate_
     << "], series=" << hist_global_->appends() << "} vs oracle {global="
     << o.max_global_skew_ << ", local=" << o.max_local_skew_
     << ", envelope=" << o.max_envelope_violation_ << ", rates=["
     << o.min_logical_rate_ << ", " << o.max_logical_rate_
     << "], series=" << o.hist_global_->appends() << "}";
  throw std::logic_error(os.str());
}

}  // namespace tbcs::analysis
