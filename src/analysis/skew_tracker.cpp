#include "analysis/skew_tracker.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tbcs::analysis {

SkewTracker::SkewTracker(const sim::Simulator& sim)
    : SkewTracker(sim, Options()) {}

SkewTracker::SkewTracker(const sim::Simulator& sim, Options opt) : opt_(opt) {
  const auto n = static_cast<std::size_t>(sim.num_nodes());
  logical_scratch_.resize(n);
  if (opt_.track_per_distance) {
    distances_ = sim.topology().all_pairs_distances();
    per_distance_.assign(static_cast<std::size_t>(sim.topology().diameter()) + 1, 0.0);
  }
  next_series_t_ = opt_.warmup;
}

void SkewTracker::attach(sim::Simulator& sim) {
  sim.set_observer([this](const sim::Simulator& s, double t) { observe(s, t); });
}

double SkewTracker::max_skew_at_distance(int d) const {
  assert(opt_.track_per_distance);
  if (d < 0 || d >= static_cast<int>(per_distance_.size())) return 0.0;
  return per_distance_[static_cast<std::size_t>(d)];
}

void SkewTracker::observe(const sim::Simulator& sim, double t) {
  if (t < opt_.warmup) return;
  if (opt_.stride > 1 && (calls_++ % opt_.stride) != 0) return;
  ++samples_;

  const sim::NodeId n = sim.num_nodes();
  double lo = sim::kInfinity;
  double hi = -sim::kInfinity;
  bool any_awake = false;
  if (opt_.audit_epsilon > 0.0) {
    // The system envelope is anchored at the earliest wake across all
    // nodes; fold every awake node in before auditing any of them.
    for (sim::NodeId v = 0; v < n; ++v) {
      if (sim.awake(v)) {
        earliest_start_ = std::min(earliest_start_, sim.clock(v).start_time());
      }
    }
  }
  for (sim::NodeId v = 0; v < n; ++v) {
    if (!sim.awake(v)) {
      logical_scratch_[static_cast<std::size_t>(v)] = -sim::kInfinity;
      continue;
    }
    any_awake = true;
    const double L = sim.logical(v);
    logical_scratch_[static_cast<std::size_t>(v)] = L;
    lo = std::min(lo, L);
    hi = std::max(hi, L);

    // Rate audit: instantaneous logical rate = rho_v * h_v.
    const double rate = sim.node(v).rate_multiplier() * sim.clock(v).rate();
    min_logical_rate_ = std::min(min_logical_rate_, rate);
    max_logical_rate_ = std::max(max_logical_rate_, rate);

    // Envelope audit (Condition (1)), relative to wake times: the system
    // envelope is anchored at the earliest wake (the instant L^max was
    // born), each node's lower envelope and catch-up ceiling at its own
    // t_v.  Late-waking nodes legally exceed (1+eps)(t - t_v) while
    // catching up at rate beta, so the per-node upper check needs the
    // Condition (2) ceiling and is enabled by audit_beta.
    if (opt_.audit_epsilon > 0.0) {
      const double eps = opt_.audit_epsilon;
      const double tv = sim.clock(v).start_time();
      double upper_violation = L - (1.0 + eps) * (t - earliest_start_);
      if (opt_.audit_beta > 0.0) {
        upper_violation =
            std::max(upper_violation, L - opt_.audit_beta * (t - tv));
      }
      const double lower_violation = (1.0 - eps) * (t - tv) - L;
      max_envelope_violation_ =
          std::max({max_envelope_violation_, upper_violation, lower_violation});
    }
  }
  if (!any_awake) return;
  const double global = hi - lo;
  max_global_skew_ = std::max(max_global_skew_, global);

  double local = 0.0;
  if (opt_.track_local) {
    for (const auto& [u, w] : sim.topology().edges()) {
      const double Lu = logical_scratch_[static_cast<std::size_t>(u)];
      const double Lw = logical_scratch_[static_cast<std::size_t>(w)];
      if (Lu == -sim::kInfinity || Lw == -sim::kInfinity) continue;
      if (!sim.link_up(u, w)) continue;  // down links are not neighbors
      local = std::max(local, std::abs(Lu - Lw));
    }
    max_local_skew_ = std::max(max_local_skew_, local);
  }

  if (opt_.track_per_distance) {
    for (sim::NodeId v = 0; v < n; ++v) {
      const double Lv = logical_scratch_[static_cast<std::size_t>(v)];
      if (Lv == -sim::kInfinity) continue;
      for (sim::NodeId w = v + 1; w < n; ++w) {
        const double Lw = logical_scratch_[static_cast<std::size_t>(w)];
        if (Lw == -sim::kInfinity) continue;
        const int d = distances_[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)];
        auto& cell = per_distance_[static_cast<std::size_t>(d)];
        cell = std::max(cell, std::abs(Lv - Lw));
      }
    }
  }

  if (opt_.series_interval > 0.0 && t >= next_series_t_) {
    series_.push_back(Sample{t, global, local});
    // Advance on the fixed grid warmup + k * interval: anchoring the next
    // target at `t` would accumulate per-probe jitter and let the series
    // drift off the requested cadence.
    do {
      next_series_t_ += opt_.series_interval;
    } while (next_series_t_ <= t);
  }
}

}  // namespace tbcs::analysis
