#include "analysis/counters.hpp"

namespace tbcs::analysis {

CommunicationReport CommunicationReport::capture(const sim::Simulator& sim) {
  CommunicationReport r;
  r.broadcasts = sim.broadcasts();
  r.transmissions = sim.messages_delivered();
  r.duration = sim.now();
  if (sim.num_nodes() > 0 && sim.now() > 0.0) {
    r.amortized_frequency =
        static_cast<double>(r.broadcasts) / (sim.num_nodes() * sim.now());
  }
  return r;
}

CommunicationReport operator-(const CommunicationReport& late,
                              const CommunicationReport& early) {
  CommunicationReport r;
  r.broadcasts = late.broadcasts - early.broadcasts;
  r.transmissions = late.transmissions - early.transmissions;
  r.duration = late.duration - early.duration;
  if (r.duration > 0.0 && late.broadcasts >= early.broadcasts) {
    // Frequency over the window; caller divides by n if needed.
    r.amortized_frequency = static_cast<double>(r.broadcasts) / r.duration;
  }
  return r;
}

}  // namespace tbcs::analysis
