#include "analysis/counters.hpp"

namespace tbcs::analysis {

CommunicationReport CommunicationReport::capture(const sim::Simulator& sim) {
  CommunicationReport r;
  r.broadcasts = sim.broadcasts();
  r.transmissions = sim.messages_delivered();
  r.duration = sim.now();
  if (sim.num_nodes() > 0 && sim.now() > 0.0) {
    r.amortized_frequency =
        static_cast<double>(r.broadcasts) / (sim.num_nodes() * sim.now());
  }
  return r;
}

CommunicationReport operator-(const CommunicationReport& late,
                              const CommunicationReport& early) {
  CommunicationReport r;
  r.broadcasts = late.broadcasts - early.broadcasts;
  r.transmissions = late.transmissions - early.transmissions;
  r.duration = late.duration - early.duration;
  if (r.duration > 0.0 && late.broadcasts >= early.broadcasts) {
    // Frequency over the window; caller divides by n if needed.
    r.amortized_frequency = static_cast<double>(r.broadcasts) / r.duration;
  }
  return r;
}

QueueReport QueueReport::capture(const sim::Simulator& sim) {
  QueueReport r;
  const sim::EventQueue::Stats& s = sim.queue_stats();
  r.peak_size = s.peak_size;
  r.pushes = s.pushes;
  r.pops = s.pops;
  r.stale_timer_pops = sim.stale_timer_pops();
  if (r.pops > 0) {
    r.stale_share = static_cast<double>(r.stale_timer_pops) /
                    static_cast<double>(r.pops);
  }
  return r;
}

}  // namespace tbcs::analysis
