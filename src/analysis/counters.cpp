#include "analysis/counters.hpp"

#include <cmath>
#include <ostream>

#include "obs/flight_recorder.hpp"

namespace tbcs::analysis {

CommunicationReport CommunicationReport::capture(const sim::Simulator& sim) {
  CommunicationReport r;
  r.broadcasts = sim.broadcasts();
  r.transmissions = sim.messages_delivered();
  r.duration = sim.now();
  if (sim.num_nodes() > 0 && sim.now() > 0.0) {
    r.amortized_frequency =
        static_cast<double>(r.broadcasts) / (sim.num_nodes() * sim.now());
  }
  return r;
}

CommunicationReport operator-(const CommunicationReport& late,
                              const CommunicationReport& early) {
  CommunicationReport r;
  r.broadcasts = late.broadcasts - early.broadcasts;
  r.transmissions = late.transmissions - early.transmissions;
  r.duration = late.duration - early.duration;
  if (r.duration > 0.0 && late.broadcasts >= early.broadcasts) {
    // Frequency over the window; caller divides by n if needed.
    r.amortized_frequency = static_cast<double>(r.broadcasts) / r.duration;
  }
  return r;
}

QueueReport QueueReport::capture(const sim::Simulator& sim) {
  QueueReport r;
  const sim::EventQueue::Stats& s = sim.queue_stats();
  r.peak_size = s.peak_size;
  r.pushes = s.pushes;
  r.pops = s.pops;
  r.timer_arms = sim.timer_arms();
  r.timer_fires = sim.timer_fires();
  r.timer_cancels = sim.timer_cancels();
  if (r.timer_arms > 0) {
    r.cancel_share = static_cast<double>(r.timer_cancels) /
                     static_cast<double>(r.timer_arms);
  }
  return r;
}

void write_stats_json(std::ostream& os, const sim::Simulator& sim,
                      const obs::MetricsRegistry::Snapshot* metrics,
                      const obs::FlightRecorder* recorder,
                      const ObsBackendReport* obs) {
  const CommunicationReport comm = CommunicationReport::capture(sim);
  const QueueReport queue = QueueReport::capture(sim);
  const auto p = os.precision(12);
  os << "{\n  \"communication\": {"
     << "\"broadcasts\": " << comm.broadcasts
     << ", \"transmissions\": " << comm.transmissions
     << ", \"duration\": " << comm.duration
     << ", \"amortized_frequency\": " << comm.amortized_frequency
     << ", \"events\": " << sim.events_processed()
     << ", \"messages_dropped\": " << sim.messages_dropped() << "},\n";
  os << "  \"queue\": {"
     << "\"peak_size\": " << queue.peak_size
     << ", \"pushes\": " << queue.pushes
     << ", \"pops\": " << queue.pops
     << ", \"timer_arms\": " << queue.timer_arms
     << ", \"timer_fires\": " << queue.timer_fires
     << ", \"timer_cancels\": " << queue.timer_cancels
     << ", \"cancel_share\": " << queue.cancel_share << "},\n";
  // Engine shape: requested vs auto-clamped shard count and the partition
  // strategy.  Deliberately partition-*dependent* — byte-comparison gates
  // that check shard-count invariance must filter this block out.
  os << "  \"engine\": {"
     << "\"shards_requested\": " << sim.shards_requested()
     << ", \"shards_effective\": " << sim.shards()
     << ", \"partition\": \""
     << (sim.shards() > 0 ? sim.partition_strategy() : std::string("serial"))
     << "\"},\n";
  // Concrete queue-implementation detail: bucket churn, wheel cascades,
  // reserved capacity.  Partition- and implementation-dependent by nature,
  // so the same byte-comparison gates strip this block too.
  const sim::Simulator::QueueImplInfo qi = sim.queue_impl_info();
  os << "  \"queue_impl\": {"
     << "\"impl\": \""
     << (qi.impl == sim::QueueImpl::kLadder ? "ladder" : "heap")
     << "\", \"resorts\": " << qi.resorts
     << ", \"spills\": " << qi.spills
     << ", \"rebuckets\": " << qi.rebuckets
     << ", \"run_inserts\": " << qi.run_inserts
     << ", \"peak_rungs\": " << qi.peak_rungs
     << ", \"wheel_cascades\": " << qi.wheel_cascades
     << ", \"wheel_rebases\": " << qi.wheel_rebases
     << ", \"queue_capacity\": " << qi.queue_capacity
     << ", \"slab_capacity\": " << qi.slab_capacity
     << ", \"wheel_capacity\": " << qi.wheel_capacity << "},\n";
  // Telemetry history backend.  Unlike "engine"/"queue_impl" this block is
  // engine-invariant by contract (see ObsBackendReport), so the
  // byte-comparison gates keep it.
  if (obs != nullptr) {
    os << "  \"obs\": {"
       << "\"backend\": \"" << obs->backend
       << "\", \"budget_bytes\": " << obs->budget_bytes
       << ", \"error_bound\": ";
    if (std::isfinite(obs->error_bound)) {
      os << obs->error_bound;
    } else {
      os << "null";
    }
    if (obs->backend != "exact") {
      os << ", \"appends\": " << obs->appends
         << ", \"memory_bytes\": " << obs->memory_bytes
         << ", \"windows\": " << obs->windows
         << ", \"coarsest_window_span\": " << obs->coarsest_window_span;
    }
    os << "},\n";
  }
  os << "  \"metrics\": ";
  if (metrics != nullptr) {
    write_metrics_json(os, *metrics);
  } else {
    os << "null";
  }
  os << ",\n  \"trace\": ";
  if (recorder != nullptr) {
    os << "{\"compiled\": " << (obs::kTraceCompiled ? "true" : "false")
       << ", \"capacity\": " << recorder->capacity()
       << ", \"sample_every\": " << recorder->sample_every()
       << ", \"total_recorded\": " << recorder->total_recorded()
       << ", \"held\": " << recorder->size()
       << ", \"overwritten\": " << recorder->overwritten() << "}";
  } else {
    os << "null";
  }
  os << "\n}\n";
  os.precision(p);
}

}  // namespace tbcs::analysis
