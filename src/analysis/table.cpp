#include "analysis/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace tbcs::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int prec) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::integer(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Right-align for easy numeric scanning.
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w;
  total += 2 * (width.empty() ? 0 : width.size() - 1);
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace tbcs::analysis
