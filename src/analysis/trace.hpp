// CSV export for time series and skew profiles, so experiments can be
// post-processed/plotted outside the binary.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/skew_tracker.hpp"

namespace tbcs::analysis {

/// Minimal RFC-4180-ish CSV writer (quotes fields containing separators).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  CsvWriter& row(const std::vector<std::string>& cells);

  static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

/// Writes the tracker's (t, global, local) series as CSV.
void write_series_csv(std::ostream& os, const SkewTracker& tracker);

/// Writes the per-distance skew profile (requires track_per_distance).
void write_distance_profile_csv(std::ostream& os, const SkewTracker& tracker);

/// Writes one logical/hardware snapshot per node.
void write_snapshot_csv(std::ostream& os, const sim::Simulator& sim);

}  // namespace tbcs::analysis
