// Fixed-width console tables for the experiment binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tbcs::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Formats a double with `prec` significant decimals, trimming noise.
  static std::string num(double v, int prec = 3);
  static std::string integer(long long v);

  /// Prints the table with aligned columns and a separator rule.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tbcs::analysis
