#include "analysis/ascii_chart.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>

#include "analysis/table.hpp"

namespace tbcs::analysis {

void render_chart(std::ostream& os, const std::vector<double>& t,
                  const std::vector<double>& value, const ChartOptions& opt) {
  assert(t.size() == value.size());
  if (t.empty()) {
    os << "(no data)\n";
    return;
  }
  const double t_lo = t.front();
  const double t_hi = std::max(t.back(), t_lo + 1e-12);

  // Bucket by column, keep per-column maxima.
  std::vector<double> column(static_cast<std::size_t>(opt.width), 0.0);
  std::vector<bool> seen(static_cast<std::size_t>(opt.width), false);
  for (std::size_t i = 0; i < t.size(); ++i) {
    auto c = static_cast<std::size_t>((t[i] - t_lo) / (t_hi - t_lo) *
                                      (opt.width - 1));
    c = std::min(c, static_cast<std::size_t>(opt.width - 1));
    column[c] = seen[c] ? std::max(column[c], value[i]) : value[i];
    seen[c] = true;
  }

  double y_max = opt.y_max;
  if (y_max <= 0.0) {
    for (std::size_t c = 0; c < column.size(); ++c) {
      if (seen[c]) y_max = std::max(y_max, column[c]);
    }
    y_max = std::max(y_max, opt.reference);
    if (y_max <= 0.0) y_max = 1.0;
    y_max *= 1.05;
  }

  const int ref_row =
      opt.reference > 0.0
          ? static_cast<int>(std::round(opt.reference / y_max * (opt.height - 1)))
          : -1;

  os << opt.label << "  (y max " << Table::num(y_max, 3) << ", t in ["
     << Table::num(t_lo, 1) << ", " << Table::num(t_hi, 1) << "]";
  if (opt.reference > 0.0) {
    os << ", --- = " << Table::num(opt.reference, 3);
  }
  os << ")\n";

  for (int row = opt.height - 1; row >= 0; --row) {
    os << (row == ref_row ? '-' : ' ') << '|';
    for (int c = 0; c < opt.width; ++c) {
      const auto idx = static_cast<std::size_t>(c);
      char ch = row == ref_row ? '-' : ' ';
      if (seen[idx]) {
        const int bar =
            static_cast<int>(std::round(column[idx] / y_max * (opt.height - 1)));
        if (bar == row) {
          ch = '*';
        } else if (bar > row) {
          ch = row == ref_row ? '+' : '.';
        }
      }
      os << ch;
    }
    os << '\n';
  }
  os << " +";
  for (int c = 0; c < opt.width; ++c) os << '-';
  os << '\n';
}

void render_skew_chart(std::ostream& os,
                       const std::vector<SkewTracker::Sample>& series,
                       bool local, const ChartOptions& opt) {
  std::vector<double> t;
  std::vector<double> v;
  t.reserve(series.size());
  v.reserve(series.size());
  for (const auto& s : series) {
    t.push_back(s.t);
    v.push_back(local ? s.local_skew : s.global_skew);
  }
  render_chart(os, t, v, opt);
}

}  // namespace tbcs::analysis
