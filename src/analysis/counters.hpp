// Communication-cost accounting (Section 6).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace tbcs::obs {
class FlightRecorder;
}

namespace tbcs::analysis {

/// Snapshot of the communication counters of a simulator, with the
/// amortized per-node message frequency of Section 6.1.
struct CommunicationReport {
  std::uint64_t broadcasts = 0;          // send events (one per Algorithm 1/2 send)
  std::uint64_t transmissions = 0;       // per-link message deliveries
  double duration = 0.0;                 // observed real-time span
  double amortized_frequency = 0.0;      // broadcasts / (n * duration)

  static CommunicationReport capture(const sim::Simulator& sim);
};

/// Difference of two snapshots (for measuring a window).
CommunicationReport operator-(const CommunicationReport& late,
                              const CommunicationReport& early);

/// Event-queue health: high-water mark, churn, and the timer-wheel
/// traffic (arms/fires/cancels; timers never enter the event queue).  A
/// cancel share near 1 means timers are re-armed much faster than they
/// fire — dead weight the wheel removes in O(1) where the old engine
/// popped stale heap entries.  All fields are canonical (identical across
/// shard counts and queue implementations); reserved/peak capacity of the
/// concrete implementation lands in the separate "queue_impl" stats
/// block, which the byte-compare gates strip.
struct QueueReport {
  std::size_t peak_size = 0;
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t timer_arms = 0;
  std::uint64_t timer_fires = 0;
  std::uint64_t timer_cancels = 0;
  double cancel_share = 0.0;  // timer_cancels / timer_arms

  static QueueReport capture(const sim::Simulator& sim);
};

/// Telemetry history-backend summary for the "obs" stats block.  Every
/// field here must be engine-invariant (identical across --shards /
/// --queue / --jobs): backend and budget are configuration, and the stair
/// figures are pure functions of the grid-sampled append sequence, which
/// the probe grid pins to k * delay in every engine.
struct ObsBackendReport {
  std::string backend;           // "exact" | "stair"
  std::size_t budget_bytes = 0;  // per-stream stair budget
  double error_bound = 0.0;      // advertised |exact - reported| bound (NaN:
                                 // not quantifiable, serialized as null)
  // Stair-only figures (emitted when backend != "exact").
  std::uint64_t appends = 0;        // grid samples recorded
  std::size_t memory_bytes = 0;     // bytes retained across the stores
  std::size_t windows = 0;          // retained windows across the stores
  double coarsest_window_span = 0.0;  // widest merged window (time units)
};

/// One JSON object combining the communication report, the queue report,
/// and (when given) a metrics-registry snapshot, flight-recorder trace
/// info, and the telemetry-backend report — what `tbcs_sim --stats`
/// prints on exit:
///   {"communication": {...}, "queue": {...}, "engine": {...},
///    "queue_impl": {...}, "obs": {...}?,
///    "metrics": {...} | null, "trace": {...} | null}
/// The "obs" block is present only when `obs` is non-null.
void write_stats_json(std::ostream& os, const sim::Simulator& sim,
                      const obs::MetricsRegistry::Snapshot* metrics = nullptr,
                      const obs::FlightRecorder* recorder = nullptr,
                      const ObsBackendReport* obs = nullptr);

}  // namespace tbcs::analysis
