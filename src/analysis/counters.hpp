// Communication-cost accounting (Section 6).
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"

namespace tbcs::analysis {

/// Snapshot of the communication counters of a simulator, with the
/// amortized per-node message frequency of Section 6.1.
struct CommunicationReport {
  std::uint64_t broadcasts = 0;          // send events (one per Algorithm 1/2 send)
  std::uint64_t transmissions = 0;       // per-link message deliveries
  double duration = 0.0;                 // observed real-time span
  double amortized_frequency = 0.0;      // broadcasts / (n * duration)

  static CommunicationReport capture(const sim::Simulator& sim);
};

/// Difference of two snapshots (for measuring a window).
CommunicationReport operator-(const CommunicationReport& late,
                              const CommunicationReport& early);

}  // namespace tbcs::analysis
