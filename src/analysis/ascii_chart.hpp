// Terminal rendering of skew time series: quick visual feedback for the
// CLI tool and the examples without any plotting dependency.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/skew_tracker.hpp"

namespace tbcs::analysis {

struct ChartOptions {
  int width = 72;   // columns for the data area
  int height = 12;  // rows
  std::string label = "skew";
  double y_max = 0.0;       // 0 = auto-scale to the data
  double reference = 0.0;   // draw a horizontal marker (e.g. a bound); 0 = off
};

/// Renders (t, value) points as a scatter/step chart.  Points are bucketed
/// into columns by time and each column shows the bucket maximum.
void render_chart(std::ostream& os, const std::vector<double>& t,
                  const std::vector<double>& value, const ChartOptions& opt);

/// Convenience: chart a tracker's series (global or local skew), with the
/// reference line typically set to the theory bound.
void render_skew_chart(std::ostream& os,
                       const std::vector<SkewTracker::Sample>& series,
                       bool local, const ChartOptions& opt);

}  // namespace tbcs::analysis
