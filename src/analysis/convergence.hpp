// Reconvergence measurement: after a perturbation (partition heal, churn,
// parameter change), how long until the skews re-enter a target band and
// stay there?
#pragma once

#include <vector>

#include "analysis/skew_tracker.hpp"

namespace tbcs::analysis {

/// Scans a skew time series (from SkewTracker::series()) for the last
/// time the value exceeded `threshold`; everything after is "settled".
/// Returns the settle time, or `not_settled` (default -1) if the series
/// ends above the threshold.
inline double settle_time(const std::vector<SkewTracker::Sample>& series,
                          double threshold, bool local,
                          double not_settled = -1.0) {
  double last_violation = 0.0;
  bool violated = false;
  bool ever_settled = false;
  for (const auto& s : series) {
    const double value = local ? s.local_skew : s.global_skew;
    if (value > threshold) {
      last_violation = s.t;
      violated = true;
      ever_settled = false;
    } else {
      ever_settled = true;
    }
  }
  if (!ever_settled) return not_settled;
  return violated ? last_violation : 0.0;
}

/// Peak value of the series within [t_lo, t_hi].
inline double peak_in_window(const std::vector<SkewTracker::Sample>& series,
                             double t_lo, double t_hi, bool local) {
  double peak = 0.0;
  for (const auto& s : series) {
    if (s.t < t_lo || s.t > t_hi) continue;
    const double value = local ? s.local_skew : s.global_skew;
    if (value > peak) peak = value;
  }
  return peak;
}

}  // namespace tbcs::analysis
