#include "baselines/averaging_algorithm.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace tbcs::baselines {

namespace {
constexpr double kTiny = 1e-9;
}

AveragingNode::AveragingNode(AveragingOptions opt) : opt_(opt) {
  assert(opt_.h0 > 0.0 && opt_.mu > 0.0);
}

double AveragingNode::midpoint() const {
  if (neighbors_.empty()) return L_;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& nb : neighbors_) {
    lo = std::min(lo, nb.est);
    hi = std::max(hi, nb.est);
  }
  return (lo + hi) / 2.0;
}

double AveragingNode::multiplier() const {
  return (midpoint() - L_ > kTiny) ? 1.0 + opt_.mu : 1.0;
}

void AveragingNode::advance_to(sim::ClockValue h_now) {
  const double dh = h_now - h_last_;
  if (dh <= 0.0) {
    h_last_ = h_now;
    return;
  }
  // While chasing, the midpoint itself advances at rate h (the estimates
  // do), so the gap closes at mu * h per hardware unit; do not overshoot.
  const bool chasing = multiplier() > 1.0;
  const double advanced_midpoint = midpoint() + dh;
  L_ += multiplier() * dh;
  for (auto& nb : neighbors_) nb.est += dh;
  if (chasing) L_ = std::min(L_, advanced_midpoint);
  h_last_ = h_now;
}

void AveragingNode::on_wake(sim::NodeServices& sv, const sim::Message* by_message) {
  awake_ = true;
  h_last_ = sv.hardware_now();
  L_ = 0.0;
  if (by_message != nullptr) {
    neighbors_.push_back(
        NeighborEstimate{by_message->sender, by_message->logical, by_message->logical});
  }
  do_send(sv);
  reschedule(sv);
}

void AveragingNode::on_message(sim::NodeServices& sv, const sim::Message& m) {
  advance_to(sv.hardware_now());
  bool found = false;
  for (auto& nb : neighbors_) {
    if (nb.id == m.sender) {
      if (m.logical > nb.raw_max) {
        nb.raw_max = m.logical;
        nb.est = m.logical;
      }
      found = true;
      break;
    }
  }
  if (!found) {
    neighbors_.push_back(NeighborEstimate{m.sender, m.logical, m.logical});
  }
  reschedule(sv);
}

void AveragingNode::on_timer(sim::NodeServices& sv, int slot) {
  advance_to(sv.hardware_now());
  if (slot == kSendTimer) do_send(sv);
  reschedule(sv);
}

void AveragingNode::do_send(sim::NodeServices& sv) {
  ++sends_;
  sim::Message m;
  m.sender = sv.id();
  m.logical = L_;
  m.logical_max = L_;
  sv.broadcast(m);
  sv.set_timer(kSendTimer, h_last_ + opt_.h0);
}

void AveragingNode::reschedule(sim::NodeServices& sv) {
  const double gap = midpoint() - L_;
  if (gap > kTiny) {
    // Gap closes at mu per hardware unit (midpoint and L both gain h;
    // the chase adds mu * h).
    sv.set_timer(kReachTimer, h_last_ + gap / opt_.mu);
  } else {
    sv.cancel_timer(kReachTimer);
  }
}

sim::ClockValue AveragingNode::logical_at(sim::ClockValue hardware_now) const {
  if (!awake_) return 0.0;
  return L_ + multiplier() * (hardware_now - h_last_);
}

double AveragingNode::rate_multiplier() const {
  return awake_ ? multiplier() : 1.0;
}

}  // namespace tbcs::baselines
