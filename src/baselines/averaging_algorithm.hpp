// Midpoint-averaging baseline.
//
// Each node steers its logical clock toward the midpoint of the largest
// and smallest estimated neighbor clock.  Section 4.2 points out that this
// "simpler approach ... fails to achieve even a sublinear bound on the
// local skew" (cf. Locher and Wattenhofer [2006]); the baseline exists to
// demonstrate that failure empirically (experiment E9).
//
// The node is purely local: it floods no global maximum, so distant skews
// are invisible to it.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/node.hpp"

namespace tbcs::baselines {

struct AveragingOptions {
  /// Catch-up rate headroom when behind the midpoint.
  double mu = 0.5;

  /// Hardware time between periodic broadcasts.
  double h0 = 5.0;
};

class AveragingNode final : public sim::Node {
 public:
  explicit AveragingNode(AveragingOptions opt = {});

  void on_wake(sim::NodeServices& sv, const sim::Message* by_message) override;
  void on_message(sim::NodeServices& sv, const sim::Message& m) override;
  void on_timer(sim::NodeServices& sv, int slot) override;
  sim::ClockValue logical_at(sim::ClockValue hardware_now) const override;
  double rate_multiplier() const override;

  std::uint64_t sends() const { return sends_; }

 private:
  enum TimerSlot : int { kSendTimer = 0, kReachTimer = 1 };

  struct NeighborEstimate {
    sim::NodeId id;
    double est;
    double raw_max;
  };

  void advance_to(sim::ClockValue h_now);
  double midpoint() const;  // (max est + min est) / 2
  double multiplier() const;
  void do_send(sim::NodeServices& sv);
  void reschedule(sim::NodeServices& sv);

  AveragingOptions opt_;
  bool awake_ = false;
  double h_last_ = 0.0;
  double L_ = 0.0;
  std::vector<NeighborEstimate> neighbors_;
  std::uint64_t sends_ = 0;
};

}  // namespace tbcs::baselines
