// Maximum-propagation baseline (the classical algorithm of Srikanth and
// Toueg [1987], discussed in Section 2).
//
// Nodes flood the largest known clock value and set (or chase) their
// logical clock toward it.  This gives an asymptotically optimal *global*
// skew of O(D T), but no gradient property: in jump mode the local skew is
// Theta(D T) in the worst case (e.g. at the frontier of the initialization
// flood a freshly woken node jumps from 0 to ~(1+eps) d T while its
// not-yet-woken neighbor stays at 0).
#pragma once

#include <cstdint>

#include "sim/node.hpp"

namespace tbcs::baselines {

struct MaxAlgorithmOptions {
  /// Jump directly to the received maximum (beta = infinity, the faithful
  /// Srikanth-Toueg behavior).  If false, chase it at rate (1 + mu) h.
  bool jump = true;

  /// Catch-up rate headroom when jump == false.
  double mu = 0.5;

  /// Hardware time between periodic broadcasts.
  double h0 = 5.0;
};

class MaxAlgorithmNode final : public sim::Node {
 public:
  explicit MaxAlgorithmNode(MaxAlgorithmOptions opt = {});

  void on_wake(sim::NodeServices& sv, const sim::Message* by_message) override;
  void on_message(sim::NodeServices& sv, const sim::Message& m) override;
  void on_timer(sim::NodeServices& sv, int slot) override;
  sim::ClockValue logical_at(sim::ClockValue hardware_now) const override;
  double rate_multiplier() const override;

  std::uint64_t sends() const { return sends_; }

 private:
  enum TimerSlot : int { kSendTimer = 0, kCatchUpTimer = 1 };

  void advance_to(sim::ClockValue h_now);
  double multiplier() const;
  void handle_estimate(sim::NodeServices& sv, double value);
  void do_send(sim::NodeServices& sv);
  void reschedule(sim::NodeServices& sv);

  MaxAlgorithmOptions opt_;
  bool awake_ = false;
  double h_last_ = 0.0;
  double L_ = 0.0;     // logical clock at h_last_
  double Lmax_ = 0.0;  // largest known clock value, rate h
  std::uint64_t sends_ = 0;
};

}  // namespace tbcs::baselines
