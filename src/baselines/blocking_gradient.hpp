// Blocking-gradient baseline, modeled on the "oblivious gradient clock
// synchronization" algorithm of Locher and Wattenhofer [2006] — the best
// known local-skew upper bound, O(sqrt(eps D) T), before the paper's
// O(log D).
//
// Rule: chase the flooded maximum (like the max algorithm), but *block*
// — fall back to the hardware rate — whenever some neighbor's estimated
// clock trails by more than the blocking gap B.  With B = Theta(sqrt(eps
// D) T) this caps the local skew at ~B + estimate staleness while keeping
// the global skew asymptotically optimal; the square-root shape is what
// experiment E9 contrasts with A^opt's logarithm.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/node.hpp"

namespace tbcs::baselines {

struct BlockingGradientOptions {
  /// Blocking gap B: never run fast while a neighbor trails by more.
  double gap = 4.0;

  /// Catch-up rate headroom.
  double mu = 0.5;

  /// Hardware time between periodic broadcasts.
  double h0 = 5.0;

  /// Recommended gap Theta(sqrt(eps * D) * T) (+ the staleness floor).
  static double recommended_gap(double eps, int diameter, double delay,
                                double h0);
};

class BlockingGradientNode final : public sim::Node {
 public:
  explicit BlockingGradientNode(BlockingGradientOptions opt = {});

  void on_wake(sim::NodeServices& sv, const sim::Message* by_message) override;
  void on_message(sim::NodeServices& sv, const sim::Message& m) override;
  void on_timer(sim::NodeServices& sv, int slot) override;
  void on_link_change(sim::NodeServices& sv, sim::NodeId neighbor,
                      bool up) override;
  sim::ClockValue logical_at(sim::ClockValue hardware_now) const override;
  double rate_multiplier() const override;

  std::uint64_t sends() const { return sends_; }
  bool blocked() const;

 private:
  enum TimerSlot : int { kSendTimer = 0, kReevaluateTimer = 1 };

  struct NeighborEstimate {
    sim::NodeId id;
    double est;      // advanced at the hardware rate
    double raw_max;  // update guard against reordering
  };

  void advance_to(sim::ClockValue h_now);
  double multiplier() const;  // 1 + mu while chasing and unblocked
  double slowest_neighbor() const;
  void do_send(sim::NodeServices& sv);
  void reschedule(sim::NodeServices& sv);

  BlockingGradientOptions opt_;
  bool awake_ = false;
  double h_last_ = 0.0;
  double L_ = 0.0;
  double Lmax_ = 0.0;  // flooded maximum estimate, rate h
  std::vector<NeighborEstimate> neighbors_;
  std::uint64_t sends_ = 0;
};

}  // namespace tbcs::baselines
