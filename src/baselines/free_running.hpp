// No synchronization at all: L_v = H_v.  Control baseline; its global and
// local skews grow linearly with elapsed time under drift (rate 2 eps).
#pragma once

#include "sim/node.hpp"

namespace tbcs::baselines {

class FreeRunningNode final : public sim::Node {
 public:
  void on_wake(sim::NodeServices& sv, const sim::Message* by_message) override;
  void on_message(sim::NodeServices& sv, const sim::Message& m) override;
  void on_timer(sim::NodeServices& sv, int slot) override;
  sim::ClockValue logical_at(sim::ClockValue hardware_now) const override;
  double rate_multiplier() const override { return 1.0; }

 private:
  bool awake_ = false;
};

}  // namespace tbcs::baselines
