#include "baselines/blocking_gradient.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace tbcs::baselines {

namespace {
constexpr double kTiny = 1e-9;
}

double BlockingGradientOptions::recommended_gap(double eps, int diameter,
                                                double delay, double h0) {
  // sqrt(eps D) T plus the unavoidable estimate staleness per hop.
  return std::sqrt(eps * diameter) * delay + delay + (2.0 * eps) * h0;
}

BlockingGradientNode::BlockingGradientNode(BlockingGradientOptions opt)
    : opt_(opt) {
  assert(opt_.gap > 0.0 && opt_.mu > 0.0 && opt_.h0 > 0.0);
}

double BlockingGradientNode::slowest_neighbor() const {
  double lo = std::numeric_limits<double>::infinity();
  for (const auto& nb : neighbors_) lo = std::min(lo, nb.est);
  return lo;
}

double BlockingGradientNode::multiplier() const {
  const bool behind_max = Lmax_ - L_ > kTiny;
  const bool blocked = L_ - slowest_neighbor() >= opt_.gap - kTiny;
  return (behind_max && !blocked) ? 1.0 + opt_.mu : 1.0;
}

bool BlockingGradientNode::blocked() const {
  return L_ - slowest_neighbor() >= opt_.gap - kTiny;
}

void BlockingGradientNode::advance_to(sim::ClockValue h_now) {
  const double dh = h_now - h_last_;
  if (dh <= 0.0) {
    h_last_ = h_now;
    return;
  }
  // The multiplier is constant across the interval: the re-evaluate timer
  // fires at the first instant it could flip.
  L_ += multiplier() * dh;
  Lmax_ += dh;
  for (auto& nb : neighbors_) nb.est += dh;
  L_ = std::min(L_, Lmax_);  // never overshoot the flooded maximum
  h_last_ = h_now;
}

void BlockingGradientNode::on_wake(sim::NodeServices& sv,
                                   const sim::Message* by_message) {
  awake_ = true;
  h_last_ = sv.hardware_now();
  L_ = 0.0;
  Lmax_ = 0.0;
  if (by_message != nullptr) {
    Lmax_ = std::max(by_message->logical_max, by_message->logical);
    neighbors_.push_back(NeighborEstimate{by_message->sender,
                                          by_message->logical,
                                          by_message->logical});
  }
  do_send(sv);
  reschedule(sv);
}

void BlockingGradientNode::on_message(sim::NodeServices& sv,
                                      const sim::Message& m) {
  advance_to(sv.hardware_now());
  const double flooded = std::max(m.logical, m.logical_max);
  const bool forward = flooded > Lmax_ + kTiny;
  Lmax_ = std::max(Lmax_, flooded);
  bool found = false;
  for (auto& nb : neighbors_) {
    if (nb.id == m.sender) {
      if (m.logical > nb.raw_max) {
        nb.raw_max = m.logical;
        nb.est = m.logical;
      }
      found = true;
      break;
    }
  }
  if (!found) {
    neighbors_.push_back(NeighborEstimate{m.sender, m.logical, m.logical});
  }
  if (forward) do_send(sv);
  reschedule(sv);
}

void BlockingGradientNode::on_timer(sim::NodeServices& sv, int slot) {
  advance_to(sv.hardware_now());
  if (slot == kSendTimer) do_send(sv);
  reschedule(sv);
}

void BlockingGradientNode::on_link_change(sim::NodeServices& sv,
                                          sim::NodeId neighbor, bool up) {
  if (up || !awake_) return;
  advance_to(sv.hardware_now());
  for (std::size_t i = 0; i < neighbors_.size(); ++i) {
    if (neighbors_[i].id == neighbor) {
      neighbors_[i] = neighbors_.back();
      neighbors_.pop_back();
      break;
    }
  }
  reschedule(sv);
}

void BlockingGradientNode::do_send(sim::NodeServices& sv) {
  ++sends_;
  sim::Message m;
  m.sender = sv.id();
  m.logical = L_;
  m.logical_max = Lmax_;
  sv.broadcast(m);
  sv.set_timer(kSendTimer, h_last_ + opt_.h0);
}

void BlockingGradientNode::reschedule(sim::NodeServices& sv) {
  if (multiplier() > 1.0) {
    // First instant the fast mode could end: catching the maximum, or the
    // slowest neighbor trailing by the full gap (the gap to both grows at
    // mu per hardware unit while running fast).
    const double until_caught = Lmax_ - L_;
    const double until_blocked = opt_.gap - (L_ - slowest_neighbor());
    const double budget = std::min(until_caught, until_blocked);
    sv.set_timer(kReevaluateTimer, h_last_ + budget / opt_.mu);
  } else {
    sv.cancel_timer(kReevaluateTimer);
  }
}

sim::ClockValue BlockingGradientNode::logical_at(
    sim::ClockValue hardware_now) const {
  if (!awake_) return 0.0;
  const double dh = hardware_now - h_last_;
  return std::min(L_ + multiplier() * dh, Lmax_ + dh);
}

double BlockingGradientNode::rate_multiplier() const {
  return awake_ ? multiplier() : 1.0;
}

}  // namespace tbcs::baselines
