#include "baselines/max_algorithm.hpp"

#include <algorithm>
#include <cassert>

namespace tbcs::baselines {

namespace {
constexpr double kTiny = 1e-9;
}

MaxAlgorithmNode::MaxAlgorithmNode(MaxAlgorithmOptions opt) : opt_(opt) {
  assert(opt_.h0 > 0.0);
  assert(opt_.mu > 0.0);
}

double MaxAlgorithmNode::multiplier() const {
  if (opt_.jump) return 1.0;
  return (Lmax_ - L_ > kTiny) ? 1.0 + opt_.mu : 1.0;
}

void MaxAlgorithmNode::advance_to(sim::ClockValue h_now) {
  const double dh = h_now - h_last_;
  if (dh <= 0.0) {
    h_last_ = h_now;
    return;
  }
  L_ += multiplier() * dh;
  Lmax_ += dh;
  L_ = std::min(L_, Lmax_);  // the chase stops exactly at the target
  h_last_ = h_now;
}

void MaxAlgorithmNode::on_wake(sim::NodeServices& sv,
                               const sim::Message* by_message) {
  awake_ = true;
  h_last_ = sv.hardware_now();
  L_ = 0.0;
  Lmax_ = 0.0;
  if (by_message != nullptr) {
    Lmax_ = std::max({Lmax_, by_message->logical_max, by_message->logical});
    if (opt_.jump) L_ = Lmax_;
  }
  do_send(sv);
  reschedule(sv);
}

void MaxAlgorithmNode::handle_estimate(sim::NodeServices& sv, double value) {
  if (value > Lmax_ + kTiny) {
    Lmax_ = value;
    if (opt_.jump) L_ = Lmax_;
    do_send(sv);  // forward the new maximum immediately
  }
}

void MaxAlgorithmNode::on_message(sim::NodeServices& sv, const sim::Message& m) {
  advance_to(sv.hardware_now());
  handle_estimate(sv, std::max(m.logical, m.logical_max));
  reschedule(sv);
}

void MaxAlgorithmNode::on_timer(sim::NodeServices& sv, int slot) {
  advance_to(sv.hardware_now());
  if (slot == kSendTimer) do_send(sv);
  // kCatchUpTimer: advance_to already pinned L_ to Lmax_.
  reschedule(sv);
}

void MaxAlgorithmNode::do_send(sim::NodeServices& sv) {
  ++sends_;
  sim::Message m;
  m.sender = sv.id();
  m.logical = L_;
  m.logical_max = Lmax_;
  sv.broadcast(m);
  sv.set_timer(kSendTimer, h_last_ + opt_.h0);
}

void MaxAlgorithmNode::reschedule(sim::NodeServices& sv) {
  if (!opt_.jump && Lmax_ - L_ > kTiny) {
    // The chase ends (multiplier drops to 1) when L meets Lmax.
    sv.set_timer(kCatchUpTimer, h_last_ + (Lmax_ - L_) / opt_.mu);
  } else {
    sv.cancel_timer(kCatchUpTimer);
  }
}

sim::ClockValue MaxAlgorithmNode::logical_at(sim::ClockValue hardware_now) const {
  if (!awake_) return 0.0;
  const double dh = hardware_now - h_last_;
  return std::min(L_ + multiplier() * dh, Lmax_ + dh);
}

double MaxAlgorithmNode::rate_multiplier() const {
  return awake_ ? multiplier() : 1.0;
}

}  // namespace tbcs::baselines
