#include "baselines/free_running.hpp"

namespace tbcs::baselines {

void FreeRunningNode::on_wake(sim::NodeServices& sv,
                              const sim::Message* /*by_message*/) {
  awake_ = true;
  // Propagate the initialization flood so the rest of the system wakes.
  sim::Message m;
  m.sender = sv.id();
  sv.broadcast(m);
}

void FreeRunningNode::on_message(sim::NodeServices&, const sim::Message&) {}

void FreeRunningNode::on_timer(sim::NodeServices&, int) {}

sim::ClockValue FreeRunningNode::logical_at(sim::ClockValue hardware_now) const {
  return awake_ ? hardware_now : 0.0;
}

}  // namespace tbcs::baselines
