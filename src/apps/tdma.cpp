#include "apps/tdma.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tbcs::apps {

TdmaSchedule::TdmaSchedule(int num_slots, double slot_length,
                           double guard_band)
    : num_slots_(num_slots),
      slot_length_(slot_length),
      guard_band_(guard_band) {
  if (num_slots < 1 || slot_length <= 0.0 || guard_band < 0.0) {
    throw std::invalid_argument("TdmaSchedule: bad geometry");
  }
  if (2.0 * guard_band >= slot_length) {
    throw std::invalid_argument(
        "TdmaSchedule: guard bands leave no payload airtime; increase the "
        "slot length or improve the synchronization bound");
  }
}

TdmaSchedule TdmaSchedule::plan(const core::SyncParams& params, int diameter,
                                double eps, double delay, int num_slots,
                                double slot_length) {
  // A neighbor's clock may disagree by up to the local-skew bound, so a
  // transmission that keeps this distance from the slot edges (on its own
  // clock) cannot leak into a neighbor's slot (on the neighbor's clock).
  const double guard = params.local_skew_bound(diameter, eps, delay);
  return TdmaSchedule(num_slots, slot_length, guard);
}

int TdmaSchedule::slot_at(double logical) const {
  const double round = round_length();
  double in_round = std::fmod(logical, round);
  if (in_round < 0.0) in_round += round;
  const int slot = static_cast<int>(in_round / slot_length_);
  return slot >= num_slots_ ? num_slots_ - 1 : slot;  // fp edge
}

double TdmaSchedule::offset_in_slot(double logical) const {
  const double round = round_length();
  double in_round = std::fmod(logical, round);
  if (in_round < 0.0) in_round += round;
  return in_round - slot_at(logical) * slot_length_;
}

bool TdmaSchedule::in_guard(double logical) const {
  const double off = offset_in_slot(logical);
  return off < guard_band_ || off > slot_length_ - guard_band_;
}

bool TdmaSchedule::may_transmit(double logical, int slot) const {
  assert(slot >= 0 && slot < num_slots_);
  return slot_at(logical) == slot && !in_guard(logical);
}

double TdmaSchedule::utilization() const {
  return 1.0 - 2.0 * guard_band_ / slot_length_;
}

bool TdmaSchedule::collides(const TdmaSchedule& schedule, double logical_u,
                            int slot_u, double logical_w, int slot_w) {
  if (slot_u == slot_w) return false;  // same slot: by design, not a collision
  return schedule.may_transmit(logical_u, slot_u) &&
         schedule.may_transmit(logical_w, slot_w);
}

}  // namespace tbcs::apps
