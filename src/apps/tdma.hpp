// TDMA slot scheduling on top of synchronized logical clocks — the
// paper's motivating application (footnote 1: locally well-synchronized
// time slots in wireless networks).
//
// A round of `num_slots` slots repeats forever on the logical time axis.
// A node owning slot s transmits during slot s of every round, but backs
// off within the guard band around the slot boundaries.  Two *neighbors*
// with different slots can only collide if their logical clocks disagree
// by more than the guard band — so sizing the guard band by the paper's
// local-skew bound (Theorem 5.10) provably excludes collisions, and the
// sub-linear local skew is what keeps the guard band (and the wasted
// airtime) small even in large networks.
#pragma once

#include "core/params.hpp"

namespace tbcs::apps {

class TdmaSchedule {
 public:
  /// A schedule with `num_slots` slots of `slot_length` logical time each
  /// and symmetric guard bands of `guard_band` at both slot edges.
  /// Requires 2 * guard_band < slot_length (otherwise no airtime is left).
  TdmaSchedule(int num_slots, double slot_length, double guard_band);

  /// Sizes the guard band from the Theorem 5.10 local-skew bound: the
  /// provably collision-free schedule for an A^opt-synchronized network
  /// of the given diameter.
  static TdmaSchedule plan(const core::SyncParams& params, int diameter,
                           double eps, double delay, int num_slots,
                           double slot_length);

  int num_slots() const { return num_slots_; }
  double slot_length() const { return slot_length_; }
  double guard_band() const { return guard_band_; }
  double round_length() const { return slot_length_ * num_slots_; }

  /// Index of the slot containing logical time `l`.
  int slot_at(double logical) const;

  /// Position of `l` within its slot, in [0, slot_length).
  double offset_in_slot(double logical) const;

  /// True if `l` lies within a guard band (no transmissions allowed).
  bool in_guard(double logical) const;

  /// True if the owner of `slot` may transmit at logical time `l`.
  bool may_transmit(double logical, int slot) const;

  /// Fraction of airtime usable for payload: 1 - 2*guard/slot.
  double utilization() const;

  /// Collision predicate for two *neighboring* nodes with different
  /// slots: both transmitting at the same real instant, given their
  /// logical clock readings at that instant.
  static bool collides(const TdmaSchedule& schedule, double logical_u,
                       int slot_u, double logical_w, int slot_w);

 private:
  int num_slots_;
  double slot_length_;
  double guard_band_;
};

}  // namespace tbcs::apps
