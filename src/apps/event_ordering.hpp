// Certified event ordering from synchronized logical clocks.
//
// With a proven bound S on the clock skew between two nodes, timestamped
// events can be *certified*: if two events carry logical timestamps more
// than S apart, the earlier-stamped one definitely happened first in real
// time.  The gradient property makes the certificates distance-aware —
// events on neighboring nodes are orderable at far finer granularity
// (local skew, O(T log D)) than events across the network (global skew,
// O(D T)).  This is the classical TrueTime-style interval reasoning,
// driven entirely by the paper's worst-case bounds.
#pragma once

#include "core/params.hpp"

namespace tbcs::apps {

/// The possible outcomes of an ordering query.
enum class Order {
  kDefinitelyBefore,  // the first event preceded the second in real time
  kDefinitelyAfter,   // ... followed ...
  kConcurrent,        // not certifiable from the timestamps alone
};

struct TimestampedEvent {
  double logical = 0.0;  // L_v when the event occurred
  int node = 0;          // where it occurred
};

class OrderingCertifier {
 public:
  /// `params` must be the parameters the deployment actually runs, and
  /// `diameter`, `eps`, `delay` the (bounds on the) system properties —
  /// the same inputs as the skew-bound formulas.
  OrderingCertifier(const core::SyncParams& params, int diameter, double eps,
                    double delay);

  /// Skew bound applicable to two nodes at hop distance `d` (d = 0 means
  /// the same node: timestamps are exact).
  double skew_bound(int distance) const;

  /// Certified order of two events whose nodes are `distance` hops apart.
  Order order(const TimestampedEvent& a, const TimestampedEvent& b,
              int distance) const;

  /// The smallest timestamp difference this pair-distance can certify.
  double certifiable_granularity(int distance) const {
    return skew_bound(distance);
  }

 private:
  core::SyncParams params_;
  int diameter_;
  double eps_;
  double delay_;
};

}  // namespace tbcs::apps
