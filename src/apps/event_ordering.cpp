#include "apps/event_ordering.hpp"

#include <cmath>
#include <stdexcept>

namespace tbcs::apps {

OrderingCertifier::OrderingCertifier(const core::SyncParams& params,
                                     int diameter, double eps, double delay)
    : params_(params), diameter_(diameter), eps_(eps), delay_(delay) {
  params_.check();
  if (diameter < 1 || eps <= 0.0 || delay <= 0.0) {
    throw std::invalid_argument("OrderingCertifier: bad system properties");
  }
}

double OrderingCertifier::skew_bound(int distance) const {
  if (distance <= 0) return 0.0;  // same node: one clock, exact order
  return params_.distance_skew_bound(std::min(distance, diameter_), diameter_,
                                     eps_, delay_);
}

Order OrderingCertifier::order(const TimestampedEvent& a,
                               const TimestampedEvent& b, int distance) const {
  const double bound = skew_bound(distance);
  const double gap = b.logical - a.logical;
  // Logical clocks are monotone, so on the same node any positive gap
  // certifies; across nodes the gap must clear the worst-case skew.
  if (gap > bound) return Order::kDefinitelyBefore;
  if (-gap > bound) return Order::kDefinitelyAfter;
  return Order::kConcurrent;
}

}  // namespace tbcs::apps
