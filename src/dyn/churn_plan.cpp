#include "dyn/churn_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.hpp"

namespace tbcs::dyn {

namespace {

// Entity-stream tags.  Node streams use the id, edge streams the edge
// index in the upper half of the tag space, selection draws a third
// block; all mixed with the seed through SplitMix64 so streams are
// independent of consumption order (the FaultPlan discipline).
constexpr std::uint64_t kNodeTag = 0x1000000000000000ULL;
constexpr std::uint64_t kEdgeTag = 0x2000000000000000ULL;
constexpr std::uint64_t kExtraTag = 0x3000000000000000ULL;

sim::Rng entity_rng(std::uint64_t seed, std::uint64_t tag) {
  sim::SplitMix64 sm(seed ^ (tag * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL));
  sm.next();
  return sim::Rng(sm.next());
}

double exp_draw(sim::Rng& rng, double mean) {
  // next_double() < 1 strictly, so the log argument stays positive.
  return -std::log(1.0 - rng.next_double()) * mean;
}

/// Alternating-renewal toggle times on [t0, t1] for one entity.
/// `up_mean` is the mean present/inserted holding time (1/rate),
/// `down_mean` the mean absent/removed time.  Returns strictly
/// increasing times; even positions (0, 2, ...) switch the entity *off*,
/// odd ones back *on*, starting from the `starts_up` state (for an
/// entity starting down, position 0 switches it on instead).  The final
/// toggle is clamped to t1 so the entity ends the window up.
std::vector<double> renewal_toggles(sim::Rng& rng, bool starts_up, double t0,
                                    double t1, double up_mean,
                                    double down_mean) {
  std::vector<double> toggles;
  bool up = starts_up;
  double t = t0;
  for (;;) {
    t += exp_draw(rng, up ? up_mean : down_mean);
    if (t >= t1) {
      if (!up) toggles.push_back(t1);  // clamp: end the window up
      break;
    }
    toggles.push_back(t);
    up = !up;
  }
  return toggles;
}

}  // namespace

void ChurnConfig::check() const {
  if (node_rate < 0.0 || edge_rate < 0.0) {
    throw std::invalid_argument("ChurnConfig: negative rate");
  }
  if (!enabled()) return;
  if (t1 <= t0 || t0 < 0.0) {
    throw std::invalid_argument("ChurnConfig: need 0 <= t0 < t1");
  }
  if (node_rate > 0.0 && node_downtime <= 0.0) {
    throw std::invalid_argument("ChurnConfig: node_downtime must be > 0");
  }
  if (edge_rate > 0.0 && edge_downtime <= 0.0) {
    throw std::invalid_argument("ChurnConfig: edge_downtime must be > 0");
  }
  if (node_fraction < 0.0 || node_fraction > 1.0 || edge_fraction < 0.0 ||
      edge_fraction > 1.0) {
    throw std::invalid_argument("ChurnConfig: fractions must be in [0, 1]");
  }
  if (extra_edges < 0.0) {
    throw std::invalid_argument("ChurnConfig: extra_edges must be >= 0");
  }
  if (min_present < 1) {
    throw std::invalid_argument("ChurnConfig: min_present must be >= 1");
  }
}

const char* churn_op_name(ChurnOpKind k) {
  switch (k) {
    case ChurnOpKind::kJoin: return "join";
    case ChurnOpKind::kLeave: return "leave";
    case ChurnOpKind::kLinkUp: return "link-up";
    case ChurnOpKind::kLinkDown: return "link-down";
  }
  return "unknown";
}

std::size_t ChurnSchedule::count(ChurnOpKind k) const {
  std::size_t n = 0;
  for (const ChurnOp& op : ops) n += op.kind == k ? 1 : 0;
  return n;
}

double ChurnSchedule::last_op_time() const {
  return ops.empty() ? 0.0 : ops.back().t;
}

void ChurnSchedule::apply(sim::Simulator& sim) const {
  const auto& edges = sim.topology().edges();
  for (sim::NodeId v : initially_absent) sim.set_initially_absent(v);
  for (std::uint32_t e : initially_down) {
    sim.set_link_initially_down(edges[e].first, edges[e].second);
  }
  for (const ChurnOp& op : ops) {
    switch (op.kind) {
      case ChurnOpKind::kJoin:
        sim.schedule_node_join(op.node, op.t);
        break;
      case ChurnOpKind::kLeave:
        sim.schedule_node_leave(op.node, op.t);
        break;
      case ChurnOpKind::kLinkUp:
        sim.schedule_link_change(op.node, op.node2, true, op.t);
        break;
      case ChurnOpKind::kLinkDown:
        sim.schedule_link_change(op.node, op.node2, false, op.t);
        break;
    }
  }
}

ChurnPlan::ChurnPlan(ChurnConfig cfg) : cfg_(cfg) { cfg_.check(); }

std::vector<std::uint32_t> ChurnPlan::extend_universe(graph::Graph& g) const {
  std::vector<std::uint32_t> extra;
  if (cfg_.edge_rate <= 0.0 || cfg_.extra_edges <= 0.0) return extra;
  const auto n = static_cast<std::uint64_t>(g.num_nodes());
  if (n < 2) return extra;
  const auto want = static_cast<std::size_t>(
      std::llround(cfg_.extra_edges * static_cast<double>(g.num_edges())));
  sim::Rng rng = entity_rng(cfg_.seed, kExtraTag);
  // Rejection-sample non-edges; bail out well before the universe could
  // approach completeness (dense graphs make rejection degenerate, and a
  // churn universe denser than the base topology is not a meaningful
  // workload anyway).
  const std::size_t max_attempts = 64 * (want + 1);
  std::size_t attempts = 0;
  while (extra.size() < want && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<graph::NodeId>(rng.uniform_index(n));
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
    extra.push_back(static_cast<std::uint32_t>(g.num_edges() - 1));
  }
  return extra;
}

ChurnSchedule ChurnPlan::instantiate(
    const graph::Graph& g, const std::vector<std::uint32_t>& extra) const {
  ChurnSchedule out;
  out.num_extra_edges = extra.size();
  // Extras with no edge churn would be dead weight — permanently-down
  // edges no op ever inserts; refuse the foot-gun.
  if (cfg_.edge_rate <= 0.0 && !extra.empty()) {
    throw std::invalid_argument(
        "ChurnPlan: extra edges require edge_rate > 0");
  }
  if (!cfg_.enabled()) return out;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const std::size_t num_edges = g.num_edges();
  std::vector<bool> is_extra(num_edges, false);
  for (std::uint32_t e : extra) is_extra[e] = true;

  // ---- per-node presence streams -------------------------------------------
  // toggles[v]: strictly increasing; position 0 is a leave (all nodes
  // start present).  The churnable set is capped at n - min_present so
  // the presence floor holds unconditionally.
  std::vector<std::vector<double>> node_toggles(n);
  if (cfg_.node_rate > 0.0) {
    const std::size_t cap =
        n > static_cast<std::size_t>(cfg_.min_present)
            ? n - static_cast<std::size_t>(cfg_.min_present)
            : 0;
    std::size_t churnable = 0;
    for (std::size_t v = 1; v < n && churnable < cap; ++v) {
      sim::Rng rng = entity_rng(cfg_.seed, kNodeTag + v);
      if (rng.next_double() >= cfg_.node_fraction) continue;
      ++churnable;
      node_toggles[v] =
          renewal_toggles(rng, /*starts_up=*/true, cfg_.t0, cfg_.t1,
                          1.0 / cfg_.node_rate, cfg_.node_downtime);
    }
  }

  // ---- per-edge inserted streams --------------------------------------------
  // Base churnable edges start inserted (position 0 removes); extra edges
  // start removed (position 0 inserts).
  std::vector<std::vector<double>> edge_toggles(num_edges);
  if (cfg_.edge_rate > 0.0) {
    for (std::size_t e = 0; e < num_edges; ++e) {
      sim::Rng rng = entity_rng(cfg_.seed, kEdgeTag + e);
      if (!is_extra[e] && rng.next_double() >= cfg_.edge_fraction) continue;
      edge_toggles[e] =
          renewal_toggles(rng, /*starts_up=*/!is_extra[e], cfg_.t0, cfg_.t1,
                          1.0 / cfg_.edge_rate, cfg_.edge_downtime);
    }
  }

  // ---- emit node ops ---------------------------------------------------------
  for (std::size_t v = 0; v < n; ++v) {
    bool present = true;
    for (double t : node_toggles[v]) {
      present = !present;
      out.ops.push_back(ChurnOp{present ? ChurnOpKind::kJoin
                                        : ChurnOpKind::kLeave,
                                t, static_cast<sim::NodeId>(v),
                                sim::kInvalidNode, graph::kNoEdge});
    }
  }

  // ---- compose live link state and emit link ops ------------------------------
  // live(e, t) = inserted(e, t) AND present(u, t) AND present(v, t).
  // Merge the three toggle streams per edge; emit an op at every flip of
  // the conjunction.  Extras that never become live simply stay in
  // initially_down.
  const auto& edges = g.edges();
  std::vector<ChurnOp> link_ops;
  for (std::size_t e = 0; e < num_edges; ++e) {
    const auto u = static_cast<std::size_t>(edges[e].first);
    const auto v = static_cast<std::size_t>(edges[e].second);
    if (is_extra[e]) out.initially_down.push_back(static_cast<std::uint32_t>(e));
    const auto& te = edge_toggles[e];
    const auto& tu = node_toggles[u];
    const auto& tv = node_toggles[v];
    if (te.empty() && tu.empty() && tv.empty()) continue;

    bool inserted = !is_extra[e];
    bool pu = true, pv = true;
    bool live = inserted;  // all nodes start present
    std::size_t ie = 0, iu = 0, iv = 0;
    while (ie < te.size() || iu < tu.size() || iv < tv.size()) {
      double t = sim::kInfinity;
      if (ie < te.size()) t = std::min(t, te[ie]);
      if (iu < tu.size()) t = std::min(t, tu[iu]);
      if (iv < tv.size()) t = std::min(t, tv[iv]);
      // Fold *all* toggles at exactly t before testing liveness, so a
      // simultaneous leave+insert produces no spurious flip pair.
      while (ie < te.size() && te[ie] == t) { inserted = !inserted; ++ie; }
      while (iu < tu.size() && tu[iu] == t) { pu = !pu; ++iu; }
      while (iv < tv.size() && tv[iv] == t) { pv = !pv; ++iv; }
      const bool now_live = inserted && pu && pv;
      if (now_live != live) {
        live = now_live;
        link_ops.push_back(ChurnOp{live ? ChurnOpKind::kLinkUp
                                        : ChurnOpKind::kLinkDown,
                                   t, edges[e].first, edges[e].second,
                                   static_cast<std::uint32_t>(e)});
      }
    }
  }
  out.ops.insert(out.ops.end(), link_ops.begin(), link_ops.end());

  // Deterministic total order: time, then node ops before link ops at the
  // same instant (stable sort keeps the id/index emission order).
  std::stable_sort(out.ops.begin(), out.ops.end(),
                   [](const ChurnOp& a, const ChurnOp& b) { return a.t < b.t; });
  return out;
}

ChurnSchedule ChurnPlan::build(graph::Graph& g) const {
  const std::vector<std::uint32_t> extra = extend_universe(g);
  return instantiate(g, extra);
}

}  // namespace tbcs::dyn
