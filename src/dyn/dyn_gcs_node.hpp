// Dynamic gradient clock synchronization (Kuhn/Lenzen/Locher/Oshman):
// A^opt with a per-edge *ramped tolerance* for freshly inserted edges.
//
// In a dynamic graph a just-inserted edge {v, w} can carry skew far above
// the static gradient bound — the endpoints were possibly D hops apart a
// moment ago.  The KLLO line of work shows the right response is gradual:
// the edge is granted a large initial tolerance tau_0 that decays to the
// static kappa over a stabilization period T_stab, and only the *scaled*
// skew constrains the rate rule.  Concretely, this node replaces the
// Lambda_up / Lambda_dn extrema of Algorithm 3 with
//
//     Lambda_up = max_w (L^w - L) * kappa / tau_w(h)
//     Lambda_dn = max_w (L - L^w) * kappa / tau_w(h)
//     tau_w(h)  = kappa + max(0, tau_0 - kappa)
//                         * max(0, 1 - (h - h_up^w) / T_stab)
//
// where h_up^w is the hardware time the edge to w last came up.  A mature
// edge has tau_w = kappa, scale 1: the rule degenerates to A^opt exactly,
// and a run without link insertions is bit-identical to A^opt.  During
// the ramp, a far-behind fresh neighbor (large L - L^w) blocks this
// node's fast mode less, and a far-ahead one creates less gradient
// urgency (global catch-up still flows through L^max, which is not
// scaled) — so the old network keeps its gradient guarantees while the
// new edge's skew contracts at the mu-bounded catch-up rate.
#pragma once

#include <vector>

#include "core/aopt.hpp"

namespace tbcs::dyn {

struct DynGcsOptions {
  /// Hardware time for a fresh edge's tolerance to decay to kappa.
  double stabilization_time = 0.0;
  /// Tolerance granted to a just-inserted edge (tau_0); values <= kappa
  /// disable the ramp (the node is then exactly A^opt).
  double initial_tolerance = 0.0;
};

class DynGcsNode : public core::AoptNode {
 public:
  DynGcsNode(const core::SyncParams& params, core::AoptOptions opt,
             DynGcsOptions dyn);

  void on_link_change(sim::NodeServices& sv, sim::NodeId neighbor,
                      bool up) override;
  void on_rejoin(sim::NodeServices& sv) override;

  // ---- inspection (tests / metrics) ----------------------------------------
  const DynGcsOptions& dyn_options() const { return dyn_; }
  /// Current tolerance toward w at hardware time h (kappa when no ramp).
  double tolerance(sim::NodeId w, double h) const;
  /// Edges still inside their stabilization ramp as of the last event.
  std::size_t ramping_edges() const;

 protected:
  void run_set_clock_rate(sim::NodeServices& sv) override;

 private:
  struct Ramp {
    sim::NodeId id = sim::kInvalidNode;
    double h_up = 0.0;  // hardware time the edge came up
  };
  const Ramp* find_ramp(sim::NodeId w) const;
  void drop_ramp(sim::NodeId w);
  bool ramp_active() const {
    return dyn_.stabilization_time > 0.0 &&
           dyn_.initial_tolerance > params_.kappa;
  }

  DynGcsOptions dyn_;
  std::vector<Ramp> ramps_;
};

}  // namespace tbcs::dyn
