#include "dyn/stabilization_probe.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace tbcs::dyn {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

StabilizationProbe::StabilizationProbe(Options opt) : opt_(opt) {
  bounded_ = opt_.history.backend == obs::HistoryConfig::Backend::kStair;
  if (bounded_) history_ = obs::make_history_store(opt_.history);
  if (opt_.sample_grid > 0.0) next_grid_t_ = opt_.sample_grid;
}

void StabilizationProbe::note_insert(sim::NodeId u, sim::NodeId v, double t,
                                     double t_end) {
  Record r;
  r.u = u;
  r.v = v;
  r.t_insert = t;
  r.t_end = t_end;
  r.predicted = kNaN;
  records_.push_back(r);
  // observe() assumes records are ordered by t_insert (preload emits them
  // sorted; direct callers get fixed up here).
  std::sort(records_.begin(), records_.end(),
            [](const Record& a, const Record& b) {
              return a.t_insert < b.t_insert;
            });
}

void StabilizationProbe::preload(const ChurnSchedule& schedule) {
  // Ops are time-sorted, so pairing each kLinkUp with the next kLinkDown
  // of the same edge is one forward scan with an open-window map.
  std::map<std::uint32_t, std::size_t> open;  // edge -> records_ index
  for (const ChurnOp& op : schedule.ops) {
    if (op.kind == ChurnOpKind::kLinkUp) {
      Record r;
      r.u = op.node;
      r.v = op.node2;
      r.t_insert = op.t;
      r.t_end = kInf;
      r.predicted = kNaN;
      open[op.edge] = records_.size();
      records_.push_back(r);
    } else if (op.kind == ChurnOpKind::kLinkDown) {
      auto it = open.find(op.edge);
      if (it != open.end()) {
        records_[it->second].t_end = op.t;
        open.erase(it);
      }
    }
  }
}

void StabilizationProbe::observe(const sim::Simulator& sim, double t) {
  if (opt_.bound <= 0.0) return;
  if (opt_.stride > 1 && (calls_++ % opt_.stride) != 0) return;
  if (opt_.sample_grid > 0.0) {
    if (t < next_grid_t_) return;
    while (next_grid_t_ <= t) next_grid_t_ += opt_.sample_grid;
  }
  for (std::size_t i = live_floor_; i < records_.size(); ++i) {
    Record& r = records_[i];
    if (r.t_insert > t) break;  // sorted: nothing later is live yet
    if (t >= r.t_end) {
      // The edge went away; an unstabilized ramp is abandoned (stable
      // stays false).  Shrink the scan window when the prefix is done.
      if (i == live_floor_) ++live_floor_;
      continue;
    }
    if (!sim.awake(r.u) || !sim.awake(r.v)) continue;
    // Observers run at t == sim.now(), where logical() is evaluated.
    const double skew = std::abs(sim.logical(r.u) - sim.logical(r.v));
    if (!r.sampled) {
      r.sampled = true;
      r.skew_at_insert = skew;
      if (opt_.mu > 0.0) r.predicted = skew / opt_.mu;
    }
    if (skew <= opt_.bound) {
      if (!r.stable) {
        r.stable = true;
        r.t_stable = t;
      }
    } else {
      r.stable = false;  // re-excursion: "for good" means no later breach
    }
  }
  if (bounded_) compact_finished_prefix();
}

void StabilizationProbe::compact_finished_prefix() {
  // Records before live_floor_ are past t_end: observe() never touches
  // them again, so their figures are final and folding them into the
  // aggregates is exactly equivalent to keeping them.  Compact lazily so
  // steady churn amortizes the erase to O(1) per record.
  if (live_floor_ < 1024) return;
  for (std::size_t i = 0; i < live_floor_; ++i) {
    const Record& r = records_[i];
    ++folded_count_;
    if (r.stable) {
      ++folded_stable_;
      const double st = r.stabilization_time();
      folded_stab_sum_ += st;
      if (!(folded_stab_max_ >= st)) folded_stab_max_ = st;
      history_->append(r.t_insert, st);
    }
    if (!std::isnan(r.predicted)) {
      folded_pred_sum_ += r.predicted;
      ++folded_pred_count_;
    }
  }
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(live_floor_));
  live_floor_ = 0;
}

std::size_t StabilizationProbe::stabilized() const {
  std::size_t n = folded_stable_;
  for (const Record& r : records_) n += r.stable ? 1 : 0;
  return n;
}

double StabilizationProbe::mean_stabilization_time() const {
  double sum = folded_stab_sum_;
  std::size_t n = folded_stable_;
  for (const Record& r : records_) {
    if (r.stable) {
      sum += r.stabilization_time();
      ++n;
    }
  }
  return n == 0 ? kNaN : sum / static_cast<double>(n);
}

double StabilizationProbe::max_stabilization_time() const {
  double mx = folded_stab_max_;
  for (const Record& r : records_) {
    if (r.stable && !(mx >= r.stabilization_time())) {
      mx = r.stabilization_time();
    }
  }
  return mx;
}

double StabilizationProbe::mean_predicted_time() const {
  double sum = folded_pred_sum_;
  std::size_t n = folded_pred_count_;
  for (const Record& r : records_) {
    if (!std::isnan(r.predicted)) {
      sum += r.predicted;
      ++n;
    }
  }
  return n == 0 ? kNaN : sum / static_cast<double>(n);
}

void attach_dyn_observers(sim::Simulator& sim,
                          analysis::SkewTracker* tracker,
                          StabilizationProbe* probe) {
  if (tracker == nullptr && probe == nullptr) return;
  if (sim.shards() > 0) {
    sim.set_window_observer(
        [tracker, probe](const sim::Simulator& s, double t,
                         const std::vector<sim::Simulator::WindowTouch>&
                             touched) {
          if (tracker != nullptr) tracker->observe_window(s, t, touched);
          if (probe != nullptr) probe->observe(s, t);
        });
  } else {
    sim.set_observer([tracker, probe](const sim::Simulator& s, double t) {
      if (tracker != nullptr) tracker->observe(s, t);
      if (probe != nullptr) probe->observe(s, t);
    });
  }
}

}  // namespace tbcs::dyn
