// Per-inserted-edge stabilization-time measurement.
//
// For every link insertion the probe records the skew across the new edge
// at the first observed instant, then watches |L_u - L_v| at observer
// cadence; the edge is *stabilized* at the first sample at or below
// `bound` that no later in-window sample exceeds (same for-good
// semantics as SkewTracker's recovery probe).  Each record also carries
// the KLLO-style prediction skew_at_insert / mu — the time the
// mu-bounded catch-up rate needs to close the initial gap, the
// Theta(s/mu) linear-convergence figure the dynamic-gradient analyses
// bound stabilization by — so experiments can tabulate measured against
// predicted.
//
// The probe shares the simulator's single observer slot with SkewTracker
// (which owns it by convention); attach_dyn_observers composes the two —
// one barrier-driven callback when sharded, the per-event observer
// otherwise.  Everything the probe reports derives from barrier-time
// clock reads, which are shard-count invariant.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "analysis/skew_tracker.hpp"
#include "obs/history_store.hpp"
#include "dyn/churn_plan.hpp"
#include "sim/simulator.hpp"

namespace tbcs::dyn {

class StabilizationProbe {
 public:
  struct Options {
    /// Stabilized when |L_u - L_v| <= bound (and stays there while the
    /// edge remains live).  Required > 0 for the probe to do anything.
    double bound = 0.0;
    /// For the prediction skew_at_insert / mu; <= 0 leaves it NaN.
    double mu = 0.0;
    /// Sample only every `stride`-th observer call (stabilization times
    /// coarsen and short-lived windows may go unsampled; counters that
    /// depend on sampling stop being cadence-invariant).  1 = exact.
    std::uint64_t stride = 1;

    /// History backend.  Exact (default) retains every Record forever —
    /// bit-identical to the pre-backend probe.  Stair folds finished
    /// records (t past t_end) into running aggregates plus a bounded
    /// (t_insert, stabilization_time) history store, so memory stays
    /// O(live edges + budget) under sustained churn; records() then only
    /// exposes the unfolded suffix, while the aggregate accessors keep
    /// reporting over everything.
    obs::HistoryConfig history;

    /// When > 0, sample only on the fixed time grid k * sample_grid
    /// (first observer call at/after each grid point; same arithmetic as
    /// SkewTracker::Options::sample_grid, pair with
    /// SimConfig::probe_interval for engine invariance).  Stabilization
    /// figures coarsen to grid resolution.
    double sample_grid = 0.0;
  };

  struct Record {
    sim::NodeId u = sim::kInvalidNode;
    sim::NodeId v = sim::kInvalidNode;
    double t_insert = 0.0;
    double t_end = 0.0;           // edge removed again (inf: stayed live)
    double skew_at_insert = 0.0;  // first sample at/after t_insert
    bool sampled = false;         // saw at least one sample while live
    double t_stable = 0.0;        // guarded by `stable`
    bool stable = false;
    /// KLLO linear-convergence figure skew_at_insert / mu (NaN if mu
    /// was not given or no sample landed in the live window).
    double predicted = 0.0;

    double stabilization_time() const {
      return stable ? t_stable - t_insert
                    : std::numeric_limits<double>::quiet_NaN();
    }
  };

  explicit StabilizationProbe(Options opt);

  /// Registers a (possibly future) insertion of {u, v} live on
  /// [t, t_end).  Benches call this directly; preload() derives the
  /// windows from a churn schedule.
  void note_insert(sim::NodeId u, sim::NodeId v, double t,
                   double t_end = std::numeric_limits<double>::infinity());

  /// Registers every kLinkUp in the schedule, paired with the next
  /// kLinkDown of the same edge (or an open end).  Call once before the
  /// run.
  void preload(const ChurnSchedule& schedule);

  /// Samples every live registered edge at time t; drives the
  /// stay-within-bounds classification.
  void observe(const sim::Simulator& sim, double t);

  // ---- results ---------------------------------------------------------------
  /// Retained records: everything in exact mode, the unfolded suffix in
  /// stair mode (use the aggregate accessors for whole-run figures).
  const std::vector<Record>& records() const { return records_; }
  std::size_t insertions() const { return folded_count_ + records_.size(); }
  std::size_t stabilized() const;
  /// Mean / max stabilization time over stabilized records (NaN if none).
  double mean_stabilization_time() const;
  double max_stabilization_time() const;
  /// Mean predicted time over records with a valid prediction (NaN: none).
  double mean_predicted_time() const;

  /// Stair mode: bounded (t_insert, stabilization_time) history of folded
  /// stabilized records; nullptr in exact mode.
  const obs::HistoryStore* stabilization_history() const {
    return history_.get();
  }
  /// Bytes retained by the probe (records + history store).
  std::size_t memory_bytes() const {
    return records_.size() * sizeof(Record) +
           (history_ ? history_->memory_bytes() : 0);
  }

 private:
  /// Stair mode: folds the finished prefix [0, live_floor_) into the
  /// aggregates and drops it once it is large enough to matter.
  void compact_finished_prefix();

  Options opt_;
  std::vector<Record> records_;
  std::size_t live_floor_ = 0;  // records before this are past t_end
  std::uint64_t calls_ = 0;     // observer calls seen (stride counter)
  double next_grid_t_ = 0.0;    // next sample_grid point (grid mode only)

  // ---- folded aggregates (stair mode) -------------------------------------
  // Identical to re-folding the dropped records: every accessor is the
  // combination of these and the retained suffix.
  bool bounded_ = false;
  std::size_t folded_count_ = 0;         // records dropped
  std::size_t folded_stable_ = 0;        // ... of which stabilized
  double folded_stab_sum_ = 0.0;         // sum of stabilization_time()
  double folded_stab_max_ = std::numeric_limits<double>::quiet_NaN();
  double folded_pred_sum_ = 0.0;         // sum of valid predictions
  std::size_t folded_pred_count_ = 0;
  std::unique_ptr<obs::HistoryStore> history_;
};

/// Installs tracker and/or probe as the simulator's (window) observer in
/// one composed callback — the simulator has a single observer slot and
/// SkewTracker::attach* would otherwise claim it whole.  Either pointer
/// may be null.  Both must outlive the simulator's runs.
void attach_dyn_observers(sim::Simulator& sim,
                          analysis::SkewTracker* tracker,
                          StabilizationProbe* probe);

}  // namespace tbcs::dyn
