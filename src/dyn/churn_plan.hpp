// Deterministic dynamic-network churn workloads.
//
// A ChurnPlan turns a ChurnConfig into a concrete, sorted timeline of node
// joins/leaves and edge inserts/removals — the dynamic-graph model of
// Kuhn/Lenzen/Locher/Oshman-style gradient clock synchronization, driven
// at a configurable production rate.  Instantiation follows the FaultPlan
// discipline: a pure function of (config, topology), with every entity
// (node or edge) owning an independent RNG stream derived from
// (seed, entity tag) alone — so the timeline is byte-identical for any
// --jobs or --shards setting and independent of the order in which other
// streams are consumed.
//
// Each churnable entity runs an alternating-renewal process over the churn
// window [t0, t1]: present/inserted for Exp(1/rate) of real time, then
// absent/removed for Exp(downtime), repeating.  Joins that would land
// after t1 are clamped to t1, so the post-window network is whole again
// and reconvergence is measurable.
//
// Composition is explicit: the simulator treats membership and link state
// as orthogonal, so the plan resolves the *live* state of every edge —
// inserted AND both endpoints present — and emits a kLinkUp/kLinkDown op
// at every boundary where that conjunction flips.  The simulator never
// guesses which links a departing node takes down; the schedule says.
//
// Edge *insertion* churn needs edges that do not exist yet.  The sharded
// engine fixes its cut tables and lookahead bounds at configure_shards, so
// the plan pre-declares the full edge universe: extend_universe() appends
// the extra sampled edges to the Graph (initially down) before the
// Simulator is constructed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/simulator.hpp"

namespace tbcs::dyn {

struct ChurnConfig {
  // ---- node churn ----------------------------------------------------------
  /// Leave rate of a present churnable node (events per unit real time);
  /// 0 disables node churn.
  double node_rate = 0.0;
  /// Mean absence duration of a departed node.
  double node_downtime = 20.0;
  /// Fraction of nodes eligible to churn (sampled per node from the
  /// entity stream).  Node 0 — the flooding root and BFS anchor — is
  /// never eligible.
  double node_fraction = 0.5;
  /// Floor on simultaneously-present nodes: the churnable set is capped
  /// at num_nodes - min_present, so the floor holds even if every
  /// churnable node is absent at once.
  int min_present = 2;

  // ---- edge churn ----------------------------------------------------------
  /// Removal rate of an inserted churnable edge; 0 disables edge churn.
  double edge_rate = 0.0;
  /// Mean removed duration of an edge (also the mean wait before an
  /// extra edge's first insertion).
  double edge_downtime = 20.0;
  /// Fraction of base edges eligible to churn.
  double edge_fraction = 0.25;
  /// Extra initially-absent random non-edges added to the universe, as a
  /// fraction of the base edge count.  These exercise true *insertion*
  /// churn (edges the initial network never had).
  double extra_edges = 0.0;

  // ---- window ---------------------------------------------------------------
  double t0 = 0.0;  ///< churn starts (leave warmup for initial convergence)
  double t1 = 0.0;  ///< churn stops; pending re-joins/re-inserts clamp here

  std::uint64_t seed = 1;

  bool enabled() const { return node_rate > 0.0 || edge_rate > 0.0; }
  /// Throws std::invalid_argument on nonsensical values.
  void check() const;
};

enum class ChurnOpKind : std::uint8_t {
  kJoin = 0,   // node (re)enters the network
  kLeave,      // node departs
  kLinkUp,     // edge becomes live (inserted and both endpoints present)
  kLinkDown,   // edge stops being live
};

inline constexpr int kNumChurnOpKinds = 4;

const char* churn_op_name(ChurnOpKind k);

/// One concrete churn operation at one instant of real time.
struct ChurnOp {
  ChurnOpKind kind = ChurnOpKind::kJoin;
  double t = 0.0;
  sim::NodeId node = sim::kInvalidNode;   // kJoin/kLeave; kLink*: endpoint u
  sim::NodeId node2 = sim::kInvalidNode;  // kLink*: endpoint v
  std::uint32_t edge = graph::kNoEdge;    // kLink*: index into universe edges()
};

/// Resolved plan: the concrete timeline against one (extended) topology.
struct ChurnSchedule {
  /// Sorted by time; ties keep a deterministic emission order (nodes by
  /// id, then edges by index).
  std::vector<ChurnOp> ops;
  /// Nodes absent before the first event (none by default).
  std::vector<sim::NodeId> initially_absent;
  /// Edge indices down before the first event (the not-yet-inserted
  /// extras).
  std::vector<std::uint32_t> initially_down;
  /// How many universe edges are extras appended by extend_universe.
  std::size_t num_extra_edges = 0;

  bool empty() const {
    return ops.empty() && initially_absent.empty() && initially_down.empty();
  }
  std::size_t count(ChurnOpKind k) const;
  /// Time of the last op; 0 when empty.
  double last_op_time() const;

  /// Installs the whole schedule: initial absences / downed links, then
  /// every op via schedule_node_join/leave and schedule_link_change.
  /// Call after configure_shards (slot permutations must be final) and
  /// before the first run.
  void apply(sim::Simulator& sim) const;
};

class ChurnPlan {
 public:
  explicit ChurnPlan(ChurnConfig cfg);

  const ChurnConfig& config() const { return cfg_; }

  /// Samples cfg.extra_edges * |E| random non-edges and appends them to
  /// `g` (they start removed).  Must run before the Simulator is
  /// constructed — the sharded engine's cut tables only cover edges
  /// present at configure_shards.  Returns the appended edge indices;
  /// pure function of (config, g).
  std::vector<std::uint32_t> extend_universe(graph::Graph& g) const;

  /// Resolves the plan against the extended universe (`extra` = the
  /// indices extend_universe returned) into a concrete sorted timeline.
  /// Pure function of (config, g, extra).
  ChurnSchedule instantiate(const graph::Graph& g,
                            const std::vector<std::uint32_t>& extra) const;

  /// extend_universe + instantiate in one step.
  ChurnSchedule build(graph::Graph& g) const;

 private:
  ChurnConfig cfg_;
};

}  // namespace tbcs::dyn
