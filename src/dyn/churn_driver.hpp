// Drives a churned run and keeps the sharded partition honest.
//
// The churn schedule itself is installed up front (ChurnSchedule::apply);
// what remains at run time is pacing and placement.  The driver advances
// the simulator in fixed check intervals and, when the engine is sharded,
// evaluates how much of the *live* topology crosses shards under the
// current partition.  Churn erodes any static placement: every removed
// intra-shard edge and every inserted cross-shard edge raises the live
// cut fraction, and with it the twin-event and horizon-synchronization
// overhead.  When the fraction grows past `cut_growth` times the
// post-partition baseline (and above an absolute floor, so quiet runs
// never thrash) the driver calls Simulator::repartition at the interval
// boundary — a window barrier, where migration is exact — and re-anchors
// the baseline.
//
// Repartitioning is a pure performance action: the migration preserves
// every event identity and canonical counter, so a driven run's output is
// byte-identical at any shard count, repartitions included.  The serial
// engine has no partition; the driver then just paces run_until.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.hpp"

namespace tbcs::dyn {

struct ChurnDriverOptions {
  /// Spacing of run_until boundaries (and cut checks).  Must be > 0.
  double check_interval = 50.0;
  /// Repartition when live_cut_fraction > cut_growth * baseline.
  double cut_growth = 1.5;
  /// ... and above this absolute fraction (keeps near-zero baselines
  /// from triggering on noise).
  double min_cut_fraction = 0.02;
  /// Partition strategy for repartitions ("" = keep the configured one;
  /// "ml" recovers locality on a live graph whose id order means
  /// nothing anymore).
  std::string strategy = "ml";
  /// Master switch (false: pace only, never repartition).
  bool repartition = true;
};

class ChurnDriver {
 public:
  ChurnDriver(sim::Simulator& sim, ChurnDriverOptions opt);

  /// Runs the simulator to t_end in check_interval steps, repartitioning
  /// at boundaries where the watermark tripped.  Resumable.
  void run(double t_end);

  // ---- inspection ------------------------------------------------------------
  std::uint64_t checks() const { return checks_; }
  std::uint64_t repartitions() const { return repartitions_; }
  double baseline_cut_fraction() const { return baseline_; }
  double last_cut_fraction() const { return last_fraction_; }

  /// Fraction of live (link-up) edges that cross shards under the
  /// current partition; 0 when serial or no live edges.
  double live_cut_fraction() const;

 private:
  sim::Simulator& sim_;
  ChurnDriverOptions opt_;
  double baseline_ = -1.0;  // < 0: unset, anchored at the first check
  double last_fraction_ = 0.0;
  std::uint64_t checks_ = 0;
  std::uint64_t repartitions_ = 0;
};

}  // namespace tbcs::dyn
