#include "dyn/churn_driver.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/partition.hpp"

namespace tbcs::dyn {

ChurnDriver::ChurnDriver(sim::Simulator& sim, ChurnDriverOptions opt)
    : sim_(sim), opt_(opt) {
  if (opt_.check_interval <= 0.0) {
    throw std::invalid_argument("ChurnDriver: check_interval must be > 0");
  }
  if (opt_.cut_growth <= 1.0) {
    throw std::invalid_argument("ChurnDriver: cut_growth must be > 1");
  }
}

double ChurnDriver::live_cut_fraction() const {
  const graph::Partition* part = sim_.partition();
  if (part == nullptr) return 0.0;
  const auto& edges = sim_.topology().edges();
  std::size_t live = 0;
  std::size_t live_cut = 0;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (!sim_.link_up(edges[e].first, edges[e].second)) continue;
    ++live;
    live_cut += part->edge_is_cut(static_cast<std::uint32_t>(e)) ? 1 : 0;
  }
  return live == 0 ? 0.0
                   : static_cast<double>(live_cut) / static_cast<double>(live);
}

void ChurnDriver::run(double t_end) {
  const bool sharded = sim_.shards() > 1;
  double t = sim_.now();
  while (t < t_end) {
    t = std::min(t + opt_.check_interval, t_end);
    sim_.run_until(t);
    if (!sharded) continue;
    ++checks_;
    last_fraction_ = live_cut_fraction();
    if (baseline_ < 0.0) {
      baseline_ = last_fraction_;
      continue;
    }
    if (opt_.repartition && t < t_end &&
        last_fraction_ > opt_.min_cut_fraction &&
        last_fraction_ > opt_.cut_growth * std::max(baseline_, 0.0)) {
      sim_.repartition(opt_.strategy);
      ++repartitions_;
      baseline_ = live_cut_fraction();  // re-anchor under the new placement
    }
  }
}

}  // namespace tbcs::dyn
