#include "dyn/dyn_gcs_node.hpp"

#include <algorithm>
#include <limits>

#include "core/rate_rule.hpp"

namespace tbcs::dyn {

DynGcsNode::DynGcsNode(const core::SyncParams& params, core::AoptOptions opt,
                       DynGcsOptions dyn)
    : AoptNode(params, opt), dyn_(dyn) {}

const DynGcsNode::Ramp* DynGcsNode::find_ramp(sim::NodeId w) const {
  for (const Ramp& r : ramps_) {
    if (r.id == w) return &r;
  }
  return nullptr;
}

void DynGcsNode::drop_ramp(sim::NodeId w) {
  for (std::size_t i = 0; i < ramps_.size(); ++i) {
    if (ramps_[i].id == w) {
      ramps_[i] = ramps_.back();
      ramps_.pop_back();
      return;
    }
  }
}

double DynGcsNode::tolerance(sim::NodeId w, double h) const {
  const double kappa = params_.kappa;
  if (!ramp_active()) return kappa;
  const Ramp* r = find_ramp(w);
  if (r == nullptr) return kappa;
  const double frac = 1.0 - (h - r->h_up) / dyn_.stabilization_time;
  if (frac <= 0.0) return kappa;
  return kappa + (dyn_.initial_tolerance - kappa) * frac;
}

std::size_t DynGcsNode::ramping_edges() const {
  std::size_t n = 0;
  for (const Ramp& r : ramps_) {
    n += (h_last_ - r.h_up < dyn_.stabilization_time) ? 1 : 0;
  }
  return n;
}

void DynGcsNode::on_link_change(sim::NodeServices& sv, sim::NodeId neighbor,
                                bool up) {
  if (up) {
    // A fresh (or restored) edge starts its tolerance ramp now.  Before
    // wake there is no clock to protect; the wake flood handles that case.
    if (awake_ && ramp_active()) {
      advance_to(sv.hardware_now());
      drop_ramp(neighbor);
      ramps_.push_back(Ramp{neighbor, h_last_});
    }
    return;  // the base class ignores link-up too
  }
  drop_ramp(neighbor);
  AoptNode::on_link_change(sv, neighbor, up);
}

void DynGcsNode::on_rejoin(sim::NodeServices& sv) {
  // Pre-outage ramps refer to estimates on_rejoin is about to discard.
  ramps_.clear();
  AoptNode::on_rejoin(sv);
}

void DynGcsNode::run_set_clock_rate(sim::NodeServices& sv) {
  // Fast path: no ramp configured or none in flight — bit-identical A^opt.
  if (!ramp_active() || ramps_.empty()) {
    AoptNode::run_set_clock_rate(sv);
    return;
  }
  // Drop ramps that finished decaying so the fast path comes back.
  ramps_.erase(std::remove_if(ramps_.begin(), ramps_.end(),
                              [&](const Ramp& r) {
                                return h_last_ - r.h_up >=
                                       dyn_.stabilization_time;
                              }),
               ramps_.end());
  if (ramps_.empty()) {
    AoptNode::run_set_clock_rate(sv);
    return;
  }
  const double kappa = params_.kappa;
  double lam_up = -std::numeric_limits<double>::infinity();
  double lam_dn = -std::numeric_limits<double>::infinity();
  for (const auto& nb : neighbors_) {
    const double scale = kappa / tolerance(nb.id, h_last_);  // <= 1
    lam_up = std::max(lam_up, (nb.est - L_) * scale);
    lam_dn = std::max(lam_dn, (L_ - nb.est) * scale);
  }
  const double up = neighbors_.empty() ? 0.0 : lam_up;
  const double dn = neighbors_.empty() ? 0.0 : lam_dn;
  apply_clock_increase(sv, core::clock_increase(up, dn, kappa, Lmax_ - L_));
}

}  // namespace tbcs::dyn
