#include "core/adaptive_delay.hpp"

#include <algorithm>

namespace tbcs::core {

AdaptiveDelayAoptNode::AdaptiveDelayAoptNode(const SyncParams& params)
    : AoptNode(params), delay_bound_(params.delay_hat) {}

void AdaptiveDelayAoptNode::send_tagged(sim::NodeServices& sv, int tag,
                                        double aux, sim::NodeId target) {
  sim::Message m = make_message(sv);  // piggyback the current <L, L^max>
  m.tag = tag;
  m.aux = aux;
  m.target = target;
  sv.broadcast(m);
}

void AdaptiveDelayAoptNode::send_ping(sim::NodeServices& sv) {
  send_tagged(sv, kPing, sv.hardware_now(), sim::kInvalidNode);
}

void AdaptiveDelayAoptNode::adopt_bound(sim::NodeServices& sv, double bound,
                                        bool from_rtt) {
  if (bound <= delay_bound_) return;
  // Doubling rule: local measurements bump the bound by at least 2x so at
  // most O(log(T / T_0)) update floods ever happen.
  delay_bound_ = from_rtt ? std::max(bound, 2.0 * delay_bound_) : bound;
  ++bound_updates_;
  params_.delay_hat = std::max(params_.delay_hat, delay_bound_);
  params_.kappa = std::max(
      params_.kappa, 2.0 * ((1.0 + params_.eps_hat) * (1.0 + params_.mu) *
                                delay_bound_ +
                            params_.h0_bar()));
  send_tagged(sv, kBound, delay_bound_, sim::kInvalidNode);
}

void AdaptiveDelayAoptNode::on_wake(sim::NodeServices& sv,
                                    const sim::Message* by_message) {
  AoptNode::on_wake(sv, by_message);
  send_ping(sv);
  if (by_message != nullptr && by_message->tag == kBound) {
    adopt_bound(sv, by_message->aux, /*from_rtt=*/false);
  }
}

void AdaptiveDelayAoptNode::on_message(sim::NodeServices& sv,
                                       const sim::Message& m) {
  // Synchronization semantics first: every frame carries <L, L^max>.
  AoptNode::on_message(sv, m);

  switch (m.tag) {
    case kPing:
      // Acknowledge: echo the sender's timestamp back at it.
      send_tagged(sv, kPong, m.aux, m.sender);
      break;
    case kPong:
      if (m.target == sv.id()) {
        ++rtt_samples_;
        const double rtt_h = sv.hardware_now() - m.aux;
        // Hardware clocks run at >= 1 - eps, so real RTT <= rtt_h/(1-eps);
        // the RTT upper-bounds each one-way delay.
        adopt_bound(sv, rtt_h / (1.0 - params_.eps_hat), /*from_rtt=*/true);
      }
      break;
    case kBound:
      adopt_bound(sv, m.aux, /*from_rtt=*/false);
      break;
    default:
      break;
  }
}

void AdaptiveDelayAoptNode::on_timer(sim::NodeServices& sv, int slot) {
  AoptNode::on_timer(sv, slot);
  if (slot == kSendTimer) send_ping(sv);
}

}  // namespace tbcs::core
