// Algorithm A^opt (Section 4, Algorithms 1-4) and its variants.
//
// State per node v (all values normalized to the hardware-clock reading of
// the node's last event and advanced lazily):
//   L      - logical clock, rate rho * h_v with rho in {1, 1+mu}
//   L^max  - estimate of the maximum clock value, rate c * h_v
//            (c = 1 for plain A^opt; Sections 8.5/8.6 damp it)
//   L^w    - estimate of neighbor w's clock, rate h_v (Algorithm 2)
//   l^w    - largest raw clock value received from w (update guard)
//   H^R    - hardware reading at which rho resets to 1 (Algorithm 4)
//
// Events:
//   * L^max reaches a multiple of H0           -> broadcast <L, L^max>   (Alg 1)
//   * message received                         -> update, setClockRate   (Alg 2, 3)
//   * H reaches H^R                            -> rho := 1               (Alg 4)
//
// Variants folded in as options (each maps to a paper section):
//   jump_mode          - apply R_v instantly instead of raising the rate
//                        (remark after Theorem 5.10; beta unbounded)
//   bounded_frequency  - enforce >= H0 hardware time between sends
//                        (Section 6.1); forwards are queued
//   periodic_send      - send every H0 of hardware time instead of on
//                        L^max multiples (Sections 6.1, 8.3, 8.5)
//   lmax_rate_factor   - L^max increases at c * h_v (Section 8.5 external
//                        synchronization uses c = 1/(1+eps_hat))
//   envelope_mode      - the factor applies only while L^max > H_v
//                        (Section 8.6 hardware-clock envelope)
//   value_offset       - add T1 to all received values (Section 8.3
//                        lower-bounded delays)
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "sim/node.hpp"

namespace tbcs::core {

struct AoptOptions {
  bool jump_mode = false;
  bool bounded_frequency = false;
  bool periodic_send = false;
  double lmax_rate_factor = 1.0;
  bool envelope_mode = false;
  double value_offset = 0.0;

  /// Ablation: replace Algorithm 3 line 1 by the naive midpoint rule
  /// R = (Lambda_up - Lambda_dn)/2 (drive toward the average of the
  /// fastest and slowest neighbor estimate).  Section 4.2: this "simpler
  /// approach ... fails to achieve even a sublinear bound on the local
  /// skew"; kept here so the ablation bench can show the difference.
  bool midpoint_rule = false;

  // ---- graceful degradation under faults (all disabled by default; the
  // ---- fault-free algorithm is exactly the paper's) ------------------------

  /// Evict a neighbor estimate not refreshed for this much hardware time
  /// (<= 0 disables).  A silently-dead neighbor (crash without link-down
  /// notification, or a lossy channel eating every message) then stops
  /// steering setClockRate, the same end state as an observed link-down.
  /// Choose >> the send interval (e.g. several H0) so healthy neighbors
  /// never trip it.
  double neighbor_silence_timeout = 0.0;

  /// Bounded influence (<= 0 disables): reject a message from an
  /// already-known neighbor whose values exceed the local view by more
  /// than this (received L above the tracked estimate, or received L^max
  /// above own L^max, by > influence_bound).  First contact is exempt, so
  /// wake floods and post-outage re-joins pass while a steady-state
  /// Byzantine lie cannot drag the rate rule or L^max arbitrarily far.
  double influence_bound = 0.0;
};

class AoptNode : public sim::Node {
 public:
  explicit AoptNode(const SyncParams& params, AoptOptions opt = {});

  // ---- sim::Node -----------------------------------------------------------
  void on_wake(sim::NodeServices& sv, const sim::Message* by_message) override;
  void on_message(sim::NodeServices& sv, const sim::Message& m) override;
  void on_timer(sim::NodeServices& sv, int slot) override;
  /// Dynamic topologies: a removed neighbor's estimate must no longer
  /// constrain setClockRate (its clock can neither be chased nor waited
  /// for); a re-appearing neighbor is re-learned from its next message.
  void on_link_change(sim::NodeServices& sv, sim::NodeId neighbor,
                      bool up) override;
  /// Re-join after a crash outage: forget every pre-outage neighbor
  /// estimate, drop back to rho = 1, and re-announce <L, L^max> so the
  /// neighborhood re-learns this clock (and this node re-learns the
  /// network's L^max from the replies) — the handshake that brings the
  /// node back inside the Condition 1 envelope at the catch-up rate.
  void on_rejoin(sim::NodeServices& sv) override;
  /// Self-stabilization probe: overwrite L, L^max, rho, the mode flags,
  /// and every neighbor estimate with seed-derived values within
  /// +-magnitude of the current state, then re-arm all timers against the
  /// corrupted state — the adversary of the self-stabilizing model, made
  /// reproducible.  L^max >= L >= 0 is preserved (they are definitional,
  /// not protocol state: L rides below L^max by construction).
  void on_scramble(sim::NodeServices& sv, std::uint64_t seed,
                   double magnitude) override;
  sim::ClockValue logical_at(sim::ClockValue hardware_now) const override;
  double rate_multiplier() const override;

  // ---- inspection (tests / metrics) ----------------------------------------
  const SyncParams& params() const { return params_; }
  const AoptOptions& options() const { return opt_; }
  double rho() const { return rho_; }
  bool riding_lmax() const { return riding_; }
  sim::ClockValue logical_max_at(sim::ClockValue hardware_now) const;
  /// Estimate L_v^w of neighbor w's clock; NaN if never heard from w.
  double neighbor_estimate(sim::NodeId w, sim::ClockValue hardware_now) const;
  std::size_t known_neighbors() const { return neighbors_.size(); }
  std::uint64_t sends() const { return sends_; }
  /// Messages rejected by the bounded-influence guard.
  std::uint64_t rejected_reports() const { return rejected_reports_; }
  /// Neighbor estimates evicted by the silence timeout.
  std::uint64_t stale_evictions() const { return stale_evictions_; }

  /// The skews Lambda_up / Lambda_dn as of the last event (Algorithm 2,
  /// lines 8-9); 0 if no neighbor is known.
  double lambda_up() const;
  double lambda_dn() const;

 protected:
  // Hook for subclasses that post-process outgoing messages (e.g. the
  // bounded-bit codec of Section 6.2 quantizes the payload).
  virtual sim::Message make_message(sim::NodeServices& sv) const;
  // Hook for subclasses that decode incoming payloads.  Returns the
  // (logical, logical_max) pair the algorithm should act on.
  virtual void decode_message(const sim::Message& m, double& logical,
                              double& logical_max) const;
  // The estimate layer's gatekeeper (Algorithm 2 before lines 1-7): called
  // for every decoded report before it can move L^max or the sender's
  // estimate.  Returning false discards the whole message — a rejected
  // report must not refresh liveness either, so a persistent liar still
  // ages out via the silence timeout.  Base implementation: the
  // bounded-influence guard (opt_.influence_bound); the fault-tolerant
  // node replaces it with a certified drift-envelope interval filter.
  virtual bool accept_report(sim::NodeId from, double recv_l,
                             double recv_lmax);
  // The L^max each accepted report is allowed to pull this node toward
  // (Algorithm 2 lines 1-4 adopt the return value when it exceeds L^max).
  // Base: the report itself — one message from one neighbor moves the
  // clock, which is exactly the adopt-forward channel a Byzantine node
  // exploits.  The fault-tolerant node returns an f-trimmed vouched value
  // instead.
  virtual double adopt_lmax(sim::NodeId from, double recv_lmax) {
    (void)from;
    return recv_lmax;
  }
  // Called whenever the estimate layer forgets neighbor `w` (silence
  // eviction, link-down removal, or the on_rejoin purge) so subclasses
  // tracking per-neighbor state of their own stay in sync.
  virtual void on_neighbor_forgotten(sim::NodeId w) { (void)w; }

  enum TimerSlot : int {
    kSendTimer = 0,      // L^max multiple / periodic send (Algorithm 1)
    kRateResetTimer = 1, // H reaches H^R (Algorithm 4)
    kSpacingTimer = 2,   // earliest next send when bounded_frequency
    kPinTimer = 3,       // L catches L^max (only when c < effective rate)
    kEnvelopeTimer = 4,  // L^max meets H from above (envelope_mode)
  };

  void advance_to(sim::ClockValue h_now);
  double lmax_factor_now() const;
  double logical_multiplier() const;
  // Algorithm 3.  Virtual so dynamic-topology variants (src/dyn's
  // Kuhn–Lenzen–Locher–Oshman gradient node) can widen the per-neighbor
  // tolerance while a freshly inserted edge converges.
  virtual void run_set_clock_rate(sim::NodeServices& sv);
  // Algorithm 3 lines 3-7 for a computed increase r: raise rho (or jump),
  // or reset to 1.  Shared by run_set_clock_rate and its overrides.
  void apply_clock_increase(sim::NodeServices& sv, double r);
  void request_send(sim::NodeServices& sv);
  void do_send(sim::NodeServices& sv);
  void reschedule_value_timers(sim::NodeServices& sv);
  void update_riding();

  struct NeighborEstimate {
    sim::NodeId id;
    double est;        // L_v^w, normalized to h_last_
    double raw_max;    // l_v^w: largest raw value received
    double last_heard; // h_last_ when the estimate was last refreshed
  };
  NeighborEstimate& neighbor_slot(sim::NodeId w);
  NeighborEstimate* find_neighbor(sim::NodeId w);
  void evict_stale_neighbors();

  SyncParams params_;
  AoptOptions opt_;

  bool awake_ = false;
  double h_last_ = 0.0;   // hardware reading at last state update
  double L_ = 0.0;        // logical clock at h_last_
  double Lmax_ = 0.0;     // L^max at h_last_
  double rho_ = 1.0;      // logical clock rate multiplier
  bool riding_ = false;   // L == L^max and must not pass it (c < rate)
  double last_send_h_ = 0.0;
  bool pending_send_ = false;
  std::vector<NeighborEstimate> neighbors_;
  std::uint64_t sends_ = 0;
  std::uint64_t rejected_reports_ = 0;
  std::uint64_t stale_evictions_ = 0;
};

}  // namespace tbcs::core
