// Parameters of algorithm A^opt and the skew-bound formulas of the paper.
//
// The algorithm knows only *upper bounds* on the model parameters: eps_hat
// on the maximum drift eps (Section 3) and delay_hat on the delay
// uncertainty T.  kappa and H0 are chosen from the hats; the resulting
// skew guarantees (Theorems 5.5 and 5.10) are then stated in terms of the
// *true* eps and T of the execution, which tests and benches know.
#pragma once

#include <string>

namespace tbcs::core {

struct SyncParams {
  /// \hat{T}: known upper bound on the delay uncertainty T.
  double delay_hat = 1.0;

  /// \hat{eps} in (0, 1): known upper bound on the maximum drift rate.
  double eps_hat = 0.01;

  /// mu > 0: logical clocks may run up to (1 + mu) times the hardware
  /// rate.  Inequality (6) requires mu >= 14 * eps_hat / (1 - eps_hat).
  double mu = 0.2;

  /// H0 > 0: minimum hardware-time between the periodic sends of
  /// Algorithm 1 (messages fire when L^max reaches multiples of H0).
  double h0 = 5.0;

  /// kappa: the local-skew quantum.  Inequality (4) requires
  /// kappa >= 2 ((1 + eps_hat)(1 + mu) \hat{T} + \bar{H0}).
  double kappa = 3.0;

  // ---- derived quantities ---------------------------------------------------

  /// \bar{H0} = (2 eps_hat + mu) H0   (Equation (5)).
  double h0_bar() const { return (2.0 * eps_hat + mu) * h0; }

  /// The smallest kappa permitted by Inequality (4).
  double min_kappa() const {
    return 2.0 * ((1.0 + eps_hat) * (1.0 + mu) * delay_hat + h0_bar());
  }

  /// sigma >= 2: the largest integer with mu >= 7 sigma eps / (1 - eps)
  /// (Inequality (6)), evaluated at `eps` (pass the true eps for the
  /// guarantee actually enjoyed; defaults to eps_hat).  Returned as a
  /// double because sigma is astronomically large for tiny eps.
  double sigma(double eps) const;
  double sigma() const { return sigma(eps_hat); }

  /// Checks Inequalities (4) and (6) and basic ranges.  On failure,
  /// `why` (if non-null) receives a human-readable reason.
  bool valid(std::string* why = nullptr) const;

  /// Throwing variant of valid() for constructors.
  void check() const;

  // ---- skew-bound formulas (true model parameters) -------------------------

  /// Theorem 5.5: G = (1 + eps) D T + 2 eps / (1 + eps) * H0.
  double global_skew_bound(int diameter, double eps, double delay) const;

  /// Theorem 5.10: kappa (ceil(log_sigma(2 G / kappa)) + 1/2).
  double local_skew_bound(int diameter, double eps, double delay) const;

  /// Definition 5.6 ceiling for nodes at hop distance d: the legal state
  /// guarantees skew <= d (s + 1/2) kappa for the smallest s with
  /// C_s = 2 G sigma^{-s} / kappa <= d.  This is the gradient property:
  /// O(d kappa (1 + log_sigma(2G / (d kappa)))).
  double distance_skew_bound(int distance, int diameter, double eps,
                             double delay) const;

  /// Condition (2) rate bounds of A^opt (Corollary 5.3).
  double alpha(double eps) const { return 1.0 - eps; }
  double beta(double eps) const { return (1.0 + eps) * (1.0 + mu); }

  /// Section 6.3 space bound, in bits:
  ///   O(log(f T) + log(mu D) + Delta (log(1/mu) + log(eps mu D)
  ///     + log log_{mu/eps} D)),
  /// where Delta is the maximum degree and f the hardware tick frequency.
  /// Every summand is clamped to >= 1 bit (the paper's footnote on the
  /// sloppy notation).
  double space_bound_bits(int diameter, int max_degree, double frequency,
                          double eps) const;

  // ---- constructors ---------------------------------------------------------

  /// Paper-recommended parameters: mu = max(14 eps_hat/(1-eps_hat), mu_floor),
  /// H0 = delay_hat / mu (Section 6.1), kappa minimal per Inequality (4).
  static SyncParams recommended(double delay_hat, double eps_hat,
                                double mu_floor = 0.0);

  /// Like recommended() but with explicit mu and H0; kappa minimal.
  static SyncParams with(double delay_hat, double eps_hat, double mu,
                         double h0);

  // ---- deployment presets ----------------------------------------------------
  //
  // Ready-made parameterizations for the environments the paper's
  // conclusion discusses; time unit = 1 ms in all three.

  /// Wireless sensor network: TCXO-grade drift (~1e-5, footnote 15's
  /// "cheap quartz"), per-hop MAC jitter ~ a few ms.
  static SyncParams wsn();

  /// Datacenter: disciplined oscillators (~1e-6 effective), sub-ms
  /// network jitter (0.1 ms).
  static SyncParams datacenter();

  /// Network/system-on-chip: ring-oscillator drift up to 0.2 under
  /// temperature/voltage swings (footnote 15), link latency ~ cycles
  /// (here 1e-5 ms = 10 ns).
  static SyncParams chip();
};

}  // namespace tbcs::core
