#include "core/rate_rule.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tbcs::core {

double unbounded_increase(double lambda_up, double lambda_dn, double kappa) {
  assert(kappa > 0.0);
  const double s_star = (lambda_up + lambda_dn - kappa) / (2.0 * kappa);
  const auto f = [&](double s) {
    return std::min(lambda_up - s * kappa, (s + 1.0) * kappa - lambda_dn);
  };
  return std::max(f(std::floor(s_star)), f(std::ceil(s_star)));
}

double clock_increase(double lambda_up, double lambda_dn, double kappa,
                      double lmax_minus_l) {
  const double r1 = unbounded_increase(lambda_up, lambda_dn, kappa);
  return std::min(std::max(kappa - lambda_dn, r1), lmax_minus_l);
}

}  // namespace tbcs::core
