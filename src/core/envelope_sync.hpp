// Hardware-clock envelope variant (Section 8.6).
//
// Condition (1) is sharpened to
//   min_w H_w(t) <= L_v(t) <= max_w H_w(t):
// logical clocks must stay between the smallest and the largest hardware
// clock value in the system.  A node achieves this by increasing L^max at
// the reduced rate (1 - eps_hat) h_v / (1 + eps_hat) whenever L^max
// exceeds its own hardware clock, and by never raising L beyond L^max.
#pragma once

#include <memory>

#include "core/aopt.hpp"

namespace tbcs::core {

/// A^opt configured for the hardware-clock envelope condition.
std::unique_ptr<AoptNode> make_envelope_aopt(const SyncParams& params);

}  // namespace tbcs::core
