// Convenience factories for the A^opt configurations discussed in the
// paper, plus a one-stop include for the variant headers.
#pragma once

#include <memory>

#include "core/aopt.hpp"

namespace tbcs::core {

/// Plain A^opt (Algorithms 1-4).
std::unique_ptr<AoptNode> make_aopt(const SyncParams& params);

/// Unbounded-rate variant: applies R_v instantly instead of raising the
/// logical clock rate (remark after Theorem 5.10; beta = infinity).
std::unique_ptr<AoptNode> make_jump_aopt(const SyncParams& params);

/// Section 6.1: at least H0 hardware time between sends; forwards of
/// larger L^max estimates are queued until the spacing allows.  Trades a
/// Theta(eps D H0) increase of the global skew for a hard lower bound on
/// the message spacing.
std::unique_ptr<AoptNode> make_bounded_frequency_aopt(const SyncParams& params);

/// Section 8.3: delays lie in [t1, t1 + delay_hat]; the known minimum
/// delay t1 is added to every received value.
std::unique_ptr<AoptNode> make_offset_delay_aopt(const SyncParams& params,
                                                 double t1);

}  // namespace tbcs::core
