// Bounded-bit message encoding (Section 6.2).
//
// Plain A^opt sends unbounded clock values.  The paper shows the bit
// complexity drops to O(log(1/mu)) per message by
//   (a) transmitting the *progress* of L since the last send, quantized
//       down to multiples of q = mu * H0 (the quantization error is
//       absorbed by enlarging kappa by Theta(mu H0)), and
//   (b) limiting the announced increase of L^max to
//       cap = ceil((1+eps)(1+mu)/(1-eps)) multiples of H0 per message,
//       carrying any remainder over to subsequent messages (L^max itself
//       never increases faster than rate 1+eps, so the pipeline catches
//       up).
//
// BitCodedAoptNode simulates the wire format faithfully: the values a
// receiver acts on are exactly the values a real decoder would
// reconstruct, and the per-message bit cost is accounted.  Messages are
// sent with spacing >= H0 (bounded_frequency), the premise under which
// Section 6.2 derives the constant-bit variant.
#pragma once

#include <cstdint>

#include "core/aopt.hpp"

namespace tbcs::core {

class BitCodedAoptNode final : public AoptNode {
 public:
  explicit BitCodedAoptNode(const SyncParams& params);

  // ---- accounting -----------------------------------------------------------
  std::uint64_t coded_messages() const { return coded_messages_; }
  std::uint64_t total_payload_bits() const { return total_bits_; }
  std::uint64_t max_payload_bits() const { return max_bits_; }
  double mean_payload_bits() const {
    return coded_messages_ == 0
               ? 0.0
               : static_cast<double>(total_bits_) / coded_messages_;
  }

  /// Quantum for the logical-clock delta: q = mu * H0.
  double quantum() const { return params_.mu * params_.h0; }

  /// Cap (in multiples of H0) on the L^max increase announced per message.
  int lmax_cap_units() const { return lmax_cap_units_; }

  void on_wake(sim::NodeServices& sv, const sim::Message* by_message) override;

 protected:
  sim::Message make_message(sim::NodeServices& sv) const override;
  void decode_message(const sim::Message& m, double& logical,
                      double& logical_max) const override;

 private:
  int lmax_cap_units_ = 1;
  // Sender-side codec state (mutable: make_message is const in the node
  // interface but encoding advances the accumulators).
  mutable double sent_logical_ = 0.0;   // cumulative quantized L announced
  mutable double sent_lmax_ = 0.0;      // cumulative L^max announced
  mutable bool codec_primed_ = false;   // first message is the init flood
  mutable std::uint64_t coded_messages_ = 0;
  mutable std::uint64_t total_bits_ = 0;
  mutable std::uint64_t max_bits_ = 0;
};

}  // namespace tbcs::core
