// External synchronization (Section 8.5).
//
// One distinguished node v0 has access to real time (its logical clock,
// hardware clock, and real time coincide) and periodically floods its
// value.  All other nodes run A^opt, but increase L^max at the damped rate
// h_v / (1 + eps_hat) — and ride L^max when they reach it — so that no
// logical clock ever runs ahead of real time:  L_v(t) <= t.
#pragma once

#include <memory>

#include "core/aopt.hpp"
#include "sim/node.hpp"

namespace tbcs::core {

/// The real-time reference node: L = H (its hardware clock must be driven
/// at rate exactly 1 by the drift policy); broadcasts <H, H> every
/// `beacon_interval` of hardware time and ignores incoming messages.
class ExternalReferenceNode final : public sim::Node {
 public:
  explicit ExternalReferenceNode(double beacon_interval);

  void on_wake(sim::NodeServices& sv, const sim::Message* by_message) override;
  void on_message(sim::NodeServices& sv, const sim::Message& m) override;
  void on_timer(sim::NodeServices& sv, int slot) override;
  sim::ClockValue logical_at(sim::ClockValue hardware_now) const override;
  double rate_multiplier() const override { return 1.0; }

 private:
  void beacon(sim::NodeServices& sv);

  double beacon_interval_;
  bool awake_ = false;
};

/// A^opt configured for external synchronization (non-reference nodes).
std::unique_ptr<AoptNode> make_external_aopt(const SyncParams& params);

}  // namespace tbcs::core
