#include "core/aopt_variants.hpp"

namespace tbcs::core {

std::unique_ptr<AoptNode> make_aopt(const SyncParams& params) {
  return std::make_unique<AoptNode>(params);
}

std::unique_ptr<AoptNode> make_jump_aopt(const SyncParams& params) {
  AoptOptions o;
  o.jump_mode = true;
  return std::make_unique<AoptNode>(params, o);
}

std::unique_ptr<AoptNode> make_bounded_frequency_aopt(const SyncParams& params) {
  AoptOptions o;
  o.bounded_frequency = true;
  return std::make_unique<AoptNode>(params, o);
}

std::unique_ptr<AoptNode> make_offset_delay_aopt(const SyncParams& params,
                                                 double t1) {
  AoptOptions o;
  o.value_offset = t1;
  return std::make_unique<AoptNode>(params, o);
}

}  // namespace tbcs::core
