#include "core/aopt.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/rate_rule.hpp"
#include "sim/rng.hpp"

namespace tbcs::core {

namespace {
constexpr double kTiny = 1e-9;       // value-comparison tolerance
constexpr double kBoostFloor = 1e-12;  // smallest increase worth boosting for
}  // namespace

AoptNode::AoptNode(const SyncParams& params, AoptOptions opt)
    : params_(params), opt_(opt) {
  params_.check();
  assert(opt_.lmax_rate_factor > 0.0 && opt_.lmax_rate_factor <= 1.0);
  // The "send on L^max multiples" trigger of Algorithm 1 presumes L^max
  // advances at the hardware rate; damped-L^max variants send periodically
  // instead (Sections 8.5/8.6), as do lower-bounded-delay setups (8.3).
  if (opt_.lmax_rate_factor != 1.0 || opt_.envelope_mode ||
      opt_.value_offset != 0.0) {
    opt_.periodic_send = true;
  }
}

// ---- state advancement ------------------------------------------------------

double AoptNode::lmax_factor_now() const {
  if (!opt_.envelope_mode) return opt_.lmax_rate_factor;
  // Section 8.6: damp only while L^max exceeds the own hardware clock.
  return Lmax_ > h_last_ + kTiny ? opt_.lmax_rate_factor : 1.0;
}

double AoptNode::logical_multiplier() const {
  const double c = lmax_factor_now();
  return riding_ ? std::min(rho_, c) : rho_;
}

void AoptNode::advance_to(sim::ClockValue h_now) {
  const double dh = h_now - h_last_;
  if (dh <= 0.0) {
    h_last_ = h_now;
    return;
  }
  L_ += logical_multiplier() * dh;
  Lmax_ += lmax_factor_now() * dh;
  if (riding_) L_ = Lmax_;  // exact ride, no fp creep
  for (auto& nb : neighbors_) nb.est += dh;
  h_last_ = h_now;
}

void AoptNode::update_riding() { riding_ = (Lmax_ - L_ <= kTiny); }

// ---- message handling (Algorithm 2) ------------------------------------------

AoptNode::NeighborEstimate& AoptNode::neighbor_slot(sim::NodeId w) {
  for (auto& nb : neighbors_) {
    if (nb.id == w) return nb;
  }
  neighbors_.push_back(NeighborEstimate{
      w, 0.0, -std::numeric_limits<double>::infinity(), h_last_});
  return neighbors_.back();
}

AoptNode::NeighborEstimate* AoptNode::find_neighbor(sim::NodeId w) {
  for (auto& nb : neighbors_) {
    if (nb.id == w) return &nb;
  }
  return nullptr;
}

void AoptNode::evict_stale_neighbors() {
  if (opt_.neighbor_silence_timeout <= 0.0) return;
  const double cutoff = h_last_ - opt_.neighbor_silence_timeout;
  for (std::size_t i = 0; i < neighbors_.size();) {
    if (neighbors_[i].last_heard < cutoff) {
      const sim::NodeId gone = neighbors_[i].id;
      neighbors_[i] = neighbors_.back();
      neighbors_.pop_back();
      ++stale_evictions_;
      on_neighbor_forgotten(gone);
    } else {
      ++i;
    }
  }
}

void AoptNode::decode_message(const sim::Message& m, double& logical,
                              double& logical_max) const {
  logical = m.logical + opt_.value_offset;
  logical_max = m.logical_max + opt_.value_offset;
}

sim::Message AoptNode::make_message(sim::NodeServices& sv) const {
  sim::Message m;
  m.sender = sv.id();
  m.logical = L_;
  m.logical_max = Lmax_;
  return m;
}

void AoptNode::on_wake(sim::NodeServices& sv, const sim::Message* by_message) {
  assert(!awake_);
  awake_ = true;
  h_last_ = sv.hardware_now();  // == 0: the clock starts now
  L_ = 0.0;
  Lmax_ = 0.0;
  rho_ = 1.0;
  last_send_h_ = h_last_;
  if (by_message != nullptr) {
    double recv_l = 0.0;
    double recv_lmax = 0.0;
    decode_message(*by_message, recv_l, recv_lmax);
    // The bootstrap is a report like any other: it must pass the estimate
    // layer's gatekeepers, or a Byzantine wake-flood message would seed
    // L^max and the estimate with arbitrary values no later defense can
    // claw back.  For the base node both hooks pass first contact through
    // untouched, so the fault-free behavior is unchanged.
    if (accept_report(by_message->sender, recv_l, recv_lmax)) {
      Lmax_ = std::max(Lmax_, adopt_lmax(by_message->sender, recv_lmax));
      NeighborEstimate& nb = neighbor_slot(by_message->sender);
      nb.est = recv_l;
      nb.raw_max = recv_l;
      nb.last_heard = h_last_;
    }
  }
  update_riding();
  do_send(sv);  // the triggered sending event: <0, L^max>
  run_set_clock_rate(sv);
  reschedule_value_timers(sv);
}

bool AoptNode::accept_report(sim::NodeId from, double recv_l,
                             double recv_lmax) {
  // Bounded influence: a known neighbor whose report leaps past the local
  // view by more than the bound is lying (or corrupted).
  if (opt_.influence_bound > 0.0) {
    if (const NeighborEstimate* known = find_neighbor(from)) {
      if (recv_l > known->est + opt_.influence_bound ||
          recv_lmax > Lmax_ + opt_.influence_bound) {
        return false;
      }
    }
  }
  return true;
}

void AoptNode::on_message(sim::NodeServices& sv, const sim::Message& m) {
  advance_to(sv.hardware_now());
  evict_stale_neighbors();
  double recv_l = 0.0;
  double recv_lmax = 0.0;
  decode_message(m, recv_l, recv_lmax);

  if (!accept_report(m.sender, recv_l, recv_lmax)) {
    ++rejected_reports_;
    return;
  }

  bool forward = false;
  const double adopted = adopt_lmax(m.sender, recv_lmax);
  if (adopted > Lmax_ + kTiny) {  // Algorithm 2, lines 1-4
    Lmax_ = adopted;
    forward = true;
  }
  NeighborEstimate& nb = neighbor_slot(m.sender);  // lines 5-7
  nb.last_heard = h_last_;
  if (recv_l > nb.raw_max) {
    nb.raw_max = recv_l;
    nb.est = recv_l;
  }
  update_riding();
  if (forward) request_send(sv);
  run_set_clock_rate(sv);  // lines 8-10
  reschedule_value_timers(sv);
}

void AoptNode::on_link_change(sim::NodeServices& sv, sim::NodeId neighbor,
                              bool up) {
  if (up || !awake_) return;
  advance_to(sv.hardware_now());
  for (std::size_t i = 0; i < neighbors_.size(); ++i) {
    if (neighbors_[i].id == neighbor) {
      neighbors_[i] = neighbors_.back();
      neighbors_.pop_back();
      on_neighbor_forgotten(neighbor);
      break;
    }
  }
  run_set_clock_rate(sv);  // Lambda values changed
  reschedule_value_timers(sv);
}

void AoptNode::on_rejoin(sim::NodeServices& sv) {
  assert(awake_);
  advance_to(sv.hardware_now());
  // Everything learned before the outage is stale: estimates would steer
  // the rate toward clocks that moved on without us, and a leftover
  // rho = 1 + mu (its reset timer was suppressed while crashed) would keep
  // running the clock fast for no reason.
  for (const NeighborEstimate& nb : neighbors_) on_neighbor_forgotten(nb.id);
  neighbors_.clear();
  rho_ = 1.0;
  sv.cancel_timer(kRateResetTimer);
  pending_send_ = false;
  update_riding();
  do_send(sv);  // re-announce <L, L^max>: the re-join handshake
  run_set_clock_rate(sv);
  reschedule_value_timers(sv);
}

void AoptNode::on_scramble(sim::NodeServices& sv, std::uint64_t seed,
                           double magnitude) {
  if (!awake_) return;
  advance_to(sv.hardware_now());
  sim::Rng rng(seed);
  const double a = std::max(0.0, magnitude);
  // Clocks: arbitrary within +-magnitude.  L >= 0 and L^max >= L are
  // definitional (L^max was born as a running maximum and L never passes
  // it), so the adversary cannot produce states outside them.
  L_ = std::max(0.0, L_ + rng.uniform(-a, a));
  Lmax_ = std::max(L_, Lmax_ + rng.uniform(-a, a));
  // Mode flags: the rate rule and the send pipeline land wherever the
  // adversary likes — including a fast mode whose reset deadline never
  // matched any computed increase.
  if (rng.next_double() < 0.5) {
    rho_ = 1.0 + params_.mu;
    sv.set_timer(kRateResetTimer,
                 h_last_ +
                     rng.uniform(0.0, std::max(params_.h0, a / params_.mu)));
  } else {
    rho_ = 1.0;
    sv.cancel_timer(kRateResetTimer);
  }
  pending_send_ = rng.next_double() < 0.5;
  last_send_h_ = std::max(0.0, h_last_ - rng.uniform(0.0, params_.h0));
  // Neighbor estimates: shifted arbitrarily; the raw-max update guard is
  // re-anchored at the corrupted value, so honest reports below it are
  // ignored until the estimates self-advance past the corruption — state
  // the recovery probe must observe the algorithm climb out of.
  for (auto& nb : neighbors_) {
    nb.est += rng.uniform(-a, a);
    nb.raw_max = nb.est;
  }
  update_riding();
  reschedule_value_timers(sv);
}

// ---- setClockRate (Algorithm 3) ----------------------------------------------

double AoptNode::lambda_up() const {
  double lam = -std::numeric_limits<double>::infinity();
  for (const auto& nb : neighbors_) lam = std::max(lam, nb.est - L_);
  return neighbors_.empty() ? 0.0 : lam;
}

double AoptNode::lambda_dn() const {
  double lam = -std::numeric_limits<double>::infinity();
  for (const auto& nb : neighbors_) lam = std::max(lam, L_ - nb.est);
  return neighbors_.empty() ? 0.0 : lam;
}

void AoptNode::run_set_clock_rate(sim::NodeServices& sv) {
  double r;
  if (opt_.midpoint_rule) {
    // Ablation: aim at the midpoint of the extreme neighbor estimates,
    // with the same line-2 clamps (kappa tolerance, L <= L^max).
    const double r1 = (lambda_up() - lambda_dn()) / 2.0;
    r = std::min(std::max(params_.kappa - lambda_dn(), r1), Lmax_ - L_);
  } else {
    r = clock_increase(lambda_up(), lambda_dn(), params_.kappa, Lmax_ - L_);
  }
  apply_clock_increase(sv, r);
}

void AoptNode::apply_clock_increase(sim::NodeServices& sv, double r) {
  if (r > kBoostFloor) {
    if (opt_.jump_mode) {
      // Unbounded-rate variant: apply the increase instantly.
      L_ += r;
      update_riding();
      rho_ = 1.0;
      sv.cancel_timer(kRateResetTimer);
    } else {
      rho_ = 1.0 + params_.mu;  // lines 4-5
      sv.set_timer(kRateResetTimer, h_last_ + r / params_.mu);
    }
  } else {
    rho_ = 1.0;  // line 7
    sv.cancel_timer(kRateResetTimer);
  }
}

// ---- sending (Algorithm 1 + Section 6.1) --------------------------------------

void AoptNode::do_send(sim::NodeServices& sv) {
  ++sends_;
  last_send_h_ = h_last_;
  pending_send_ = false;
  sv.broadcast(make_message(sv));
}

void AoptNode::request_send(sim::NodeServices& sv) {
  if (!opt_.bounded_frequency ||
      h_last_ - last_send_h_ >= params_.h0 - kTiny) {
    do_send(sv);
    return;
  }
  // Section 6.1: defer until H advanced by H0 since the last send; the
  // spacing timer will flush the latest values.
  pending_send_ = true;
  sv.set_timer(kSpacingTimer, last_send_h_ + params_.h0);
}

void AoptNode::reschedule_value_timers(sim::NodeServices& sv) {
  const double c = lmax_factor_now();

  // Periodic / multiple-of-H0 send trigger.
  double send_target;
  if (opt_.periodic_send) {
    send_target = last_send_h_ + params_.h0;
  } else {
    const double k = std::floor(Lmax_ / params_.h0 + 1e-7) + 1.0;
    send_target = h_last_ + (k * params_.h0 - Lmax_) / c;
  }
  if (opt_.bounded_frequency) {
    send_target = std::max(send_target, last_send_h_ + params_.h0);
  }
  sv.set_timer(kSendTimer, send_target);

  // Pin timer: L would overtake L^max (possible only when L^max is damped).
  const double mult = logical_multiplier();
  if (!riding_ && mult > c + kTiny) {
    sv.set_timer(kPinTimer, h_last_ + (Lmax_ - L_) / (mult - c));
  } else {
    sv.cancel_timer(kPinTimer);
  }

  // Envelope crossing: L^max meets H from above, after which it rides H.
  if (opt_.envelope_mode && opt_.lmax_rate_factor < 1.0 &&
      Lmax_ > h_last_ + kTiny) {
    const double c0 = opt_.lmax_rate_factor;
    sv.set_timer(kEnvelopeTimer, (Lmax_ - c0 * h_last_) / (1.0 - c0));
  } else {
    sv.cancel_timer(kEnvelopeTimer);
  }
}

// ---- timers -------------------------------------------------------------------

void AoptNode::on_timer(sim::NodeServices& sv, int slot) {
  advance_to(sv.hardware_now());
  evict_stale_neighbors();
  switch (slot) {
    case kSendTimer: {
      if (!opt_.periodic_send) {
        // Snap to the exact multiple of H0 to keep adopted estimates exact.
        const double k = std::round(Lmax_ / params_.h0);
        if (std::abs(Lmax_ - k * params_.h0) < 1e-6) Lmax_ = k * params_.h0;
      }
      do_send(sv);
      break;
    }
    case kRateResetTimer: {
      rho_ = 1.0;  // Algorithm 4
      break;
    }
    case kSpacingTimer: {
      if (pending_send_) do_send(sv);
      break;
    }
    case kPinTimer: {
      L_ = Lmax_;  // L caught its ceiling; ride it from now on
      riding_ = true;
      rho_ = 1.0;
      sv.cancel_timer(kRateResetTimer);
      break;
    }
    case kEnvelopeTimer: {
      Lmax_ = h_last_;  // L^max met H; factor switches to 1 (rides H)
      if (riding_) L_ = Lmax_;
      break;
    }
    default:
      assert(false && "unknown timer slot");
  }
  reschedule_value_timers(sv);
}

// ---- observability --------------------------------------------------------------

sim::ClockValue AoptNode::logical_at(sim::ClockValue hardware_now) const {
  if (!awake_) return 0.0;
  return L_ + logical_multiplier() * (hardware_now - h_last_);
}

sim::ClockValue AoptNode::logical_max_at(sim::ClockValue hardware_now) const {
  if (!awake_) return 0.0;
  return Lmax_ + lmax_factor_now() * (hardware_now - h_last_);
}

double AoptNode::neighbor_estimate(sim::NodeId w,
                                   sim::ClockValue hardware_now) const {
  for (const auto& nb : neighbors_) {
    if (nb.id == w) return nb.est + (hardware_now - h_last_);
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double AoptNode::rate_multiplier() const {
  if (!awake_) return 1.0;
  return logical_multiplier();
}

}  // namespace tbcs::core
