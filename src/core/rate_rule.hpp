// The clock-increase rule of Algorithm 3 (subroutine setClockRate), in
// closed form.
//
// Line 1 computes
//     R_v = sup { R in IR | floor((Lam_up - R)/kappa) >= floor((Lam_dn + R)/kappa) }.
//
// Writing s = floor((Lam_dn + R)/kappa), the predicate is equivalent to
// R <= Lam_up - s kappa and R < (s+1) kappa - Lam_dn, so the supremum over
// level s is f(s) = min(Lam_up - s kappa, (s+1) kappa - Lam_dn).  f is the
// minimum of a decreasing and an increasing linear function of s and hence
// concave; over the integers its maximum is attained at floor(s*) or
// ceil(s*) where s* = (Lam_up + Lam_dn - kappa) / (2 kappa) is the
// crossing point.  (Unit tests verify this against brute-force search.)
//
// Line 2 then clamps:
//     R_v := min(max(kappa - Lam_dn, R_v), Lmax - L),
// i.e. a skew of kappa is always tolerated, and the clock never rises
// above the node's estimate of the maximum clock value.
#pragma once

namespace tbcs::core {

/// Algorithm 3, line 1.
double unbounded_increase(double lambda_up, double lambda_dn, double kappa);

/// Algorithm 3, lines 1-2: the increase R_v that setClockRate applies.
/// `lmax_minus_l` is L_v^max - L_v.  R_v > 0 means "run fast until the
/// logical clock gained R_v over the hardware clock".
double clock_increase(double lambda_up, double lambda_dn, double kappa,
                      double lmax_minus_l);

}  // namespace tbcs::core
