// Unknown delay bound (Section 8.1).
//
// "Assuming that T is completely unknown to the algorithm is no
// restriction": nodes acknowledge messages and measure round-trip times
// with their hardware clocks; dividing by (1 - eps_hat) upper-bounds the
// delays in O(T).  Each node tracks the largest estimate it measured or
// received; when a larger one is detected it is flooded through the
// system and kappa is adjusted.  To keep the number of update floods at
// O(log(T / T_initial)), an adopted measurement at least doubles the
// previous bound.
//
// Until larger delays actually occur the skew bounds hold with respect to
// the smaller kappa, so under-estimating initially is harmless (the paper's
// observation) — the tests verify exactly that.
//
// Wire format: every message still carries <L, L^max> and is processed by
// the A^opt core (piggybacking); the adaptive layer adds
//   kPing  - periodic, aux = sender's hardware reading at send time
//   kPong  - response, target = the pinger, aux echoed
//   kBound - flood of a new delay bound, aux = the bound
#pragma once

#include <cstdint>

#include "core/aopt.hpp"

namespace tbcs::core {

class AdaptiveDelayAoptNode final : public AoptNode {
 public:
  /// `params.delay_hat` acts as the *initial* (possibly far too small)
  /// guess, e.g. Theta(1/f); kappa is taken from it and grows as larger
  /// round trips are observed.
  explicit AdaptiveDelayAoptNode(const SyncParams& params);

  void on_wake(sim::NodeServices& sv, const sim::Message* by_message) override;
  void on_message(sim::NodeServices& sv, const sim::Message& m) override;
  void on_timer(sim::NodeServices& sv, int slot) override;

  double current_delay_bound() const { return delay_bound_; }
  double current_kappa() const { return params_.kappa; }
  std::uint64_t bound_updates() const { return bound_updates_; }
  std::uint64_t rtt_samples() const { return rtt_samples_; }

  enum MessageTag : int { kSync = 0, kPing = 1, kPong = 2, kBound = 3 };

 private:
  void send_ping(sim::NodeServices& sv);
  void send_tagged(sim::NodeServices& sv, int tag, double aux,
                   sim::NodeId target);
  /// Adopts `bound` if it beats the current one; floods it.  `from_rtt`
  /// applies the doubling rule (local measurements only, so that remote
  /// floods converge instead of ping-ponging doublings).
  void adopt_bound(sim::NodeServices& sv, double bound, bool from_rtt);

  double delay_bound_ = 0.0;
  std::uint64_t bound_updates_ = 0;
  std::uint64_t rtt_samples_ = 0;
};

}  // namespace tbcs::core
