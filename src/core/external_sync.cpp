#include "core/external_sync.hpp"

namespace tbcs::core {

ExternalReferenceNode::ExternalReferenceNode(double beacon_interval)
    : beacon_interval_(beacon_interval) {}

void ExternalReferenceNode::on_wake(sim::NodeServices& sv,
                                    const sim::Message* /*by_message*/) {
  awake_ = true;
  beacon(sv);
}

void ExternalReferenceNode::on_message(sim::NodeServices&, const sim::Message&) {
  // The reference *is* real time; it never adjusts.
}

void ExternalReferenceNode::on_timer(sim::NodeServices& sv, int slot) {
  if (slot == 0) beacon(sv);
}

void ExternalReferenceNode::beacon(sim::NodeServices& sv) {
  const double h = sv.hardware_now();
  sim::Message m;
  m.sender = sv.id();
  m.logical = h;
  m.logical_max = h;
  sv.broadcast(m);
  sv.set_timer(0, h + beacon_interval_);
}

sim::ClockValue ExternalReferenceNode::logical_at(
    sim::ClockValue hardware_now) const {
  return awake_ ? hardware_now : 0.0;
}

std::unique_ptr<AoptNode> make_external_aopt(const SyncParams& params) {
  AoptOptions o;
  o.lmax_rate_factor = 1.0 / (1.0 + params.eps_hat);
  return std::make_unique<AoptNode>(params, o);
}

}  // namespace tbcs::core
