// Fault-tolerant gradient clock synchronization: A^opt with a
// Byzantine-resilient estimate layer (the Bund–Lenzen–Rosenbaum recipe on
// top of Algorithm 2/3's machinery).
//
// A^opt trusts every neighbor report: one liar can adopt-forward an
// arbitrary L^max (pegging every correct clock at the catch-up rail, so
// the rate rule stops correcting drift) or park a fake estimate above the
// honest extremes (holding a correct node in fast mode forever).  This
// node hardens the three trust points:
//
//  1. *Certified drift-envelope filter* (accept_report): per neighbor, an
//     interval certificate anchored at first contact.  A correct
//     neighbor's clocks grow at most
//
//         rate_env = (1 + eps_hat)(1 + mu) / (1 - eps_hat)
//
//     per unit of our hardware time (its logical rate is at most
//     (1 + eps_hat)(1 + mu) real time by Condition (2); our hardware runs
//     at least (1 - eps_hat)) — so any L report above
//     anchor + rate_env * elapsed + slack is provably faulty and the
//     whole message is discarded.  The slack covers delay compression
//     (up to delay_hat of extra neighbor progress piling into one arrival
//     gap) plus the kappa-scale margins.  Crucially, accepted values
//     never RAISE the anchor past its own rate_env advance — they only
//     tighten it downward — so a patient liar cannot ratchet the
//     certificate: its admissible lies grow at the certified honest rate,
//     full stop.  (The influence_bound hack this generalizes, and the
//     naive "re-anchor at every accepted value" filter, both leak slack
//     per message.)  Certificates deliberately survive silence evictions,
//     link churn, and crash re-joins: legitimate growth during an outage
//     is admitted by the elapsed-time term, so a liar cannot launder its
//     history by going quiet; only genuine first contact anchors at the
//     reported value (the initial clock is unknowable — trimming, not the
//     filter, bounds a first-contact lie).
//
//  2. *f-trimmed L^max adoption* (adopt_lmax): instead of adopting any
//     single report, the node adopts the (f+1)-th largest per-neighbor
//     vouched L^max (vouches are the envelope-clamped reported values) —
//     at least one correct neighbor stands behind any value that moves
//     the clock, so f liars cannot peg the catch-up channel.  A node with
//     <= f credentialed neighbors adopts nothing and free-runs on its own
//     L^max.
//
//  3. *f-trimmed extrema* (run_set_clock_rate): Lambda_up / Lambda_dn of
//     Algorithm 3 are replaced by the (f+1)-th largest per-neighbor
//     skews.  Up to f Byzantine neighbors can occupy the top f ranks with
//     arbitrary values, so the (f+1)-th is witnessed by at least one
//     correct neighbor — between the honest (f+1)-th and honest maximum —
//     and the rate rule is steered by correct clocks only.  A node with
//     <= f known neighbors cannot out-vote them and falls back to the
//     no-neighbor rule (Lambda = 0).
//
// Meaningful tolerance needs degree: adoption requires f+1 credentialed
// neighbors, and the trim guarantee wants >= 2f+1 so f liars plus the
// trim never silence every honest witness.  On a degree-2 ring, f = 1 is
// the useful maximum.
//
// With f = 0 and the filter off the node is bit-identical to A^opt; the
// equivalence suites pin that, and the usual byte-identity across
// --shards / --queue / --jobs holds like for every other node.
#pragma once

#include <cstdint>
#include <vector>

#include "core/aopt.hpp"

namespace tbcs::core {

struct FtGcsOptions {
  /// Byzantine neighbors each node tolerates (trim depth of the rate rule
  /// and the L^max adoption vote).  0 disables trimming.
  int f = 1;
  /// Certified drift-envelope filter on incoming reports.
  bool envelope_filter = true;
  /// f-trimmed Lambda extrema / L^max adoption.
  bool trim = true;
  /// Envelope slack; <= 0 derives kappa + 2 * rate_env * delay_hat (the
  /// delay-compression bound with a factor-2 margin), which honest
  /// traffic never trips.
  double envelope_slack = 0.0;
};

class FtGcsNode : public AoptNode {
 public:
  FtGcsNode(const SyncParams& params, AoptOptions opt, FtGcsOptions ft);

  /// Corrupts the inherited A^opt state *and* the filter credentials —
  /// self-stabilization must hold for the whole state vector, including
  /// the defense layer itself.
  void on_scramble(sim::NodeServices& sv, std::uint64_t seed,
                   double magnitude) override;

  // ---- inspection (tests / metrics) ----------------------------------------
  const FtGcsOptions& ft_options() const { return ft_; }
  /// Max credited growth of a correct neighbor's clocks per unit of own
  /// hardware time.
  double rate_envelope() const { return rate_env_; }
  double envelope_slack() const { return slack_; }
  /// Reports rejected by the drift-envelope filter (a subset of
  /// rejected_reports()).
  std::uint64_t filtered_reports() const { return filtered_; }
  std::size_t tracked_credentials() const { return creds_.size(); }
  /// The trimmed extrema the rate rule acts on (== lambda_up/lambda_dn
  /// when trimming is off or fewer than f+1 neighbors are known).
  double lambda_up_trimmed() const;
  double lambda_dn_trimmed() const;

 protected:
  bool accept_report(sim::NodeId from, double recv_l,
                     double recv_lmax) override;
  double adopt_lmax(sim::NodeId from, double recv_lmax) override;
  void run_set_clock_rate(sim::NodeServices& sv) override;

 private:
  /// Per-neighbor certificate.  cap_l / cap_lmax are envelope anchors:
  /// they advance at rate_env per unit of own hardware time and accepted
  /// values only tighten them downward (see file header).  vouch_lmax is
  /// the largest L^max this neighbor has stood behind — the value it
  /// brings to the adoption vote; envelope-clamped only when trimming is
  /// on (a correct L^max is a gossip maximum and may legitimately outrun
  /// the local rate envelope, so the clamp is sound only under the vote).
  /// Persistent by design; bounded by the degree (plus departed
  /// ex-neighbors).
  struct Cred {
    sim::NodeId id = sim::kInvalidNode;
    double cap_l = 0.0;
    double cap_lmax = 0.0;
    double vouch_lmax = 0.0;
    double h = 0.0;
  };
  Cred* find_cred(sim::NodeId w);
  /// Whether L^max adoption goes through the vouch vote instead of the
  /// raw report (any defense layer on).
  bool vouched_adoption() const { return ft_.envelope_filter || ft_.trim; }
  double trimmed_extreme(bool up) const;

  FtGcsOptions ft_;
  double rate_env_ = 1.0;
  double slack_ = 0.0;
  std::vector<Cred> creds_;
  mutable std::vector<double> scratch_;  // trim workspace
  std::uint64_t filtered_ = 0;
};

}  // namespace tbcs::core
