#include "core/params.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tbcs::core {

namespace {
constexpr double kSlack = 1e-9;  // tolerance for >= comparisons on doubles
}

double SyncParams::sigma(double eps) const {
  if (eps <= 0.0) return 1e18;  // drift-free clocks: unbounded base
  const double ratio = mu * (1.0 - eps) / (7.0 * eps);
  if (ratio >= 1e15) return 1e15;
  return std::floor(ratio + kSlack);
}

bool SyncParams::valid(std::string* why) const {
  const auto fail = [why](const std::string& reason) {
    if (why) *why = reason;
    return false;
  };
  if (delay_hat <= 0.0) return fail("delay_hat must be positive");
  if (eps_hat <= 0.0 || eps_hat >= 1.0) return fail("eps_hat must lie in (0, 1)");
  if (mu <= 0.0) return fail("mu must be positive");
  if (h0 <= 0.0) return fail("h0 must be positive");
  if (sigma(eps_hat) < 2.0) {
    return fail("Inequality (6) violated: need mu >= 14 eps_hat / (1 - eps_hat)");
  }
  if (kappa + kSlack < min_kappa()) {
    return fail("Inequality (4) violated: kappa < 2((1+eps)(1+mu)T + H0_bar)");
  }
  return true;
}

void SyncParams::check() const {
  std::string why;
  if (!valid(&why)) throw std::invalid_argument("SyncParams: " + why);
}

double SyncParams::global_skew_bound(int diameter, double eps,
                                     double delay) const {
  return (1.0 + eps) * diameter * delay + 2.0 * eps / (1.0 + eps) * h0;
}

double SyncParams::local_skew_bound(int diameter, double eps,
                                    double delay) const {
  const double g = global_skew_bound(diameter, eps, delay);
  const double s = sigma(eps);
  const double levels =
      std::max(0.0, std::ceil(std::log(2.0 * g / kappa) / std::log(s) - kSlack));
  return kappa * (levels + 0.5);
}

double SyncParams::distance_skew_bound(int distance, int diameter, double eps,
                                       double delay) const {
  const double g = global_skew_bound(diameter, eps, delay);
  const double sig = sigma(eps);
  // Smallest s >= 0 with C_s = (2 G / kappa) sigma^{-s} <= distance.
  const double need = 2.0 * g / (kappa * std::max(1, distance));
  const double s =
      need <= 1.0 ? 0.0 : std::ceil(std::log(need) / std::log(sig) - kSlack);
  // The legal-state level gives d (s + 1/2) kappa; the global bound G caps
  // every pair regardless of distance (Theorem 5.5).
  return std::min(distance * (s + 0.5) * kappa, g);
}

double SyncParams::space_bound_bits(int diameter, int max_degree,
                                    double frequency, double eps) const {
  const auto bits = [](double x) { return std::max(1.0, std::log2(x)); };
  const double sig = std::max(2.0, sigma(eps));
  const double levels = std::max(
      2.0, std::log(static_cast<double>(std::max(2, diameter))) / std::log(sig));
  const double per_neighbor =
      bits(1.0 / mu) + bits(eps * mu * diameter) + bits(levels);
  return bits(frequency * delay_hat) + bits(mu * diameter) +
         max_degree * per_neighbor;
}

SyncParams SyncParams::recommended(double delay_hat, double eps_hat,
                                   double mu_floor) {
  SyncParams p;
  p.delay_hat = delay_hat;
  p.eps_hat = eps_hat;
  p.mu = std::max(14.0 * eps_hat / (1.0 - eps_hat), mu_floor);
  p.h0 = delay_hat / p.mu;
  p.kappa = p.min_kappa();
  p.check();
  return p;
}

SyncParams SyncParams::with(double delay_hat, double eps_hat, double mu,
                            double h0) {
  SyncParams p;
  p.delay_hat = delay_hat;
  p.eps_hat = eps_hat;
  p.mu = mu;
  p.h0 = h0;
  p.kappa = p.min_kappa();
  p.check();
  return p;
}

SyncParams SyncParams::wsn() {
  // 2 ms delay uncertainty, 1e-5 drift; mu floored at 1e-3 so the beacon
  // period H0 = T/mu stays at 2 s rather than hours.
  return recommended(/*delay_hat=*/2.0, /*eps_hat=*/1e-5, /*mu_floor=*/1e-3);
}

SyncParams SyncParams::datacenter() {
  // 0.1 ms jitter, 1e-6 drift; mu floored for a 10 ms beacon period.
  return recommended(/*delay_hat=*/0.1, /*eps_hat=*/1e-6, /*mu_floor=*/0.01);
}

SyncParams SyncParams::chip() {
  // 10 ns link latency uncertainty, ring-oscillator drift 0.2: mu must be
  // at least 14 * 0.2 / 0.8 = 3.5 — clocks sprint to correct skews.
  return recommended(/*delay_hat=*/1e-5, /*eps_hat=*/0.2);
}

}  // namespace tbcs::core
