#include "core/envelope_sync.hpp"

namespace tbcs::core {

std::unique_ptr<AoptNode> make_envelope_aopt(const SyncParams& params) {
  AoptOptions o;
  o.envelope_mode = true;
  o.lmax_rate_factor =
      (1.0 - params.eps_hat) / (1.0 + params.eps_hat);
  return std::make_unique<AoptNode>(params, o);
}

}  // namespace tbcs::core
