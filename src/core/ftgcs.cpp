#include "core/ftgcs.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

#include "core/rate_rule.hpp"
#include "sim/rng.hpp"

namespace tbcs::core {

FtGcsNode::FtGcsNode(const SyncParams& params, AoptOptions opt, FtGcsOptions ft)
    : AoptNode(params, opt), ft_(ft) {
  assert(ft_.f >= 0);
  // Condition (2) bounds a correct logical clock by (1+eps)(1+mu) per real
  // time; our hardware certifies at least (1-eps) per real time.  Using
  // eps_hat (the advertised bound, >= the true eps) keeps the envelope
  // sound for every admissible drift policy.
  rate_env_ = (1.0 + params_.eps_hat) * (1.0 + params_.mu) /
              (1.0 - params_.eps_hat);
  slack_ = ft_.envelope_slack > 0.0
               ? ft_.envelope_slack
               : params_.kappa + 2.0 * rate_env_ * params_.delay_hat;
  // Trimming replaces the Lambda extrema of the paper's rule; the
  // midpoint-rule ablation has no trimmed analogue and must not be
  // silently combined with it.
  assert(!(ft_.trim && opt_.midpoint_rule));
}

FtGcsNode::Cred* FtGcsNode::find_cred(sim::NodeId w) {
  for (Cred& c : creds_) {
    if (c.id == w) return &c;
  }
  return nullptr;
}

bool FtGcsNode::accept_report(sim::NodeId from, double recv_l,
                              double recv_lmax) {
  if (!ft_.envelope_filter && !ft_.trim) {
    return AoptNode::accept_report(from, recv_l, recv_lmax);
  }
  Cred* c = find_cred(from);
  if (c == nullptr) {
    // Genuine first contact: the initial clock is unknowable, so the
    // certificate anchors at the report.  A first-contact lie anchors
    // arbitrarily high, which is why adoption and the rate rule trim
    // instead of trusting any single credential.
    creds_.push_back(Cred{from, recv_l, recv_lmax, recv_lmax, h_last_});
    return ft_.envelope_filter
               ? true
               : AoptNode::accept_report(from, recv_l, recv_lmax);
  }
  // Advance the anchors: a correct neighbor cannot have grown faster.
  const double dh = h_last_ > c->h ? h_last_ - c->h : 0.0;
  const double adv_l = c->cap_l + rate_env_ * dh;
  const double adv_lmax = c->cap_lmax + rate_env_ * dh;
  c->h = h_last_;
  if (!ft_.envelope_filter) {
    // Trim-only mode: no filtering, raw vouches feed the adoption vote.
    c->cap_l = std::min(adv_l, recv_l);
    c->cap_lmax = std::min(adv_lmax, recv_lmax);
    c->vouch_lmax = std::max(c->vouch_lmax, recv_lmax);
    return AoptNode::accept_report(from, recv_l, recv_lmax);
  }
  if (recv_l > adv_l + slack_) {
    // Provably faulty: discard the whole message.  The anchors stay on
    // their rate_env trajectory, so a legitimately grown report (e.g.
    // after an outage on our side) is re-admitted by elapsed time alone.
    c->cap_l = adv_l;
    c->cap_lmax = adv_lmax;
    ++filtered_;
    return false;
  }
  // Accepted: tighten the anchors toward the report but never raise them
  // past their own advance — this is what makes the filter ratchet-free.
  c->cap_l = std::min(adv_l, recv_l);
  c->cap_lmax = std::min(adv_lmax, recv_lmax);
  // With trimming, the L^max this neighbor vouches for is its report
  // clamped to its own envelope: a liar's vouch grows at the certified
  // honest rate no matter what it claims (defense in depth under the
  // trim).  Without trimming the raw report is kept: a correct L^max is a
  // gossip maximum that legitimately jumps faster than any local rate
  // envelope, and clamping it would stall honest adoption asymmetrically
  // (nodes closer to the inflation front adopt earlier — a skew ramp of
  // its own).  Only the trim vote makes the clamp safe to apply.
  const double vouched =
      ft_.trim ? std::min(recv_lmax, adv_lmax + slack_) : recv_lmax;
  c->vouch_lmax = std::max(c->vouch_lmax, vouched);
  return true;
}

double FtGcsNode::adopt_lmax(sim::NodeId from, double recv_lmax) {
  if (!vouched_adoption()) return AoptNode::adopt_lmax(from, recv_lmax);
  // The (f+1)-th largest vouch (largest when f = 0 or trimming is off):
  // at least one correct neighbor stands behind the adopted value.  Stale
  // low vouches of departed neighbors never displace the top ranks, so
  // they cannot block adoption — a departed liar's high vouch merely
  // wastes one of the f discard slots.
  const std::size_t f =
      ft_.trim ? static_cast<std::size_t>(ft_.f) : std::size_t{0};
  if (creds_.size() <= f) return -sim::kInfinity;  // cannot out-vote f liars
  if (f == 0) {
    double best = -sim::kInfinity;
    for (const Cred& c : creds_) best = std::max(best, c.vouch_lmax);
    return best;
  }
  scratch_.clear();
  for (const Cred& c : creds_) scratch_.push_back(c.vouch_lmax);
  std::nth_element(scratch_.begin(), scratch_.begin() + static_cast<long>(f),
                   scratch_.end(), std::greater<double>());
  return scratch_[f];
}

double FtGcsNode::trimmed_extreme(bool up) const {
  const auto f = static_cast<std::size_t>(ft_.f);
  if (neighbors_.size() <= f) return 0.0;  // cannot out-vote f liars
  scratch_.clear();
  for (const NeighborEstimate& nb : neighbors_) {
    scratch_.push_back(up ? nb.est - L_ : L_ - nb.est);
  }
  // The (f+1)-th largest: at most f ranks above it are adversarial, so at
  // least one correct neighbor witnesses a skew this large.
  std::nth_element(scratch_.begin(), scratch_.begin() + static_cast<long>(f),
                   scratch_.end(), std::greater<double>());
  return scratch_[f];
}

double FtGcsNode::lambda_up_trimmed() const {
  if (!ft_.trim || ft_.f <= 0) return lambda_up();
  return neighbors_.empty() ? 0.0 : trimmed_extreme(true);
}

double FtGcsNode::lambda_dn_trimmed() const {
  if (!ft_.trim || ft_.f <= 0) return lambda_dn();
  return neighbors_.empty() ? 0.0 : trimmed_extreme(false);
}

void FtGcsNode::run_set_clock_rate(sim::NodeServices& sv) {
  if (!ft_.trim || ft_.f <= 0) {
    AoptNode::run_set_clock_rate(sv);  // bit-identical to A^opt
    return;
  }
  const double r = clock_increase(trimmed_extreme(true), trimmed_extreme(false),
                                  params_.kappa, Lmax_ - L_);
  apply_clock_increase(sv, r);
}

void FtGcsNode::on_scramble(sim::NodeServices& sv, std::uint64_t seed,
                            double magnitude) {
  AoptNode::on_scramble(sv, seed, magnitude);
  if (!awake_) return;
  // An independent stream: the base class must draw the same sequence it
  // draws for a plain A^opt node, or scrambles would not be comparable
  // across --algo.
  sim::SplitMix64 sm(seed ^ 0xf7c1d2e3a4b59687ULL);
  sim::Rng rng(sm.next());
  const double a = std::max(0.0, magnitude);
  for (Cred& c : creds_) {
    // Corrupted-down anchors make the filter reject honest traffic until
    // the elapsed-time term re-admits it (at rate_env); corrupted-up ones
    // and inflated vouches fail open and are out-voted.  Both are
    // recoverable, which is the point.
    c.cap_l += rng.uniform(-a, a);
    c.cap_lmax += rng.uniform(-a, a);
    c.vouch_lmax = std::max(c.vouch_lmax + rng.uniform(-a, a), c.cap_lmax);
    c.h = h_last_;
  }
}

}  // namespace tbcs::core
