#include "core/bit_codec.hpp"

#include <algorithm>
#include <cmath>

namespace tbcs::core {

namespace {

/// Bits to transmit a non-negative integer in [0, max_value].
std::uint64_t bits_for(std::uint64_t max_value) {
  std::uint64_t bits = 1;
  while ((1ULL << bits) - 1 < max_value) ++bits;
  return bits;
}

}  // namespace

BitCodedAoptNode::BitCodedAoptNode(const SyncParams& params)
    : AoptNode(params, [] {
        AoptOptions o;
        o.bounded_frequency = true;
        return o;
      }()) {
  lmax_cap_units_ = static_cast<int>(
      std::ceil((1.0 + params_.eps_hat) * (1.0 + params_.mu) /
                (1.0 - params_.eps_hat)));
}

void BitCodedAoptNode::on_wake(sim::NodeServices& sv,
                               const sim::Message* by_message) {
  AoptNode::on_wake(sv, by_message);
  // The wake-up send transmitted absolute values (the initialization
  // flood); from now on only deltas go on the wire.
  sent_logical_ = 0.0;  // L is 0 at wake
  sent_lmax_ = Lmax_;
  codec_primed_ = true;
}

sim::Message BitCodedAoptNode::make_message(sim::NodeServices& sv) const {
  sim::Message m;
  m.sender = sv.id();
  if (!codec_primed_) {
    // Initialization message: absolute values (not bit-accounted).
    m.logical = L_;
    m.logical_max = Lmax_;
    return m;
  }

  const double q = quantum();
  // (a) Logical clock: progress since last announcement, floored to a
  // multiple of q.  The receiver reconstructs sent_logical_ exactly.
  const double delta = std::max(0.0, L_ - sent_logical_);
  const auto delta_units = static_cast<std::uint64_t>(std::floor(delta / q));
  sent_logical_ += static_cast<double>(delta_units) * q;
  m.logical = sent_logical_;

  // (b) L^max: announce at most lmax_cap_units_ * H0; carry the rest.
  const double lmax_delta = std::max(0.0, Lmax_ - sent_lmax_);
  const auto lmax_units = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(std::floor(lmax_delta / params_.h0)),
      static_cast<std::uint64_t>(lmax_cap_units_));
  sent_lmax_ += static_cast<double>(lmax_units) * params_.h0;
  m.logical_max = sent_lmax_;

  // Bit accounting.  The delta of L between sends spaced >= H0 apart is at
  // most (1+mu) * (growth of H) and the spacing timer bounds how stale the
  // send can be; we charge the bits actually needed for this message's
  // delta (tests check the O(log(1/mu)) scale).
  const std::uint64_t bits =
      bits_for(delta_units) + bits_for(static_cast<std::uint64_t>(lmax_cap_units_));
  ++coded_messages_;
  total_bits_ += bits;
  max_bits_ = std::max(max_bits_, bits);
  return m;
}

void BitCodedAoptNode::decode_message(const sim::Message& m, double& logical,
                                      double& logical_max) const {
  // The wire already carries reconstructed absolute values (the encoder
  // quantized them); nothing further to do.
  logical = m.logical;
  logical_max = m.logical_max;
}

}  // namespace tbcs::core
