#include "obs/chrome_trace.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>
#include <string>

namespace tbcs::obs {

namespace {

constexpr int kPid = 1;

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  void raw(const std::string& body) {
    os_ << (first_ ? "\n    {" : ",\n    {") << body << "}";
    first_ = false;
  }

  void metadata(const std::string& what, int tid, const std::string& name) {
    raw("\"name\": \"" + what + "\", \"ph\": \"M\", \"pid\": " +
        std::to_string(kPid) + ", \"tid\": " + std::to_string(tid) +
        ", \"args\": {\"name\": \"" + name + "\"}");
  }

  void instant(const char* name, int tid, double ts, const TraceRecord& r) {
    std::string body = std::string("\"name\": \"") + name +
                       "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": " +
                       std::to_string(kPid) +
                       ", \"tid\": " + std::to_string(tid) +
                       ", \"ts\": " + num(ts) +
                       ", \"args\": {\"seq\": " + std::to_string(r.seq);
    if (r.edge != kNoTraceEdge) body += ", \"edge\": " + std::to_string(r.edge);
    body += ", \"a\": " + num(r.a) + ", \"b\": " + num(r.b) +
            ", \"flags\": " + std::to_string(r.flags) + "}";
    raw(body);
  }

  void counter(const std::string& track, double ts, const std::string& args) {
    raw("\"name\": \"" + track + "\", \"ph\": \"C\", \"pid\": " +
        std::to_string(kPid) + ", \"ts\": " + num(ts) + ", \"args\": {" +
        args + "}");
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void write_chrome_trace(std::ostream& os, const FlightRecorder::Dump& dump,
                        ChromeTraceOptions opt) {
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  EventWriter w(os);
  w.metadata("process_name", 0, "tbcs simulation");
  w.metadata("thread_name", 0, "simulator");

  std::set<std::int32_t> nodes;
  for (const TraceRecord& r : dump.records) {
    if (r.node >= 0) nodes.insert(r.node);
  }
  for (const std::int32_t n : nodes) {
    w.metadata("thread_name", n + 1, "node " + std::to_string(n));
  }

  for (const TraceRecord& r : dump.records) {
    const auto kind = static_cast<TracePoint>(r.kind);
    const int tid = r.node >= 0 ? r.node + 1 : 0;
    const double ts = r.t;  // 1 simulated time unit = 1 trace "us"
    const std::string node_tag = "node " + std::to_string(r.node);
    w.instant(trace_point_name(kind), tid, ts, r);
    if (!opt.counter_tracks || r.node < 0) continue;
    switch (kind) {
      case TracePoint::kWake:
      case TracePoint::kDeliver:
      case TracePoint::kTimerFire:
        // a = logical L, b = hardware H as of the event.
        w.counter(node_tag + " clocks", ts,
                  "\"L\": " + num(r.a) + ", \"H\": " + num(r.b));
        w.counter(node_tag + " skew", ts, "\"H-L\": " + num(r.b - r.a));
        w.counter(node_tag + " fast_mode", ts,
                  std::string("\"fast\": ") +
                      ((r.flags & kFlagFastMode) ? "1" : "0"));
        break;
      case TracePoint::kModeChange:
        // a = old multiplier, b = new multiplier.
        w.counter(node_tag + " fast_mode", ts,
                  std::string("\"fast\": ") + (r.b > 1.0 ? "1" : "0"));
        break;
      case TracePoint::kRateChange:
        w.counter(node_tag + " hw_rate", ts, "\"rate\": " + num(r.a));
        break;
      default:
        break;
    }
  }
  os << "\n  ]\n}\n";
}

}  // namespace tbcs::obs
