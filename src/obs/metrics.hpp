// Process-wide metrics: named counters, gauges, and log2-bucket histograms.
//
// Write path is lock-free and contention-free: every writing thread gets
// its own shard (a fixed array of cells), and a cell is mutated only by
// its owning thread — the atomics exist so snapshot() can read other
// threads' shards without tearing, not for read-modify-write contention.
// An increment is therefore a thread-local lookup plus a relaxed
// load/add/store, a few nanoseconds regardless of thread count.
//
// snapshot() merges all shards under the registration mutex and returns a
// plain-value Snapshot; write_metrics_json() serializes one.  Metric slots
// are fixed-capacity (kMaxCounters/...) so shards never reallocate under
// concurrent readers; registration past the cap throws.
//
// Handles (Counter/Gauge/Histogram) are tiny value types, cheap to copy,
// valid as long as their registry.  MetricsRegistry::global() is the
// process-wide instance the runtime and sweep engine report into;
// registries can also be constructed standalone for tests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/history_store.hpp"

namespace tbcs::obs {

class MetricsRegistry;

class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t delta = 1);

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Last-write-wins instantaneous value (not sharded).
class Gauge {
 public:
  Gauge() = default;
  void set(double value);
  double get() const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double value);

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

class MetricsRegistry {
 public:
  static constexpr std::size_t kMaxCounters = 256;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 64;
  /// Bucket 0 holds v <= 0; bucket b in [1, kHistBuckets) holds
  /// v in (2^(b-18), 2^(b-17)], i.e. ~2^-16 .. 2^30 with log2 resolution.
  static constexpr int kHistBuckets = 48;

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry.
  static MetricsRegistry& global();

  // Registration is idempotent by name (same name -> same handle) and
  // throws std::length_error when a kind's slot capacity is exhausted.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  struct HistogramStats {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // meaningful only when count > 0
    double max = 0.0;
    std::array<std::uint64_t, kHistBuckets> buckets{};
    double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  };

  struct TimelineStats {
    std::string name;
    std::string backend;
    std::uint64_t appends = 0;
    std::size_t memory_bytes = 0;
    std::vector<HistoryWindow> windows;  // oldest first
  };

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramStats> histograms;
    std::vector<TimelineStats> timelines;  // empty unless enabled

    /// Value of a counter by name; 0 when absent.
    std::uint64_t counter(const std::string& name) const;
    /// Histogram stats by name; nullptr when absent.
    const HistogramStats* histogram(const std::string& name) const;
    /// Timeline stats by name; nullptr when absent.
    const TimelineStats* timeline(const std::string& name) const;
  };

  /// Merged view over all thread shards.  Concurrent writers may or may
  /// not be included (relaxed reads); quiesce writers for exact totals.
  Snapshot snapshot() const;

  static int bucket_index(double value);
  /// Lower bound of bucket b (0 for bucket 0).
  static double bucket_lower_bound(int bucket);

  // ---- timelines -----------------------------------------------------------
  // Opt-in named (t, value) streams recorded through a history backend.
  // Mutex-guarded, intended for low-rate streams (sweep row summaries,
  // end-of-run rollups), NOT the per-event hot path.  record_timeline()
  // is a no-op until enable_timelines() runs, so default output —
  // including write_metrics_json bytes — is unchanged when unused.

  void enable_timelines(const HistoryConfig& cfg);
  bool timelines_enabled() const;
  void record_timeline(const std::string& name, double t, double value);

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct HistShard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  };

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<std::atomic<HistShard*>, kMaxHistograms> hists{};
    ~Shard();
  };

  Shard& local_shard();

  void add(std::uint32_t id, std::uint64_t delta);
  void observe(std::uint32_t id, double value);
  void set_gauge(std::uint32_t id, double value);
  double get_gauge(std::uint32_t id) const;

  mutable std::mutex mu_;  // registration, shard list, snapshot
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t serial_ = 0;  // unique per registry; keys the TLS shard cache

  // Timelines (guarded by mu_; name order = registration order).
  bool timelines_on_ = false;
  HistoryConfig timeline_cfg_;
  std::vector<std::pair<std::string, std::unique_ptr<HistoryStore>>> timelines_;
};

/// Serializes a snapshot as one JSON object:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"name": {"count": .., "sum": .., "min": .., "max": ..,
///                            "buckets": [[lower_bound, count], ...]}}}
/// Only non-empty buckets are listed.  When the snapshot carries
/// timelines, a trailing "timelines" object is appended:
///   {"name": {"backend": .., "appends": .., "memory_bytes": ..,
///             "windows": [[t_lo, t_hi, min, max, mean, count], ...]}}
/// — absent otherwise, so default output bytes are unchanged.
void write_metrics_json(std::ostream& os, const MetricsRegistry::Snapshot& snap);

}  // namespace tbcs::obs
