// Chrome trace_event / Perfetto exporter for flight-recorder dumps.
//
// Layout: one process ("tbcs simulation"), one thread track per node
// (instant events for wakes, sends, deliveries, timer fires, mode
// changes), plus counter tracks per node for the clock state — "clocks"
// (logical L and hardware H) and "skew" (H - L, the node's lag behind its
// own hardware clock) — and a "fast_mode" 0/1 counter that makes A^opt's
// fast-mode windows visible as square waves.  Load the output at
// https://ui.perfetto.dev or chrome://tracing.
//
// Simulation time maps to trace microseconds 1:1 (1 time unit = 1 "us"),
// so a delay-uncertainty unit reads as a microsecond in the UI.
#pragma once

#include <iosfwd>

#include "obs/flight_recorder.hpp"

namespace tbcs::obs {

struct ChromeTraceOptions {
  /// Emit per-node "clocks"/"skew" counter tracks (the bulk of the output;
  /// disable for very large dumps where only the event points matter).
  bool counter_tracks = true;
};

/// Writes the dump as Chrome trace_event JSON ({"traceEvents": [...]}).
void write_chrome_trace(std::ostream& os, const FlightRecorder::Dump& dump,
                        ChromeTraceOptions opt = {});

}  // namespace tbcs::obs
