#include "obs/flight_recorder.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace tbcs::obs {

const char* trace_point_name(TracePoint p) {
  switch (p) {
    case TracePoint::kWake: return "wake";
    case TracePoint::kBroadcast: return "broadcast";
    case TracePoint::kDeliver: return "deliver";
    case TracePoint::kDrop: return "drop";
    case TracePoint::kTimerFire: return "timer";
    case TracePoint::kStaleTimer: return "stale_timer";
    case TracePoint::kRateChange: return "rate_change";
    case TracePoint::kLinkChange: return "link_change";
    case TracePoint::kModeChange: return "mode_change";
    case TracePoint::kProbe: return "probe";
    case TracePoint::kRuntimeDeliver: return "rt_deliver";
    case TracePoint::kRuntimeTimer: return "rt_timer";
    case TracePoint::kFault: return "fault";
    case TracePoint::kChurn: return "churn";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr char kMagic[16] = "tbcs-trace-v1";

struct DumpHeader {
  char magic[16];
  std::uint32_t version;
  std::uint32_t record_size;
  std::uint64_t record_count;
  std::uint64_t total_recorded;
  std::uint64_t sample_every;
  std::uint64_t num_nodes;
};

static_assert(sizeof(DumpHeader) == 56, "keep the dump header packed");

}  // namespace

FlightRecorder::FlightRecorder() : FlightRecorder(Options{}) {}

FlightRecorder::FlightRecorder(Options opt)
    : ring_(round_up_pow2(opt.capacity < 2 ? 2 : opt.capacity)),
      mask_(ring_.size() - 1),
      sample_every_(opt.sample_every < 1 ? 1 : opt.sample_every) {}

std::size_t FlightRecorder::size() const {
  return kept_ < ring_.size() ? static_cast<std::size_t>(kept_) : ring_.size();
}

std::uint64_t FlightRecorder::overwritten() const {
  return kept_ < ring_.size() ? 0 : kept_ - ring_.size();
}

std::vector<TraceRecord> FlightRecorder::snapshot() const {
  std::vector<TraceRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t start = kept_ - n;
  for (std::uint64_t i = start; i < kept_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i) & mask_]);
  }
  return out;
}

void FlightRecorder::clear() {
  next_seq_ = 0;
  kept_ = 0;
}

void FlightRecorder::save(std::ostream& os) const {
  const std::vector<TraceRecord> records = snapshot();
  DumpHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(h.magic));
  h.version = 1;
  h.record_size = sizeof(TraceRecord);
  h.record_count = records.size();
  h.total_recorded = next_seq_;
  h.sample_every = sample_every_;
  h.num_nodes = num_nodes_;
  os.write(reinterpret_cast<const char*>(&h), sizeof(h));
  if (!records.empty()) {
    os.write(reinterpret_cast<const char*>(records.data()),
             static_cast<std::streamsize>(records.size() * sizeof(TraceRecord)));
  }
}

FlightRecorder::Dump FlightRecorder::load(std::istream& is) {
  DumpHeader h{};
  if (!is.read(reinterpret_cast<char*>(&h), sizeof(h))) {
    throw std::runtime_error("FlightRecorder::load: truncated header");
  }
  if (std::memcmp(h.magic, kMagic, sizeof(h.magic)) != 0) {
    throw std::runtime_error("FlightRecorder::load: not a tbcs trace dump");
  }
  if (h.version != 1 || h.record_size != sizeof(TraceRecord)) {
    throw std::runtime_error("FlightRecorder::load: unsupported version/layout");
  }
  Dump d;
  d.sample_every = h.sample_every;
  d.total_recorded = h.total_recorded;
  d.num_nodes = h.num_nodes;
  d.records.resize(h.record_count);
  if (h.record_count > 0 &&
      !is.read(reinterpret_cast<char*>(d.records.data()),
               static_cast<std::streamsize>(h.record_count *
                                            sizeof(TraceRecord)))) {
    throw std::runtime_error("FlightRecorder::load: truncated records");
  }
  return d;
}

}  // namespace tbcs::obs
