// Pluggable bounded-memory history backends for (time, value) telemetry
// streams.
//
// Every unbounded history consumer in the tree (the skew tracker's time
// series, the churn stabilization probe, sweep timelines, trace-rate
// summaries) records through this interface so the memory/fidelity
// trade-off is one switch instead of per-consumer hacks:
//
//  * ExactHistoryStore — keeps every appended point.  Bit-identical to
//    the pre-backend behavior; memory grows linearly with the stream.
//
//  * StairHistoryStore — multi-resolution sliding windows in the spirit
//    of the Stair-Sketch: the newest points are held exactly (singleton
//    windows), older history is merged pairwise into geometrically
//    coarser windows, and the total window count is fixed by a byte
//    budget.  Per-window min/max/sum/count stay exact for the samples
//    the window covers — what degrades with age is the *time*
//    resolution, which coarsest_window_span() reports, and the
//    whole-stream quantile, which falls back to factor-of-two log2
//    buckets (log2_buckets.hpp).  Memory is O(levels * windows-per-level)
//    = O(log n) windows for n appends under any fixed budget.
//
// Both stores are strictly deterministic functions of the append
// sequence: feed them the same (t, value) stream and every query answer,
// window boundary, and byte count comes out identical — which is what
// lets sketch output stay byte-stable across --shards/--queue/--jobs
// when the appends are grid-locked (see SkewTracker::Options::sample_grid).
//
// This header is part of tbcs_obs and must stay simulator-free (any
// layer links it without cycles).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace tbcs::obs {

struct HistoryConfig {
  enum class Backend {
    kExact,  // keep everything (default; bit-identical legacy output)
    kStair,  // multi-resolution windows under a memory budget
  };

  Backend backend = Backend::kExact;

  /// Stair: bytes of window storage per stream (0 = 64 KiB default).
  /// Ignored by the exact backend, which is unbounded by design.
  std::size_t memory_budget_bytes = 0;
};

/// "exact" | "stair"; throws std::invalid_argument on anything else.
HistoryConfig::Backend parse_history_backend(const std::string& name);
const char* history_backend_name(HistoryConfig::Backend backend);

/// One window of summarized history.  The exact backend reports each
/// sample as a singleton window (t_lo == t_hi, count == 1); the stair
/// backend reports wider windows for older history.  min/max/sum/count
/// are exact over the samples the window covers.
struct HistoryWindow {
  double t_lo = 0.0;
  double t_hi = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;

  double span() const { return t_hi - t_lo; }
  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

class HistoryStore {
 public:
  virtual ~HistoryStore() = default;

  /// Appends one sample.  Times must be non-decreasing (callers sample a
  /// monotone simulation clock).
  virtual void append(double t, double value) = 0;

  /// Total samples ever appended (independent of retention).
  virtual std::uint64_t appends() const = 0;

  /// Most recent sample (NaN when empty).  Exact in both backends: the
  /// newest stair window is always a singleton.
  virtual double last_time() const = 0;
  virtual double last_value() const = 0;

  // Whole-stream aggregates; exact in both backends.
  virtual double overall_min() const = 0;
  virtual double overall_max() const = 0;
  virtual double overall_sum() const = 0;

  /// Retained windows, oldest first.
  virtual std::vector<HistoryWindow> windows() const = 0;

  /// Max over samples with t in [t0, t1], folded from every overlapping
  /// window.  `slack` (optional out) receives the extra time span folded
  /// in beyond the query interval — 0 for the exact backend, up to the
  /// coarsest window span for stair; the returned value is exact for the
  /// widened interval [t0 - slack_lo, t1 + slack_hi].  NaN when no window
  /// overlaps.
  virtual double max_in(double t0, double t1,
                        double* slack = nullptr) const = 0;

  /// q-quantile (q in [0, 1]) over all appended values.  Exact backend:
  /// exact order statistic.  Stair: log2-bucket estimate — a lower edge
  /// within a factor of two of the true quantile for positive values.
  virtual double quantile(double q) const = 0;

  /// Bytes of retained history (excludes the fixed object overhead).
  virtual std::size_t memory_bytes() const = 0;

  /// Widest retained window span: the time resolution of the oldest
  /// history (0 while everything is still exact).
  virtual double coarsest_window_span() const = 0;

  virtual const char* name() const = 0;
};

/// Keeps every appended sample; windows() is one singleton per sample.
class ExactHistoryStore final : public HistoryStore {
 public:
  void append(double t, double value) override;
  std::uint64_t appends() const override { return times_.size(); }
  double last_time() const override;
  double last_value() const override;
  double overall_min() const override;
  double overall_max() const override;
  double overall_sum() const override { return sum_; }
  std::vector<HistoryWindow> windows() const override;
  double max_in(double t0, double t1,
                double* slack = nullptr) const override;
  double quantile(double q) const override;
  std::size_t memory_bytes() const override;
  double coarsest_window_span() const override { return 0.0; }
  const char* name() const override { return "exact"; }

  /// Raw sample access (parallel arrays), for zero-copy consumers.
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> times_;
  std::vector<double> values_;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stair-sketch-style multi-resolution store.  Level 0 holds singleton
/// windows; when a level overflows its slot budget its two oldest
/// windows merge into one window of the next level (2x the sample
/// count), and the final level coalesces in place, so retained windows
/// never exceed the budget while the newest history stays exact.
class StairHistoryStore final : public HistoryStore {
 public:
  explicit StairHistoryStore(std::size_t memory_budget_bytes);

  void append(double t, double value) override;
  std::uint64_t appends() const override { return appends_; }
  double last_time() const override;
  double last_value() const override;
  double overall_min() const override;
  double overall_max() const override;
  double overall_sum() const override { return sum_; }
  std::vector<HistoryWindow> windows() const override;
  double max_in(double t0, double t1,
                double* slack = nullptr) const override;
  double quantile(double q) const override;
  std::size_t memory_bytes() const override;
  double coarsest_window_span() const override;
  const char* name() const override { return "stair"; }

  std::size_t budget_bytes() const { return budget_; }
  std::size_t level_count() const { return levels_.size(); }
  std::size_t level0_capacity() const { return level0_cap_; }

 private:
  std::size_t cap(std::size_t level) const {
    return level == 0 ? level0_cap_ : upper_cap_;
  }
  void cascade(std::size_t level);
  std::size_t retained_windows() const;

  std::size_t budget_ = 0;
  std::size_t level0_cap_ = 0;  // newest, exact (singleton) windows
  std::size_t upper_cap_ = 0;   // per coarser level
  std::size_t max_levels_ = 0;
  // levels_[0] = newest/finest; each deque runs oldest (front) to newest
  // (back); every window in level i+1 is older than all of level i.
  std::vector<std::deque<HistoryWindow>> levels_;
  std::uint64_t appends_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::uint64_t buckets_[/*kLog2Buckets*/ 48] = {};
};

std::unique_ptr<HistoryStore> make_history_store(const HistoryConfig& cfg);

}  // namespace tbcs::obs
