#include "obs/history_store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/log2_buckets.hpp"

namespace tbcs::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Bytes a retained HistoryWindow costs; both backends report memory in
// these units so budget math is comparable across them.
constexpr std::size_t kWindowBytes = sizeof(HistoryWindow);
static_assert(kWindowBytes == 48, "HistoryWindow layout drifted");

}  // namespace

HistoryConfig::Backend parse_history_backend(const std::string& name) {
  if (name == "exact") return HistoryConfig::Backend::kExact;
  if (name == "stair") return HistoryConfig::Backend::kStair;
  throw std::invalid_argument("unknown history backend '" + name +
                              "' (expected exact|stair)");
}

const char* history_backend_name(HistoryConfig::Backend backend) {
  switch (backend) {
    case HistoryConfig::Backend::kExact:
      return "exact";
    case HistoryConfig::Backend::kStair:
      return "stair";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ExactHistoryStore

void ExactHistoryStore::append(double t, double value) {
  if (times_.empty()) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  times_.push_back(t);
  values_.push_back(value);
}

double ExactHistoryStore::last_time() const {
  return times_.empty() ? kNaN : times_.back();
}

double ExactHistoryStore::last_value() const {
  return values_.empty() ? kNaN : values_.back();
}

double ExactHistoryStore::overall_min() const {
  return times_.empty() ? kNaN : min_;
}

double ExactHistoryStore::overall_max() const {
  return times_.empty() ? kNaN : max_;
}

std::vector<HistoryWindow> ExactHistoryStore::windows() const {
  std::vector<HistoryWindow> out;
  out.reserve(times_.size());
  for (std::size_t i = 0; i < times_.size(); ++i) {
    out.push_back(HistoryWindow{times_[i], times_[i], values_[i], values_[i],
                                values_[i], 1});
  }
  return out;
}

double ExactHistoryStore::max_in(double t0, double t1, double* slack) const {
  if (slack != nullptr) *slack = 0.0;
  // Times are non-decreasing, so the query range is one contiguous run.
  const auto lo = std::lower_bound(times_.begin(), times_.end(), t0);
  const auto hi = std::upper_bound(lo, times_.end(), t1);
  if (lo == hi) return kNaN;
  double best = -std::numeric_limits<double>::infinity();
  for (auto it = lo; it != hi; ++it) {
    best = std::max(best, values_[static_cast<std::size_t>(
                              it - times_.begin())]);
  }
  return best;
}

double ExactHistoryStore::quantile(double q) const {
  if (values_.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted = values_;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(rank),
                   sorted.end());
  return sorted[rank];
}

std::size_t ExactHistoryStore::memory_bytes() const {
  return times_.size() * 2 * sizeof(double);
}

// ---------------------------------------------------------------------------
// StairHistoryStore

StairHistoryStore::StairHistoryStore(std::size_t memory_budget_bytes) {
  budget_ = memory_budget_bytes == 0 ? 64u * 1024u : memory_budget_bytes;
  // Total window slots the budget buys (the quantile bucket array is
  // charged against the budget first so memory_bytes() can never exceed
  // it); at least a useful minimum so a tiny budget still yields a
  // functioning (if coarse) sketch.
  const std::size_t for_windows =
      budget_ > sizeof(buckets_) ? budget_ - sizeof(buckets_) : 0;
  const std::size_t slots =
      std::max<std::size_t>(64, for_windows / kWindowBytes);
  // Half the slots hold the newest history exactly; the other half is
  // split across coarser levels so the level count (hence the cascade
  // depth) stays logarithmic in the slot count.
  level0_cap_ = std::max<std::size_t>(32, slots / 2);
  upper_cap_ = std::max<std::size_t>(8, slots / kWindowBytes);
  std::size_t budget_left = slots - level0_cap_;
  max_levels_ = 1;
  while (budget_left >= upper_cap_ && max_levels_ < 24) {
    budget_left -= upper_cap_;
    ++max_levels_;
  }
  levels_.emplace_back();
}

void StairHistoryStore::append(double t, double value) {
  if (appends_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++appends_;
  ++buckets_[log2_bucket_index(value)];
  levels_[0].push_back(HistoryWindow{t, t, value, value, value, 1});
  cascade(0);
}

void StairHistoryStore::cascade(std::size_t level) {
  while (levels_[level].size() > cap(level)) {
    const bool top = level + 1 >= max_levels_;
    // Grow the level vector before taking any reference into it.
    if (!top && level + 1 >= levels_.size()) levels_.emplace_back();
    auto& dq = levels_[level];
    // Merge the two oldest windows of this level into one coarser window.
    HistoryWindow a = dq.front();
    dq.pop_front();
    HistoryWindow b = dq.front();
    dq.pop_front();
    HistoryWindow merged{a.t_lo,
                         b.t_hi,
                         std::min(a.min, b.min),
                         std::max(a.max, b.max),
                         a.sum + b.sum,
                         a.count + b.count};
    if (top) {
      // Final level: keep the merged window here (coarsening in place),
      // re-inserted at the old end so ordering is preserved.
      dq.push_front(merged);
      break;  // size shrank by one; cap now holds
    }
    levels_[level + 1].push_back(merged);
    cascade(level + 1);
  }
}

double StairHistoryStore::last_time() const {
  for (const auto& dq : levels_) {
    if (!dq.empty()) return dq.back().t_hi;
  }
  return kNaN;
}

double StairHistoryStore::last_value() const {
  // The newest level-0 window is a singleton, so max == the raw value.
  if (!levels_[0].empty()) return levels_[0].back().max;
  return kNaN;
}

double StairHistoryStore::overall_min() const {
  return appends_ == 0 ? kNaN : min_;
}

double StairHistoryStore::overall_max() const {
  return appends_ == 0 ? kNaN : max_;
}

std::vector<HistoryWindow> StairHistoryStore::windows() const {
  std::vector<HistoryWindow> out;
  out.reserve(retained_windows());
  // Coarsest level holds the oldest history; within a level the deque
  // already runs oldest -> newest.
  for (std::size_t l = levels_.size(); l-- > 0;) {
    out.insert(out.end(), levels_[l].begin(), levels_[l].end());
  }
  return out;
}

double StairHistoryStore::max_in(double t0, double t1, double* slack) const {
  double best = -std::numeric_limits<double>::infinity();
  double widen = 0.0;
  bool any = false;
  for (const auto& dq : levels_) {
    for (const auto& w : dq) {
      if (w.t_hi < t0 || w.t_lo > t1) continue;
      any = true;
      best = std::max(best, w.max);
      widen = std::max(widen, std::max(t0 - w.t_lo, 0.0) +
                                  std::max(w.t_hi - t1, 0.0));
    }
  }
  if (slack != nullptr) *slack = any ? widen : 0.0;
  return any ? best : kNaN;
}

double StairHistoryStore::quantile(double q) const {
  if (appends_ == 0) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(appends_ - 1) + 0.5);
  std::uint64_t seen = 0;
  for (int b = 0; b < kLog2Buckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) return log2_bucket_lower_bound(b);
  }
  return log2_bucket_lower_bound(kLog2Buckets - 1);
}

std::size_t StairHistoryStore::memory_bytes() const {
  return retained_windows() * kWindowBytes + sizeof(buckets_);
}

double StairHistoryStore::coarsest_window_span() const {
  double widest = 0.0;
  for (const auto& dq : levels_) {
    for (const auto& w : dq) widest = std::max(widest, w.span());
  }
  return widest;
}

std::size_t StairHistoryStore::retained_windows() const {
  std::size_t n = 0;
  for (const auto& dq : levels_) n += dq.size();
  return n;
}

std::unique_ptr<HistoryStore> make_history_store(const HistoryConfig& cfg) {
  switch (cfg.backend) {
    case HistoryConfig::Backend::kStair:
      return std::make_unique<StairHistoryStore>(cfg.memory_budget_bytes);
    case HistoryConfig::Backend::kExact:
      break;
  }
  return std::make_unique<ExactHistoryStore>();
}

}  // namespace tbcs::obs
