// Shared power-of-two bucket math for lossy value summaries.
//
// One bucketing scheme serves both the MetricsRegistry histograms and the
// HistoryStore quantile sketches: bucket 0 collects everything that is not
// a positive finite value, bucket b >= 1 covers (2^(b-18), 2^(b-17)].
// Any estimate read back from a bucket is therefore within a factor of
// two of the true positive value — the error bound both consumers
// advertise.
#pragma once

#include <algorithm>
#include <cmath>

namespace tbcs::obs {

inline constexpr int kLog2Buckets = 48;

/// Bucket for `value`: 0 for zero/negative/NaN, otherwise clamped so
/// values below 2^-17 land in bucket 1 and values above 2^29 in the last.
inline int log2_bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // zero, negative, NaN
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp with m in [0.5, 1)
  const int idx = exp + 17;  // 2^-17 < v <= 2^-16  ->  bucket 1
  return std::clamp(idx, 1, kLog2Buckets - 1);
}

/// Inclusive lower edge of a bucket (0 for the catch-all bucket 0).
inline double log2_bucket_lower_bound(int bucket) {
  if (bucket <= 0) return 0.0;
  return std::ldexp(1.0, bucket - 18);
}

}  // namespace tbcs::obs
