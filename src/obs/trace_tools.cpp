#include "obs/trace_tools.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <ostream>
#include <sstream>

namespace tbcs::obs {

TraceSummary summarize(const FlightRecorder::Dump& dump) {
  TraceSummary s;
  s.records = dump.records.size();
  bool first = true;
  for (const TraceRecord& r : dump.records) {
    if (first || r.t < s.t_min) s.t_min = r.t;
    if (first || r.t > s.t_max) s.t_max = r.t;
    first = false;
    if (r.kind < kNumTracePoints) ++s.by_kind[r.kind];
    if (r.node >= 0) ++s.by_node[r.node];
    const auto kind = static_cast<TracePoint>(r.kind);
    if (r.edge != kNoTraceEdge &&
        (kind == TracePoint::kDeliver || kind == TracePoint::kDrop)) {
      ++s.by_edge[r.edge];
    }
    if (r.flags & kFlagFastMode) ++s.fast_mode_records;
    if (kind == TracePoint::kModeChange) ++s.mode_changes;
    if (kind == TracePoint::kDrop) ++s.drops;
    if (kind == TracePoint::kFault) s.faults.push_back(r);
  }
  return s;
}

void print_summary(std::ostream& os, const TraceSummary& s) {
  os << "records: " << s.records << "  time span: [" << s.t_min << ", "
     << s.t_max << "]\n";
  os << "by kind:\n";
  for (int k = 0; k < kNumTracePoints; ++k) {
    if (s.by_kind[k] == 0) continue;
    char buf[64];
    std::snprintf(buf, sizeof buf, "  %-12s %10llu\n",
                  trace_point_name(static_cast<TracePoint>(k)),
                  static_cast<unsigned long long>(s.by_kind[k]));
    os << buf;
  }
  os << "fast-mode records: " << s.fast_mode_records
     << "  mode changes: " << s.mode_changes << "  drops: " << s.drops << "\n";
  os << "by node (" << s.by_node.size() << " nodes):\n";
  for (const auto& [node, count] : s.by_node) {
    os << "  node " << node << ": " << count << "\n";
  }
  if (!s.by_edge.empty()) {
    os << "by edge (" << s.by_edge.size() << " edges with traffic):\n";
    for (const auto& [edge, count] : s.by_edge) {
      os << "  edge " << edge << ": " << count << "\n";
    }
  }
  if (!s.faults.empty()) {
    // Mirrors fault::FaultKind (obs sits below the fault library, so the
    // names are repeated here rather than linked).
    static const char* const kFaultNames[] = {
        "crash",        "recover",       "link_down", "link_up",
        "drift_spike",  "drift_restore", "byz_on",    "byz_off",
        "channel_on",   "channel_off"};
    constexpr int kKnown = static_cast<int>(std::size(kFaultNames));
    os << "faults (" << s.faults.size() << " injected):\n";
    for (const TraceRecord& r : s.faults) {
      const int k = static_cast<int>(r.a);
      os << "  t=" << r.t << ' '
         << (k >= 0 && k < kKnown ? kFaultNames[k] : "unknown");
      if (r.node >= 0) os << " node=" << r.node;
      if (r.edge != kNoTraceEdge) os << " edge=" << r.edge;
      if (r.b != 0.0) os << " value=" << r.b;
      os << "\n";
    }
  }
}

TraceTimeline summarize_timeline(const FlightRecorder::Dump& dump,
                                 const HistoryConfig& cfg) {
  TraceTimeline t;
  auto store = make_history_store(cfg);
  // Dumps are ring buffers, so records are already oldest-first in time;
  // append order = record order keeps the result a pure function of the
  // dump bytes.
  for (const TraceRecord& r : dump.records) store->append(r.t, 1.0);
  t.backend = store->name();
  t.appends = store->appends();
  t.memory_bytes = store->memory_bytes();
  t.windows = store->windows();
  return t;
}

void print_timeline(std::ostream& os, const TraceTimeline& t) {
  os << "timeline (" << t.backend << " backend): " << t.appends
     << " records in " << t.windows.size() << " windows, "
     << t.memory_bytes << " bytes\n";
  for (const HistoryWindow& w : t.windows) {
    char buf[128];
    const double span = w.span();
    const double rate =
        span > 0.0 ? static_cast<double>(w.count) / span : 0.0;
    std::snprintf(buf, sizeof buf, "  [%12.4f, %12.4f] %10llu events",
                  w.t_lo, w.t_hi,
                  static_cast<unsigned long long>(w.count));
    os << buf;
    if (span > 0.0) {
      std::snprintf(buf, sizeof buf, "  (%.1f /unit)", rate);
      os << buf;
    }
    os << "\n";
  }
}

std::string format_record(const TraceRecord& r) {
  std::ostringstream ss;
  ss.precision(12);
  ss << "seq=" << r.seq << " t=" << r.t << ' '
     << trace_point_name(static_cast<TracePoint>(r.kind));
  if (r.node >= 0) ss << " node=" << r.node;
  if (r.edge != kNoTraceEdge) ss << " edge=" << r.edge;
  ss << " a=" << r.a << " b=" << r.b;
  if (r.flags != 0) ss << " flags=" << r.flags;
  return ss.str();
}

namespace {

bool values_match(double x, double y, double tol) {
  if (x == y) return true;  // covers inf == inf
  return std::abs(x - y) <= tol;
}

}  // namespace

TraceDiff diff_traces(const FlightRecorder::Dump& a,
                      const FlightRecorder::Dump& b, double value_tolerance) {
  TraceDiff d;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.records.size() && j < b.records.size()) {
    const TraceRecord& ra = a.records[i];
    const TraceRecord& rb = b.records[j];
    if (ra.seq < rb.seq) {
      ++i;  // only in A (B's ring wrapped past it or B samples coarser)
      continue;
    }
    if (rb.seq < ra.seq) {
      ++j;
      continue;
    }
    ++d.compared;
    const bool same = ra.kind == rb.kind && ra.node == rb.node &&
                      ra.edge == rb.edge && ra.flags == rb.flags &&
                      values_match(ra.t, rb.t, value_tolerance) &&
                      values_match(ra.a, rb.a, value_tolerance) &&
                      values_match(ra.b, rb.b, value_tolerance);
    if (!same) {
      d.diverged = true;
      d.seq = ra.seq;
      d.have_a = d.have_b = true;
      d.a = ra;
      d.b = rb;
      d.description =
          "first divergent event at seq " + std::to_string(ra.seq) + ":";
      return d;
    }
    ++i;
    ++j;
  }
  // No divergence inside the overlap.  A different total event count is
  // still a divergence (one execution did more); identical totals with an
  // empty tail means the traces agree everywhere they can be compared.
  if (a.total_recorded != b.total_recorded) {
    d.diverged = true;
    const bool a_longer = a.total_recorded > b.total_recorded;
    const auto& longer = a_longer ? a : b;
    const std::uint64_t cutoff =
        std::min(a.total_recorded, b.total_recorded);
    d.description = "traces agree on " + std::to_string(d.compared) +
                    " shared records but recorded " +
                    std::to_string(a.total_recorded) + " vs " +
                    std::to_string(b.total_recorded) + " events";
    for (const TraceRecord& r : longer.records) {
      if (r.seq >= cutoff) {
        d.seq = r.seq;
        (a_longer ? d.have_a : d.have_b) = true;
        (a_longer ? d.a : d.b) = r;
        d.description += "; first extra record in trace " +
                         std::string(a_longer ? "A" : "B") + ":";
        break;
      }
    }
    return d;
  }
  d.description = "traces match (" + std::to_string(d.compared) +
                  " shared records compared)";
  return d;
}

}  // namespace tbcs::obs
