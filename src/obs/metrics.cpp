#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "obs/log2_buckets.hpp"

namespace tbcs::obs {

namespace {
std::atomic<std::uint64_t> g_registry_serial{1};
}  // namespace

// ---- handles ----------------------------------------------------------------

void Counter::inc(std::uint64_t delta) {
  if (reg_ != nullptr) reg_->add(id_, delta);
}

void Gauge::set(double value) {
  if (reg_ != nullptr) reg_->set_gauge(id_, value);
}

double Gauge::get() const { return reg_ != nullptr ? reg_->get_gauge(id_) : 0.0; }

void Histogram::observe(double value) {
  if (reg_ != nullptr) reg_->observe(id_, value);
}

// ---- registry ---------------------------------------------------------------

MetricsRegistry::Shard::~Shard() {
  for (auto& h : hists) delete h.load(std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry()
    : serial_(g_registry_serial.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed:
  return *reg;  // node threads may outlive static destructors
}

namespace {
std::uint32_t register_name(std::vector<std::string>& names,
                            const std::string& name, std::size_t cap,
                            const char* kind) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  }
  if (names.size() >= cap) {
    throw std::length_error(std::string("MetricsRegistry: out of ") + kind +
                            " slots registering '" + name + "'");
  }
  names.push_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}
}  // namespace

Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return Counter(this, register_name(counter_names_, name, kMaxCounters,
                                     "counter"));
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return Gauge(this, register_name(gauge_names_, name, kMaxGauges, "gauge"));
}

Histogram MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return Histogram(this, register_name(hist_names_, name, kMaxHistograms,
                                       "histogram"));
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // Cached per (thread, registry); the serial key makes entries from a
  // destroyed registry unreachable rather than dangling.
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& [serial, shard] : cache) {
    if (serial == serial_) return *shard;
  }
  Shard* shard = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    shard = shards_.back().get();
  }
  cache.emplace_back(serial_, shard);
  return *shard;
}

void MetricsRegistry::add(std::uint32_t id, std::uint64_t delta) {
  std::atomic<std::uint64_t>& cell = local_shard().counters[id];
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void MetricsRegistry::observe(std::uint32_t id, double value) {
  Shard& s = local_shard();
  HistShard* h = s.hists[id].load(std::memory_order_acquire);
  if (h == nullptr) {
    h = new HistShard();
    s.hists[id].store(h, std::memory_order_release);
  }
  const std::uint64_t n = h->count.load(std::memory_order_relaxed);
  if (n == 0 || value < h->min.load(std::memory_order_relaxed)) {
    h->min.store(value, std::memory_order_relaxed);
  }
  if (n == 0 || value > h->max.load(std::memory_order_relaxed)) {
    h->max.store(value, std::memory_order_relaxed);
  }
  h->sum.store(h->sum.load(std::memory_order_relaxed) + value,
               std::memory_order_relaxed);
  std::atomic<std::uint64_t>& bucket = h->buckets[bucket_index(value)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  h->count.store(n + 1, std::memory_order_release);
}

void MetricsRegistry::set_gauge(std::uint32_t id, double value) {
  gauges_[id].store(value, std::memory_order_relaxed);
}

double MetricsRegistry::get_gauge(std::uint32_t id) const {
  return gauges_[id].load(std::memory_order_relaxed);
}

int MetricsRegistry::bucket_index(double value) {
  static_assert(kHistBuckets == kLog2Buckets,
                "registry histograms and the shared bucket math must agree");
  return log2_bucket_index(value);
}

double MetricsRegistry::bucket_lower_bound(int bucket) {
  return log2_bucket_lower_bound(bucket);
}

void MetricsRegistry::enable_timelines(const HistoryConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  timelines_on_ = true;
  timeline_cfg_ = cfg;
}

bool MetricsRegistry::timelines_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timelines_on_;
}

void MetricsRegistry::record_timeline(const std::string& name, double t,
                                      double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!timelines_on_) return;
  for (auto& [n, store] : timelines_) {
    if (n == name) {
      store->append(t, value);
      return;
    }
  }
  timelines_.emplace_back(name, make_history_store(timeline_cfg_));
  timelines_.back().second->append(t, value);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(counter_names_[i], total);
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i],
                             gauges_[i].load(std::memory_order_relaxed));
  }
  snap.histograms.reserve(hist_names_.size());
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    HistogramStats st;
    st.name = hist_names_[i];
    for (const auto& shard : shards_) {
      const HistShard* h = shard->hists[i].load(std::memory_order_acquire);
      if (h == nullptr) continue;
      const std::uint64_t n = h->count.load(std::memory_order_acquire);
      if (n == 0) continue;
      const double mn = h->min.load(std::memory_order_relaxed);
      const double mx = h->max.load(std::memory_order_relaxed);
      if (st.count == 0 || mn < st.min) st.min = mn;
      if (st.count == 0 || mx > st.max) st.max = mx;
      st.count += n;
      st.sum += h->sum.load(std::memory_order_relaxed);
      for (int b = 0; b < kHistBuckets; ++b) {
        st.buckets[static_cast<std::size_t>(b)] +=
            h->buckets[static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed);
      }
    }
    snap.histograms.push_back(std::move(st));
  }
  snap.timelines.reserve(timelines_.size());
  for (const auto& [name, store] : timelines_) {
    TimelineStats ts;
    ts.name = name;
    ts.backend = store->name();
    ts.appends = store->appends();
    ts.memory_bytes = store->memory_bytes();
    ts.windows = store->windows();
    snap.timelines.push_back(std::move(ts));
  }
  return snap;
}

std::uint64_t MetricsRegistry::Snapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const MetricsRegistry::HistogramStats* MetricsRegistry::Snapshot::histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const MetricsRegistry::TimelineStats* MetricsRegistry::Snapshot::timeline(
    const std::string& name) const {
  for (const auto& t : timelines) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

// ---- JSON -------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void write_metrics_json(std::ostream& os,
                        const MetricsRegistry::Snapshot& snap) {
  os << "{\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "" : ", ") << '"' << json_escape(snap.counters[i].first)
       << "\": " << snap.counters[i].second;
  }
  os << "}, \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i == 0 ? "" : ", ") << '"' << json_escape(snap.gauges[i].first)
       << "\": " << json_number(snap.gauges[i].second);
  }
  os << "}, \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    os << (i == 0 ? "" : ", ") << '"' << json_escape(h.name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
       << ", \"min\": " << json_number(h.count > 0 ? h.min : 0.0)
       << ", \"max\": " << json_number(h.count > 0 ? h.max : 0.0)
       << ", \"buckets\": [";
    bool first = true;
    for (int b = 0; b < MetricsRegistry::kHistBuckets; ++b) {
      const std::uint64_t c = h.buckets[static_cast<std::size_t>(b)];
      if (c == 0) continue;
      os << (first ? "" : ", ") << '['
         << json_number(MetricsRegistry::bucket_lower_bound(b)) << ", " << c
         << ']';
      first = false;
    }
    os << "]}";
  }
  os << "}";
  if (!snap.timelines.empty()) {
    os << ", \"timelines\": {";
    for (std::size_t i = 0; i < snap.timelines.size(); ++i) {
      const auto& t = snap.timelines[i];
      os << (i == 0 ? "" : ", ") << '"' << json_escape(t.name)
         << "\": {\"backend\": \"" << t.backend
         << "\", \"appends\": " << t.appends
         << ", \"memory_bytes\": " << t.memory_bytes << ", \"windows\": [";
      for (std::size_t w = 0; w < t.windows.size(); ++w) {
        const auto& win = t.windows[w];
        os << (w == 0 ? "" : ", ") << '[' << json_number(win.t_lo) << ", "
           << json_number(win.t_hi) << ", " << json_number(win.min) << ", "
           << json_number(win.max) << ", " << json_number(win.mean()) << ", "
           << win.count << ']';
      }
      os << "]}";
    }
    os << "}";
  }
  os << "}";
}

}  // namespace tbcs::obs
