// Flight recorder: a low-overhead, per-simulator binary ring-buffer trace.
//
// The hot-path choke points (Simulator dispatch, broadcasts, wakes, A^opt
// fast/slow-mode transitions) call record() with fixed-size POD records.
// Overhead budget:
//   * compiled out entirely with -DTBCS_OBS_TRACE_ENABLED=0 (CMake
//     -DTBCS_TRACE=OFF) — record() becomes an empty inline function;
//   * compiled in but not attached (the default): one pointer test per
//     instrumentation site, which is what keeps bench_core_hotpath within
//     the PR2 baseline;
//   * attached: one modulo (runtime sampling) plus a 48-byte store into a
//     preallocated power-of-two ring.  No allocation, no locks, no I/O.
//
// The ring keeps the newest `capacity` sampled records; `seq` is the
// pre-sampling record index, so two traces of the same execution align by
// seq even at different sampling rates, and tbcs_trace --diff can name the
// first divergent event.  Dumps are a small header plus raw records
// (same-machine tooling; not an archival format).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#ifndef TBCS_OBS_TRACE_ENABLED
#define TBCS_OBS_TRACE_ENABLED 1
#endif

namespace tbcs::obs {

/// Whether the tracing hooks are compiled in (see TBCS_TRACE in CMake).
inline constexpr bool kTraceCompiled = TBCS_OBS_TRACE_ENABLED != 0;

/// What happened at an instrumentation site.
enum class TracePoint : std::uint16_t {
  kWake = 0,        // node initialized (a = logical, b = hardware)
  kBroadcast,       // node sent (a = msg logical, b = msg logical_max)
  kDeliver,         // message delivered over `edge` (a = L_v, b = H_v after)
  kDrop,            // message dropped: link down at delivery time
  kTimerFire,       // timer fired (a = L_v, b = H_v after the callback)
  kStaleTimer,      // lazily-deleted timer entry popped and discarded
  kRateChange,      // hardware rate change (a = new rate, b = H_v)
  kLinkChange,      // link `edge` flipped (flags bit kFlagLinkUp = new state)
  kModeChange,      // logical rate multiplier changed (a = old, b = new)
  kProbe,           // periodic probe event
  kRuntimeDeliver,  // threaded runtime: message dispatched to a node thread
  kRuntimeTimer,    // threaded runtime: timer dispatched to a node thread
  kFault,           // injected fault applied (a = fault::FaultKind index,
                    //   b = site-specific value, e.g. the node's L)
  kChurn,           // dynamic membership event (a = 0 join / 1 leave,
                    //   b = the node's L at that instant)
};

inline constexpr int kNumTracePoints = 14;

const char* trace_point_name(TracePoint p);

// TraceRecord::flags bits.
inline constexpr std::uint16_t kFlagFastMode = 1;    // rate multiplier > 1
inline constexpr std::uint16_t kFlagWoke = 2;        // the event woke the node
inline constexpr std::uint16_t kFlagModeChange = 4;  // multiplier changed here
inline constexpr std::uint16_t kFlagLinkUp = 8;      // kLinkChange: new state

/// Sentinel for "no edge" (matches graph::kNoEdge's bit pattern).
inline constexpr std::uint32_t kNoTraceEdge = 0xffffffffu;

/// One trace record; 48 bytes, trivially copyable, written raw to dumps.
struct TraceRecord {
  double t = 0.0;         // real time of the event
  double a = 0.0;         // kind-specific value (usually logical clock)
  double b = 0.0;         // kind-specific value (usually hardware clock)
  std::uint64_t seq = 0;  // pre-sampling record index (global, monotone)
  std::int32_t node = -1;
  std::uint32_t edge = kNoTraceEdge;
  std::uint32_t aux = 0;  // site-specific (event queue size at dispatch)
  std::uint16_t kind = 0;
  std::uint16_t flags = 0;
};

static_assert(sizeof(TraceRecord) == 48, "TraceRecord must stay 48 bytes");

class FlightRecorder {
 public:
  struct Options {
    std::size_t capacity = 1 << 16;  // rounded up to a power of two
    std::uint64_t sample_every = 1;  // keep every k-th record (deterministic)
  };

  FlightRecorder();  // default Options
  explicit FlightRecorder(Options opt);

  void record(TracePoint kind, double t, std::int32_t node, std::uint32_t edge,
              double a, double b, std::uint16_t flags = 0,
              std::uint32_t aux = 0) {
#if TBCS_OBS_TRACE_ENABLED
    const std::uint64_t seq = next_seq_++;
    if (sample_every_ > 1 && seq % sample_every_ != 0) return;
    TraceRecord& r = ring_[static_cast<std::size_t>(kept_) & mask_];
    r.t = t;
    r.a = a;
    r.b = b;
    r.seq = seq;
    r.node = node;
    r.edge = edge;
    r.aux = aux;
    r.kind = static_cast<std::uint16_t>(kind);
    r.flags = flags;
    ++kept_;
#else
    (void)kind; (void)t; (void)node; (void)edge;
    (void)a; (void)b; (void)flags; (void)aux;
#endif
  }

  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t sample_every() const { return sample_every_; }
  /// Records seen by record() before sampling.
  std::uint64_t total_recorded() const { return next_seq_; }
  /// Sampled records currently held (<= capacity).
  std::size_t size() const;
  /// Sampled records overwritten because the ring wrapped.
  std::uint64_t overwritten() const;

  /// Held records, oldest first.
  std::vector<TraceRecord> snapshot() const;

  void clear();

  /// Optional metadata stamped into dumps (0 = unknown).
  void set_num_nodes(std::uint64_t n) { num_nodes_ = n; }

  // ---- dump format -----------------------------------------------------------

  struct Dump {
    std::uint64_t sample_every = 1;
    std::uint64_t total_recorded = 0;
    std::uint64_t num_nodes = 0;
    std::vector<TraceRecord> records;  // oldest first
  };

  /// Binary dump: header + raw records.
  void save(std::ostream& os) const;
  /// Throws std::runtime_error on bad magic/version/layout.
  static Dump load(std::istream& is);

 private:
  std::vector<TraceRecord> ring_;
  std::size_t mask_ = 0;
  std::uint64_t sample_every_ = 1;
  std::uint64_t next_seq_ = 0;  // pre-sampling count
  std::uint64_t kept_ = 0;      // sampled records ever written to the ring
  std::uint64_t num_nodes_ = 0;
};

}  // namespace tbcs::obs
