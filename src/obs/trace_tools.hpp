// Post-hoc analysis of flight-recorder dumps: per-node/per-edge summaries
// and a first-divergence diff between two traces of "the same" execution.
//
// The diff aligns records by `seq` (the pre-sampling record index), so two
// dumps taken at different sampling rates still compare over the records
// they share, and a replay that drifted from its recording is localized to
// the first divergent event instead of an unanchored ReplayMismatch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/history_store.hpp"

namespace tbcs::obs {

struct TraceSummary {
  std::uint64_t records = 0;
  double t_min = 0.0;
  double t_max = 0.0;
  std::uint64_t by_kind[kNumTracePoints] = {};
  std::map<std::int32_t, std::uint64_t> by_node;   // events touching a node
  std::map<std::uint32_t, std::uint64_t> by_edge;  // deliveries/drops per edge
  std::uint64_t fast_mode_records = 0;             // records with the fast flag
  std::uint64_t mode_changes = 0;
  std::uint64_t drops = 0;
  /// kFault records in the dump, in time order (`a` carries the
  /// fault::FaultKind index) — the events --summary attributes skew
  /// spikes to.
  std::vector<TraceRecord> faults;
};

TraceSummary summarize(const FlightRecorder::Dump& dump);

/// Human-readable summary tables (per-kind, per-node, per-edge).
void print_summary(std::ostream& os, const TraceSummary& s);

/// One record, formatted for humans ("seq=12 t=3.25 deliver node=4 ...").
std::string format_record(const TraceRecord& r);

/// Event-rate timeline of a dump, built through a history backend: every
/// record appends (t, 1), so the store's windows partition the trace's
/// time span with per-window event counts.  With the stair backend this
/// summarizes arbitrarily long traces in bounded memory (old activity at
/// geometrically coarser resolution); exact keeps one window per record.
struct TraceTimeline {
  std::string backend;
  std::uint64_t appends = 0;
  std::size_t memory_bytes = 0;
  std::vector<HistoryWindow> windows;  // oldest first
};

TraceTimeline summarize_timeline(const FlightRecorder::Dump& dump,
                                 const HistoryConfig& cfg);

/// Renders the timeline as an events-per-window table with rates.
void print_timeline(std::ostream& os, const TraceTimeline& t);

struct TraceDiff {
  bool diverged = false;
  /// Description of the divergence (or of why the traces are incomparable).
  std::string description;
  std::uint64_t seq = 0;  // seq of the first divergent record (if diverged)
  bool have_a = false;    // false: trace A ended before the divergence point
  bool have_b = false;
  TraceRecord a{};
  TraceRecord b{};
  std::uint64_t compared = 0;  // records with matching seq that were compared
};

/// Finds the first record where the two traces disagree (kind, node, edge,
/// flags exact; t/a/b within `value_tolerance`).  Records present in only
/// one dump because of ring wrap-around at the start, or dropped by a
/// coarser sampling rate, are skipped, not flagged.
TraceDiff diff_traces(const FlightRecorder::Dump& a,
                      const FlightRecorder::Dump& b,
                      double value_tolerance = 0.0);

}  // namespace tbcs::obs
