// Gradient property in a datacenter fabric.
//
// A two-tier fabric: racks of servers (complete graphs) whose top-of-rack
// switches form a row of spine links.  Servers in the same rack are 1-2
// hops apart; servers in distant racks are many hops apart.  The gradient
// property (Definition 5.6 / Corollary 7.9) promises that intra-rack
// clock agreement is far tighter than fabric-wide agreement — which is
// exactly what rack-local transaction ordering or in-network telemetry
// needs.
//
// The example builds the fabric, runs A^opt under drift and delay noise,
// and prints the measured skew per distance tier against the legal-state
// ceilings.
#include <iostream>
#include <memory>

#include "analysis/skew_tracker.hpp"
#include "analysis/table.hpp"
#include "core/aopt.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace tbcs;

/// `racks` racks of `servers` servers each.  Node layout per rack r:
/// ToR switch at id r*(servers+1), servers right after it.  ToR switches
/// are chained (spine): a path across racks.
graph::Graph make_fabric(int racks, int servers) {
  const auto stride = static_cast<graph::NodeId>(servers + 1);
  graph::Graph g(static_cast<graph::NodeId>(racks) * stride);
  for (int r = 0; r < racks; ++r) {
    const graph::NodeId tor = r * stride;
    for (int s = 1; s <= servers; ++s) {
      g.add_edge(tor, tor + s);  // server uplink
      for (int s2 = s + 1; s2 <= servers; ++s2) {
        g.add_edge(tor + s, tor + s2);  // rack-internal mesh
      }
    }
    if (r + 1 < racks) g.add_edge(tor, tor + stride);  // spine link
  }
  return g;
}

}  // namespace

int main() {
  const int racks = 8;
  const int servers = 4;
  const double t = 1.0;      // delay uncertainty: one "network hop jitter"
  const double eps = 0.005;  // server-grade oscillators
  const core::SyncParams params = core::SyncParams::recommended(t, eps, 0.5);

  const graph::Graph g = make_fabric(racks, servers);
  const int d = g.diameter();
  std::cout << "fabric: " << racks << " racks x " << servers
            << " servers, n = " << g.num_nodes() << ", diameter = " << d
            << "\n\n";

  sim::Simulator sim(g);
  sim.set_all_nodes(
      [&params](sim::NodeId) { return std::make_unique<core::AoptNode>(params); });
  sim.set_drift_policy(std::make_shared<sim::SinusoidalDrift>(eps, 200.0, 3));
  sim.set_delay_policy(std::make_shared<sim::BimodalDelay>(0.1, t, 0.05, 5));

  analysis::SkewTracker::Options topt;
  topt.track_per_distance = true;
  topt.audit_epsilon = eps;
  analysis::SkewTracker tracker(sim, topt);
  tracker.attach(sim);
  sim.run_until(2000.0);

  analysis::Table table({"tier", "hop distance", "measured max skew",
                         "guaranteed ceiling"});
  struct Tier {
    const char* name;
    int dist;
  };
  for (const Tier tier : {Tier{"same rack (mesh)", 1},
                          Tier{"same rack (via ToR)", 2},
                          Tier{"adjacent rack", 4},
                          Tier{"cross-fabric", d}}) {
    table.add_row(
        {tier.name, analysis::Table::integer(tier.dist),
         analysis::Table::num(tracker.max_skew_at_distance(tier.dist), 4),
         analysis::Table::num(
             params.distance_skew_bound(tier.dist, d, eps, t), 4)});
  }
  table.print(std::cout);

  std::cout << "\nenvelope violation: " << tracker.max_envelope_violation()
            << " (<= 0: clocks stayed in the real-time envelope)\n";
  std::cout << "\nThe gradient property in action: rack-local agreement is\n"
               "an order of magnitude tighter than the cross-fabric bound,\n"
               "without any hierarchy or rack-awareness in the protocol.\n";

  bool ok = tracker.max_envelope_violation() <= 1e-6;
  for (int dist = 1; dist <= tracker.max_distance(); ++dist) {
    if (tracker.max_skew_at_distance(dist) >
        params.distance_skew_bound(dist, d, eps, t) + 1e-6) {
      ok = false;
    }
  }
  std::cout << (ok ? "All tier guarantees held.\n"
                   : "ERROR: a tier exceeded its ceiling!\n");
  return ok ? 0 : 1;
}
