// Quickstart: synchronize a 4x4 grid with A^opt and compare the measured
// skews against the paper's guarantees.
//
//   $ ./quickstart
//
// Walks through the whole public API: pick parameters, build a topology,
// install the algorithm, choose an adversary (drift + delay policies),
// run, and read the metrics.
#include <iostream>
#include <memory>

#include "analysis/skew_tracker.hpp"
#include "core/aopt.hpp"
#include "core/params.hpp"
#include "graph/topologies.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace tbcs;

  // 1. Model parameters.  Time unit = the delay uncertainty T.  The
  //    algorithm only needs upper bounds on T and on the drift rate eps.
  const double t_hat = 1.0;    // known bound on the delay uncertainty
  const double eps_hat = 0.01; // known bound on the clock drift (1%)
  const core::SyncParams params = core::SyncParams::recommended(t_hat, eps_hat);

  std::cout << "A^opt parameters: mu = " << params.mu << ", H0 = " << params.h0
            << ", kappa = " << params.kappa << ", sigma = " << params.sigma()
            << "\n\n";

  // 2. Topology: a 4x4 grid (diameter 6).
  const graph::Graph g = graph::make_grid(4, 4);
  const int diameter = g.diameter();

  // 3. Simulator + algorithm at every node.
  sim::Simulator sim(g);
  sim.set_all_nodes([&params](sim::NodeId) {
    return std::make_unique<core::AoptNode>(params);
  });

  // 4. The adversary: drifts wander through [1-eps, 1+eps]; delays are
  //    uniform in [0, T].
  sim.set_drift_policy(std::make_shared<sim::RandomWalkDrift>(eps_hat, 10.0, 1));
  sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.0, t_hat, 2));

  // 5. Metrics: the tracker samples at every event, so maxima are exact.
  analysis::SkewTracker::Options topt;
  topt.audit_epsilon = eps_hat;
  analysis::SkewTracker tracker(sim, topt);
  tracker.attach(sim);

  // 6. Run for 1000 time units.
  sim.run_until(1000.0);

  // 7. Results vs. theory.
  const double g_bound = params.global_skew_bound(diameter, eps_hat, t_hat);
  const double l_bound = params.local_skew_bound(diameter, eps_hat, t_hat);

  std::cout << "After t = " << sim.now() << " (D = " << diameter << ", "
            << sim.messages_delivered() << " messages):\n";
  std::cout << "  global skew: measured " << tracker.max_global_skew()
            << "  <=  bound " << g_bound << "   (Theorem 5.5)\n";
  std::cout << "  local skew:  measured " << tracker.max_local_skew()
            << "  <=  bound " << l_bound << "   (Theorem 5.10)\n";
  std::cout << "  envelope violation: " << tracker.max_envelope_violation()
            << " (<= 0 means Condition (1) held)\n";
  std::cout << "  logical rates seen: [" << tracker.min_logical_rate() << ", "
            << tracker.max_logical_rate() << "]  within [alpha, beta] = ["
            << params.alpha(eps_hat) << ", " << params.beta(eps_hat)
            << "]   (Condition (2))\n";

  const bool ok = tracker.max_global_skew() <= g_bound &&
                  tracker.max_local_skew() <= l_bound &&
                  tracker.max_envelope_violation() <= 1e-6;
  std::cout << "\n" << (ok ? "All guarantees held." : "GUARANTEE VIOLATED!")
            << "\n";
  return ok ? 0 : 1;
}
