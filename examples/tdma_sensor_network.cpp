// TDMA in a wireless sensor network — the paper's motivating application
// (footnote 1: "a prominent example is TDMA in wireless networks where
// nodes depend on locally well synchronized time slots").
//
// Nodes share the medium in rounds of S slots of length `slot_len`; node v
// transmits in slot (v mod S) of every round, measured on its *logical*
// clock.  Two neighbors collide when their logical clocks disagree by more
// than the guard band around a slot boundary.  The local-skew bound of
// Theorem 5.10 tells us exactly how large the guard band must be — and the
// example shows A^opt respects it while the jump-mode max algorithm needs
// a guard band proportional to D (its local skew is Theta(D T)).
#include <cmath>
#include <iostream>
#include <memory>

#include "analysis/skew_tracker.hpp"
#include "analysis/table.hpp"
#include "baselines/max_algorithm.hpp"
#include "core/aopt.hpp"
#include "core/params.hpp"
#include "graph/topologies.hpp"
#include "sim/simulator.hpp"

namespace {

struct RunResult {
  double max_local_skew = 0.0;
  double guard_band_needed = 0.0;  // smallest guard band with no collision
};

/// Runs a 6x6 sensor grid for `duration` and reports the worst neighbor
/// disagreement, which is exactly the guard band a TDMA schedule needs.
template <typename Factory>
RunResult run_grid(Factory make_node, double duration) {
  using namespace tbcs;
  const graph::Graph g = graph::make_grid(6, 6);
  sim::Simulator sim(g);
  sim.set_all_nodes(make_node);
  sim.set_drift_policy(std::make_shared<sim::RandomWalkDrift>(0.01, 20.0, 11));
  sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.0, 1.0, 13));

  analysis::SkewTracker tracker(sim, {});
  tracker.attach(sim);
  sim.run_until(duration);

  RunResult r;
  r.max_local_skew = tracker.max_local_skew();
  r.guard_band_needed = tracker.max_local_skew();
  return r;
}

}  // namespace

int main() {
  using namespace tbcs;
  const double t_hat = 1.0;
  const double eps_hat = 0.01;
  const double slot_len = 20.0;  // TDMA slot length in delay units
  const core::SyncParams params = core::SyncParams::recommended(t_hat, eps_hat);

  std::cout << "TDMA sensor grid (6x6, ~1% drift, delays in [0, T])\n";
  std::cout << "slot length = " << slot_len << " T\n\n";

  const auto aopt = run_grid(
      [&params](sim::NodeId) { return std::make_unique<core::AoptNode>(params); },
      2000.0);

  baselines::MaxAlgorithmOptions mopt;
  mopt.jump = true;
  mopt.h0 = params.h0;
  const auto maxalg = run_grid(
      [&mopt](sim::NodeId) {
        return std::make_unique<baselines::MaxAlgorithmNode>(mopt);
      },
      2000.0);

  const graph::Graph g = graph::make_grid(6, 6);
  const double bound = params.local_skew_bound(g.diameter(), eps_hat, t_hat);

  analysis::Table table({"algorithm", "worst neighbor skew", "guard band",
                         "slot utilization"});
  const auto util = [slot_len](double guard) {
    return std::max(0.0, 1.0 - 2.0 * guard / slot_len);
  };
  table.add_row({"A^opt", analysis::Table::num(aopt.max_local_skew),
                 analysis::Table::num(aopt.guard_band_needed),
                 analysis::Table::num(100.0 * util(aopt.guard_band_needed), 1) + "%"});
  table.add_row({"max-algorithm (jumps)",
                 analysis::Table::num(maxalg.max_local_skew),
                 analysis::Table::num(maxalg.guard_band_needed),
                 analysis::Table::num(100.0 * util(maxalg.guard_band_needed), 1) + "%"});
  table.print(std::cout);

  std::cout << "\nTheorem 5.10 guard-band guarantee for A^opt: "
            << analysis::Table::num(bound)
            << " T (the measured skew must stay below this in every run).\n";

  if (aopt.max_local_skew > bound) {
    std::cout << "ERROR: A^opt exceeded its guaranteed bound!\n";
    return 1;
  }
  std::cout << "A^opt slots can be packed using the *proven* guard band; the\n"
               "max algorithm would need per-deployment measurement and\n"
               "offers no worst-case guarantee sublinear in D.\n";
  return 0;
}
