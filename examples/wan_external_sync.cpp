// External synchronization across a WAN-like chain (Section 8.5).
//
// One gateway node (id 0) has a GPS-grade time source: its logical clock
// *is* real time.  The remaining nodes run the external-sync variant of
// A^opt: they chase the reference while guaranteeing L_v(t) <= t — a clock
// that is always slightly behind real time but never ahead, which is what
// timestamping and distributed-tracing systems want.
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/table.hpp"
#include "core/external_sync.hpp"
#include "core/params.hpp"
#include "graph/topologies.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace tbcs;
  const double t_hat = 1.0;
  const double eps_hat = 0.02;
  const sim::NodeId n = 12;
  const core::SyncParams params =
      core::SyncParams::recommended(t_hat, eps_hat, 0.5);

  // A chain: node 0 is the gateway, the rest hang off it hop by hop.
  const graph::Graph g = graph::make_path(n);

  sim::SimConfig cfg;
  cfg.probe_interval = 1.0;
  sim::Simulator sim(g, cfg);
  sim.set_node(0, std::make_unique<core::ExternalReferenceNode>(params.h0));
  for (sim::NodeId v = 1; v < n; ++v) {
    sim.set_node(v, core::make_external_aopt(params));
  }

  // The gateway's oscillator is disciplined (rate exactly 1); everyone
  // else drifts.
  std::vector<double> rates(static_cast<std::size_t>(n), 1.0);
  sim::Rng rng(17);
  for (sim::NodeId v = 1; v < n; ++v) {
    rates[static_cast<std::size_t>(v)] = rng.uniform(1.0 - eps_hat, 1.0 + eps_hat);
  }
  sim.set_drift_policy(std::make_shared<sim::ConstantDrift>(rates));
  sim.set_delay_policy(std::make_shared<sim::UniformDelay>(0.0, t_hat, 19));

  // Track the worst over/under-shoot against real time per node.
  std::vector<double> worst_ahead(static_cast<std::size_t>(n), -1e18);
  std::vector<double> worst_behind(static_cast<std::size_t>(n), 0.0);
  sim.set_observer([&](const sim::Simulator& s, double t) {
    for (sim::NodeId v = 0; v < n; ++v) {
      if (!s.awake(v)) continue;
      const double offset = s.logical(v) - t;
      worst_ahead[static_cast<std::size_t>(v)] =
          std::max(worst_ahead[static_cast<std::size_t>(v)], offset);
      worst_behind[static_cast<std::size_t>(v)] =
          std::min(worst_behind[static_cast<std::size_t>(v)], offset);
    }
  });

  sim.run_until(2000.0);

  std::cout << "External synchronization on a " << n << "-node chain "
            << "(gateway at node 0 = real time)\n\n";
  analysis::Table table({"node", "distance", "worst ahead of t", "worst behind t",
                         "offset now"});
  bool envelope_ok = true;
  for (sim::NodeId v = 0; v < n; ++v) {
    const double ahead = worst_ahead[static_cast<std::size_t>(v)];
    if (ahead > 1e-6) envelope_ok = false;
    table.add_row({analysis::Table::integer(v), analysis::Table::integer(v),
                   analysis::Table::num(ahead, 4),
                   analysis::Table::num(worst_behind[static_cast<std::size_t>(v)], 3),
                   analysis::Table::num(sim.logical(v) - sim.now(), 3)});
  }
  table.print(std::cout);

  std::cout << "\nSection 8.5 guarantee: L_v(t) <= t at all times -> "
            << (envelope_ok ? "HELD" : "VIOLATED")
            << "; the worst lag grows with the distance to the gateway\n"
            << "(t - d(v, v0) T - tau <= L_v(t), the adapted Condition (1)).\n";
  return envelope_ok ? 0 : 1;
}
